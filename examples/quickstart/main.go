// Quickstart: compile one small MC program for both instruction sets,
// run it on the simulator, and compare the paper's two basic measures —
// static code size (density) and dynamic path length.
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/sim"
)

const program = `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}

int main() {
	print_str("fib(20) = ");
	print_int(fib(20));
	print_char('\n');
	return 0;
}
`

func main() {
	fmt.Println("Compiling the same program for the 16-bit (D16) and 32-bit (DLXe)")
	fmt.Println("instruction sets and executing both on the shared pipeline model.")
	fmt.Println()

	type result struct {
		spec   *isa.Spec
		size   int
		instrs int64
		words  int64
		output string
	}
	var results []result

	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		compiled, err := mcc.Compile("fib.mc", program, spec)
		if err != nil {
			log.Fatalf("compile for %s: %v", spec, err)
		}
		machine, err := sim.New(compiled.Image)
		if err != nil {
			log.Fatal(err)
		}
		if err := machine.Run(50_000_000); err != nil {
			log.Fatalf("run on %s: %v", spec, err)
		}
		results = append(results, result{
			spec:   spec,
			size:   compiled.Image.Size(),
			instrs: machine.Stats.Instrs,
			words:  machine.Stats.FetchWords,
			output: machine.Output.String(),
		})
		fmt.Printf("%-10s output: %s", spec, machine.Output.String())
	}

	d16, dlxe := results[0], results[1]
	fmt.Println()
	fmt.Printf("%-22s %10s %10s\n", "measure", "D16", "DLXe")
	fmt.Printf("%-22s %10d %10d\n", "binary size (bytes)", d16.size, dlxe.size)
	fmt.Printf("%-22s %10d %10d\n", "path length (instrs)", d16.instrs, dlxe.instrs)
	fmt.Printf("%-22s %10d %10d\n", "instr words fetched", d16.words, dlxe.words)
	fmt.Println()
	fmt.Printf("density ratio (DLXe/D16 bytes):   %.2f\n",
		float64(dlxe.size)/float64(d16.size))
	fmt.Printf("path ratio (DLXe/D16 instrs):     %.2f\n",
		float64(dlxe.instrs)/float64(d16.instrs))
	fmt.Printf("traffic ratio (DLXe/D16 words):   %.2f\n",
		float64(dlxe.words)/float64(d16.words))
	fmt.Println()
	fmt.Println("The paper's core observation in miniature: the 16-bit encoding")
	fmt.Println("pays a small path-length penalty but fetches far fewer bits.")
}
