// D16plus: the variant the paper proposes in Section 3.3.3 but never
// builds — trade one bit of the 9-bit move-immediate for an 8-bit
// compare-equal immediate — implemented end to end and measured here on
// one benchmark.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
)

func main() {
	name := flag.String("bench", "queens", "benchmark to measure")
	flag.Parse()

	b := bench.ByName(*name)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *name)
	}

	lab := core.NewLab()
	base, err := lab.Measure(b, isa.D16())
	if err != nil {
		log.Fatal(err)
	}
	plus, err := lab.Measure(b, isa.D16Plus())
	if err != nil {
		log.Fatal(err)
	}
	if base.Output != plus.Output {
		log.Fatalf("variant output differs!\nD16:  %q\nD16+: %q", base.Output, plus.Output)
	}

	fmt.Printf("%s under D16 and D16+ (identical output verified)\n\n", b.Name)
	fmt.Printf("%-26s %12s %12s\n", "measure", "D16", "D16+")
	fmt.Printf("%-26s %12d %12d\n", "binary bytes", base.Size, plus.Size)
	fmt.Printf("%-26s %12d %12d\n", "path length", base.Stats.Instrs, plus.Stats.Instrs)
	fmt.Printf("%-26s %12d %12d\n", "loads (pool included)", base.Stats.Loads, plus.Stats.Loads)
	fmt.Println()
	speedup := 1 - float64(plus.Stats.Instrs)/float64(base.Stats.Instrs)
	fmt.Printf("path-length speedup: %.1f%%  (the paper predicted \"up to 2 percent\")\n", speedup*100)
	fmt.Println()
	fmt.Println("The gain comes from compare-equal-immediate replacing the")
	fmt.Println("mvi+cmp pair; programs full of 9-bit-but-not-8-bit constants can")
	fmt.Println("regress instead, because mvi's reach shrank — the exact tradeoff")
	fmt.Println("the paper's sentence glosses over. Sweep the suite with:")
	fmt.Println("  go run ./cmd/repro -run ablate-d16plus")
}
