// Tradeoff: sweep memory wait states for a cacheless machine and find
// the crossover where the 16-bit encoding's lower instruction traffic
// overtakes its longer path length — the experiment behind the paper's
// Figure 14 and Table 11, on one benchmark.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
)

func main() {
	name := flag.String("bench", "quicksort", "benchmark to analyze")
	bus := flag.Uint("bus", 32, "fetch bus width in bits (32 or 64)")
	flag.Parse()

	b := bench.ByName(*name)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *name)
	}
	busBytes := uint32(*bus / 8)

	lab := core.NewLab()
	d16, err := lab.Measure(b, isa.D16())
	if err != nil {
		log.Fatal(err)
	}
	dlxe, err := lab.Measure(b, isa.DLXe())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on a cacheless machine, %d-bit fetch bus\n\n", b.Name, *bus)
	fmt.Printf("path length:    D16 %d, DLXe %d (ratio %.2f)\n",
		d16.Stats.Instrs, dlxe.Stats.Instrs,
		float64(d16.Stats.Instrs)/float64(dlxe.Stats.Instrs))
	fmt.Printf("fetch requests: D16 %d, DLXe %d\n\n",
		reqs(d16, busBytes), reqs(dlxe, busBytes))

	fmt.Printf("%5s %14s %14s %12s %s\n", "wait", "D16 cycles", "DLXe cycles", "DLXe/D16", "winner")
	crossover := -1
	for l := int64(0); l <= 6; l++ {
		cd := d16.Cycles(busBytes, l)
		cx := dlxe.Cycles(busBytes, l)
		winner := "DLXe"
		if cd < cx {
			winner = "D16"
			if crossover < 0 {
				crossover = int(l)
			}
		}
		fmt.Printf("%5d %14d %14d %12.3f %s\n", l, cd, cx, float64(cx)/float64(cd), winner)
	}
	fmt.Println()
	switch {
	case crossover == 0:
		fmt.Println("D16 wins even with zero wait states.")
	case crossover > 0:
		fmt.Printf("Crossover: D16 wins from %d wait state(s) — reduced instruction\n", crossover)
		fmt.Println("traffic amortizes the memory latency over more instructions.")
	default:
		fmt.Println("DLXe wins across the sweep (unusual; try a narrower bus).")
	}
}

func reqs(m *core.Measurement, busBytes uint32) int64 {
	if busBytes == 8 {
		return m.Bus64.IRequests
	}
	return m.Bus32.IRequests
}
