// Cachestudy: sweep instruction-cache sizes for one workload and show
// how the 16-bit encoding's density doubles effective cache capacity —
// the paper's Figure 16/19 experiment, with a configurable geometry.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
)

func main() {
	name := flag.String("bench", "latex", "benchmark to analyze (assem, ipl, latex, ...)")
	block := flag.Uint("block", 32, "cache block size in bytes")
	sub := flag.Uint("sub", 4, "sub-block (transfer) size in bytes")
	penalty := flag.Int64("penalty", 8, "miss penalty in cycles")
	flag.Parse()

	b := bench.ByName(*name)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *name)
	}

	sizes := []uint32{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
	var cfgs []cache.Config
	for _, s := range sizes {
		cfgs = append(cfgs, cache.Config{
			Size: s, BlockBytes: uint32(*block), SubBytes: uint32(*sub), Assoc: 1,
		})
	}

	lab := core.NewLab()
	fmt.Printf("%s: split I/D caches, %dB blocks, %dB sub-blocks, miss penalty %d\n\n",
		b.Name, *block, *sub, *penalty)
	fmt.Printf("%8s | %12s %10s %10s | %12s %10s %10s\n",
		"size", "D16 miss", "CPI", "words/cyc", "DLXe miss", "CPI", "words/cyc")

	measure := func(spec *isa.Spec) ([]*cache.System, *core.Measurement) {
		systems, err := lab.CacheSweep(b, spec, cfgs)
		if err != nil {
			log.Fatal(err)
		}
		m, err := lab.Measure(b, spec)
		if err != nil {
			log.Fatal(err)
		}
		return systems, m
	}
	sysD, mD := measure(isa.D16())
	sysX, mX := measure(isa.DLXe())

	for i, s := range sizes {
		d, x := sysD[i], sysX[i]
		fmt.Printf("%7dK | %12.4f %10.3f %10.4f | %12.4f %10.3f %10.4f\n",
			s>>10,
			d.I.Stats.MissRate(),
			d.CPI(mD.Stats.Instrs, mD.Stats.Interlocks, *penalty),
			d.IWordsPerCycle(mD.Stats.Instrs, mD.Stats.Interlocks, *penalty),
			x.I.Stats.MissRate(),
			x.CPI(mX.Stats.Instrs, mX.Stats.Interlocks, *penalty),
			x.IWordsPerCycle(mX.Stats.Instrs, mX.Stats.Interlocks, *penalty))
	}
	fmt.Println()
	fmt.Println("Byte for byte, D16 instructions yield better cache behaviour: twice")
	fmt.Println("as many instructions fit in the same cache, and each transferred")
	fmt.Println("sub-block carries twice as many of them.")
}
