// Isafeatures: the paper's Section 3.3 feature-ablation methodology on a
// single kernel. The DLXe code generator is selectively restricted
// (register-file size, two-address operations) and the resulting density
// and path-length deltas attribute the 16-bit format's costs to
// individual instruction-set features.
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/sim"
)

// A register-hungry kernel with immediate-rich addressing: feature
// restrictions all show up.
const kernel = `
int a[256];
int b[256];

int seed = 12345;

int rnd() {
	seed = seed * 1103515 + 12345;
	if (seed < 0) seed = -seed;
	return seed;
}

int convolve() {
	int i, acc = 0;
	for (i = 4; i < 252; i++) {
		int w0 = a[i - 4], w1 = a[i - 3], w2 = a[i - 2], w3 = a[i - 1];
		int w4 = a[i], w5 = a[i + 1], w6 = a[i + 2], w7 = a[i + 3];
		int v = w0 - 3 * w1 + 5 * w2 - 7 * w3 + 7 * w4 - 5 * w5 + 3 * w6 - w7;
		b[i] = v >> 2;
		acc += b[i] & 1023;
	}
	return acc;
}

int main() {
	int i;
	for (i = 0; i < 256; i++) a[i] = rnd() % 10000;
	int acc = 0;
	for (i = 0; i < 40; i++) acc = (acc + convolve()) & 0xFFFFF;
	print_int(acc);
	return 0;
}
`

func main() {
	configs := []*isa.Spec{
		isa.D16(),
		isa.TwoAddress(isa.RestrictRegs(isa.DLXe(), 16)),
		isa.RestrictRegs(isa.DLXe(), 16),
		isa.TwoAddress(isa.DLXe()),
		isa.DLXe(),
	}

	fmt.Println("Feature ablation on a convolution kernel (ratios vs D16):")
	fmt.Println()
	fmt.Printf("%-12s %8s %10s %7s %8s %8s %8s\n",
		"config", "bytes", "instrs", "spills", "size/", "path/", "output")

	var baseSize, basePath float64
	for i, spec := range configs {
		c, err := mcc.Compile("kernel.mc", kernel, spec)
		if err != nil {
			log.Fatalf("%s: %v", spec, err)
		}
		m, err := sim.New(c.Image)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Run(200_000_000); err != nil {
			log.Fatalf("%s: %v", spec, err)
		}
		if i == 0 {
			baseSize = float64(c.Image.Size())
			basePath = float64(m.Stats.Instrs)
		}
		fmt.Printf("%-12s %8d %10d %7d %8.2f %8.2f %8s\n",
			spec.Name, c.Image.Size(), m.Stats.Instrs, c.Spills,
			float64(c.Image.Size())/baseSize,
			float64(m.Stats.Instrs)/basePath,
			m.Output.String())
	}

	fmt.Println()
	fmt.Println("Reading the columns: moving down the table restores DLXe features")
	fmt.Println("one at a time — three-address form removes copy instructions, the")
	fmt.Println("32-register file removes spill traffic, and DLXe's 16-bit")
	fmt.Println("immediates/displacements shrink address arithmetic. Each step")
	fmt.Println("shortens the path but pays for it in code bytes.")
}
