#!/bin/sh
# serve_smoke.sh <simd-binary> <scratch-dir>
#
# Boots the simulation service, checks /healthz, runs the same
# one-point batch twice (the repeat must come back byte-identical from
# the result cache), confirms /metrics counted the cache hit, then
# shuts the server down with SIGTERM and requires a clean exit.
set -eu

SIMD=$1
OUT=$2
PORT=${SERVE_SMOKE_PORT:-18473}
URL="http://127.0.0.1:$PORT"

rm -rf "$OUT"
mkdir -p "$OUT"

"$SIMD" -listen "127.0.0.1:$PORT" -jobs 2 >"$OUT/simd.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the server to come up (5s budget).
i=0
until curl -sf "$URL/healthz" >"$OUT/healthz.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "serve-smoke: server did not come up; log:" >&2
        cat "$OUT/simd.log" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q '"ok":true' "$OUT/healthz.json"

BATCH='{"points":[{"bench":"queens","config":"D16/16/2"}]}'
curl -sf -X POST -d "$BATCH" "$URL/v1/batch" >"$OUT/batch1.json"
curl -sf -X POST -d "$BATCH" "$URL/v1/batch" >"$OUT/batch2.json"
grep -q '"summary"' "$OUT/batch1.json"
if grep -q '"error"' "$OUT/batch1.json"; then
    echo "serve-smoke: batch reported a point error:" >&2
    cat "$OUT/batch1.json" >&2
    exit 1
fi
cmp "$OUT/batch1.json" "$OUT/batch2.json"

curl -sf "$URL/metrics" >"$OUT/metrics.prom"
grep -q '^jobs_cache_hits 1$' "$OUT/metrics.prom"
grep -q '^jobs_cache_misses 1$' "$OUT/metrics.prom"

# Graceful drain: SIGTERM must end the process with exit 0.
kill -TERM "$PID"
trap - EXIT
if ! wait "$PID"; then
    echo "serve-smoke: server exited non-zero; log:" >&2
    cat "$OUT/simd.log" >&2
    exit 1
fi

echo "serve-smoke ok: cached repeat byte-identical, graceful shutdown"
