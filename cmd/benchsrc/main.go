// Command benchsrc prints the MC source of a built-in benchmark.
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchsrc <name>")
		os.Exit(2)
	}
	b := bench.ByName(os.Args[1])
	if b == nil {
		fmt.Fprintln(os.Stderr, "unknown benchmark")
		os.Exit(2)
	}
	fmt.Print(b.Source)
}
