// Command disasm compiles an MC source file (or built-in benchmark) and
// prints an annotated disassembly of the resulting image.
//
// Usage:
//
//	disasm [-target d16|dlxe] [-regs N] [-2addr] (-bench name | file.mc)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/dis"
	"repro/internal/isa"
	"repro/internal/mcc"
)

func main() {
	target := flag.String("target", "d16", "instruction set: d16 or dlxe")
	regs := flag.Int("regs", 0, "restrict register file size")
	twoAddr := flag.Bool("2addr", false, "restrict to two-address operations")
	benchName := flag.String("bench", "", "disassemble a built-in benchmark")
	flag.Parse()

	var spec *isa.Spec
	switch *target {
	case "d16":
		spec = isa.D16()
	case "dlxe":
		spec = isa.DLXe()
	default:
		fmt.Fprintln(os.Stderr, "unknown target", *target)
		os.Exit(2)
	}
	if *regs > 0 {
		spec = isa.RestrictRegs(spec, *regs)
	}
	if *twoAddr {
		spec = isa.TwoAddress(spec)
	}

	var name, src string
	switch {
	case *benchName != "":
		b := bench.ByName(*benchName)
		if b == nil {
			fmt.Fprintln(os.Stderr, "unknown benchmark", *benchName)
			os.Exit(2)
		}
		name, src = b.Name+".mc", b.Source
	case flag.NArg() == 1:
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		name, src = flag.Arg(0), string(raw)
	default:
		fmt.Fprintln(os.Stderr, "usage: disasm [flags] file.mc (or -bench name)")
		os.Exit(2)
	}

	c, err := mcc.Compile(name, src, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("; %s for %s: %d bytes text, %d bytes data, %d instructions\n",
		name, spec, len(c.Image.Text), len(c.Image.Data), c.Image.TextInstrs)
	fmt.Print(dis.Listing(c.Image))
}
