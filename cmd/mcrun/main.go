// Command mcrun compiles and runs an MC source file (or a named built-in
// benchmark) on the simulator, printing output and dynamic statistics.
//
// Usage:
//
//	mcrun [-target d16|dlxe] [-regs N] [-2addr] [-bench name] [-dumpasm] [file.mc]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/sim"
)

func main() {
	target := flag.String("target", "d16", "instruction set: d16 or dlxe")
	regs := flag.Int("regs", 0, "restrict register file size (DLXe ablation)")
	twoAddr := flag.Bool("2addr", false, "restrict to two-address operations")
	benchName := flag.String("bench", "", "run a built-in benchmark instead of a file")
	dumpAsm := flag.Bool("dumpasm", false, "print generated assembly")
	profile := flag.Bool("profile", false, "print a function-level instruction profile")
	maxInstrs := flag.Int64("max", 2_000_000_000, "instruction budget")
	flag.Parse()

	var spec *isa.Spec
	switch *target {
	case "d16":
		spec = isa.D16()
	case "dlxe":
		spec = isa.DLXe()
	default:
		fmt.Fprintln(os.Stderr, "unknown target", *target)
		os.Exit(2)
	}
	if *regs > 0 {
		spec = isa.RestrictRegs(spec, *regs)
	}
	if *twoAddr {
		spec = isa.TwoAddress(spec)
	}

	var name, src string
	switch {
	case *benchName != "":
		b := bench.ByName(*benchName)
		if b == nil {
			fmt.Fprintln(os.Stderr, "unknown benchmark", *benchName)
			os.Exit(2)
		}
		name, src = b.Name+".mc", b.Source
		if *maxInstrs > b.MaxInstrs {
			*maxInstrs = b.MaxInstrs
		}
	case flag.NArg() == 1:
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		name, src = flag.Arg(0), string(raw)
	default:
		fmt.Fprintln(os.Stderr, "usage: mcrun [flags] file.mc (or -bench name)")
		os.Exit(2)
	}

	c, err := mcc.Compile(name, src, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dumpAsm {
		fmt.Print(c.Asm)
	}
	m, err := sim.New(c.Image)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var prof *sim.Profile
	if *profile {
		prof = sim.NewProfile(c.Image)
		m.Attach(prof)
	}
	runErr := m.Run(*maxInstrs)
	if prof != nil {
		fmt.Fprintf(os.Stderr, "--- profile ---\n%s", prof.String())
	}
	fmt.Print(m.Output.String())
	fmt.Fprintf(os.Stderr, "--- %s on %s ---\n", name, spec)
	fmt.Fprintf(os.Stderr, "size=%d bytes (text %d, pools %d, data %d)\n",
		c.Image.Size(), len(c.Image.Text), c.Image.PoolBytes, len(c.Image.Data))
	fmt.Fprintf(os.Stderr, "instrs=%d interlocks=%d loads=%d (pool %d) stores=%d fetchwords=%d spills=%d\n",
		m.Stats.Instrs, m.Stats.Interlocks, m.Stats.Loads, m.Stats.PoolLoads,
		m.Stats.Stores, m.Stats.FetchWords, c.Spills)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "FAULT: %v (near %s)\n", runErr, c.Image.SymbolAt(m.PC))
		os.Exit(1)
	}
}
