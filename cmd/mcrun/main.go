// Command mcrun compiles and runs an MC source file (or a named built-in
// benchmark) on the simulator, printing output and dynamic statistics.
//
// Usage:
//
//	mcrun [-target d16|dlxe] [-regs N] [-2addr] [-bench name] [-dumpasm] [-verify] [-static] [file.mc]
//
// Exit codes: 0 success; 1 compile/runtime failure; 2 bad usage or an
// unknown target/benchmark name; 3 the program compiled but its image
// failed static verification (see docs/VERIFY.md). -verify prints the
// verifier's report for the compiled image and exits without running.
//
// Observability flags (see docs/OBSERVABILITY.md):
//
//	-profile     print a function-level instruction profile and the
//	             dynamic caller→callee edge counts
//	-folded      print folded call stacks (one sample per executed
//	             instruction) to stdout for flamegraph tooling; program
//	             output moves to stderr so the stream stays parseable
//	-itrace N    keep a ring buffer of the last N executed instructions,
//	             dumped with symbol annotations if the run faults
//	-fulltrace   stream every executed instruction to stderr
//	-v           print a one-line compile/assemble/link/run stage-timing
//	             summary, so compiler slowdowns are visible without a
//	             trace viewer
//	-account     attach the cycle-level pipeline engine and print a cycle
//	             attribution breakdown (useful / load_delay / fpu /
//	             ifetch_wait / dmem_wait / port_contention / cache_miss /
//	             drain) plus the hottest functions; the memory system is
//	             shaped with -bus, -waits, -shared, -cachekb, -misspenalty
//	-pipetrace F attach the engine's flight recorder and write a Chrome
//	             trace of per-cycle stage occupancy to F (one lane per
//	             stage, stall causes as event names); written even if the
//	             run faults. -pipetrace-depth bounds retained events
//	             (<=0 keeps the full run). See docs/EXPLAIN.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/static"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

func main() {
	target := flag.String("target", "d16", "instruction set: d16 or dlxe")
	regs := flag.Int("regs", 0, "restrict register file size (DLXe ablation)")
	twoAddr := flag.Bool("2addr", false, "restrict to two-address operations")
	benchName := flag.String("bench", "", "run a built-in benchmark instead of a file")
	dumpAsm := flag.Bool("dumpasm", false, "print generated assembly")
	profile := flag.Bool("profile", false, "print a function-level instruction profile and call-graph edges")
	folded := flag.Bool("folded", false, "print folded call stacks to stdout (program output goes to stderr)")
	itrace := flag.Int("itrace", 0, "ring-buffer the last N executed instructions, dumped on fault")
	fullTrace := flag.Bool("fulltrace", false, "stream every executed instruction to stderr")
	verbose := flag.Bool("v", false, "print pipeline stage timings (compile/assemble/link/run)")
	maxInstrs := flag.Int64("max", 2_000_000_000, "instruction budget")
	verifyMode := flag.Bool("verify", false, "statically verify the compiled image, print the report, and exit without running")
	staticMode := flag.Bool("static", false, "print the static cost/density analysis (cycle bounds, loop bounds, fetch traffic) and exit without running")
	account := flag.Bool("account", false, "attach the cycle-level engine and print a cycle attribution breakdown")
	pipeTrace := flag.String("pipetrace", "", "write a Chrome trace of pipeline stage occupancy to this file (implies the cycle engine)")
	pipeDepth := flag.Int("pipetrace-depth", 1<<20, "flight-recorder depth for -pipetrace (events kept; <=0 records the full run)")
	busBytes := flag.Uint("bus", 4, "memory bus width in bytes for -account")
	waits := flag.Int64("waits", 1, "memory wait states for -account (ignored with -cachekb)")
	shared := flag.Bool("shared", false, "share one memory port between ifetch and data for -account")
	cacheKB := flag.Uint("cachekb", 0, "split I/D cache size in KB for -account (0 = cacheless)")
	missPenalty := flag.Int64("misspenalty", 8, "cache miss penalty in cycles for -account")
	flag.Parse()

	var spec *isa.Spec
	switch *target {
	case "d16":
		spec = isa.D16()
	case "dlxe":
		spec = isa.DLXe()
	default:
		fmt.Fprintf(os.Stderr, "mcrun: unknown target %q\nvalid targets: d16, dlxe\n", *target)
		os.Exit(2)
	}
	if *regs > 0 {
		spec = isa.RestrictRegs(spec, *regs)
	}
	if *twoAddr {
		spec = isa.TwoAddress(spec)
	}

	var name, src string
	switch {
	case *benchName != "":
		b := bench.ByName(*benchName)
		if b == nil {
			var names []string
			for _, kb := range bench.All() {
				names = append(names, kb.Name)
			}
			fmt.Fprintf(os.Stderr, "mcrun: unknown benchmark %q\nvalid benchmarks: %s\n",
				*benchName, strings.Join(names, ", "))
			os.Exit(2)
		}
		name, src = b.Name+".mc", b.Source
		if *maxInstrs > b.MaxInstrs {
			*maxInstrs = b.MaxInstrs
		}
	case flag.NArg() == 1:
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		name, src = flag.Arg(0), string(raw)
	default:
		fmt.Fprintln(os.Stderr, "usage: mcrun [flags] file.mc (or -bench name)")
		os.Exit(2)
	}

	// Stage timings come from the same spans the Chrome trace exporter
	// uses; a tracer is only installed when someone will read it.
	var tracer *telemetry.Tracer
	if *verbose {
		tracer = telemetry.NewTracer()
		telemetry.SetGlobalTracer(tracer)
	}

	c, err := mcc.Compile(name, src, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		// Exit 3 distinguishes "the code compiled but failed static
		// verification" from ordinary compile errors (see docs/VERIFY.md).
		var verr *verify.Error
		if errors.As(err, &verr) {
			verr.Report.WriteTable(os.Stderr)
			os.Exit(3)
		}
		os.Exit(1)
	}
	if *dumpAsm {
		fmt.Print(c.Asm)
	}
	if *verifyMode {
		// The compile gate already proved the image clean; re-run the
		// verifier to print the full report.
		verify.Image(c.Image, spec).WriteTable(os.Stdout)
		return
	}
	if *staticMode {
		rep, aerr := static.Analyze(c.Image, spec)
		if aerr != nil {
			fmt.Fprintln(os.Stderr, aerr)
			var verr *verify.Error
			if errors.As(aerr, &verr) {
				verr.Report.WriteTable(os.Stderr)
				os.Exit(3)
			}
			os.Exit(1)
		}
		rep.WriteTable(os.Stdout)
		return
	}
	m, err := sim.New(c.Image)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var prof *sim.Profile
	if *profile || *folded {
		prof = sim.NewProfile(c.Image)
		m.Attach(prof)
	}
	var eng *pipeline.Engine
	if *account || *pipeTrace != "" {
		pc := pipeline.Config{
			BusBytes:    uint32(*busBytes),
			WaitStates:  *waits,
			SharedPort:  *shared,
			MissPenalty: *missPenalty,
		}
		if *cacheKB > 0 {
			bytes := uint32(*cacheKB) * 1024
			sys, err := cache.NewSystem(cache.PaperConfig(bytes), cache.PaperConfig(bytes))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			pc.Caches = sys
		}
		if *pipeTrace != "" {
			// Ring of the last N events; non-positive depth keeps the
			// whole run (fine for short programs, expensive for long ones).
			pc.RecordDepth = *pipeDepth
			if *pipeDepth <= 0 {
				pc.RecordDepth = -1
			}
		}
		eng = pipeline.New(pc)
		eng.EnablePCAccounting()
		m.Attach(eng)
	}
	if *itrace > 0 {
		m.EnableITrace(*itrace)
	}
	if *fullTrace {
		m.TraceW = os.Stderr
	}

	rspan := telemetry.StartSpan("run", telemetry.String("file", name))
	start := time.Now()
	runErr := m.Run(*maxInstrs)
	runDur := time.Since(start)
	rspan.End()

	if prof != nil && *profile {
		fmt.Fprintf(os.Stderr, "--- profile ---\n%s", prof.String())
		if edges := prof.Edges(); len(edges) > 0 {
			fmt.Fprintf(os.Stderr, "--- call edges ---\n")
			for _, e := range edges {
				fmt.Fprintf(os.Stderr, "%12d  %s -> %s\n", e.Count, e.Caller, e.Callee)
			}
		}
	}
	if *folded {
		// Folded stacks own stdout so they pipe straight into
		// flamegraph.pl; the program's own output moves to stderr.
		fmt.Print(prof.Folded())
		fmt.Fprint(os.Stderr, m.Output.String())
	} else {
		fmt.Print(m.Output.String())
	}
	fmt.Fprintf(os.Stderr, "--- %s on %s ---\n", name, spec)
	fmt.Fprintf(os.Stderr, "size=%d bytes (text %d, pools %d, data %d)\n",
		c.Image.Size(), len(c.Image.Text), c.Image.PoolBytes, len(c.Image.Data))
	fmt.Fprintf(os.Stderr, "instrs=%d interlocks=%d loads=%d (pool %d) stores=%d fetchwords=%d spills=%d\n",
		m.Stats.Instrs, m.Stats.Interlocks, m.Stats.Loads, m.Stats.PoolLoads,
		m.Stats.Stores, m.Stats.FetchWords, c.Spills)
	if eng != nil && *account {
		printAccount(eng, c.Image)
	}
	if *pipeTrace != "" {
		// Written even after a fault: the recorder is a flight recorder,
		// and the cycles leading up to the crash are the interesting ones.
		if werr := writePipeTrace(*pipeTrace, eng, c.Image); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pipeline trace: %d events -> %s (chrome://tracing or ui.perfetto.dev)\n",
			eng.Recorder().Len(), *pipeTrace)
	}
	if *verbose {
		d := tracer.DurationsByName()
		fmt.Fprintf(os.Stderr, "stages: compile=%s assemble=%s link=%s run=%s (%.1f Minstr/s)\n",
			d["compile"].Round(time.Microsecond), d["assemble"].Round(time.Microsecond),
			d["link"].Round(time.Microsecond), d["run"].Round(time.Microsecond),
			float64(m.Stats.Instrs)/1e6/runDur.Seconds())
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "FAULT: %v (near %s)\n", runErr, c.Image.SymbolAt(m.PC))
		if tr := m.ITrace(); len(tr) > 0 {
			fmt.Fprintf(os.Stderr, "--- last %d instructions ---\n", len(tr))
			for _, e := range tr {
				fmt.Fprintf(os.Stderr, "%s\t; in %s\n", e, c.Image.SymbolAt(e.PC))
			}
		}
		os.Exit(1)
	}
}

// writePipeTrace dumps the engine's flight-recorder contents as a
// Chrome trace with one lane per pipeline stage.
func writePipeTrace(path string, e *pipeline.Engine, img *prog.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.WriteChromeTrace(f, sim.NewSymTable(img)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printAccount prints the cycle attribution breakdown and the hottest
// functions by attributed cycles.
func printAccount(e *pipeline.Engine, img *prog.Image) {
	fmt.Fprintf(os.Stderr, "--- cycle accounting (%d cycles, %d ifetch bytes, %.3f CPI) ---\n",
		e.Cycles(), e.FetchBytes(), float64(e.Cycles())/float64(max64(e.Instrs, 1)))
	pipeline.WriteBreakdown(os.Stderr, []string{"cycles"}, []pipeline.Breakdown{e.Breakdown()})
	funcs := e.PerFunc(sim.NewSymTable(img))
	const top = 10
	fmt.Fprintf(os.Stderr, "--- hottest functions (top %d of %d) ---\n", min(top, len(funcs)), len(funcs))
	fmt.Fprintf(os.Stderr, "%12s  %6s  %12s  %6s  %s\n", "cycles", "%", "ifetch B", "useful%", "function")
	for i, f := range funcs {
		if i >= top {
			break
		}
		fmt.Fprintf(os.Stderr, "%12d  %6.1f  %12d  %6.1f  %s\n",
			f.Cycles, 100*float64(f.Cycles)/float64(e.Cycles()),
			f.FetchBytes, 100*float64(f.Buckets[pipeline.BUseful])/float64(max64(f.Cycles, 1)),
			f.Name)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
