package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/store"
)

// handleQuery answers GET /v1/query over the server's measurement
// surface (the -store file loaded at boot plus every point measured by
// batches since). Query parameters mirror the filter grammar: bench,
// config (alias isa), bus, waits, cachekb, by, top. The response is
// store.QueryResult with two-space indentation — byte-identical to
// `repro -query` over the same points and filter.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	f, err := filterFromURL(r.URL.Query())
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	res, err := store.Query(s.snapshotPoints(), f)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	statsFrom(r.Context()).annotate("matched", strconv.Itoa(res.Matched))
	w.Header().Set("Content-Type", "application/json")
	// Stream points one at a time (byte-identical to writeJSON's
	// encoder) instead of marshaling the whole result in one buffer.
	store.WriteQueryJSON(w, res) //nolint:errcheck // headers are gone; nothing to report
}

// filterFromURL builds the store filter from URL query parameters,
// reusing the grammar parser so the CLI and the service accept exactly
// the same keys and values.
func filterFromURL(q url.Values) (store.Filter, error) {
	var terms []string
	for _, k := range []string{"bench", "config", "isa", "bus", "waits", "cachekb", "by", "top"} {
		if v := q.Get(k); v != "" {
			terms = append(terms, k+"="+v)
		}
	}
	for k := range q {
		switch k {
		case "bench", "config", "isa", "bus", "waits", "cachekb", "by", "top":
		default:
			return store.Filter{}, fmt.Errorf("unknown query parameter %q", k)
		}
	}
	return store.ParseFilter(strings.Join(terms, " "))
}

// diffRequest is the body of POST /v1/diff: two surfaces to compare,
// each given either inline as points or as a store-file path readable
// by the server (the A side is the baseline).
type diffRequest struct {
	A     []store.Point `json:"a,omitempty"`
	B     []store.Point `json:"b,omitempty"`
	AFile string        `json:"a_file,omitempty"`
	BFile string        `json:"b_file,omitempty"`
	store.DiffOptions
}

// handleDiff answers POST /v1/diff: an A/B comparison of two stored
// surfaces, reporting per-point cycle deltas, the worst movers per
// cycle bucket, and regression counts against the threshold.
func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req diffRequest
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	side := func(inline []store.Point, file, name string) ([]store.Point, error) {
		switch {
		case len(inline) > 0 && file != "":
			return nil, fmt.Errorf("side %s: give points inline or as a file, not both", name)
		case len(inline) > 0:
			for i := range inline {
				if err := inline[i].Validate(); err != nil {
					return nil, fmt.Errorf("side %s: %w", name, err)
				}
			}
			return inline, nil
		case file != "":
			return store.ReadFile(file)
		default:
			return nil, fmt.Errorf("side %s: need %q (inline points) or %q (store file path)",
				name, strings.ToLower(name), strings.ToLower(name)+"_file")
		}
	}
	a, err := side(req.A, req.AFile, "A")
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	b, err := side(req.B, req.BFile, "B")
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	rep := store.Diff(a, b, req.DiffOptions)
	statsFrom(r.Context()).annotate("matched", strconv.Itoa(rep.Matched))
	statsFrom(r.Context()).annotate("regressed", strconv.Itoa(rep.Regressed))
	writeJSON(w, rep)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are gone; nothing to report
}
