package main

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// newLoggedServer wraps a test server in the access-log middleware and
// captures the standard logger's output.
func newLoggedServer(t *testing.T, quiet bool) (*httptest.Server, *telemetry.Registry, *bytes.Buffer) {
	t.Helper()
	reg := telemetry.NewRegistry()
	lab := core.NewLabWith(jobs.New(jobs.Config{Workers: 1, Registry: reg}))
	ts := httptest.NewServer(accessLog(newServer(lab, reg).handler(), reg, quiet))
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	t.Cleanup(func() { log.SetOutput(prev) })
	return ts, reg, &buf
}

// TestAccessLog checks the request-scoped observability contract: every
// request gets an ID echoed in X-Request-Id, one structured key=value
// line lands in the log with cache traffic attributed to the request,
// and latency feeds the http.request_latency_us histogram.
func TestAccessLog(t *testing.T) {
	ts, reg, buf := newLoggedServer(t, false)

	body := `{"points":[{"bench":"queens","config":"d16"}]}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d", i, resp.StatusCode)
		}
		if rid := resp.Header.Get("X-Request-Id"); !regexp.MustCompile(`^r\d{6}$`).MatchString(rid) {
			t.Fatalf("batch %d: X-Request-Id = %q, want r<6 digits>", i, rid)
		}
	}

	logs := buf.String()
	// First request simulates (a cache miss), the repeat is served from
	// the result cache (a hit) — the access log attributes both.
	for _, want := range []string{
		"method=POST path=/v1/batch request_id=r000001 status=200",
		"cache_hit=0 cache_miss=1",
		"method=POST path=/v1/batch request_id=r000002 status=200",
		"cache_hit=1 cache_miss=0",
		"dur_us=",
	} {
		if !strings.Contains(logs, want) {
			t.Fatalf("access log missing %q:\n%s", want, logs)
		}
	}

	h := reg.FixedHistogram("http.request_latency_us", telemetry.LatencyBounds)
	if h.Count() != 2 {
		t.Fatalf("latency histogram count = %d, want 2", h.Count())
	}
}

// TestAccessLogQuiet checks -quiet suppresses the log line but keeps the
// request ID and latency accounting.
func TestAccessLogQuiet(t *testing.T) {
	ts, reg, buf := newLoggedServer(t, true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); rid == "" {
		t.Fatal("quiet mode dropped X-Request-Id")
	}
	if got := buf.String(); strings.Contains(got, "method=") {
		t.Fatalf("quiet mode still logged:\n%s", got)
	}
	if h := reg.FixedHistogram("http.request_latency_us", telemetry.LatencyBounds); h.Count() != 1 {
		t.Fatalf("latency histogram count = %d, want 1", h.Count())
	}
}

// TestAccessLogStatus checks error statuses are recorded faithfully.
func TestAccessLogStatus(t *testing.T) {
	ts, _, buf := newLoggedServer(t, false)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), "status=400") {
		t.Fatalf("access log missing status=400:\n%s", buf.String())
	}
}
