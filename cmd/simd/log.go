package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// reqStats is the per-request observability record the middleware
// creates and handlers annotate: scheduler cache traffic attributable
// to this request (handleBatch fills it from its tickets) plus any
// extra key=value fields a handler wants in the access log.
type reqStats struct {
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	extra       atomic.Pointer[string]
}

type reqStatsKey struct{}

// statsFrom returns the request's stats record (never nil: handlers
// outside the middleware get a discard record, so annotating is always
// safe).
func statsFrom(ctx context.Context) *reqStats {
	if s, ok := ctx.Value(reqStatsKey{}).(*reqStats); ok {
		return s
	}
	return &reqStats{}
}

// annotate adds one key=value field to the request's access-log line.
func (s *reqStats) annotate(key, value string) {
	kv := key + "=" + value
	if prev := s.extra.Load(); prev != nil {
		kv = *prev + " " + kv
	}
	s.extra.Store(&kv)
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// accessLog wraps the service mux with request-scoped observability:
//
//   - every call gets a request ID (r<seq>, monotonic per process),
//     attached to the request context so the jobs scheduler stamps it
//     into its execution spans and echoed in the X-Request-Id header,
//   - request latency is observed into the http.request_latency_us
//     fixed-bound histogram (p50/p90/p99 on /metrics),
//   - unless quiet, one structured key=value line per request goes to
//     the standard logger: method, path, request ID, status, duration,
//     and the request's cache hit/miss counts.
func accessLog(next http.Handler, reg *telemetry.Registry, quiet bool) http.Handler {
	var seq atomic.Int64
	latency := reg.FixedHistogram("http.request_latency_us", telemetry.LatencyBounds)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := fmt.Sprintf("r%06d", seq.Add(1))
		stats := &reqStats{}
		ctx := telemetry.WithRequestID(r.Context(), rid)
		ctx = context.WithValue(ctx, reqStatsKey{}, stats)
		w.Header().Set("X-Request-Id", rid)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

		next.ServeHTTP(rec, r.WithContext(ctx))

		dur := time.Since(start)
		latency.Observe(dur.Microseconds())
		if quiet {
			return
		}
		line := fmt.Sprintf("method=%s path=%s request_id=%s status=%d dur_us=%d cache_hit=%d cache_miss=%d",
			r.Method, r.URL.Path, rid, rec.status, dur.Microseconds(),
			stats.cacheHits.Load(), stats.cacheMisses.Load())
		if extra := stats.extra.Load(); extra != nil {
			line += " " + *extra
		}
		log.Print(line)
	})
}
