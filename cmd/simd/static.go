package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/static"
	"repro/internal/verify"
)

// handleStatic answers GET /v1/static?bench=<name>&config=<name>: the
// static cost/density analysis of one compiled image — code density,
// ifetch traffic, loop bounds and sound cycle intervals — with zero
// simulation. The response is deterministic, so equal requests get
// byte-equal bodies. An image that fails static verification maps to
// 422 with the violation report, mirroring /v1/batch.
func (s *server) handleStatic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	for k := range q {
		if k != "bench" && k != "config" {
			http.Error(w, fmt.Sprintf("bad request: unknown parameter %q (valid: bench, config)", k),
				http.StatusBadRequest)
			return
		}
	}
	b := bench.ByName(q.Get("bench"))
	if b == nil {
		http.Error(w, fmt.Sprintf("bad request: unknown bench %q (valid: %s)",
			q.Get("bench"), strings.Join(benchNames(), ", ")), http.StatusBadRequest)
		return
	}
	spec := specByName(q.Get("config"))
	if spec == nil {
		http.Error(w, fmt.Sprintf("bad request: unknown config %q (valid: %s)",
			q.Get("config"), strings.Join(configNames(), ", ")), http.StatusBadRequest)
		return
	}

	rep, err := s.staticReport(b, spec)
	if err != nil {
		if writeVerifyRejection(w, point{Bench: b.Name, Config: spec.Name}, err) {
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(struct {
		Bench string `json:"bench"`
		*static.Report
	}{b.Name, rep}); encErr != nil {
		fmt.Fprintf(io.Discard, "%v", encErr)
	}
}

// staticReport compiles and analyzes one bench×config image. The
// analyzer is fast enough (milliseconds per image) to run on the
// request goroutine; compilation re-verifies the image, so a dirty one
// surfaces as *verify.Error here.
func (s *server) staticReport(b *bench.Benchmark, spec *isa.Spec) (*static.Report, error) {
	c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
	if err != nil {
		var verr *verify.Error
		if errors.As(err, &verr) {
			return nil, verr
		}
		return nil, err
	}
	return static.Analyze(c.Image, spec)
}
