package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// newTestServer builds a server on a private registry so tests can
// assert on scheduler counters without cross-test interference.
func newTestServer(t *testing.T, workers int) (*httptest.Server, *jobs.Scheduler) {
	t.Helper()
	reg := telemetry.NewRegistry()
	sched := jobs.New(jobs.Config{Workers: workers, Registry: reg})
	lab := core.NewLabWith(sched)
	ts := httptest.NewServer(newServer(lab, reg).handler())
	t.Cleanup(ts.Close)
	return ts, sched
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"ok":true`) {
		t.Fatalf("healthz body: %s", b)
	}
}

// TestBatchRepeatHitsCache is the service-level acceptance check: the
// same batch twice must return byte-identical bodies, with the second
// serving from the content-addressed cache (hit counter moves, no
// second simulation runs).
func TestBatchRepeatHitsCache(t *testing.T) {
	ts, sched := newTestServer(t, 2)
	body := `{"points":[
		{"name":"a","bench":"queens","config":"D16/16/2"},
		{"name":"b","bench":"queens","config":"DLXe/32/3"}
	]}`

	code1, got1 := post(t, ts.URL+"/v1/batch", body)
	if code1 != http.StatusOK {
		t.Fatalf("first batch: %d %s", code1, got1)
	}
	if !strings.Contains(got1, `"bench": "queens"`) || !strings.Contains(got1, `"summary"`) {
		t.Fatalf("first batch body missing summary: %s", got1)
	}
	if strings.Contains(got1, `"error"`) {
		t.Fatalf("first batch has point errors: %s", got1)
	}
	misses := sched.Metrics().CacheMisses.Value()
	if misses != 2 {
		t.Fatalf("first batch: %d cache misses, want 2", misses)
	}

	code2, got2 := post(t, ts.URL+"/v1/batch", body)
	if code2 != http.StatusOK {
		t.Fatalf("second batch: %d %s", code2, got2)
	}
	if got1 != got2 {
		t.Fatalf("repeat batch not byte-identical:\nfirst:\n%s\nsecond:\n%s", got1, got2)
	}
	if hits := sched.Metrics().CacheHits.Value(); hits != 2 {
		t.Fatalf("second batch: %d cache hits, want 2", hits)
	}
	if m := sched.Metrics().CacheMisses.Value(); m != misses {
		t.Fatalf("second batch recomputed: misses %d -> %d", misses, m)
	}
}

func TestBatchExperimentPoint(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	code, got := post(t, ts.URL+"/v1/batch", `{"points":[{"experiment":"tab9"}]}`)
	if code != http.StatusOK {
		t.Fatalf("experiment batch: %d %s", code, got)
	}
	if !strings.Contains(got, `"tables"`) || !strings.Contains(got, `"id": "tab9"`) {
		t.Fatalf("experiment batch missing tables: %s", got)
	}
	if strings.Contains(got, `"error"`) {
		t.Fatalf("experiment batch has errors: %s", got)
	}
}

// TestBatchPointErrors checks that bad names fail per-point with the
// valid names listed, without failing the rest of the batch.
func TestBatchPointErrors(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	code, got := post(t, ts.URL+"/v1/batch", `{"points":[
		{"bench":"nope","config":"d16"},
		{"bench":"queens","config":"nope"},
		{"experiment":"nope"},
		{"name":"both","bench":"queens","config":"d16","experiment":"fig4"},
		{"bench":"queens","config":"dlxe"}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, got)
	}
	for _, want := range []string{
		`unknown bench \"nope\" (valid: `,
		"queens",
		`unknown config \"nope\" (valid: d16, dlxe, D16/16/2`,
		`unknown experiment \"nope\" (valid: fig4`,
		"each point needs either bench+config or experiment",
		`"summary"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("batch body missing %q:\n%s", want, got)
		}
	}
}

func TestBatchBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, 1)

	if code, body := post(t, ts.URL+"/v1/batch", `{"points":[`); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/batch", `{"points":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty points: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/batch: %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	if code, body := post(t, ts.URL+"/v1/batch", `{"points":[{"bench":"queens","config":"d16"}]}`); code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"jobs_submitted 1", "jobs_done 1", "jobs_cache_misses 1"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, b)
		}
	}
}
