package main

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/explain"
)

// explainParams is the accepted URL parameter set — the explain grammar
// keys exactly, so the CLI and the service stay in lockstep.
var explainParams = []string{
	"a", "b", "bench", "bus", "waits", "cachekb", "top", "rows", "misspenalty", "threshold",
}

// handleExplain answers GET /v1/explain: the same A/B drill-down as
// `repro -explain`, returned as the JSON report. Each side names a
// compiler configuration, a .mcst store path readable by the server, or
// the literal "store" for the server's own measurement surface (the
// -store file plus every point measured by batches since).
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q, err := explainQueryFromURL(r.URL.Query())
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	side := func(source string) (*explain.Side, error) {
		if source == "store" {
			return explain.SideFromPoints("store", s.snapshotPoints(), q)
		}
		return explain.ResolveSide(s.lab, source, q)
	}
	sa, err := side(q.A)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sb, err := side(q.B)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	rep, err := explain.RunSides(s.lab, q, sa, sb)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	statsFrom(r.Context()).annotate("matched", strconv.Itoa(rep.Matched))
	statsFrom(r.Context()).annotate("drills", strconv.Itoa(len(rep.Drills)))
	writeJSON(w, rep)
}

// explainQueryFromURL builds the explain query from URL parameters by
// reassembling grammar terms, so validation and defaults live in one
// parser shared with the CLI.
func explainQueryFromURL(v url.Values) (explain.Query, error) {
	var terms []string
	for _, k := range explainParams {
		if val := v.Get(k); val != "" {
			terms = append(terms, k+"="+val)
		}
	}
	for k := range v {
		known := false
		for _, p := range explainParams {
			if k == p {
				known = true
				break
			}
		}
		if !known {
			return explain.Query{}, fmt.Errorf("unknown query parameter %q", k)
		}
	}
	return explain.ParseQuery(strings.Join(terms, " "))
}
