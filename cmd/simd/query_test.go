package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// newStoreServer is newTestServer plus an attached store file in a temp
// dir, returning the inner *server so tests can reach the surface.
func newStoreServer(t *testing.T, workers int) (*httptest.Server, *server, string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	sched := jobs.New(jobs.Config{Workers: workers, Registry: reg})
	lab := core.NewLabWith(sched)
	app := newServer(lab, reg)
	path := filepath.Join(t.TempDir(), "points.mcst")
	if err := app.loadStore(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(app.handler())
	t.Cleanup(ts.Close)
	return ts, app, path
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestQueryEndpoint runs a batch, then checks /v1/query filters the
// resulting surface, matches the store package's own encoding byte for
// byte (the repro -query identity contract), and persists the points to
// the attached store file.
func TestQueryEndpoint(t *testing.T) {
	ts, app, path := newStoreServer(t, 2)

	if code, body := post(t, ts.URL+"/v1/batch", `{"points":[
		{"bench":"queens","config":"d16"},
		{"bench":"queens","config":"dlxe"}
	]}`); code != http.StatusOK || strings.Contains(body, `"error"`) {
		t.Fatalf("batch: %d %s", code, body)
	}

	code, got := get(t, ts.URL+"/v1/query?bench=queens&isa=D16/16/2&by=cycles&top=3")
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, got)
	}

	// The service must encode exactly what the store package computes —
	// the same contract `repro -query` honors, so CLI and service give
	// byte-identical answers over the same surface.
	f, err := store.ParseFilter("bench=queens isa=D16/16/2 by=cycles top=3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Query(app.snapshotPoints(), f)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		t.Fatal(err)
	}
	if got != want.String() {
		t.Fatalf("service and store encodings differ:\nservice:\n%s\nstore:\n%s", got, want.String())
	}
	if res.Matched != 8 || len(res.Points) != 3 {
		t.Fatalf("query matched %d points, returned %d; want 8 matched, 3 returned", res.Matched, len(res.Points))
	}
	for _, p := range res.Points {
		if p.Bench != "queens" || p.Config != "D16/16/2" {
			t.Fatalf("filter leak: got point %s", p.Key())
		}
	}

	// The batch's points were appended to the attached store file.
	onDisk, err := store.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(store.Canon(onDisk)) != 16 {
		t.Fatalf("store file has %d canonical points, want 16 (2 configs × 8 grid points)", len(store.Canon(onDisk)))
	}
}

func TestQueryBadRequests(t *testing.T) {
	ts, _, _ := newStoreServer(t, 1)
	if code, body := get(t, ts.URL+"/v1/query?bogus=1"); code != http.StatusBadRequest {
		t.Fatalf("unknown param: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/query?by=bogus"); code != http.StatusBadRequest {
		t.Fatalf("unknown metric: %d %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/query", "{}"); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/query: %d %s", code, body)
	}
}

// TestDiffEndpoint feeds /v1/diff two inline surfaces where one point
// has +15% cycles injected into its ifetch_wait bucket, and checks the
// report pinpoints exactly that point and bucket.
func TestDiffEndpoint(t *testing.T) {
	ts, _, _ := newStoreServer(t, 1)

	mk := func(benchName string, cycles, ifetch int64) store.Point {
		p := store.Point{
			Bench: benchName, Config: "D16/16/2", BusBytes: 4, WaitStates: 2,
			Cycles: cycles, Instrs: 100,
		}
		p.Buckets[store.BUseful] = cycles - ifetch
		p.Buckets[store.BIFetchWait] = ifetch
		return p
	}
	a := []store.Point{mk("sieve", 1000, 200), mk("queens", 2000, 400)}
	b := []store.Point{mk("sieve", 1150, 350), mk("queens", 2000, 400)} // +15% on sieve, all in ifetch_wait

	ab, err := json.Marshal(map[string]any{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	code, got := post(t, ts.URL+"/v1/diff", string(ab))
	if code != http.StatusOK {
		t.Fatalf("diff: %d %s", code, got)
	}
	var rep store.DiffReport
	if err := json.Unmarshal([]byte(got), &rep); err != nil {
		t.Fatalf("diff body: %v\n%s", err, got)
	}
	if rep.Matched != 2 || rep.Regressed != 1 || rep.Improved != 0 {
		t.Fatalf("diff report: matched=%d regressed=%d improved=%d, want 2/1/0", rep.Matched, rep.Regressed, rep.Improved)
	}
	worst := rep.Deltas[0]
	if worst.Bench != "sieve" || worst.WorstBucket != "ifetch_wait" {
		t.Fatalf("worst mover: %+v, want sieve/ifetch_wait", worst)
	}
	if worst.Rel < 0.149 || worst.Rel > 0.151 {
		t.Fatalf("worst mover rel = %v, want ~0.15", worst.Rel)
	}
}

func TestDiffBadRequests(t *testing.T) {
	ts, _, _ := newStoreServer(t, 1)
	if code, body := post(t, ts.URL+"/v1/diff", `{`); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/diff", `{}`); code != http.StatusBadRequest {
		t.Fatalf("empty sides: %d %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/diff", `{"a_file":"/nonexistent.mcst","b_file":"/nonexistent.mcst"}`); code != http.StatusBadRequest {
		t.Fatalf("missing files: %d %s", code, body)
	}
	// A leaky bucket attribution must be rejected at the door.
	if code, body := post(t, ts.URL+"/v1/diff",
		`{"a":[{"bench":"x","config":"c","cycles":10}],"b":[{"bench":"x","config":"c","cycles":10}]}`); code != http.StatusBadRequest {
		t.Fatalf("invalid points: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/diff"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/diff: %d %s", code, body)
	}
}

// TestStoreReload checks the append-only persistence loop: points
// written by one server instance are served by the next one attached to
// the same file.
func TestStoreReload(t *testing.T) {
	ts, app, path := newStoreServer(t, 1)
	if code, body := post(t, ts.URL+"/v1/batch", `{"points":[{"bench":"towers","config":"d16"}]}`); code != http.StatusOK || strings.Contains(body, `"error"`) {
		t.Fatalf("batch: %d %s", code, body)
	}
	ts.Close()

	reg := telemetry.NewRegistry()
	app2 := newServer(core.NewLabWith(jobs.New(jobs.Config{Workers: 1, Registry: reg})), reg)
	if err := app2.loadStore(path); err != nil {
		t.Fatal(err)
	}
	if got, want := len(app2.snapshotPoints()), len(app.snapshotPoints()); got != want || got == 0 {
		t.Fatalf("reloaded %d points, want %d (>0)", got, want)
	}
}
