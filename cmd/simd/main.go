// Command simd serves the simulation lab over HTTP.
//
// Usage:
//
//	simd -listen :8080 -jobs 4      # 4 simulation workers
//
// Endpoints:
//
//	POST /v1/batch    run a batch of measurement/experiment points
//	GET  /v1/query    filter/top-N over the stored measurement surface
//	POST /v1/diff     A/B diff of two surfaces (worst movers per bucket)
//	GET  /healthz     liveness + scheduler snapshot
//	GET  /metrics     Prometheus text format (jobs_* scheduler metrics,
//	                  compiler counters, model metrics, request latency)
//	GET  /debug/pprof CPU/heap/goroutine profiles
//
// Results are content-addressed: repeating a batch is served from the
// result cache with a byte-identical body. A full queue returns 503
// with Retry-After. SIGINT/SIGTERM drains in-flight jobs before exit.
//
// Every request gets an ID (echoed in X-Request-Id), propagated into
// scheduler spans, and — unless -quiet — one structured key=value
// access-log line. -store attaches a columnar store file (docs/STORE.md):
// its points seed /v1/query and new measurements are appended to it.
// See docs/SERVICE.md for the API and semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":8080", "address to serve on")
	workers := flag.Int("jobs", runtime.NumCPU(), "simulation worker pool size (min 1)")
	queue := flag.Int("queue", 128, "scheduler queue depth before /v1/batch returns 503")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-simulation timeout")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight work")
	storePath := flag.String("store", "", "columnar measurement store file (.mcst) to serve /v1/query from and append new measurements to")
	quiet := flag.Bool("quiet", false, "suppress the per-request access log")
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "simd: -jobs must be at least 1")
		os.Exit(2)
	}
	if *queue < 1 {
		fmt.Fprintln(os.Stderr, "simd: -queue must be at least 1")
		os.Exit(2)
	}

	lab := core.NewLabWith(jobs.New(jobs.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		Registry:       telemetry.Default(),
	}))
	app := newServer(lab, telemetry.Default())
	if *storePath != "" {
		if err := app.loadStore(*storePath); err != nil {
			log.Fatalf("simd: -store %s: %v", *storePath, err)
		}
	}
	srv := &http.Server{
		Addr:              *listen,
		Handler:           accessLog(app.handler(), telemetry.Default(), *quiet),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("simd: serving on %s (%d workers, queue %d)", *listen, *workers, *queue)

	select {
	case err := <-errc:
		log.Fatalf("simd: %v", err)
	case <-ctx.Done():
	}

	// Stop accepting connections, finish in-flight requests, then drain
	// the scheduler so no simulation is abandoned mid-run.
	log.Printf("simd: shutting down (%s drain budget)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("simd: http shutdown: %v", err)
	}
	if err := lab.Scheduler().Shutdown(dctx); err != nil {
		log.Printf("simd: scheduler shutdown: %v", err)
	}
	log.Printf("simd: bye")
}
