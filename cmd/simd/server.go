package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// maxBatchPoints bounds one request; bigger sweeps should be split so
// backpressure applies between slices.
const maxBatchPoints = 256

// batchRequest is the body of POST /v1/batch: a list of named points,
// each either a benchmark×configuration measurement or a whole
// experiment from the paper's evaluation.
type batchRequest struct {
	Points []point `json:"points"`
}

type point struct {
	// Name is an optional caller-chosen label echoed in the result.
	Name string `json:"name,omitempty"`
	// Bench plus Config selects one measurement point.
	Bench  string `json:"bench,omitempty"`
	Config string `json:"config,omitempty"`
	// Experiment selects one registered experiment by ID (e.g. "fig4").
	Experiment string `json:"experiment,omitempty"`
}

type pointResult struct {
	Name       string `json:"name,omitempty"`
	Bench      string `json:"bench,omitempty"`
	Config     string `json:"config,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	// Summary carries a measurement point's scalar results.
	Summary *core.SummaryRow `json:"summary,omitempty"`
	// Tables carries an experiment point's rendered tables.
	Tables *telemetry.ExperimentResult `json:"tables,omitempty"`
	Error  string                      `json:"error,omitempty"`
}

type batchResponse struct {
	Results []pointResult `json:"results"`
}

// server is the HTTP face of the simulation lab. Handlers are safe for
// concurrent use: simulation state lives behind the lab's scheduler and
// the measurement surface behind its own lock.
type server struct {
	lab *core.Lab
	reg *telemetry.Registry

	// The measurement surface /v1/query answers over: the -store file
	// loaded at boot plus every point measured by batches since. Kept
	// canonical (sorted, deduped) under mu; storePath, when set, gets
	// each batch's new points appended as a block.
	mu        sync.RWMutex
	points    []store.Point
	storePath string
}

func newServer(lab *core.Lab, reg *telemetry.Registry) *server {
	return &server{lab: lab, reg: reg}
}

// loadStore attaches a columnar store file to the server: existing
// points seed the query surface, and new measurements are appended to
// the file after each batch. A missing file is fine — it is created on
// first append.
func (s *server) loadStore(path string) error {
	pts, err := store.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storePath = path
	s.points = store.Canon(append(s.points, pts...))
	return nil
}

// snapshotPoints returns the current canonical surface. The slice is
// never mutated after publication, so callers may read it lock-free.
func (s *server) snapshotPoints() []store.Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.points
}

// addPoints merges freshly measured points into the surface and, when a
// store file is attached, appends them as a new block (append-only: the
// existing bytes are never rewritten; readers dedupe by key).
func (s *server) addPoints(pts []store.Point) error {
	if len(pts) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points = store.Canon(append(s.points, pts...))
	if s.storePath == "" {
		return nil
	}
	return store.AppendFile(s.storePath, pts)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/diff", s.handleDiff)
	mux.HandleFunc("/v1/explain", s.handleExplain)
	mux.HandleFunc("/v1/static", s.handleStatic)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleBatch submits every point before waiting on any, so one batch
// fans out across the scheduler's workers; results come back in request
// order regardless of completion order, so equal requests get
// byte-equal responses (repeats are served from the result cache). A
// full queue rejects the whole batch with 503 — callers retry, which is
// the backpressure contract.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Points) == 0 {
		http.Error(w, "bad request: empty points", http.StatusBadRequest)
		return
	}
	if len(req.Points) > maxBatchPoints {
		http.Error(w, fmt.Sprintf("bad request: %d points exceeds the %d-point batch limit",
			len(req.Points), maxBatchPoints), http.StatusBadRequest)
		return
	}

	// Phase 1: validate and submit. Measurement points become scheduler
	// tickets; experiment points run in phase 2 on this goroutine (they
	// submit their own simulation jobs internally and must not occupy a
	// worker themselves).
	tickets := make([]*jobs.Ticket, len(req.Points))
	results := make([]pointResult, len(req.Points))
	for i, p := range req.Points {
		results[i] = pointResult{Name: p.Name, Bench: p.Bench, Config: p.Config, Experiment: p.Experiment}
		res := &results[i]
		switch {
		case p.Experiment != "" && p.Bench == "":
			if experiments.ByID(p.Experiment) == nil {
				res.Error = fmt.Sprintf("unknown experiment %q (valid: %s)",
					p.Experiment, strings.Join(experimentIDs(), ", "))
			}
		case p.Bench != "" && p.Experiment == "":
			b := bench.ByName(p.Bench)
			if b == nil {
				res.Error = fmt.Sprintf("unknown bench %q (valid: %s)",
					p.Bench, strings.Join(benchNames(), ", "))
				continue
			}
			spec := specByName(p.Config)
			if spec == nil {
				res.Error = fmt.Sprintf("unknown config %q (valid: %s)",
					p.Config, strings.Join(configNames(), ", "))
				continue
			}
			t, err := s.lab.TryMeasureTicket(r.Context(), b, spec)
			if errors.Is(err, jobs.ErrOverloaded) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "overloaded: simulation queue full", http.StatusServiceUnavailable)
				return
			}
			if err != nil {
				if writeVerifyRejection(w, p, err) {
					return
				}
				res.Error = err.Error()
				continue
			}
			tickets[i] = t
		default:
			res.Error = "each point needs either bench+config or experiment"
		}
	}

	// Phase 2: collect in request order.
	stats := statsFrom(r.Context())
	var newPts []store.Point
	for i, p := range req.Points {
		res := &results[i]
		switch {
		case tickets[i] != nil:
			v, err := tickets[i].Wait(r.Context())
			if err != nil {
				if writeVerifyRejection(w, p, err) {
					return
				}
				res.Error = err.Error()
				continue
			}
			if tickets[i].Cached() {
				stats.cacheHits.Add(1)
			} else {
				stats.cacheMisses.Add(1)
			}
			m := v.(*core.Measurement)
			row := m.Summary()
			res.Summary = &row
			newPts = append(newPts, m.Points()...)
		case p.Experiment != "" && res.Error == "":
			rec, err := runExperimentPoint(s.lab, p.Experiment)
			if err != nil {
				res.Error = err.Error()
				continue
			}
			res.Tables = rec
		}
	}

	if err := s.addPoints(newPts); err != nil {
		// The measurements themselves succeeded; a store-append failure
		// only degrades the query surface, so report it out of band.
		stats.annotate("store_error", fmt.Sprintf("%q", err.Error()))
	}

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(batchResponse{Results: results}); err != nil {
		// Headers are gone; nothing to do but note it.
		fmt.Fprintf(io.Discard, "%v", err)
	}
}

// writeVerifyRejection maps a static-verification failure to 422
// Unprocessable Entity with the per-PC violation list in the body; it
// reports whether err was such a failure (and the response written).
func writeVerifyRejection(w http.ResponseWriter, p point, err error) bool {
	var verr *verify.Error
	if !errors.As(err, &verr) {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusUnprocessableEntity)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(struct {
		Error  string         `json:"error"`
		Bench  string         `json:"bench,omitempty"`
		Config string         `json:"config,omitempty"`
		Report *verify.Report `json:"report"`
	}{"image failed static verification", p.Bench, p.Config, verr.Report}); encErr != nil {
		fmt.Fprintf(io.Discard, "%v", encErr)
	}
	return true
}

// runExperimentPoint renders one experiment's tables against the shared
// lab. The text output is discarded — the recorded tables are cell-for-
// cell the same strings — and no wall-clock stamp is set, so repeated
// runs serialize identically.
func runExperimentPoint(lab *core.Lab, id string) (*telemetry.ExperimentResult, error) {
	e := experiments.ByID(id)
	rec := telemetry.NewExperimentResult(e.ID, e.Title)
	ctx := &experiments.Ctx{Lab: lab, W: io.Discard, Rec: rec}
	if err := e.Run(ctx); err != nil {
		return nil, err
	}
	return rec, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	sched := s.lab.Scheduler()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"workers":%d,"queue_depth":%d,"cache_entries":%d}`+"\n",
		sched.Workers(), sched.QueueDepth(), sched.Cache().Len())
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// specByName resolves a configuration by its paper column name
// ("D16/16/2", "DLXe/32/3", ...) or the shorthands "d16" and "dlxe".
func specByName(name string) *isa.Spec { return core.ConfigByName(name) }

func configNames() []string {
	names := []string{"d16", "dlxe"}
	for _, s := range core.Configs() {
		names = append(names, s.Name)
	}
	return names
}

func benchNames() []string {
	var names []string
	for _, b := range bench.All() {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return names
}

func experimentIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}
