package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestStaticEndpoint checks GET /v1/static returns a well-formed
// analysis, is byte-deterministic across repeated requests, and
// rejects bad parameters.
func TestStaticEndpoint(t *testing.T) {
	ts, _, _ := newStoreServer(t, 1)

	code, body := get(t, ts.URL+"/v1/static?bench=queens&config=d16")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/static: %d %s", code, body)
	}
	var rep struct {
		Bench  string `json:"bench"`
		Config string `json:"config"`
		Image  struct {
			Instrs    int64 `json:"instrs"`
			MinInstrs int64 `json:"min_instrs"`
		} `json:"image"`
		Bounds []struct {
			BusBytes  uint32 `json:"bus_bytes"`
			MinCycles int64  `json:"min_cycles"`
		} `json:"bounds"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if rep.Bench != "queens" || rep.Image.Instrs == 0 || rep.Image.MinInstrs == 0 {
		t.Fatalf("implausible report: %s", body)
	}
	if len(rep.Bounds) != 8 {
		t.Fatalf("got %d bound rows, want 8 (2 buses x 4 wait states)", len(rep.Bounds))
	}
	for _, b := range rep.Bounds {
		if b.MinCycles <= 0 {
			t.Errorf("bus=%d: min=%d, want > 0", b.BusBytes, b.MinCycles)
		}
	}

	if _, again := get(t, ts.URL+"/v1/static?bench=queens&config=d16"); again != body {
		t.Error("repeated request body differs")
	}

	if code, body := get(t, ts.URL+"/v1/static?bench=nosuch&config=d16"); code != http.StatusBadRequest {
		t.Fatalf("unknown bench: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/static?bench=queens&config=nosuch"); code != http.StatusBadRequest {
		t.Fatalf("unknown config: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/static?bench=queens&config=d16&bogus=1"); code != http.StatusBadRequest {
		t.Fatalf("unknown param: %d %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/static", "{}"); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/static: %d %s", code, body)
	}
	if !strings.Contains(body, `"config": "D16/16/2"`) {
		t.Errorf("config shorthand not resolved to paper name:\n%s", body)
	}
}
