// Command detlint runs the repo's determinism linter over the module:
// no map-order-dependent iteration, wall-clock reads or math/rand in
// packages whose output must be byte-identical across runs (see
// internal/detlint and docs/VERIFY.md).
//
// Usage:
//
//	detlint [module-root]
//
// The default root is the current directory. Exit codes: 0 clean,
// 1 findings reported, 2 usage or analysis failure. Suppress a finding
// with `//detlint:ignore <check> <reason>` on the same or preceding
// line.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/detlint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: detlint [module-root]")
		flag.PrintDefaults()
	}
	flag.Parse()
	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		root = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}
	findings, err := detlint.LintModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
