package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/telemetry"
)

// serveDebug exposes the Go profiler and a Prometheus-style metrics
// endpoint for the duration of the run, so multi-minute sweeps can be
// profiled and scraped live:
//
//	/debug/pprof/...  net/http/pprof (CPU, heap, goroutines, ...)
//	/metrics          telemetry.Default() in text exposition format
//
// It is wired behind `repro -listen <addr>` and costs nothing when the
// flag is unset: no listener, no handler, no extra work in the run.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := telemetry.Default().WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "repro: -listen %s: %v\n", addr, err)
		}
	}()
}
