package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/static"
	"repro/internal/telemetry"
)

// staticEntry is one benchmark×config analysis for the static.json
// export. Error is set when the image failed compilation or static
// verification — the analyzer never reports on a dirty image.
type staticEntry struct {
	Bench  string         `json:"bench"`
	Config string         `json:"config"`
	Error  string         `json:"error,omitempty"`
	Report *static.Report `json:"report,omitempty"`
}

// runStatic analyzes every seed benchmark on every paper configuration
// with the static cost/density analyzer — no simulation — and prints
// the paper's density story plus cycle-bound summaries. With a -json
// directory it writes the full reports to static.json. Output is
// deterministic and independent of the worker count: analyses run
// concurrently, results assemble in task order. It returns the number
// of images that could not be analyzed; main exits 3 when nonzero.
func runStatic(jsonDir string, jobs int) int {
	specs := append(isa.PaperConfigs(), isa.D16Plus())
	benches := bench.All()
	entries := make([]staticEntry, len(benches)*len(specs))

	if jobs < 1 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for bi, b := range benches {
		for si, spec := range specs {
			i, b, spec := bi*len(specs)+si, b, spec
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer func() { <-sem; wg.Done() }()
				e := staticEntry{Bench: b.Name, Config: spec.Name}
				c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
				if err == nil {
					e.Report, err = static.Analyze(c.Image, spec)
				}
				if err != nil {
					e.Error = err.Error()
				}
				entries[i] = e
			}()
		}
	}
	wg.Wait()

	find := func(b, cfg string) *static.Report {
		for _, e := range entries {
			if e.Bench == b && e.Config == cfg {
				return e.Report
			}
		}
		return nil
	}
	d16, dlxe := isa.D16().Name, isa.DLXe().Name

	fmt.Printf("static analysis v%d: %d benchmarks x %d configs, zero simulation\n\n",
		static.Version, len(benches), len(specs))
	fmt.Printf("code density and fetch traffic, D16 vs DLXe (text bytes; ifetch = bus words on the 16-bit bus):\n")
	fmt.Printf("%-12s %9s %9s %6s %9s %9s %6s\n",
		"program", "d16-text", "dlxe-text", "ratio", "d16-ifw", "dlxe-ifw", "ratio")
	logSum, n := 0.0, 0
	for _, b := range benches {
		r16, r32 := find(b.Name, d16), find(b.Name, dlxe)
		if r16 == nil || r32 == nil {
			continue
		}
		ratio := float64(r32.Image.TextBytes) / float64(r16.Image.TextBytes)
		fw16, fw32 := r16.Image.FetchWords[0].Words, r32.Image.FetchWords[0].Words
		fmt.Printf("%-12s %9d %9d %6.2f %9d %9d %6.2f\n",
			b.Name, r16.Image.TextBytes, r32.Image.TextBytes, ratio,
			fw16, fw32, float64(fw32)/float64(fw16))
		logSum += math.Log(ratio)
		n++
	}
	if n > 0 {
		fmt.Printf("%-12s %9s %9s %6.2f   (paper: ~1.5-1.6x)\n\n",
			"GEOMEAN", "", "", math.Exp(logSum/float64(n)))
	}

	fmt.Printf("static cycle bounds at bus=4B w=1 (entry to halt; max \"-\" = unbounded):\n")
	fmt.Printf("%-12s %22s %22s %10s %8s\n", "program", "d16 [min, max]", "dlxe [min, max]", "mininstrs", "diags")
	for _, b := range benches {
		r16, r32 := find(b.Name, d16), find(b.Name, dlxe)
		if r16 == nil || r32 == nil {
			continue
		}
		fmt.Printf("%-12s %22s %22s %10d %8d\n", b.Name,
			boundCell(r16), boundCell(r32), r16.Image.MinInstrs, len(r16.Diags)+len(r32.Diags))
	}

	dirty := 0
	for _, e := range entries {
		if e.Error != "" {
			fmt.Fprintf(os.Stderr, "%s on %s: %s\n", e.Bench, e.Config, e.Error)
			dirty++
		}
	}
	if dirty == 0 {
		fmt.Printf("\nall %d images analyzed\n", len(entries))
	} else {
		fmt.Printf("\n%d image(s) failed analysis\n", dirty)
	}

	if jsonDir != "" {
		path := filepath.Join(jsonDir, "static.json")
		err := telemetry.WriteJSONFile(path, struct {
			Version int           `json:"version"`
			Entries []staticEntry `json:"entries"`
		}{static.Version, entries})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	return dirty
}

// boundCell formats one image's [min, max] interval at bus=4, w=1.
func boundCell(r *static.Report) string {
	row, ok := r.BoundAt(4, 1)
	if !ok {
		return "-"
	}
	if row.MaxCycles < 0 {
		return fmt.Sprintf("[%d, -]", row.MinCycles)
	}
	return fmt.Sprintf("[%d, %d]", row.MinCycles, row.MaxCycles)
}
