// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list                     # enumerate experiments
//	repro -run fig4,tab5            # run selected experiments
//	repro -run all                  # run everything (the full evaluation)
//	repro -run all -json out/       # also write machine-readable results:
//	                                #   out/<id>.json    per-experiment tables
//	                                #   out/summary.json per-bench×config scalars
//	                                #   out/metrics.json compiler + model counters
//	repro -trace out/trace.json     # write a Chrome trace_event file of the
//	                                # compile/assemble/link/run pipeline spans
//	                                # (open in chrome://tracing or Perfetto)
//	repro -account                  # cycle-accounting report: per-benchmark
//	                                # bucket breakdowns (D16/DLXe, cacheless
//	                                # and cached) plus the per-function
//	                                # differential D16-vs-DLXe report
//	repro -listen :6060             # serve /debug/pprof and /metrics
//	                                # (Prometheus text format) during the run
//	repro ... -timing=false         # omit wall-clock stamps from JSON so
//	                                # repeated runs are byte-identical
//
// See docs/OBSERVABILITY.md for the file formats.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "all", "comma-separated experiment IDs, or \"all\"")
	jsonDir := flag.String("json", "", "directory for machine-readable results (per-experiment JSON, summary.json, metrics.json)")
	traceFile := flag.String("trace", "", "write pipeline spans as Chrome trace-event JSON to this file")
	account := flag.Bool("account", false, "run the cycle-accounting report (bucket breakdowns + differential D16/DLXe per-function report) instead of experiments")
	listen := flag.String("listen", "", "serve /debug/pprof and /metrics on this address for the duration of the run")
	timing := flag.Bool("timing", true, "stamp elapsed wall-clock seconds into per-experiment JSON (disable for byte-identical reruns)")
	flag.Parse()

	if *listen != "" {
		serveDebug(*listen)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []*experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	if *traceFile != "" {
		telemetry.SetGlobalTracer(telemetry.NewTracer())
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	ctx := &experiments.Ctx{Lab: core.NewLab(), W: os.Stdout}

	if *account {
		if err := runAccount(ctx, *jsonDir, *timing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	for _, e := range todo {
		start := time.Now()
		if *jsonDir != "" {
			ctx.Rec = telemetry.NewExperimentResult(e.ID, e.Title)
		}
		fmt.Printf("==============================================================\n")
		fmt.Printf("%s — %s\n", e.ID, e.Title)
		fmt.Printf("==============================================================\n")
		span := telemetry.StartSpan("experiment", telemetry.String("id", e.ID))
		err := e.Run(ctx)
		span.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if ctx.Rec != nil {
			if *timing {
				ctx.Rec.ElapsedSec = elapsed.Seconds()
			}
			path := filepath.Join(*jsonDir, e.ID+".json")
			if err := telemetry.WriteJSONFile(path, ctx.Rec); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			ctx.Rec = nil
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, elapsed.Seconds())
	}

	if *jsonDir != "" {
		if err := writeSummary(ctx.Lab, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runAccount runs the cycle-accounting report, optionally recording its
// tables as out/account.json.
func runAccount(ctx *experiments.Ctx, jsonDir string, timing bool) error {
	start := time.Now()
	if jsonDir != "" {
		ctx.Rec = telemetry.NewExperimentResult("account",
			"Cycle accounting: bucket breakdowns and D16-vs-DLXe per-function differential")
	}
	fmt.Printf("==============================================================\n")
	fmt.Printf("account — cycle attribution and differential D16/DLXe report\n")
	fmt.Printf("==============================================================\n")
	span := telemetry.StartSpan("experiment", telemetry.String("id", "account"))
	err := experiments.Account(ctx)
	span.End()
	if err != nil {
		return err
	}
	if ctx.Rec != nil {
		if timing {
			ctx.Rec.ElapsedSec = time.Since(start).Seconds()
		}
		if err := telemetry.WriteJSONFile(filepath.Join(jsonDir, "account.json"), ctx.Rec); err != nil {
			return err
		}
		ctx.Rec = nil
	}
	fmt.Printf("[account completed in %.1fs]\n\n", time.Since(start).Seconds())
	return nil
}

// writeSummary exports every memoized measurement's scalars
// (summary.json) and a metrics snapshot combining the process-wide
// registry (compiler counters, per-pass timings) with the measurements'
// registered model counters (metrics.json).
func writeSummary(lab *core.Lab, dir string) error {
	rows := lab.Summary()
	err := telemetry.WriteJSONFile(filepath.Join(dir, "summary.json"), struct {
		Rows []core.SummaryRow `json:"rows"`
	}{rows})
	if err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	for _, m := range lab.Measurements() {
		m.RegisterMetrics(reg, m.Bench+"."+m.Spec.Name+".")
	}
	snaps := append(telemetry.Default().Snapshot(), reg.Snapshot()...)
	return telemetry.WriteJSONFile(filepath.Join(dir, "metrics.json"), struct {
		Metrics []telemetry.Snapshot `json:"metrics"`
	}{snaps})
}

func writeTrace(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return telemetry.GlobalTracer().WriteChromeTrace(f)
}
