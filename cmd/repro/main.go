// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list            # enumerate experiments
//	repro -run fig4,tab5   # run selected experiments
//	repro -run all         # run everything (the full evaluation)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "all", "comma-separated experiment IDs, or \"all\"")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []*experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	ctx := &experiments.Ctx{Lab: core.NewLab(), W: os.Stdout}
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("==============================================================\n")
		fmt.Printf("%s — %s\n", e.ID, e.Title)
		fmt.Printf("==============================================================\n")
		if err := e.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}
}
