// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list                     # enumerate experiments
//	repro -run fig4,tab5            # run selected experiments
//	repro -run all                  # run everything (the full evaluation)
//	repro -run all -json out/       # also write machine-readable results:
//	                                #   out/<id>.json    per-experiment tables
//	                                #   out/summary.json per-bench×config scalars
//	                                #   out/metrics.json compiler + model counters
//	repro -trace out/trace.json     # write a Chrome trace_event file of the
//	                                # compile/assemble/link/run pipeline spans
//	                                # (open in chrome://tracing or Perfetto)
//	repro -verify                   # statically verify every seed benchmark
//	                                # on every paper configuration; prints a
//	                                # per-benchmark violation table, writes
//	                                # verify.json with -json, exits 3 if any
//	                                # image has violations (see docs/VERIFY.md)
//	repro -static                   # static cost/density analysis of every
//	                                # seed benchmark on every configuration,
//	                                # zero simulation: code density + ifetch
//	                                # traffic tables (the paper's ~1.5-1.6x
//	                                # density ratio), loop bounds, and sound
//	                                # whole-image cycle intervals; writes
//	                                # static.json with -json, exits 3 if any
//	                                # image fails (see docs/STATIC.md)
//	repro -account                  # cycle-accounting report: per-benchmark
//	                                # bucket breakdowns (D16/DLXe, cacheless
//	                                # and cached) plus the per-function
//	                                # differential D16-vs-DLXe report
//	repro -listen :6060             # serve /debug/pprof and /metrics
//	                                # (Prometheus text format) during the run
//	repro ... -timing=false         # omit wall-clock stamps from JSON and
//	                                # stdout so repeated runs are
//	                                # byte-identical
//	repro -jobs 8                   # run experiments concurrently on an
//	                                # 8-worker simulation scheduler; output
//	                                # is assembled in submission order and
//	                                # stays byte-identical to -jobs 1
//	repro -query 'bench=queens by=cycles top=5' -store out/points.mcst
//	                                # filter/rank the columnar measurement
//	                                # store a -json run wrote; the JSON
//	                                # answer is byte-identical to simd's
//	                                # GET /v1/query for the same filter
//	repro -explain 'a=D16/16/2 b=DLXe/32/3 bench=towers waits=1'
//	                                # A/B drill-down: pair the two sides'
//	                                # points (configs re-measured, .mcst
//	                                # files read), rank the worst movers,
//	                                # re-simulate them and print per-PC
//	                                # stall heatmaps plus stall-annotated
//	                                # disassembly; writes explain.json
//	                                # with -json (see docs/EXPLAIN.md)
//	repro -sweep 'classes=loopy,callheavy count=50 seed=7 waits=0-3'
//	                                # generate a verified synthetic corpus
//	                                # (every program compiles on all ISAs,
//	                                # passes the machine-code verifier and
//	                                # computes identical output on D16 and
//	                                # DLXe) and cross it with the hardware
//	                                # grid, streaming the surface into the
//	                                # -store file; failing programs leave a
//	                                # minimized .mc in -faildir plus a
//	                                # one-line repro; exit 4 on failures
//	                                # (see docs/SWEEP.md)
//
// With -json, the run also writes out/points.mcst: the columnar
// measurement store (one point per bench × config × bus × wait states,
// with exact per-cause cycle buckets). See docs/STORE.md for the
// format, the query grammar and the diff semantics, and
// docs/OBSERVABILITY.md for the other file formats; docs/SERVICE.md
// covers the scheduler the parallel mode runs on.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "all", "comma-separated experiment IDs, or \"all\"")
	jsonDir := flag.String("json", "", "directory for machine-readable results (per-experiment JSON, summary.json, metrics.json)")
	traceFile := flag.String("trace", "", "write pipeline spans as Chrome trace-event JSON to this file")
	account := flag.Bool("account", false, "run the cycle-accounting report (bucket breakdowns + differential D16/DLXe per-function report) instead of experiments")
	verifyMode := flag.Bool("verify", false, "statically verify every seed benchmark on every paper configuration and print per-benchmark violation tables (exit 3 on any violation)")
	staticMode := flag.Bool("static", false, "run the static cost/density analyzer on every seed benchmark x paper configuration (no simulation): density + ifetch tables, cycle-bound summaries; writes static.json with -json (exit 3 on any failed image)")
	listen := flag.String("listen", "", "serve /debug/pprof and /metrics on this address for the duration of the run")
	timing := flag.Bool("timing", true, "stamp elapsed wall-clock seconds into per-experiment JSON (disable for byte-identical reruns)")
	jobsN := flag.Int("jobs", 1, "simulation workers; >1 runs experiments concurrently through the job scheduler, with output assembled in deterministic submission order")
	query := flag.String("query", "", "query the columnar measurement store instead of running experiments: key=value filter terms (bench, config/isa, bus, waits, cachekb, by, top; see docs/STORE.md)")
	explainQ := flag.String("explain", "", "A/B explain drill-down: a=<config|store.mcst> b=<config|store.mcst> plus bench/bus/waits/cachekb/top/rows filters (see docs/EXPLAIN.md); writes <dir>/explain.json with -json")
	storePath := flag.String("store", "", "measurement store file for -query and -sweep (default <dir>/points.mcst next to -json output, see docs/STORE.md)")
	sweepSpec := flag.String("sweep", "", "full-factorial design-space sweep over a generated, verified synthetic corpus: key=value terms (classes, count, seed, progseed, isa, bus, waits, cachekb, misspenalty; see docs/SWEEP.md); writes the surface to -store")
	failDir := flag.String("faildir", "", "artifact directory for sweep failures: minimized .mc source per failing program (default <dir>/sweep-failures)")
	flag.Parse()

	if *listen != "" {
		serveDebug(*listen)
	}

	if *sweepSpec == "" && (*query != "" || *storePath != "") {
		if err := runQuery(*storePath, *query, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(2)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *verifyMode {
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if dirty := runVerify(*jsonDir); dirty > 0 {
			os.Exit(3)
		}
		return
	}

	if *staticMode {
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if dirty := runStatic(*jsonDir, *jobsN); dirty > 0 {
			os.Exit(3)
		}
		return
	}

	var todo []*experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\nvalid experiments: %s\n",
					id, strings.Join(experimentIDs(), ", "))
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	if *traceFile != "" {
		telemetry.SetGlobalTracer(telemetry.NewTracer())
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var lab *core.Lab
	if *jobsN > 1 {
		lab = core.NewParallelLab(*jobsN)
	} else {
		lab = core.NewLab()
	}
	ctx := &experiments.Ctx{Lab: lab, W: os.Stdout}

	if *sweepSpec != "" {
		failed, err := runSweep(lab, *sweepSpec, *storePath, *failDir, *jsonDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(2)
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if failed > 0 {
			os.Exit(4)
		}
		return
	}

	if *explainQ != "" {
		if err := runExplain(lab, *explainQ, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(2)
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	if *account {
		if err := runAccount(ctx, *jsonDir, *timing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	outs := make([]*expOutput, len(todo))
	if *jobsN > 1 {
		// Every experiment runs on its own goroutine against the shared
		// lab: heavy work (the simulations) lands on the scheduler's
		// worker pool, identical points coalesce, and the cheap table
		// rendering happens concurrently into per-experiment buffers.
		// Draining the buffers in submission order makes stdout and the
		// JSON files byte-identical to a sequential run.
		for i, e := range todo {
			outs[i] = newExpOutput()
			go runExperiment(lab, e, *jsonDir != "", outs[i])
		}
	}
	for i, e := range todo {
		if outs[i] == nil {
			outs[i] = newExpOutput()
			runExperiment(lab, e, *jsonDir != "", outs[i])
		}
		o := outs[i]
		<-o.done
		printHeader(os.Stdout, e)
		if _, err := io.Copy(os.Stdout, &o.buf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, o.err)
			os.Exit(1)
		}
		if o.rec != nil {
			if *timing {
				o.rec.ElapsedSec = o.elapsed.Seconds()
			}
			path := filepath.Join(*jsonDir, e.ID+".json")
			if err := telemetry.WriteJSONFile(path, o.rec); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		if *timing {
			fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, o.elapsed.Seconds())
		} else {
			fmt.Printf("[%s completed]\n\n", e.ID)
		}
	}

	if *jsonDir != "" {
		if err := writeSummary(ctx.Lab, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// expOutput collects one experiment's rendered tables, structured
// record and outcome; done is closed when the experiment finishes.
type expOutput struct {
	buf     bytes.Buffer
	rec     *telemetry.ExperimentResult
	err     error
	elapsed time.Duration
	done    chan struct{}
}

func newExpOutput() *expOutput { return &expOutput{done: make(chan struct{})} }

// runExperiment executes one experiment into its output buffer. It is
// safe to call from concurrent goroutines: each experiment gets its own
// Ctx, and all shared state sits behind the lab's scheduler.
func runExperiment(lab *core.Lab, e *experiments.Experiment, record bool, o *expOutput) {
	defer close(o.done)
	start := time.Now()
	ctx := &experiments.Ctx{Lab: lab, W: &o.buf}
	if record {
		ctx.Rec = telemetry.NewExperimentResult(e.ID, e.Title)
	}
	span := telemetry.StartSpan("experiment", telemetry.String("id", e.ID))
	o.err = e.Run(ctx)
	span.End()
	o.elapsed = time.Since(start)
	if o.err == nil && record {
		o.rec = ctx.Rec
	}
}

func printHeader(w io.Writer, e *experiments.Experiment) {
	fmt.Fprintf(w, "==============================================================\n")
	fmt.Fprintf(w, "%s — %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "==============================================================\n")
}

// experimentIDs returns every registered experiment ID in paper order.
func experimentIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// runAccount runs the cycle-accounting report, optionally recording its
// tables as out/account.json.
func runAccount(ctx *experiments.Ctx, jsonDir string, timing bool) error {
	start := time.Now()
	if jsonDir != "" {
		ctx.Rec = telemetry.NewExperimentResult("account",
			"Cycle accounting: bucket breakdowns and D16-vs-DLXe per-function differential")
	}
	fmt.Printf("==============================================================\n")
	fmt.Printf("account — cycle attribution and differential D16/DLXe report\n")
	fmt.Printf("==============================================================\n")
	span := telemetry.StartSpan("experiment", telemetry.String("id", "account"))
	err := experiments.Account(ctx)
	span.End()
	if err != nil {
		return err
	}
	if ctx.Rec != nil {
		if timing {
			ctx.Rec.ElapsedSec = time.Since(start).Seconds()
		}
		if err := telemetry.WriteJSONFile(filepath.Join(jsonDir, "account.json"), ctx.Rec); err != nil {
			return err
		}
		ctx.Rec = nil
	}
	if jsonDir != "" && len(ctx.Points) > 0 {
		// Cached-memory points (CacheKB > 0) measured by the account
		// experiment join the queryable surface; appending never rewrites
		// the closed-form grid a -json run wrote.
		if err := store.AppendFile(filepath.Join(jsonDir, "points.mcst"), ctx.Points); err != nil {
			return err
		}
	}
	if timing {
		fmt.Printf("[account completed in %.1fs]\n\n", time.Since(start).Seconds())
	} else {
		fmt.Printf("[account completed]\n\n")
	}
	return nil
}

// writeSummary exports every memoized measurement's scalars
// (summary.json), the columnar measurement surface (points.mcst, see
// docs/STORE.md — what repro -query and simd /v1/query answer from),
// and a metrics snapshot combining the process-wide registry (compiler
// counters, per-pass timings) with the measurements' registered model
// counters (metrics.json).
func writeSummary(lab *core.Lab, dir string) error {
	rows := lab.Summary()
	err := telemetry.WriteJSONFile(filepath.Join(dir, "summary.json"), struct {
		Rows []core.SummaryRow `json:"rows"`
	}{rows})
	if err != nil {
		return err
	}
	if err := store.WriteFile(filepath.Join(dir, "points.mcst"), lab.Points()); err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	for _, m := range lab.Measurements() {
		m.RegisterMetrics(reg, m.Bench+"."+m.Spec.Name+".")
	}
	snaps := append(telemetry.Default().Snapshot(), reg.Snapshot()...)
	return telemetry.WriteJSONFile(filepath.Join(dir, "metrics.json"), struct {
		Metrics []telemetry.Snapshot `json:"metrics"`
	}{snaps})
}

func writeTrace(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return telemetry.GlobalTracer().WriteChromeTrace(f)
}
