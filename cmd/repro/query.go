package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/store"
)

// runQuery answers `repro -query` from a columnar measurement store:
// parse the filter grammar, stream the store block by block, and print
// the result as indented JSON. The document is store.QueryResult
// encoded exactly the way simd's GET /v1/query encodes it, so the CLI
// and the service give byte-identical answers for the same store and
// filter; streaming (store.QueryFile + store.WriteQueryJSON) keeps
// memory bounded by the answer, not the surface.
func runQuery(storePath, filterStr, jsonDir string) error {
	if storePath == "" {
		if jsonDir != "" {
			storePath = filepath.Join(jsonDir, "points.mcst")
		} else {
			storePath = "points.mcst"
		}
	}
	f, err := store.ParseFilter(filterStr)
	if err != nil {
		return err
	}
	res, err := store.QueryFile(storePath, f)
	if err != nil {
		return fmt.Errorf("-query needs a store file written by `repro -run ... -json <dir>`: %w", err)
	}
	return store.WriteQueryJSON(os.Stdout, res)
}
