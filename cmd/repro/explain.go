package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/telemetry"
)

// runExplain answers `repro -explain`: parse the explain grammar, walk
// the A/B drill-down (surface diff → worst movers → stall heatmaps →
// annotated disassembly) and print the text report. With -json the
// structured report also lands in <dir>/explain.json. The text output
// is deterministic — byte-identical across repeated and -jobs N runs —
// which make's explain-smoke target checks.
func runExplain(lab *core.Lab, queryStr, jsonDir string) error {
	q, err := explain.ParseQuery(queryStr)
	if err != nil {
		return err
	}
	rep, err := explain.Run(lab, q)
	if err != nil {
		return err
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if jsonDir != "" {
		if err := telemetry.WriteJSONFile(filepath.Join(jsonDir, "explain.json"), rep); err != nil {
			return err
		}
		// Stderr, not stdout: the path varies per run and stdout must
		// stay byte-identical for the explain-smoke determinism check.
		fmt.Fprintf(os.Stderr, "[explain report written to %s]\n", filepath.Join(jsonDir, "explain.json"))
	}
	return nil
}
