package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/sweep"
)

// runSweep answers `repro -sweep`: parse the sweep grammar, generate
// the verified synthetic corpus, fan the full-factorial grid through
// the lab and stream the surface into the store file. Stdout (spec
// header, per-failure repro lines, summary) is deterministic —
// byte-identical across repeated and -jobs N runs, which make's
// sweep-smoke target checks; run-variable paths go to stderr. Returns
// the number of failing programs (the caller exits 4 when nonzero) —
// every failure has already been reported with a one-line repro and,
// when the artifact dir is writable, a minimized .mc source.
func runSweep(lab *core.Lab, specStr, storePath, failDir, jsonDir string) (int, error) {
	spec, err := sweep.Parse(specStr)
	if err != nil {
		return 0, err
	}
	if storePath == "" {
		storePath = "points.mcst"
		if jsonDir != "" {
			storePath = filepath.Join(jsonDir, "points.mcst")
		}
	}
	if failDir == "" {
		failDir = "sweep-failures"
		if jsonDir != "" {
			failDir = filepath.Join(jsonDir, "sweep-failures")
		}
	}
	r := &sweep.Runner{Lab: lab, FailDir: failDir, Log: os.Stdout, Errw: os.Stderr}
	sum, err := r.Run(spec, storePath)
	if err != nil {
		return 0, err
	}
	// Stderr, not stdout: the path varies per run and stdout must stay
	// byte-identical for the sweep-smoke determinism check.
	fmt.Fprintf(os.Stderr, "[sweep surface written to %s]\n", storePath)
	return len(sum.Failures), nil
}
