package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// benchReport pairs one benchmark×config verification report for the
// verify.json export.
type benchReport struct {
	Bench string `json:"bench"`
	*verify.Report
}

// runVerify compiles every seed benchmark for every paper configuration
// and prints the static-verification report for each image. With a
// -json directory it also writes verify.json. It returns the number of
// dirty (violating or uncompilable) images; main exits 3 when nonzero.
func runVerify(jsonDir string) int {
	specs := append(isa.PaperConfigs(), isa.D16Plus())
	var reports []benchReport
	dirty := 0
	for _, b := range bench.All() {
		for _, spec := range specs {
			rep, err := verifyOne(b, spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s on %s: %v\n", b.Name, spec.Name, err)
				dirty++
				continue
			}
			fmt.Printf("%-12s ", b.Name)
			rep.WriteTable(os.Stdout)
			if !rep.OK() {
				dirty++
			}
			reports = append(reports, benchReport{Bench: b.Name, Report: rep})
		}
	}
	if dirty == 0 {
		fmt.Printf("\nall %d images verified clean\n", len(reports))
	} else {
		fmt.Printf("\n%d image(s) failed verification\n", dirty)
	}
	if jsonDir != "" {
		path := filepath.Join(jsonDir, "verify.json")
		err := telemetry.WriteJSONFile(path, struct {
			Reports []benchReport `json:"reports"`
		}{reports})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	return dirty
}

// verifyOne compiles b for spec and returns the verification report —
// including the report of a gate-rejected image, recovered from the
// compile error.
func verifyOne(b *bench.Benchmark, spec *isa.Spec) (*verify.Report, error) {
	c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
	if err != nil {
		var verr *verify.Error
		if errors.As(err, &verr) {
			return verr.Report, nil
		}
		return nil, err
	}
	return verify.Image(c.Image, spec), nil
}
