package main

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/prog"
	"repro/internal/static"
)

// benchStaticThroughput measures the static cost/density analyzer —
// verified images analyzed per wall-clock second across both base ISAs,
// dominators, loop inference and the full bound grid included.
// Compilation happens once outside the loop: the analyzer's cost, not
// the compiler's, is what this gate watches.
func benchStaticThroughput() (Result, error) {
	type input struct {
		img  *prog.Image
		spec *isa.Spec
	}
	var inputs []input
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		for _, b := range bench.All() {
			c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
			if err != nil {
				return Result{}, err
			}
			inputs = append(inputs, input{c.Image, spec})
		}
	}
	var images, iters int64
	r, err := run("static/throughput", func(b *testing.B) {
		b.ReportAllocs()
		images, iters = 0, int64(b.N)
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				if _, err := static.Analyze(in.img, in.spec); err != nil {
					b.Fatal(err)
				}
				images++
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	if iters > 0 && r.NsPerOp > 0 {
		perIter := float64(images) / float64(iters)
		r.ImagesPerSec = perIter * 1e9 / r.NsPerOp
	}
	return r, nil
}
