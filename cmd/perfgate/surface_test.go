package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

func surfacePoint(benchName string, cycles, ifetch int64) store.Point {
	p := store.Point{
		Bench: benchName, Config: "D16/16/2", BusBytes: 2, WaitStates: 1,
		Cycles: cycles, Instrs: cycles - ifetch,
	}
	p.Buckets[store.BUseful] = cycles - ifetch
	p.Buckets[store.BIFetchWait] = ifetch
	return p
}

// TestRunSurface writes two stores where one point carries a +15%
// cycle regression and checks the gate fails on exactly that, while the
// clean pair passes.
func TestRunSurface(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.mcst")
	b := filepath.Join(dir, "b.mcst")
	c := filepath.Join(dir, "c.mcst")

	base := []store.Point{surfacePoint("queens", 1000, 100), surfacePoint("towers", 2000, 200)}
	regressed := []store.Point{surfacePoint("queens", 1150, 250), surfacePoint("towers", 2000, 200)}

	for path, pts := range map[string][]store.Point{a: base, b: regressed, c: base} {
		if err := store.WriteFile(path, pts); err != nil {
			t.Fatal(err)
		}
	}

	err := runSurface(a+","+b, 0.10)
	if err == nil {
		t.Fatal("surface gate passed a 15% regression")
	}
	if !strings.Contains(err.Error(), "1 point(s) regressed") {
		t.Fatalf("gate error = %v, want one regressed point", err)
	}

	if err := runSurface(a+","+c, 0.10); err != nil {
		t.Fatalf("identical surfaces failed the gate: %v", err)
	}

	if err := runSurface(a, 0.10); err == nil {
		t.Fatal("single-file spec accepted")
	}
	if err := runSurface(a+","+filepath.Join(dir, "missing.mcst"), 0.10); err == nil {
		t.Fatal("missing store accepted")
	}
}

func TestComparePointsPerSec(t *testing.T) {
	old := report(1, Result{Name: "store/throughput", NsPerOp: 100, AllocsPerOp: 1, PointsPerSec: 1e6})
	cur := report(2, Result{Name: "store/throughput", NsPerOp: 100, AllocsPerOp: 1, PointsPerSec: 7e5})
	bad := Regressions(Compare(old, cur, 0.10))
	if len(bad) != 1 || bad[0].Metric != "points_per_sec" {
		t.Fatalf("want one points_per_sec regression, got %+v", bad)
	}
}
