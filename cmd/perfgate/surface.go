package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// runSurface is perfgate's whole-surface gate: it diffs two columnar
// measurement stores (baseline first) with store.Diff and fails when any
// matched point's cycles regressed past the threshold — the cycle-level
// complement to the wall-clock BENCH gate. The report names the worst
// movers and, per cycle bucket, the point where that cause grew most.
func runSurface(spec string, threshold float64) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-surface wants two store files: -surface baseline.mcst,current.mcst")
	}
	a, err := store.ReadFile(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	b, err := store.ReadFile(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	rep := store.Diff(a, b, store.DiffOptions{Threshold: threshold})

	fmt.Printf("surface diff: %d vs %d points, %d matched (threshold %.0f%%)\n",
		rep.PointsA, rep.PointsB, rep.Matched, rep.Threshold*100)
	if len(rep.OnlyA) > 0 || len(rep.OnlyB) > 0 {
		fmt.Printf("  coverage: %d points only in baseline, %d only in current\n",
			len(rep.OnlyA), len(rep.OnlyB))
	}
	for _, d := range rep.Deltas {
		if d.Delta == 0 {
			continue
		}
		tag := "moved"
		switch {
		case d.Rel > rep.Threshold:
			tag = "REGRESSION"
		case d.Rel < -rep.Threshold:
			tag = "improved"
		}
		fmt.Printf("  %-10s %s: cycles %d -> %d (%+.1f%%, worst bucket %s)\n",
			tag, d.PointKey, d.CyclesA, d.CyclesB, d.Rel*100, orNone(d.WorstBucket))
	}
	for _, m := range rep.WorstByBucket {
		fmt.Printf("  bucket %-15s grew most at %s: +%d cycles (%.1f%% of point)\n",
			m.Bucket, m.PointKey, m.Delta, m.Rel*100)
	}
	if rep.Regressed > 0 {
		return fmt.Errorf("%d point(s) regressed more than %.0f%% (worst %.1f%%)",
			rep.Regressed, rep.Threshold*100, rep.MaxRel*100)
	}
	fmt.Printf("surface gate passes: %d regressed, %d improved, worst rel %+.1f%%\n",
		rep.Regressed, rep.Improved, rep.MaxRel*100)
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// benchStoreThroughput measures the measurement store's append/scan
// round trip — points written to and read back from disk per second —
// on a synthetic surface big enough to exercise the columnar encoder.
// Reported as points_per_sec (higher is better) next to the simulator's
// instrs_per_sec.
func benchStoreThroughput() (Result, error) {
	const npoints = 4096
	pts := make([]store.Point, 0, npoints)
	for i := 0; i < npoints; i++ {
		p := store.Point{
			Bench:      fmt.Sprintf("bench%03d", i%64),
			Config:     [2]string{"D16/16/2", "DLXe/32/3"}[i%2],
			BusBytes:   int64(2 << (i % 2)),
			WaitStates: int64(i % 4),
			CacheKB:    int64(i / 256),
			Instrs:     int64(1000 + i),
		}
		p.Buckets[store.BUseful] = p.Instrs
		p.Buckets[store.BIFetchWait] = int64(i % 100)
		p.Cycles = p.Instrs + p.Buckets[store.BIFetchWait]
		pts = append(pts, p)
	}

	dir, err := os.MkdirTemp("", "perfgate-store")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.mcst")

	var iters int64
	r, err := run("store/throughput", func(b *testing.B) {
		b.ReportAllocs()
		iters = int64(b.N)
		for i := 0; i < b.N; i++ {
			if err := store.WriteFile(path, pts); err != nil {
				b.Fatal(err)
			}
			got, err := store.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != npoints {
				b.Fatalf("round trip lost points: %d != %d", len(got), npoints)
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	if iters > 0 && r.NsPerOp > 0 {
		r.PointsPerSec = float64(npoints) * 1e9 / r.NsPerOp
	}
	return r, nil
}
