// Command perfgate is the continuous-benchmark harness: it re-runs the
// repository's benchmark suite (every experiment from bench_test.go,
// plus a simulator-throughput microbench) in-process, writes the
// results as BENCH_<n>.json at the repository root, and compares them
// against the latest prior BENCH file.
//
// Usage:
//
//	perfgate                    # run everything, write BENCH_<n+1>.json,
//	                            # exit 1 on any >10% regression
//	perfgate -bench 'fig4|sim'  # only benchmarks matching the regexp
//	perfgate -threshold 0.25    # tolerate up to 25% noise
//	perfgate -benchtime 1x      # single iteration (fast, noisy)
//	perfgate -surface a.mcst,b.mcst
//	                            # diff two stored measurement surfaces
//	                            # instead; exit 1 on any >threshold
//	                            # cycle regression (see docs/STORE.md)
//
// The first run has no baseline and always passes. ns/op and allocs/op
// regress when they grow; simulator instrs/sec and store points/sec
// regress when they drop.
// See docs/OBSERVABILITY.md for the BENCH_*.json schema.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json reports")
	threshold := flag.Float64("threshold", 0.10, "relative slowdown that fails the gate")
	benchtime := flag.String("benchtime", "1s", "testing -benchtime value per benchmark (heavy experiments still run once; cheap ones iterate to stability)")
	pattern := flag.String("bench", "", "only run benchmarks whose name matches this regexp")
	surface := flag.String("surface", "", "diff two measurement stores (baseline.mcst,current.mcst) instead of running benchmarks")
	testing.Init()
	flag.Parse()
	if *surface != "" {
		if err := runSurface(*surface, *threshold); err != nil {
			fatal(err)
		}
		return
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatal(err)
	}

	sel := regexp.MustCompile("")
	if *pattern != "" {
		var err error
		if sel, err = regexp.Compile(*pattern); err != nil {
			fatal(err)
		}
	}

	prev, prevSeq, err := LatestReport(*dir)
	if err != nil {
		fatal(err)
	}
	cur := &Report{
		Seq:       prevSeq + 1,
		GoVersion: runtime.Version(),
		UnixTime:  time.Now().Unix(),
	}

	for _, e := range experiments.All() {
		name := "experiment/" + e.ID
		if !sel.MatchString(name) {
			continue
		}
		exp := e
		r, err := run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx := &experiments.Ctx{Lab: core.NewLab(), W: io.Discard}
				if err := exp.Run(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	for _, jb := range []struct {
		name    string
		workers int
	}{
		{"suite/fig4/jobs=1", 1},
		{"suite/fig4/jobs=ncpu", runtime.NumCPU()},
	} {
		if !sel.MatchString(jb.name) {
			continue
		}
		r, err := benchSuiteFig4(jb.name, jb.workers)
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	if sel.MatchString("sim/throughput") {
		r, err := benchSimThroughput()
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	if sel.MatchString("sim/step") {
		r, err := benchSimStep()
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	if sel.MatchString("pipe/throughput") {
		r, err := benchPipeThroughput()
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	if sel.MatchString("store/throughput") {
		r, err := benchStoreThroughput()
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	if sel.MatchString("synth/throughput") {
		r, err := benchSynthThroughput()
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	if sel.MatchString("sweep/throughput") {
		r, err := benchSweepThroughput()
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	if sel.MatchString("static/throughput") {
		r, err := benchStaticThroughput()
		if err != nil {
			fatal(err)
		}
		cur.Benchmarks = append(cur.Benchmarks, r)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmarks match -bench %q", *pattern))
	}

	path, err := WriteReport(*dir, cur)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(cur.Benchmarks))

	if prev == nil {
		fmt.Println("no prior BENCH file: baseline established, gate passes")
		return
	}
	deltas := Compare(prev, cur, *threshold)
	bad := Regressions(deltas)
	fmt.Printf("compared against BENCH_%d.json: %d metrics, %d regressions (threshold %.0f%%)\n",
		prevSeq, len(deltas), len(bad), *threshold*100)
	for _, d := range bad {
		fmt.Printf("  REGRESSION %-30s %-15s %.4g -> %.4g (%.1f%% worse)\n",
			d.Name, d.Metric, d.Old, d.New, (d.Ratio-1)*100)
	}
	if len(bad) > 0 {
		os.Exit(1)
	}
}

// run executes one benchmark function and converts the result. A
// b.Fatal inside the function aborts the benchmark, which testing
// reports as zero iterations.
func run(name string, fn func(*testing.B)) (Result, error) {
	fmt.Printf("running %s...\n", name)
	r := testing.Benchmark(fn)
	if r.N == 0 {
		return Result{}, fmt.Errorf("%s: benchmark failed", name)
	}
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}, nil
}

// benchSuiteFig4 times the fig4 suite end to end — compiles included,
// on a cold lab each iteration — the way `repro -run fig4 -jobs N` runs
// it. jobs=1 uses the inline scheduler (the sequential path); jobs=ncpu
// uses a worker pool sized to the machine, so the pair exposes the
// scheduler's wall-clock win (or, on one core, its overhead).
func benchSuiteFig4(name string, workers int) (Result, error) {
	exp := experiments.ByID("fig4")
	if exp == nil {
		return Result{}, fmt.Errorf("%s: experiment fig4 missing", name)
	}
	return run(name, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var lab *core.Lab
			if workers > 1 {
				lab = core.NewLabWith(jobs.New(jobs.Config{
					Workers:    workers,
					QueueDepth: 4*workers + 64,
				}))
			} else {
				lab = core.NewLab()
			}
			ctx := &experiments.Ctx{Lab: lab, W: io.Discard}
			if err := exp.Run(ctx); err != nil {
				b.Fatal(err)
			}
			if err := lab.Scheduler().Shutdown(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSimThroughput measures raw simulator speed — simulated
// instructions per wall-clock second — on a compute-bound benchmark,
// compiled once outside the timed region.
func benchSimThroughput() (Result, error) {
	prog := bench.ByName("queens")
	if prog == nil {
		return Result{}, fmt.Errorf("sim/throughput: benchmark queens missing")
	}
	c, err := mcc.Compile(prog.Name+".mc", prog.Source, isa.D16())
	if err != nil {
		return Result{}, err
	}
	var instrs, iters int64
	r, err := run("sim/throughput", func(b *testing.B) {
		b.ReportAllocs()
		instrs, iters = 0, int64(b.N)
		for i := 0; i < b.N; i++ {
			m, err := sim.Acquire(c.Image)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(prog.MaxInstrs); err != nil {
				b.Fatal(err)
			}
			instrs += m.Stats.Instrs
			sim.Release(m)
		}
	})
	if err != nil {
		return Result{}, err
	}
	if iters > 0 && r.NsPerOp > 0 {
		perIter := float64(instrs) / float64(iters)
		r.InstrsPerSec = perIter * 1e9 / r.NsPerOp
	}
	return r, nil
}

// maxAllocsPerInstr is sim/step's absolute allocation budget: the
// pooled, devirtualized simulation loop must stay under this many heap
// allocations per simulated instruction, every run, regardless of any
// baseline. (The steady-state loop allocates nothing; the budget only
// leaves room for the per-run engine construction amortized over the
// program's path length.)
const maxAllocsPerInstr = 0.1

// benchSimStep measures the production hot path — pooled machine
// acquisition, the shared predecoded table, and the devirtualized
// pipeline engine — and derives allocs_per_instr, the report's
// allocation-density metric. Unlike the relative regression gates, the
// budget here is absolute: exceeding it fails the run even with no
// baseline to compare against.
func benchSimStep() (Result, error) {
	prog := bench.ByName("queens")
	if prog == nil {
		return Result{}, fmt.Errorf("sim/step: benchmark queens missing")
	}
	c, err := mcc.Compile(prog.Name+".mc", prog.Source, isa.D16())
	if err != nil {
		return Result{}, err
	}
	var instrs, iters int64
	r, err := run("sim/step", func(b *testing.B) {
		b.ReportAllocs()
		instrs, iters = 0, int64(b.N)
		for i := 0; i < b.N; i++ {
			m, err := sim.Acquire(c.Image)
			if err != nil {
				b.Fatal(err)
			}
			m.Attach(pipeline.New(pipeline.Config{BusBytes: 4, WaitStates: 1}))
			if err := m.Run(prog.MaxInstrs); err != nil {
				b.Fatal(err)
			}
			instrs += m.Stats.Instrs
			sim.Release(m)
		}
	})
	if err != nil {
		return Result{}, err
	}
	if iters > 0 {
		perIter := float64(instrs) / float64(iters)
		if r.NsPerOp > 0 {
			r.InstrsPerSec = perIter * 1e9 / r.NsPerOp
		}
		if perIter > 0 {
			r.AllocsPerInstr = r.AllocsPerOp / perIter
		}
	}
	if r.AllocsPerInstr >= maxAllocsPerInstr {
		return Result{}, fmt.Errorf("sim/step: %.4f allocations per simulated instruction, absolute budget is %.2f",
			r.AllocsPerInstr, maxAllocsPerInstr)
	}
	return r, nil
}

// benchPipeThroughput measures simulator throughput with the
// cycle-accounting pipeline engine attached and its flight recorder
// DISABLED (RecordDepth zero) — the always-on production shape. Its 2%
// gate is the recorder-overhead budget: the recorder hook sits on the
// engine's charge path, and this benchmark fails the gate if a change
// makes the disabled recorder cost more than 2% of engine throughput.
func benchPipeThroughput() (Result, error) {
	prog := bench.ByName("queens")
	if prog == nil {
		return Result{}, fmt.Errorf("pipe/throughput: benchmark queens missing")
	}
	c, err := mcc.Compile(prog.Name+".mc", prog.Source, isa.D16())
	if err != nil {
		return Result{}, err
	}
	var instrs, iters int64
	r, err := run("pipe/throughput", func(b *testing.B) {
		b.ReportAllocs()
		instrs, iters = 0, int64(b.N)
		for i := 0; i < b.N; i++ {
			m, err := sim.New(c.Image)
			if err != nil {
				b.Fatal(err)
			}
			eng := pipeline.New(pipeline.Config{BusBytes: 4, WaitStates: 1})
			m.Attach(eng)
			if err := m.Run(prog.MaxInstrs); err != nil {
				b.Fatal(err)
			}
			instrs += m.Stats.Instrs
		}
	})
	if err != nil {
		return Result{}, err
	}
	if iters > 0 && r.NsPerOp > 0 {
		perIter := float64(instrs) / float64(iters)
		r.InstrsPerSec = perIter * 1e9 / r.NsPerOp
	}
	r.GateThreshold = 0.02
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfgate:", err)
	os.Exit(1)
}
