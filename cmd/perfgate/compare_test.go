package main

import (
	"os"
	"path/filepath"
	"testing"
)

func report(seq int, results ...Result) *Report {
	return &Report{Seq: seq, Benchmarks: results}
}

func TestCompareDetectsRegression(t *testing.T) {
	old := report(1,
		Result{Name: "experiment/fig4", NsPerOp: 1000, AllocsPerOp: 100},
		Result{Name: "sim/throughput", NsPerOp: 500, AllocsPerOp: 10, InstrsPerSec: 1e6},
	)
	cur := report(2,
		Result{Name: "experiment/fig4", NsPerOp: 1200, AllocsPerOp: 100},                 // 20% slower
		Result{Name: "sim/throughput", NsPerOp: 500, AllocsPerOp: 10, InstrsPerSec: 8e5}, // 25% less throughput
	)
	bad := Regressions(Compare(old, cur, 0.10))
	if len(bad) != 2 {
		t.Fatalf("want 2 regressions, got %d: %+v", len(bad), bad)
	}
	if bad[0].Name != "experiment/fig4" || bad[0].Metric != "ns_per_op" {
		t.Errorf("first regression = %s/%s, want experiment/fig4 ns_per_op", bad[0].Name, bad[0].Metric)
	}
	if bad[1].Name != "sim/throughput" || bad[1].Metric != "instrs_per_sec" {
		t.Errorf("second regression = %s/%s, want sim/throughput instrs_per_sec", bad[1].Name, bad[1].Metric)
	}
	if r := bad[1].Ratio; r < 1.24 || r > 1.26 {
		t.Errorf("throughput regression ratio = %v, want 1.25 (old/new)", r)
	}
}

func TestCompareWithinThresholdAndImprovementsPass(t *testing.T) {
	old := report(1, Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 100, InstrsPerSec: 1e6})
	cur := report(2, Result{Name: "a", NsPerOp: 1090, AllocsPerOp: 40, InstrsPerSec: 2e6}) // +9% ns, fewer allocs, faster sim
	deltas := Compare(old, cur, 0.10)
	if len(deltas) != 3 {
		t.Fatalf("want 3 comparable metrics, got %d", len(deltas))
	}
	if bad := Regressions(deltas); len(bad) != 0 {
		t.Fatalf("nothing should regress: %+v", bad)
	}
}

func TestCompareAllocGrowthRegresses(t *testing.T) {
	old := report(1, Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 100})
	cur := report(2, Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 150})
	bad := Regressions(Compare(old, cur, 0.10))
	if len(bad) != 1 || bad[0].Metric != "allocs_per_op" {
		t.Fatalf("want one allocs_per_op regression, got %+v", bad)
	}
}

func TestComparePerBenchmarkGateThreshold(t *testing.T) {
	old := report(1,
		Result{Name: "pipe/throughput", NsPerOp: 1000, InstrsPerSec: 1e6},
		Result{Name: "sim/throughput", NsPerOp: 1000, InstrsPerSec: 1e6},
	)
	// Both lose 5% throughput; only the 2%-gated benchmark fails under
	// the loose 10% run-wide threshold.
	cur := report(2,
		Result{Name: "pipe/throughput", NsPerOp: 1000, InstrsPerSec: 9.5e5, GateThreshold: 0.02},
		Result{Name: "sim/throughput", NsPerOp: 1000, InstrsPerSec: 9.5e5},
	)
	bad := Regressions(Compare(old, cur, 0.10))
	if len(bad) != 1 || bad[0].Name != "pipe/throughput" || bad[0].Metric != "instrs_per_sec" {
		t.Fatalf("want only pipe/throughput instrs_per_sec to regress, got %+v", bad)
	}
	// Within its own gate, the tightened benchmark passes too.
	cur.Benchmarks[0].InstrsPerSec = 9.9e5
	if bad := Regressions(Compare(old, cur, 0.10)); len(bad) != 0 {
		t.Fatalf("1%% drop is inside the 2%% gate: %+v", bad)
	}
}

func TestCompareSkipsUnmatchedAndZeroMetrics(t *testing.T) {
	old := report(1,
		Result{Name: "removed", NsPerOp: 1},
		Result{Name: "a", NsPerOp: 1000}, // no InstrsPerSec on either side
	)
	cur := report(2,
		Result{Name: "a", NsPerOp: 1000},
		Result{Name: "added", NsPerOp: 99999},
	)
	deltas := Compare(old, cur, 0.10)
	if len(deltas) != 1 || deltas[0].Name != "a" || deltas[0].Metric != "ns_per_op" {
		t.Fatalf("want only a/ns_per_op compared, got %+v", deltas)
	}
}

func TestLatestReportFirstRunAndRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// First run: no baseline.
	r, seq, err := LatestReport(dir)
	if err != nil || r != nil || seq != 0 {
		t.Fatalf("empty dir: got (%v, %d, %v), want (nil, 0, nil)", r, seq, err)
	}

	// Write seq 1 and 2 (plus a non-matching file); latest wins.
	for i := 1; i <= 2; i++ {
		rep := report(i, Result{Name: "a", NsPerOp: float64(i)})
		if _, err := WriteReport(dir, rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, seq, err = LatestReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || r.Seq != 2 || len(r.Benchmarks) != 1 || r.Benchmarks[0].NsPerOp != 2 {
		t.Fatalf("latest = seq %d %+v, want seq 2", seq, r)
	}
}

func TestWriteReportSortsBenchmarks(t *testing.T) {
	dir := t.TempDir()
	rep := report(1, Result{Name: "z"}, Result{Name: "a"})
	if _, err := WriteReport(dir, rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks[0].Name != "a" || rep.Benchmarks[1].Name != "z" {
		t.Fatalf("benchmarks not sorted: %+v", rep.Benchmarks)
	}
}
