package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Report is one perfgate run, persisted as BENCH_<seq>.json at the
// repository root. Seq is a monotonically increasing run number; the
// latest file is the comparison baseline for the next run.
type Report struct {
	Seq        int      `json:"seq"`
	GoVersion  string   `json:"go,omitempty"`
	UnixTime   int64    `json:"unix_time,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Result is one benchmark's metrics. NsPerOp and AllocsPerOp are
// higher-is-worse; InstrsPerSec (simulator throughput), PointsPerSec
// (measurement-store and sweep-surface throughput), ProgramsPerSec
// (synthetic-corpus generation throughput) and ImagesPerSec (static
// analyzer throughput) are lower-is-worse and zero when not applicable.
type Result struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	InstrsPerSec   float64 `json:"instrs_per_sec,omitempty"`
	PointsPerSec   float64 `json:"points_per_sec,omitempty"`
	ProgramsPerSec float64 `json:"programs_per_sec,omitempty"`
	ImagesPerSec   float64 `json:"images_per_sec,omitempty"`
	// AllocsPerInstr is sim/step's allocation density (heap allocations
	// per simulated instruction, higher-is-worse); beyond the relative
	// comparison here, the benchmark enforces an absolute budget at
	// measurement time (see maxAllocsPerInstr in main.go).
	AllocsPerInstr float64 `json:"allocs_per_instr,omitempty"`
	// GateThreshold, when positive, overrides the run-wide -threshold
	// for this benchmark — used by overhead gates (pipe/throughput's 2%)
	// that must be tighter than the general noise allowance.
	GateThreshold float64 `json:"gate_threshold,omitempty"`
}

// Delta is one metric's old-vs-new comparison. Ratio is new/old for
// higher-is-worse metrics and old/new for lower-is-worse ones, so in
// both cases Ratio > 1+threshold means Regression.
type Delta struct {
	Name       string
	Metric     string
	Old, New   float64
	Ratio      float64
	Regression bool
}

// Compare matches benchmarks by name and flags every metric that got
// worse by more than threshold (0.10 = 10%); a benchmark carrying its
// own GateThreshold is judged against that instead. Benchmarks present
// in only one report are skipped: additions have no baseline and
// removals are visible in the report diff, not a perf regression.
func Compare(old, cur *Report, threshold float64) []Delta {
	prev := map[string]Result{}
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}
	var out []Delta
	for _, r := range cur.Benchmarks {
		p, ok := prev[r.Name]
		if !ok {
			continue
		}
		th := threshold
		if r.GateThreshold > 0 {
			th = r.GateThreshold
		}
		out = append(out, compareMetric(r.Name, "ns_per_op", p.NsPerOp, r.NsPerOp, false, th)...)
		out = append(out, compareMetric(r.Name, "allocs_per_op", p.AllocsPerOp, r.AllocsPerOp, false, th)...)
		out = append(out, compareMetric(r.Name, "instrs_per_sec", p.InstrsPerSec, r.InstrsPerSec, true, th)...)
		out = append(out, compareMetric(r.Name, "points_per_sec", p.PointsPerSec, r.PointsPerSec, true, th)...)
		out = append(out, compareMetric(r.Name, "programs_per_sec", p.ProgramsPerSec, r.ProgramsPerSec, true, th)...)
		out = append(out, compareMetric(r.Name, "images_per_sec", p.ImagesPerSec, r.ImagesPerSec, true, th)...)
		out = append(out, compareMetric(r.Name, "allocs_per_instr", p.AllocsPerInstr, r.AllocsPerInstr, false, th)...)
	}
	return out
}

// compareMetric yields at most one Delta; metrics absent (zero) on
// either side are not comparable.
func compareMetric(name, metric string, old, cur float64, higherIsBetter bool, threshold float64) []Delta {
	if old <= 0 || cur <= 0 {
		return nil
	}
	ratio := cur / old
	if higherIsBetter {
		ratio = old / cur
	}
	return []Delta{{
		Name:       name,
		Metric:     metric,
		Old:        old,
		New:        cur,
		Ratio:      ratio,
		Regression: ratio > 1+threshold,
	}}
}

// Regressions filters Compare's output down to the failures.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestReport finds the BENCH_<n>.json with the highest n in dir.
// Returns (nil, 0, nil) when no prior report exists (first run).
func LatestReport(dir string) (*Report, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	best, bestSeq := "", 0
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestSeq {
			continue
		}
		best, bestSeq = e.Name(), n
	}
	if best == "" {
		return nil, 0, nil
	}
	raw, err := os.ReadFile(filepath.Join(dir, best))
	if err != nil {
		return nil, 0, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", best, err)
	}
	return &r, bestSeq, nil
}

// WriteReport persists the report as BENCH_<seq>.json, sorted by
// benchmark name so diffs between runs are stable.
func WriteReport(dir string, r *Report) (string, error) {
	sort.Slice(r.Benchmarks, func(i, j int) bool {
		return r.Benchmarks[i].Name < r.Benchmarks[j].Name
	})
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", r.Seq))
	return path, os.WriteFile(path, append(raw, '\n'), 0o644)
}
