package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/synth"
)

// benchSynthThroughput measures corpus generation speed — programs
// emitted per wall-clock second, one of every class per op — with no
// compilation or simulation in the loop. This is the cost the sweep
// driver pays before any grid work starts.
func benchSynthThroughput() (Result, error) {
	classes := synth.Classes()
	var progs, iters int64
	r, err := run("synth/throughput", func(b *testing.B) {
		b.ReportAllocs()
		progs, iters = 0, int64(b.N)
		for i := 0; i < b.N; i++ {
			for ci, class := range classes {
				p, err := synth.Generate(class, synth.DeriveSeed(uint64(i), class, ci))
				if err != nil || len(p.Source) == 0 {
					b.Fatalf("generate %s: %v", class, err)
				}
				progs++
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	if iters > 0 && r.NsPerOp > 0 {
		perIter := float64(progs) / float64(iters)
		r.ProgramsPerSec = perIter * 1e9 / r.NsPerOp
	}
	return r, nil
}

// benchSweepThroughput measures the sweep engine end to end — generate,
// compile for both ISAs, verify, run, differentially check, expand the
// grid and stream the store — as surface points per wall-clock second
// on a cold lab each iteration (the way `repro -sweep` runs it).
func benchSweepThroughput() (Result, error) {
	spec, err := sweep.Parse("classes=loopy,callheavy count=2 seed=11 waits=0-3")
	if err != nil {
		return Result{}, err
	}
	dir, err := os.MkdirTemp("", "perfgate-sweep")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	var points, iters int64
	r, err := run("sweep/throughput", func(b *testing.B) {
		b.ReportAllocs()
		points, iters = 0, int64(b.N)
		for i := 0; i < b.N; i++ {
			runner := &sweep.Runner{Lab: core.NewLab(), Log: io.Discard}
			sum, err := runner.Run(spec, filepath.Join(dir, "points.mcst"))
			if err != nil {
				b.Fatal(err)
			}
			if len(sum.Failures) > 0 {
				b.Fatalf("%d corpus programs failed", len(sum.Failures))
			}
			points += int64(sum.Points)
		}
	})
	if err != nil {
		return Result{}, err
	}
	if iters > 0 && r.NsPerOp > 0 {
		perIter := float64(points) / float64(iters)
		r.PointsPerSec = perIter * 1e9 / r.NsPerOp
	}
	return r, nil
}
