// Package repro is a from-scratch reproduction of Bunda, Fussell,
// Jenevein and Athas, "16-Bit vs. 32-Bit Instructions for Pipelined
// Microprocessors" (ISCA 1993).
//
// The repository contains everything the paper's methodology needs,
// implemented in pure Go with only the standard library:
//
//   - the D16 (16-bit) and DLXe (32-bit) instruction encodings,
//   - a two-pass assembler with literal pools and branch relaxation,
//   - MCC, an optimizing C-subset compiler with one parameterized
//     backend whose code-generation knobs (register-file size, two- vs.
//     three-address operations, immediate and displacement widths) are
//     the paper's Section 3.3 instrumentation,
//   - an architecture simulator for the shared five-stage pipeline with
//     delay slots and an interlock scoreboard,
//   - cacheless memory-interface models and a dinero-style sub-blocked
//     cache simulator,
//   - the 15-program benchmark suite of the paper's Table 2, and
//   - experiment runners that regenerate every figure and table.
//
// Start with README.md, DESIGN.md and cmd/repro. The root-level
// bench_test.go exposes each experiment as a testing.B benchmark.
package repro
