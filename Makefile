# Tier-1 gate: everything a PR must keep green (see ROADMAP.md).
.PHONY: check build test vet smoke clean

check: vet build test smoke

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# End-to-end smoke: one experiment with structured output attached.
smoke:
	go run ./cmd/repro -run fig4 -json /tmp/repro-smoke >/dev/null
	@test -s /tmp/repro-smoke/fig4.json && echo "smoke ok: /tmp/repro-smoke/fig4.json"

clean:
	rm -rf /tmp/repro-smoke
