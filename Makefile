# Tier-1 gate: everything a PR must keep green (see ROADMAP.md).
#
# All scratch output lives under one temp root ($(TMP)); the CLIs used
# by smoke/determinism/bench are built once into $(TMP)/bin via the
# shared Go build cache instead of per-target `go run` compiles.
TMP := /tmp/repro-make
BIN := $(TMP)/bin

.PHONY: check build test vet lint verify fuzz-short smoke store-smoke determinism explain-smoke sweep-smoke serve-smoke static-smoke bench bench-smoke clean

check: vet lint build test fuzz-short verify smoke store-smoke determinism explain-smoke sweep-smoke serve-smoke static-smoke bench-smoke

vet:
	go vet ./...

# Determinism linter: no map-order iteration, wall-clock reads or
# math/rand in packages whose output must be byte-identical (see
# docs/VERIFY.md). Part of the determinism gate.
lint: $(BIN)/detlint
	$(BIN)/detlint .

$(BIN)/detlint: build
	@mkdir -p $(BIN)
	go build -o $@ ./cmd/detlint

# Static machine-code verification of every seed benchmark on both
# ISAs: encoding ranges, CFG/delay slots, def-before-use, stack
# discipline (docs/VERIFY.md). Exit 3 on any violation.
verify: $(BIN)/repro
	$(BIN)/repro -verify

# Short fuzz passes: random instruction streams must never panic the
# verifier, and generated corpus programs must compile, verify and
# compute identical results on every ISA (the standing miscompile
# fuzzer, docs/SWEEP.md).
fuzz-short:
	go test ./internal/verify/ -fuzz FuzzVerify -fuzztime 10s -run '^$$'
	go test ./internal/mcc/ -fuzz FuzzDifferential -fuzztime 10s -run '^$$'
	go test ./internal/static/ -fuzz FuzzContainment -fuzztime 10s -run '^$$'

build:
	go build ./...

test:
	go test -race ./...

$(BIN)/repro: build
	@mkdir -p $(BIN)
	go build -o $@ ./cmd/repro

$(BIN)/perfgate: build
	@mkdir -p $(BIN)
	go build -o $@ ./cmd/perfgate

$(BIN)/simd: build
	@mkdir -p $(BIN)
	go build -o $@ ./cmd/simd

# End-to-end smoke: one experiment with structured output attached.
smoke: $(BIN)/repro
	$(BIN)/repro -run fig4 -json $(TMP)/smoke >/dev/null
	@test -s $(TMP)/smoke/fig4.json && echo "smoke ok: $(TMP)/smoke/fig4.json"

# Store smoke: a run writes the columnar measurement store alongside the
# JSON, a second run reproduces it byte for byte, and the query CLI can
# read it back (docs/STORE.md).
store-smoke: $(BIN)/repro
	$(BIN)/repro -run fig4 -json $(TMP)/store-a -timing=false >/dev/null
	$(BIN)/repro -run fig4 -json $(TMP)/store-b -timing=false >/dev/null
	cmp $(TMP)/store-a/points.mcst $(TMP)/store-b/points.mcst
	$(BIN)/repro -query 'by=cycles top=3' -store $(TMP)/store-a/points.mcst | grep -q '"matched"'
	@echo "store smoke ok: $(TMP)/store-a/points.mcst round-trips and reproduces"

# Determinism guard: the same experiment run twice — once sequentially,
# once in parallel through the job scheduler — must produce
# byte-identical stdout and structured output (-timing=false strips the
# only wall-clock field; metrics.json is excluded — it holds timing
# histograms by design).
determinism: $(BIN)/repro
	$(BIN)/repro -run fig4 -json $(TMP)/det-a -timing=false > $(TMP)/det-a.out
	$(BIN)/repro -run fig4 -json $(TMP)/det-b -timing=false > $(TMP)/det-b.out
	$(BIN)/repro -run fig4 -json $(TMP)/det-j8 -timing=false -jobs 8 > $(TMP)/det-j8.out
	cmp $(TMP)/det-a.out $(TMP)/det-b.out
	cmp $(TMP)/det-a/fig4.json $(TMP)/det-b/fig4.json
	cmp $(TMP)/det-a/summary.json $(TMP)/det-b/summary.json
	cmp $(TMP)/det-a.out $(TMP)/det-j8.out
	cmp $(TMP)/det-a/fig4.json $(TMP)/det-j8/fig4.json
	cmp $(TMP)/det-a/summary.json $(TMP)/det-j8/summary.json
	cmp $(TMP)/det-a/points.mcst $(TMP)/det-b/points.mcst
	cmp $(TMP)/det-a/points.mcst $(TMP)/det-j8/points.mcst
	@echo "determinism ok: -jobs 1 and -jobs 8 byte-identical (incl. points.mcst)"

# Explain smoke: the A/B drill-down (surface diff → stall heatmaps →
# annotated disassembly, docs/EXPLAIN.md) on a fig4-style pair must be
# byte-identical across repeated runs and under the parallel scheduler,
# text and JSON both.
explain-smoke: $(BIN)/repro
	$(BIN)/repro -explain 'a=D16/16/2 b=DLXe/32/3 bench=towers waits=1 top=1 rows=6' -json $(TMP)/exp-a > $(TMP)/exp-a.out
	$(BIN)/repro -explain 'a=D16/16/2 b=DLXe/32/3 bench=towers waits=1 top=1 rows=6' -json $(TMP)/exp-b > $(TMP)/exp-b.out
	$(BIN)/repro -explain 'a=D16/16/2 b=DLXe/32/3 bench=towers waits=1 top=1 rows=6' -json $(TMP)/exp-j8 -jobs 8 > $(TMP)/exp-j8.out
	cmp $(TMP)/exp-a.out $(TMP)/exp-b.out
	cmp $(TMP)/exp-a.out $(TMP)/exp-j8.out
	cmp $(TMP)/exp-a/explain.json $(TMP)/exp-b/explain.json
	cmp $(TMP)/exp-a/explain.json $(TMP)/exp-j8/explain.json
	@echo "explain smoke ok: A/B drill-down byte-identical across runs and -jobs 8"

# Sweep smoke: a small full-factorial sweep over generated programs
# must pass every verify + differential gate, produce a byte-identical
# surface sequentially and under -jobs 8, and answer queries
# (docs/SWEEP.md).
sweep-smoke: $(BIN)/repro
	$(BIN)/repro -sweep 'classes=loopy,callheavy count=2 seed=7 waits=0-2' -store $(TMP)/sweep-a.mcst -faildir $(TMP)/sweep-fail-a > $(TMP)/sweep-a.out
	$(BIN)/repro -sweep 'classes=loopy,callheavy count=2 seed=7 waits=0-2' -store $(TMP)/sweep-b.mcst -faildir $(TMP)/sweep-fail-b -jobs 8 > $(TMP)/sweep-b.out
	cmp $(TMP)/sweep-a.out $(TMP)/sweep-b.out
	cmp $(TMP)/sweep-a.mcst $(TMP)/sweep-b.mcst
	$(BIN)/repro -query 'by=cycles top=3' -store $(TMP)/sweep-a.mcst | grep -q '"matched"'
	@echo "sweep smoke ok: corpus verified, surface byte-identical across -jobs 8"

# Static-analyzer smoke: the zero-simulation cost/density sweep over
# all 90 images must exit clean and write a byte-identical static.json
# across repeated runs and under the parallel pool (docs/STATIC.md).
static-smoke: $(BIN)/repro
	$(BIN)/repro -static -json $(TMP)/static-a > $(TMP)/static-a.out
	$(BIN)/repro -static -json $(TMP)/static-b > $(TMP)/static-b.out
	$(BIN)/repro -static -json $(TMP)/static-j8 -jobs 8 > $(TMP)/static-j8.out
	cmp $(TMP)/static-a.out $(TMP)/static-b.out
	cmp $(TMP)/static-a.out $(TMP)/static-j8.out
	cmp $(TMP)/static-a/static.json $(TMP)/static-b/static.json
	cmp $(TMP)/static-a/static.json $(TMP)/static-j8/static.json
	@echo "static smoke ok: bounds/density byte-identical across runs and -jobs 8"

# Service smoke: boot simd, hit /healthz, run the same one-point batch
# twice (the repeat must be served from the result cache with an
# identical body), check /metrics shows the hit, then shut down
# gracefully with SIGTERM.
serve-smoke: $(BIN)/simd
	@sh scripts/serve_smoke.sh $(BIN)/simd $(TMP)/serve-smoke

# Continuous benchmarks: writes BENCH_<n>.json at the repo root and
# fails on >10% regressions against the previous BENCH file.
bench: $(BIN)/perfgate
	$(BIN)/perfgate

# Bench smoke: single-iteration pass over the simulator microbenches in
# a scratch dir (no BENCH file at the repo root, no baseline compare).
# Numbers are noise at 1x; the point is exercising the harness plus
# sim/step's absolute allocs-per-instruction budget on every check.
bench-smoke: $(BIN)/perfgate
	rm -rf $(TMP)/bench-smoke && mkdir -p $(TMP)/bench-smoke
	$(BIN)/perfgate -dir $(TMP)/bench-smoke -benchtime 1x -bench 'sim/'
	@echo "bench smoke ok: sim microbenches ran, alloc budget held"

clean:
	rm -rf $(TMP) /tmp/repro-smoke
