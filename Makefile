# Tier-1 gate: everything a PR must keep green (see ROADMAP.md).
#
# All scratch output lives under one temp root ($(TMP)); the CLIs used
# by smoke/determinism/bench are built once into $(TMP)/bin via the
# shared Go build cache instead of per-target `go run` compiles.
TMP := /tmp/repro-make
BIN := $(TMP)/bin

.PHONY: check build test vet smoke determinism bench clean

check: vet build test smoke determinism

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

$(BIN)/repro: build
	@mkdir -p $(BIN)
	go build -o $@ ./cmd/repro

$(BIN)/perfgate: build
	@mkdir -p $(BIN)
	go build -o $@ ./cmd/perfgate

# End-to-end smoke: one experiment with structured output attached.
smoke: $(BIN)/repro
	$(BIN)/repro -run fig4 -json $(TMP)/smoke >/dev/null
	@test -s $(TMP)/smoke/fig4.json && echo "smoke ok: $(TMP)/smoke/fig4.json"

# Determinism guard: the same experiment run twice must produce
# byte-identical structured output (-timing=false strips the only
# wall-clock field; metrics.json is excluded — it holds timing
# histograms by design).
determinism: $(BIN)/repro
	$(BIN)/repro -run fig4 -json $(TMP)/det-a -timing=false >/dev/null
	$(BIN)/repro -run fig4 -json $(TMP)/det-b -timing=false >/dev/null
	cmp $(TMP)/det-a/fig4.json $(TMP)/det-b/fig4.json
	cmp $(TMP)/det-a/summary.json $(TMP)/det-b/summary.json
	@echo "determinism ok: fig4.json and summary.json byte-identical"

# Continuous benchmarks: writes BENCH_<n>.json at the repo root and
# fails on >10% regressions against the previous BENCH file.
bench: $(BIN)/perfgate
	$(BIN)/perfgate

clean:
	rm -rf $(TMP) /tmp/repro-smoke
