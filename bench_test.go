package repro

// One testing.B benchmark per table and figure in the paper's
// evaluation: each regenerates the artifact from scratch (compile, run,
// model). Run a single one with e.g.
//
//	go test -bench Fig4 -benchtime=1x
//
// and everything with
//
//	go test -bench . -benchmem
//
// The wall time reported is the cost of reproducing that artifact.

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := &experiments.Ctx{Lab: core.NewLab(), W: io.Discard}
		if err := e.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Density(b *testing.B)            { benchExperiment(b, "fig4") }
func BenchmarkFig5PathLength(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6RegisterDensity(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7RegisterPath(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8TwoAddressDensity(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9TwoAddressPath(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10Immediates(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11DensitySummary(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12PathSummary(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13TrafficVsSize(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14NoCacheCPI(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15FetchSaturation(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16CacheMissRates(b *testing.B)    { benchExperiment(b, "fig16") }
func BenchmarkFig17CPI4KCaches(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18CPI16KCaches(b *testing.B)      { benchExperiment(b, "fig18") }
func BenchmarkFig19CacheTraffic(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkTab3DataTraffic(b *testing.B)        { benchExperiment(b, "tab3") }
func BenchmarkTab4ImmediateFreq(b *testing.B)      { benchExperiment(b, "tab4") }
func BenchmarkTab5Summary(b *testing.B)            { benchExperiment(b, "tab5") }
func BenchmarkTab6CodeSize(b *testing.B)           { benchExperiment(b, "tab6") }
func BenchmarkTab7PathLength(b *testing.B)         { benchExperiment(b, "tab7") }
func BenchmarkTab8Traffic(b *testing.B)            { benchExperiment(b, "tab8") }
func BenchmarkTab9LoadsStores(b *testing.B)        { benchExperiment(b, "tab9") }
func BenchmarkTab10Interlocks(b *testing.B)        { benchExperiment(b, "tab10") }
func BenchmarkTab11Cycles32Bit(b *testing.B)       { benchExperiment(b, "tab11") }
func BenchmarkTab12Cycles64Bit(b *testing.B)       { benchExperiment(b, "tab12") }
func BenchmarkTab13CacheBenchTraffic(b *testing.B) { benchExperiment(b, "tab13") }
func BenchmarkTab14MissRatesAssem(b *testing.B)    { benchExperiment(b, "tab14") }
func BenchmarkTab15MissRatesIPL(b *testing.B)      { benchExperiment(b, "tab15") }
func BenchmarkTab16MissRatesLatex(b *testing.B)    { benchExperiment(b, "tab16") }
