package core

import (
	"strings"

	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/memsys"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// ConfigByName resolves a compiler configuration by its paper column
// name ("D16/16/2", "DLXe/32/3", ...) or the shorthands "d16" and
// "dlxe" (case-insensitive); nil when unknown. It is the shared name
// resolution of simd, repro -explain and the batch API.
func ConfigByName(name string) *isa.Spec {
	switch strings.ToLower(name) {
	case "d16":
		return isa.D16()
	case "dlxe":
		return isa.DLXe()
	}
	for _, s := range Configs() {
		if strings.EqualFold(s.Name, name) {
			return s
		}
	}
	return nil
}

// AccountPoint converts one cycle-accounted engine run into a store
// point: bucket-for-bucket from the engine's attribution (so the
// store's sum==cycles invariant holds by construction) under the
// identity (bench, config, bus, waits, cachekb). Unlike
// Measurement.Points, which expands the closed-form Appendix A model,
// the point carries measured pipeline behaviour — including port
// contention and cache misses — which is what lets cached-memory
// configurations (CacheKB > 0) land in points.mcst at all.
func AccountPoint(benchName, cfgName string, c *mcc.Compiled, e *pipeline.Engine, ac AccountConfig) store.Point {
	p := store.Point{
		Bench:        benchName,
		Config:       cfgName,
		BusBytes:     int64(ac.BusBytes),
		WaitStates:   ac.WaitStates,
		CacheKB:      int64(ac.CacheBytes / 1024),
		Cycles:       e.Cycles(),
		Instrs:       e.Instrs,
		IFetchBytes:  e.FetchBytes(),
		DMemBytes:    e.DataRequests * 4,
		SizeBytes:    int64(c.Image.Size()),
		TextBytes:    int64(len(c.Image.Text)),
		StaticInstrs: int64(c.Image.TextInstrs),
	}
	bd := e.Breakdown()
	for b := 0; b < pipeline.NumBuckets; b++ {
		p.Buckets[b] = bd[b]
	}
	return p
}

// pointWaitStates is the wait-state grid a measurement expands into —
// the same ℓ = 0..3 range SummaryRow reports CPI over.
const pointWaitStates = 4

// Points expands one measurement into its columnar store points: one
// point per cacheless memory interface (32- and 64-bit fetch bus) per
// wait-state count. The cycle attribution follows the Appendix A model
// exactly — useful issue cycles (one per instruction), interlock stalls
// in the load-delay bucket, and wait-state cycles split between the
// instruction- and data-side requests — so the bucket sum reconstructs
// Cycles() and store.Validate's invariant holds by construction.
func (m *Measurement) Points() []store.Point {
	out := make([]store.Point, 0, 2*pointWaitStates)
	for _, bus := range []*memsys.NoCache{m.Bus32, m.Bus64} {
		for w := int64(0); w < pointWaitStates; w++ {
			p := store.Point{
				Bench:        m.Bench,
				Config:       m.Spec.Name,
				BusBytes:     int64(bus.BusBytes),
				WaitStates:   w,
				Cycles:       bus.Cycles(m.Stats.Instrs, m.Stats.Interlocks, w),
				Instrs:       m.Stats.Instrs,
				IFetchBytes:  bus.IRequests * int64(bus.BusBytes),
				DMemBytes:    bus.DRequests * 4,
				SizeBytes:    int64(m.Size),
				TextBytes:    int64(m.TextBytes),
				StaticInstrs: int64(m.StaticInstrs),
			}
			p.Buckets[store.BUseful] = m.Stats.Instrs
			p.Buckets[store.BLoadDelay] = m.Stats.Interlocks
			p.Buckets[store.BIFetchWait] = w * bus.IRequests
			p.Buckets[store.BDMemWait] = w * bus.DRequests
			out = append(out, p)
		}
	}
	return out
}

// Points returns the canonical point set of every memoized measurement
// — the surface `repro -json` persists as points.mcst and simd appends
// to its -store file as batches complete.
func (l *Lab) Points() []store.Point {
	var out []store.Point
	for _, m := range l.Measurements() {
		out = append(out, m.Points()...)
	}
	return store.Canon(out)
}
