package core

import (
	"repro/internal/memsys"
	"repro/internal/store"
)

// pointWaitStates is the wait-state grid a measurement expands into —
// the same ℓ = 0..3 range SummaryRow reports CPI over.
const pointWaitStates = 4

// Points expands one measurement into its columnar store points: one
// point per cacheless memory interface (32- and 64-bit fetch bus) per
// wait-state count. The cycle attribution follows the Appendix A model
// exactly — useful issue cycles (one per instruction), interlock stalls
// in the load-delay bucket, and wait-state cycles split between the
// instruction- and data-side requests — so the bucket sum reconstructs
// Cycles() and store.Validate's invariant holds by construction.
func (m *Measurement) Points() []store.Point {
	out := make([]store.Point, 0, 2*pointWaitStates)
	for _, bus := range []*memsys.NoCache{m.Bus32, m.Bus64} {
		for w := int64(0); w < pointWaitStates; w++ {
			p := store.Point{
				Bench:        m.Bench,
				Config:       m.Spec.Name,
				BusBytes:     int64(bus.BusBytes),
				WaitStates:   w,
				Cycles:       bus.Cycles(m.Stats.Instrs, m.Stats.Interlocks, w),
				Instrs:       m.Stats.Instrs,
				IFetchBytes:  bus.IRequests * int64(bus.BusBytes),
				DMemBytes:    bus.DRequests * 4,
				SizeBytes:    int64(m.Size),
				TextBytes:    int64(m.TextBytes),
				StaticInstrs: int64(m.StaticInstrs),
			}
			p.Buckets[store.BUseful] = m.Stats.Instrs
			p.Buckets[store.BLoadDelay] = m.Stats.Interlocks
			p.Buckets[store.BIFetchWait] = w * bus.IRequests
			p.Buckets[store.BDMemWait] = w * bus.DRequests
			out = append(out, p)
		}
	}
	return out
}

// Points returns the canonical point set of every memoized measurement
// — the surface `repro -json` persists as points.mcst and simd appends
// to its -store file as batches complete.
func (l *Lab) Points() []store.Point {
	var out []store.Point
	for _, m := range l.Measurements() {
		out = append(out, m.Points()...)
	}
	return store.Canon(out)
}
