package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// The golden-cells fixture pins the timing engine's observable results —
// Cycles(), the full cycle-attribution Breakdown, and a digest of the
// per-PC attribution table — for every seed image across the paper's
// eight cacheless grid cells ({4,8}-byte bus × 0–3 wait states). It was
// captured from the engine before the allocation-free hot-loop refactor,
// so any divergence introduced by predecoding, machine pooling, or the
// devirtualized observer path fails this test with the exact cell.
//
// Regenerate (only when the model itself is intentionally changed) with:
//
//	go test ./internal/core/ -run TestGoldenCells -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_cells.json from the current engine")

type goldenCell struct {
	Bus      uint32   `json:"bus"`
	Waits    int64    `json:"waits"`
	Cycles   int64    `json:"cycles"`
	Buckets  []int64  `json:"buckets"`
	PerPCSHA string   `json:"per_pc_sha256"`
}

type goldenImage struct {
	Bench  string       `json:"bench"`
	Config string       `json:"config"`
	Cells  []goldenCell `json:"cells"`
}

const goldenPath = "testdata/golden_cells.json"

// goldenGrid is the 8-cell cacheless grid the fixture covers.
func goldenGrid() []pipeline.Config {
	var cfgs []pipeline.Config
	for _, bus := range []uint32{4, 8} {
		for waits := int64(0); waits <= 3; waits++ {
			cfgs = append(cfgs, pipeline.Config{BusBytes: bus, WaitStates: waits})
		}
	}
	return cfgs
}

// perPCDigest folds the engine's per-PC attribution rows (address,
// buckets, fetch bytes) into a stable digest.
func perPCDigest(e *pipeline.Engine) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, row := range e.PerPC() {
		put(int64(row.PC))
		for _, b := range row.Buckets {
			put(b)
		}
		put(row.FetchBytes)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// measureGoldenImage runs one compiled image once with all eight grid
// engines attached (per-PC accounting on) and extracts the cells.
func measureGoldenImage(t *testing.T, b *bench.Benchmark, spec *isa.Spec) goldenImage {
	t.Helper()
	lab := NewLab()
	c, err := lab.Compile(b, spec)
	if err != nil {
		t.Fatalf("compile %s on %s: %v", b.Name, spec.Name, err)
	}
	m, err := sim.New(c.Image)
	if err != nil {
		t.Fatalf("machine %s on %s: %v", b.Name, spec.Name, err)
	}
	cfgs := goldenGrid()
	engines := make([]*pipeline.Engine, len(cfgs))
	for i, cfg := range cfgs {
		engines[i] = pipeline.New(cfg)
		engines[i].EnablePCAccounting()
		m.Attach(engines[i])
	}
	if err := m.Run(b.MaxInstrs); err != nil {
		t.Fatalf("run %s on %s: %v", b.Name, spec.Name, err)
	}
	img := goldenImage{Bench: b.Name, Config: spec.Name}
	for i, e := range engines {
		bd := e.Breakdown()
		img.Cells = append(img.Cells, goldenCell{
			Bus:      cfgs[i].BusBytes,
			Waits:    cfgs[i].WaitStates,
			Cycles:   e.Cycles(),
			Buckets:  bd[:],
			PerPCSHA: perPCDigest(e),
		})
	}
	return img
}

// goldenSuite is the covered image set: every seed benchmark × every
// paper configuration. In -short runs a small cross-section keeps the
// test quick; the full gate runs everything.
func goldenSuite(t *testing.T) []*bench.Benchmark {
	if !testing.Short() {
		return bench.All()
	}
	var out []*bench.Benchmark
	for _, name := range []string{"queens", "towers", "bubblesort"} {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("golden short suite: benchmark %q missing", name)
		}
		out = append(out, b)
	}
	return out
}

func TestGoldenCells(t *testing.T) {
	var got []goldenImage
	for _, b := range goldenSuite(t) {
		for _, spec := range Configs() {
			got = append(got, measureGoldenImage(t, b, spec))
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d images)", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden to create): %v", err)
	}
	var want []goldenImage
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]goldenImage{}
	for _, w := range want {
		byKey[w.Bench+"|"+w.Config] = w
	}
	for _, g := range got {
		w, ok := byKey[g.Bench+"|"+g.Config]
		if !ok {
			t.Errorf("%s on %s: no golden entry (regenerate fixture)", g.Bench, g.Config)
			continue
		}
		for i, cell := range g.Cells {
			wc := w.Cells[i]
			if cell.Cycles != wc.Cycles {
				t.Errorf("%s on %s bus=%d waits=%d: cycles %d, golden %d",
					g.Bench, g.Config, cell.Bus, cell.Waits, cell.Cycles, wc.Cycles)
			}
			for bkt := range cell.Buckets {
				if cell.Buckets[bkt] != wc.Buckets[bkt] {
					t.Errorf("%s on %s bus=%d waits=%d: bucket %s %d, golden %d",
						g.Bench, g.Config, cell.Bus, cell.Waits,
						pipeline.Bucket(bkt), cell.Buckets[bkt], wc.Buckets[bkt])
				}
			}
			if cell.PerPCSHA != wc.PerPCSHA {
				t.Errorf("%s on %s bus=%d waits=%d: per-PC table digest %s, golden %s",
					g.Bench, g.Config, cell.Bus, cell.Waits, cell.PerPCSHA, wc.PerPCSHA)
			}
		}
	}
}
