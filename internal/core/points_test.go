package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// TestStoreBucketNamesMatchPipeline pins the store's bucket schema to
// the pipeline's cycle-accounting buckets one for one; the store keeps
// its own copy so the file format stays simulator-independent.
func TestStoreBucketNamesMatchPipeline(t *testing.T) {
	if store.NumBuckets != pipeline.NumBuckets {
		t.Fatalf("store has %d buckets, pipeline has %d", store.NumBuckets, pipeline.NumBuckets)
	}
	for b := 0; b < pipeline.NumBuckets; b++ {
		if store.BucketNames[b] != pipeline.Bucket(b).String() {
			t.Errorf("bucket %d: store %q != pipeline %q",
				b, store.BucketNames[b], pipeline.Bucket(b).String())
		}
	}
}

// TestMeasurementPoints checks the expansion of one real measurement
// into store points: grid shape, the exact-attribution invariant, and
// agreement with the Appendix A cycle model.
func TestMeasurementPoints(t *testing.T) {
	lab := NewLab()
	m, err := lab.Measure(bench.ByName("ackermann"), isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	pts := m.Points()
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8 (2 buses × 4 wait states)", len(pts))
	}
	for i := range pts {
		p := &pts[i]
		if err := p.Validate(); err != nil {
			t.Fatalf("point %s fails the store invariant: %v", p.Key(), err)
		}
		if got, want := p.Cycles, m.Cycles(uint32(p.BusBytes), p.WaitStates); got != want {
			t.Errorf("point %s: cycles %d, model says %d", p.Key(), got, want)
		}
		if p.Buckets[store.BUseful] != m.Stats.Instrs {
			t.Errorf("point %s: useful %d != instrs %d", p.Key(), p.Buckets[store.BUseful], m.Stats.Instrs)
		}
		if p.WaitStates == 0 && (p.Buckets[store.BIFetchWait] != 0 || p.Buckets[store.BDMemWait] != 0) {
			t.Errorf("point %s: wait buckets nonzero at zero wait states", p.Key())
		}
	}

	// Lab.Points returns the canonical (sorted, deduped) surface.
	labPts := lab.Points()
	if len(labPts) != 8 {
		t.Fatalf("lab points: %d, want 8", len(labPts))
	}
	canon := store.Canon(labPts)
	for i := range canon {
		if canon[i] != labPts[i] {
			t.Fatal("Lab.Points is not canonical")
		}
	}
}
