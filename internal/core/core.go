// Package core is the library's public facade: it ties the compiler,
// assembler, simulator and memory-system models together into the
// measurement pipeline the paper's experiments are built on.
//
// The central type is Lab, a memoizing measurement harness: it compiles a
// benchmark for a target configuration once, runs it once with every
// standard observer attached (fetch-buffer models for both bus widths and
// the immediate-field classifier), and caches the result, so each of the
// paper's tables and figures re-reads the same underlying run.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/mcc"
	"repro/internal/memsys"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// Measurement is the full result of compiling and running one benchmark
// under one target configuration.
type Measurement struct {
	Bench string
	Spec  *isa.Spec

	// Static measures.
	Size         int // stripped binary bytes (text + data), the density measure
	TextBytes    int
	DataBytes    int
	PoolBytes    int // D16 literal pools (included in TextBytes)
	StaticInstrs int
	Spills       int

	// Dynamic measures.
	Output string
	Stats  sim.Stats

	// Cacheless memory-interface models (Appendix A.2).
	Bus32 *memsys.NoCache // 32-bit fetch bus
	Bus64 *memsys.NoCache // 64-bit fetch bus

	// Immediate-field classification (Table 4).
	Imm ImmStats

	Image *prog.Image
}

// Cycles evaluates total cycles for a cacheless machine with the given
// fetch-bus width (bytes) and wait states.
func (m *Measurement) Cycles(busBytes uint32, waitStates int64) int64 {
	bus := m.Bus32
	if busBytes == 8 {
		bus = m.Bus64
	}
	return bus.Cycles(m.Stats.Instrs, m.Stats.Interlocks, waitStates)
}

// CPI is cycles per (own) instruction for the cacheless machine.
func (m *Measurement) CPI(busBytes uint32, waitStates int64) float64 {
	return float64(m.Cycles(busBytes, waitStates)) / float64(m.Stats.Instrs)
}

// ImmStats counts dynamic instructions whose immediate operands exceed
// the D16 field limits (the paper's Table 4 classification), measured on
// a DLXe execution.
type ImmStats struct {
	Total    int64
	CmpImm   int64 // compare-immediate instructions
	CmpImm8  int64 // of CmpImm, comparands that fit 8 bits (Section 3.3.3's proposal)
	WideALU  int64 // ALU immediates that exceed 5 unsigned bits
	WideMem  int64 // memory displacements beyond D16's reach
	WideMVI  int64 // move-immediates beyond 9 signed bits
	FarCalls int64 // J-type calls/jumps (D16 uses a pool load + register jump)
}

// Exec implements sim.Observer.
func (s *ImmStats) Exec(pc uint32, in isa.Instr) {
	s.Total++
	switch {
	case in.Op == isa.CMP && in.HasImm:
		s.CmpImm++
		if in.Imm >= 0 && in.Imm <= 255 {
			s.CmpImm8++
		}
	case in.Op == isa.MVI && (in.Imm < -256 || in.Imm > 255):
		s.WideMVI++
	case in.Op == isa.MVHI:
		s.WideMVI++
	case in.Op == isa.ANDI || in.Op == isa.ORI || in.Op == isa.XORI:
		s.WideALU++
	case (in.Op == isa.ADDI || in.Op == isa.SUBI) && (in.Imm < 0 || in.Imm > 31):
		s.WideALU++
	case in.Op.IsLoad() || in.Op.IsStore():
		sub := in.Op != isa.LD && in.Op != isa.ST
		if sub && in.Imm != 0 {
			s.WideMem++
		} else if !sub && (in.Imm < 0 || in.Imm > 124) {
			s.WideMem++
		}
	case (in.Op == isa.J || in.Op == isa.JL) && in.HasImm:
		s.FarCalls++
	}
}

// Load implements sim.Observer.
func (s *ImmStats) Load(addr uint32, size uint32) {}

// Store implements sim.Observer.
func (s *ImmStats) Store(addr uint32, size uint32) {}

// Lab memoizes measurements across experiments and executes them
// through a jobs.Scheduler, so the same harness serves three shapes of
// caller:
//
//   - sequential experiments (NewLab: an inline scheduler executes each
//     point on the calling goroutine, exactly the pre-scheduler order),
//   - parallel sweeps (NewParallelLab: points fan out across a worker
//     pool; identical in-flight points coalesce),
//   - services (NewLabWith: the caller shapes queue depth, timeouts and
//     metrics, and uses the Try ticket API for backpressure).
//
// Memoization is two-layered. Compiles are memoized per benchmark×ISA
// in one-shot flights. Runs live in the scheduler's content-addressed
// result cache, keyed by a hash of the program image plus the simulated
// memory configuration, so repeated submissions — including ones
// arriving over the batch HTTP API — are served without re-simulating.
type Lab struct {
	sched *jobs.Scheduler
	mu    sync.Mutex
	comp  map[string]*flight[*mcc.Compiled]
	runs  map[string]*Measurement // by bench|spec, for enumeration
	errs  map[string]error        // failed measure runs, by bench|spec
}

// flight is a one-shot memoization cell: the first caller runs fn,
// every later or concurrent caller shares the outcome.
type flight[T any] struct {
	once sync.Once
	val  T
	err  error
}

func flightDo[T any](l *Lab, m map[string]*flight[T], k string, fn func() (T, error)) (T, error) {
	l.mu.Lock()
	f, ok := m[k]
	if !ok {
		f = &flight[T]{}
		m[k] = f
	}
	l.mu.Unlock()
	f.once.Do(func() { f.val, f.err = fn() })
	return f.val, f.err
}

// NewLab returns a sequential measurement harness: points execute
// inline on the calling goroutine, preserving the exact behavior and
// ordering of a scheduler-free run.
func NewLab() *Lab { return NewLabWith(jobs.New(jobs.Config{})) }

// NewParallelLab returns a harness whose points execute on a pool of
// the given number of workers, with scheduler metrics published in the
// process-wide telemetry registry.
func NewParallelLab(workers int) *Lab {
	return NewLabWith(jobs.New(jobs.Config{
		Workers:    workers,
		QueueDepth: 4*workers + 64,
		Registry:   telemetry.Default(),
	}))
}

// NewLabWith returns a harness running on a caller-shaped scheduler.
func NewLabWith(s *jobs.Scheduler) *Lab {
	return &Lab{
		sched: s,
		comp:  map[string]*flight[*mcc.Compiled]{},
		runs:  map[string]*Measurement{},
		errs:  map[string]error{},
	}
}

// Scheduler returns the lab's job scheduler (for metrics registration
// and graceful shutdown).
func (l *Lab) Scheduler() *jobs.Scheduler { return l.sched }

func key(b *bench.Benchmark, spec *isa.Spec) string { return b.Name + "|" + spec.Name }

// Compile compiles (with memoization) one benchmark for one target.
// Compilation runs on the calling goroutine — it is cheap relative to
// simulation and its output is needed to compute the run's content key.
func (l *Lab) Compile(b *bench.Benchmark, spec *isa.Spec) (*mcc.Compiled, error) {
	return flightDo(l, l.comp, key(b, spec), func() (*mcc.Compiled, error) {
		return mcc.Compile(b.Name+".mc", b.Source, spec)
	})
}

// hashImage folds everything execution-relevant about a linked program
// image into h: the encoding, the entry state and the text and data
// segments — plus the verifier rule-set version, so that results
// admitted under an older verifier are invalidated when the rules
// change.
func hashImage(h *jobs.Hasher, img *prog.Image) *jobs.Hasher {
	return h.Int(int64(verify.Version)).
		Int(int64(img.Enc)).Bool(img.Cmp8).Int(int64(img.Entry)).
		Int(int64(img.BSS)).Bytes(img.Text).Bytes(img.Data)
}

// measureKey is the content address of one standard measurement run:
// the program image, the run budget, and the identity labels the
// resulting Measurement embeds.
func measureKey(b *bench.Benchmark, spec *isa.Spec, img *prog.Image) jobs.Key {
	h := jobs.NewHasher("measure").String(b.Name).String(spec.Name).Int(b.MaxInstrs)
	return hashImage(h, img).Key()
}

// Measure compiles and runs one benchmark under one configuration (with
// memoization), attaching the standard observers.
func (l *Lab) Measure(b *bench.Benchmark, spec *isa.Spec) (*Measurement, error) {
	t, err := l.MeasureTicket(context.Background(), b, spec)
	if err != nil {
		return nil, err
	}
	v, err := t.Wait(context.Background())
	if err != nil {
		return nil, err
	}
	return v.(*Measurement), nil
}

// MeasureTicket submits the measurement as a job and returns its
// ticket without waiting, so callers can fan a set of points out across
// the lab's workers and collect them in a deterministic order. A full
// queue blocks until space frees or ctx ends.
func (l *Lab) MeasureTicket(ctx context.Context, b *bench.Benchmark, spec *isa.Spec) (*jobs.Ticket, error) {
	return l.measureTicket(ctx, b, spec, false)
}

// TryMeasureTicket is MeasureTicket with fail-fast backpressure: a full
// queue returns jobs.ErrOverloaded instead of blocking (servers map it
// to 503).
func (l *Lab) TryMeasureTicket(ctx context.Context, b *bench.Benchmark, spec *isa.Spec) (*jobs.Ticket, error) {
	return l.measureTicket(ctx, b, spec, true)
}

func (l *Lab) measureTicket(ctx context.Context, b *bench.Benchmark, spec *isa.Spec, try bool) (*jobs.Ticket, error) {
	c, err := l.Compile(b, spec)
	if err != nil {
		return nil, err
	}
	k := key(b, spec)
	l.mu.Lock()
	err = l.errs[k]
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	job := jobs.Job{
		Name: "measure " + k,
		Key:  measureKey(b, spec, c.Image),
		Fn: func(context.Context) (any, error) {
			m, err := l.runMeasure(b, spec, c)
			l.mu.Lock()
			if err != nil {
				l.errs[k] = err
			} else {
				l.runs[k] = m
			}
			l.mu.Unlock()
			if err != nil {
				return nil, err
			}
			return m, nil
		},
	}
	if try {
		return l.sched.TrySubmit(ctx, job)
	}
	return l.sched.Submit(ctx, job)
}

// runMeasure executes one compiled benchmark with the standard
// observers attached. It holds no lab locks: concurrent runs of
// distinct points are the scheduler's normal mode.
func (l *Lab) runMeasure(b *bench.Benchmark, spec *isa.Spec, c *mcc.Compiled) (*Measurement, error) {
	span := telemetry.StartSpan("measure",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name))
	defer span.End()
	machine, err := sim.Acquire(c.Image)
	if err != nil {
		return nil, err
	}
	defer sim.Release(machine)
	m := &Measurement{
		Bench:        b.Name,
		Spec:         spec,
		Size:         c.Image.Size(),
		TextBytes:    len(c.Image.Text),
		DataBytes:    len(c.Image.Data),
		PoolBytes:    c.Image.PoolBytes,
		StaticInstrs: c.Image.TextInstrs,
		Spills:       c.Spills,
		Bus32:        memsys.NewNoCache(4),
		Bus64:        memsys.NewNoCache(8),
		Image:        c.Image,
	}
	machine.Attach(m.Bus32)
	machine.Attach(m.Bus64)
	machine.Attach(&m.Imm)
	rspan := telemetry.StartSpan("run",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name))
	err = machine.Run(b.MaxInstrs)
	rspan.End()
	if err != nil {
		return nil, fmt.Errorf("core: %s on %s: %w", b.Name, spec, err)
	}
	m.Output = machine.Output.String()
	m.Stats = machine.Stats
	if b.Expect != "" && m.Output != b.Expect {
		return nil, fmt.Errorf("core: %s on %s: output %q, want %q",
			b.Name, spec, m.Output, b.Expect)
	}
	return m, nil
}

// CacheSweep runs one benchmark under one configuration with a split I/D
// cache system per geometry, all attached to a single execution. Results
// are served from the scheduler's content-addressed cache, keyed by the
// program image and the geometry set.
func (l *Lab) CacheSweep(b *bench.Benchmark, spec *isa.Spec, cfgs []cache.Config) ([]*cache.System, error) {
	c, err := l.Compile(b, spec)
	if err != nil {
		return nil, err
	}
	h := jobs.NewHasher("cache-sweep").Int(b.MaxInstrs)
	for _, cfg := range cfgs {
		h.Int(int64(cfg.Size)).Int(int64(cfg.BlockBytes)).Int(int64(cfg.SubBytes))
	}
	hashImage(h, c.Image)
	v, err := l.sched.Do(context.Background(), jobs.Job{
		Name: "cache-sweep " + key(b, spec),
		Key:  h.Key(),
		Fn: func(context.Context) (any, error) {
			return l.runCacheSweep(b, spec, c, cfgs)
		},
	})
	if err != nil {
		return nil, err
	}
	return v.([]*cache.System), nil
}

func (l *Lab) runCacheSweep(b *bench.Benchmark, spec *isa.Spec, c *mcc.Compiled, cfgs []cache.Config) ([]*cache.System, error) {
	span := telemetry.StartSpan("cache-sweep",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name),
		telemetry.String("geometries", fmt.Sprintf("%d", len(cfgs))))
	defer span.End()
	machine, err := sim.Acquire(c.Image)
	if err != nil {
		return nil, err
	}
	defer sim.Release(machine)
	var systems []*cache.System
	for _, cfg := range cfgs {
		sys, err := cache.NewSystem(cfg, cfg)
		if err != nil {
			return nil, err
		}
		systems = append(systems, sys)
		machine.Attach(sys)
	}
	rspan := telemetry.StartSpan("run",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name))
	err = machine.Run(b.MaxInstrs)
	rspan.End()
	if err != nil {
		return nil, fmt.Errorf("core: cache sweep %s on %s: %w", b.Name, spec, err)
	}
	return systems, nil
}

// PipelineRun executes one benchmark under the event-driven cycle-level
// pipeline model (one engine per memory configuration, all attached to a
// single execution). Results are served from the scheduler's
// content-addressed cache; the configurations must be cacheless (a
// pipeline.Config carrying its own cache.System is not hashable).
func (l *Lab) PipelineRun(b *bench.Benchmark, spec *isa.Spec, cfgs []pipeline.Config) ([]*pipeline.Engine, error) {
	c, err := l.Compile(b, spec)
	if err != nil {
		return nil, err
	}
	h := jobs.NewHasher("pipeline-run").Int(b.MaxInstrs)
	for _, cfg := range cfgs {
		h.Int(int64(cfg.BusBytes)).Int(cfg.WaitStates).Bool(cfg.SharedPort).Int(cfg.MissPenalty)
	}
	hashImage(h, c.Image)
	v, err := l.sched.Do(context.Background(), jobs.Job{
		Name: "pipeline-run " + key(b, spec),
		Key:  h.Key(),
		Fn: func(context.Context) (any, error) {
			return l.runPipeline(b, spec, c, cfgs)
		},
	})
	if err != nil {
		return nil, err
	}
	return v.([]*pipeline.Engine), nil
}

func (l *Lab) runPipeline(b *bench.Benchmark, spec *isa.Spec, c *mcc.Compiled, cfgs []pipeline.Config) ([]*pipeline.Engine, error) {
	span := telemetry.StartSpan("pipeline-run",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name))
	defer span.End()
	machine, err := sim.Acquire(c.Image)
	if err != nil {
		return nil, err
	}
	defer sim.Release(machine)
	var engines []*pipeline.Engine
	for _, cfg := range cfgs {
		e := pipeline.New(cfg)
		engines = append(engines, e)
		machine.Attach(e)
	}
	rspan := telemetry.StartSpan("run",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name))
	err = machine.Run(b.MaxInstrs)
	rspan.End()
	if err != nil {
		return nil, fmt.Errorf("core: pipeline run %s on %s: %w", b.Name, spec, err)
	}
	return engines, nil
}

// AccountRun is one cycle-accounted execution: engines with per-PC
// attribution enabled (one per requested memory configuration, all fed
// by a single run) plus the symbol table to fold attributions per
// function.
type AccountRun struct {
	Engines []*pipeline.Engine
	Syms    *sim.SymTable
}

// Account executes one benchmark with cycle-accounting engines attached
// (per-PC attribution on) and returns them with the image's symbol
// table. Results are served from the scheduler's content-addressed
// cache, keyed by the program image and the config set; cached
// configurations build a fresh cache.System per engine from CacheBytes.
func (l *Lab) Account(b *bench.Benchmark, spec *isa.Spec, cfgs []AccountConfig) (*AccountRun, error) {
	t, err := l.AccountTicket(context.Background(), b, spec, cfgs)
	if err != nil {
		return nil, err
	}
	v, err := t.Wait(context.Background())
	if err != nil {
		return nil, err
	}
	return v.(*AccountRun), nil
}

// AccountTicket submits the accounted run as a job and returns its
// ticket without waiting — the fan-out form of Account, used by the
// sweep engine for cached-memory grid cells.
func (l *Lab) AccountTicket(ctx context.Context, b *bench.Benchmark, spec *isa.Spec, cfgs []AccountConfig) (*jobs.Ticket, error) {
	c, err := l.Compile(b, spec)
	if err != nil {
		return nil, err
	}
	h := jobs.NewHasher("account-run").Int(b.MaxInstrs)
	for _, cfg := range cfgs {
		h.Int(int64(cfg.BusBytes)).Int(cfg.WaitStates).Bool(cfg.SharedPort).
			Int(int64(cfg.CacheBytes)).Int(cfg.MissPenalty)
	}
	hashImage(h, c.Image)
	return l.sched.Submit(ctx, jobs.Job{
		Name: "account-run " + key(b, spec),
		Key:  h.Key(),
		Fn: func(context.Context) (any, error) {
			return l.runAccount(b, spec, c, cfgs)
		},
	})
}

func (l *Lab) runAccount(b *bench.Benchmark, spec *isa.Spec, c *mcc.Compiled, cfgs []AccountConfig) (*AccountRun, error) {
	span := telemetry.StartSpan("account-run",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name))
	defer span.End()
	machine, err := sim.Acquire(c.Image)
	if err != nil {
		return nil, err
	}
	defer sim.Release(machine)
	run := &AccountRun{Syms: sim.NewSymTable(c.Image)}
	for _, ac := range cfgs {
		pc := pipeline.Config{
			BusBytes:    ac.BusBytes,
			WaitStates:  ac.WaitStates,
			SharedPort:  ac.SharedPort,
			MissPenalty: ac.MissPenalty,
		}
		if ac.CacheBytes > 0 {
			sys, err := cache.NewSystem(cache.PaperConfig(ac.CacheBytes), cache.PaperConfig(ac.CacheBytes))
			if err != nil {
				return nil, err
			}
			pc.Caches = sys
		}
		e := pipeline.New(pc)
		e.EnablePCAccounting()
		run.Engines = append(run.Engines, e)
		machine.Attach(e)
	}
	rspan := telemetry.StartSpan("run",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name))
	err = machine.Run(b.MaxInstrs)
	rspan.End()
	if err != nil {
		return nil, fmt.Errorf("core: account run %s on %s: %w", b.Name, spec, err)
	}
	return run, nil
}

// AccountConfig describes one accounted memory configuration by value
// (so it can key the memoization map); CacheBytes > 0 selects the
// cached interface with the paper's cache organization.
type AccountConfig struct {
	BusBytes    uint32
	WaitStates  int64
	SharedPort  bool
	CacheBytes  uint32
	MissPenalty int64
}

// Measurements returns every memoized measurement, sorted by benchmark
// then configuration (the export order of the suite summary).
func (l *Lab) Measurements() []*Measurement {
	l.mu.Lock()
	out := make([]*Measurement, 0, len(l.runs))
	for _, m := range l.runs { //detlint:ignore rangemap sorted immediately below
		out = append(out, m)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Spec.Name < out[j].Spec.Name
	})
	return out
}

// SummaryRow is the machine-readable scalar summary of one measurement:
// the static and dynamic measures every experiment derives from, plus
// cacheless CPI at wait states 0–3 for both fetch-bus widths. One row
// per bench×config lands in repro's summary.json so the performance
// trajectory can be diffed across changes.
type SummaryRow struct {
	Bench        string `json:"bench"`
	Config       string `json:"config"`
	SizeBytes    int    `json:"size_bytes"`
	TextBytes    int    `json:"text_bytes"`
	PoolBytes    int    `json:"pool_bytes"`
	DataBytes    int    `json:"data_bytes"`
	StaticInstrs int    `json:"static_instrs"`
	Spills       int    `json:"spills"`
	Instrs       int64  `json:"instrs"`
	Interlocks   int64  `json:"interlocks"`
	Loads        int64  `json:"loads"`
	PoolLoads    int64  `json:"pool_loads"`
	Stores       int64  `json:"stores"`
	FetchWords   int64  `json:"fetch_words"`
	// CPIBus32/CPIBus64 index by wait states ℓ = 0..3.
	CPIBus32 []float64 `json:"cpi_bus32"`
	CPIBus64 []float64 `json:"cpi_bus64"`
}

// Summary converts one measurement to its exported scalar row.
func (m *Measurement) Summary() SummaryRow {
	row := SummaryRow{
		Bench:        m.Bench,
		Config:       m.Spec.Name,
		SizeBytes:    m.Size,
		TextBytes:    m.TextBytes,
		PoolBytes:    m.PoolBytes,
		DataBytes:    m.DataBytes,
		StaticInstrs: m.StaticInstrs,
		Spills:       m.Spills,
		Instrs:       m.Stats.Instrs,
		Interlocks:   m.Stats.Interlocks,
		Loads:        m.Stats.Loads,
		PoolLoads:    m.Stats.PoolLoads,
		Stores:       m.Stats.Stores,
		FetchWords:   m.Stats.FetchWords,
	}
	for l := int64(0); l <= 3; l++ {
		row.CPIBus32 = append(row.CPIBus32, m.CPI(4, l))
		row.CPIBus64 = append(row.CPIBus64, m.CPI(8, l))
	}
	return row
}

// Summary returns scalar rows for every memoized measurement.
func (l *Lab) Summary() []SummaryRow {
	ms := l.Measurements()
	rows := make([]SummaryRow, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, m.Summary())
	}
	return rows
}

// RegisterMetrics publishes the measurement's scalars and its attached
// memory-interface models as live gauges under prefix (typically
// "<bench>.<config>.").
func (m *Measurement) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	stats := &m.Stats
	reg.RegisterFunc(prefix+"size_bytes", func() int64 { return int64(m.Size) })
	reg.RegisterFunc(prefix+"static_instrs", func() int64 { return int64(m.StaticInstrs) })
	reg.RegisterFunc(prefix+"spills", func() int64 { return int64(m.Spills) })
	reg.RegisterFunc(prefix+"instrs", func() int64 { return stats.Instrs })
	reg.RegisterFunc(prefix+"interlocks", func() int64 { return stats.Interlocks })
	reg.RegisterFunc(prefix+"data_ops", stats.DataOps)
	m.Bus32.Register(reg, prefix+"bus32.")
	m.Bus64.Register(reg, prefix+"bus64.")
}

// Suite returns the benchmark suite (re-exported for callers that only
// import core).
func Suite() []*bench.Benchmark { return bench.All() }

// Configs returns the paper's five compiler configurations.
func Configs() []*isa.Spec { return isa.PaperConfigs() }
