package core

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/mcc"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// BusProfile is one execution observed through cacheless fetch-bus
// models of several widths at once: a single simulation with one
// NoCache observer per requested bus width, from which the closed-form
// Appendix A model expands cycles for any wait-state count. It is the
// sweep engine's workhorse — a B-bus × W-wait-state grid costs one run,
// not B×W.
type BusProfile struct {
	Bench  string
	Spec   *isa.Spec
	Output string
	Stats  sim.Stats

	BusBytes []uint32          // the requested widths, in request order
	Buses    []*memsys.NoCache // parallel to BusBytes

	SizeBytes    int
	TextBytes    int
	StaticInstrs int
}

// Points expands the profile into store points over the wait-state
// grid: one point per (bus width, wait states), with the Appendix A
// cycle attribution (useful issue + load-delay interlocks + wait-state
// cycles split across the instruction and data sides), so the store's
// sum-of-buckets == cycles invariant holds by construction.
func (p *BusProfile) Points(waits []int64) []store.Point {
	out := make([]store.Point, 0, len(p.Buses)*len(waits))
	for _, bus := range p.Buses {
		for _, w := range waits {
			pt := store.Point{
				Bench:        p.Bench,
				Config:       p.Spec.Name,
				BusBytes:     int64(bus.BusBytes),
				WaitStates:   w,
				Cycles:       bus.Cycles(p.Stats.Instrs, p.Stats.Interlocks, w),
				Instrs:       p.Stats.Instrs,
				IFetchBytes:  bus.IRequests * int64(bus.BusBytes),
				DMemBytes:    bus.DRequests * 4,
				SizeBytes:    int64(p.SizeBytes),
				TextBytes:    int64(p.TextBytes),
				StaticInstrs: int64(p.StaticInstrs),
			}
			pt.Buckets[store.BUseful] = p.Stats.Instrs
			pt.Buckets[store.BLoadDelay] = p.Stats.Interlocks
			pt.Buckets[store.BIFetchWait] = w * bus.IRequests
			pt.Buckets[store.BDMemWait] = w * bus.DRequests
			out = append(out, pt)
		}
	}
	return out
}

// BusProfileTicket submits a bus-profile run as a job and returns its
// ticket without waiting, so a sweep can fan hundreds of programs out
// across the lab's workers and drain them in a deterministic order.
// Results are served from the scheduler's content-addressed cache,
// keyed by the program image and the width set.
func (l *Lab) BusProfileTicket(ctx context.Context, b *bench.Benchmark, spec *isa.Spec, buses []uint32) (*jobs.Ticket, error) {
	c, err := l.Compile(b, spec)
	if err != nil {
		return nil, err
	}
	h := jobs.NewHasher("bus-profile").String(b.Name).String(spec.Name).Int(b.MaxInstrs)
	for _, w := range buses {
		h.Int(int64(w))
	}
	hashImage(h, c.Image)
	return l.sched.Submit(ctx, jobs.Job{
		Name: "bus-profile " + key(b, spec),
		Key:  h.Key(),
		Fn: func(context.Context) (any, error) {
			return l.runBusProfile(b, spec, c, buses)
		},
	})
}

// BusProfile is the synchronous form of BusProfileTicket.
func (l *Lab) BusProfile(b *bench.Benchmark, spec *isa.Spec, buses []uint32) (*BusProfile, error) {
	t, err := l.BusProfileTicket(context.Background(), b, spec, buses)
	if err != nil {
		return nil, err
	}
	v, err := t.Wait(context.Background())
	if err != nil {
		return nil, err
	}
	return v.(*BusProfile), nil
}

func (l *Lab) runBusProfile(b *bench.Benchmark, spec *isa.Spec, c *mcc.Compiled, buses []uint32) (*BusProfile, error) {
	span := telemetry.StartSpan("bus-profile",
		telemetry.String("bench", b.Name), telemetry.String("config", spec.Name))
	defer span.End()
	machine, err := sim.Acquire(c.Image)
	if err != nil {
		return nil, err
	}
	defer sim.Release(machine)
	p := &BusProfile{
		Bench:        b.Name,
		Spec:         spec,
		BusBytes:     buses,
		SizeBytes:    c.Image.Size(),
		TextBytes:    len(c.Image.Text),
		StaticInstrs: c.Image.TextInstrs,
	}
	for _, w := range buses {
		n := memsys.NewNoCache(w)
		p.Buses = append(p.Buses, n)
		machine.Attach(n)
	}
	if err := machine.Run(b.MaxInstrs); err != nil {
		return nil, fmt.Errorf("core: bus profile %s on %s: %w", b.Name, spec, err)
	}
	p.Output = machine.Output.String()
	p.Stats = machine.Stats
	if b.Expect != "" && p.Output != b.Expect {
		return nil, fmt.Errorf("core: bus profile %s on %s: output %q, want %q",
			b.Name, spec, p.Output, b.Expect)
	}
	return p, nil
}
