package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/memsys"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// TestConcurrentRunsDeterministic is the concurrency-safety contract of
// the simulation stack: eight goroutines compile-once/run-many the same
// benchmark — sharing one *prog.Image — each with its own machine,
// cycle-level pipeline engine and cacheless memory model, and every run
// must produce identical outputs and identical cycle counts. Run under
// -race (make test does) this doubles as the shared-mutable-state audit
// of internal/sim and internal/pipeline.
func TestConcurrentRunsDeterministic(t *testing.T) {
	b := bench.ByName("queens")
	if b == nil {
		t.Fatal("benchmark queens missing")
	}
	c, err := mcc.Compile(b.Name+".mc", b.Source, isa.D16())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	type result struct {
		output string
		instrs int64
		pipe   int64
		bus    int64
	}
	results := make([]result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := sim.New(c.Image)
			if err != nil {
				errs[i] = err
				return
			}
			eng := pipeline.New(pipeline.Config{BusBytes: 4, WaitStates: 1})
			bus := memsys.NewNoCache(4)
			m.Attach(eng)
			m.Attach(bus)
			if err := m.Run(b.MaxInstrs); err != nil {
				errs[i] = err
				return
			}
			results[i] = result{
				output: m.Output.String(),
				instrs: m.Stats.Instrs,
				pipe:   eng.Cycles(),
				bus:    bus.Cycles(m.Stats.Instrs, m.Stats.Interlocks, 1),
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("run %d diverged: %+v != %+v", i, results[i], results[0])
		}
	}
	if results[0].pipe == 0 || results[0].instrs == 0 {
		t.Fatalf("degenerate run: %+v", results[0])
	}
}

// TestParallelLabCoalesces drives the same measurement point through a
// parallel lab from eight goroutines at once and checks that they all
// observe the same memoized *Measurement — the scheduler either
// coalesced them onto one in-flight run or served them from the result
// cache, never computing the point twice.
func TestParallelLabCoalesces(t *testing.T) {
	lab := NewParallelLab(2)
	defer lab.Scheduler().Shutdown(context.Background())
	b := bench.ByName("queens")
	spec := isa.D16()

	const callers = 8
	ms := make([]*Measurement, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms[i], errs[i] = lab.Measure(b, spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if ms[i] != ms[0] {
			t.Fatalf("caller %d got a distinct Measurement", i)
		}
	}
	hits := lab.Scheduler().Metrics().CacheHits.Value()
	coalesced := lab.Scheduler().Metrics().Coalesced.Value()
	if hits+coalesced != callers-1 {
		t.Fatalf("hits=%d coalesced=%d, want them to cover %d duplicate submissions",
			hits, coalesced, callers-1)
	}
}

// TestParallelLabMatchesSequential measures a grid of points on an
// inline lab and on a 4-worker lab and requires identical scalar rows —
// the byte-identity guarantee `repro -jobs N` builds on.
func TestParallelLabMatchesSequential(t *testing.T) {
	specs := []*isa.Spec{isa.D16(), isa.DLXe()}
	benches := []*bench.Benchmark{bench.ByName("queens"), bench.ByName("towers"), bench.ByName("ackermann")}

	seq := NewLab()
	for _, spec := range specs {
		for _, b := range benches {
			if _, err := seq.Measure(b, spec); err != nil {
				t.Fatal(err)
			}
		}
	}

	par := NewParallelLab(4)
	defer par.Scheduler().Shutdown(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*len(benches))
	for _, spec := range specs {
		for _, b := range benches {
			wg.Add(1)
			go func(b *bench.Benchmark, spec *isa.Spec) {
				defer wg.Done()
				if _, err := par.Measure(b, spec); err != nil {
					errs <- err
				}
			}(b, spec)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var a, bb bytes.Buffer
	for _, row := range seq.Summary() {
		a.WriteString(rowString(row))
	}
	for _, row := range par.Summary() {
		bb.WriteString(rowString(row))
	}
	if a.String() != bb.String() {
		t.Fatalf("parallel summary diverged:\nseq:\n%s\npar:\n%s", a.String(), bb.String())
	}
}

func rowString(r SummaryRow) string {
	return fmt.Sprintf("%s|%s|%v|%v|%d,%d,%d,%d\n",
		r.Bench, r.Config, r.CPIBus32, r.CPIBus64,
		r.SizeBytes, r.Instrs, r.Interlocks, r.FetchWords)
}
