package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

func TestMeasureMemoizes(t *testing.T) {
	lab := NewLab()
	b := bench.ByName("ackermann")
	m1, err := lab.Measure(b, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := lab.Measure(b, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("second Measure did not return the cached result")
	}
	if m1.Stats.Instrs == 0 || m1.Size == 0 {
		t.Error("empty measurement")
	}
}

func TestMeasureChecksExpectedOutput(t *testing.T) {
	lab := NewLab()
	bad := &bench.Benchmark{
		Name:      "bad",
		Source:    "int main() { print_int(1); return 0; }",
		Expect:    "2",
		MaxInstrs: 10000,
	}
	if _, err := lab.Measure(bad, isa.D16()); err == nil {
		t.Fatal("expected an output-mismatch error")
	}
	// Errors are memoized too.
	if _, err := lab.Measure(bad, isa.D16()); err == nil {
		t.Fatal("expected the cached error")
	}
}

func TestMeasurementModels(t *testing.T) {
	lab := NewLab()
	b := bench.ByName("queens")
	m, err := lab.Measure(b, isa.DLXe())
	if err != nil {
		t.Fatal(err)
	}
	// On DLXe with a 32-bit bus every instruction is one fetch request.
	if m.Bus32.IRequests != m.Stats.Instrs {
		t.Errorf("32-bit-bus DLXe fetches %d != instrs %d", m.Bus32.IRequests, m.Stats.Instrs)
	}
	if m.Bus64.IRequests >= m.Bus32.IRequests {
		t.Error("wider bus should issue fewer fetch requests")
	}
	// Zero-wait CPI is 1 + interlock rate.
	want := 1 + float64(m.Stats.Interlocks)/float64(m.Stats.Instrs)
	if got := m.CPI(4, 0); got != want {
		t.Errorf("CPI(4,0) = %v, want %v", got, want)
	}
	if m.Cycles(4, 2) <= m.Cycles(4, 1) {
		t.Error("cycles must grow with wait states")
	}
}

func TestCacheSweepMemoizes(t *testing.T) {
	lab := NewLab()
	b := bench.ByName("ackermann")
	cfgs := []cache.Config{cache.PaperConfig(1024), cache.PaperConfig(2048)}
	s1, err := lab.CacheSweep(b, isa.D16(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 2 {
		t.Fatalf("%d systems, want 2", len(s1))
	}
	s2, err := lab.CacheSweep(b, isa.D16(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if &s1[0] == &s2[0] && s1[0] != s2[0] {
		t.Error("sweep not memoized")
	}
	if s1[0].I.Stats.Reads == 0 {
		t.Error("no cache activity recorded")
	}
	// Larger cache, no more misses.
	if s1[1].I.Stats.Misses() > s1[0].I.Stats.Misses() {
		t.Error("larger cache missed more")
	}
}

func TestPipelineRun(t *testing.T) {
	lab := NewLab()
	b := bench.ByName("ackermann")
	engines, err := lab.PipelineRun(b, isa.D16(), []pipeline.Config{
		{BusBytes: 4, WaitStates: 0},
		{BusBytes: 4, WaitStates: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if engines[1].Cycles() <= engines[0].Cycles() {
		t.Error("wait states must cost cycles")
	}
	m, err := lab.Measure(b, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	// The engine and the formula agree exactly at zero wait states.
	if got, want := engines[0].Cycles(), m.Cycles(4, 0)+4; got != want {
		t.Errorf("engine %d, formula+drain %d", got, want)
	}
}

func TestImmStatsClassification(t *testing.T) {
	var s ImmStats
	exec := func(in isa.Instr) { s.Exec(0x1000, in) }
	exec(isa.Instr{Op: isa.CMP, Cond: isa.LT, Rd: isa.R(3), Rs1: isa.R(4), Imm: 100, HasImm: true})
	exec(isa.Instr{Op: isa.CMP, Cond: isa.LT, Rd: isa.R(3), Rs1: isa.R(4), Imm: 1000, HasImm: true})
	exec(isa.Instr{Op: isa.ADDI, Rd: isa.R(3), Rs1: isa.R(3), Imm: 7, HasImm: true})
	exec(isa.Instr{Op: isa.ADDI, Rd: isa.R(3), Rs1: isa.R(3), Imm: 77, HasImm: true})
	exec(isa.Instr{Op: isa.ORI, Rd: isa.R(3), Rs1: isa.R(3), Imm: 1, HasImm: true})
	exec(isa.Instr{Op: isa.LD, Rd: isa.R(3), Rs1: isa.R(2), Imm: 120})
	exec(isa.Instr{Op: isa.LD, Rd: isa.R(3), Rs1: isa.R(2), Imm: 128})
	exec(isa.Instr{Op: isa.LDB, Rd: isa.R(3), Rs1: isa.R(2), Imm: 1})
	exec(isa.Instr{Op: isa.MVI, Rd: isa.R(3), Imm: 300, HasImm: true})
	exec(isa.Instr{Op: isa.JL, Imm: 400, HasImm: true})

	if s.Total != 10 {
		t.Errorf("total %d", s.Total)
	}
	if s.CmpImm != 2 || s.CmpImm8 != 1 {
		t.Errorf("cmp counts %d/%d, want 2/1", s.CmpImm, s.CmpImm8)
	}
	if s.WideALU != 2 { // addi 77 (beyond 5 bits) and ori
		t.Errorf("wide ALU %d, want 2", s.WideALU)
	}
	if s.WideMem != 2 { // ld 128 and ldb with nonzero offset
		t.Errorf("wide mem %d, want 2", s.WideMem)
	}
	if s.WideMVI != 1 || s.FarCalls != 1 {
		t.Errorf("mvi/farcall %d/%d, want 1/1", s.WideMVI, s.FarCalls)
	}
}
