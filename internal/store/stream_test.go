package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// encodeQueryResult renders the result the way the CLI and service
// historically did: one json.Encoder with two-space indentation. The
// streaming writer must reproduce these bytes exactly.
func encodeQueryResult(t *testing.T, res *QueryResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestScanStreamsBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "points.mcst")
	pts := testPoints()
	if err := AppendFile(path, pts[:10]); err != nil {
		t.Fatal(err)
	}
	if err := AppendFile(path, pts[10:]); err != nil {
		t.Fatal(err)
	}
	var blocks int
	var got []Point
	if err := ScanFile(path, func(b []Point) error {
		blocks++
		got = append(got, b...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if blocks != 2 {
		t.Fatalf("scanned %d blocks, want 2", blocks)
	}
	want, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan yielded %d points, Read %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: scan %+v, Read %+v", i, got[i], want[i])
		}
	}

	// A callback error stops the scan and surfaces verbatim.
	sentinel := errors.New("stop")
	err = ScanFile(path, func([]Point) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("callback error surfaced as %v, want %v", err, sentinel)
	}
}

// TestQueryFileMatchesQuery: the streaming query must be byte-identical
// to materializing the file and querying in memory — including
// last-write-wins dedupe across blocks, metric ordering and top-N.
func TestQueryFileMatchesQuery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "points.mcst")
	pts := testPoints()
	if err := AppendFile(path, pts); err != nil {
		t.Fatal(err)
	}
	// A later block rewrites one key (append-only update semantics).
	dup := mkPoint("queens", "D16/16/2", 4, 0, 31337)
	if err := AppendFile(path, []Point{dup}); err != nil {
		t.Fatal(err)
	}
	all, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bench := NewFilter()
	bench.Bench = "queens"
	bench.WaitStates = 2
	top := NewFilter()
	top.By, top.Top = "cycles", 3
	none := NewFilter()
	none.Bench = "nomatch"
	for _, f := range []Filter{NewFilter(), bench, top, none} {
		mem, err := Query(all, f)
		if err != nil {
			t.Fatal(err)
		}
		file, err := QueryFile(path, f)
		if err != nil {
			t.Fatal(err)
		}
		a, b := encodeQueryResult(t, mem), encodeQueryResult(t, file)
		if !bytes.Equal(a, b) {
			t.Fatalf("filter %q: QueryFile differs from Query:\n%s\nvs\n%s", f.String(), b, a)
		}
	}

	// The duplicate key resolved to the last write.
	one := NewFilter()
	one.Bench, one.WaitStates, one.BusBytes = "queens", 0, 4
	one.Config = "D16/16/2"
	res, err := QueryFile(path, one)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Cycles != 31337 {
		t.Fatalf("duplicate key not last-write-wins: %+v", res.Points)
	}

	if _, err := QueryFile(path, Filter{By: "bogus"}); err == nil {
		t.Fatal("unknown sort metric accepted")
	}
	if _, err := QueryFile(filepath.Join(t.TempDir(), "absent.mcst"), NewFilter()); err == nil {
		t.Fatal("missing file queried without error")
	}
}

// TestWriteQueryJSONMatchesEncoder is the byte-parity contract of the
// streaming writer, including the empty-match and nil-points shapes and
// JSON string escaping in names.
func TestWriteQueryJSONMatchesEncoder(t *testing.T) {
	pts := testPoints()
	pts = append(pts, mkPoint("a<b&c", "D16/16/2", 4, 0, 100))

	weird := NewFilter()
	weird.Bench = "a<b&c"
	empty := NewFilter()
	empty.Bench = "nomatch"
	top := NewFilter()
	top.By, top.Top = "cpi", 5
	var results []*QueryResult
	for _, f := range []Filter{NewFilter(), weird, empty, top} {
		res, err := Query(pts, f)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	results = append(results, &QueryResult{Filter: "x"}) // nil Points

	for i, res := range results {
		var buf bytes.Buffer
		if err := WriteQueryJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		want := encodeQueryResult(t, res)
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("result %d: streaming writer differs from encoder:\n%q\nvs\n%q",
				i, buf.String(), want)
		}
	}
}

// TestParseFilterErrorPaths: every malformed input names the offending
// key and constraint (satellite: grammar validation).
func TestParseFilterErrorPaths(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring of the error
	}{
		{"bench", "key=value"},
		{"top=", "key=value"},
		{"waits=-1", "non-negative integer"},
		{"waits=x", "non-negative integer"},
		{"bus=4.5", "non-negative integer"},
		{"cachekb=lots", "non-negative integer"},
		{"top=0", "positive integer"},
		{"top=-3", "non-negative integer"},
		{"top=ten", "non-negative integer"},
		{"by=bogus", "valid metrics"},
		{"nope=1", `unknown filter key "nope"`},
		{"bench=queens nope=1", `unknown filter key "nope"`},
	}
	for _, c := range cases {
		_, err := ParseFilter(c.in)
		if err == nil {
			t.Errorf("ParseFilter(%q) accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseFilter(%q) error %q does not mention %q", c.in, err, c.want)
		}
	}
	// top=1 is the smallest valid value.
	f, err := ParseFilter("top=1")
	if err != nil || f.Top != 1 {
		t.Errorf("ParseFilter(top=1) = %+v, %v", f, err)
	}
}
