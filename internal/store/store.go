// Package store is the lab's columnar measurement store: a compact,
// append-only, deterministic file format for measurement points, with a
// query layer (filter / top-N) and an A/B diff that pinpoints regressed
// points and the cycle buckets that moved.
//
// A Point is one cell of the paper's trade-off surface:
//
//	bench × config × bus × wait states × cache → cycles, per-cause
//	cycle buckets, instruction/data traffic, code size and density
//
// JSON-blob-per-experiment stops scaling once sweeps produce 10⁵–10⁶
// points per run; the columnar form stores the same surface in a few
// bytes per point and reads back without parsing overhead.
//
// The file format (extension .mcst, spec in docs/STORE.md) is a magic
// header followed by self-contained blocks. Each block carries its own
// string dictionary and one length-prefixed unsigned-varint column per
// field, so appending a new batch of points never rewrites existing
// bytes and a scan can skip columns it does not need. Writers sort
// points canonically and build dictionaries in first-appearance order,
// so the same point set always serializes to the same bytes — the
// property the determinism gate checks (write fig4 twice, cmp).
//
// Everything in this package is stdlib-only and deterministic: no maps
// are ranged, no wall-clock is read (it is covered by detlint).
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// NumBuckets is the number of per-cause cycle buckets a point carries.
// BucketNames mirrors internal/pipeline's bucket identifiers one for
// one (a test in internal/core pins the correspondence); store keeps
// its own copy so the file format does not depend on the simulator.
const NumBuckets = 8

// Bucket indices into Point.Buckets, in column order.
const (
	BUseful = iota
	BLoadDelay
	BFPU
	BIFetchWait
	BDMemWait
	BPortContention
	BCacheMiss
	BDrain
)

// BucketNames are the stable per-cause bucket identifiers, indexed by
// the B* constants.
var BucketNames = [NumBuckets]string{
	"useful", "load_delay", "fpu", "ifetch_wait", "dmem_wait",
	"port_contention", "cache_miss", "drain",
}

// Point is one measurement point. All numeric fields are non-negative;
// Buckets must sum to Cycles exactly (Validate enforces both, so a
// leaky attribution can never be persisted).
type Point struct {
	Bench      string `json:"bench"`
	Config     string `json:"config"`
	BusBytes   int64  `json:"bus_bytes"`
	WaitStates int64  `json:"wait_states"`
	CacheKB    int64  `json:"cache_kb"`

	Cycles  int64             `json:"cycles"`
	Buckets [NumBuckets]int64 `json:"buckets"` // indexed by B*, named by BucketNames

	Instrs      int64 `json:"instrs"`
	IFetchBytes int64 `json:"ifetch_bytes"`
	DMemBytes   int64 `json:"dmem_bytes"`

	SizeBytes    int64 `json:"size_bytes"`
	TextBytes    int64 `json:"text_bytes"`
	StaticInstrs int64 `json:"static_instrs"`
}

// Key is the point's identity within a surface: everything but the
// measured values.
func (p *Point) Key() string {
	return fmt.Sprintf("%s|%s|%d|%d|%d", p.Bench, p.Config, p.BusBytes, p.WaitStates, p.CacheKB)
}

// CPI returns cycles per instruction (0 when Instrs is 0).
func (p *Point) CPI() float64 {
	if p.Instrs == 0 {
		return 0
	}
	return float64(p.Cycles) / float64(p.Instrs)
}

// Validate checks the persistence invariants: non-negative fields and
// the exact bucket attribution (sum of Buckets == Cycles).
func (p *Point) Validate() error {
	if p.Bench == "" || p.Config == "" {
		return fmt.Errorf("store: point %s: empty bench or config", p.Key())
	}
	var sum int64
	for _, v := range p.Buckets {
		if v < 0 {
			return fmt.Errorf("store: point %s: negative bucket value %d", p.Key(), v)
		}
		sum += v
	}
	if sum != p.Cycles {
		return fmt.Errorf("store: point %s: buckets sum %d != cycles %d", p.Key(), sum, p.Cycles)
	}
	for _, v := range []int64{p.BusBytes, p.WaitStates, p.CacheKB, p.Cycles,
		p.Instrs, p.IFetchBytes, p.DMemBytes, p.SizeBytes, p.TextBytes, p.StaticInstrs} {
		if v < 0 {
			return fmt.Errorf("store: point %s: negative field value %d", p.Key(), v)
		}
	}
	return nil
}

// less orders points canonically: bench, config, bus, waits, cache.
func less(a, b *Point) bool {
	if a.Bench != b.Bench {
		return a.Bench < b.Bench
	}
	if a.Config != b.Config {
		return a.Config < b.Config
	}
	if a.BusBytes != b.BusBytes {
		return a.BusBytes < b.BusBytes
	}
	if a.WaitStates != b.WaitStates {
		return a.WaitStates < b.WaitStates
	}
	return a.CacheKB < b.CacheKB
}

// Canon returns the canonical view of a point list: deduplicated by key
// (the last write wins, matching append-only update semantics) and
// sorted in canonical order. The input is not modified.
func Canon(pts []Point) []Point {
	idx := map[string]int{}
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		k := p.Key()
		if i, ok := idx[k]; ok {
			out[i] = p
			continue
		}
		idx[k] = len(out)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return less(&out[i], &out[j]) })
	return out
}

// --- file format ------------------------------------------------------------

// Magic opens every store file; the trailing digit is the format
// version.
const Magic = "MCST1\n"

// blockTag opens every block.
const blockTag = "BLK"

// numCols is the fixed column count of format version 1, in order:
// bench, config, bus_bytes, wait_states, cache_kb, cycles, the eight
// buckets, instrs, ifetch_bytes, dmem_bytes, size_bytes, text_bytes,
// static_instrs.
const numCols = 6 + NumBuckets + 6

// cols extracts every column value of one point in column order; the
// first two are dictionary indices resolved by the caller.
func (p *Point) cols(benchIdx, configIdx uint64) [numCols]uint64 {
	var c [numCols]uint64
	c[0], c[1] = benchIdx, configIdx
	c[2], c[3], c[4] = uint64(p.BusBytes), uint64(p.WaitStates), uint64(p.CacheKB)
	c[5] = uint64(p.Cycles)
	for b := 0; b < NumBuckets; b++ {
		c[6+b] = uint64(p.Buckets[b])
	}
	c[6+NumBuckets+0] = uint64(p.Instrs)
	c[6+NumBuckets+1] = uint64(p.IFetchBytes)
	c[6+NumBuckets+2] = uint64(p.DMemBytes)
	c[6+NumBuckets+3] = uint64(p.SizeBytes)
	c[6+NumBuckets+4] = uint64(p.TextBytes)
	c[6+NumBuckets+5] = uint64(p.StaticInstrs)
	return c
}

// setCols is the inverse of cols; strings are resolved from the block
// dictionary by the caller.
func (p *Point) setCols(c [numCols]uint64) {
	p.BusBytes, p.WaitStates, p.CacheKB = int64(c[2]), int64(c[3]), int64(c[4])
	p.Cycles = int64(c[5])
	for b := 0; b < NumBuckets; b++ {
		p.Buckets[b] = int64(c[6+b])
	}
	p.Instrs = int64(c[6+NumBuckets+0])
	p.IFetchBytes = int64(c[6+NumBuckets+1])
	p.DMemBytes = int64(c[6+NumBuckets+2])
	p.SizeBytes = int64(c[6+NumBuckets+3])
	p.TextBytes = int64(c[6+NumBuckets+4])
	p.StaticInstrs = int64(c[6+NumBuckets+5])
}

// writeBlock appends one self-contained block for pts (already sorted
// canonically) to w.
func writeBlock(w io.Writer, pts []Point) error {
	// Dictionary in first-appearance order over the sorted points, so
	// equal point sets produce equal dictionaries.
	dictIdx := map[string]uint64{}
	var dict []string
	intern := func(s string) uint64 {
		if i, ok := dictIdx[s]; ok {
			return i
		}
		i := uint64(len(dict))
		dictIdx[s] = i
		dict = append(dict, s)
		return i
	}

	cols := make([][]uint64, numCols)
	for i := range pts {
		c := pts[i].cols(intern(pts[i].Bench), intern(pts[i].Config))
		for j := 0; j < numCols; j++ {
			cols[j] = append(cols[j], c[j])
		}
	}

	var buf bytes.Buffer
	buf.WriteString(blockTag)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(b *bytes.Buffer, v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		b.Write(tmp[:n])
	}
	putUvarint(&buf, uint64(len(pts)))
	putUvarint(&buf, uint64(len(dict)))
	for _, s := range dict {
		putUvarint(&buf, uint64(len(s)))
		buf.WriteString(s)
	}
	putUvarint(&buf, uint64(numCols))
	var col bytes.Buffer
	for j := 0; j < numCols; j++ {
		col.Reset()
		for _, v := range cols[j] {
			putUvarint(&col, v)
		}
		putUvarint(&buf, uint64(col.Len()))
		buf.Write(col.Bytes())
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Write serializes pts as a complete store file (magic + one block).
// Points are validated, then sorted canonically on a copy, so the same
// point set always produces the same bytes.
func Write(w io.Writer, pts []Point) error {
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return less(&sorted[i], &sorted[j]) })
	for i := range sorted {
		if err := sorted[i].Validate(); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	return writeBlock(w, sorted)
}

// WriteFile writes pts as a complete store file at path, creating
// parent directories as needed; an existing file is replaced.
func WriteFile(path string, pts []Point) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, pts); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// AppendFile appends pts to the store at path as one new block, never
// rewriting existing bytes; a missing file is created with the magic
// header first. Appending an empty point list is a no-op.
func AppendFile(path string, pts []Point) error {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return less(&sorted[i], &sorted[j]) })
	for i := range sorted {
		if err := sorted[i].Validate(); err != nil {
			return err
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		if _, err := io.WriteString(f, Magic); err != nil {
			return err
		}
	}
	if err := writeBlock(f, sorted); err != nil {
		return err
	}
	return f.Close()
}

// Read parses a store file and returns every point of every block in
// file order (duplicate keys possible across blocks; Canon resolves
// them last-write-wins). It is Scan with full materialization; prefer
// Scan or QueryFile when the surface may be large.
func Read(r io.Reader) ([]Point, error) {
	var pts []Point
	if err := Scan(r, func(block []Point) error {
		pts = append(pts, block...)
		return nil
	}); err != nil {
		return nil, err
	}
	return pts, nil
}

// ReadFile reads every point in the store at path.
func ReadFile(path string) ([]Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pts, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}
