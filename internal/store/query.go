package store

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Filter selects and orders points. The zero Filter matches everything
// in canonical order. Numeric fields use -1 as the "any" wildcard so 0
// (a valid wait-state and cache size) stays selectable; NewFilter
// returns a filter with every numeric field wild.
type Filter struct {
	Bench      string `json:"bench,omitempty"`
	Config     string `json:"config,omitempty"`
	BusBytes   int64  `json:"bus_bytes,omitempty"`
	WaitStates int64  `json:"wait_states,omitempty"`
	CacheKB    int64  `json:"cache_kb,omitempty"`

	// By orders matches descending by one metric: cycles, cpi, instrs,
	// size, ifetch, dmem (empty = canonical order).
	By string `json:"by,omitempty"`
	// Top keeps only the first N ordered matches (0 = all).
	Top int `json:"top,omitempty"`
}

// NewFilter returns a match-everything filter (numeric fields wild).
func NewFilter() Filter {
	return Filter{BusBytes: -1, WaitStates: -1, CacheKB: -1}
}

// sortMetrics maps each By identifier to its value extractor.
var sortMetrics = []struct {
	name string
	val  func(*Point) float64
}{
	{"cycles", func(p *Point) float64 { return float64(p.Cycles) }},
	{"cpi", (*Point).CPI},
	{"instrs", func(p *Point) float64 { return float64(p.Instrs) }},
	{"size", func(p *Point) float64 { return float64(p.SizeBytes) }},
	{"ifetch", func(p *Point) float64 { return float64(p.IFetchBytes) }},
	{"dmem", func(p *Point) float64 { return float64(p.DMemBytes) }},
}

// SortMetrics returns the valid Filter.By identifiers.
func SortMetrics() []string {
	out := make([]string, len(sortMetrics))
	for i, m := range sortMetrics {
		out[i] = m.name
	}
	return out
}

func metricByName(name string) func(*Point) float64 {
	for _, m := range sortMetrics {
		if m.name == name {
			return m.val
		}
	}
	return nil
}

// Match reports whether p passes the filter's selection fields.
// String fields match case-insensitively; empty string and -1 are
// wildcards.
func (f *Filter) Match(p *Point) bool {
	if f.Bench != "" && !strings.EqualFold(f.Bench, p.Bench) {
		return false
	}
	if f.Config != "" && !strings.EqualFold(f.Config, p.Config) {
		return false
	}
	if f.BusBytes >= 0 && f.BusBytes != 0 && f.BusBytes != p.BusBytes {
		return false
	}
	if f.WaitStates >= 0 && f.WaitStates != p.WaitStates {
		return false
	}
	if f.CacheKB >= 0 && f.CacheKB != p.CacheKB {
		return false
	}
	return true
}

// String renders the filter in the canonical query grammar (the form
// ParseFilter accepts), with wildcard fields omitted. Both repro -query
// and simd /v1/query echo this string, so equal filters always render
// equally.
func (f *Filter) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if f.Bench != "" {
		add("bench", f.Bench)
	}
	if f.Config != "" {
		add("config", f.Config)
	}
	if f.BusBytes > 0 {
		add("bus", strconv.FormatInt(f.BusBytes, 10))
	}
	if f.WaitStates >= 0 {
		add("waits", strconv.FormatInt(f.WaitStates, 10))
	}
	if f.CacheKB >= 0 {
		add("cachekb", strconv.FormatInt(f.CacheKB, 10))
	}
	if f.By != "" {
		add("by", f.By)
	}
	if f.Top > 0 {
		add("top", strconv.Itoa(f.Top))
	}
	return strings.Join(parts, " ")
}

// ParseFilter parses the query grammar: whitespace- or comma-separated
// key=value terms. Keys: bench, config (alias isa), bus, waits,
// cachekb, by, top. Example:
//
//	bench=queens config=D16/16/2 bus=4 waits=2 by=cycles top=10
func ParseFilter(s string) (Filter, error) {
	f := NewFilter()
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == ','
	})
	for _, term := range fields {
		k, v, ok := strings.Cut(term, "=")
		if !ok || v == "" {
			return f, fmt.Errorf("store: bad filter term %q (want key=value)", term)
		}
		num := func() (int64, error) {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("store: filter %s=%q: want a non-negative integer", k, v)
			}
			return n, nil
		}
		var err error
		switch strings.ToLower(k) {
		case "bench":
			f.Bench = v
		case "config", "isa":
			f.Config = v
		case "bus":
			f.BusBytes, err = num()
		case "waits":
			f.WaitStates, err = num()
		case "cachekb":
			f.CacheKB, err = num()
		case "by":
			if metricByName(v) == nil {
				return f, fmt.Errorf("store: filter by=%q: valid metrics: %s",
					v, strings.Join(SortMetrics(), ", "))
			}
			f.By = v
		case "top":
			var n int64
			if n, err = num(); err == nil {
				if n == 0 {
					return f, fmt.Errorf("store: filter top=%q: top must be a positive integer", v)
				}
				f.Top = int(n)
			}
		default:
			return f, fmt.Errorf("store: unknown filter key %q (valid: bench, config, bus, waits, cachekb, by, top)", k)
		}
		if err != nil {
			return f, err
		}
	}
	return f, nil
}

// QueryResult is the shared result document of repro -query and simd
// GET /v1/query: both marshal it with two-space indentation, so the CLI
// and the service return byte-identical answers for the same store and
// filter.
type QueryResult struct {
	Filter  string  `json:"filter"`
	Total   int     `json:"total"`
	Matched int     `json:"matched"`
	Points  []Point `json:"points"`
}

// Query canonicalizes pts (dedupe + sort), applies the filter, orders
// by the By metric (descending, canonical key as the tie-break) and
// truncates to Top.
func Query(pts []Point, f Filter) (*QueryResult, error) {
	if f.By != "" && metricByName(f.By) == nil {
		return nil, fmt.Errorf("store: unknown sort metric %q (valid: %s)",
			f.By, strings.Join(SortMetrics(), ", "))
	}
	canon := Canon(pts)
	matched := make([]Point, 0, len(canon))
	for i := range canon {
		if f.Match(&canon[i]) {
			matched = append(matched, canon[i])
		}
	}
	res := &QueryResult{Filter: f.String(), Total: len(canon), Matched: len(matched)}
	if f.By != "" {
		metric := metricByName(f.By)
		sort.SliceStable(matched, func(i, j int) bool {
			vi, vj := metric(&matched[i]), metric(&matched[j])
			if vi != vj {
				return vi > vj
			}
			return less(&matched[i], &matched[j])
		})
	}
	if f.Top > 0 && len(matched) > f.Top {
		matched = matched[:f.Top]
	}
	res.Points = matched
	return res, nil
}
