package store

import (
	"fmt"
	"sort"
)

// DiffOptions shapes an A/B surface comparison.
type DiffOptions struct {
	// Top caps the per-point delta list (0 = 20, the report default).
	Top int `json:"top,omitempty"`
	// Threshold is the relative cycle change that counts a point as
	// regressed or improved (0 = 0.10, i.e. 10%).
	Threshold float64 `json:"threshold,omitempty"`
}

// PointKey identifies one point across two surfaces.
type PointKey struct {
	Bench      string `json:"bench"`
	Config     string `json:"config"`
	BusBytes   int64  `json:"bus_bytes"`
	WaitStates int64  `json:"wait_states"`
	CacheKB    int64  `json:"cache_kb"`
}

func keyOf(p *Point) PointKey {
	return PointKey{p.Bench, p.Config, p.BusBytes, p.WaitStates, p.CacheKB}
}

// String renders the key in the query grammar, so a mover can be pasted
// straight back into repro -query or /v1/query.
func (k PointKey) String() string {
	return fmt.Sprintf("bench=%s config=%s bus=%d waits=%d cachekb=%d",
		k.Bench, k.Config, k.BusBytes, k.WaitStates, k.CacheKB)
}

// PointDelta is one matched point's A→B movement.
type PointDelta struct {
	PointKey
	CyclesA int64 `json:"cycles_a"`
	CyclesB int64 `json:"cycles_b"`
	// Delta is CyclesB - CyclesA; Rel is Delta / CyclesA (0 when
	// CyclesA is 0). Positive = B is slower (a regression).
	Delta int64   `json:"delta"`
	Rel   float64 `json:"rel"`
	// BucketDelta is the per-cause movement, indexed like
	// Point.Buckets; WorstBucket names the bucket that grew the most
	// (empty when no bucket grew).
	BucketDelta [NumBuckets]int64 `json:"bucket_delta"`
	WorstBucket string            `json:"worst_bucket,omitempty"`
}

// BucketMover is, for one cycle bucket, the matched point where that
// bucket grew the most from A to B.
type BucketMover struct {
	Bucket string `json:"bucket"`
	PointKey
	Delta int64 `json:"delta"`
	// Rel is the bucket's growth relative to the point's A-side cycles
	// (how much of the slowdown this cause explains).
	Rel float64 `json:"rel"`
}

// DiffReport is the result of comparing two surfaces point by point.
type DiffReport struct {
	PointsA int `json:"points_a"`
	PointsB int `json:"points_b"`
	Matched int `json:"matched"`
	// OnlyA/OnlyB list keys present on one side only (canonical order).
	OnlyA []PointKey `json:"only_a,omitempty"`
	OnlyB []PointKey `json:"only_b,omitempty"`
	// Regressed/Improved count matched points whose relative cycle
	// change exceeds the threshold in either direction.
	Threshold float64 `json:"threshold"`
	Regressed int     `json:"regressed"`
	Improved  int     `json:"improved"`
	// MaxRel is the worst relative regression seen (0 when none grew).
	MaxRel float64 `json:"max_rel"`
	// Deltas holds the biggest absolute-relative movers first
	// (regressions before equal-magnitude improvements), capped at Top.
	Deltas []PointDelta `json:"deltas"`
	// WorstByBucket has one entry per bucket that grew anywhere,
	// ordered by the bucket index, so "which cause got slower" is a
	// direct lookup.
	WorstByBucket []BucketMover `json:"worst_by_bucket,omitempty"`
}

// Diff compares surface b against baseline a, matching points by key
// after canonicalizing both sides. It reports per-point cycle and
// bucket deltas, the worst mover per bucket, and regression/improvement
// counts against the threshold.
func Diff(a, b []Point, opt DiffOptions) *DiffReport {
	if opt.Top <= 0 {
		opt.Top = 20
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 0.10
	}
	ca, cb := Canon(a), Canon(b)
	rep := &DiffReport{PointsA: len(ca), PointsB: len(cb), Threshold: opt.Threshold}

	bIdx := map[string]int{}
	for i := range cb {
		bIdx[cb[i].Key()] = i
	}
	seenB := make([]bool, len(cb))

	var movers [NumBuckets]*BucketMover
	for i := range ca {
		pa := &ca[i]
		j, ok := bIdx[pa.Key()]
		if !ok {
			rep.OnlyA = append(rep.OnlyA, keyOf(pa))
			continue
		}
		seenB[j] = true
		pb := &cb[j]
		rep.Matched++

		d := PointDelta{
			PointKey: keyOf(pa),
			CyclesA:  pa.Cycles,
			CyclesB:  pb.Cycles,
			Delta:    pb.Cycles - pa.Cycles,
		}
		if pa.Cycles != 0 {
			d.Rel = float64(d.Delta) / float64(pa.Cycles)
		}
		var worst int64
		for bk := 0; bk < NumBuckets; bk++ {
			bd := pb.Buckets[bk] - pa.Buckets[bk]
			d.BucketDelta[bk] = bd
			if bd > worst {
				worst = bd
				d.WorstBucket = BucketNames[bk]
			}
			if bd > 0 && (movers[bk] == nil || bd > movers[bk].Delta) {
				m := &BucketMover{Bucket: BucketNames[bk], PointKey: d.PointKey, Delta: bd}
				if pa.Cycles != 0 {
					m.Rel = float64(bd) / float64(pa.Cycles)
				}
				movers[bk] = m
			}
		}
		switch {
		case d.Rel > opt.Threshold:
			rep.Regressed++
		case d.Rel < -opt.Threshold:
			rep.Improved++
		}
		if d.Rel > rep.MaxRel {
			rep.MaxRel = d.Rel
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for j := range cb {
		if !seenB[j] {
			rep.OnlyB = append(rep.OnlyB, keyOf(&cb[j]))
		}
	}

	// Biggest movers first: by |Rel| descending, regressions before
	// equal-magnitude improvements, canonical key as the tie-break.
	sort.SliceStable(rep.Deltas, func(i, j int) bool {
		ai, aj := abs(rep.Deltas[i].Rel), abs(rep.Deltas[j].Rel)
		if ai != aj {
			return ai > aj
		}
		if rep.Deltas[i].Rel != rep.Deltas[j].Rel {
			return rep.Deltas[i].Rel > rep.Deltas[j].Rel
		}
		return rep.Deltas[i].PointKey.String() < rep.Deltas[j].PointKey.String()
	})
	if len(rep.Deltas) > opt.Top {
		rep.Deltas = rep.Deltas[:opt.Top]
	}
	for bk := 0; bk < NumBuckets; bk++ {
		if movers[bk] != nil {
			rep.WorstByBucket = append(rep.WorstByBucket, *movers[bk])
		}
	}
	return rep
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
