package store

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// mkPoint builds a valid point whose buckets sum to cycles exactly.
func mkPoint(bench, config string, bus, waits, cycles int64) Point {
	p := Point{
		Bench: bench, Config: config,
		BusBytes: bus, WaitStates: waits,
		Cycles:      cycles,
		Instrs:      cycles / 2,
		IFetchBytes: 4 * cycles,
		DMemBytes:   cycles,
		SizeBytes:   1000, TextBytes: 800, StaticInstrs: 200,
	}
	p.Buckets[BUseful] = cycles / 2
	p.Buckets[BLoadDelay] = cycles / 4
	p.Buckets[BIFetchWait] = cycles - cycles/2 - cycles/4
	return p
}

func testPoints() []Point {
	var pts []Point
	for _, b := range []string{"queens", "sieve", "tower"} {
		for _, c := range []string{"D16/16/2", "DLXe/32/3"} {
			for _, bus := range []int64{4, 8} {
				for w := int64(0); w <= 3; w++ {
					pts = append(pts, mkPoint(b, c, bus, w, 1000+bus*10+w*100+int64(len(b))))
				}
			}
		}
	}
	return pts
}

func TestRoundTrip(t *testing.T) {
	pts := testPoints()
	var buf bytes.Buffer
	if err := Write(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Canon(pts)
	if len(got) != len(want) {
		t.Fatalf("read %d points, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWriteDeterministic is the byte-identity guarantee: the same point
// set, in any input order, always serializes to the same bytes.
func TestWriteDeterministic(t *testing.T) {
	pts := testPoints()
	var a, b bytes.Buffer
	if err := Write(&a, pts); err != nil {
		t.Fatal(err)
	}
	rev := make([]Point, len(pts))
	for i := range pts {
		rev[len(pts)-1-i] = pts[i]
	}
	if err := Write(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same point set in different input order produced different bytes")
	}
}

func TestAppendFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "points.mcst")
	first := testPoints()[:8]
	if err := AppendFile(path, first); err != nil {
		t.Fatal(err)
	}
	// Appending must not rewrite existing bytes.
	before, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	updated := mkPoint("queens", "D16/16/2", 4, 0, 9999)
	second := []Point{updated, mkPoint("extra", "D16/16/2", 4, 0, 50)}
	if err := AppendFile(path, second); err != nil {
		t.Fatal(err)
	}
	after, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+2 {
		t.Fatalf("after append: %d points, want %d", len(after), len(before)+2)
	}
	// Canon resolves the duplicate key last-write-wins.
	canon := Canon(after)
	var found bool
	for i := range canon {
		if canon[i].Key() == updated.Key() {
			found = true
			if canon[i].Cycles != 9999 {
				t.Fatalf("duplicate key resolved to cycles %d, want the appended 9999", canon[i].Cycles)
			}
		}
	}
	if !found {
		t.Fatal("appended point missing after Canon")
	}
	if err := AppendFile(path, nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
}

func TestValidateRejectsLeakyBuckets(t *testing.T) {
	p := mkPoint("queens", "D16/16/2", 4, 0, 100)
	p.Buckets[BFPU]++ // leak: sum != cycles
	var buf bytes.Buffer
	if err := Write(&buf, []Point{p}); err == nil {
		t.Fatal("leaky bucket attribution persisted without error")
	}
	p = mkPoint("queens", "D16/16/2", 4, 0, 100)
	p.Instrs = -1
	if err := Write(&buf, []Point{p}); err == nil {
		t.Fatal("negative field persisted without error")
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	for name, data := range map[string]string{
		"empty":     "",
		"bad magic": "NOPE1\nxxxx",
		"truncated": Magic + "BLK",
		"bad tag":   Magic + "XYZ",
	} {
		if _, err := Read(strings.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt input read without error", name)
		}
	}
	// A valid file truncated mid-block must error, not silently drop points.
	var buf bytes.Buffer
	if err := Write(&buf, testPoints()); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Error("truncated block read without error")
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("bench=queens config=D16/16/2 bus=4 waits=2 by=cycles top=5")
	if err != nil {
		t.Fatal(err)
	}
	if f.Bench != "queens" || f.Config != "D16/16/2" || f.BusBytes != 4 ||
		f.WaitStates != 2 || f.By != "cycles" || f.Top != 5 {
		t.Fatalf("parsed filter: %+v", f)
	}
	// isa is an alias for config; commas separate too.
	f, err = ParseFilter("isa=dlxe,waits=0")
	if err != nil {
		t.Fatal(err)
	}
	if f.Config != "dlxe" || f.WaitStates != 0 || f.BusBytes != -1 {
		t.Fatalf("parsed filter: %+v", f)
	}
	// Round trip through the canonical rendering.
	f2, err := ParseFilter(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f {
		t.Fatalf("String round trip: %+v != %+v", f2, f)
	}
	for _, bad := range []string{"bench", "waits=-1", "waits=x", "nope=1", "by=bogus"} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) accepted", bad)
		}
	}
}

func TestQuery(t *testing.T) {
	pts := testPoints()
	f := NewFilter()
	f.Bench = "queens"
	f.WaitStates = 2
	res, err := Query(pts, f)
	if err != nil {
		t.Fatal(err)
	}
	// queens × 2 configs × 2 buses at waits=2.
	if res.Matched != 4 || len(res.Points) != 4 {
		t.Fatalf("matched %d points, want 4: %+v", res.Matched, res.Points)
	}
	if res.Total != len(Canon(pts)) {
		t.Fatalf("total %d, want %d", res.Total, len(Canon(pts)))
	}
	for i := range res.Points {
		if res.Points[i].Bench != "queens" || res.Points[i].WaitStates != 2 {
			t.Fatalf("filter leak: %+v", res.Points[i])
		}
	}

	// Top-N by cycles: descending, truncated.
	f = NewFilter()
	f.By, f.Top = "cycles", 3
	res, err = Query(pts, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("top 3 returned %d points", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Cycles > res.Points[i-1].Cycles {
			t.Fatalf("by=cycles not descending: %d after %d",
				res.Points[i].Cycles, res.Points[i-1].Cycles)
		}
	}

	if _, err := Query(pts, Filter{By: "bogus"}); err == nil {
		t.Fatal("unknown sort metric accepted")
	}
}

// TestDiffPinpointsRegression is the acceptance scenario: inject a +15%
// cycle regression into one bench's ifetch_wait bucket and check the
// diff names that point and that bucket as the worst movers.
func TestDiffPinpointsRegression(t *testing.T) {
	a := testPoints()
	b := make([]Point, len(a))
	copy(b, a)
	var injectedKey string
	for i := range b {
		if b[i].Bench == "sieve" && b[i].Config == "D16/16/2" && b[i].BusBytes == 4 && b[i].WaitStates == 2 {
			extra := b[i].Cycles * 15 / 100
			b[i].Cycles += extra
			b[i].Buckets[BIFetchWait] += extra
			injectedKey = b[i].Key()
		}
	}
	if injectedKey == "" {
		t.Fatal("test bug: injection point not found")
	}
	rep := Diff(a, b, DiffOptions{})
	if rep.Matched != len(Canon(a)) {
		t.Fatalf("matched %d, want %d", rep.Matched, len(Canon(a)))
	}
	if rep.Regressed != 1 {
		t.Fatalf("regressed %d points, want exactly the injected one", rep.Regressed)
	}
	worst := rep.Deltas[0]
	if worst.Bench != "sieve" || worst.Config != "D16/16/2" || worst.BusBytes != 4 || worst.WaitStates != 2 {
		t.Fatalf("worst mover is %+v, want the injected sieve point", worst.PointKey)
	}
	if worst.WorstBucket != "ifetch_wait" {
		t.Fatalf("worst bucket %q, want ifetch_wait", worst.WorstBucket)
	}
	if worst.Rel < 0.14 || worst.Rel > 0.16 {
		t.Fatalf("relative delta %.3f, want ~0.15", worst.Rel)
	}
	var foundMover bool
	for _, m := range rep.WorstByBucket {
		if m.Bucket == "ifetch_wait" {
			foundMover = true
			if m.Bench != "sieve" {
				t.Fatalf("ifetch_wait mover is %s, want sieve", m.Bench)
			}
		}
	}
	if !foundMover {
		t.Fatal("no ifetch_wait entry in WorstByBucket")
	}
	if rep.MaxRel != worst.Rel {
		t.Fatalf("MaxRel %.3f != worst delta %.3f", rep.MaxRel, worst.Rel)
	}
}

func TestDiffOnlySides(t *testing.T) {
	a := testPoints()
	b := make([]Point, len(a))
	copy(b, a)
	b = b[1:] // drop one point from B
	extra := mkPoint("newbench", "D16/16/2", 4, 0, 10)
	b = append(b, extra)
	rep := Diff(a, b, DiffOptions{Top: 5})
	if len(rep.OnlyA) != 1 || len(rep.OnlyB) != 1 {
		t.Fatalf("only_a %d, only_b %d, want 1 and 1", len(rep.OnlyA), len(rep.OnlyB))
	}
	if rep.OnlyB[0].Bench != "newbench" {
		t.Fatalf("only_b names %s, want newbench", rep.OnlyB[0].Bench)
	}
	if len(rep.Deltas) > 5 {
		t.Fatalf("deltas not capped at Top: %d", len(rep.Deltas))
	}
}

func BenchmarkWriteRead(b *testing.B) {
	pts := testPoints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, pts); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
