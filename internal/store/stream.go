package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// maxBlockDim bounds per-block allocation while scanning untrusted
// input; no plausible block has this many points, strings or bytes in
// one column.
const maxBlockDim = 1 << 26

// Scan streams a store file block by block, calling fn with each
// block's points in file order. Unlike Read it never materializes the
// whole point set: memory is bounded by the largest single block, which
// is what lets 10⁶-point surfaces stream through queries. fn returning
// an error stops the scan and returns that error.
func Scan(r io.Reader, fn func([]Point) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != Magic {
		return fmt.Errorf("store: not a measurement store (missing %q header)", Magic[:len(Magic)-1])
	}
	tag := make([]byte, len(blockTag))
	for {
		if _, err := io.ReadFull(br, tag); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("store: truncated block tag: %w", err)
		}
		if string(tag) != blockTag {
			return fmt.Errorf("store: corrupt block header %q", tag)
		}
		pts, err := readBlockFrom(br)
		if err != nil {
			return err
		}
		if err := fn(pts); err != nil {
			return err
		}
	}
}

// ScanFile streams the store at path through fn (see Scan).
func ScanFile(path string, fn func([]Point) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Scan(f, fn); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// readBlockFrom parses one block body (the tag already consumed) from
// the buffered reader.
func readBlockFrom(br *bufio.Reader) ([]Point, error) {
	uvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("store: truncated %s varint: %w", what, err)
		}
		return v, nil
	}
	nPoints, err := uvarint("point-count")
	if err != nil {
		return nil, err
	}
	nStrings, err := uvarint("string-count")
	if err != nil {
		return nil, err
	}
	if nPoints > maxBlockDim || nStrings > maxBlockDim {
		return nil, fmt.Errorf("store: implausible block counts (%d points, %d strings)", nPoints, nStrings)
	}
	dict := make([]string, nStrings)
	for i := range dict {
		n, err := uvarint("string-length")
		if err != nil {
			return nil, err
		}
		if n > maxBlockDim {
			return nil, fmt.Errorf("store: implausible dictionary string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("store: truncated dictionary string: %w", err)
		}
		dict[i] = string(buf)
	}
	nCols, err := uvarint("column-count")
	if err != nil {
		return nil, err
	}
	if nCols != numCols {
		return nil, fmt.Errorf("store: block has %d columns, format v1 has %d", nCols, numCols)
	}
	cols := make([][]uint64, numCols)
	var colBuf []byte
	for j := 0; j < numCols; j++ {
		byteLen, err := uvarint("column-length")
		if err != nil {
			return nil, err
		}
		if byteLen > maxBlockDim {
			return nil, fmt.Errorf("store: implausible column %d length %d", j, byteLen)
		}
		if uint64(cap(colBuf)) < byteLen {
			colBuf = make([]byte, byteLen)
		}
		buf := colBuf[:byteLen]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("store: truncated column %d: %w", j, err)
		}
		col := make([]uint64, 0, nPoints)
		pos := 0
		for pos < len(buf) {
			v, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("store: corrupt varint in column %d", j)
			}
			pos += n
			col = append(col, v)
		}
		if uint64(len(col)) != nPoints {
			return nil, fmt.Errorf("store: column %d has %d values, block has %d points", j, len(col), nPoints)
		}
		cols[j] = col
	}
	pts := make([]Point, nPoints)
	for i := range pts {
		var c [numCols]uint64
		for j := 0; j < numCols; j++ {
			c[j] = cols[j][i]
		}
		if c[0] >= uint64(len(dict)) || c[1] >= uint64(len(dict)) {
			return nil, fmt.Errorf("store: point %d references string %d/%d outside dictionary of %d", i, c[0], c[1], len(dict))
		}
		pts[i].Bench, pts[i].Config = dict[c[0]], dict[c[1]]
		pts[i].setCols(c)
	}
	return pts, nil
}

// QueryFile answers a query by streaming the store at path block by
// block instead of materializing the full point set: only the matched
// points plus the key set (for the total) are held, so memory scales
// with the answer, not the surface. Duplicate keys across blocks keep
// last-write-wins semantics; the result is byte-identical to
// Query(ReadFile(path), f).
func QueryFile(path string, f Filter) (*QueryResult, error) {
	if f.By != "" && metricByName(f.By) == nil {
		return nil, fmt.Errorf("store: unknown sort metric %q (valid: %s)",
			f.By, strings.Join(SortMetrics(), ", "))
	}
	keys := map[string]struct{}{}
	matchedIdx := map[string]int{}
	matched := make([]Point, 0, 64)
	err := ScanFile(path, func(pts []Point) error {
		for i := range pts {
			p := &pts[i]
			k := p.Key()
			keys[k] = struct{}{}
			// Match depends only on key fields, so every duplicate of a
			// key matches alike; overwriting keeps the last write.
			if !f.Match(p) {
				continue
			}
			if j, ok := matchedIdx[k]; ok {
				matched[j] = *p
				continue
			}
			matchedIdx[k] = len(matched)
			matched = append(matched, *p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(matched, func(i, j int) bool { return less(&matched[i], &matched[j]) })
	res := &QueryResult{Filter: f.String(), Total: len(keys), Matched: len(matched)}
	if f.By != "" {
		metric := metricByName(f.By)
		sort.SliceStable(matched, func(i, j int) bool {
			vi, vj := metric(&matched[i]), metric(&matched[j])
			if vi != vj {
				return vi > vj
			}
			return less(&matched[i], &matched[j])
		})
	}
	if f.Top > 0 && len(matched) > f.Top {
		matched = matched[:f.Top]
	}
	res.Points = matched
	return res, nil
}

// WriteQueryJSON streams a QueryResult as indented JSON, one point at a
// time, producing byte-for-byte the document a json.Encoder with
// two-space indentation produces — the byte-parity contract between
// repro -query and simd GET /v1/query — without ever marshaling the
// whole point list at once.
func WriteQueryJSON(w io.Writer, res *QueryResult) error {
	bw := bufio.NewWriterSize(w, 32<<10)
	filt, err := json.Marshal(res.Filter)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "{\n  \"filter\": %s,\n  \"total\": %d,\n  \"matched\": %d,\n  \"points\": ", filt, res.Total, res.Matched)
	switch {
	case res.Points == nil:
		bw.WriteString("null\n}\n")
	case len(res.Points) == 0:
		bw.WriteString("[]\n}\n")
	default:
		bw.WriteString("[\n")
		for i := range res.Points {
			// Element prefix "    " + indent "  " reproduces the nesting
			// depth the whole-document encoder gives array elements.
			raw, err := json.MarshalIndent(&res.Points[i], "    ", "  ")
			if err != nil {
				return err
			}
			bw.WriteString("    ")
			bw.Write(raw)
			if i < len(res.Points)-1 {
				bw.WriteByte(',')
			}
			bw.WriteByte('\n')
		}
		bw.WriteString("  ]\n}\n")
	}
	return bw.Flush()
}
