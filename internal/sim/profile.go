package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Profile attributes executed instructions to the text symbols that
// contain them — a flat function-level profiler for compiled programs.
// Attach one to a Machine before running.
type Profile struct {
	names  []string
	starts []uint32
	counts []int64
	total  int64
}

// NewProfile builds a profiler over an image's text symbols.
func NewProfile(img *prog.Image) *Profile {
	p := &Profile{}
	type sym struct {
		name string
		addr uint32
	}
	var syms []sym
	for name, addr := range img.Symbols {
		if addr >= isa.TextBase && addr < img.TextEnd() && !strings.HasPrefix(name, ".L") {
			syms = append(syms, sym{name, addr})
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	for _, s := range syms {
		p.names = append(p.names, s.name)
		p.starts = append(p.starts, s.addr)
	}
	p.counts = make([]int64, len(p.names))
	return p
}

// Exec implements Observer.
func (p *Profile) Exec(pc uint32, _ isa.Instr) {
	p.total++
	// Binary search for the containing symbol.
	i := sort.Search(len(p.starts), func(i int) bool { return p.starts[i] > pc }) - 1
	if i >= 0 {
		p.counts[i]++
	}
}

// Load implements Observer.
func (p *Profile) Load(addr uint32, size uint32) {}

// Store implements Observer.
func (p *Profile) Store(addr uint32, size uint32) {}

// Entry is one profile row.
type Entry struct {
	Name    string
	Instrs  int64
	Percent float64
}

// Top returns the hottest n functions.
func (p *Profile) Top(n int) []Entry {
	var out []Entry
	for i, c := range p.counts {
		if c > 0 {
			out = append(out, Entry{p.names[i], c, 100 * float64(c) / float64(p.total)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instrs > out[j].Instrs })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders the full profile.
func (p *Profile) String() string {
	var b strings.Builder
	for _, e := range p.Top(0) {
		fmt.Fprintf(&b, "%8.2f%% %12d  %s\n", e.Percent, e.Instrs, e.Name)
	}
	return b.String()
}
