package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Profile attributes executed instructions to the text symbols that
// contain them — a flat function-level profiler for compiled programs —
// and, by watching call and return events in the instruction stream,
// maintains a call-stack model that yields caller→callee edge counts and
// folded-stack output consumable by standard flamegraph tooling.
// Attach one to a Machine before running.
//
// Calls are jl instructions (immediate or register form — the callee is
// resolved from the address reached after the delay slot, so D16's
// pool-load+register far calls attribute correctly); returns are
// register jumps through the link register. The delay-slot instruction
// after either event is attributed to the function that contains it.
type Profile struct {
	tab    *SymTable
	counts []int64
	total  int64

	// Call-stack model. stack holds symbol-table indices; pending counts
	// down the architectural delay slot after a call/return before the
	// stack mutates; curKey/batch accumulate folded samples for the
	// current stack so the hot path touches the map only on stack change.
	stack     []int
	pendingN  int
	pendingOp int // +1 push (call), -1 pop (return)
	curKey    string
	batch     int64
	folded    map[string]int64
	edges     map[edgeKey]int64
}

type edgeKey struct{ caller, callee int }

// NewProfile builds a profiler over an image's text symbols, with the
// filtering and deterministic ordering SymTable guarantees.
func NewProfile(img *prog.Image) *Profile {
	p := &Profile{
		tab:    NewSymTable(img),
		folded: map[string]int64{},
		edges:  map[edgeKey]int64{},
	}
	p.counts = make([]int64, p.tab.Len())
	return p
}

// symIndex returns the index of the symbol containing pc, or -1.
func (p *Profile) symIndex(pc uint32) int { return p.tab.Index(pc) }

func (p *Profile) symName(i int) string { return p.tab.Name(i) }

// Exec implements Observer.
func (p *Profile) Exec(pc uint32, in isa.Instr) {
	p.total++

	// A call/return two instructions back has now cleared its delay slot:
	// the stack mutates before this instruction is attributed.
	if p.pendingN > 0 {
		p.pendingN--
		if p.pendingN == 0 {
			if p.pendingOp > 0 {
				callee := p.symIndex(pc)
				if len(p.stack) > 0 {
					p.edges[edgeKey{p.stack[len(p.stack)-1], callee}]++
				}
				p.push(callee)
			} else if len(p.stack) > 1 {
				p.pop()
			}
		}
	}

	i := p.symIndex(pc)
	if i >= 0 {
		p.counts[i]++
	}
	if len(p.stack) == 0 {
		p.push(i) // program entry roots the stack
	}
	p.batch++

	switch {
	case in.Op == isa.JL:
		p.pendingN, p.pendingOp = 2, +1
	case in.Op == isa.J && !in.HasImm && in.Rs1 == isa.RegLink:
		p.pendingN, p.pendingOp = 2, -1
	}
}

func (p *Profile) flush() {
	if p.batch > 0 {
		p.folded[p.curKey] += p.batch
		p.batch = 0
	}
}

func (p *Profile) push(i int) {
	p.flush()
	p.stack = append(p.stack, i)
	p.rekey()
}

func (p *Profile) pop() {
	p.flush()
	p.stack = p.stack[:len(p.stack)-1]
	p.rekey()
}

func (p *Profile) rekey() {
	var b strings.Builder
	for j, i := range p.stack {
		if j > 0 {
			b.WriteByte(';')
		}
		b.WriteString(p.symName(i))
	}
	p.curKey = b.String()
}

// Load implements Observer.
func (p *Profile) Load(addr uint32, size uint32) {}

// Store implements Observer.
func (p *Profile) Store(addr uint32, size uint32) {}

// Entry is one profile row.
type Entry struct {
	Name    string
	Instrs  int64
	Percent float64
}

// Top returns the hottest n functions.
func (p *Profile) Top(n int) []Entry {
	var out []Entry
	for i, c := range p.counts {
		if c > 0 {
			out = append(out, Entry{p.tab.Name(i), c, 100 * float64(c) / float64(p.total)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instrs != out[j].Instrs {
			return out[i].Instrs > out[j].Instrs
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders the full profile.
func (p *Profile) String() string {
	var b strings.Builder
	for _, e := range p.Top(0) {
		fmt.Fprintf(&b, "%8.2f%% %12d  %s\n", e.Percent, e.Instrs, e.Name)
	}
	return b.String()
}

// Folded renders the stack-attributed samples in the folded format
// flamegraph tools consume: one "root;...;leaf count" line per distinct
// stack, sorted, one executed instruction per sample (their sum equals
// the run's executed-instruction count).
func (p *Profile) Folded() string {
	p.flush()
	keys := make([]string, 0, len(p.folded))
	for k := range p.folded { //detlint:ignore rangemap sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, p.folded[k])
	}
	return b.String()
}

// EdgeCount is one caller→callee arc of the dynamic call graph.
type EdgeCount struct {
	Caller string
	Callee string
	Count  int64
}

// Edges returns the dynamic call-graph arcs, attributed at call events,
// sorted by caller then callee.
func (p *Profile) Edges() []EdgeCount {
	out := make([]EdgeCount, 0, len(p.edges))
	for e, n := range p.edges { //detlint:ignore rangemap sorted immediately below

		out = append(out, EdgeCount{p.symName(e.caller), p.symName(e.callee), n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}
