package sim

import (
	"sync"

	"repro/internal/prog"
)

// Machines carry a 2 MiB flat memory each, and experiment sweeps build
// one machine per measurement point — historically a fresh allocation
// (and a fresh zeroing, and a fresh text decode) every time. The pool
// recycles released machines instead: Reset clears only the memory the
// previous tenancy dirtied and borrows the shared decode table, so a
// pooled acquire touches a few hundred kilobytes instead of allocating
// and zeroing two megabytes.
//
// Pools are per encoding so a reused machine's instruction width and
// register conventions usually already match, keeping resets cheap and
// the pools unpolluted when a sweep interleaves both ISAs.
var pools [2]sync.Pool

// Acquire returns a machine loaded with img, reusing a released machine
// of the same encoding when one is available. The result is
// indistinguishable from New(img) — asserted byte-for-byte, registers
// and stats included, by TestPooledResetMatchesFresh.
func Acquire(img *prog.Image) (*Machine, error) {
	if v := pools[int(img.Enc)&1].Get(); v != nil {
		m := v.(*Machine)
		if err := m.Reset(img); err == nil {
			return m, nil
		}
		// A failed reset (image too large for memory) leaves the machine
		// partially cleared; drop it and let New report the error.
	}
	return New(img)
}

// Release returns a machine to its encoding's pool. The caller must be
// finished with the machine, its observers and its output buffer;
// Release drops the observer references immediately (so released
// engines are collectable) and the next Acquire wipes the rest.
func Release(m *Machine) {
	if m == nil {
		return
	}
	for i := range m.obs {
		m.obs[i] = nil
	}
	m.obs = m.obs[:0]
	for i := range m.engs {
		m.engs[i] = nil
	}
	m.engs = m.engs[:0]
	for i := range m.others {
		m.others[i] = nil
	}
	m.others = m.others[:0]
	m.eng = nil
	m.itrace = nil
	m.TraceW = nil
	pools[int(m.Enc)&1].Put(m)
}
