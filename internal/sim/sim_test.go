package sim

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func run(t *testing.T, src string, spec *isa.Spec) *Machine {
	t.Helper()
	img, err := asm.Assemble("test.s", src, spec)
	if err != nil {
		t.Fatalf("assemble(%s): %v", spec, err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run(%s): %v", spec, err)
	}
	return m
}

func bothSpecs() []*isa.Spec { return []*isa.Spec{isa.D16(), isa.DLXe()} }

// prep specializes shared test assembly for one target: CC is the compare
// destination / branch condition register (architecturally r0 on D16; any
// ordinary register on DLXe, where r0 is hardwired zero).
func prep(src string, spec *isa.Spec) string {
	cc := "r0"
	if !spec.R0IsCC {
		cc = "r15"
	}
	return strings.ReplaceAll(src, "CC", cc)
}

func TestArithmetic(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi  r4, 100
	mvi  r5, 7
	mv   r6, r4
	sub  r6, r6, r5     ; 93
	mv   r3, r6
	shli r3, r3, 2      ; 372
	addi r3, r3, 5      ; 377
	trap 1
	trap 0
	nop
`
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		if got := m.Output.String(); got != "377" {
			t.Errorf("%s: output %q, want 377", spec, got)
		}
	}
}

func TestMemoryAndStrings(t *testing.T) {
	src := `
	.data
greet: .asciiz "hello, "
who:   .asciiz "world"
	.align 4
val:   .word 12345
	.text
	.global _start
_start:
	la   r3, greet
	trap 3
	la   r3, who
	trap 3
	mvi  r3, 10
	trap 2
	ld   r3, gprel(val)(gp)
	trap 1
	trap 0
	nop
	.pool
`
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		if got := m.Output.String(); got != "hello, world\n12345" {
			t.Errorf("%s: output %q", spec, got)
		}
	}
}

func TestCallAndRecursion(t *testing.T) {
	// Iterative doubling via a recursive helper: f(n) = n<=1 ? 1 : f(n-1)*2
	// computed with shifts; exercises call/ret, stack frames and the link
	// register across both encodings.
	src := `
	.text
	.global _start
_start:
	mvi  r3, 10
	call f
	nop
	trap 1
	trap 0
	nop
	.pool
f:
	; prologue: save lr on the stack
	subi r2, r2, 8
	st   r1, 0(r2)
	mvi  r4, 1
	cmp.le CC, r3, r4    ; n <= 1 ?
	bnz  CC, base
	nop
	subi r3, r3, 1
	call f
	nop
	shli r3, r3, 1       ; f(n-1)*2
	br   done
	nop
base:
	mvi  r3, 1
done:
	ld   r1, 0(r2)
	addi r2, r2, 8
	ret
	nop
	.pool
`
	for _, spec := range bothSpecs() {
		m := run(t, prep(src, spec), spec)
		if got := m.Output.String(); got != "512" {
			t.Errorf("%s: f(10) printed %q, want 512", spec, got)
		}
	}
}

func TestDelaySlotSemantics(t *testing.T) {
	// The instruction after a taken branch must execute.
	src := `
	.text
	.global _start
_start:
	mvi  r3, 1
	br   over
	addi r3, r3, 10   ; delay slot: executes
	addi r3, r3, 20   ; skipped
over:
	trap 1
	trap 0
	nop
`
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		if got := m.Output.String(); got != "11" {
			t.Errorf("%s: output %q, want 11 (delay slot must execute)", spec, got)
		}
	}
}

func TestJLReturnAddressSkipsSlot(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	call f
	mvi  r5, 7      ; delay slot of the call
	add  r3, r3, r5 ; return lands here
	trap 1
	trap 0
	nop
	.pool
f:
	mvi  r3, 30
	ret
	nop
`
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		if got := m.Output.String(); got != "37" {
			t.Errorf("%s: output %q, want 37", spec, got)
		}
	}
}

func TestSubwordMemory(t *testing.T) {
	src := `
	.data
bytes: .byte 0xFF, 0x7F
halfs: .half 0xFFFF, 0x7FFF
	.text
	.global _start
_start:
	la   r6, bytes
	ldb  r3, (r6)      ; -1 sign extended
	trap 1
	mvi  r3, 32
	trap 2             ; space
	ldbu r3, (r6)      ; 255
	trap 1
	mvi  r3, 32
	trap 2
	la   r6, halfs
	ldh  r3, (r6)      ; -1
	trap 1
	mvi  r3, 32
	trap 2
	ldhu r3, (r6)      ; 65535
	trap 1
	; store back: write 0x41 into bytes[0] and reread
	mvi  r4, 65
	la   r6, bytes
	stb  r4, (r6)
	mvi  r3, 32
	trap 2
	ldbu r3, (r6)
	trap 1
	trap 0
	nop
	.pool
`
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		want := "-1 255 -1 65535 65"
		if got := m.Output.String(); got != want {
			t.Errorf("%s: output %q, want %q", spec, got, want)
		}
	}
}

func TestFloatingPoint(t *testing.T) {
	// Compute (2.5 * 4.0 - 1.5) / 2.0 = 4.25 in double precision. Values
	// enter the FP file through the GPR transfer path, as the paper's
	// machines require.
	src := `
	.data
c25: .word 0x00000000, 0x40040000   ; 2.5
c40: .word 0x00000000, 0x40100000   ; 4.0
c15: .word 0x00000000, 0x3FF80000   ; 1.5
c20: .word 0x00000000, 0x40000000   ; 2.0
	.text
	.global _start
_start:
	la   r6, c25
	ld   r4, 0(r6)
	ld   r5, 4(r6)
	mvfl f1, r4
	mvfh f1, r5
	la   r6, c40
	ld   r4, 0(r6)
	ld   r5, 4(r6)
	mvfl f2, r4
	mvfh f2, r5
	mul.df f1, f1, f2     ; 10.0
	la   r6, c15
	ld   r4, 0(r6)
	ld   r5, 4(r6)
	mvfl f3, r4
	mvfh f3, r5
	sub.df f1, f1, f3     ; 8.5
	la   r6, c20
	ld   r4, 0(r6)
	ld   r5, 4(r6)
	mvfl f4, r4
	mvfh f4, r5
	div.df f1, f1, f4     ; 4.25
	trap 4
	; compare: 4.25 < 2.0 must be false; 2.0 < 4.25 true
	cmp.df.lt f1, f4
	rdsr r3
	trap 1
	cmp.df.lt f4, f1
	rdsr r3
	trap 1
	; int conversion round trip
	df2si r3, f1
	trap 1
	trap 0
	nop
	.pool
`
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		if got := m.Output.String(); got != "4.25014" {
			t.Errorf("%s: output %q, want 4.25014", spec, got)
		}
	}
}

func TestInterlockCounting(t *testing.T) {
	// A load immediately followed by a use stalls one cycle; separating
	// them with an independent instruction removes the stall.
	back2back := `
	.text
_start:
	mvi r4, 0
	ld  r5, gprel(w)(gp)
	add r6, r6, r5
	trap 0
	nop
	.data
w: .word 9
`
	spaced := `
	.text
_start:
	mvi r4, 0
	ld  r5, gprel(w)(gp)
	mvi r7, 1
	add r6, r6, r5
	trap 0
	nop
	.data
w: .word 9
`
	for _, spec := range bothSpecs() {
		m1 := run(t, back2back, spec)
		if m1.Stats.Interlocks != 1 {
			t.Errorf("%s: back-to-back load-use interlocks = %d, want 1", spec, m1.Stats.Interlocks)
		}
		m2 := run(t, spaced, spec)
		if m2.Stats.Interlocks != 0 {
			t.Errorf("%s: spaced load-use interlocks = %d, want 0", spec, m2.Stats.Interlocks)
		}
	}
}

func TestFPUInterlocks(t *testing.T) {
	src := `
	.text
_start:
	mvi  r4, 3
	si2df f1, r4
	si2df f2, r4
	mul.df f1, f1, f2
	df2si r3, f1      ; consumes the multiply immediately
	trap 1
	trap 0
	nop
`
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		if m.Output.String() != "9" {
			t.Errorf("%s: output %q, want 9", spec, m.Output.String())
		}
		// si2df f2 stalls on nothing; mul stalls until f2 ready
		// (convert latency 2 -> 1 stall), df2si stalls until the multiply
		// completes (latency 5 -> 4 stalls).
		if m.Stats.Interlocks != 5 {
			t.Errorf("%s: FPU interlocks = %d, want 5", spec, m.Stats.Interlocks)
		}
	}
}

func TestFetchWordCounting(t *testing.T) {
	// Eight sequential 16-bit instructions occupy 4 words on D16 and 8 on
	// DLXe. (The nop after the halting trap never executes.)
	src := ".text\n_start:\n" + strings.Repeat(" mvi r4, 1\n", 7) + " trap 0\n nop\n"
	d := run(t, src, isa.D16())
	x := run(t, src, isa.DLXe())
	if d.Stats.Instrs != 8 || x.Stats.Instrs != 8 {
		t.Fatalf("path lengths %d/%d, want 8", d.Stats.Instrs, x.Stats.Instrs)
	}
	if d.Stats.FetchWords != 4 {
		t.Errorf("D16 fetch words = %d, want 4", d.Stats.FetchWords)
	}
	if x.Stats.FetchWords != 8 {
		t.Errorf("DLXe fetch words = %d, want 8", x.Stats.FetchWords)
	}
}

func TestRunawayProgramFaults(t *testing.T) {
	src := ".text\n_start: br _start\n nop\n"
	img, err := asm.Assemble("t.s", src, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err == nil {
		t.Fatal("expected instruction-budget fault")
	}
}

func TestBadMemoryFaults(t *testing.T) {
	src := ".text\n_start:\n la r4, 0x7FFFFFF0\n ld r5, 0(r4)\n trap 0\n nop\n .pool\n"
	for _, spec := range bothSpecs() {
		img, err := asm.Assemble("t.s", src, spec)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(img)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(1000); err == nil {
			t.Errorf("%s: expected memory fault", spec)
		}
	}
}

func TestDLXeR0IsZero(t *testing.T) {
	src := `
	.text
_start:
	mvi r0, 55     ; write to r0 is discarded on DLXe
	mv  r3, r0
	trap 1
	trap 0
	nop
`
	m := run(t, src, isa.DLXe())
	if got := m.Output.String(); got != "0" {
		t.Errorf("DLXe r0 = %q, want 0", got)
	}
	// On D16, r0 is an ordinary (condition) register.
	m = run(t, src, isa.D16())
	if got := m.Output.String(); got != "55" {
		t.Errorf("D16 r0 = %q, want 55", got)
	}
}
