package sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/decode"
	"repro/internal/isa"
)

// Trap service codes (the simulator's "operating system").
const (
	TrapHalt    = 0 // stop execution
	TrapPutInt  = 1 // print r3 as signed decimal
	TrapPutChar = 2 // print low byte of r3
	TrapPutStr  = 3 // print NUL-terminated string at address r3
	TrapPutFlt  = 4 // print f1 as %g
)

// exec executes one predecoded instruction. For control transfers it
// returns the target address and taken=true; the caller implements the
// architectural delay slot. It is allocation-free (direct register-file
// accessors, no method-value closures).
func (m *Machine) exec(op decode.Op) (target uint32, taken bool, err error) {
	in := &op.In
	switch in.Op {
	case isa.NOP:

	// --- memory -----------------------------------------------------------
	case isa.LD:
		addr := uint32(m.rdG(in.Rs1) + in.Imm)
		v, err := m.load32(addr)
		if err != nil {
			return 0, false, err
		}
		m.notifyLoad(addr, 4)
		m.wrG(in.Rd, int32(v))
	case isa.LDC:
		addr := uint32(int32(m.PC) + in.Imm)
		v, err := m.load32(addr)
		if err != nil {
			return 0, false, err
		}
		m.notifyLoad(addr, 4)
		m.wrG(in.Rd, int32(v))
	case isa.LDH, isa.LDHU:
		addr := uint32(m.rdG(in.Rs1) + in.Imm)
		if err := m.checkAddr(addr, 2); err != nil {
			return 0, false, err
		}
		m.notifyLoad(addr, 2)
		v := binary.LittleEndian.Uint16(m.Mem[addr:])
		if in.Op == isa.LDH {
			m.wrG(in.Rd, int32(int16(v)))
		} else {
			m.wrG(in.Rd, int32(v))
		}
	case isa.LDB, isa.LDBU:
		addr := uint32(m.rdG(in.Rs1) + in.Imm)
		if err := m.checkAddr(addr, 1); err != nil {
			return 0, false, err
		}
		m.notifyLoad(addr, 1)
		v := m.Mem[addr]
		if in.Op == isa.LDB {
			m.wrG(in.Rd, int32(int8(v)))
		} else {
			m.wrG(in.Rd, int32(v))
		}
	case isa.ST:
		addr := uint32(m.rdG(in.Rs1) + in.Imm)
		if err := m.store32(addr, uint32(m.rdG(in.Rd))); err != nil {
			return 0, false, err
		}
		m.notifyStore(addr, 4)
	case isa.STH:
		addr := uint32(m.rdG(in.Rs1) + in.Imm)
		if err := m.checkAddr(addr, 2); err != nil {
			return 0, false, err
		}
		binary.LittleEndian.PutUint16(m.Mem[addr:], uint16(m.rdG(in.Rd)))
		m.notifyStore(addr, 2)
	case isa.STB:
		addr := uint32(m.rdG(in.Rs1) + in.Imm)
		if err := m.checkAddr(addr, 1); err != nil {
			return 0, false, err
		}
		m.Mem[addr] = byte(m.rdG(in.Rd))
		m.notifyStore(addr, 1)

	// --- control ----------------------------------------------------------
	case isa.BR:
		m.Stats.Branches++
		m.Stats.Taken++
		return uint32(int32(m.PC) + in.Imm), true, nil
	case isa.BZ, isa.BNZ:
		m.Stats.Branches++
		cond := m.rdG(in.Rs1) == 0
		if in.Op == isa.BNZ {
			cond = !cond
		}
		if cond {
			m.Stats.Taken++
			return uint32(int32(m.PC) + in.Imm), true, nil
		}
	case isa.J, isa.JL:
		m.Stats.Jumps++
		if in.Op == isa.JL {
			m.wrG(isa.RegLink, int32(m.PC+2*m.ib)) // return past the delay slot
		}
		if in.HasImm {
			return uint32(int32(m.PC) + in.Imm), true, nil
		}
		return uint32(m.rdG(in.Rs1)), true, nil
	case isa.JZ, isa.JNZ:
		m.Stats.Jumps++
		cond := m.rdG(isa.RegCC) == 0
		if in.Op == isa.JNZ {
			cond = !cond
		}
		if cond {
			return uint32(m.rdG(in.Rs1)), true, nil
		}

	// --- integer ALU ------------------------------------------------------
	case isa.CMP:
		b := in.Imm
		if !in.HasImm {
			b = m.rdG(in.Rs2)
		}
		v := int32(0)
		if in.Cond.EvalInt(m.rdG(in.Rs1), b) {
			v = 1
		}
		m.wrG(in.Rd, v)
	case isa.ADD:
		m.wrG(in.Rd, m.rdG(in.Rs1)+m.rdG(in.Rs2))
	case isa.ADDI:
		m.wrG(in.Rd, m.rdG(in.Rs1)+in.Imm)
	case isa.SUB:
		m.wrG(in.Rd, m.rdG(in.Rs1)-m.rdG(in.Rs2))
	case isa.SUBI:
		m.wrG(in.Rd, m.rdG(in.Rs1)-in.Imm)
	case isa.AND:
		m.wrG(in.Rd, m.rdG(in.Rs1)&m.rdG(in.Rs2))
	case isa.ANDI:
		m.wrG(in.Rd, m.rdG(in.Rs1)&in.Imm)
	case isa.OR:
		m.wrG(in.Rd, m.rdG(in.Rs1)|m.rdG(in.Rs2))
	case isa.ORI:
		m.wrG(in.Rd, m.rdG(in.Rs1)|in.Imm)
	case isa.XOR:
		m.wrG(in.Rd, m.rdG(in.Rs1)^m.rdG(in.Rs2))
	case isa.XORI:
		m.wrG(in.Rd, m.rdG(in.Rs1)^in.Imm)
	case isa.NEG:
		m.wrG(in.Rd, -m.rdG(in.Rs1))
	case isa.INV:
		m.wrG(in.Rd, ^m.rdG(in.Rs1))
	case isa.SHL:
		m.wrG(in.Rd, m.rdG(in.Rs1)<<(uint32(m.rdG(in.Rs2))&31))
	case isa.SHLI:
		m.wrG(in.Rd, m.rdG(in.Rs1)<<(uint32(in.Imm)&31))
	case isa.SHR:
		m.wrG(in.Rd, int32(uint32(m.rdG(in.Rs1))>>(uint32(m.rdG(in.Rs2))&31)))
	case isa.SHRI:
		m.wrG(in.Rd, int32(uint32(m.rdG(in.Rs1))>>(uint32(in.Imm)&31)))
	case isa.SHRA:
		m.wrG(in.Rd, m.rdG(in.Rs1)>>(uint32(m.rdG(in.Rs2))&31))
	case isa.SHRAI:
		m.wrG(in.Rd, m.rdG(in.Rs1)>>(uint32(in.Imm)&31))
	case isa.MV:
		m.wrG(in.Rd, m.rdG(in.Rs1))
	case isa.MVI:
		m.wrG(in.Rd, in.Imm)
	case isa.MVHI:
		m.wrG(in.Rd, in.Imm<<16)

	// --- register-file transfer --------------------------------------------
	case isa.MVFL:
		f := in.Rd.Num()
		m.FPR[f] = m.FPR[f]&^0xFFFFFFFF | uint64(uint32(m.rdG(in.Rs1)))
	case isa.MVFH:
		f := in.Rd.Num()
		m.FPR[f] = m.FPR[f]&0xFFFFFFFF | uint64(uint32(m.rdG(in.Rs1)))<<32
	case isa.MFFL:
		m.wrG(in.Rd, int32(uint32(m.FPR[in.Rs1.Num()])))
	case isa.MFFH:
		m.wrG(in.Rd, int32(uint32(m.FPR[in.Rs1.Num()]>>32)))
	case isa.FMV:
		m.FPR[in.Rd.Num()] = m.FPR[in.Rs1.Num()]

	// --- floating point -----------------------------------------------------
	case isa.FADDS, isa.FSUBS, isa.FMULS, isa.FDIVS:
		a, b := f32(m.FPR[in.Rs1.Num()]), f32(m.FPR[in.Rs2.Num()])
		var v float32
		switch in.Op {
		case isa.FADDS:
			v = a + b
		case isa.FSUBS:
			v = a - b
		case isa.FMULS:
			v = a * b
		default:
			v = a / b
		}
		m.FPR[in.Rd.Num()] = b32(v)
	case isa.FNEGS:
		m.FPR[in.Rd.Num()] = b32(-f32(m.FPR[in.Rs1.Num()]))
	case isa.FADDD, isa.FSUBD, isa.FMULD, isa.FDIVD:
		a, b := f64(m.FPR[in.Rs1.Num()]), f64(m.FPR[in.Rs2.Num()])
		var v float64
		switch in.Op {
		case isa.FADDD:
			v = a + b
		case isa.FSUBD:
			v = a - b
		case isa.FMULD:
			v = a * b
		default:
			v = a / b
		}
		m.FPR[in.Rd.Num()] = b64(v)
	case isa.FNEGD:
		m.FPR[in.Rd.Num()] = b64(-f64(m.FPR[in.Rs1.Num()]))
	case isa.FCMPS:
		m.FPSR = in.Cond.EvalFloat(float64(f32(m.FPR[in.Rs1.Num()])), float64(f32(m.FPR[in.Rs2.Num()])))
	case isa.FCMPD:
		m.FPSR = in.Cond.EvalFloat(f64(m.FPR[in.Rs1.Num()]), f64(m.FPR[in.Rs2.Num()]))
	case isa.RDSR:
		v := int32(0)
		if m.FPSR {
			v = 1
		}
		m.wrG(in.Rd, v)

	// --- conversions --------------------------------------------------------
	case isa.CVTSISF:
		m.FPR[in.Rd.Num()] = b32(float32(m.rdG(in.Rs1)))
	case isa.CVTSIDF:
		m.FPR[in.Rd.Num()] = b64(float64(m.rdG(in.Rs1)))
	case isa.CVTSFDF:
		m.FPR[in.Rd.Num()] = b64(float64(f32(m.FPR[in.Rs1.Num()])))
	case isa.CVTDFSF:
		m.FPR[in.Rd.Num()] = b32(float32(f64(m.FPR[in.Rs1.Num()])))
	case isa.CVTDFSI:
		m.wrG(in.Rd, int32(f64(m.FPR[in.Rs1.Num()])))
	case isa.CVTSFSI:
		m.wrG(in.Rd, int32(f32(m.FPR[in.Rs1.Num()])))

	case isa.TRAP:
		return 0, false, m.trap(in.Imm)

	default:
		return 0, false, m.fault("unimplemented operation %s", in.Op)
	}
	return 0, false, nil
}

func (m *Machine) trap(code int32) error {
	switch code {
	case TrapHalt:
		m.halted = true
	case TrapPutInt:
		fmt.Fprintf(&m.Output, "%d", m.rdG(isa.R(3)))
	case TrapPutChar:
		m.Output.WriteByte(byte(m.rdG(isa.R(3))))
	case TrapPutStr:
		s, err := m.ReadCString(uint32(m.rdG(isa.R(3))))
		if err != nil {
			return err
		}
		m.Output.WriteString(s)
	case TrapPutFlt:
		fmt.Fprintf(&m.Output, "%g", f64(m.FPR[isa.FRetReg.Num()]))
	default:
		return m.fault("unknown trap %d", code)
	}
	return nil
}
