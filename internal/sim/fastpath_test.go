package sim

import (
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/pipeline"
)

// forward hides a pipeline.Engine behind a plain Observer so Attach
// cannot recognize it and the run takes the generic dispatch path.
type forward struct{ e *pipeline.Engine }

func (f forward) Exec(pc uint32, in isa.Instr) { f.e.Exec(pc, in) }
func (f forward) Load(addr, size uint32)       { f.e.Load(addr, size) }
func (f forward) Store(addr, size uint32)      { f.e.Store(addr, size) }

// TestFastPathMatchesGenericEngine: the devirtualized ExecOp path and
// the generic Observer path produce identical timing — total cycles,
// every attribution bucket, and the full per-PC tables — across memory
// configurations and both encodings.
func TestFastPathMatchesGenericEngine(t *testing.T) {
	cfgs := []pipeline.Config{
		{BusBytes: 4, WaitStates: 0},
		{BusBytes: 4, WaitStates: 3, SharedPort: true},
		{BusBytes: 8, WaitStates: 1},
	}
	for _, spec := range bothSpecs() {
		img := assemble(t, loopProgram(spec), spec)
		for _, cfg := range cfgs {
			fast := pipeline.New(cfg)
			fast.EnablePCAccounting()
			mf, err := New(img)
			if err != nil {
				t.Fatal(err)
			}
			mf.Attach(fast)
			if mf.eng == nil {
				t.Fatal("single attached engine not devirtualized")
			}
			if err := mf.Run(1_000_000); err != nil {
				t.Fatal(err)
			}

			slow := pipeline.New(cfg)
			slow.EnablePCAccounting()
			ms, err := New(img)
			if err != nil {
				t.Fatal(err)
			}
			ms.Attach(forward{slow})
			if ms.eng != nil {
				t.Fatal("wrapped engine unexpectedly devirtualized")
			}
			if err := ms.Run(1_000_000); err != nil {
				t.Fatal(err)
			}

			if fast.Cycles() != slow.Cycles() {
				t.Errorf("%v %+v: cycles %d (fast) != %d (generic)", spec.Enc, cfg, fast.Cycles(), slow.Cycles())
			}
			if fast.Breakdown() != slow.Breakdown() {
				t.Errorf("%v %+v: breakdown %v != %v", spec.Enc, cfg, fast.Breakdown(), slow.Breakdown())
			}
			if !reflect.DeepEqual(fast.PerPC(), slow.PerPC()) {
				t.Errorf("%v %+v: per-PC tables differ", spec.Enc, cfg)
			}
			if mf.Stats != ms.Stats {
				t.Errorf("%v %+v: machine stats differ: %+v vs %+v", spec.Enc, cfg, mf.Stats, ms.Stats)
			}
		}
	}
}
