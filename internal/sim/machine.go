// Package sim is the architecture simulator: it executes programs in
// either instruction encoding on the paper's five-stage pipeline model.
//
// Execution is functional-plus-timing: instructions execute one per cycle
// at peak, with the two dynamic penalty sources the paper models layered
// on top:
//
//   - interlocks, counted by a register scoreboard (one delay slot on
//     loads, multi-cycle FPU result latencies), and
//   - instruction/data memory traffic, exposed to pluggable Observers so
//     that memory-system timing models (memsys, cache) can be attached —
//     several at once — without re-running the program.
//
// Control transfers have one architectural delay slot: the instruction
// after a branch/jump always executes.
//
// # Concurrency and ownership
//
// A Machine and everything attached to it (observers, trace ring,
// output buffer) belong to one run on one goroutine; none of it is
// internally locked. The *prog.Image passed to New is only read — its
// segments are copied into the machine's private memory and pre-decoded
// instruction array — so a single compiled image may safely back any
// number of machines running concurrently on distinct goroutines. The
// package keeps no mutable package-level state, and execution is fully
// deterministic: identical images produce identical outputs, stats and
// observer event streams on every run (asserted by core's
// TestConcurrentRunsDeterministic under -race).
package sim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/d16"
	"repro/internal/dlxe"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/telemetry"
)

// FPU result latencies in cycles (a result produced at cycle t is usable
// by an instruction issuing at t+latency). Ordinary operations have
// latency 1; loads have 2 (the one-cycle delay slot).
const (
	LatNormal  = 1
	LatLoad    = 2
	LatFAdd    = 2
	LatFMul    = 5
	LatFDivS   = 12
	LatFDivD   = 19
	LatFCmp    = 2
	LatConvert = 2
)

// Stats accumulates the dynamic measures of one run.
type Stats struct {
	Instrs     int64 // path length (includes delay-slot instructions)
	Interlocks int64 // stall cycles from load delay and FPU latencies
	Loads      int64 // data-read instructions (including ldc pool loads)
	Stores     int64
	PoolLoads  int64 // of Loads, D16 ldc literal-pool reads
	FetchWords int64 // 32-bit instruction words fetched (simple sequential buffer)
	Branches   int64 // executed PC-relative branches
	Taken      int64 // of which taken
	Jumps      int64
	Nops       int64
}

// DataOps returns total loads + stores (the paper's MemOps).
func (s *Stats) DataOps() int64 { return s.Loads + s.Stores }

// Observer receives execution events for trace-driven timing models. All
// methods are called in program order.
type Observer interface {
	// Exec is called for every executed instruction with its address.
	Exec(pc uint32, in isa.Instr)
	// Load/Store are called for data accesses (size in bytes).
	Load(addr uint32, size uint32)
	Store(addr uint32, size uint32)
}

// Fault is an execution error (bad memory access, undefined instruction,
// run-away program).
type Fault struct {
	PC  uint32
	Msg string
}

func (f *Fault) Error() string { return fmt.Sprintf("sim: fault at pc=%#x: %s", f.PC, f.Msg) }

// Machine is one simulated processor plus memory.
type Machine struct {
	Enc isa.Encoding
	Mem []byte

	PC   uint32
	GPR  [32]int32
	FPR  [32]uint64
	FPSR bool // FP status register (last FP compare result)

	r0Zero bool
	halted bool

	// Output collects trap-based program output; experiment harnesses
	// compare it against the benchmark's expected checksum.
	Output bytes.Buffer

	Stats Stats

	// TraceW, when non-nil, receives one line per executed instruction
	// (sequence number, pc, disassembly) — the full-trace debug mode.
	TraceW io.Writer

	text      []isa.Instr // pre-decoded text segment
	textErr   []error
	textBase  uint32
	ib        uint32
	obs       []Observer
	itrace    *telemetry.Ring[TraceEntry]
	t         int64 // issue cycle counter for the scoreboard
	ready     [64]int64
	fpsrReady int64
	lastWord  uint32 // last fetched 32-bit word address (+1 so 0 = none)
}

// TraceEntry is one instruction-trace ring-buffer slot. The faulting
// instruction of a trapped run is included: entries are recorded before
// execution.
type TraceEntry struct {
	Seq int64 // 1-based position in the dynamic instruction stream
	PC  uint32
	In  isa.Instr
}

func (e TraceEntry) String() string {
	return fmt.Sprintf("%10d  %06x  %s", e.Seq, e.PC, e.In)
}

// New loads an image into a fresh machine.
func New(img *prog.Image) (*Machine, error) {
	m := &Machine{
		Enc:      img.Enc,
		Mem:      make([]byte, isa.MemSize),
		PC:       img.Entry,
		r0Zero:   img.Enc == isa.EncDLXe,
		textBase: isa.TextBase,
		ib:       img.Enc.InstrBytes(),
	}
	if err := img.Load(m.Mem); err != nil {
		return nil, err
	}
	m.GPR[isa.RegSP.Num()] = int32(isa.StackTop)
	m.GPR[isa.RegGP.Num()] = int32(isa.DataBase)

	// Pre-decode the text segment. Literal-pool words may not decode;
	// they fault only if executed.
	n := len(img.Text) / int(m.ib)
	m.text = make([]isa.Instr, n)
	m.textErr = make([]error, n)
	for i := 0; i < n; i++ {
		pc := m.textBase + uint32(i)*m.ib
		if m.Enc == isa.EncD16 {
			w := binary.LittleEndian.Uint16(img.Text[i*2:])
			m.text[i], m.textErr[i] = d16.DecodeV(w, pc, d16.Variant{Cmp8: img.Cmp8})
		} else {
			w := binary.LittleEndian.Uint32(img.Text[i*4:])
			m.text[i], m.textErr[i] = dlxe.Decode(w, pc)
		}
	}
	return m, nil
}

// Attach adds a timing-model observer.
func (m *Machine) Attach(o Observer) { m.obs = append(m.obs, o) }

// EnableITrace keeps a ring buffer of the last n executed instructions
// for post-mortem dumps (n <= 0 disables it).
func (m *Machine) EnableITrace(n int) {
	if n <= 0 {
		m.itrace = nil
		return
	}
	m.itrace = telemetry.NewRing[TraceEntry](n)
}

// ITrace returns the retained instruction trace, oldest first (nil when
// tracing is not enabled).
func (m *Machine) ITrace() []TraceEntry {
	if m.itrace == nil {
		return nil
	}
	return m.itrace.Slice()
}

// RegisterMetrics publishes the machine's dynamic statistics into a
// telemetry registry as live gauges under prefix (e.g. "sim."). Reads
// happen at snapshot time, so the hot execution loop is untouched.
func (m *Machine) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	for _, f := range []struct {
		name string
		v    *int64
	}{
		{"instrs", &m.Stats.Instrs},
		{"interlocks", &m.Stats.Interlocks},
		{"loads", &m.Stats.Loads},
		{"stores", &m.Stats.Stores},
		{"pool_loads", &m.Stats.PoolLoads},
		{"fetch_words", &m.Stats.FetchWords},
		{"branches", &m.Stats.Branches},
		{"branches_taken", &m.Stats.Taken},
		{"jumps", &m.Stats.Jumps},
		{"nops", &m.Stats.Nops},
	} {
		v := f.v
		reg.RegisterFunc(prefix+f.name, func() int64 { return *v })
	}
	reg.RegisterFunc(prefix+"expected_cycles", m.ExpectedCycles)
}

// Halted reports whether the program executed trap 0.
func (m *Machine) Halted() bool { return m.halted }

func (m *Machine) fault(format string, args ...any) error {
	return &Fault{PC: m.PC, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) fetch(pc uint32) (isa.Instr, error) {
	if pc < m.textBase || pc%m.ib != 0 {
		return isa.Instr{}, m.fault("instruction fetch outside text (%#x)", pc)
	}
	i := int((pc - m.textBase) / m.ib)
	if i >= len(m.text) {
		return isa.Instr{}, m.fault("instruction fetch outside text (%#x)", pc)
	}
	if m.textErr[i] != nil {
		return isa.Instr{}, m.fault("executing undecodable word: %v", m.textErr[i])
	}
	return m.text[i], nil
}

// Run executes until trap 0 or maxInstrs instructions. It returns an
// error on any fault; exceeding maxInstrs is a fault (runaway program).
func (m *Machine) Run(maxInstrs int64) error {
	pc, npc := m.PC, m.PC+m.ib
	for !m.halted {
		if m.Stats.Instrs >= maxInstrs {
			m.PC = pc
			return m.fault("instruction budget %d exhausted", maxInstrs)
		}
		m.PC = pc
		in, err := m.fetch(pc)
		if err != nil {
			return err
		}
		if m.itrace != nil {
			m.itrace.Push(TraceEntry{Seq: m.Stats.Instrs + 1, PC: pc, In: in})
		}
		if m.TraceW != nil {
			fmt.Fprintf(m.TraceW, "%10d  %06x  %s\n", m.Stats.Instrs+1, pc, in)
		}
		m.account(pc, in)
		target, taken, err := m.exec(in)
		if err != nil {
			return err
		}
		for _, o := range m.obs {
			o.Exec(pc, in)
		}
		if taken {
			pc, npc = npc, target
		} else {
			pc, npc = npc, npc+m.ib
		}
	}
	m.PC = pc
	return nil
}

// account updates path-length statistics, the sequential-fetch word count
// and the interlock scoreboard for one instruction.
func (m *Machine) account(pc uint32, in isa.Instr) {
	m.Stats.Instrs++
	if in.Op == isa.NOP {
		m.Stats.Nops++
	}

	// Word-granularity instruction traffic (Table 8's measure): a new
	// 32-bit word is fetched whenever execution leaves the current word,
	// sequentially or by branching.
	w := pc&^3 + 1
	if w != m.lastWord {
		m.Stats.FetchWords++
		m.lastWord = w
	}

	// Scoreboard: stall until all sources are ready.
	issue := m.t
	var srcs [4]isa.Reg
	uses := in.Uses(srcs[:0])
	for _, r := range uses {
		if rt := m.ready[r]; rt > issue {
			issue = rt
		}
	}
	if in.Op == isa.RDSR && m.fpsrReady > issue {
		issue = m.fpsrReady
	}
	m.Stats.Interlocks += issue - m.t
	m.t = issue + 1

	lat := int64(LatNormal)
	switch {
	case in.Op.IsLoad():
		lat = LatLoad
	case in.Op == isa.FADDS, in.Op == isa.FSUBS, in.Op == isa.FADDD, in.Op == isa.FSUBD,
		in.Op == isa.FNEGS, in.Op == isa.FNEGD:
		lat = LatFAdd
	case in.Op == isa.FMULS, in.Op == isa.FMULD:
		lat = LatFMul
	case in.Op == isa.FDIVS:
		lat = LatFDivS
	case in.Op == isa.FDIVD:
		lat = LatFDivD
	case in.Op.IsFCmp():
		m.fpsrReady = issue + LatFCmp
	case in.Op >= isa.CVTSISF && in.Op <= isa.CVTSFSI:
		lat = LatConvert
	}
	if d := in.Def(); d.Valid() {
		m.ready[d] = issue + lat
	}
}

// ExpectedCycles returns the scoreboard's ideal cycle count: one cycle per
// instruction plus interlocks (no memory-system penalties).
func (m *Machine) ExpectedCycles() int64 { return m.Stats.Instrs + m.Stats.Interlocks }

// --- register and memory access --------------------------------------------

func (m *Machine) rdG(r isa.Reg) int32 {
	if m.r0Zero && r == isa.RegCC {
		return 0
	}
	return m.GPR[r.Num()]
}

func (m *Machine) wrG(r isa.Reg, v int32) {
	if m.r0Zero && r == isa.RegCC {
		return
	}
	m.GPR[r.Num()] = v
}

func (m *Machine) checkAddr(addr, size uint32) error {
	if addr+size > uint32(len(m.Mem)) || addr+size < addr {
		return m.fault("memory access %#x size %d out of range", addr, size)
	}
	if size > 1 && addr%size != 0 {
		return m.fault("unaligned %d-byte access at %#x", size, addr)
	}
	return nil
}

func (m *Machine) load32(addr uint32) (uint32, error) {
	if err := m.checkAddr(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.Mem[addr:]), nil
}

func (m *Machine) store32(addr uint32, v uint32) error {
	if err := m.checkAddr(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], v)
	return nil
}

// ReadCString reads a NUL-terminated string from simulated memory (used by
// the puts trap and by tests).
func (m *Machine) ReadCString(addr uint32) (string, error) {
	var b []byte
	for {
		if addr >= uint32(len(m.Mem)) {
			return "", m.fault("string read out of range at %#x", addr)
		}
		c := m.Mem[addr]
		if c == 0 {
			return string(b), nil
		}
		b = append(b, c)
		addr++
		if len(b) > 1<<20 {
			return "", m.fault("unterminated string")
		}
	}
}

func f32(bits uint64) float32 { return math.Float32frombits(uint32(bits)) }
func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func b32(v float32) uint64    { return uint64(math.Float32bits(v)) }
func b64(v float64) uint64    { return math.Float64bits(v) }
func (m *Machine) notifyLoad(addr, size uint32) {
	m.Stats.Loads++
	if addr >= isa.TextBase && addr < isa.DataBase {
		m.Stats.PoolLoads++
	}
	for _, o := range m.obs {
		o.Load(addr, size)
	}
}
func (m *Machine) notifyStore(addr, size uint32) {
	m.Stats.Stores++
	for _, o := range m.obs {
		o.Store(addr, size)
	}
}
