// Package sim is the architecture simulator: it executes programs in
// either instruction encoding on the paper's five-stage pipeline model.
//
// Execution is functional-plus-timing: instructions execute one per cycle
// at peak, with the two dynamic penalty sources the paper models layered
// on top:
//
//   - interlocks, counted by a register scoreboard (one delay slot on
//     loads, multi-cycle FPU result latencies), and
//   - instruction/data memory traffic, exposed to pluggable Observers so
//     that memory-system timing models (memsys, cache) can be attached —
//     several at once — without re-running the program.
//
// Control transfers have one architectural delay slot: the instruction
// after a branch/jump always executes.
//
// # Concurrency and ownership
//
// A Machine and everything attached to it (observers, trace ring,
// output buffer) belong to one run on one goroutine; none of it is
// internally locked. The *prog.Image passed to New is only read — its
// segments are copied into the machine's private memory, and its text
// is predecoded exactly once per distinct image into an immutable
// shared table (see the decode package) — so a single compiled image
// may safely back any number of machines running concurrently on
// distinct goroutines. The package's only mutable package-level state
// is the machine free pool (Acquire/Release), which hands each machine
// to exactly one owner at a time; execution is fully deterministic:
// identical images produce identical outputs, stats and observer event
// streams on every run (asserted by core's
// TestConcurrentRunsDeterministic under -race).
//
// # Hot-loop discipline
//
// Run and everything it calls per instruction (account, exec, the
// observer notifications) must not allocate: the perfgate benchmark
// sim/step enforces an allocs-per-instruction ceiling, and
// TestRunDoesNotAllocate asserts zero steady-state allocations. When
// exactly one pipeline.Engine is attached, Run calls it directly
// (devirtualized); any other observer mix takes the interface slice
// path.
package sim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/telemetry"
)

// FPU result latencies in cycles (a result produced at cycle t is usable
// by an instruction issuing at t+latency). Ordinary operations have
// latency 1; loads have 2 (the one-cycle delay slot). The constants
// live in isa (shared with the timing models and the static analyzer);
// these aliases keep the historical sim.Lat* names working.
const (
	LatNormal  = isa.LatNormal
	LatLoad    = isa.LatLoad
	LatFAdd    = isa.LatFAdd
	LatFMul    = isa.LatFMul
	LatFDivS   = isa.LatFDivS
	LatFDivD   = isa.LatFDivD
	LatFCmp    = isa.LatFCmp
	LatConvert = isa.LatConvert
)

// Stats accumulates the dynamic measures of one run.
type Stats struct {
	Instrs     int64 // path length (includes delay-slot instructions)
	Interlocks int64 // stall cycles from load delay and FPU latencies
	Loads      int64 // data-read instructions (including ldc pool loads)
	Stores     int64
	PoolLoads  int64 // of Loads, D16 ldc literal-pool reads
	FetchWords int64 // 32-bit instruction words fetched (simple sequential buffer)
	Branches   int64 // executed PC-relative branches
	Taken      int64 // of which taken
	Jumps      int64
	Nops       int64
}

// DataOps returns total loads + stores (the paper's MemOps).
func (s *Stats) DataOps() int64 { return s.Loads + s.Stores }

// Observer receives execution events for trace-driven timing models. All
// methods are called in program order.
type Observer interface {
	// Exec is called for every executed instruction with its address.
	Exec(pc uint32, in isa.Instr)
	// Load/Store are called for data accesses (size in bytes).
	Load(addr uint32, size uint32)
	Store(addr uint32, size uint32)
}

// Fault is an execution error (bad memory access, undefined instruction,
// run-away program).
type Fault struct {
	PC  uint32
	Msg string
}

func (f *Fault) Error() string { return fmt.Sprintf("sim: fault at pc=%#x: %s", f.PC, f.Msg) }

// Machine is one simulated processor plus memory.
type Machine struct {
	Enc isa.Encoding
	Mem []byte

	PC   uint32
	GPR  [32]int32
	FPR  [32]uint64
	FPSR bool // FP status register (last FP compare result)

	r0Zero bool
	halted bool

	// Output collects trap-based program output; experiment harnesses
	// compare it against the benchmark's expected checksum.
	Output bytes.Buffer

	Stats Stats

	// TraceW, when non-nil, receives one line per executed instruction
	// (sequence number, pc, disassembly) — the full-trace debug mode.
	TraceW io.Writer

	dec       *decode.Text // shared read-only predecoded text segment
	textBase  uint32
	ib        uint32
	obs       []Observer
	eng       *pipeline.Engine   // devirtualized path when it is the only observer
	engs      []*pipeline.Engine // attached engines, driven via ExecOp (no Synth)
	others    []Observer         // non-engine observers, driven via the interface
	itrace    *telemetry.Ring[TraceEntry]
	t         int64 // issue cycle counter for the scoreboard
	ready     [64]int64
	fpsrReady int64
	lastWord  uint32 // last fetched 32-bit word address (+1 so 0 = none)

	// Reset bookkeeping: the memory this tenancy may have written —
	// the loaded image's spans plus the byte range covered by executed
	// stores — so a pooled reuse clears only what is dirty instead of
	// re-zeroing all of isa.MemSize.
	loadedTextEnd uint32
	loadedDataEnd uint32
	dirtyLo       uint32
	dirtyHi       uint32
}

// TraceEntry is one instruction-trace ring-buffer slot. The faulting
// instruction of a trapped run is included: entries are recorded before
// execution.
type TraceEntry struct {
	Seq int64 // 1-based position in the dynamic instruction stream
	PC  uint32
	In  isa.Instr
}

func (e TraceEntry) String() string {
	return fmt.Sprintf("%10d  %06x  %s", e.Seq, e.PC, e.In)
}

// New loads an image into a fresh machine. The image's text is not
// re-decoded here: the machine borrows the shared predecoded table for
// the image's content (decode.For), so constructing many machines for
// one image costs one decode total.
func New(img *prog.Image) (*Machine, error) {
	m := &Machine{Mem: make([]byte, isa.MemSize)}
	if err := m.Reset(img); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset returns the machine to the exact state New(img) produces while
// reusing its memory (asserted byte-for-byte, registers included, by
// TestPooledResetMatchesFresh). Only memory the previous tenancy could
// have written is cleared: the prior image's text and data+BSS spans
// and the byte range covered by executed stores. Observers, tracing and
// output are dropped. On error the machine is left partially cleared
// and must be discarded.
func (m *Machine) Reset(img *prog.Image) error {
	if m.loadedTextEnd > isa.TextBase {
		clear(m.Mem[isa.TextBase:m.loadedTextEnd])
	}
	if m.loadedDataEnd > isa.DataBase {
		clear(m.Mem[isa.DataBase:m.loadedDataEnd])
	}
	if m.dirtyHi > m.dirtyLo {
		clear(m.Mem[m.dirtyLo:m.dirtyHi])
	}
	m.Enc = img.Enc
	m.r0Zero = img.Enc == isa.EncDLXe
	m.dec = decode.For(img)
	m.textBase = m.dec.Base
	m.ib = m.dec.IB
	if err := img.Load(m.Mem); err != nil {
		return err
	}
	m.loadedTextEnd = img.TextEnd()
	m.loadedDataEnd = img.DataEnd()
	m.dirtyLo, m.dirtyHi = uint32(len(m.Mem)), 0
	m.PC = img.Entry
	m.GPR = [32]int32{}
	m.FPR = [32]uint64{}
	m.GPR[isa.RegSP.Num()] = int32(isa.StackTop)
	m.GPR[isa.RegGP.Num()] = int32(isa.DataBase)
	m.FPSR = false
	m.halted = false
	m.Output.Reset()
	m.Stats = Stats{}
	m.TraceW = nil
	for i := range m.obs {
		m.obs[i] = nil
	}
	m.obs = m.obs[:0]
	for i := range m.engs {
		m.engs[i] = nil
	}
	m.engs = m.engs[:0]
	for i := range m.others {
		m.others[i] = nil
	}
	m.others = m.others[:0]
	m.eng = nil
	m.itrace = nil
	m.t = 0
	m.ready = [64]int64{}
	m.fpsrReady = 0
	m.lastWord = 0
	return nil
}

// Attach adds a timing-model observer. pipeline.Engine observers are
// recognized by type once here and driven through direct ExecOp calls
// in the run loop — a single attached engine gets the fully
// devirtualized fast path, and additional engines (multi-bus profiling
// attaches up to eight) still skip the interface dispatch and the
// per-instruction metadata synthesis. Only observers of other types go
// through the generic Exec interface.
func (m *Machine) Attach(o Observer) {
	m.obs = append(m.obs, o)
	if e, ok := o.(*pipeline.Engine); ok {
		m.engs = append(m.engs, e)
	} else {
		m.others = append(m.others, o)
	}
	if len(m.obs) == 1 && len(m.engs) == 1 {
		m.eng = m.engs[0]
	} else {
		m.eng = nil
	}
}

// EnableITrace keeps a ring buffer of the last n executed instructions
// for post-mortem dumps (n <= 0 disables it).
func (m *Machine) EnableITrace(n int) {
	if n <= 0 {
		m.itrace = nil
		return
	}
	m.itrace = telemetry.NewRing[TraceEntry](n)
}

// ITrace returns the retained instruction trace, oldest first (nil when
// tracing is not enabled).
func (m *Machine) ITrace() []TraceEntry {
	if m.itrace == nil {
		return nil
	}
	return m.itrace.Slice()
}

// RegisterMetrics publishes the machine's dynamic statistics into a
// telemetry registry as live gauges under prefix (e.g. "sim."). Reads
// happen at snapshot time, so the hot execution loop is untouched.
func (m *Machine) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	for _, f := range []struct {
		name string
		v    *int64
	}{
		{"instrs", &m.Stats.Instrs},
		{"interlocks", &m.Stats.Interlocks},
		{"loads", &m.Stats.Loads},
		{"stores", &m.Stats.Stores},
		{"pool_loads", &m.Stats.PoolLoads},
		{"fetch_words", &m.Stats.FetchWords},
		{"branches", &m.Stats.Branches},
		{"branches_taken", &m.Stats.Taken},
		{"jumps", &m.Stats.Jumps},
		{"nops", &m.Stats.Nops},
	} {
		v := f.v
		reg.RegisterFunc(prefix+f.name, func() int64 { return *v })
	}
	reg.RegisterFunc(prefix+"expected_cycles", m.ExpectedCycles)
}

// Halted reports whether the program executed trap 0.
func (m *Machine) Halted() bool { return m.halted }

func (m *Machine) fault(format string, args ...any) error {
	return &Fault{PC: m.PC, Msg: fmt.Sprintf(format, args...)}
}

// Run executes until trap 0 or maxInstrs instructions. It returns an
// error on any fault; exceeding maxInstrs is a fault (runaway program).
//
// The loop is the simulator's hot path: one indexed load into the
// shared decode table per instruction (undecodable words are sentinel
// ops in the same table, so there is no separate error lookup), the
// inline scoreboard in account, and a direct call into the single
// attached pipeline engine when one is present. None of it allocates.
func (m *Machine) Run(maxInstrs int64) error {
	ops := m.dec.Ops
	base, shift, ibMask := m.dec.Base, m.dec.Shift, m.ib-1
	pc, npc := m.PC, m.PC+m.ib

	// The per-instruction bookkeeping — path-length counters, the
	// sequential-fetch word count and the interlock scoreboard clock —
	// lives in locals for the duration of the loop and is flushed to
	// Stats on every exit. The scoreboard reads the table's precomputed
	// register sources, destination and result latency; the historical
	// per-instruction re-derivation from the decoded form is gone.
	instrs, nops, fetchWords, interlocks := m.Stats.Instrs, m.Stats.Nops, m.Stats.FetchWords, m.Stats.Interlocks
	t, lastWord, fpsrReady := m.t, m.lastWord, m.fpsrReady
	var runErr error

	for !m.halted {
		if instrs >= maxInstrs {
			m.PC = pc
			runErr = m.fault("instruction budget %d exhausted", maxInstrs)
			break
		}
		m.PC = pc
		// pc below base wraps the subtraction to a huge offset, so one
		// unsigned compare covers both ends of the text segment (and
		// lets the compiler drop the slice bounds check on ops).
		off := pc - base
		i := off >> shift
		if i >= uint32(len(ops)) || off&ibMask != 0 {
			runErr = m.fault("instruction fetch outside text (%#x)", pc)
			break
		}
		// Copy the micro-op out of the shared table: 24 bytes, and every
		// later field access is a provably-local read (which also keeps
		// the race detector from instrumenting each one individually).
		op := ops[i]
		if op.Flags&decode.FBad != 0 {
			runErr = m.fault("executing undecodable word: %v", m.dec.Errs[int(i)])
			break
		}
		if m.itrace != nil {
			m.itrace.Push(TraceEntry{Seq: instrs + 1, PC: pc, In: op.In})
		}
		if m.TraceW != nil {
			fmt.Fprintf(m.TraceW, "%10d  %06x  %s\n", instrs+1, pc, op.In)
		}

		instrs++
		if op.Flags&decode.FNop != 0 {
			nops++
		}
		// Word-granularity instruction traffic (Table 8's measure): a
		// new 32-bit word is fetched whenever execution leaves the
		// current word, sequentially or by branching.
		if w := pc&^3 + 1; w != lastWord {
			fetchWords++
			lastWord = w
		}
		// Scoreboard: stall until all sources are ready.
		issue := t
		if op.U1 != decode.None {
			if rt := m.ready[op.U1]; rt > issue {
				issue = rt
			}
		}
		if op.U2 != decode.None {
			if rt := m.ready[op.U2]; rt > issue {
				issue = rt
			}
		}
		if op.Flags&decode.FRDSR != 0 && fpsrReady > issue {
			issue = fpsrReady
		}
		interlocks += issue - t
		t = issue + 1
		if op.Flags&decode.FFCmp != 0 {
			fpsrReady = issue + LatFCmp
		}
		if op.Def != decode.None {
			m.ready[op.Def] = issue + int64(op.Lat)
		}

		target, taken, err := m.exec(op)
		if err != nil {
			runErr = err
			break
		}
		if m.eng != nil {
			m.eng.ExecOp(pc, op)
		} else {
			for _, e := range m.engs {
				e.ExecOp(pc, op)
			}
			for _, o := range m.others {
				o.Exec(pc, op.In)
			}
		}
		if taken {
			pc, npc = npc, target
		} else {
			pc, npc = npc, npc+m.ib
		}
	}
	m.Stats.Instrs, m.Stats.Nops, m.Stats.FetchWords, m.Stats.Interlocks = instrs, nops, fetchWords, interlocks
	m.t, m.lastWord, m.fpsrReady = t, lastWord, fpsrReady
	if runErr == nil {
		m.PC = pc
	}
	return runErr
}

// ExpectedCycles returns the scoreboard's ideal cycle count: one cycle per
// instruction plus interlocks (no memory-system penalties).
func (m *Machine) ExpectedCycles() int64 { return m.Stats.Instrs + m.Stats.Interlocks }

// --- register and memory access --------------------------------------------

func (m *Machine) rdG(r isa.Reg) int32 {
	if m.r0Zero && r == isa.RegCC {
		return 0
	}
	return m.GPR[r.Num()]
}

func (m *Machine) wrG(r isa.Reg, v int32) {
	if m.r0Zero && r == isa.RegCC {
		return
	}
	m.GPR[r.Num()] = v
}

func (m *Machine) checkAddr(addr, size uint32) error {
	if addr+size > uint32(len(m.Mem)) || addr+size < addr {
		return m.fault("memory access %#x size %d out of range", addr, size)
	}
	if size > 1 && addr%size != 0 {
		return m.fault("unaligned %d-byte access at %#x", size, addr)
	}
	return nil
}

func (m *Machine) load32(addr uint32) (uint32, error) {
	if err := m.checkAddr(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.Mem[addr:]), nil
}

func (m *Machine) store32(addr uint32, v uint32) error {
	if err := m.checkAddr(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], v)
	return nil
}

// ReadCString reads a NUL-terminated string from simulated memory (used by
// the puts trap and by tests).
func (m *Machine) ReadCString(addr uint32) (string, error) {
	var b []byte
	for {
		if addr >= uint32(len(m.Mem)) {
			return "", m.fault("string read out of range at %#x", addr)
		}
		c := m.Mem[addr]
		if c == 0 {
			return string(b), nil
		}
		b = append(b, c)
		addr++
		if len(b) > 1<<20 {
			return "", m.fault("unterminated string")
		}
	}
}

func f32(bits uint64) float32 { return math.Float32frombits(uint32(bits)) }
func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func b32(v float32) uint64    { return uint64(math.Float32bits(v)) }
func b64(v float64) uint64    { return math.Float64bits(v) }
func (m *Machine) notifyLoad(addr, size uint32) {
	m.Stats.Loads++
	if addr >= isa.TextBase && addr < isa.DataBase {
		m.Stats.PoolLoads++
	}
	if m.eng != nil {
		m.eng.Load(addr, size)
		return
	}
	for _, e := range m.engs {
		e.Load(addr, size)
	}
	for _, o := range m.others {
		o.Load(addr, size)
	}
}
func (m *Machine) notifyStore(addr, size uint32) {
	m.Stats.Stores++
	if addr < m.dirtyLo {
		m.dirtyLo = addr
	}
	if addr+size > m.dirtyHi {
		m.dirtyHi = addr + size
	}
	if m.eng != nil {
		m.eng.Store(addr, size)
		return
	}
	for _, e := range m.engs {
		e.Store(addr, size)
	}
	for _, o := range m.others {
		o.Store(addr, size)
	}
}
