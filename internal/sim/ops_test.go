package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// Differential op-semantics tests: each register-register ALU operation
// is executed on random operands on both encodings and compared against
// Go's int32 semantics.

type opCase struct {
	mnemonic string
	model    func(a, b int32) int32
}

var rrOps = []opCase{
	{"add", func(a, b int32) int32 { return a + b }},
	{"sub", func(a, b int32) int32 { return a - b }},
	{"and", func(a, b int32) int32 { return a & b }},
	{"or", func(a, b int32) int32 { return a | b }},
	{"xor", func(a, b int32) int32 { return a ^ b }},
	{"shl", func(a, b int32) int32 { return a << (uint32(b) & 31) }},
	{"shr", func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) }},
	{"shra", func(a, b int32) int32 { return a >> (uint32(b) & 31) }},
}

func TestALUSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, op := range rrOps {
		for trial := 0; trial < 8; trial++ {
			a := int32(rng.Uint32())
			b := int32(rng.Uint32())
			if op.mnemonic == "shl" || op.mnemonic == "shr" || op.mnemonic == "shra" {
				b = int32(rng.Intn(32))
			}
			src := fmt.Sprintf(`
	.text
_start:
	la %s
	la %s
	%s r4, r4, r5
	mv r3, r4
	trap 1
	trap 0
	nop
	.pool
`, fmt.Sprintf("r4, %d", a), fmt.Sprintf("r5, %d", b), op.mnemonic)
			want := fmt.Sprintf("%d", op.model(a, b))
			for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
				m := run(t, src, spec)
				if got := m.Output.String(); got != want {
					t.Errorf("%s(%d,%d) on %s = %s, want %s",
						op.mnemonic, a, b, spec, got, want)
				}
			}
		}
	}
}

func TestCompareSemanticsAllConditions(t *testing.T) {
	pairs := [][2]int32{
		{0, 0}, {1, 2}, {2, 1}, {-1, 1}, {1, -1},
		{-5, -5}, {-2147483648, 2147483647}, {2147483647, -2147483648},
	}
	conds := []isa.Cond{isa.LT, isa.LTU, isa.LE, isa.LEU, isa.EQ, isa.NE,
		isa.GT, isa.GTU, isa.GE, isa.GEU}
	for _, p := range pairs {
		for _, cond := range conds {
			want := "0"
			if cond.EvalInt(p[0], p[1]) {
				want = "1"
			}
			// DLXe has every condition natively.
			src := fmt.Sprintf(`
	.text
_start:
	la r4, %d
	la r5, %d
	cmp.%s r3, r4, r5
	trap 1
	trap 0
	nop
	.pool
`, p[0], p[1], cond)
			m := run(t, src, isa.DLXe())
			if got := m.Output.String(); got != want {
				t.Errorf("cmp.%s(%d,%d) = %s, want %s", cond, p[0], p[1], got, want)
			}
			// D16 supports the lt/le/eq family directly (the compiler
			// swaps operands for gt-forms).
			if cond.D16Legal() {
				srcD := fmt.Sprintf(`
	.text
_start:
	la r4, %d
	la r5, %d
	cmp.%s r0, r4, r5
	mv r3, r0
	trap 1
	trap 0
	nop
	.pool
`, p[0], p[1], cond)
				m := run(t, srcD, isa.D16())
				if got := m.Output.String(); got != want {
					t.Errorf("D16 cmp.%s(%d,%d) = %s, want %s", cond, p[0], p[1], got, want)
				}
			}
		}
	}
}

func TestShiftAmountMasking(t *testing.T) {
	// Register shift amounts use only the low five bits.
	src := `
	.text
_start:
	mvi r4, 1
	la  r5, 33
	shl r4, r4, r5
	mv  r3, r4
	trap 1
	trap 0
	nop
	.pool
`
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		if got := m.Output.String(); got != "2" {
			t.Errorf("%s: 1 << 33 = %s, want 2 (amount masked)", spec, got)
		}
	}
}

func TestMVHIAndORICompose(t *testing.T) {
	src := `
	.text
_start:
	mvhi r4, 4660        ; 0x1234
	ori  r4, r4, 22136   ; 0x5678
	mv   r3, r4
	trap 1
	trap 0
	nop
`
	m := run(t, src, isa.DLXe())
	if got := m.Output.String(); got != "305419896" { // 0x12345678
		t.Errorf("mvhi/ori = %s, want 305419896", got)
	}
}

func TestD16NegInv(t *testing.T) {
	src := `
	.text
_start:
	mvi r4, 25
	neg r4
	mv  r3, r4
	trap 1
	mvi r3, 32
	trap 2
	mvi r4, 25
	inv r4
	mv  r3, r4
	trap 1
	trap 0
	nop
`
	m := run(t, src, isa.D16())
	if got := m.Output.String(); got != "-25 -26" {
		t.Errorf("neg/inv = %q, want %q", got, "-25 -26")
	}
}

func TestFloatConversionSemantics(t *testing.T) {
	// Round-trip int -> double -> single -> int, and truncation toward
	// zero for negative values.
	src := `
	.text
_start:
	la    r4, -7
	si2df f1, r4
	df2sf f2, f1
	sf2si r3, f2
	trap 1
	mvi r3, 32
	trap 2
	la    r4, 1000001
	si2sf f3, r4      ; not exactly representable in float32
	sf2si r3, f3
	trap 1
	trap 0
	nop
	.pool
`
	want := fmt.Sprintf("-7 %d", int32(float32(1000001)))
	for _, spec := range bothSpecs() {
		m := run(t, src, spec)
		if got := m.Output.String(); got != want {
			t.Errorf("%s: conversions = %q, want %q", spec, got, want)
		}
	}
}

func TestLDCAlignmentSemantics(t *testing.T) {
	// An LDC at an odd halfword address still loads relative to the
	// word-aligned PC; exercise both alignments.
	src := `
	.text
_start:
	nop              ; shifts the next ldc to pc%4 == 2
	ldc r0, =123456
	mv  r3, r0
	trap 1
	mvi r3, 32
	trap 2
	ldc r0, =654321  ; this one at pc%4 == 0
	mv  r3, r0
	trap 1
	trap 0
	nop
	.pool
`
	m := run(t, src, isa.D16())
	if got := m.Output.String(); got != "123456 654321" {
		t.Errorf("ldc alignment: %q", got)
	}
}

func TestStatsTakenBranches(t *testing.T) {
	src := `
	.text
_start:
	mvi r4, 3
	mv  r0, r4
loop:
	subi r4, r4, 1
	mv   r0, r4
	bnz  r0, loop
	nop
	trap 0
	nop
`
	m := run(t, src, isa.D16())
	if m.Stats.Branches != 3 || m.Stats.Taken != 2 {
		t.Errorf("branches %d taken %d, want 3/2", m.Stats.Branches, m.Stats.Taken)
	}
}
