package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

// loopProgram runs a short store/load/branch loop: enough dynamic
// instructions to exercise the scoreboard, memory dirtying and the
// observer paths, short enough for alloc-counting runs.
const loopBody = `
	.text
	.global _start
_start:
	mvi r4, 200
	mvi r6, 0
.Lloop:
	st r4, 0(gp)
	ld r5, 0(gp)
	add r6, r6, r5
	subi r4, r4, 1
	mv CC, r4
	bnz CC, .Lloop
	nop
PRINT	trap 0
	nop
	.pool
	.data
acc:	.word 0
`

// loopProgram prints its checksum (exercising Output across resets);
// quietLoopProgram is the print-free variant for allocation counting
// (formatting the checksum boxes an int — a legitimate one-off cost
// outside the hot loop).
func loopProgram(spec *isa.Spec) string {
	return strings.Replace(prep(loopBody, spec), "PRINT", "mv r3, r6\n\ttrap 1\n", 1)
}

func quietLoopProgram(spec *isa.Spec) string {
	return strings.Replace(prep(loopBody, spec), "PRINT", "", 1)
}

func assemble(t *testing.T, src string, spec *isa.Spec) *prog.Image {
	t.Helper()
	img, err := asm.Assemble("p.s", src, spec)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// stateDiff compares the complete architectural and bookkeeping state of
// two machines; "" means indistinguishable.
func stateDiff(a, b *Machine) string {
	switch {
	case !bytes.Equal(a.Mem, b.Mem):
		for i := range a.Mem {
			if a.Mem[i] != b.Mem[i] {
				return fmt.Sprintf("Mem[%#x]: %#x vs %#x", i, a.Mem[i], b.Mem[i])
			}
		}
	case a.GPR != b.GPR:
		return fmt.Sprintf("GPR: %v vs %v", a.GPR, b.GPR)
	case a.FPR != b.FPR:
		return fmt.Sprintf("FPR: %v vs %v", a.FPR, b.FPR)
	case a.FPSR != b.FPSR, a.PC != b.PC, a.Enc != b.Enc, a.r0Zero != b.r0Zero, a.halted != b.halted:
		return fmt.Sprintf("control state: PC %#x/%#x halted %v/%v", a.PC, b.PC, a.halted, b.halted)
	case a.Stats != b.Stats:
		return fmt.Sprintf("Stats: %+v vs %+v", a.Stats, b.Stats)
	case a.Output.String() != b.Output.String():
		return fmt.Sprintf("Output: %q vs %q", a.Output.String(), b.Output.String())
	case a.dec != b.dec:
		return "decode tables differ"
	case a.t != b.t, a.ready != b.ready, a.fpsrReady != b.fpsrReady, a.lastWord != b.lastWord:
		return "scoreboard state differs"
	}
	return ""
}

// TestPooledResetMatchesFresh: a machine that ran one program and was
// reset onto another is byte-for-byte identical to a freshly constructed
// machine — before the run and after it.
func TestPooledResetMatchesFresh(t *testing.T) {
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		img := assemble(t, loopProgram(spec), spec)
		dirty := assemble(t, quietLoopProgram(spec), spec)

		used, err := New(dirty)
		if err != nil {
			t.Fatal(err)
		}
		if err := used.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if err := used.Reset(img); err != nil {
			t.Fatal(err)
		}
		fresh, err := New(img)
		if err != nil {
			t.Fatal(err)
		}
		if d := stateDiff(used, fresh); d != "" {
			t.Fatalf("%v: reset state differs from fresh: %s", spec.Enc, d)
		}
		if err := used.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if d := stateDiff(used, fresh); d != "" {
			t.Fatalf("%v: post-run state differs: %s", spec.Enc, d)
		}
	}
}

// TestAcquireReleaseRoundTrip: Acquire after Release reuses the machine
// (same memory) and still matches a fresh construction.
func TestAcquireReleaseRoundTrip(t *testing.T) {
	img := assemble(t, loopProgram(isa.D16()), isa.D16())
	m, err := Acquire(img)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(pipeline.New(pipeline.Config{BusBytes: 4}))
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	mem := &m.Mem[0]
	Release(m)

	got, err := Acquire(img)
	if err != nil {
		t.Fatal(err)
	}
	defer Release(got)
	if &got.Mem[0] != mem {
		// Another goroutine's GC may legitimately have dropped the pooled
		// machine; the state check below is the real contract.
		t.Log("pool did not return the released machine (GC'd); checking state only")
	}
	if len(got.obs) != 0 || got.eng != nil {
		t.Fatal("acquired machine retains previous observers")
	}
	fresh, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if d := stateDiff(got, fresh); d != "" {
		t.Fatalf("acquired state differs from fresh: %s", d)
	}
}

// TestRunDoesNotAllocate: the hot loop — fetch, scoreboard, exec, and
// the devirtualized engine notifications — performs zero steady-state
// allocations per run.
func TestRunDoesNotAllocate(t *testing.T) {
	img := assemble(t, quietLoopProgram(isa.D16()), isa.D16())
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	eng := pipeline.New(pipeline.Config{BusBytes: 4, WaitStates: 1})
	// Warm up: first run grows the Output buffer and observer slice once.
	m.Attach(eng)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := m.Reset(img); err != nil {
			t.Fatal(err)
		}
		m.Attach(eng)
		if err := m.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Run allocates %.1f times per run, want 0", allocs)
	}
}
