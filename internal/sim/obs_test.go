package sim

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

const callProgram = `
	.text
	.global _start
_start:
	mvi r4, 5
.Lloop:
	call work
	nop
	subi r4, r4, 1
	mv   r0, r4
	bnz  r0, .Lloop
	nop
	trap 0
	nop
	.pool
work:
	subi sp, sp, 8
	st r1, 0(sp)
	call leaf
	nop
	ld r1, 0(sp)
	nop
	addi sp, sp, 8
	ret
	nop
leaf:
	mvi r5, 2
	ret
	nop
`

func runProfiled(t *testing.T, src string) (*Machine, *Profile) {
	t.Helper()
	img, err := asm.Assemble("p.s", src, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile(img)
	m.Attach(p)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m, p
}

// TestFoldedStackTotal: every executed instruction is exactly one folded
// sample, so the folded counts sum to the path length.
func TestFoldedStackTotal(t *testing.T) {
	m, p := runProfiled(t, callProgram)
	var sum int64
	folded := p.Folded()
	for _, line := range strings.Split(strings.TrimSpace(folded), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed folded line %q", line)
		}
		var n int64
		for _, c := range fields[1] {
			n = n*10 + int64(c-'0')
		}
		sum += n
	}
	if sum != m.Stats.Instrs {
		t.Errorf("folded samples sum to %d, path length is %d\n%s", sum, m.Stats.Instrs, folded)
	}
	// The nested call shows up as a three-deep stack.
	if !strings.Contains(folded, "_start;work;leaf ") {
		t.Errorf("missing nested stack in folded output:\n%s", folded)
	}
}

func TestCallGraphEdges(t *testing.T) {
	_, p := runProfiled(t, callProgram)
	want := map[[2]string]int64{
		{"_start", "work"}: 5,
		{"work", "leaf"}:   5,
	}
	got := map[[2]string]int64{}
	for _, e := range p.Edges() {
		got[[2]string{e.Caller, e.Callee}] = e.Count
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("edge %s->%s = %d, want %d", k[0], k[1], got[k], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("unexpected extra edges: %v", p.Edges())
	}
}

// TestProfileDeterministic: symbol ties at one address and map-ordered
// construction must not leak into the output.
func TestProfileDeterministic(t *testing.T) {
	src := strings.Replace(callProgram, "work:", "work:\nwork_alias:", 1)
	var first, firstFolded string
	for i := 0; i < 5; i++ {
		_, p := runProfiled(t, src)
		if i == 0 {
			first, firstFolded = p.String(), p.Folded()
			continue
		}
		if p.String() != first {
			t.Fatalf("profile output varies across runs:\n%s\nvs\n%s", first, p.String())
		}
		if p.Folded() != firstFolded {
			t.Fatalf("folded output varies across runs:\n%s\nvs\n%s", firstFolded, p.Folded())
		}
	}
}

// TestProfileFiltersInternalSymbols: dot-prefixed labels (.L blocks,
// pool/literal markers) never appear as profile rows.
func TestProfileFiltersInternalSymbols(t *testing.T) {
	_, p := runProfiled(t, callProgram)
	for _, e := range p.Top(0) {
		if strings.HasPrefix(e.Name, ".") {
			t.Errorf("internal symbol %q leaked into the profile", e.Name)
		}
	}
	for i := 0; i < p.tab.Len(); i++ {
		if n := p.tab.Name(i); strings.HasPrefix(n, ".") {
			t.Errorf("internal symbol %q retained", n)
		}
	}
}

func TestITraceRing(t *testing.T) {
	img, err := asm.Assemble("p.s", callProgram, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableITrace(4)
	var full strings.Builder
	m.TraceW = &full
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	tr := m.ITrace()
	if len(tr) != 4 {
		t.Fatalf("ring kept %d entries, want 4", len(tr))
	}
	// The last retained instruction is the halting trap, and sequence
	// numbers are consecutive.
	last := tr[len(tr)-1]
	if last.In.Op != isa.TRAP {
		t.Errorf("last traced instruction is %s, want trap", last.In)
	}
	if last.Seq != m.Stats.Instrs {
		t.Errorf("last seq %d != path length %d", last.Seq, m.Stats.Instrs)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Seq != tr[i-1].Seq+1 {
			t.Errorf("non-consecutive ring entries: %v", tr)
		}
	}
	// Full-trace mode logged every instruction.
	lines := strings.Count(full.String(), "\n")
	if int64(lines) != m.Stats.Instrs {
		t.Errorf("full trace has %d lines, path length is %d", lines, m.Stats.Instrs)
	}
}

// TestITraceCapturesFaultingInstruction: the ring records before
// execution, so the instruction that faults is the last entry.
func TestITraceCapturesFaultingInstruction(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi r4, 3
	ld r5, 0(r4)
	trap 0
	nop
`
	img, err := asm.Assemble("p.s", src, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableITrace(8)
	if err := m.Run(100); err == nil {
		t.Fatal("unaligned load did not fault")
	}
	tr := m.ITrace()
	if len(tr) == 0 || tr[len(tr)-1].In.Op != isa.LD {
		t.Errorf("faulting load missing from ring: %v", tr)
	}
}
