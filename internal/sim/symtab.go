package sim

import "repro/internal/prog"

// SymTable is the address→function-symbol lookup table shared by the
// instruction profiler (Profile) and the pipeline cycle accountant. The
// implementation lives in prog (the package that owns the symbol data)
// so that timing models can fold attributions per function without
// importing the simulator; this alias keeps the historical sim.SymTable
// name working for existing callers.
type SymTable = prog.SymTable

// NewSymTable builds the lookup table over an image's text symbols.
func NewSymTable(img *prog.Image) *SymTable { return prog.NewSymTable(img) }
