package sim

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func TestProfileAttribution(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi r4, 50
hot:
	call work
	nop
	subi r4, r4, 1
	mv   r0, r4
	bnz  r0, hot
	nop
	trap 0
	nop
	.pool
work:
	mvi r5, 3
inner:
	subi r5, r5, 1
	mv   r0, r5
	bnz  r0, inner
	nop
	ret
	nop
`
	img, err := asm.Assemble("p.s", src, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile(img)
	m.Attach(p)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	top := p.Top(2)
	if len(top) < 2 {
		t.Fatalf("profile rows: %v", top)
	}
	// work's inner loop dominates (3 iterations per call, 50 calls).
	names := map[string]bool{}
	for _, e := range top {
		names[e.Name] = true
	}
	if !names["inner"] && !names["work"] {
		t.Errorf("hot function missing from top-2: %v", top)
	}
	if !strings.Contains(p.String(), "%") {
		t.Error("String output malformed")
	}
	// Percentages sum to <= 100.
	sum := 0.0
	for _, e := range p.Top(0) {
		sum += e.Percent
	}
	if sum < 99 || sum > 101 {
		t.Errorf("profile percentages sum to %.1f", sum)
	}
}
