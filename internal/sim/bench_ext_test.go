package sim_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// The throughput benchmarks mirror perfgate's sim/throughput and
// sim/step gates in `go test -bench` form so the hot loop can be
// profiled in place (-cpuprofile) without running the full harness.

func compileQueens(b *testing.B) *mcc.Compiled {
	b.Helper()
	prog := bench.ByName("queens")
	if prog == nil {
		b.Fatal("benchmark queens missing")
	}
	c, err := mcc.Compile(prog.Name+".mc", prog.Source, isa.D16())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkRun(b *testing.B) {
	c := compileQueens(b)
	max := bench.ByName("queens").MaxInstrs
	b.ReportAllocs()
	var instrs int64
	for i := 0; i < b.N; i++ {
		m, err := sim.Acquire(c.Image)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(max); err != nil {
			b.Fatal(err)
		}
		instrs += m.Stats.Instrs
		sim.Release(m)
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkRunEngine(b *testing.B) {
	c := compileQueens(b)
	max := bench.ByName("queens").MaxInstrs
	b.ReportAllocs()
	var instrs int64
	for i := 0; i < b.N; i++ {
		m, err := sim.Acquire(c.Image)
		if err != nil {
			b.Fatal(err)
		}
		m.Attach(pipeline.New(pipeline.Config{BusBytes: 4, WaitStates: 1}))
		if err := m.Run(max); err != nil {
			b.Fatal(err)
		}
		instrs += m.Stats.Instrs
		sim.Release(m)
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}
