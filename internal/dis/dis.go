// Package dis disassembles linked images back to the canonical assembly
// syntax, with an annotated listing form for debugging compiled code.
//
// Every successfully decoded instruction renders in a syntax the
// assembler accepts; the round-trip (decode → print → assemble →
// encode) reproduces the original bits, which the tests exploit as a
// cross-check of the whole binary toolchain.
package dis

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/d16"
	"repro/internal/dlxe"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Entry is one disassembled text-segment slot.
type Entry struct {
	Addr uint32
	// Raw is the instruction word (16 or 32 bits, in the low bits).
	Raw uint32
	// In is the decoded instruction; valid only when Err is nil.
	In isa.Instr
	// Err is the decode failure (literal-pool words, padding).
	Err error
}

// Text decodes the whole text segment.
func Text(img *prog.Image) []Entry {
	ib := img.Enc.InstrBytes()
	var out []Entry
	for off := uint32(0); off+ib <= uint32(len(img.Text)); off += ib {
		addr := isa.TextBase + off
		e := Entry{Addr: addr}
		if img.Enc == isa.EncD16 {
			w := binary.LittleEndian.Uint16(img.Text[off:])
			e.Raw = uint32(w)
			e.In, e.Err = d16.DecodeV(w, addr, d16.Variant{Cmp8: img.Cmp8})
		} else {
			w := binary.LittleEndian.Uint32(img.Text[off:])
			e.Raw = w
			e.In, e.Err = dlxe.Decode(w, addr)
		}
		out = append(out, e)
	}
	return out
}

// Listing renders an annotated disassembly: addresses, raw words,
// symbol labels, decoded instructions, and branch-target annotations.
func Listing(img *prog.Image) string {
	// SymbolNames is address- then name-sorted, so co-addressed labels
	// print in a stable order.
	labels := map[uint32][]string{}
	for _, name := range img.SymbolNames() {
		addr := img.Symbols[name]
		labels[addr] = append(labels[addr], name)
	}
	var b strings.Builder
	width := int(img.Enc.InstrBytes()) * 2
	for _, e := range Text(img) {
		for _, l := range labels[e.Addr] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %06x  %0*x  ", e.Addr, width, e.Raw)
		if e.Err != nil {
			fmt.Fprintf(&b, ".word %#x\n", e.Raw)
			continue
		}
		b.WriteString(e.In.String())
		if target, ok := branchTarget(e.In, e.Addr); ok {
			if sym := img.SymbolAt(target); sym != "" {
				fmt.Fprintf(&b, "\t; -> %#x (%s)", target, sym)
			} else {
				fmt.Fprintf(&b, "\t; -> %#x", target)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// branchTarget resolves the absolute target of PC-relative control
// transfers and literal loads.
func branchTarget(in isa.Instr, pc uint32) (uint32, bool) {
	switch {
	case in.Op.IsBranch(), in.Op == isa.LDC,
		in.Op.IsJump() && in.HasImm:
		return uint32(int64(pc) + int64(in.Imm)), true
	}
	return 0, false
}
