package dis

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/d16"
	"repro/internal/dlxe"
	"repro/internal/isa"
	"repro/internal/mcc"
)

func decodeAt(w uint32, addr uint32, spec *isa.Spec) (isa.Instr, error) {
	if spec.Enc == isa.EncD16 {
		return d16.Decode(uint16(w), addr)
	}
	return dlxe.Decode(w, addr)
}

func TestListingShape(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi r3, 5
	mv  r0, r3
	bz  r0, done
	nop
	addi r3, r3, 1
done:
	trap 0
	nop
`
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		img, err := asm.Assemble("t.s", src, spec)
		if err != nil {
			t.Fatal(err)
		}
		lst := Listing(img)
		if !strings.Contains(lst, "_start:") {
			t.Errorf("%s: listing lacks the _start label:\n%s", spec, lst)
		}
		if !strings.Contains(lst, "mvi r3, 5") {
			t.Errorf("%s: listing lacks the mvi:\n%s", spec, lst)
		}
		if !strings.Contains(lst, "(done)") {
			t.Errorf("%s: branch target not annotated:\n%s", spec, lst)
		}
	}
}

func TestTextDecodesEveryInstruction(t *testing.T) {
	b := bench.ByName("queens")
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		c, err := mcc.Compile("q.mc", b.Source, spec)
		if err != nil {
			t.Fatal(err)
		}
		entries := Text(c.Image)
		want := len(c.Image.Text) / int(spec.InstrBytes())
		if len(entries) != want {
			t.Errorf("%s: %d entries, want %d", spec, len(entries), want)
		}
	}
}

// TestRoundTripWholeSuite is the toolchain cross-check: every decoded
// instruction of every compiled benchmark, printed in canonical syntax
// and re-assembled at an address with matching alignment, must produce
// the identical bits. This exercises decoder, printer, assembler parser
// and encoder against each other across millions of real instructions.
func TestRoundTripWholeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite round trip is slow")
	}
	for _, b := range bench.All() {
		for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
			c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, spec, err)
			}
			checked := 0
			for _, e := range Text(c.Image) {
				if e.Err != nil {
					continue // literal-pool word or padding
				}
				// Pad with nops so the re-assembled instruction lands at
				// an address with the same word alignment (LDC encodes
				// relative to pc & ~3).
				pad := int(e.Addr%4) / int(spec.InstrBytes())
				var src strings.Builder
				src.WriteString(".text\n")
				for i := 0; i < pad; i++ {
					src.WriteString("\tnop\n")
				}
				src.WriteString("\t" + e.In.String() + "\n")
				img, err := asm.Assemble("rt.s", src.String(), spec)
				if err != nil {
					t.Fatalf("%s/%s @%#x: %q does not re-assemble: %v",
						b.Name, spec, e.Addr, e.In.String(), err)
				}
				off := pad * int(spec.InstrBytes())
				var got uint32
				if spec.Enc == isa.EncD16 {
					got = uint32(binary.LittleEndian.Uint16(img.Text[off:]))
				} else {
					got = binary.LittleEndian.Uint32(img.Text[off:])
				}
				if got != e.Raw {
					// Literal-pool data can decode as a valid-looking
					// instruction with junk in unused fields; accept the
					// round trip when the bits are semantically the same
					// instruction.
					in2, err := decodeAt(got, e.Addr, spec)
					if err != nil || in2 != e.In {
						t.Fatalf("%s/%s @%#x: %q -> %#x, want %#x",
							b.Name, spec, e.Addr, e.In.String(), got, e.Raw)
					}
				}
				checked++
			}
			if checked < 100 {
				t.Fatalf("%s/%s: only %d instructions checked", b.Name, spec, checked)
			}
		}
	}
}
