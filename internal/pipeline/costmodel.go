package pipeline

import "repro/internal/isa"

// ResultLatency is the engine's charge rule for operand readiness: the
// number of cycles after issue before op's result is architecturally
// available to a dependent instruction. The rule itself lives in
// isa.ResultLatency — the single source of truth shared by the
// simulator's scoreboard, this engine's interlock model, the predecoded
// per-instruction metadata (internal/decode) and the static cost
// analyzer (internal/static), so none of them can disagree on a latency.
//
// Loads return isa.LatLoad — the base load-use window; the engine layers
// bus latency and port contention on top of it in dataAccess. FP
// compares return isa.LatFCmp — the window an rdsr waits on through the
// FP status register rather than a general register.
func ResultLatency(op isa.Op) int64 { return isa.ResultLatency(op) }
