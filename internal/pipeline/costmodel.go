package pipeline

import (
	"repro/internal/isa"
	"repro/internal/sim"
)

// ResultLatency is the engine's charge rule for operand readiness: the
// number of cycles after issue before op's result is architecturally
// available to a dependent instruction. It is the single source of truth
// shared by Exec's interlock model and the static cost analyzer
// (internal/static), so the two can never disagree on a latency.
//
// Loads return sim.LatLoad — the base load-use window; the engine layers
// bus latency and port contention on top of it in dataAccess. FP
// compares return sim.LatFCmp — the window an rdsr waits on through the
// FP status register rather than a general register.
func ResultLatency(op isa.Op) int64 {
	switch {
	case op.IsLoad():
		return sim.LatLoad
	case op == isa.FADDS, op == isa.FSUBS, op == isa.FADDD,
		op == isa.FSUBD, op == isa.FNEGS, op == isa.FNEGD:
		return sim.LatFAdd
	case op == isa.FMULS, op == isa.FMULD:
		return sim.LatFMul
	case op == isa.FDIVS:
		return sim.LatFDivS
	case op == isa.FDIVD:
		return sim.LatFDivD
	case op.IsFCmp():
		return sim.LatFCmp
	case op >= isa.CVTSISF && op <= isa.CVTSFSI:
		return sim.LatConvert
	}
	return sim.LatNormal
}
