package pipeline_test

import (
	"repro/internal/pipeline"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/sim"
)

func runWith(t *testing.T, src string, spec *isa.Spec, cfg pipeline.Config) (*pipeline.Engine, *memsys.NoCache, *sim.Machine) {
	t.Helper()
	img, err := asm.Assemble("t.s", src, spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(img)
	if err != nil {
		t.Fatal(err)
	}
	e := pipeline.New(cfg)
	nc := memsys.NewNoCache(cfg.BusBytes)
	m.Attach(e)
	m.Attach(nc)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return e, nc, m
}

const straightLine = `
	.text
_start:
	mvi r3, 1
	mvi r4, 2
	mvi r5, 3
	mvi r6, 4
	add r3, r3, r4
	add r5, r5, r6
	trap 0
	nop
`

func TestZeroWaitStatesMatchesIdeal(t *testing.T) {
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		e, _, m := runWith(t, straightLine, spec, pipeline.Config{BusBytes: 4, WaitStates: 0})
		// With zero wait states and no hazards, one instruction per cycle
		// plus the pipeline drain.
		want := m.Stats.Instrs + 4
		if e.Cycles() != want {
			t.Errorf("%s: cycles = %d, want %d", spec, e.Cycles(), want)
		}
		if e.Interlock != 0 || e.FetchStall != 0 {
			t.Errorf("%s: unexpected stalls %d/%d", spec, e.Interlock, e.FetchStall)
		}
	}
}

func TestFetchStallsScaleWithWaitStates(t *testing.T) {
	// On DLXe with a 32-bit bus every instruction is a fetch request, so
	// each wait state costs about one cycle per instruction.
	e0, _, m := runWith(t, straightLine, isa.DLXe(), pipeline.Config{BusBytes: 4, WaitStates: 0})
	e2, _, _ := runWith(t, straightLine, isa.DLXe(), pipeline.Config{BusBytes: 4, WaitStates: 2})
	extra := e2.Cycles() - e0.Cycles()
	if want := 2 * m.Stats.Instrs; extra != want {
		t.Errorf("extra cycles = %d, want %d", extra, want)
	}
	// D16 packs two instructions per fetch: about half the penalty.
	d0, _, md := runWith(t, straightLine, isa.D16(), pipeline.Config{BusBytes: 4, WaitStates: 0})
	d2, _, _ := runWith(t, straightLine, isa.D16(), pipeline.Config{BusBytes: 4, WaitStates: 2})
	dExtra := d2.Cycles() - d0.Cycles()
	if dExtra >= extra {
		t.Errorf("D16 fetch penalty (%d) should be below DLXe's (%d)", dExtra, extra)
	}
	_ = md
}

func TestLoadUseStall(t *testing.T) {
	src := `
	.text
_start:
	ld  r4, gprel(w)(gp)
	add r5, r4, r4
	trap 0
	nop
	.data
w: .word 7
`
	e, _, m := runWith(t, src, isa.DLXe(), pipeline.Config{BusBytes: 4, WaitStates: 0})
	// ld(1) add(stall 1) trap nop => instrs + 1 stall + drain.
	if want := m.Stats.Instrs + 1 + 4; e.Cycles() != want {
		t.Errorf("cycles = %d, want %d", e.Cycles(), want)
	}
	if e.Interlock != 1 {
		t.Errorf("interlock = %d, want 1", e.Interlock)
	}
}

// TestEngineNearFormula is the paper's footnote-2 claim: the closed-form
// estimate tracks the pipeline model closely (their difference: <1%;
// we accept a few percent since the engine lets fetch and data requests
// overlap execution that the formula serializes).
func TestEngineNearFormula(t *testing.T) {
	// A loopy program with loads, stores and branches.
	src := `
	.text
_start:
	mvi r4, 0
	mvi r5, 50
	mvi r6, 0
loop:
	shli r7, r4, 2
	addi r7, r7, 0
	add r7, r7, r13
	ld  r8, 0(r7)
	add r6, r6, r8
	st  r6, 0(r7)
	addi r4, r4, 1
	cmp.lt r7, r4, r5
	bnz r7, loop
	nop
	trap 0
	nop
	.data
arr: .space 256
`
	for _, l := range []int64{0, 1, 2, 3} {
		e, nc, m := runWith(t, src, isa.DLXe(), pipeline.Config{BusBytes: 4, WaitStates: l})
		formula := nc.Cycles(m.Stats.Instrs, m.Stats.Interlocks, l)
		engine := e.Cycles()
		diff := float64(engine-formula) / float64(formula)
		if diff < 0 {
			diff = -diff
		}
		// The formula assumes memory latency never overlaps execution;
		// the engine overlaps fetch latency with interlock stalls, so it
		// runs somewhat faster at high wait states. Require agreement
		// within 20% and the paper's direction: formula pessimistic.
		if diff > 0.20 {
			t.Errorf("l=%d: engine %d vs formula %d (%.1f%% apart)",
				l, engine, formula, diff*100)
		}
		if engine > formula+formula/50 {
			t.Errorf("l=%d: engine %d exceeds the pessimistic formula %d", l, engine, formula)
		}
	}
}

func TestRequestCountsAgreeWithMemsys(t *testing.T) {
	e, nc, _ := runWith(t, straightLine, isa.D16(), pipeline.Config{BusBytes: 4, WaitStates: 1})
	if e.FetchRequests != nc.IRequests {
		t.Errorf("fetch requests %d != memsys %d", e.FetchRequests, nc.IRequests)
	}
	if e.DataRequests != nc.DRequests {
		t.Errorf("data requests %d != memsys %d", e.DataRequests, nc.DRequests)
	}
}
