// Package pipeline is an event-driven cycle-level timing model of the
// paper's five-stage machine with a single shared memory port.
//
// The paper evaluates performance with the closed-form estimate
//
//	Cycles = IC + Interlocks + Latency*(IRequests + DRequests)
//
// and notes (footnote 2) that it differs from their measured pipeline
// behaviour by less than 1% — slightly pessimistic because it assumes
// memory and FPU latencies never overlap. This package provides the
// measured side of that comparison: it tracks, per instruction, the
// issue cycle implied by operand readiness (load delay and FPU
// latencies), instruction-fetch completion through a bus-wide fetch
// buffer, and memory-port contention between instruction and data
// requests. Attach an Engine to a sim.Machine and compare Engine.Cycles
// with the memsys formula (the ablate-model experiment does exactly
// this).
//
// Beyond the totals, the engine attributes every cycle it charges to a
// cause bucket (see Bucket in account.go) with an exact invariant —
// the buckets sum to Cycles() — globally, per PC, and per function.
// Setting Config.Caches puts a split I/D cache pair in front of the
// memory interface, turning wait-state charges into per-miss penalty
// charges attributed to the cache-miss bucket.
//
// # Concurrency and ownership
//
// An Engine is owned by the single run it observes: it holds per-run
// mutable state (issue clock, fetch buffer, attribution tables) with no
// internal locking, and a Config.Caches system is likewise mutated by
// the run it is attached to. The package itself keeps no mutable
// package-level state — its only package vars are constant lookup
// tables — so any number of engines may run on distinct goroutines
// concurrently, one engine (and one cache.System) per machine, as the
// job scheduler's worker pool does. Engines are deterministic: the same
// image and config produce bit-identical cycle counts on every run
// (asserted by core's TestConcurrentRunsDeterministic under -race).
package pipeline

import (
	"repro/internal/cache"
	"repro/internal/decode"
	"repro/internal/isa"
)

// DrainCycles is the constant pipeline fill/drain tail added to the
// last instruction's issue cycle (WB of the last instruction).
const DrainCycles = 4

// Config fixes the memory interface.
type Config struct {
	// BusBytes is the fetch/memory bus width in bytes (4 or 8).
	BusBytes uint32
	// WaitStates is the extra bus cycles per memory request.
	WaitStates int64
	// SharedPort serializes instruction and data requests through one
	// memory port (a structural hazard the paper's closed-form estimate
	// ignores); the default models separate instruction and data paths,
	// matching the formula's assumptions.
	SharedPort bool
	// Caches, when non-nil, interposes a split I/D cache pair: fetch
	// buffer refills and data accesses probe the caches, hits cost no
	// wait cycles, and misses cost MissPenalty bus cycles (replacing
	// the flat WaitStates charge). Literal-pool loads probe the
	// instruction cache, mirroring cache.System's routing.
	Caches *cache.System
	// MissPenalty is the per-miss wait in cycles when Caches is set.
	MissPenalty int64
	// RecordDepth attaches a flight recorder to the engine: > 0 keeps a
	// fixed ring of that many most-recent attribution events (cheap
	// enough to leave always on), < 0 retains the full trace (short
	// runs), 0 disables recording. Recording never changes the cycle
	// results — it mirrors the exact charges the buckets receive.
	RecordDepth int
}

// regMeta decomposes one register's readiness window for attribution:
// the producer makes the value architecturally available at base
// (issue + result latency); con port-contention cycles and lat
// memory-latency cycles may push actual readiness past that.
type regMeta struct {
	base      int64
	con       int64
	lat       int64
	cause     Bucket // base-window stall cause: BLoadDelay or BFPU
	latBucket Bucket // latency-window stall cause: BDataWait or BCacheMiss
}

// Engine is the cycle-level model; it implements sim.Observer.
type Engine struct {
	cfg Config

	clock    int64 // cycle the most recent instruction issued
	iBusFree int64 // first cycle the instruction port is free
	dBusFree int64 // first cycle the data port is free

	bufAddr uint32
	bufOK   bool

	ready     [64]int64 // operand availability per register
	meta      [64]regMeta
	fpsrReady int64

	// pendAddr is the data address of the load/store currently being
	// executed (the Machine notifies Load/Store before Exec).
	pendAddr uint32
	pendOK   bool

	// Cycle attribution (see account.go).
	buckets    Breakdown
	perPC      []Breakdown // nil until EnablePCAccounting
	perPCFetch []int64
	fetchXfers int64     // bus transfers on the instruction side
	rec        *Recorder // flight recorder, nil when disabled

	// Counters.
	Instrs        int64
	FetchRequests int64
	DataRequests  int64
	FetchStall    int64 // issue cycles lost to instruction fetch
	DataBusStall  int64 // load-use delay added by bus contention
	Interlock     int64 // issue cycles lost to operand readiness
}

// New returns an engine for the given memory interface.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	switch {
	case cfg.RecordDepth > 0:
		e.rec = NewRecorder(cfg.RecordDepth)
	case cfg.RecordDepth < 0:
		e.rec = NewFullRecorder()
	}
	return e
}

// Exec implements the sim observer contract: it advances the model by
// one issued instruction, synthesizing the predecoded metadata on the
// fly. Hot paths that already hold a shared decode table call ExecOp
// directly; both entry points funnel into the same implementation, so
// they cannot diverge.
func (e *Engine) Exec(pc uint32, in isa.Instr) {
	e.ExecOp(pc, decode.Synth(in))
}

// ExecOp advances the model by one issued instruction given its
// predecoded micro-op. This is the devirtualized fast path the
// simulator uses when exactly one Engine is attached: no interface
// dispatch, and the operand/latency metadata comes precomputed from
// the shared table instead of being re-derived per dynamic instruction.
// op is passed by value: the 24-byte copy keeps every field access on
// the local stack frame (uninstrumented under the race detector, no
// aliasing barriers for the optimizer).
func (e *Engine) ExecOp(pc uint32, op decode.Op) {
	e.Instrs++
	issue := e.clock + 1

	// Instruction fetch: a miss in the one-block fetch buffer is a memory
	// request; the instruction cannot issue before the word arrives. With
	// caches, only an I-cache miss goes to memory.
	block := pc &^ (e.cfg.BusBytes - 1)
	if !e.bufOK || block != e.bufAddr {
		e.FetchRequests++
		toMem, cost, bucket := true, e.cfg.WaitStates, BFetchWait
		if e.cfg.Caches != nil {
			toMem, cost, bucket = e.cfg.Caches.I.Read(block), e.cfg.MissPenalty, BCacheMiss
		}
		if toMem {
			e.fetchXfers++
			if e.perPC != nil {
				e.pcRow(pc)
				e.perPCFetch[int(pc-isa.TextBase)/2]++
			}
			start := max64(e.iBusFree, issue)
			done := start + cost
			e.iBusFree = done + 1
			if e.cfg.SharedPort {
				e.dBusFree = e.iBusFree
			}
			if done > issue {
				// The refill occupies IF: contention first (waiting for
				// the port), then the transfer latency ending at done.
				delay := done - issue
				latPart := min64(delay, cost)
				e.charge(pc, bucket, latPart, StageIF, done)
				e.charge(pc, BPortContention, delay-latPart, StageIF, done-latPart)
				e.FetchStall += delay
				issue = done
			}
		}
		e.bufAddr, e.bufOK = block, true
	}

	// Operand interlocks (load delay slots, FPU latencies). The whole
	// stall is attributed to the register that releases the instruction
	// (the latest-ready one), split into its base / contention / latency
	// windows.
	preIssue := issue
	blocking := -1
	if op.U1 != decode.None {
		if t := e.ready[op.U1]; t > issue {
			issue = t
			blocking = int(op.U1)
		}
	}
	if op.U2 != decode.None {
		if t := e.ready[op.U2]; t > issue {
			issue = t
			blocking = int(op.U2)
		}
	}
	if op.Flags&decode.FRDSR != 0 && e.fpsrReady > issue {
		issue = e.fpsrReady
		blocking = -2 // FPSR
	}
	if stall := issue - preIssue; stall > 0 {
		// The stall windows tile [preIssue, issue-1]: the base cause
		// first, then port contention, then memory latency, so the
		// producer's timeline reads left to right in the trace lanes.
		e.Interlock += stall
		if blocking == -2 {
			e.charge(pc, BFPU, stall, StageEX, issue-1)
		} else {
			m := &e.meta[blocking]
			latPart := min64(stall, m.lat)
			conPart := min64(stall-latPart, m.con)
			e.charge(pc, m.latBucket, latPart, StageMEM, issue-1)
			e.charge(pc, BPortContention, conPart, StageMEM, issue-1-latPart)
			baseStage := StageID
			if m.cause == BFPU {
				baseStage = StageEX
			}
			e.charge(pc, m.cause, stall-latPart-conPart, baseStage, issue-1-latPart-conPart)
		}
	}
	e.clock = issue
	e.charge(pc, BUseful, 1, StageEX, issue)

	// Result latency (the shared metadata rule lives in decode.Meta; the
	// table's Lat column is isa.ResultLatency of the opcode).
	switch {
	case op.Flags&decode.FLoad != 0:
		// The MEM-stage access is a memory request through the shared
		// port; the loaded value is ready when the transfer completes.
		done, con, cost, bucket := e.dataAccess(issue, false)
		if d := op.Def; d != decode.None {
			e.ready[d] = done + 1
			e.meta[d] = regMeta{
				base:      issue + isa.LatLoad,
				con:       con,
				lat:       cost,
				cause:     BLoadDelay,
				latBucket: bucket,
			}
			e.DataBusStall += done + 1 - (issue + isa.LatLoad)
		}
	case op.Flags&decode.FStore != 0:
		e.dataAccess(issue, true)
	case op.Flags&decode.FFCmp != 0:
		e.fpsrReady = issue + isa.LatFCmp
	default:
		if d := op.Def; d != decode.None {
			lat := int64(op.Lat)
			e.ready[d] = issue + lat
			// Only multi-cycle producers can induce stalls; they are all
			// FPU results (converts included).
			e.meta[d] = regMeta{base: issue + lat, cause: BFPU, latBucket: BDataWait}
		}
	}
	e.pendOK = false
}

// Load implements sim.Observer: it records the access address for the
// cache probe of the instruction about to be accounted in Exec.
func (e *Engine) Load(addr uint32, size uint32) { e.pendAddr, e.pendOK = addr, true }

// Store implements sim.Observer (see Load).
func (e *Engine) Store(addr uint32, size uint32) { e.pendAddr, e.pendOK = addr, true }

// dataAccess charges one data memory request starting no earlier than
// the MEM stage of the instruction issued at `issue`. It returns the
// cycle the transfer completes plus the attribution decomposition of
// the window past issue+1: con port-contention cycles, cost latency
// cycles charged to bucket. Cache hits complete immediately without
// touching the port.
func (e *Engine) dataAccess(issue int64, isStore bool) (done, con, cost int64, bucket Bucket) {
	e.DataRequests++
	cost, bucket = e.cfg.WaitStates, BDataWait
	if s := e.cfg.Caches; s != nil {
		var miss bool
		switch {
		case isStore:
			miss = s.D.Write(e.pendAddr)
		case e.pendOK && e.pendAddr < isa.DataBase:
			miss = s.I.Read(e.pendAddr) // literal-pool load, I-stream locality
		default:
			miss = s.D.Read(e.pendAddr)
		}
		if !miss {
			return issue + 1, 0, 0, BCacheMiss
		}
		cost, bucket = e.cfg.MissPenalty, BCacheMiss
	}
	start := max64(e.dBusFree, issue+1)
	con = start - (issue + 1)
	done = start + cost
	e.dBusFree = done + 1
	if e.cfg.SharedPort {
		e.iBusFree = e.dBusFree
	}
	return done, con, cost, bucket
}

// Cycles returns total cycles including pipeline drain.
func (e *Engine) Cycles() int64 {
	if e.Instrs == 0 {
		return 0
	}
	return e.clock + DrainCycles
}

// CPI returns cycles per instruction.
func (e *Engine) CPI() float64 {
	if e.Instrs == 0 {
		return 0
	}
	return float64(e.Cycles()) / float64(e.Instrs)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
