// Package pipeline is an event-driven cycle-level timing model of the
// paper's five-stage machine with a single shared memory port.
//
// The paper evaluates performance with the closed-form estimate
//
//	Cycles = IC + Interlocks + Latency*(IRequests + DRequests)
//
// and notes (footnote 2) that it differs from their measured pipeline
// behaviour by less than 1% — slightly pessimistic because it assumes
// memory and FPU latencies never overlap. This package provides the
// measured side of that comparison: it tracks, per instruction, the
// issue cycle implied by operand readiness (load delay and FPU
// latencies), instruction-fetch completion through a bus-wide fetch
// buffer, and memory-port contention between instruction and data
// requests. Attach an Engine to a sim.Machine and compare Engine.Cycles
// with the memsys formula (the ablate-model experiment does exactly
// this).
package pipeline

import (
	"repro/internal/isa"
	"repro/internal/sim"
)

// Config fixes the memory interface.
type Config struct {
	// BusBytes is the fetch/memory bus width in bytes (4 or 8).
	BusBytes uint32
	// WaitStates is the extra bus cycles per memory request.
	WaitStates int64
	// SharedPort serializes instruction and data requests through one
	// memory port (a structural hazard the paper's closed-form estimate
	// ignores); the default models separate instruction and data paths,
	// matching the formula's assumptions.
	SharedPort bool
}

// Engine is the cycle-level model; it implements sim.Observer.
type Engine struct {
	cfg Config

	clock    int64 // cycle the most recent instruction issued
	iBusFree int64 // first cycle the instruction port is free
	dBusFree int64 // first cycle the data port is free

	bufAddr uint32
	bufOK   bool

	ready     [64]int64 // operand availability per register
	fpsrReady int64

	// Counters.
	Instrs        int64
	FetchRequests int64
	DataRequests  int64
	FetchStall    int64 // issue cycles lost to instruction fetch
	DataBusStall  int64 // load-use delay added by bus contention
	Interlock     int64 // issue cycles lost to operand readiness
}

// New returns an engine for the given memory interface.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg}
}

var _ sim.Observer = (*Engine)(nil)

// Exec implements sim.Observer: it advances the model by one issued
// instruction.
func (e *Engine) Exec(pc uint32, in isa.Instr) {
	e.Instrs++
	issue := e.clock + 1

	// Instruction fetch: a miss in the one-block fetch buffer is a memory
	// request; the instruction cannot issue before the word arrives.
	block := pc &^ (e.cfg.BusBytes - 1)
	if !e.bufOK || block != e.bufAddr {
		e.FetchRequests++
		start := max64(e.iBusFree, issue)
		done := start + e.cfg.WaitStates
		e.iBusFree = done + 1
		if e.cfg.SharedPort {
			e.dBusFree = e.iBusFree
		}
		if done > issue {
			e.FetchStall += done - issue
			issue = done
		}
		e.bufAddr, e.bufOK = block, true
	}

	// Operand interlocks (load delay slots, FPU latencies).
	preIssue := issue
	var buf [4]isa.Reg
	for _, r := range in.Uses(buf[:0]) {
		if t := e.ready[r]; t > issue {
			issue = t
		}
	}
	if in.Op == isa.RDSR && e.fpsrReady > issue {
		issue = e.fpsrReady
	}
	e.Interlock += issue - preIssue
	e.clock = issue

	// Result latency.
	lat := int64(sim.LatNormal)
	switch {
	case in.Op.IsLoad():
		// handled below with the bus transaction
		lat = 0
	case in.Op == isa.FADDS, in.Op == isa.FSUBS, in.Op == isa.FADDD,
		in.Op == isa.FSUBD, in.Op == isa.FNEGS, in.Op == isa.FNEGD:
		lat = sim.LatFAdd
	case in.Op == isa.FMULS, in.Op == isa.FMULD:
		lat = sim.LatFMul
	case in.Op == isa.FDIVS:
		lat = sim.LatFDivS
	case in.Op == isa.FDIVD:
		lat = sim.LatFDivD
	case in.Op.IsFCmp():
		e.fpsrReady = issue + sim.LatFCmp
	case in.Op >= isa.CVTSISF && in.Op <= isa.CVTSFSI:
		lat = sim.LatConvert
	}
	if d := in.Def(); d.Valid() && lat > 0 {
		e.ready[d] = issue + lat
	}
	switch {
	case in.Op.IsLoad():
		// The MEM-stage access is a memory request through the shared
		// port; the loaded value is ready when the transfer completes.
		done := e.dataAccess(issue)
		if d := in.Def(); d.Valid() {
			e.ready[d] = done + 1
			e.DataBusStall += done + 1 - (issue + sim.LatLoad)
		}
	case in.Op.IsStore():
		e.dataAccess(issue)
	}
}

// Load implements sim.Observer (accounted in Exec via the op class).
func (e *Engine) Load(addr uint32, size uint32) {}

// Store implements sim.Observer (accounted in Exec via the op class).
func (e *Engine) Store(addr uint32, size uint32) {}

// dataAccess charges one data memory request starting no earlier than
// the MEM stage of the instruction issued at `issue`; it returns the
// cycle the transfer completes.
func (e *Engine) dataAccess(issue int64) int64 {
	e.DataRequests++
	start := max64(e.dBusFree, issue+1)
	done := start + e.cfg.WaitStates
	e.dBusFree = done + 1
	if e.cfg.SharedPort {
		e.iBusFree = e.dBusFree
	}
	return done
}

// Cycles returns total cycles including pipeline drain.
func (e *Engine) Cycles() int64 {
	if e.Instrs == 0 {
		return 0
	}
	return e.clock + 4 // WB of the last instruction
}

// CPI returns cycles per instruction.
func (e *Engine) CPI() float64 {
	if e.Instrs == 0 {
		return 0
	}
	return float64(e.Cycles()) / float64(e.Instrs)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
