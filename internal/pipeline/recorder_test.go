package pipeline_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"repro/internal/pipeline"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
)

// recorderGrid is the property-test grid: both ISAs × bus widths × wait
// states × port sharing × cacheless/cached — the same coverage as
// TestAttributionInvariant, with a full-trace recorder on every engine.
func recorderGrid(t *testing.T, spec *isa.Spec) []pipeline.Config {
	t.Helper()
	var cfgs []pipeline.Config
	for _, bus := range []uint32{4, 8} {
		for _, waits := range []int64{0, 1, 2, 3} {
			for _, shared := range []bool{false, true} {
				cfgs = append(cfgs, pipeline.Config{
					BusBytes: bus, WaitStates: waits, SharedPort: shared,
					RecordDepth: -1,
				})
			}
		}
		sys, err := cache.NewSystem(cache.PaperConfig(1024), cache.PaperConfig(1024))
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, pipeline.Config{
			BusBytes: bus, Caches: sys, MissPenalty: 8, SharedPort: bus == 4,
			RecordDepth: -1,
		})
	}
	return cfgs
}

// TestRecorderEventsReproduceBuckets is the flight-recorder property
// test: across ISAs × bus × waits × caches, summing the recorded
// per-cycle events per cause reproduces the engine's bucket totals
// exactly — the sum == Cycles() invariant extended to per-cycle
// granularity — and the per-PC event sums reproduce the per-PC
// attribution rows.
func TestRecorderEventsReproduceBuckets(t *testing.T) {
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		cfgs := recorderGrid(t, spec)
		engines, _ := runAccounted(t, spec, cfgs)
		for i, e := range engines {
			name := fmt.Sprintf("%s/%+v", spec, cfgs[i])
			rec := e.Recorder()
			if rec == nil {
				t.Fatalf("%s: RecordDepth -1 attached no recorder", name)
			}
			if rec.Dropped() != 0 || int64(rec.Len()) != rec.Total() {
				t.Errorf("%s: full recorder dropped %d of %d events", name, rec.Dropped(), rec.Total())
			}

			// Per-cause event sums == buckets (drain is global-only).
			want := e.Breakdown()
			want[pipeline.BDrain] = 0
			var fromEvents pipeline.Breakdown
			perPC := map[uint32]*pipeline.Breakdown{}
			for _, ev := range rec.Events() {
				if ev.N <= 0 {
					t.Fatalf("%s: event with non-positive length: %+v", name, ev)
				}
				if int(ev.Stage) >= pipeline.NumStages {
					t.Fatalf("%s: event with bad stage: %+v", name, ev)
				}
				fromEvents[ev.Cause] += ev.N
				row := perPC[ev.PC]
				if row == nil {
					row = &pipeline.Breakdown{}
					perPC[ev.PC] = row
				}
				row[ev.Cause] += ev.N
			}
			if fromEvents != want {
				t.Errorf("%s: event sums %v != buckets %v", name, fromEvents, want)
			}
			if fromEvents != rec.Totals() {
				t.Errorf("%s: running totals %v != event sums %v", name, rec.Totals(), fromEvents)
			}
			if got, wantCyc := fromEvents.Sum()+pipeline.DrainCycles, e.Cycles(); got != wantCyc {
				t.Errorf("%s: event sum + drain = %d, cycles = %d", name, got, wantCyc)
			}

			// Per-PC: the events reconstruct every accounting row.
			rows := e.PerPC()
			for _, row := range rows {
				got := perPC[row.PC]
				if row.Buckets == (pipeline.Breakdown{}) {
					continue // fetch-bytes-only row, no cycles charged
				}
				if got == nil {
					t.Errorf("%s: pc %#x has bucket cycles but no events", name, row.PC)
					continue
				}
				if *got != row.Buckets {
					t.Errorf("%s: pc %#x events %v != row %v", name, row.PC, *got, row.Buckets)
				}
				delete(perPC, row.PC)
			}
			for pc, bd := range perPC {
				t.Errorf("%s: events at pc %#x (%v) with no accounting row", name, pc, *bd)
			}
		}
	}
}

// TestRecorderRingExactTotals: a tiny ring must evict events yet keep
// the per-cause running totals exact, and retain exactly its capacity
// of the most recent events in order.
func TestRecorderRingExactTotals(t *testing.T) {
	const depth = 64
	cfgs := []pipeline.Config{
		{BusBytes: 4, WaitStates: 2, SharedPort: true, RecordDepth: depth},
		{BusBytes: 4, WaitStates: 2, SharedPort: true, RecordDepth: -1},
	}
	engines, _ := runAccounted(t, isa.D16(), cfgs)
	ring, full := engines[0].Recorder(), engines[1].Recorder()

	want := engines[0].Breakdown()
	want[pipeline.BDrain] = 0
	if ring.Totals() != want {
		t.Errorf("ring totals %v != buckets %v", ring.Totals(), want)
	}
	if ring.Len() != depth {
		t.Errorf("ring retained %d events, want %d", ring.Len(), depth)
	}
	if got, wantN := ring.Dropped(), ring.Total()-depth; got != wantN {
		t.Errorf("ring dropped %d, want %d", got, wantN)
	}
	if ring.Total() != full.Total() {
		t.Errorf("ring saw %d events, full recorder saw %d", ring.Total(), full.Total())
	}
	// The retained window is the tail of the full trace, oldest first.
	tail := full.Events()
	tail = tail[len(tail)-depth:]
	got := ring.Events()
	for i := range tail {
		if got[i] != tail[i] {
			t.Fatalf("ring event %d = %+v, want %+v", i, got[i], tail[i])
		}
	}
}

// TestWriteChromeTrace: the export is valid JSON with one named lane
// per stage, cause-named events carrying pc/sym args, and a drain tail.
func TestWriteChromeTrace(t *testing.T) {
	cfgs := []pipeline.Config{{BusBytes: 4, WaitStates: 1, RecordDepth: -1}}
	engines, st := runAccounted(t, isa.D16(), cfgs)
	e := engines[0]

	var buf bytes.Buffer
	if err := e.WriteChromeTrace(&buf, st); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	lanes := map[string]bool{}
	var drains, windows int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			lanes[ev.Args["name"]] = true
		case ev.Name == pipeline.BDrain.String():
			drains++
			if ev.Dur != pipeline.DrainCycles {
				t.Errorf("drain event dur %v, want %d", ev.Dur, pipeline.DrainCycles)
			}
		case ev.Ph == "X":
			windows++
			if ev.Args["pc"] == "" || ev.Args["sym"] == "" {
				t.Errorf("window event %q missing pc/sym args: %v", ev.Name, ev.Args)
			}
			if ev.TID < 1 || ev.TID > pipeline.NumStages {
				t.Errorf("window event %q on lane %d, want 1..%d", ev.Name, ev.TID, pipeline.NumStages)
			}
		}
	}
	for s := 0; s < pipeline.NumStages; s++ {
		if !lanes[pipeline.Stage(s).String()] {
			t.Errorf("no lane metadata for stage %s (got %v)", pipeline.Stage(s), lanes)
		}
	}
	if drains != 1 {
		t.Errorf("trace has %d drain events, want 1", drains)
	}
	if int64(windows) != e.Recorder().Total() {
		t.Errorf("trace has %d windows, recorder holds %d", windows, e.Recorder().Total())
	}
	if e2 := pipeline.New(pipeline.Config{BusBytes: 4}); e2.WriteChromeTrace(&buf, nil) == nil {
		t.Error("WriteChromeTrace without a recorder should fail")
	}
}

// TestStageString pins the lane names.
func TestStageString(t *testing.T) {
	want := []string{"IF", "ID", "EX", "MEM", "WB"}
	for i, w := range want {
		if got := pipeline.Stage(i).String(); got != w {
			t.Errorf("pipeline.Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if got := pipeline.Stage(9).String(); !strings.Contains(got, "9") {
		t.Errorf("out-of-range stage renders %q", got)
	}
}
