package pipeline

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/prog"
	"repro/internal/telemetry"
)

// Stage identifies one of the five pipeline stages an attributed cycle
// window occupies. The mapping from cause to stage is fixed: fetch-side
// charges (ifetch waits, fetch-port contention, I-cache misses) land in
// IF, load-delay-slot stalls in ID, useful issue cycles and FPU stalls
// in EX, data-memory windows (data waits, data-port contention, D-cache
// misses behind a load-use dependence) in MEM, and the synthetic drain
// tail in WB.
type Stage uint8

const (
	StageIF Stage = iota
	StageID
	StageEX
	StageMEM
	StageWB

	NumStages int = int(iota)
)

var stageNames = [NumStages]string{"IF", "ID", "EX", "MEM", "WB"}

// String returns the stage's conventional abbreviation.
func (s Stage) String() string {
	if int(s) >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Event is one stage-occupancy record from the flight recorder: the
// engine attributed N consecutive cycles starting at Cycle to Cause, on
// behalf of the instruction at PC, occupying Stage. Windows are
// run-length encoded but exact: summing N per cause over a full trace
// reproduces the engine's bucket totals cycle for cycle (the recorder
// property test pins this down).
type Event struct {
	Cycle int64  // first cycle of the window
	N     int64  // window length in cycles (always > 0)
	PC    uint32 // instruction the window is attributed to
	Stage Stage
	Cause Bucket
}

// Recorder is the pipeline flight recorder: a fixed-capacity ring of
// attribution events cheap enough to leave always-on. Recording into a
// full ring evicts the oldest event (flight-recorder semantics); the
// running per-cause totals keep counting across evictions, so Totals
// stays exact no matter how small the ring is. A Recorder, like the
// Engine feeding it, is owned by a single run: no internal locking.
//
// The ring never allocates after construction; the full-trace mode
// (NewFullRecorder) grows instead of evicting and is meant for short
// runs that feed trace export or drill-down rendering.
type Recorder struct {
	buf     []Event
	next    int // ring eviction cursor, meaningful once the ring is full
	grow    bool
	dropped int64
	total   int64
	totals  Breakdown
}

// NewRecorder returns a fixed-capacity flight recorder keeping the most
// recent `capacity` events (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// NewFullRecorder returns an unbounded recorder that retains every
// event — full-trace mode for short runs.
func NewFullRecorder() *Recorder { return &Recorder{grow: true} }

// record appends one event, evicting the oldest when a fixed ring is
// full. Zero allocations on the fixed-ring steady state.
func (r *Recorder) record(ev Event) {
	r.total++
	r.totals[ev.Cause] += ev.N
	if r.grow || len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.dropped++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.buf) }

// Total returns the number of events ever recorded, evicted included.
func (r *Recorder) Total() int64 { return r.total }

// Dropped returns the number of events evicted from a full ring.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Totals returns the per-cause cycle sums over every event ever
// recorded (evicted ones included). On a complete run this equals the
// engine's Breakdown minus the global-only drain bucket.
func (r *Recorder) Totals() Breakdown { return r.totals }

// Events returns the retained events oldest-first (a copy).
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) && !r.grow {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// SetRecorder attaches (or with nil detaches) a flight recorder; call
// before the run. Engines built from a Config with RecordDepth set
// already have one.
func (e *Engine) SetRecorder(r *Recorder) { e.rec = r }

// Recorder returns the attached flight recorder, or nil.
func (e *Engine) Recorder() *Recorder { return e.rec }

// WriteChromeTrace exports the recorded event stream as a Chrome
// trace_event document (loadable in chrome://tracing and Perfetto) with
// one lane per pipeline stage. Timestamps are simulated cycles written
// into the microsecond field, so one trace-viewer "µs" reads as one
// cycle. Each window becomes a complete event named by its stall cause
// with the PC (and, when a symbol table is given, the containing
// function) in its args; the global drain tail is emitted as one
// synthetic WB-lane event so the lanes cover Cycles() exactly.
func (e *Engine) WriteChromeTrace(w io.Writer, st *prog.SymTable) error {
	if e.rec == nil {
		return errors.New("pipeline: no recorder attached (set Config.RecordDepth or call SetRecorder before the run)")
	}
	events := e.rec.Events()
	out := make([]telemetry.Event, 0, len(events)+NumStages+1)
	for s := 0; s < NumStages; s++ {
		out = append(out, telemetry.Event{
			Name: "thread_name", Ph: "M", PID: 1, TID: s + 1,
			Args: map[string]string{"name": Stage(s).String()},
		})
	}
	for _, ev := range events {
		te := telemetry.Event{
			Name: ev.Cause.String(), Cat: "pipe", Ph: "X",
			TS: float64(ev.Cycle), Dur: float64(ev.N),
			PID: 1, TID: int(ev.Stage) + 1,
			Args: map[string]string{"pc": fmt.Sprintf("%#06x", ev.PC)},
		}
		if st != nil {
			te.Args["sym"] = st.Lookup(ev.PC)
		}
		out = append(out, te)
	}
	if e.Instrs > 0 {
		out = append(out, telemetry.Event{
			Name: BDrain.String(), Cat: "pipe", Ph: "X",
			TS: float64(e.clock + 1), Dur: float64(DrainCycles),
			PID: 1, TID: int(StageWB) + 1,
		})
	}
	return telemetry.WriteChromeTrace(w, out)
}
