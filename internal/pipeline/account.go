package pipeline

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/telemetry"
)

// Bucket is one cause a simulated cycle can be attributed to. Every
// cycle the engine charges lands in exactly one bucket, so the bucket
// sums reconstruct Engine.Cycles() exactly (the accounting invariant
// the property tests pin down).
type Bucket int

const (
	// BUseful is the one issue cycle every instruction costs at peak.
	BUseful Bucket = iota
	// BLoadDelay is operand stall in the architectural load delay slot
	// (the LatLoad window, independent of memory-system timing).
	BLoadDelay
	// BFPU is operand stall on multi-cycle FPU results, converts, and
	// FPSR reads behind FP compares.
	BFPU
	// BFetchWait is instruction-fetch wait states on buffer refills
	// (cacheless memory latency on the instruction side).
	BFetchWait
	// BDataWait is data-memory wait states surfaced through load-use
	// dependences (latency beyond the architectural delay slot).
	BDataWait
	// BPortContention is time lost waiting for a busy memory port, on
	// either the instruction or the data side (the structural hazard
	// the paper's closed-form estimate ignores).
	BPortContention
	// BCacheMiss is miss-penalty time when a cache system is attached
	// (it replaces BFetchWait/BDataWait on cached engines).
	BCacheMiss
	// BDrain is the constant pipeline fill/drain tail.
	BDrain

	NumBuckets int = iota
)

// bucketNames are the stable exported identifiers (metrics suffixes,
// JSON part names, table rows).
var bucketNames = [NumBuckets]string{
	"useful", "load_delay", "fpu", "ifetch_wait", "dmem_wait",
	"port_contention", "cache_miss", "drain",
}

// String returns the bucket's stable identifier.
func (b Bucket) String() string {
	if b < 0 || int(b) >= NumBuckets {
		return fmt.Sprintf("bucket(%d)", int(b))
	}
	return bucketNames[b]
}

// Breakdown is a full cycle attribution: one count per bucket.
type Breakdown [NumBuckets]int64

// Sum returns total attributed cycles.
func (bd Breakdown) Sum() int64 {
	var s int64
	for _, v := range bd {
		s += v
	}
	return s
}

// Snapshot converts the attribution to the telemetry exchange type;
// the embedded total is the bucket sum, so Check() always passes.
func (bd Breakdown) Snapshot(name string) *telemetry.Breakdown {
	out := telemetry.NewBreakdown(name, bd.Sum())
	for b := 0; b < NumBuckets; b++ {
		out.Add(Bucket(b).String(), bd[b])
	}
	return out
}

// Breakdown returns the engine's global cycle attribution; its sum
// equals Cycles() exactly.
func (e *Engine) Breakdown() Breakdown {
	bd := e.buckets
	if e.Instrs > 0 {
		bd[BDrain] = DrainCycles
	}
	return bd
}

// charge attributes n cycles at pc to bucket b. The window occupies
// stage st and ends at cycle end (inclusive); when a flight recorder is
// attached the window is also emitted as a stage-occupancy event, so
// the event stream mirrors the bucket charges exactly.
func (e *Engine) charge(pc uint32, b Bucket, n int64, st Stage, end int64) {
	if n == 0 {
		return
	}
	e.buckets[b] += n
	if e.perPC != nil {
		e.pcRow(pc)[b] += n
	}
	if e.rec != nil {
		e.rec.record(Event{Cycle: end - n + 1, N: n, PC: pc, Stage: st, Cause: b})
	}
}

// pcRow returns the per-PC accounting row for pc, growing the table on
// demand. Rows are indexed by half-words from the text base so one
// table shape serves both encodings.
func (e *Engine) pcRow(pc uint32) *Breakdown {
	i := int(pc-isa.TextBase) / 2
	if i >= len(e.perPC) {
		grown := make([]Breakdown, i+1)
		copy(grown, e.perPC)
		e.perPC = grown
		fg := make([]int64, i+1)
		copy(fg, e.perPCFetch)
		e.perPCFetch = fg
	}
	return &e.perPC[i]
}

// EnablePCAccounting turns on per-PC cycle attribution (and per-PC
// fetch-transfer counting). Call before the run; the global breakdown
// is always maintained regardless.
func (e *Engine) EnablePCAccounting() {
	if e.perPC == nil {
		e.perPC = make([]Breakdown, 0, 1024)
		e.perPCFetch = make([]int64, 0, 1024)
	}
}

// FetchBytes returns the instruction bytes moved over the memory bus:
// bus-width transfers per fetch-buffer refill (cacheless) or per
// instruction-cache miss (cached engines).
func (e *Engine) FetchBytes() int64 { return e.fetchXfers * int64(e.cfg.BusBytes) }

// PCAccount is one per-PC attribution row.
type PCAccount struct {
	PC         uint32
	Buckets    Breakdown
	FetchBytes int64
}

// PerPC returns the non-empty per-PC rows in ascending address order.
// The drain bucket is global only: the per-PC bucket sums plus
// DrainCycles reconstruct Cycles().
func (e *Engine) PerPC() []PCAccount {
	var out []PCAccount
	for i := range e.perPC {
		if e.perPC[i] == (Breakdown{}) && e.perPCFetch[i] == 0 {
			continue
		}
		out = append(out, PCAccount{
			PC:         isa.TextBase + uint32(i)*2,
			Buckets:    e.perPC[i],
			FetchBytes: e.perPCFetch[i] * int64(e.cfg.BusBytes),
		})
	}
	return out
}

// FuncAccount aggregates attribution over one function symbol.
type FuncAccount struct {
	Name       string
	Buckets    Breakdown
	Cycles     int64 // bucket sum for the function
	FetchBytes int64
}

// PerFunc folds the per-PC table over a symbol table (the same
// machinery sim.Profile uses), sorted by cycles descending then name.
// Requires EnablePCAccounting before the run.
func (e *Engine) PerFunc(st *prog.SymTable) []FuncAccount {
	byIdx := map[int]*FuncAccount{}
	for _, row := range e.PerPC() {
		i := st.Index(row.PC)
		fa := byIdx[i]
		if fa == nil {
			fa = &FuncAccount{Name: st.Name(i)}
			byIdx[i] = fa
		}
		for b := 0; b < NumBuckets; b++ {
			fa.Buckets[b] += row.Buckets[b]
		}
		fa.FetchBytes += row.FetchBytes
	}
	out := make([]FuncAccount, 0, len(byIdx))
	for _, fa := range byIdx { //detlint:ignore rangemap sorted immediately below

		fa.Cycles = fa.Buckets.Sum()
		out = append(out, *fa)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RegisterMetrics publishes the engine's counters and per-bucket cycle
// attribution as live func gauges under prefix (e.g. "pipe.d16.").
func (e *Engine) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.RegisterFunc(prefix+"instrs", func() int64 { return e.Instrs })
	reg.RegisterFunc(prefix+"fetch_requests", func() int64 { return e.FetchRequests })
	reg.RegisterFunc(prefix+"data_requests", func() int64 { return e.DataRequests })
	reg.RegisterFunc(prefix+"fetch_bytes", e.FetchBytes)
	reg.RegisterFunc(prefix+"cycles", e.Cycles)
	for b := 0; b < NumBuckets; b++ {
		b := Bucket(b)
		reg.RegisterFunc(prefix+"cycles."+b.String(), func() int64 { return e.Breakdown()[b] })
	}
}

// WriteBreakdown renders one or more engines' attributions side by side
// as an aligned text table (the shared rendering for mcrun -account and
// ad-hoc dumps; repro uses the experiment table machinery instead).
func WriteBreakdown(w io.Writer, names []string, bds []Breakdown) {
	fmt.Fprintf(w, "%-16s", "bucket")
	for _, n := range names {
		fmt.Fprintf(w, "  %12s  %6s", n, "%")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 16+len(names)*22))
	for b := 0; b < NumBuckets; b++ {
		fmt.Fprintf(w, "%-16s", Bucket(b).String())
		for _, bd := range bds {
			total := bd.Sum()
			pc := 0.0
			if total > 0 {
				pc = 100 * float64(bd[b]) / float64(total)
			}
			fmt.Fprintf(w, "  %12d  %6.2f", bd[b], pc)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-16s", "total")
	for _, bd := range bds {
		fmt.Fprintf(w, "  %12d  %6.2f", bd.Sum(), 100.0)
	}
	fmt.Fprintln(w)
}
