package pipeline_test

import (
	"fmt"
	"repro/internal/pipeline"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/sim"
)

// acctProgram exercises every attribution path: integer loops with
// loads/stores (load delay + data waits), double-precision arithmetic
// with long-latency divides (FPU interlocks + FPSR reads via the
// compare-driven branches), and calls (fetch discontinuities).
const acctProgram = `
int arr[64];

double kernel(double b, double c) {
	double x = 1.0;
	int it = 0;
	while (it < 8) {
		double f = x * x * x + b * x - c;
		double fp = 3.0 * x * x + b;
		x = x - f / fp;
		it++;
	}
	return x;
}

int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 64; i++) arr[i] = i * 3;
	for (i = 0; i < 64; i++) sum += arr[i] * arr[63 - i];
	double acc = 0.0;
	for (i = 1; i <= 6; i++) {
		double b = i;
		acc += kernel(b / 2.0, b);
	}
	if (acc < 0.0) print_str("neg");
	print_int(sum);
	print_char('\n');
	return 0;
}
`

// runAccounted compiles acctProgram for spec, runs it under one engine
// per config (single execution), and returns the engines plus the
// symbol table.
func runAccounted(t *testing.T, spec *isa.Spec, cfgs []pipeline.Config) ([]*pipeline.Engine, *sim.SymTable) {
	t.Helper()
	c, err := mcc.Compile("acct.mc", acctProgram, spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(c.Image)
	if err != nil {
		t.Fatal(err)
	}
	var engines []*pipeline.Engine
	for _, cfg := range cfgs {
		e := pipeline.New(cfg)
		e.EnablePCAccounting()
		engines = append(engines, e)
		m.Attach(e)
	}
	if err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return engines, sim.NewSymTable(c.Image)
}

// TestAttributionInvariant is the accounting property test: across both
// ISAs, bus widths 4 and 8, wait states 0-3, shared vs split port, and
// cacheless vs cached memory, the bucket sums must equal pipeline.Engine.Cycles
// exactly — globally, per PC, and per function.
func TestAttributionInvariant(t *testing.T) {
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		var cfgs []pipeline.Config
		for _, bus := range []uint32{4, 8} {
			for _, waits := range []int64{0, 1, 2, 3} {
				for _, shared := range []bool{false, true} {
					cfgs = append(cfgs, pipeline.Config{BusBytes: bus, WaitStates: waits, SharedPort: shared})
				}
			}
			sys, err := cache.NewSystem(cache.PaperConfig(1024), cache.PaperConfig(1024))
			if err != nil {
				t.Fatal(err)
			}
			cfgs = append(cfgs, pipeline.Config{BusBytes: bus, Caches: sys, MissPenalty: 8, SharedPort: bus == 4})
		}
		engines, st := runAccounted(t, spec, cfgs)
		for i, e := range engines {
			name := fmt.Sprintf("%s/%+v", spec, cfgs[i])
			bd := e.Breakdown()
			if got, want := bd.Sum(), e.Cycles(); got != want {
				t.Errorf("%s: bucket sum %d != cycles %d (%v)", name, got, want, bd)
			}
			if bd[pipeline.BUseful] != e.Instrs {
				t.Errorf("%s: useful bucket %d != instrs %d", name, bd[pipeline.BUseful], e.Instrs)
			}
			if e.Instrs > 0 && bd[pipeline.BDrain] != pipeline.DrainCycles {
				t.Errorf("%s: drain bucket %d != %d", name, bd[pipeline.BDrain], pipeline.DrainCycles)
			}
			if cfgs[i].Caches == nil && bd[pipeline.BCacheMiss] != 0 {
				t.Errorf("%s: cacheless engine charged cache_miss %d", name, bd[pipeline.BCacheMiss])
			}
			if cfgs[i].Caches != nil && (bd[pipeline.BFetchWait] != 0 || bd[pipeline.BDataWait] != 0) {
				t.Errorf("%s: cached engine charged wait-state buckets %d/%d",
					name, bd[pipeline.BFetchWait], bd[pipeline.BDataWait])
			}

			// Per-PC rows reconstruct the global attribution exactly.
			var pcSum pipeline.Breakdown
			for _, row := range e.PerPC() {
				for b := 0; b < pipeline.NumBuckets; b++ {
					pcSum[b] += row.Buckets[b]
				}
			}
			pcSum[pipeline.BDrain] += bd[pipeline.BDrain] // drain is global-only
			if pcSum != bd {
				t.Errorf("%s: per-PC sums %v != global %v", name, pcSum, bd)
			}

			// Per-function rows cover the same cycles and fetch bytes.
			var fnCycles, fnBytes int64
			for _, fa := range e.PerFunc(st) {
				fnCycles += fa.Cycles
				fnBytes += fa.FetchBytes
			}
			if want := e.Cycles() - bd[pipeline.BDrain]; fnCycles != want {
				t.Errorf("%s: per-func cycles %d != %d", name, fnCycles, want)
			}
			if fnBytes != e.FetchBytes() {
				t.Errorf("%s: per-func fetch bytes %d != %d", name, fnBytes, e.FetchBytes())
			}

			// The telemetry exchange form validates.
			if err := bd.Snapshot(name).Check(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}

		// Interlock causes must actually show up on this workload.
		bd := engines[0].Breakdown() // bus 4, waits 0, split, cacheless
		if bd[pipeline.BLoadDelay] == 0 || bd[pipeline.BFPU] == 0 {
			t.Errorf("%s: expected load-delay and FPU stalls, got %v", spec, bd)
		}
	}
}

// TestAttributionMatchesLegacyCounters pins the bucket totals to the
// engine's long-standing aggregate counters.
func TestAttributionMatchesLegacyCounters(t *testing.T) {
	cfgs := []pipeline.Config{{BusBytes: 4, WaitStates: 2, SharedPort: true}}
	engines, _ := runAccounted(t, isa.DLXe(), cfgs)
	e := engines[0]
	bd := e.Breakdown()
	if got := bd[pipeline.BLoadDelay] + bd[pipeline.BFPU] + bd[pipeline.BDataWait]; got > e.Interlock+e.DataBusStall {
		t.Errorf("interlock-side buckets %d exceed Interlock+DataBusStall %d", got, e.Interlock+e.DataBusStall)
	}
	fetchSide := bd[pipeline.BFetchWait] + bd[pipeline.BPortContention] + bd[pipeline.BDataWait]
	if fetchSide+bd[pipeline.BLoadDelay]+bd[pipeline.BFPU] != e.FetchStall+e.Interlock {
		t.Errorf("stall buckets %d != FetchStall+Interlock %d",
			fetchSide+bd[pipeline.BLoadDelay]+bd[pipeline.BFPU], e.FetchStall+e.Interlock)
	}
}

// TestCachedEngineFasterThanWaitStates: with a warm cache most accesses
// hit, so the cached engine at penalty 8 must beat the cacheless engine
// at 8 wait states on a loopy program.
func TestCachedEngineFasterThanWaitStates(t *testing.T) {
	sys, err := cache.NewSystem(cache.PaperConfig(4096), cache.PaperConfig(4096))
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []pipeline.Config{
		{BusBytes: 4, WaitStates: 8},
		{BusBytes: 4, Caches: sys, MissPenalty: 8},
	}
	engines, _ := runAccounted(t, isa.DLXe(), cfgs)
	if engines[1].Cycles() >= engines[0].Cycles() {
		t.Errorf("cached engine (%d cycles) should beat 8 wait states (%d cycles)",
			engines[1].Cycles(), engines[0].Cycles())
	}
	if engines[1].Breakdown()[pipeline.BCacheMiss] == 0 {
		t.Errorf("cached engine reported no miss-penalty cycles")
	}
}
