package pipeline

import (
	"testing"

	"repro/internal/isa"
)

// TestRecorderRecordNoAlloc: the steady-state ring record path must not
// allocate (the always-on property).
func TestRecorderRecordNoAlloc(t *testing.T) {
	r := NewRecorder(16)
	ev := Event{Cycle: 1, N: 1, PC: isa.TextBase, Stage: StageEX, Cause: BUseful}
	allocs := testing.AllocsPerRun(1000, func() { r.record(ev) })
	if allocs != 0 {
		t.Errorf("record allocates %.1f times per call, want 0", allocs)
	}
}
