package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryCoversThePaper(t *testing.T) {
	// Every evaluation artifact of the paper must be registered.
	wanted := []string{
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19",
		"tab3", "tab4", "tab5", "tab6", "tab7", "tab8", "tab9", "tab10",
		"tab11", "tab12", "tab13", "tab14", "tab15", "tab16",
	}
	for _, id := range wanted {
		if ByID(id) == nil {
			t.Errorf("experiment %s missing", id)
		}
	}
	if ByID("fig99") != nil {
		t.Error("ByID invented an experiment")
	}
	// Paper order is preserved.
	all := All()
	idx := map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if !(idx["fig4"] < idx["tab3"] && idx["tab3"] < idx["fig16"] && idx["fig16"] < idx["tab14"]) {
		t.Error("experiments out of paper order")
	}
	for _, e := range all {
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", e.ID)
		}
	}
}

// TestHeadlineExperiments runs the two central experiments end-to-end
// and checks the paper's qualitative claims hold on this build.
func TestHeadlineExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	lab := core.NewLab()

	var out strings.Builder
	ctx := &Ctx{Lab: lab, W: &out}
	if err := ByID("fig5").Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ByID("tab11").Run(ctx); err != nil {
		t.Fatal(err)
	}
	text := out.String()

	// fig5: DLXe executes fewer instructions (AVERAGE below 1).
	if !strings.Contains(text, "AVERAGE") {
		t.Fatal("no averages rendered")
	}

	// tab11: the crossover — D16 behind at l=0 (ratio < 1) and ahead by
	// l=3 (ratio > 1). Parse the MEAN row.
	var mean []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "MEAN") {
			mean = strings.Fields(line)
		}
	}
	if len(mean) != 5 {
		t.Fatalf("MEAN row not found in:\n%s", text)
	}
	if !(mean[1] < "1.00" && mean[4] > "1.00") { // string compare works for d.dd
		t.Errorf("crossover shape wrong: %v", mean)
	}
}

func TestTableRendering(t *testing.T) {
	var out strings.Builder
	tb := &table{header: []string{"name", "value"}}
	tb.row("alpha", "1.00")
	tb.row("b", "22.50")
	tb.render(&out)
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	// Columns align: every line has the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header/separator misaligned:\n%s", out.String())
	}
}

func TestStatHelpers(t *testing.T) {
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if s := stddev([]float64{2, 2, 2}); s != 0 {
		t.Errorf("stddev of constants = %v", s)
	}
	if s := stddev([]float64{1, 3}); s != 1 {
		t.Errorf("stddev = %v, want 1", s)
	}
	if stddev([]float64{5}) != 0 {
		t.Error("single-element stddev should be 0")
	}
}
