package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
)

// The instruction-cache experiments of Section 4.1 and Appendix A.3:
// Figures 16-19 and Tables 13-16, on the three cache benchmarks
// (assem, ipl, latex).

func init() {
	register("fig16", "Figure 16: instruction cache miss rates (1K-16K)", figMissRates)
	register("fig17", "Figure 17: performance with 4K instruction and data caches", func(c *Ctx) error {
		return figCPIvsPenalty(c, 4<<10)
	})
	register("fig18", "Figure 18: performance with 16K instruction and data caches", func(c *Ctx) error {
		return figCPIvsPenalty(c, 16<<10)
	})
	register("fig19", "Figure 19: instruction traffic with caches (words/cycle)", figCacheTraffic)
	register("tab13", "Table 13: traffic and interlocks for cache benchmarks", tabCacheBench)
	register("tab14", "Table 14: cache miss rates for assem (8-byte sub-blocks)", func(c *Ctx) error {
		return tabMissRates(c, "assem")
	})
	register("tab15", "Table 15: cache miss rates for ipl", func(c *Ctx) error {
		return tabMissRates(c, "ipl")
	})
	register("tab16", "Table 16: cache miss rates for latex", func(c *Ctx) error {
		return tabMissRates(c, "latex")
	})
}

var cacheSizes = []uint32{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}

func paperSweep() []cache.Config {
	var cfgs []cache.Config
	for _, s := range cacheSizes {
		cfgs = append(cfgs, cache.PaperConfig(s))
	}
	return cfgs
}

// sweepBoth runs the standard-geometry sweep for one benchmark on both
// encodings.
func (c *Ctx) sweepBoth(b *bench.Benchmark) (d16, dlxe []*cache.System, md, mx *core.Measurement, err error) {
	if d16, err = c.Lab.CacheSweep(b, cfgD16, paperSweep()); err != nil {
		return
	}
	if dlxe, err = c.Lab.CacheSweep(b, cfgX323, paperSweep()); err != nil {
		return
	}
	if md, err = c.Lab.Measure(b, cfgD16); err != nil {
		return
	}
	mx, err = c.Lab.Measure(b, cfgX323)
	return
}

// figMissRates reproduces Figure 16: per-instruction I-cache miss rates
// against cache size (paper: D16 well below DLXe at every size).
func figMissRates(c *Ctx) error {
	c.printf("Instruction cache miss rates per instruction (32B blocks, 4B sub-blocks)\n\n")
	for _, b := range bench.CacheBenchmarks() {
		d16, dlxe, _, _, err := c.sweepBoth(b)
		if err != nil {
			return err
		}
		c.printf("%s:\n", b.Name)
		t := &table{header: []string{"cache size", "D16", "DLXe"}}
		for i, s := range cacheSizes {
			t.row(fmt.Sprintf("%dK", s>>10),
				f3(d16[i].I.Stats.MissRate()), f3(dlxe[i].I.Stats.MissRate()))
		}
		c.render(t)
		c.printf("\n")
	}
	return nil
}

// figCPIvsPenalty reproduces Figures 17/18: CPI against miss penalty for
// one cache size.
func figCPIvsPenalty(c *Ctx, size uint32) error {
	c.printf("CPI vs miss penalty with %dK split I/D caches\n\n", size>>10)
	idx := -1
	for i, s := range cacheSizes {
		if s == size {
			idx = i
		}
	}
	for _, b := range bench.CacheBenchmarks() {
		d16, dlxe, md, mx, err := c.sweepBoth(b)
		if err != nil {
			return err
		}
		c.printf("%s (path ratio D16/DLXe = %.2f):\n", b.Name,
			float64(md.Stats.Instrs)/float64(mx.Stats.Instrs))
		t := &table{header: []string{"miss penalty", "DLXe CPI", "D16 CPI", "D16 normalized"}}
		for _, p := range []int64{4, 8, 12, 16} {
			sx := dlxe[idx]
			sd := d16[idx]
			cpiX := sx.CPI(mx.Stats.Instrs, mx.Stats.Interlocks, p)
			cpiD := sd.CPI(md.Stats.Instrs, md.Stats.Interlocks, p)
			norm := float64(sd.Cycles(md.Stats.Instrs, md.Stats.Interlocks, p)) /
				float64(mx.Stats.Instrs)
			t.row(i64(p), f2(cpiX), f2(cpiD), f2(norm))
		}
		c.render(t)
		c.printf("\n")
	}
	return nil
}

// figCacheTraffic reproduces Figure 19: instruction memory traffic in
// words per cycle, with a miss penalty of 4 cycles, against cache size.
func figCacheTraffic(c *Ctx) error {
	c.printf("Instruction traffic in words/cycle (miss penalty 4) vs cache size\n\n")
	for _, b := range bench.CacheBenchmarks() {
		d16, dlxe, md, mx, err := c.sweepBoth(b)
		if err != nil {
			return err
		}
		c.printf("%s:\n", b.Name)
		t := &table{header: []string{"cache size", "D16", "DLXe"}}
		for i, s := range cacheSizes {
			wd := d16[i].IWordsPerCycle(md.Stats.Instrs, md.Stats.Interlocks, 4)
			wx := dlxe[i].IWordsPerCycle(mx.Stats.Instrs, mx.Stats.Interlocks, 4)
			t.row(fmt.Sprintf("%dK", s>>10), f3(wd), f3(wx))
		}
		c.render(t)
		c.printf("\n")
	}
	return nil
}

// tabCacheBench reproduces Table 13: base traffic and interlock data for
// the cache benchmarks.
func tabCacheBench(c *Ctx) error {
	c.printf("Traffic and interlocks for cache benchmarks\n\n")
	t := &table{header: []string{"program", "ISA", "instrs", "interlock rate",
		"fetch words", "data reads", "data writes"}}
	for _, b := range bench.CacheBenchmarks() {
		for _, spec := range []*isa.Spec{cfgD16, cfgX323} {
			m, err := c.Lab.Measure(b, spec)
			if err != nil {
				return err
			}
			t.row(b.Name, spec.Enc.String(), i64(m.Stats.Instrs),
				f3(float64(m.Stats.Interlocks)/float64(m.Stats.Instrs)),
				i64(m.Stats.FetchWords), i64(m.Stats.Loads), i64(m.Stats.Stores))
		}
	}
	c.render(t)
	return nil
}

// tabMissRates reproduces Tables 14-16: instruction, data-read and
// data-write miss rates across cache sizes and block sizes (8-byte
// sub-blocks, wrap-around read prefetch, no prefetch on write).
func tabMissRates(c *Ctx, name string) error {
	b := bench.ByName(name)
	var cfgs []cache.Config
	blocks := []uint32{8, 16, 32, 64}
	for _, s := range cacheSizes {
		for _, bl := range blocks {
			cfgs = append(cfgs, cache.PaperConfigSub(s, bl))
		}
	}
	d16, err := c.Lab.CacheSweep(b, cfgD16, cfgs)
	if err != nil {
		return err
	}
	dlxe, err := c.Lab.CacheSweep(b, cfgX323, cfgs)
	if err != nil {
		return err
	}
	c.printf("Cache miss rates for %s (per access; 8-byte sub-blocks)\n\n", name)
	t := &table{header: []string{"size", "block",
		"I D16", "I DLXe", "Dread D16", "Dread DLXe", "Dwrite D16", "Dwrite DLXe"}}
	i := 0
	for _, s := range cacheSizes {
		for _, bl := range blocks {
			t.row(fmt.Sprintf("%dK", s>>10), fmt.Sprintf("%d", bl),
				f3(d16[i].I.Stats.MissRate()), f3(dlxe[i].I.Stats.MissRate()),
				f3(d16[i].D.Stats.ReadMissRate()), f3(dlxe[i].D.Stats.ReadMissRate()),
				f3(d16[i].D.Stats.WriteMissRate()), f3(dlxe[i].D.Stats.WriteMissRate()))
			i++
		}
	}
	c.render(t)
	return nil
}
