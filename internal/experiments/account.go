package experiments

import (
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// Account renders the cycle-accounting report behind `repro -account`:
// where the cycles go, not just how many there are. For every benchmark
// it attributes each simulated cycle of the cycle-level engine to a
// cause bucket — on D16 and DLXe, cacheless and behind the paper's 4KB
// caches — then emits the differential per-function D16-vs-DLXe report
// (cycles and instruction-fetch bytes), the attributed version of the
// paper's Figure 4/8 density-vs-traffic story.
func Account(c *Ctx) error { return accountBenches(c, bench.All()) }

func accountBenches(c *Ctx, benches []*bench.Benchmark) error {
	cfgs := []core.AccountConfig{
		{BusBytes: 4, WaitStates: 1},                    // cacheless reference
		{BusBytes: 4, CacheBytes: 4096, MissPenalty: 8}, // 4KB split I/D
	}
	colName := []string{"D16", "DLXe", "D16+4K$", "DLXe+4K$"}

	var totals []accountTotal
	for _, b := range benches {
		d16, err := c.Lab.Account(b, cfgD16, cfgs)
		if err != nil {
			return err
		}
		dlxe, err := c.Lab.Account(b, cfgX323, cfgs)
		if err != nil {
			return err
		}
		engines := []*pipeline.Engine{
			d16.Engines[0], dlxe.Engines[0], d16.Engines[1], dlxe.Engines[1],
		}

		c.printf("%s — cycle attribution (bus 4B, 1 wait state; cached columns: 4KB I/D, 8-cycle miss)\n", b.Name)
		t := &table{header: []string{"bucket"}}
		for _, n := range colName {
			t.header = append(t.header, n, "%")
		}
		var bds []pipeline.Breakdown
		for i, e := range engines {
			bd := e.Breakdown()
			if err := bd.Snapshot(b.Name + "/" + colName[i]).Check(); err != nil {
				return err
			}
			if bd.Sum() != e.Cycles() {
				return fmt.Errorf("account: %s/%s attribution leak: %d != %d",
					b.Name, colName[i], bd.Sum(), e.Cycles())
			}
			bds = append(bds, bd)
		}
		for bkt := 0; bkt < pipeline.NumBuckets; bkt++ {
			row := []string{pipeline.Bucket(bkt).String()}
			for _, bd := range bds {
				row = append(row, i64(bd[bkt]), pct(safeDiv(float64(bd[bkt]), float64(bd.Sum()))))
			}
			t.row(row...)
		}
		totalRow := []string{"total"}
		for _, bd := range bds {
			totalRow = append(totalRow, i64(bd.Sum()), "100.0")
		}
		t.row(totalRow...)
		c.render(t)
		c.printf("\n")

		if err := accountDiff(c, b.Name, d16, dlxe); err != nil {
			return err
		}
		// Persist the cached-memory points (CacheKB > 0): the closed-form
		// grid in Lab.Points() only covers cacheless interfaces, so these
		// measured cached cells are the only way cache configurations
		// reach points.mcst. Cacheless engine points are NOT persisted —
		// they would collide by key with the closed-form grid's cells
		// under a different cycle model.
		for _, side := range []struct {
			spec *isa.Spec
			run  *core.AccountRun
		}{{cfgD16, d16}, {cfgX323, dlxe}} {
			comp, err := c.Lab.Compile(b, side.spec)
			if err != nil {
				return err
			}
			c.Points = append(c.Points,
				core.AccountPoint(b.Name, side.spec.Name, comp, side.run.Engines[1], cfgs[1]))
		}
		totals = append(totals, accountTotal{
			bench:     b.Name,
			d16Cyc:    d16.Engines[0].Cycles(),
			dlxeCyc:   dlxe.Engines[0].Cycles(),
			d16Bytes:  d16.Engines[0].FetchBytes(),
			dlxeBytes: dlxe.Engines[0].FetchBytes(),
		})
	}

	c.printf("Suite summary — D16 relative to DLXe (cacheless, bus 4B, 1 wait state)\n")
	t := &table{header: []string{"program", "D16 cycles", "DLXe cycles", "cyc ratio", "D16 ifetch B", "DLXe ifetch B", "byte ratio"}}
	var cycSum, byteSum float64
	for _, tt := range totals {
		cr := safeDiv(float64(tt.d16Cyc), float64(tt.dlxeCyc))
		br := safeDiv(float64(tt.d16Bytes), float64(tt.dlxeBytes))
		cycSum += cr
		byteSum += br
		t.row(tt.bench, i64(tt.d16Cyc), i64(tt.dlxeCyc), f2(cr),
			i64(tt.d16Bytes), i64(tt.dlxeBytes), f2(br))
	}
	n := float64(len(totals))
	t.row("AVERAGE", "", "", f2(cycSum/n), "", "", f2(byteSum/n))
	c.render(t)
	c.printf("\n")
	return nil
}

type accountTotal struct {
	bench               string
	d16Cyc, dlxeCyc     int64
	d16Bytes, dlxeBytes int64
}

// accountDiff renders the per-function differential between the two
// ISAs' cacheless accounted runs: where D16 spends its extra issue
// cycles and where it wins them back in fetch traffic.
func accountDiff(c *Ctx, benchName string, d16, dlxe *core.AccountRun) error {
	type fn struct {
		d16Cyc, dlxeCyc     int64
		d16Bytes, dlxeBytes int64
	}
	fns := map[string]*fn{}
	get := func(name string) *fn {
		f := fns[name]
		if f == nil {
			f = &fn{}
			fns[name] = f
		}
		return f
	}
	for _, fa := range d16.Engines[0].PerFunc(d16.Syms) {
		f := get(fa.Name)
		f.d16Cyc, f.d16Bytes = fa.Cycles, fa.FetchBytes
	}
	for _, fa := range dlxe.Engines[0].PerFunc(dlxe.Syms) {
		f := get(fa.Name)
		f.dlxeCyc, f.dlxeBytes = fa.Cycles, fa.FetchBytes
	}
	names := make([]string, 0, len(fns))
	for n := range fns { //detlint:ignore rangemap sorted immediately below
		names = append(names, n)
	}
	// Hottest DLXe functions first; ties and D16-only functions by name.
	sort.Slice(names, func(i, j int) bool {
		a, b := fns[names[i]], fns[names[j]]
		if a.dlxeCyc != b.dlxeCyc {
			return a.dlxeCyc > b.dlxeCyc
		}
		return names[i] < names[j]
	})

	c.printf("%s — per-function differential, D16 vs DLXe (cycles, ifetch bytes)\n", benchName)
	t := &table{header: []string{"function", "D16 cyc", "DLXe cyc", "Δcyc", "ratio", "D16 B", "DLXe B", "B ratio"}}
	var tot fn
	for _, n := range names {
		f := fns[n]
		tot.d16Cyc += f.d16Cyc
		tot.dlxeCyc += f.dlxeCyc
		tot.d16Bytes += f.d16Bytes
		tot.dlxeBytes += f.dlxeBytes
		t.row(n, i64(f.d16Cyc), i64(f.dlxeCyc), i64(f.d16Cyc-f.dlxeCyc),
			ratioCell(f.d16Cyc, f.dlxeCyc),
			i64(f.d16Bytes), i64(f.dlxeBytes), ratioCell(f.d16Bytes, f.dlxeBytes))
	}
	t.row("TOTAL", i64(tot.d16Cyc), i64(tot.dlxeCyc), i64(tot.d16Cyc-tot.dlxeCyc),
		ratioCell(tot.d16Cyc, tot.dlxeCyc),
		i64(tot.d16Bytes), i64(tot.dlxeBytes), ratioCell(tot.d16Bytes, tot.dlxeBytes))
	c.render(t)
	c.printf("\n")
	return nil
}

func ratioCell(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return f2(float64(a) / float64(b))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
