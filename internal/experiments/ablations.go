package experiments

import (
	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/isa"
)

// Extension experiments beyond the paper's figures (DESIGN.md §6): cost
// accounting for D16's literal pools, the paper's Section 3.3.3 proposal
// of an 8-bit compare-immediate, a cache-organization sweep the paper
// holds fixed, and delay-slot scheduling effectiveness.

func init() {
	register("ablate-relax", "Ablation: D16 literal-pool and far-call costs", ablatePools)
	register("ablate-cmp8", "Ablation: Section 3.3.3's 8-bit compare-immediate proposal", ablateCmp8)
	register("ablate-d16plus", "Ablation: the D16+ variant built and measured", ablateD16Plus)
	register("ablate-cache", "Ablation: associativity and write policy (paper fixes direct-mapped)", ablateCache)
	register("ablate-nops", "Ablation: delay-slot fill effectiveness (nop fraction)", ablateNops)
}

// ablatePools accounts for what D16's literal-pool mechanism (LDC) costs:
// static pool bytes and dynamic pool loads.
func ablatePools(c *Ctx) error {
	c.printf("D16 literal pools: the cost of no direct call / large-constant format\n\n")
	ms, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "pool bytes", "% of text", "pool loads", "% of loads"}}
	var sb, sl []float64
	for _, b := range bench.All() {
		m := ms[b.Name]
		fb := float64(m.PoolBytes) / float64(m.TextBytes)
		fl := float64(m.Stats.PoolLoads) / float64(m.Stats.Loads)
		sb, sl = append(sb, fb), append(sl, fl)
		t.row(b.Name, i64(int64(m.PoolBytes)), pct(fb), i64(m.Stats.PoolLoads), pct(fl))
	}
	t.row("AVERAGE", "", pct(mean(sb)), "", pct(mean(sl)))
	c.render(t)
	return nil
}

// ablateCmp8 measures the dynamic frequency of compare-immediates whose
// comparand fits 8 bits: the upper bound on the paper's proposed D16
// compare-equal-immediate instruction (predicted "up to 2 percent").
func ablateCmp8(c *Ctx) error {
	c.printf("Compare-immediates that an 8-bit D16 cmp-imm would capture (DLXe/16/2 trace)\n\n")
	ms, err := c.suiteMeasurements(cfgX162)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "cmp-imm %", "fits 8 bits %"}}
	var all, fit []float64
	for _, b := range bench.All() {
		s := ms[b.Name].Imm
		a := float64(s.CmpImm) / float64(s.Total)
		f := float64(s.CmpImm8) / float64(s.Total)
		all, fit = append(all, a), append(fit, f)
		t.row(b.Name, pct(a), pct(f))
	}
	t.row("AVERAGE", pct(mean(all)), pct(mean(fit)))
	c.render(t)
	c.printf("\nThe paper predicts the new instruction \"could improve D16 performance by\n")
	c.printf("up to 2 percent\"; the fits-8-bits column is that bound for this suite.\n")
	return nil
}

// ablateD16Plus builds the paper's proposed variant — one MVI bit traded
// for an 8-bit compare-equal immediate — and measures it directly
// (the paper only predicts "up to 2 percent").
func ablateD16Plus(c *Ctx) error {
	c.printf("D16+ (8-bit mvi + 8-bit compare-equal immediate) vs base D16\n\n")
	base, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	plus, err := c.suiteMeasurements(isa.D16Plus())
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "path ratio", "size ratio", "speedup %"}}
	var prs, srs []float64
	for _, b := range bench.All() {
		pr := float64(plus[b.Name].Stats.Instrs) / float64(base[b.Name].Stats.Instrs)
		sr := float64(plus[b.Name].Size) / float64(base[b.Name].Size)
		prs, srs = append(prs, pr), append(srs, sr)
		t.row(b.Name, f3(pr), f3(sr), pct(1-pr))
	}
	t.row("AVERAGE", f3(mean(prs)), f3(mean(srs)), pct(1-mean(prs)))
	c.render(t)
	c.printf("\nOutputs agree with the base suite (verified per run); the paper\n")
	c.printf("predicted up to 2%% — the narrower move-immediate claws some back.\n")
	return nil
}

// ablateCache sweeps the organization parameters the paper fixes:
// associativity 1/2/4 and write-back vs write-through, at 4K.
func ablateCache(c *Ctx) error {
	c.printf("4K I-cache miss rates under organizations the paper holds fixed\n\n")
	cfgs := []cache.Config{
		{Size: 4 << 10, BlockBytes: 32, SubBytes: 4, Assoc: 1},
		{Size: 4 << 10, BlockBytes: 32, SubBytes: 4, Assoc: 2},
		{Size: 4 << 10, BlockBytes: 32, SubBytes: 4, Assoc: 4},
		{Size: 4 << 10, BlockBytes: 32, SubBytes: 4, Assoc: 1, WriteThrough: true},
	}
	names := []string{"direct-mapped", "2-way", "4-way", "direct, write-through"}
	for _, b := range bench.CacheBenchmarks() {
		d16, err := c.Lab.CacheSweep(b, cfgD16, cfgs)
		if err != nil {
			return err
		}
		dlxe, err := c.Lab.CacheSweep(b, cfgX323, cfgs)
		if err != nil {
			return err
		}
		c.printf("%s:\n", b.Name)
		t := &table{header: []string{"organization", "I miss D16", "I miss DLXe",
			"D mem-writes D16", "D mem-writes DLXe"}}
		for i, n := range names {
			t.row(n, f3(d16[i].I.Stats.MissRate()), f3(dlxe[i].I.Stats.MissRate()),
				i64(d16[i].D.Stats.MemWriteWords), i64(dlxe[i].D.Stats.MemWriteWords))
		}
		c.render(t)
		c.printf("\n")
	}
	return nil
}

// ablateNops reports the fraction of executed instructions that are
// delay-slot nops, per configuration — the residual cost of the
// architectural delay slots after the scheduler's fill pass.
func ablateNops(c *Ctx) error {
	c.printf("Executed nop fraction (unfilled delay slots) per configuration\n\n")
	t := &table{header: []string{"program"}}
	specs := allConfigs()
	for _, s := range specs {
		t.header = append(t.header, s.Name)
	}
	sums := make([]float64, len(specs))
	for _, b := range bench.All() {
		row := []string{b.Name}
		for i, s := range specs {
			m, err := c.Lab.Measure(b, s)
			if err != nil {
				return err
			}
			f := float64(m.Stats.Nops) / float64(m.Stats.Instrs)
			sums[i] += f
			row = append(row, pct(f))
		}
		t.row(row...)
	}
	avg := []string{"AVERAGE"}
	for _, s := range sums {
		avg = append(avg, pct(s/float64(len(bench.All()))))
	}
	t.row(avg...)
	c.render(t)
	return nil
}
