package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestFig4JSONRoundTrip runs fig4 with a recorder attached and checks the
// structured result (a) mirrors the rendered text cell-for-cell and (b)
// survives an encoding/json round trip unchanged — the guarantee repro's
// -json mode relies on.
func TestFig4JSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	var out strings.Builder
	ctx := &Ctx{
		Lab: core.NewLab(),
		W:   &out,
		Rec: telemetry.NewExperimentResult("fig4", "test"),
	}
	if err := ByID("fig4").Run(ctx); err != nil {
		t.Fatal(err)
	}
	rec := ctx.Rec
	if len(rec.Tables) == 0 {
		t.Fatal("no tables recorded")
	}
	text := out.String()
	for ti, tab := range rec.Tables {
		if len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("table %d empty: %+v", ti, tab)
		}
		// Every recorded cell appears verbatim in the text rendering.
		for _, row := range tab.Rows {
			for _, cell := range row {
				if cell != "" && !strings.Contains(text, cell) {
					t.Errorf("table %d cell %q not in text output", ti, cell)
				}
			}
		}
	}

	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.ExperimentResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rec, back) {
		t.Errorf("round trip changed the result:\n got %+v\nwant %+v", back, *rec)
	}
}
