package experiments

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
)

// The cacheless memory-interface experiments of Section 4: Figures 14
// and 15, Tables 11 and 12.

func init() {
	register("fig14", "Figure 14: normalized CPI for 32-bit and 64-bit fetch, no cache", figNoCacheCPI)
	register("fig15", "Figure 15: instruction fetch saturation, no instruction cache", figSaturation)
	register("tab11", "Table 11: DLXe/D16 performance, 32-bit fetch bus, no cache", func(c *Ctx) error {
		return tabCycleRatios(c, 4)
	})
	register("tab12", "Table 12: DLXe/D16 cycles, 64-bit fetch bus, no cache", func(c *Ctx) error {
		return tabCycleRatios(c, 8)
	})
}

var waitStates = []int64{0, 1, 2, 3}

// figNoCacheCPI reproduces Figure 14: suite-average CPI against wait
// states for both bus widths. "D16 normalized" divides D16 cycles by the
// DLXe path length, factoring out the instruction-count difference.
func figNoCacheCPI(c *Ctx) error {
	d16, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x32, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	for _, bus := range []uint32{4, 8} {
		kD := d16["queens"].Bus32.K(isa.EncD16)
		kX := x32["queens"].Bus32.K(isa.EncDLXe)
		if bus == 8 {
			kD, kX = 2*kD, 2*kX
		}
		c.printf("\n%d-bit fetch, no cache (DLXe k=%d, D16 k=%d); suite-average CPI\n\n", bus*8, kX, kD)
		t := &table{header: []string{"wait states", "DLXe CPI", "D16 CPI", "D16 normalized"}}
		for _, l := range waitStates {
			var cx, cd, cn []float64
			for _, b := range bench.All() {
				mx, md := x32[b.Name], d16[b.Name]
				cx = append(cx, mx.CPI(bus, l))
				cd = append(cd, md.CPI(bus, l))
				cn = append(cn, float64(md.Cycles(bus, l))/float64(mx.Stats.Instrs))
			}
			t.row(i64(l), f2(mean(cx)), f2(mean(cd)), f2(mean(cn)))
		}
		c.render(t)
	}
	return nil
}

// figSaturation reproduces Figure 15: fetch requests per cycle.
func figSaturation(c *Ctx) error {
	d16, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x32, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	for _, bus := range []uint32{4, 8} {
		c.printf("\n%d-bit fetch, no cache; suite-average fetches per cycle\n\n", bus*8)
		t := &table{header: []string{"wait states", "DLXe", "D16"}}
		for _, l := range waitStates {
			var fx, fd []float64
			for _, b := range bench.All() {
				mx, md := x32[b.Name], d16[b.Name]
				busX, busD := mx.Bus32, md.Bus32
				if bus == 8 {
					busX, busD = mx.Bus64, md.Bus64
				}
				fx = append(fx, busX.FetchesPerCycle(mx.Stats.Instrs, mx.Stats.Interlocks, l))
				fd = append(fd, busD.FetchesPerCycle(md.Stats.Instrs, md.Stats.Interlocks, l))
			}
			t.row(i64(l), f3(mean(fx)), f3(mean(fd)))
		}
		c.render(t)
	}
	return nil
}

// tabCycleRatios reproduces Tables 11/12: per-program DLXe/D16 total
// cycle ratios for wait states 0-3 (paper, 32-bit bus: mean 0.87 at l=0
// rising to 1.19 at l=3 — D16 wins with any nonzero wait state).
func tabCycleRatios(c *Ctx, busBytes uint32) error {
	d16, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x32, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	c.printf("DLXe/D16 cycle ratios, %d-bit fetch bus (>1 means D16 is faster)\n\n", busBytes*8)
	t := &table{header: []string{"program", "l=0", "l=1", "l=2", "l=3"}}
	sums := make([]float64, len(waitStates))
	for _, b := range bench.All() {
		row := []string{b.Name}
		for i, l := range waitStates {
			r := ratioCycles(x32[b.Name], d16[b.Name], busBytes, l)
			sums[i] += r
			row = append(row, f2(r))
		}
		t.row(row...)
	}
	avg := []string{"MEAN"}
	for _, s := range sums {
		avg = append(avg, f2(s/float64(len(bench.All()))))
	}
	t.row(avg...)
	c.render(t)
	return nil
}

func ratioCycles(x, d *core.Measurement, busBytes uint32, l int64) float64 {
	return float64(x.Cycles(busBytes, l)) / float64(d.Cycles(busBytes, l))
}
