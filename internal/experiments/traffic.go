package experiments

import (
	"repro/internal/bench"
)

// Traffic and instruction-mix experiments: Figure 13, Tables 3, 4, 8, 9, 10.

func init() {
	register("tab3", "Table 3: data traffic increase for the smaller register file (%)", tabDataTraffic)
	register("tab4", "Table 4: average immediate-field instruction frequencies", tabImmFreq)
	register("fig13", "Figure 13: instruction traffic vs code size (DLXe/D16)", figTrafficVsSize)
	register("tab8", "Table 8: path length and instruction traffic (32-bit words)", tabPathTraffic)
	register("tab9", "Table 9: total loads and stores", tabLoadsStores)
	register("tab10", "Table 10: delayed load and math unit interlocks", tabInterlocks)
}

// tabDataTraffic reproduces Table 3: loads+stores of D16 and DLXe/16
// relative to DLXe/32 (three-address forms), in percent increase.
func tabDataTraffic(c *Ctx) error {
	c.printf("Data traffic (loads+stores) increase over DLXe/32 (paper avg: D16 ~10%%, DLXe-16 ~9%%)\n\n")
	d16, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x16, err := c.suiteMeasurements(cfgX163)
	if err != nil {
		return err
	}
	x32, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "D16 %", "DLXe-16 %"}}
	var a1, a2 []float64
	for _, b := range bench.All() {
		base := float64(x32[b.Name].Stats.DataOps())
		p1 := (float64(d16[b.Name].Stats.DataOps()) - base) / base
		p2 := (float64(x16[b.Name].Stats.DataOps()) - base) / base
		a1, a2 = append(a1, p1), append(a2, p2)
		t.row(b.Name, pct(p1), pct(p2))
	}
	t.row("AVERAGE", pct(mean(a1)), pct(mean(a2)))
	c.render(t)
	return nil
}

// tabImmFreq reproduces Table 4: the dynamic frequency of DLXe
// instructions whose immediates exceed D16's fields, measured on the
// restricted DLXe/16/2 machine (the paper's comparison baseline).
func tabImmFreq(c *Ctx) error {
	c.printf("Dynamic frequency of immediates beyond D16 limits on DLXe/16/2\n")
	c.printf("(paper: cmp-imm 2.1%%, ALU imm >5 bits 2.8%%, mem disp >8 bits 4.6%%, total 9.5%%)\n\n")
	ms, err := c.suiteMeasurements(cfgX162)
	if err != nil {
		return err
	}
	var cmpR, aluR, memR, mviR, callR []float64
	t := &table{header: []string{"program", "cmp-imm %", "alu-imm %", "mem-disp %", "wide-mvi %", "far-call %", "total %"}}
	for _, b := range bench.All() {
		s := ms[b.Name].Imm
		tot := float64(s.Total)
		cr, ar, mr := float64(s.CmpImm)/tot, float64(s.WideALU)/tot, float64(s.WideMem)/tot
		vr, fr := float64(s.WideMVI)/tot, float64(s.FarCalls)/tot
		cmpR, aluR, memR = append(cmpR, cr), append(aluR, ar), append(memR, mr)
		mviR, callR = append(mviR, vr), append(callR, fr)
		t.row(b.Name, pct(cr), pct(ar), pct(mr), pct(vr), pct(fr), pct(cr+ar+mr+vr+fr))
	}
	t.row("AVERAGE", pct(mean(cmpR)), pct(mean(aluR)), pct(mean(memR)),
		pct(mean(mviR)), pct(mean(callR)),
		pct(mean(cmpR)+mean(aluR)+mean(memR)+mean(mviR)+mean(callR)))
	c.render(t)
	return nil
}

// figTrafficVsSize tests Steenkiste's uniformity assumption: the
// DLXe/D16 instruction-traffic ratio should track the static-size ratio.
func figTrafficVsSize(c *Ctx) error {
	c.printf("Instruction traffic (32-bit words fetched) and static size, DLXe/D16\n\n")
	d16, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x32, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "traffic ratio", "static ratio"}}
	var tr, sr []float64
	for _, b := range bench.All() {
		r1 := float64(x32[b.Name].Stats.FetchWords) / float64(d16[b.Name].Stats.FetchWords)
		r2 := float64(x32[b.Name].TextBytes) / float64(d16[b.Name].TextBytes)
		tr, sr = append(tr, r1), append(sr, r2)
		t.row(b.Name, f2(r1), f2(r2))
	}
	t.row("AVERAGE", f2(mean(tr)), f2(mean(sr)))
	c.render(t)
	return nil
}

// tabPathTraffic reproduces Table 8: path length vs instruction words
// fetched, with D16's percentage traffic reduction.
func tabPathTraffic(c *Ctx) error {
	c.printf("Path length vs instruction traffic in words (paper: D16 reduction avg 35.6%%)\n\n")
	d16, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x32, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "path D16", "path DLXe", "words D16", "words DLXe", "reduction %"}}
	var reds []float64
	for _, b := range bench.All() {
		wd, wx := d16[b.Name].Stats.FetchWords, x32[b.Name].Stats.FetchWords
		red := (float64(wx) - float64(wd)) / float64(wx)
		reds = append(reds, red)
		t.row(b.Name, i64(d16[b.Name].Stats.Instrs), i64(x32[b.Name].Stats.Instrs),
			i64(wd), i64(wx), pct(red))
	}
	t.row("AVERAGE", "", "", "", "", pct(mean(reds)))
	c.render(t)
	return nil
}

// tabLoadsStores reproduces Table 9.
func tabLoadsStores(c *Ctx) error {
	c.printf("Total loads and stores (D16 vs DLXe; %% = DLXe advantage)\n\n")
	d16, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x32, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "D16", "DLXe", "increase %"}}
	var incs []float64
	for _, b := range bench.All() {
		md, mx := d16[b.Name].Stats.DataOps(), x32[b.Name].Stats.DataOps()
		inc := (float64(md) - float64(mx)) / float64(mx)
		incs = append(incs, inc)
		t.row(b.Name, i64(md), i64(mx), pct(inc))
	}
	t.row("AVERAGE", "", "", pct(mean(incs)))
	c.render(t)
	return nil
}

// tabInterlocks reproduces Table 10.
func tabInterlocks(c *Ctx) error {
	c.printf("Delayed-load and math-unit interlocks (paper mean rates: D16 .104, DLXe .122)\n\n")
	d16, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x32, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program",
		"D16 instrs", "D16 interlocks", "D16 rate",
		"DLXe instrs", "DLXe interlocks", "DLXe rate"}}
	var rd, rx []float64
	for _, b := range bench.All() {
		d, x := d16[b.Name].Stats, x32[b.Name].Stats
		r1 := float64(d.Interlocks) / float64(d.Instrs)
		r2 := float64(x.Interlocks) / float64(x.Instrs)
		rd, rx = append(rd, r1), append(rx, r2)
		t.row(b.Name, i64(d.Instrs), i64(d.Interlocks), f3(r1),
			i64(x.Instrs), i64(x.Interlocks), f3(r2))
	}
	t.row("MEAN", "", "", f3(mean(rd)), "", "", f3(mean(rx)))
	c.render(t)
	return nil
}
