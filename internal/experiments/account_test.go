package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestAccountReport runs the cycle-accounting report on a slice of the
// suite and checks the tables carry the paper's story: attribution
// totals are exact, and D16 fetches fewer instruction bytes than DLXe.
func TestAccountReport(t *testing.T) {
	var out strings.Builder
	ctx := &Ctx{
		Lab: core.NewLab(),
		W:   &out,
		Rec: telemetry.NewExperimentResult("account", "test"),
	}
	benches := []*bench.Benchmark{bench.ByName("queens"), bench.ByName("towers")}
	for _, b := range benches {
		if b == nil {
			t.Fatal("test benchmark missing from suite")
		}
	}
	if err := accountBenches(ctx, benches); err != nil {
		t.Fatal(err)
	}

	// Per bench: one breakdown table + one differential table, plus the
	// suite summary.
	if got, want := len(ctx.Rec.Tables), 2*len(benches)+1; got != want {
		t.Fatalf("recorded %d tables, want %d", got, want)
	}

	// Breakdown tables end in an exact total row; cell strings are the
	// integers the engines reported (spot-check per-column sums).
	for _, bt := range []*telemetry.Table{ctx.Rec.Tables[0], ctx.Rec.Tables[2]} {
		last := bt.Rows[len(bt.Rows)-1]
		if last[0] != "total" {
			t.Fatalf("breakdown table does not end with total row: %v", last)
		}
		for col := 1; col < len(bt.Header); col += 2 {
			var sum int64
			for _, row := range bt.Rows[:len(bt.Rows)-1] {
				v, err := strconv.ParseInt(row[col], 10, 64)
				if err != nil {
					t.Fatalf("non-integer cycle cell %q: %v", row[col], err)
				}
				sum += v
			}
			total, _ := strconv.ParseInt(last[col], 10, 64)
			if sum != total {
				t.Errorf("%s column %s: bucket cells sum to %d, total row says %d",
					bt.Caption, bt.Header[col], sum, total)
			}
		}
	}

	// The suite summary's byte ratio carries the density story.
	sum := ctx.Rec.Tables[len(ctx.Rec.Tables)-1]
	for _, row := range sum.Rows {
		if row[0] == "AVERAGE" {
			continue
		}
		d16B, _ := strconv.ParseInt(row[4], 10, 64)
		dlxeB, _ := strconv.ParseInt(row[5], 10, 64)
		if d16B <= 0 || dlxeB <= 0 || d16B >= dlxeB {
			t.Errorf("%s: D16 should fetch fewer instruction bytes (%d vs %d)",
				row[0], d16B, dlxeB)
		}
	}

	// The text rendering includes the differential report.
	if !strings.Contains(out.String(), "per-function differential") {
		t.Error("differential report missing from text output")
	}
}
