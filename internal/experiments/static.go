package experiments

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
)

// The static code-density and path-length experiments of Section 3:
// Figures 4-12 and Tables 5-7.

func init() {
	register("fig4", "Figure 4: D16 relative density (DLXe bytes / D16 bytes)", figDensityRatio)
	register("fig5", "Figure 5: DLXe path length reduction (DLXe/D16, D16 = 1.0)", figPathRatio)
	register("fig6", "Figure 6: density effects of 16 vs 32 registers (D16 = 1.00)", figRegDensity)
	register("fig7", "Figure 7: path length effects, 16 vs 32 registers (D16 = 1.0)", figRegPath)
	register("fig8", "Figure 8: code density effects, two-address instructions (D16 = 1.00)", figAddrDensity)
	register("fig9", "Figure 9: path length effects, two-address instructions (D16 = 1.0)", figAddrPath)
	register("fig10", "Figure 10: effect of large immediates on path lengths (speedup, D16 = 1.00)", figImmediates)
	register("fig11", "Figure 11: code density summary (all configurations, ratios to D16)", figDensitySummary)
	register("fig12", "Figure 12: path length summary (all configurations, ratios to D16)", figPathSummary)
	register("tab5", "Table 5: summary of density and path length effects (suite averages)", tabSummary)
	register("tab6", "Table 6: code size/density summary (bytes per configuration)", tabCodeSize)
	register("tab7", "Table 7: path length summary (instructions per configuration)", tabPathLen)
}

// ratioTable prints per-benchmark ratios metric(spec)/metric(base).
func (c *Ctx) ratioTable(specs []*isa.Spec,
	metric func(*core.Measurement) float64) error {

	t := &table{header: []string{"program"}}
	for _, s := range specs {
		t.header = append(t.header, s.Name)
	}
	base, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	cols := make([]map[string]*core.Measurement, len(specs))
	for i, s := range specs {
		cols[i], err = c.suiteMeasurements(s)
		if err != nil {
			return err
		}
	}
	avgs := make([][]float64, len(specs))
	for _, b := range bench.All() {
		row := []string{b.Name}
		for i := range specs {
			r := metric(cols[i][b.Name]) / metric(base[b.Name])
			avgs[i] = append(avgs[i], r)
			row = append(row, f2(r))
		}
		t.row(row...)
	}
	avgRow := []string{"AVERAGE"}
	for i := range specs {
		avgRow = append(avgRow, f2(mean(avgs[i])))
	}
	t.row(avgRow...)
	c.render(t)
	return nil
}

func sizeOf(m *core.Measurement) float64 { return float64(m.Size) }
func pathOf(m *core.Measurement) float64 { return float64(m.Stats.Instrs) }

func figDensityRatio(c *Ctx) error {
	c.printf("D16 relative density: static code size DLXe / D16 (paper: avg ~1.5)\n")
	c.printf("(binary = text+data as the paper counts; the text column factors out\n")
	c.printf("the embedded input data our scaled benchmarks carry)\n\n")
	base, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	x, err := c.suiteMeasurements(cfgX323)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "binary", "text only"}}
	var rb, rt []float64
	for _, b := range bench.All() {
		r1 := float64(x[b.Name].Size) / float64(base[b.Name].Size)
		r2 := float64(x[b.Name].TextBytes) / float64(base[b.Name].TextBytes)
		rb, rt = append(rb, r1), append(rt, r2)
		t.row(b.Name, f2(r1), f2(r2))
	}
	t.row("AVERAGE", f2(mean(rb)), f2(mean(rt)))
	c.render(t)
	return nil
}

func figPathRatio(c *Ctx) error {
	c.printf("DLXe path lengths relative to D16 (paper: avg ~0.87, \"15%% speedup\")\n\n")
	return c.ratioTable([]*isa.Spec{cfgX323}, pathOf)
}

func figRegDensity(c *Ctx) error {
	c.printf("Density with 16 vs 32 registers (three-address DLXe, D16 = 1.00)\n\n")
	return c.ratioTable([]*isa.Spec{cfgX163, cfgX323}, sizeOf)
}

func figRegPath(c *Ctx) error {
	c.printf("Path length with 16 vs 32 registers (three-address DLXe, D16 = 1.0)\n\n")
	return c.ratioTable([]*isa.Spec{cfgX163, cfgX323}, pathOf)
}

func figAddrDensity(c *Ctx) error {
	c.printf("Density with two- vs three-address DLXe (16 and 32 registers, D16 = 1.00)\n\n")
	return c.ratioTable([]*isa.Spec{cfgX162, cfgX163, cfgX322, cfgX323}, sizeOf)
}

func figAddrPath(c *Ctx) error {
	c.printf("Path length with two- vs three-address DLXe (D16 = 1.0)\n\n")
	return c.ratioTable([]*isa.Spec{cfgX162, cfgX163, cfgX322, cfgX323}, pathOf)
}

// figImmediates: DLXe restricted to D16's register file and two-address
// form still has its big immediates/displacements; its speedup over D16
// isolates the immediate-field advantage (paper: ~10%).
func figImmediates(c *Ctx) error {
	c.printf("Speedup from DLXe immediates and offsets (DLXe/16/2 vs D16; >1 = faster)\n\n")
	base, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	rest, err := c.suiteMeasurements(cfgX162)
	if err != nil {
		return err
	}
	t := &table{header: []string{"program", "speedup"}}
	var rs []float64
	for _, b := range bench.All() {
		r := pathOf(base[b.Name]) / pathOf(rest[b.Name])
		rs = append(rs, r)
		t.row(b.Name, f2(r))
	}
	t.row("AVERAGE", f2(mean(rs)))
	c.render(t)
	return nil
}

func figDensitySummary(c *Ctx) error {
	c.printf("Code size ratios DLXe/D16, all four DLXe configurations\n\n")
	return c.ratioTable([]*isa.Spec{cfgX162, cfgX163, cfgX322, cfgX323}, sizeOf)
}

func figPathSummary(c *Ctx) error {
	c.printf("Path length ratios DLXe/D16, all four DLXe configurations\n\n")
	return c.ratioTable([]*isa.Spec{cfgX162, cfgX163, cfgX322, cfgX323}, pathOf)
}

func tabSummary(c *Ctx) error {
	c.printf("Suite-average ratios to D16 (paper: size 1.62/1.61/1.57/1.53, path .95/.94/.90/.87)\n\n")
	base, err := c.suiteMeasurements(cfgD16)
	if err != nil {
		return err
	}
	t := &table{header: []string{"measure", "regs", "two-address", "three-address"}}
	for _, metric := range []struct {
		name string
		f    func(*core.Measurement) float64
	}{{"code size", sizeOf}, {"path length", pathOf}} {
		for _, regs := range []struct {
			label      string
			two, three *isa.Spec
		}{{"16", cfgX162, cfgX163}, {"32", cfgX322, cfgX323}} {
			var r2, r3 []float64
			m2, err := c.suiteMeasurements(regs.two)
			if err != nil {
				return err
			}
			m3, err := c.suiteMeasurements(regs.three)
			if err != nil {
				return err
			}
			for _, b := range bench.All() {
				r2 = append(r2, metric.f(m2[b.Name])/metric.f(base[b.Name]))
				r3 = append(r3, metric.f(m3[b.Name])/metric.f(base[b.Name]))
			}
			t.row(metric.name, regs.label, f2(mean(r2)), f2(mean(r3)))
		}
	}
	c.render(t)
	return nil
}

// tabCodeSize prints Table 6: absolute sizes for every configuration.
func tabCodeSize(c *Ctx) error {
	return c.absoluteTable(func(m *core.Measurement) string { return i64(int64(m.Size)) },
		"bytes (text+data)")
}

// tabPathLen prints Table 7: absolute path lengths.
func tabPathLen(c *Ctx) error {
	return c.absoluteTable(func(m *core.Measurement) string { return i64(m.Stats.Instrs) },
		"dynamic instructions")
}

func (c *Ctx) absoluteTable(cell func(*core.Measurement) string, what string) error {
	c.printf("Per-program %s for each ISA/registers/operands configuration\n\n", what)
	t := &table{header: []string{"program"}}
	cols := allConfigs()
	for _, s := range cols {
		t.header = append(t.header, s.Name)
	}
	ms := make([]map[string]*core.Measurement, len(cols))
	for i, s := range cols {
		var err error
		ms[i], err = c.suiteMeasurements(s)
		if err != nil {
			return err
		}
	}
	for _, b := range bench.All() {
		row := []string{b.Name}
		for i := range cols {
			row = append(row, cell(ms[i][b.Name]))
		}
		t.row(row...)
	}
	c.render(t)
	return nil
}
