// Package experiments reproduces every table and figure in the paper's
// evaluation. Each experiment renders the same rows/series the paper
// reports as text tables; DESIGN.md carries the experiment index and
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Ctx carries the shared measurement lab and output sink. When Rec is
// set, every rendered table is also recorded there verbatim — cell for
// cell the same strings as the text output — which is what repro's -json
// mode exports.
type Ctx struct {
	Lab *core.Lab
	W   io.Writer
	Rec *telemetry.ExperimentResult

	// Points collects measurement points produced by experiments that go
	// beyond the closed-form grid Lab.Points() covers — today the
	// account experiment's cached-memory configurations (CacheKB > 0) —
	// so the driver can persist them alongside the regular surface.
	Points []store.Point

	// caption buffers narrative printf text since the last table; it
	// becomes the next recorded table's caption.
	caption strings.Builder
}

func (c *Ctx) printf(format string, args ...any) {
	fmt.Fprintf(c.W, format, args...)
	if c.Rec != nil {
		fmt.Fprintf(&c.caption, format, args...)
	}
}

// render writes the table to the text sink and records it (with the
// accumulated caption) when structured output is requested.
func (c *Ctx) render(t *table) {
	t.render(c.W)
	if c.Rec != nil {
		c.Rec.AddTable(strings.TrimSpace(c.caption.String()), t.header, t.rows)
		c.caption.Reset()
	}
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string // fig4, tab11, ...
	Title string // the paper's caption
	Run   func(*Ctx) error
}

var registry []*Experiment

func register(id, title string, run func(*Ctx) error) {
	registry = append(registry, &Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment, figures and tables interleaved in paper
// order.
func All() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

// orderOf gives each experiment its position in the paper.
func orderOf(id string) int {
	order := []string{
		"fig4", "fig5", "fig6", "fig7", "tab3", "fig8", "fig9", "fig10",
		"tab4", "fig11", "fig12", "tab5", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "tab6", "tab7", "tab8",
		"tab9", "tab10", "tab11", "tab12", "tab13", "tab14", "tab15",
		"tab16", "ablate-relax", "ablate-cmp8", "ablate-cache",
	}
	for i, x := range order {
		if x == id {
			return i
		}
	}
	return len(order)
}

// ByID returns the named experiment or nil.
func ByID(id string) *Experiment {
	for _, e := range registry {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// The five configurations, by the paper's column names.
var (
	cfgD16  = isa.D16()
	cfgX162 = isa.TwoAddress(isa.RestrictRegs(isa.DLXe(), 16))
	cfgX163 = isa.RestrictRegs(isa.DLXe(), 16)
	cfgX322 = isa.TwoAddress(isa.DLXe())
	cfgX323 = isa.DLXe()
)

func allConfigs() []*isa.Spec {
	return []*isa.Spec{cfgD16, cfgX162, cfgX163, cfgX322, cfgX323}
}

// suiteMeasurements measures the whole suite under one configuration.
// Every point is submitted to the lab's scheduler before any result is
// awaited, so on a parallel lab the suite fans out across the worker
// pool; on the default inline lab the tickets execute synchronously in
// submission order, preserving the sequential behavior exactly. Results
// are collected in benchmark order either way, so callers see a
// deterministic outcome regardless of worker count.
func (c *Ctx) suiteMeasurements(spec *isa.Spec) (map[string]*core.Measurement, error) {
	benches := bench.All()
	tickets := make([]*jobs.Ticket, len(benches))
	for i, b := range benches {
		t, err := c.Lab.MeasureTicket(context.Background(), b, spec)
		if err != nil {
			return nil, err
		}
		tickets[i] = t
	}
	out := map[string]*core.Measurement{}
	for i, b := range benches {
		v, err := tickets[i].Wait(context.Background())
		if err != nil {
			return nil, err
		}
		out[b.Name] = v.(*core.Measurement)
	}
	return out, nil
}

// --- text table rendering ---------------------------------------------------

type table struct {
	header []string
	rows   [][]string
}

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			if i == 0 {
				fmt.Fprintf(w, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(w, "%*s", width[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	var sep []string
	for i := range t.header {
		sep = append(sep, strings.Repeat("-", width[i]))
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f", v*100) }
func i64(v int64) string   { return fmt.Sprintf("%d", v) }

// geomean-free averaging: the paper reports arithmetic means of ratios.
func mean(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func stddev(vals []float64) float64 {
	if len(vals) <= 1 {
		return 0
	}
	m := mean(vals)
	s := 0.0
	for _, v := range vals {
		s += (v - m) * (v - m)
	}
	// Population standard deviation, as small-sample papers usually report.
	return math.Sqrt(s / float64(len(vals)))
}
