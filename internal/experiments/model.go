package experiments

import (
	"repro/internal/bench"
	"repro/internal/pipeline"
)

// ablate-model validates the paper's footnote-2 claim: its closed-form
// cycle estimate tracks a cycle-level pipeline model, and is (slightly)
// pessimistic because it assumes memory latency never overlaps
// execution. The shared-port column additionally serializes instruction
// and data requests — the structural hazard the formula also ignores,
// in the opposite direction.

func init() {
	register("ablate-model", "Ablation: closed-form cycle formula vs cycle-level pipeline model", ablateModel)
}

func ablateModel(c *Ctx) error {
	c.printf("Cycle-level engine vs the paper's formula, 32-bit bus (engine/formula)\n")
	c.printf("(< 1.0 means the formula is pessimistic, the paper's direction)\n\n")
	waits := []int64{0, 1, 2, 3}
	for _, spec := range []struct {
		name string
	}{{"D16"}, {"DLXe"}} {
		cfg := cfgD16
		if spec.name == "DLXe" {
			cfg = cfgX323
		}
		c.printf("%s:\n", spec.name)
		t := &table{header: []string{"program", "l=0", "l=1", "l=2", "l=3", "shared-port l=1"}}
		var pcfgs []pipeline.Config
		for _, l := range waits {
			pcfgs = append(pcfgs, pipeline.Config{BusBytes: 4, WaitStates: l})
		}
		pcfgs = append(pcfgs, pipeline.Config{BusBytes: 4, WaitStates: 1, SharedPort: true})
		sums := make([]float64, len(pcfgs))
		for _, b := range bench.All() {
			engines, err := c.Lab.PipelineRun(b, cfg, pcfgs)
			if err != nil {
				return err
			}
			m, err := c.Lab.Measure(b, cfg)
			if err != nil {
				return err
			}
			row := []string{b.Name}
			for i, e := range engines {
				l := e.Cycles()
				var formula int64
				if i < len(waits) {
					formula = m.Cycles(4, waits[i])
				} else {
					formula = m.Cycles(4, 1)
				}
				r := float64(l) / float64(formula)
				sums[i] += r
				row = append(row, f2(r))
			}
			t.row(row...)
		}
		avg := []string{"AVERAGE"}
		for _, s := range sums {
			avg = append(avg, f2(s/float64(len(bench.All()))))
		}
		t.row(avg...)
		c.render(t)
		c.printf("\n")
	}
	return nil
}
