package memsys

import (
	"testing"

	"repro/internal/isa"
)

func TestSequentialFetchBuffering(t *testing.T) {
	// 8 sequential D16 instructions (2 bytes each) through a 32-bit bus:
	// 4 requests. Through a 64-bit bus: 2 requests.
	n32 := NewNoCache(4)
	n64 := NewNoCache(8)
	for pc := uint32(0x1000); pc < 0x1010; pc += 2 {
		n32.Exec(pc, isa.Instr{})
		n64.Exec(pc, isa.Instr{})
	}
	if n32.IRequests != 4 {
		t.Errorf("32-bit bus requests = %d, want 4", n32.IRequests)
	}
	if n64.IRequests != 2 {
		t.Errorf("64-bit bus requests = %d, want 2", n64.IRequests)
	}
	if k := n32.K(isa.EncD16); k != 2 {
		t.Errorf("k = %d, want 2", k)
	}
	if k := n64.K(isa.EncD16); k != 4 {
		t.Errorf("k = %d, want 4", k)
	}
}

func TestBranchFlushesBuffer(t *testing.T) {
	n := NewNoCache(4)
	n.Exec(0x1000, isa.Instr{})
	n.Exec(0x2000, isa.Instr{}) // taken branch to another block
	n.Exec(0x1000, isa.Instr{}) // back again: buffer held 0x2000's block
	if n.IRequests != 3 {
		t.Errorf("requests = %d, want 3", n.IRequests)
	}
}

func TestCyclesFormula(t *testing.T) {
	n := NewNoCache(4)
	for pc := uint32(0x1000); pc < 0x1028; pc += 4 { // 10 DLXe instructions
		n.Exec(pc, isa.Instr{})
	}
	n.Load(0x4000, 4)
	n.Store(0x4004, 4)
	// IC=10, interlocks=3, wait=2: cycles = 10 + 3 + 2*(10+2) = 37.
	if got := n.Cycles(10, 3, 2); got != 37 {
		t.Errorf("cycles = %d, want 37", got)
	}
	if cpi := n.CPI(10, 3, 0); cpi != 1.3 {
		t.Errorf("zero-wait CPI = %v, want 1.3", cpi)
	}
	if f := n.FetchesPerCycle(10, 0, 0); f != 1.0 {
		t.Errorf("saturation = %v, want 1.0", f)
	}
}
