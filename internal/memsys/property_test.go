package memsys

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// Property: over any execution trace, a wider bus never issues more
// fetch requests (each wide block covers whole narrow blocks).
func TestWiderBusNeverFetchesMore(t *testing.T) {
	f := func(seeds []uint16, jumps []bool) bool {
		n32 := NewNoCache(4)
		n64 := NewNoCache(8)
		pc := uint32(0x1000)
		for i, s := range seeds {
			if i < len(jumps) && jumps[i] {
				pc = 0x1000 + uint32(s)*2
			} else {
				pc += 2
			}
			n32.Exec(pc, isa.Instr{})
			n64.Exec(pc, isa.Instr{})
		}
		return n64.IRequests <= n32.IRequests
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: request counts are latency-independent, and cycles are
// monotonically non-decreasing in wait states.
func TestCyclesMonotoneInWaitStates(t *testing.T) {
	f := func(pcs []uint16, instrs uint16, interlocks uint8) bool {
		n := NewNoCache(4)
		for _, p := range pcs {
			n.Exec(0x1000+uint32(p)*4, isa.Instr{})
		}
		ic := int64(instrs) + int64(len(pcs)) + 1
		il := int64(interlocks)
		prev := int64(-1)
		for l := int64(0); l <= 4; l++ {
			c := n.Cycles(ic, il, l)
			if c < prev {
				return false
			}
			prev = c
		}
		// Zero-latency cycles are exactly IC + interlocks.
		return n.Cycles(ic, il, 0) == ic+il
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fetch stream with no discontinuities requests exactly
// ceil(span / busBytes) blocks.
func TestSequentialRequestCount(t *testing.T) {
	for _, bus := range []uint32{4, 8} {
		n := NewNoCache(bus)
		count := uint32(237)
		for i := uint32(0); i < count; i++ {
			n.Exec(0x2000+2*i, isa.Instr{})
		}
		span := 2 * count
		want := int64((span + bus - 1) / bus)
		if n.IRequests != want {
			t.Errorf("bus %d: %d requests, want %d", bus, n.IRequests, want)
		}
	}
}
