// Package memsys models the cacheless memory interface of Section 4 and
// Appendix A.2 of the paper.
//
// Without an instruction cache, each fetch request returns a block of
// k instructions, where k = fetch-bus width / instruction size. The block
// is buffered: as long as requested instructions are in the buffer, no
// memory request is made. Every memory request (instruction or data)
// costs the processor a fixed number of wait-state cycles.
//
// The model is trace-driven: attach it to a sim.Machine as an Observer,
// run the program once, then evaluate Cycles for any wait-state value
// (request counts do not depend on the latency).
package memsys

import (
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// NoCache counts memory requests for a cacheless processor with a
// fetch buffer of one bus-width block.
type NoCache struct {
	// BusBytes is the fetch-bus width in bytes (4 or 8 in the paper).
	BusBytes uint32

	// IRequests is the number of instruction fetch requests (bus-block
	// granularity, buffer flushed implicitly by discontinuity).
	IRequests int64
	// DRequests is the number of data memory requests (each load/store is
	// one request).
	DRequests int64

	have    bool
	bufAddr uint32
}

// NewNoCache returns a model for the given fetch-bus width in bytes.
func NewNoCache(busBytes uint32) *NoCache {
	return &NoCache{BusBytes: busBytes}
}

// K returns the number of instructions delivered per fetch request.
func (n *NoCache) K(enc isa.Encoding) int64 {
	return int64(n.BusBytes / enc.InstrBytes())
}

// Exec implements sim.Observer.
func (n *NoCache) Exec(pc uint32, _ isa.Instr) {
	block := pc &^ (n.BusBytes - 1)
	if !n.have || block != n.bufAddr {
		n.IRequests++
		n.bufAddr = block
		n.have = true
	}
}

// Load implements sim.Observer.
func (n *NoCache) Load(addr uint32, size uint32) { n.DRequests++ }

// Store implements sim.Observer.
func (n *NoCache) Store(addr uint32, size uint32) { n.DRequests++ }

// Requests returns total memory requests.
func (n *NoCache) Requests() int64 { return n.IRequests + n.DRequests }

// Register publishes the model's request counts as live gauges under
// prefix; the trace-driven fields stay the single source of truth and
// the observer hot path is untouched.
func (n *NoCache) Register(reg *telemetry.Registry, prefix string) {
	reg.RegisterFunc(prefix+"bus_bytes", func() int64 { return int64(n.BusBytes) })
	reg.RegisterFunc(prefix+"i_requests", func() int64 { return n.IRequests })
	reg.RegisterFunc(prefix+"d_requests", func() int64 { return n.DRequests })
	reg.RegisterFunc(prefix+"requests", n.Requests)
}

// Cycles evaluates the paper's Appendix A formula
//
//	Cycles = IC + Interlocks + Latency*(IRequests + DRequests)
//
// for a given wait-state count.
func (n *NoCache) Cycles(instrs, interlocks, waitStates int64) int64 {
	return instrs + interlocks + waitStates*n.Requests()
}

// CPI returns cycles per instruction at the given wait-state count.
func (n *NoCache) CPI(instrs, interlocks, waitStates int64) float64 {
	return float64(n.Cycles(instrs, interlocks, waitStates)) / float64(instrs)
}

// FetchesPerCycle returns the instruction-fetch bus saturation measure of
// Figure 15: fetch requests per processor cycle.
func (n *NoCache) FetchesPerCycle(instrs, interlocks, waitStates int64) float64 {
	return float64(n.IRequests) / float64(n.Cycles(instrs, interlocks, waitStates))
}
