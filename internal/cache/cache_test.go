package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Size: 1024, BlockBytes: 24, SubBytes: 8, Assoc: 1},
		{Size: 1000, BlockBytes: 32, SubBytes: 8, Assoc: 1},
		{Size: 1024, BlockBytes: 32, SubBytes: 12, Assoc: 1},
		{Size: 1024, BlockBytes: 32, SubBytes: 8, Assoc: 0},
		{Size: 1024, BlockBytes: 32, SubBytes: 8, Assoc: 3},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	good := []Config{
		PaperConfig(4096),
		PaperConfigSub(1024, 8),
		PaperConfigSub(16384, 64),
		{Size: 4096, BlockBytes: 32, SubBytes: 8, Assoc: 2},
	}
	for _, cfg := range good {
		if _, err := New(cfg); err != nil {
			t.Errorf("config %+v rejected: %v", cfg, err)
		}
	}
}

func TestColdMissAndHit(t *testing.T) {
	c := MustNew(PaperConfig(1024))
	if !c.Read(0x1000) {
		t.Fatal("cold read must miss")
	}
	if c.Read(0x1000) {
		t.Fatal("second read must hit")
	}
	// Wrap-around prefetch makes the next word a hit too.
	if c.Read(0x1004) {
		t.Fatal("prefetched word must hit")
	}
	// Two words ahead is another sub-block: miss.
	if !c.Read(0x1008) {
		t.Fatal("non-prefetched sub-block must miss")
	}
	if got := c.Stats.ReadMisses; got != 2 {
		t.Fatalf("read misses = %d, want 2", got)
	}
}

func TestWrapAroundPrefetchWraps(t *testing.T) {
	c := MustNew(PaperConfig(1024)) // 32-byte blocks, 4-byte sub-blocks
	// Miss on the LAST sub-block of a block: prefetch wraps to the first.
	if !c.Read(0x101C) {
		t.Fatal("cold read must miss")
	}
	if c.Read(0x1000) {
		t.Fatal("wrap-around prefetch should have filled the first sub-block")
	}
	if !c.Read(0x1004) {
		t.Fatal("0x1004 was neither fetched nor prefetched; must miss")
	}
}

func TestConflictEviction(t *testing.T) {
	c := MustNew(PaperConfig(1024))
	a, b := uint32(0x0000), uint32(0x0400) // same index, different tags
	c.Read(a)
	c.Read(b) // evicts a
	if !c.Read(a) {
		t.Fatal("conflicting address should have evicted the line")
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	dm := MustNew(Config{Size: 1024, BlockBytes: 32, SubBytes: 4, Assoc: 1})
	sa := MustNew(Config{Size: 1024, BlockBytes: 32, SubBytes: 4, Assoc: 2})
	for i := 0; i < 100; i++ {
		dm.Read(0x0000)
		dm.Read(0x0400)
		sa.Read(0x0000)
		sa.Read(0x0400)
	}
	if dm.Stats.ReadMisses <= sa.Stats.ReadMisses {
		t.Errorf("2-way (%d misses) should beat direct-mapped (%d) on a ping-pong conflict",
			sa.Stats.ReadMisses, dm.Stats.ReadMisses)
	}
	if sa.Stats.ReadMisses != 2 {
		t.Errorf("2-way misses = %d, want 2 cold misses only", sa.Stats.ReadMisses)
	}
}

func TestWriteBackTraffic(t *testing.T) {
	wb := MustNew(Config{Size: 256, BlockBytes: 32, SubBytes: 8, Assoc: 1})
	wt := MustNew(Config{Size: 256, BlockBytes: 32, SubBytes: 8, Assoc: 1, WriteThrough: true})
	// Write the same sub-block many times: write-back pays once on
	// eviction, write-through pays every time.
	for i := 0; i < 10; i++ {
		wb.Write(0x40)
		wt.Write(0x40)
	}
	wb.Read(0x40 + 256) // conflicting read evicts the dirty line
	wt.Read(0x40 + 256)
	if wb.Stats.MemWriteWords != 2 { // one 8-byte sub-block
		t.Errorf("write-back wrote %d words, want 2", wb.Stats.MemWriteWords)
	}
	if wt.Stats.MemWriteWords != 20 {
		t.Errorf("write-through wrote %d words, want 20", wt.Stats.MemWriteWords)
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(PaperConfig(1024))
	c.Read(0x100)
	c.Flush()
	if !c.Read(0x100) {
		t.Fatal("read after flush must miss")
	}
}

// Property: miss count is monotonically non-increasing in cache size for a
// direct-mapped cache over the same trace — the paper's Figure 16 premise.
// (True for nested direct-mapped caches with LRU=trivial replacement.)
func TestMissesMonotonicInSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trace := make([]uint32, 20000)
	base := uint32(0x1000)
	for i := range trace {
		// Loopy, local pattern: mixture of sequential runs and jumps.
		if rng.Intn(10) == 0 {
			base = uint32(0x1000 + rng.Intn(32<<10))
		}
		base += 4
		trace[i] = base &^ 3
	}
	var prev int64 = 1 << 62
	for _, size := range []uint32{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		c := MustNew(PaperConfig(size))
		for _, a := range trace {
			c.Read(a)
		}
		if c.Stats.ReadMisses > prev {
			t.Errorf("size %d has %d misses, more than the smaller cache's %d",
				size, c.Stats.ReadMisses, prev)
		}
		prev = c.Stats.ReadMisses
	}
}

// Property: for any access sequence, hits + misses == accesses and traffic
// is consistent with misses.
func TestAccountingInvariants(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		c := MustNew(PaperConfigSub(2048, 32))
		var reads, wr int64
		for i, a := range addrs {
			a %= 1 << 20
			if i < len(writes) && writes[i] {
				c.Write(a)
				wr++
			} else {
				c.Read(a)
				reads++
			}
		}
		s := c.Stats
		if s.Reads != reads || s.Writes != wr {
			return false
		}
		if s.ReadMisses > s.Reads || s.WriteMisses > s.Writes {
			return false
		}
		// Each read miss moves one or two sub-blocks (prefetch), each
		// write miss exactly one; write-back traffic bounded by dirty data.
		minWords := (s.ReadMisses + s.WriteMisses) * 2 // 8-byte sub-blocks = 2 words
		maxWords := (s.ReadMisses*2 + s.WriteMisses) * 2
		return s.MemReadWords >= minWords && s.MemReadWords <= maxWords
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
