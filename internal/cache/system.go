package cache

import (
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// System is a split instruction/data cache pair attached to a simulated
// machine as an observer (Section 4.1's configuration: separate on-chip
// direct-mapped instruction and data caches).
type System struct {
	I *Cache
	D *Cache
}

// PaperConfig returns the paper's cache organization for a given size:
// direct-mapped, 32-byte blocks, sub-blocked, wrap-around read prefetch,
// no prefetch on writes. The Section 4.1.1 experiments use 4-byte
// sub-blocks within 32-byte blocks; the Appendix A.3 tables use 8-byte
// sub-blocks (see PaperConfigSub).
func PaperConfig(size uint32) Config {
	return Config{Size: size, BlockBytes: 32, SubBytes: 4, Assoc: 1}
}

// PaperConfigSub returns the Appendix A.3 organization: blocks of the
// given size with 8-byte sub-blocks.
func PaperConfigSub(size, blockBytes uint32) Config {
	return Config{Size: size, BlockBytes: blockBytes, SubBytes: 8, Assoc: 1}
}

// NewSystem builds a split I/D cache system with the same geometry for
// both sides.
func NewSystem(icfg, dcfg Config) (*System, error) {
	ic, err := New(icfg)
	if err != nil {
		return nil, err
	}
	dc, err := New(dcfg)
	if err != nil {
		return nil, err
	}
	return &System{I: ic, D: dc}, nil
}

// Exec implements sim.Observer: every executed instruction probes the
// instruction cache at its own address. Because validity is per
// sub-block, two 16-bit instructions in one word cost one fill, which is
// exactly the D16 density advantage the paper measures.
func (s *System) Exec(pc uint32, _ isa.Instr) { s.I.Read(pc) }

// Load implements sim.Observer. Text-segment reads (D16 ldc literal-pool
// loads) go through the instruction cache: literals sit adjacent to the
// code that references them and are fetched on the instruction side, so
// they share the I-stream's locality instead of polluting the data cache.
func (s *System) Load(addr uint32, _ uint32) {
	if addr < isa.DataBase {
		s.I.Read(addr)
		return
	}
	s.D.Read(addr)
}

// Store implements sim.Observer.
func (s *System) Store(addr uint32, _ uint32) { s.D.Write(addr) }

// Misses returns total misses over both caches.
func (s *System) Misses() int64 { return s.I.Stats.Misses() + s.D.Stats.Misses() }

// Register publishes both caches' counters under prefix ("<p>icache.*"
// and "<p>dcache.*").
func (s *System) Register(reg *telemetry.Registry, prefix string) {
	s.I.Stats.Register(reg, prefix+"icache.")
	s.D.Stats.Register(reg, prefix+"dcache.")
}

// Cycles evaluates the paper's Appendix A.3 formula
//
//	Cycles = IC + Interlocks + MissPenalty*(IMiss + RMiss + WMiss)
func (s *System) Cycles(instrs, interlocks, missPenalty int64) int64 {
	return instrs + interlocks + missPenalty*s.Misses()
}

// CPI returns cycles per instruction at the given miss penalty.
func (s *System) CPI(instrs, interlocks, missPenalty int64) float64 {
	return float64(s.Cycles(instrs, interlocks, missPenalty)) / float64(instrs)
}

// IWordsPerCycle returns instruction memory traffic in words per cycle
// (Figure 19's measure).
func (s *System) IWordsPerCycle(instrs, interlocks, missPenalty int64) float64 {
	return float64(s.I.Stats.MemReadWords) / float64(s.Cycles(instrs, interlocks, missPenalty))
}
