// Package cache implements the dinero-style cache simulator the paper
// uses for its Section 4.1 experiments: direct-mapped (optionally
// set-associative) caches organized in blocks of sub-blocks, with
// wrap-around prefetch of the following sub-block on read misses and no
// prefetch on writes. Validity is tracked per sub-block; a tag match with
// an invalid sub-block is still a miss (a sub-block fetch), as in dinero's
// sub-block mode.
package cache

import (
	"fmt"

	"repro/internal/telemetry"
)

// Config describes one cache.
type Config struct {
	// Size is the total capacity in bytes.
	Size uint32
	// BlockBytes is the block (line) size: the tag granularity.
	BlockBytes uint32
	// SubBytes is the sub-block (transfer) size.
	SubBytes uint32
	// Assoc is the set associativity; the paper uses 1 (direct-mapped).
	Assoc uint32
	// WritePolicy selects WriteBack (default, dinero's default) or
	// WriteThrough accounting for write traffic.
	WriteThrough bool
	// NoWriteAllocate, when set, sends write misses straight to memory
	// without filling the line.
	NoWriteAllocate bool
	// NoPrefetch disables the wrap-around read prefetch.
	NoPrefetch bool
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	switch {
	case c.Size == 0 || c.BlockBytes == 0 || c.SubBytes == 0:
		return fmt.Errorf("cache: zero geometry %+v", c)
	case c.BlockBytes%c.SubBytes != 0:
		return fmt.Errorf("cache: block %d not a multiple of sub-block %d", c.BlockBytes, c.SubBytes)
	case c.Size%c.BlockBytes != 0:
		return fmt.Errorf("cache: size %d not a multiple of block %d", c.Size, c.BlockBytes)
	case c.Assoc == 0:
		return fmt.Errorf("cache: zero associativity")
	case c.Size/c.BlockBytes%c.Assoc != 0:
		return fmt.Errorf("cache: %d blocks not divisible by associativity %d", c.Size/c.BlockBytes, c.Assoc)
	case !pow2(c.Size) || !pow2(c.BlockBytes) || !pow2(c.SubBytes):
		return fmt.Errorf("cache: geometry must be powers of two: %+v", c)
	}
	return nil
}

func pow2(v uint32) bool { return v != 0 && v&(v-1) == 0 }

// Stats accumulates cache activity.
type Stats struct {
	Reads       int64 // read accesses (instruction fetches or data reads)
	Writes      int64
	ReadMisses  int64
	WriteMisses int64
	// MemReadWords / MemWriteWords count 32-bit words moved between the
	// cache and memory (fills, prefetches, write-backs/throughs).
	MemReadWords  int64
	MemWriteWords int64
}

// Misses returns total misses.
func (s *Stats) Misses() int64 { return s.ReadMisses + s.WriteMisses }

// MissRate returns misses per access.
func (s *Stats) MissRate() float64 {
	if s.Reads+s.Writes == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Reads+s.Writes)
}

// ReadMissRate returns read misses per read access.
func (s *Stats) ReadMissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.Reads)
}

// WriteMissRate returns write misses per write access.
func (s *Stats) WriteMissRate() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.WriteMisses) / float64(s.Writes)
}

// Register publishes the hit/miss/traffic counters as live gauges under
// prefix; the simulation fields stay the single source of truth and the
// probe hot path is untouched.
func (s *Stats) Register(reg *telemetry.Registry, prefix string) {
	for _, f := range []struct {
		name string
		v    *int64
	}{
		{"reads", &s.Reads},
		{"writes", &s.Writes},
		{"read_misses", &s.ReadMisses},
		{"write_misses", &s.WriteMisses},
		{"mem_read_words", &s.MemReadWords},
		{"mem_write_words", &s.MemWriteWords},
	} {
		v := f.v
		reg.RegisterFunc(prefix+f.name, func() int64 { return *v })
	}
	reg.RegisterFunc(prefix+"misses", s.Misses)
}

type line struct {
	tag   uint32
	valid []bool // per sub-block
	dirty []bool
	inUse bool
	lru   int64
}

// Cache is one simulated cache.
type Cache struct {
	cfg      Config
	sets     [][]line
	subPer   uint32 // sub-blocks per block
	setCount uint32
	tick     int64
	Stats    Stats
}

// New builds a cache; the configuration must validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	setCount := cfg.Size / cfg.BlockBytes / cfg.Assoc
	c := &Cache{
		cfg:      cfg,
		subPer:   cfg.BlockBytes / cfg.SubBytes,
		setCount: setCount,
		sets:     make([][]line, setCount),
	}
	for i := range c.sets {
		ways := make([]line, cfg.Assoc)
		for w := range ways {
			ways[w].valid = make([]bool, c.subPer)
			ways[w].dirty = make([]bool, c.subPer)
		}
		c.sets[i] = ways
	}
	return c, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) locate(addr uint32) (set uint32, tag uint32, sub uint32) {
	block := addr / c.cfg.BlockBytes
	return block % c.setCount, block / c.setCount, addr % c.cfg.BlockBytes / c.cfg.SubBytes
}

// findWay returns the way holding the tag, or -1.
func (c *Cache) findWay(set, tag uint32) int {
	for w := range c.sets[set] {
		ln := &c.sets[set][w]
		if ln.inUse && ln.tag == tag {
			return w
		}
	}
	return -1
}

// victim returns the way to replace in a set (LRU; trivially way 0 when
// direct-mapped).
func (c *Cache) victim(set uint32) int {
	best, bestLRU := 0, int64(1)<<62
	for w := range c.sets[set] {
		ln := &c.sets[set][w]
		if !ln.inUse {
			return w
		}
		if ln.lru < bestLRU {
			best, bestLRU = w, ln.lru
		}
	}
	return best
}

// evict writes back dirty sub-blocks of a line about to be replaced.
func (c *Cache) evict(ln *line) {
	if c.cfg.WriteThrough {
		return
	}
	for i, d := range ln.dirty {
		if d {
			c.Stats.MemWriteWords += int64(c.cfg.SubBytes / 4)
			ln.dirty[i] = false
		}
	}
}

// Read simulates a read access (instruction fetch or data load) and
// reports whether it missed.
func (c *Cache) Read(addr uint32) bool {
	c.tick++
	c.Stats.Reads++
	set, tag, sub := c.locate(addr)
	w := c.findWay(set, tag)
	if w >= 0 && c.sets[set][w].valid[sub] {
		c.sets[set][w].lru = c.tick
		return false
	}
	c.Stats.ReadMisses++
	ln := c.fill(set, tag, w)
	ln.valid[sub] = true
	c.Stats.MemReadWords += int64(c.cfg.SubBytes / 4)
	if !c.cfg.NoPrefetch {
		// Wrap-around prefetch: also fetch the next sub-block, wrapping
		// within the block.
		nxt := (sub + 1) % c.subPer
		if !ln.valid[nxt] {
			ln.valid[nxt] = true
			c.Stats.MemReadWords += int64(c.cfg.SubBytes / 4)
		}
	}
	return true
}

// Write simulates a write access and reports whether it missed.
func (c *Cache) Write(addr uint32) bool {
	c.tick++
	c.Stats.Writes++
	set, tag, sub := c.locate(addr)
	w := c.findWay(set, tag)
	hit := w >= 0 && c.sets[set][w].valid[sub]
	if hit {
		ln := &c.sets[set][w]
		ln.lru = c.tick
		if c.cfg.WriteThrough {
			c.Stats.MemWriteWords += int64(c.cfg.SubBytes / 4)
		} else {
			ln.dirty[sub] = true
		}
		return false
	}
	c.Stats.WriteMisses++
	if c.cfg.NoWriteAllocate {
		c.Stats.MemWriteWords += int64(c.cfg.SubBytes / 4)
		return true
	}
	ln := c.fill(set, tag, w)
	ln.valid[sub] = true
	c.Stats.MemReadWords += int64(c.cfg.SubBytes / 4) // no prefetch on write
	if c.cfg.WriteThrough {
		c.Stats.MemWriteWords += int64(c.cfg.SubBytes / 4)
	} else {
		ln.dirty[sub] = true
	}
	return true
}

// fill ensures a line for (set, tag) exists and returns it; w is the way
// holding the tag already, or -1 to allocate.
func (c *Cache) fill(set, tag uint32, w int) *line {
	if w < 0 {
		w = c.victim(set)
		ln := &c.sets[set][w]
		c.evict(ln)
		ln.tag = tag
		ln.inUse = true
		for i := range ln.valid {
			ln.valid[i] = false
		}
	}
	ln := &c.sets[set][w]
	ln.lru = c.tick
	return ln
}

// Flush invalidates everything (writing back dirty data) — used between
// measurement phases.
func (c *Cache) Flush() {
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			c.evict(ln)
			ln.inUse = false
			for i := range ln.valid {
				ln.valid[i] = false
			}
		}
	}
}
