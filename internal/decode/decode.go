// Package decode predecodes linked program images into flat per-PC
// micro-op tables and shares them, content-keyed, across simulated
// machines.
//
// The simulator used to re-decode the whole text segment on every
// machine construction — once per measurement point — and to re-derive
// each instruction's register sources, destination and result latency
// from the decoded form on every executed instruction. Both costs are
// static properties of the image, so this package computes them exactly
// once per distinct image: Decode produces an immutable Text whose Ops
// table is indexed directly by (pc-TextBase)>>Shift, and For memoizes
// Texts in a bounded, content-addressed cache (the verifier already
// proves every reachable word of a compiled image decodes, so sharing
// the table read-only across any number of machines is safe).
//
// Undecodable words — D16 literal-pool entries and padding — are folded
// into sentinel ops (FBad flag, isa.BAD opcode) so the execution hot
// path needs no separate error-table lookup: a single indexed load
// yields either a runnable micro-op or the sentinel, and only the
// sentinel's fault path consults the side Errs table for the original
// decode error.
package decode

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/d16"
	"repro/internal/dlxe"
	"repro/internal/isa"
	"repro/internal/prog"
)

// None marks an absent register index in Op metadata (matches
// isa.NoReg's representation so tables can be indexed without
// translation).
const None = uint8(isa.NoReg)

// Op flags (bitmask).
const (
	// FBad marks a word that does not decode (literal-pool data,
	// padding); executing it faults with the recorded decode error.
	FBad = 1 << iota
	// FNop marks the canonical no-operation.
	FNop
	// FLoad marks data-reading memory operations (ldc included).
	FLoad
	// FStore marks data-writing memory operations.
	FStore
	// FFCmp marks floating-point compares (they produce the FP status
	// register rather than a general result).
	FFCmp
	// FRDSR marks the FP-status read, which interlocks on FFCmp results.
	FRDSR
)

// Op is one predecoded micro-op: the canonical decoded instruction plus
// the per-instruction scoreboard metadata the timing models would
// otherwise re-derive on every dynamic execution.
type Op struct {
	// In is the decoded instruction (zero-valued with Flags&FBad set for
	// words that do not decode).
	In isa.Instr
	// U1, U2 are the register-file indices the instruction reads
	// (None when absent), in isa.Instr.Uses order.
	U1, U2 uint8
	// Def is the register-file index the instruction writes (None when
	// absent).
	Def uint8
	// Lat is isa.ResultLatency(In.Op): cycles after issue before the
	// result is usable by a dependent instruction.
	Lat uint8
	// Flags is the F* bitmask.
	Flags uint8
}

// Meta fills op's metadata fields (everything but In, which must be set)
// from the decoded instruction. It is the single derivation rule shared
// by table predecoding and by timing models that synthesize metadata for
// an instruction outside a predecoded table.
func Meta(in isa.Instr, op *Op) {
	// Source registers, mirroring isa.Instr.Uses (which the test suite
	// pins this against) without its append callback: pick the case's
	// register pair, then compact so the first valid source lands in U1.
	a, b := isa.NoReg, isa.NoReg
	switch {
	case in.Op.IsStore():
		a, b = in.Rd, in.Rs1 // stored value, then address base
	case in.Op.IsLoad():
		a = in.Rs1
	case in.Op == isa.MVI || in.Op == isa.MVHI || in.Op == isa.NOP || in.Op == isa.LDC:
		// no register sources
	default:
		a, b = in.Rs1, in.Rs2
	}
	if !a.Valid() {
		a, b = b, isa.NoReg
	}
	if !a.Valid() {
		a = isa.NoReg
	}
	if !b.Valid() {
		b = isa.NoReg
	}
	op.U1, op.U2 = uint8(a), uint8(b)
	op.Def = uint8(in.Def())
	op.Lat = uint8(isa.ResultLatency(in.Op))
	op.Flags = 0
	switch {
	case in.Op == isa.NOP:
		op.Flags |= FNop
	case in.Op.IsLoad():
		op.Flags |= FLoad
	case in.Op.IsStore():
		op.Flags |= FStore
	case in.Op.IsFCmp():
		op.Flags |= FFCmp
	case in.Op == isa.RDSR:
		op.Flags |= FRDSR
	}
}

// Synth returns the predecoded form of one instruction (for callers
// operating outside a shared table, e.g. a timing model fed through the
// generic observer interface).
func Synth(in isa.Instr) Op {
	op := Op{In: in}
	Meta(in, &op)
	return op
}

// Text is one image's immutable predecoded text segment. It is shared
// read-only across machines; nothing in it may be mutated after Decode
// returns.
type Text struct {
	// Ops is indexed by (pc - Base) >> Shift.
	Ops []Op
	// Errs records the decode error for each FBad index.
	Errs map[int]error
	// Base is the load address of the first op (isa.TextBase).
	Base uint32
	// IB is the instruction size in bytes; Shift is log2(IB), so
	// pc→index is a subtract and a shift.
	IB, Shift uint32
	// Enc and Cmp8 identify the decode rules the table was built with.
	Enc  isa.Encoding
	Cmp8 bool
}

// Decode predecodes an image, bypassing the shared cache (For is the
// memoized entry point).
func Decode(img *prog.Image) *Text {
	ib := img.Enc.InstrBytes()
	shift := uint32(1)
	if ib == 4 {
		shift = 2
	}
	t := &Text{
		Base:  isa.TextBase,
		IB:    ib,
		Shift: shift,
		Enc:   img.Enc,
		Cmp8:  img.Cmp8,
	}
	n := len(img.Text) / int(ib)
	t.Ops = make([]Op, n)
	for i := 0; i < n; i++ {
		pc := t.Base + uint32(i)*ib
		var in isa.Instr
		var err error
		if img.Enc == isa.EncD16 {
			w := binary.LittleEndian.Uint16(img.Text[i*2:])
			in, err = d16.DecodeV(w, pc, d16.Variant{Cmp8: img.Cmp8})
		} else {
			w := binary.LittleEndian.Uint32(img.Text[i*4:])
			in, err = dlxe.Decode(w, pc)
		}
		if err != nil {
			t.Ops[i] = Op{Flags: FBad}
			if t.Errs == nil {
				t.Errs = map[int]error{}
			}
			t.Errs[i] = err
			continue
		}
		t.Ops[i].In = in
		Meta(in, &t.Ops[i])
	}
	return t
}

// Len returns the number of instruction slots in the table.
func (t *Text) Len() int { return len(t.Ops) }

// key is the content address of a decode table: the decode rules plus
// the exact text bytes.
type key [sha256.Size]byte

func keyOf(img *prog.Image) key {
	h := sha256.New()
	var hdr [2]byte
	hdr[0] = byte(img.Enc)
	if img.Cmp8 {
		hdr[1] = 1
	}
	h.Write(hdr[:])
	h.Write(img.Text)
	var k key
	h.Sum(k[:0])
	return k
}
