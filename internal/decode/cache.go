package decode

import (
	"sync"

	"repro/internal/prog"
)

// The shared table cache: content-addressed, bounded, with CLOCK-style
// second-chance eviction (no per-hit list manipulation, so concurrent
// lookups only take the mutex briefly). Capacity is generous for the
// seed suite (90 images) while bounding memory when synthetic sweeps
// stream thousands of generated programs through the simulator —
// eviction only costs re-decoding, never correctness.
const cacheCap = 256

type entry struct {
	k    key
	t    *Text
	used bool
}

var cache = struct {
	sync.Mutex
	m            map[key]int // key → slot index
	slots        []entry
	hand         int
	hits, misses int64
}{m: map[key]int{}}

// For returns the shared predecoded table for an image, decoding it on
// first sight. Distinct *prog.Image values with identical text and
// decode rules share one table; the returned Text is immutable.
func For(img *prog.Image) *Text {
	k := keyOf(img)
	cache.Lock()
	if i, ok := cache.m[k]; ok {
		cache.slots[i].used = true
		t := cache.slots[i].t
		cache.hits++
		cache.Unlock()
		return t
	}
	cache.misses++
	cache.Unlock()

	// Decode outside the lock: concurrent first sights of one image may
	// both decode, but only one result is kept (tables are equivalent).
	t := Decode(img)

	cache.Lock()
	defer cache.Unlock()
	if i, ok := cache.m[k]; ok {
		return cache.slots[i].t
	}
	if len(cache.slots) < cacheCap {
		cache.m[k] = len(cache.slots)
		cache.slots = append(cache.slots, entry{k: k, t: t, used: true})
		return t
	}
	for {
		s := &cache.slots[cache.hand]
		if s.used {
			s.used = false
			cache.hand = (cache.hand + 1) % cacheCap
			continue
		}
		delete(cache.m, s.k)
		*s = entry{k: k, t: t, used: true}
		cache.m[k] = cache.hand
		cache.hand = (cache.hand + 1) % cacheCap
		return t
	}
}

// CacheStats reports cumulative hit/miss counts of the shared table
// cache (for tests and telemetry).
func CacheStats() (hits, misses int64) {
	cache.Lock()
	defer cache.Unlock()
	return cache.hits, cache.misses
}
