package decode_test

import (
	"strconv"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/d16"
	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/mcc"
)

func compile(t *testing.T, name string, spec *isa.Spec) *mcc.Compiled {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("benchmark %q missing", name)
	}
	c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTableSharing: images with identical text and decode rules share
// one predecoded table, and re-compiling does not grow the cache.
func TestTableSharing(t *testing.T) {
	a := compile(t, "queens", isa.D16())
	b := compile(t, "queens", isa.D16())
	if &a.Image.Text[0] == &b.Image.Text[0] {
		t.Fatal("want two distinct compiles for the sharing test")
	}
	ta, tb := decode.For(a.Image), decode.For(b.Image)
	if ta != tb {
		t.Error("identical images got distinct decode tables")
	}
	if tc := decode.For(compile(t, "queens", isa.DLXe()).Image); tc == ta {
		t.Error("distinct encodings share a decode table")
	}
}

// TestMetaMatchesInstr: for every decodable op of a representative image
// pair, the predecoded metadata agrees with the isa-level derivation
// rules the interpreter and timing engine historically used.
func TestMetaMatchesInstr(t *testing.T) {
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		tab := decode.For(compile(t, "whetstone", spec).Image)
		for i, op := range tab.Ops {
			if op.Flags&decode.FBad != 0 {
				if tab.Errs[i] == nil {
					t.Fatalf("op %d: decode.FBad without recorded error", i)
				}
				continue
			}
			in := op.In
			var buf [4]isa.Reg
			uses := in.Uses(buf[:0])
			wantU1, wantU2 := decode.None, decode.None
			if len(uses) > 0 {
				wantU1 = uint8(uses[0])
			}
			if len(uses) > 1 {
				wantU2 = uint8(uses[1])
			}
			if op.U1 != wantU1 || op.U2 != wantU2 {
				t.Fatalf("op %d (%s): uses (%d,%d), want (%d,%d)", i, in, op.U1, op.U2, wantU1, wantU2)
			}
			if op.Def != uint8(in.Def()) {
				t.Fatalf("op %d (%s): def %d, want %d", i, in, op.Def, uint8(in.Def()))
			}
			if int64(op.Lat) != isa.ResultLatency(in.Op) {
				t.Fatalf("op %d (%s): lat %d, want %d", i, in, op.Lat, isa.ResultLatency(in.Op))
			}
			if s := decode.Synth(in); s != op {
				t.Fatalf("op %d (%s): Synth mismatch %+v vs %+v", i, in, s, op)
			}
		}
	}
}

// badD16Half returns an instruction halfword the D16 decoder rejects.
// Pool data happens to share the instruction namespace, so plenty of
// pool words decode fine — the test has to plant one that provably
// does not.
func badD16Half(t *testing.T) uint16 {
	t.Helper()
	for w := uint16(0xFFFF); w > 0; w-- {
		if _, err := d16.DecodeV(w, isa.TextBase, d16.Variant{}); err != nil {
			return w
		}
	}
	t.Fatal("no undecodable D16 halfword found")
	return 0
}

// TestPoolWordsAreSentinels: a pool literal whose halfwords do not
// decode becomes sentinel ops (decode.FBad + recorded error) at non-code PCs,
// and sentinels never appear anywhere else.
func TestPoolWordsAreSentinels(t *testing.T) {
	bad := badD16Half(t)
	lit := uint32(bad) | uint32(bad)<<16
	src := "\t.text\n\t.global _start\n_start:\n\tldc r0, =" +
		strconv.FormatUint(uint64(lit), 10) + "\n\ttrap 0\n\tnop\n\t.pool\n"
	img, err := asm.Assemble("pool.s", src, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	tab := decode.For(img)
	sentinels := 0
	for i, op := range tab.Ops {
		pc := tab.Base + uint32(i)*tab.IB
		if op.Flags&decode.FBad == 0 {
			continue
		}
		sentinels++
		if !img.InNonCode(pc) {
			t.Errorf("pc %#x: sentinel outside the image's non-code ranges", pc)
		}
		if tab.Errs[i] == nil {
			t.Errorf("pc %#x: sentinel without a recorded decode error", pc)
		}
		if op.In != (isa.Instr{}) {
			t.Errorf("pc %#x: sentinel carries a decoded instruction %v", pc, op.In)
		}
	}
	if sentinels < 2 {
		t.Errorf("planted 2 undecodable pool halfwords, table has %d sentinels", sentinels)
	}
}
