package static_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/static"
	"repro/internal/synth"
)

func assemble(t *testing.T, src string, spec *isa.Spec) *prog.Image {
	t.Helper()
	img, err := asm.Assemble("test.s", src, spec)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func analyze(t *testing.T, src string, spec *isa.Spec) *static.Report {
	t.Helper()
	rep, err := static.Analyze(assemble(t, src, spec), spec)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return rep
}

// runCycles executes img once with engines for every grid cell attached
// and returns cycles per (bus, waits).
func runCycles(t *testing.T, img *prog.Image, maxInstrs int64) map[[2]int64]int64 {
	t.Helper()
	m, err := sim.New(img)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	type cell struct {
		bus uint32
		w   int64
		e   *pipeline.Engine
	}
	var cells []cell
	for _, bus := range static.GridBuses {
		for w := int64(0); w < static.GridWaits; w++ {
			e := pipeline.New(pipeline.Config{BusBytes: bus, WaitStates: w})
			m.Attach(e)
			cells = append(cells, cell{bus, w, e})
		}
	}
	if err := m.Run(maxInstrs); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := map[[2]int64]int64{}
	for _, c := range cells {
		out[[2]int64{int64(c.bus), c.w}] = c.e.Cycles()
	}
	return out
}

// checkContainment asserts every dynamic cycle count lies inside the
// static interval of its grid cell.
func checkContainment(t *testing.T, name string, rep *static.Report, cycles map[[2]int64]int64) {
	t.Helper()
	for k, cyc := range cycles {
		row, ok := rep.BoundAt(uint32(k[0]), k[1])
		if !ok {
			t.Fatalf("%s: no bound row for bus=%d w=%d", name, k[0], k[1])
		}
		if cyc < row.MinCycles {
			t.Errorf("%s bus=%d w=%d: cycles %d below static min %d",
				name, k[0], k[1], cyc, row.MinCycles)
		}
		if row.MaxCycles >= 0 && cyc > row.MaxCycles {
			t.Errorf("%s bus=%d w=%d: cycles %d above static max %d",
				name, k[0], k[1], cyc, row.MaxCycles)
		}
	}
}

// A straight-line integer program has a unique path, so min, max and
// the measured run must all agree exactly.
func TestStraightLineExact(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi r4, 5
	add r5, r4, r4
	sub r6, r5, r4
	trap 0
`
	spec := isa.DLXe()
	img := assemble(t, src, spec)
	rep, err := static.Analyze(img, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Image.MinInstrs != 4 {
		t.Errorf("MinInstrs = %d, want 4", rep.Image.MinInstrs)
	}
	cycles := runCycles(t, img, 1000)
	for k, cyc := range cycles {
		row, _ := rep.BoundAt(uint32(k[0]), k[1])
		if row.MinCycles != cyc || row.MaxCycles != cyc {
			t.Errorf("bus=%d w=%d: static [%d, %d], dynamic %d (want exact)",
				k[0], k[1], row.MinCycles, row.MaxCycles, cyc)
		}
	}
}

// A counted loop with a constant trip count: the bound recognizer must
// find the exact count, and with zero wait states the upper bound is
// exact (the loop body has no stalls).
func TestCountedLoopBound(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi r4, 3
.loop:
	subi r4, r4, 1
	bnz r4, .loop
	nop
	trap 0
`
	spec := isa.DLXe()
	img := assemble(t, src, spec)
	rep, err := static.Analyze(img, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Image.Loops != 1 || rep.Image.BoundedLoops != 1 {
		t.Fatalf("loops=%d bounded=%d, want 1/1 (diags: %v)",
			rep.Image.Loops, rep.Image.BoundedLoops, rep.Diags)
	}
	ls := rep.Funcs[0].LoopStats
	if len(ls) != 1 || ls[0].Bound != 3 || ls[0].Depth != 1 {
		t.Fatalf("loop stats = %+v, want one loop bound=3 depth=1", ls)
	}
	cycles := runCycles(t, img, 1000)
	// mvi + 3x(subi,bnz,nop) + trap = 11 issues; +drain = 15 at w=0.
	if got := cycles[[2]int64{4, 0}]; got != 15 {
		t.Fatalf("dynamic cycles at bus=4 w=0 = %d, want 15", got)
	}
	row, _ := rep.BoundAt(4, 0)
	if row.MaxCycles != 15 {
		t.Errorf("static max at bus=4 w=0 = %d, want exactly 15", row.MaxCycles)
	}
	checkContainment(t, "counted-loop", rep, cycles)
}

// The delay-slot decrement variant: bnz tests the pre-decrement value,
// so an initial value of N runs the header N+1 times.
func TestSlotDecrementBound(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi r4, 3
	mvi r5, 0
.loop:
	add r5, r5, r4
	bnz r4, .loop
	subi r4, r4, 1
	trap 0
`
	rep := analyze(t, src, isa.DLXe())
	ls := rep.Funcs[0].LoopStats
	if len(ls) != 1 || ls[0].Bound != 4 {
		t.Fatalf("loop stats = %+v, want one loop bound=4 (N+1 for slot decrement)", ls)
	}
}

// A loop whose counter comes from a register argument has no inferable
// bound: the analysis must go to ⊤ with an unbounded-loop diagnostic,
// never reject the image.
func TestUnboundedLoopTop(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi r4, 7
	shl r4, r4, r4
.loop:
	subi r4, r4, 1
	bnz r4, .loop
	nop
	trap 0
`
	rep := analyze(t, src, isa.DLXe())
	if rep.Image.Loops != 1 || rep.Image.BoundedLoops != 0 {
		t.Fatalf("loops=%d bounded=%d, want 1/0", rep.Image.Loops, rep.Image.BoundedLoops)
	}
	found := false
	for _, d := range rep.Diags {
		if d.Kind == static.DiagUnboundedLoop {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s diagnostic; diags: %v", static.DiagUnboundedLoop, rep.Diags)
	}
	for _, b := range rep.Bounds {
		if b.MaxCycles != -1 {
			t.Errorf("bus=%d w=%d: max = %d, want -1 (unbounded)", b.BusBytes, b.WaitStates, b.MaxCycles)
		}
		if b.MinCycles <= 0 {
			t.Errorf("bus=%d w=%d: min = %d, want > 0", b.BusBytes, b.WaitStates, b.MinCycles)
		}
	}
}

// The static fetch table is pure layout arithmetic: for the 2-byte bus
// every D16 instruction is one word; DLXe needs two.
func TestFetchTraffic(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	mvi r4, 5
	mvi r5, 6
	trap 0
`
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		rep := analyze(t, src, spec)
		want := rep.Image.Instrs * int64(spec.InstrBytes()) / 2
		got := rep.Image.FetchWords[0]
		if got.BusBytes != 2 || got.Words != want {
			t.Errorf("%s: bus=2 words = %d, want %d", spec.Name, got.Words, want)
		}
	}
}

// TestContainment is the standing cross-check over the full seed bench
// suite: for all 15 benchmarks x 6 ISA configs x 8 memory-grid cells,
// the measured pipeline cycles lie within the static interval.
func TestContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("full bench suite run")
	}
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, b := range bench.All() {
				c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
				if err != nil {
					t.Fatalf("%s: compile: %v", b.Name, err)
				}
				rep, err := static.Analyze(c.Image, spec)
				if err != nil {
					t.Fatalf("%s: analyze: %v", b.Name, err)
				}
				cycles := runCycles(t, c.Image, b.MaxInstrs)
				checkContainment(t, b.Name, rep, cycles)
			}
		})
	}
}

// TestContainmentSynth extends the cross-check to fixed seeds of every
// synthetic workload class.
func TestContainmentSynth(t *testing.T) {
	if testing.Short() {
		t.Skip("synth corpus run")
	}
	specs := []*isa.Spec{isa.D16(), isa.DLXe()}
	for _, class := range synth.Classes() {
		class := class
		t.Run(class, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []uint32{1, 0xfeed} {
				p, err := synth.Generate(class, seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, spec := range specs {
					c, err := mcc.Compile(p.Name+".mc", p.Source, spec)
					if err != nil {
						t.Fatalf("%s on %s: compile: %v", p.Name, spec.Name, err)
					}
					rep, err := static.Analyze(c.Image, spec)
					if err != nil {
						t.Fatalf("%s on %s: analyze: %v", p.Name, spec.Name, err)
					}
					cycles := runCycles(t, c.Image, p.MaxInstrs)
					checkContainment(t, p.Name+"/"+spec.Name, rep, cycles)
				}
			}
		})
	}
}

// TestDensityRatio reproduces the paper's headline static result with
// zero simulation: D16 binaries are ~1.5-1.6x denser than DLXe.
func TestDensityRatio(t *testing.T) {
	d16, dlxe := isa.D16(), isa.DLXe()
	logSum, n := 0.0, 0
	for _, b := range bench.All() {
		c16, err := mcc.Compile(b.Name+".mc", b.Source, d16)
		if err != nil {
			t.Fatal(err)
		}
		c32, err := mcc.Compile(b.Name+".mc", b.Source, dlxe)
		if err != nil {
			t.Fatal(err)
		}
		r16, err := static.Analyze(c16.Image, d16)
		if err != nil {
			t.Fatal(err)
		}
		r32, err := static.Analyze(c32.Image, dlxe)
		if err != nil {
			t.Fatal(err)
		}
		// Text-only, like the repo's fig4: our scaled benchmarks embed
		// input data that is identical across configs and would dilute
		// the binary ratio.
		ratio := float64(r32.Image.TextBytes) / float64(r16.Image.TextBytes)
		logSum += math.Log(ratio)
		n++
	}
	geo := math.Exp(logSum / float64(n))
	if geo < 1.4 || geo > 1.7 {
		t.Errorf("geomean DLXe/D16 text ratio = %.3f, want ~1.5-1.6 (paper)", geo)
	}
}

// TestDeterministic asserts byte-identical analysis output across runs.
func TestDeterministic(t *testing.T) {
	spec := isa.D16()
	b := bench.ByName("queens")
	c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	for i := 0; i < 3; i++ {
		rep, err := static.Analyze(c.Image, spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.WriteTable(&buf)
		if i == 0 {
			first = buf
		} else if !bytes.Equal(first.Bytes(), buf.Bytes()) {
			t.Fatalf("run %d table differs from run 0", i)
		}
	}
	if first.Len() == 0 {
		t.Fatal("empty table")
	}
}

// FuzzContainment drives the containment property from generated
// programs: any (class, seed) that compiles must satisfy the interval.
func FuzzContainment(f *testing.F) {
	classes := synth.Classes()
	for i := range classes {
		f.Add(uint64(42+i*31), byte('0'+i))
	}
	f.Fuzz(func(t *testing.T, seed uint64, classSel byte) {
		class := classes[int(classSel)%len(classes)]
		p, err := synth.Generate(class, uint32(seed)^uint32(seed>>32))
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
			c, err := mcc.Compile(p.Name+".mc", p.Source, spec)
			if err != nil {
				t.Fatalf("%s on %s: compile: %v", p.Name, spec.Name, err)
			}
			rep, err := static.Analyze(c.Image, spec)
			if err != nil {
				t.Fatalf("%s on %s: analyze: %v", p.Name, spec.Name, err)
			}
			cycles := runFuzzCycles(t, c.Image, p.MaxInstrs)
			checkContainment(t, fmt.Sprintf("%s/%s", p.Name, spec.Name), rep, cycles)
		}
	})
}

func runFuzzCycles(t *testing.T, img *prog.Image, maxInstrs int64) map[[2]int64]int64 {
	return runCycles(t, img, maxInstrs)
}

func allSpecs() []*isa.Spec {
	return append(isa.PaperConfigs(), isa.D16Plus())
}
