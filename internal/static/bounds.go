package static

import (
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// Cycle bounds for the separate-port, cacheless pipeline engine.
//
// Lower bound (per executed block): every instruction issues at least
// one cycle apart, and every bus-block boundary a straight-line block
// crosses is a guaranteed fetch-buffer miss costing exactly W cycles
// (with separate ports the instruction bus is always free when the
// fetch starts, so a miss delays issue by exactly WaitStates). The
// image minimum adds the entry fetch (the buffer starts empty) and the
// pipeline drain. Interprocedurally it is a shortest-path problem:
// Dijkstra inside each function with call edges charged the callee's
// min-to-return, iterated to its (unique) fixpoint across functions;
// blocks ending in unresolved jumps may leave the analyzed graph, so
// they contribute early-exit candidates — a sound undercount.
//
// Upper bound (per executed block): each instruction's worst cost is
// its issue cycle, plus W+1 per data-memory request (the port is busy
// at most W+1 cycles per request, and every interlock cycle past the
// producer's base window is port-busy — an amortization over the run),
// plus latency-1 for multi-cycle FPU producers (a consumer issues at
// least one cycle after its producer); each block entry re-fetches at
// most every bus block it spans. Block costs are multiplied by the
// loop-nest execution caps and summed; calls add the callee's total.
// Anything unbounded (loops without inferable trip counts, irreducible
// flow, unresolved jumps, recursion) is ⊤.

// instrWorst is the worst-case issue-to-issue cost of one instruction,
// excluding fetch (charged per block).
func instrWorst(op isa.Op, w int64) int64 {
	c := int64(1)
	if op.IsLoad() || op.IsStore() {
		return c + w + 1
	}
	if lat := pipeline.ResultLatency(op); lat > 1 {
		c += lat - 1
	}
	return c
}

// spannedBlocks counts the bus-width blocks a basic block's instruction
// addresses cover.
func spannedBlocks(b *verify.Block, bus uint32) int64 {
	first := b.PCs[0] &^ (bus - 1)
	last := b.PCs[len(b.PCs)-1] &^ (bus - 1)
	return int64((last-first)/bus) + 1
}

// blockMinCost is a lower bound on the cycles one execution of b adds:
// one issue per instruction plus the guaranteed in-block fetch misses.
func blockMinCost(b *verify.Block, bus uint32, w int64) int64 {
	return int64(len(b.Instrs)) + w*(spannedBlocks(b, bus)-1)
}

// blockWorstCost is an upper bound on the cycles one execution of b
// adds, excluding callee time.
func blockWorstCost(b *verify.Block, bus uint32, w int64) int64 {
	c := w * spannedBlocks(b, bus)
	for i := range b.Instrs {
		c += instrWorst(b.Instrs[i].Op, w)
	}
	return c
}

// minSolution is the per-cell fixpoint of the interprocedural
// shortest-path system: for every function, the fewest cycles from
// entry to a return and to a halt.
type minSolution struct {
	minRet  map[uint32]int64
	minHalt map[uint32]int64
}

// solveMin iterates per-function Dijkstra to the fixpoint. Every block
// costs at least one cycle, so the system has a unique fixpoint and
// Kleene iteration from +inf converges in at most len(funcs)+1 rounds
// (the minimum is achieved by call trees with no function repeated on a
// chain; a cheaper repeat would contradict minimality).
func (a *analysis) solveMin(bus uint32, w int64) *minSolution {
	s := &minSolution{minRet: map[uint32]int64{}, minHalt: map[uint32]int64{}}
	for _, fi := range a.funcs {
		s.minRet[fi.fc.Entry] = inf
		s.minHalt[fi.fc.Entry] = inf
	}
	for round := 0; round <= len(a.funcs)+1; round++ {
		changed := false
		for _, fi := range a.funcs {
			r, h := a.funcMin(fi, bus, w, s)
			if r < s.minRet[fi.fc.Entry] {
				s.minRet[fi.fc.Entry] = r
				changed = true
			}
			if h < s.minHalt[fi.fc.Entry] {
				s.minHalt[fi.fc.Entry] = h
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return s
}

// funcMin runs one Dijkstra pass over fi's blocks with the current
// callee estimates and returns (min to return, min to halt).
func (a *analysis) funcMin(fi *funcInfo, bus uint32, w int64, s *minSolution) (int64, int64) {
	n := len(fi.fc.Blocks)
	entry, ok := fi.fc.Index[fi.fc.Entry]
	if !ok || n == 0 {
		return inf, inf
	}
	dist := make([]int64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[entry] = 0

	minRet, minHalt := inf, inf
	for {
		// Extract-min; block count per function is small, so the simple
		// quadratic scan beats heap bookkeeping.
		b, best := -1, inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				b, best = i, dist[i]
			}
		}
		if b < 0 {
			break
		}
		done[b] = true
		blk := fi.fc.Blocks[b]
		total := best + blockMinCost(blk, bus, w)

		if blk.Halts && total < minHalt {
			minHalt = total
		}
		if blk.Returns && total < minRet {
			minRet = total
		}
		if blk.Unresolved {
			// The jump may leave the analyzed graph; assume it could
			// return or halt immediately (sound undercount).
			if total < minHalt {
				minHalt = total
			}
			if total < minRet {
				minRet = total
			}
		}

		out := total
		if blk.HasCall {
			if blk.CallUnresolved {
				// Unknown callee: the fall-through still costs at least
				// the block itself, and the callee might halt at once.
				if total < minHalt {
					minHalt = total
				}
			} else {
				cr := s.minRet[blk.CallTarget]
				if ch := s.minHalt[blk.CallTarget]; ch < inf && total+ch < minHalt {
					minHalt = total + ch
				}
				if cr >= inf {
					continue // the callee never provably returns
				}
				out = total + cr
			}
		}
		for _, succ := range blk.Succs {
			if j, ok := fi.fc.Index[succ]; ok && out < dist[j] {
				dist[j] = out
			}
		}
	}
	return minRet, minHalt
}

// maxCtx memoizes per-cell interprocedural worst-case totals.
type maxCtx struct {
	a       *analysis
	bus     uint32
	w       int64
	memo    map[uint32]int64
	onStack map[uint32]bool
}

func (a *analysis) newMaxCtx(bus uint32, w int64) *maxCtx {
	return &maxCtx{a: a, bus: bus, w: w, memo: map[uint32]int64{}, onStack: map[uint32]bool{}}
}

// maxTotal bounds the cycles one invocation of the function at entry
// consumes, callees included, regardless of how it terminates (extra
// blocks a halting run never reaches only increase the bound).
func (c *maxCtx) maxTotal(entry uint32) int64 {
	if v, ok := c.memo[entry]; ok {
		return v
	}
	fi := c.a.byEntry[entry]
	if fi == nil || fi.maxTop || c.onStack[entry] {
		// Unknown function, structural ⊤, or a recursion cycle.
		return top
	}
	c.onStack[entry] = true
	total := int64(0)
	for bi, blk := range fi.fc.Blocks {
		cost := blockWorstCost(blk, c.bus, c.w)
		if blk.HasCall {
			if blk.CallUnresolved {
				cost = top
			} else {
				cost = tAdd(cost, c.maxTotal(blk.CallTarget))
			}
		}
		total = tAdd(total, tMul(c.a.blockCap(fi, bi), cost))
	}
	delete(c.onStack, entry)
	c.memo[entry] = total
	return total
}
