package static_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/static"
)

// The negative corpus mirrors internal/verify/testdata: each file is a
// verify-clean image the analyzer cannot fully bound, with the expected
// diagnostics pinned to exact PCs. A wrong anchor here means the
// console output points users at the wrong instruction.
func TestNegativeCorpus(t *testing.T) {
	type expect struct {
		pc   uint32
		kind string
	}
	cases := []struct {
		file string
		spec func() *isa.Spec
		want []expect
	}{
		{"dlxe_unbounded_loop.s", isa.DLXe, []expect{
			{0x1008, static.DiagUnboundedLoop},
		}},
		{"dlxe_indirect_no_ldc.s", isa.DLXe, []expect{
			{0x1014, static.DiagUnresolvedJump},
		}},
		{"dlxe_irreducible.s", isa.DLXe, []expect{
			{0x1020, static.DiagIrreducible},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			spec := tc.spec()
			img, err := asm.Assemble(tc.file, string(src), spec)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			rep, err := static.Analyze(img, spec)
			if err != nil {
				t.Fatalf("corpus member must be verify-clean: %v", err)
			}
			for _, w := range tc.want {
				found := false
				for _, d := range rep.Diags {
					if d.PC == w.pc && d.Kind == w.kind {
						found = true
					}
				}
				if !found {
					t.Errorf("missing diagnostic %s at %#06x; got %v", w.kind, w.pc, rep.Diags)
				}
			}
			// Every corpus member defeats the upper bound; the lower
			// bound must survive.
			for _, b := range rep.Bounds {
				if b.MaxCycles != -1 {
					t.Errorf("bus=%d w=%d: max = %d, want -1 (top)", b.BusBytes, b.WaitStates, b.MaxCycles)
				}
				if b.MinCycles <= 0 {
					t.Errorf("bus=%d w=%d: min = %d, want > 0", b.BusBytes, b.WaitStates, b.MinCycles)
				}
			}
		})
	}
}
