package static

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/verify"
)

// analysis carries the per-image state: the verifier's CFG plus the
// structural results (dominators, loop forest, execution caps) the
// bound computations consume.
type analysis struct {
	img  *prog.Image
	spec *isa.Spec
	cfg  *verify.CFG
	ib   uint32

	funcs   []*funcInfo
	byEntry map[uint32]*funcInfo
	diags   []Diag
	dseen   map[string]bool
}

// funcInfo is one function's structural analysis.
type funcInfo struct {
	fc     *funcCFGView
	preds  [][]int
	rpo    []int // block indices in reverse postorder from the entry
	rpoNum []int // block index -> position in rpo
	idom   []int // immediate dominator per block (-1 above entry)
	loops  []*loopInfo
	loopOf []int // innermost loop index per block, -1 outside loops
	depth  []int // loop-nesting depth per block

	// maxTop is set when the function's upper bound is ⊤ for a
	// structural reason (irreducible flow, unresolved jump or call).
	maxTop bool
}

// funcCFGView aliases the verifier's FuncCFG for brevity.
type funcCFGView = verify.FuncCFG

// loopInfo is one natural loop (back edges merged per header).
type loopInfo struct {
	head     int
	body     map[int]bool
	bodyList []int // body block indices, ascending
	backs    []int // back-edge source block indices, ascending
	bound int64 // max header executions per loop entry; ⊤ = -1
	cap   int64 // max header executions per function invocation; memoized
	done  bool  // cap computed
	onCap bool  // cap computation in progress (cycle guard)
}

func (a *analysis) diag(pc uint32, kind, msg string) {
	key := fmt.Sprintf("%d|%s|%s", pc, kind, msg)
	if a.dseen == nil {
		a.dseen = map[string]bool{}
	}
	if a.dseen[key] {
		return
	}
	a.dseen[key] = true
	a.diags = append(a.diags, Diag{PC: pc, Sym: a.img.SymbolAt(pc), Kind: kind, Msg: msg})
}

// build runs the structural analysis over every function.
func (a *analysis) build() {
	a.byEntry = map[uint32]*funcInfo{}
	for _, fc := range a.cfg.Funcs {
		fi := a.buildFunc(fc)
		a.funcs = append(a.funcs, fi)
		a.byEntry[fc.Entry] = fi
	}
	a.detectRecursion()
	a.sortDiags()
}

func (a *analysis) buildFunc(fc *funcCFGView) *funcInfo {
	n := len(fc.Blocks)
	fi := &funcInfo{fc: fc, preds: make([][]int, n)}

	succIdx := make([][]int, n)
	for i, b := range fc.Blocks {
		for _, s := range b.Succs {
			if j, ok := fc.Index[s]; ok {
				succIdx[i] = append(succIdx[i], j)
				fi.preds[j] = append(fi.preds[j], i)
			}
		}
		if b.Unresolved {
			fi.maxTop = true
			a.diag(b.PCs[len(b.PCs)-2], DiagUnresolvedJump,
				"indirect jump target not resolved by constant propagation; upper bound is ⊤")
		}
		if b.CallUnresolved {
			fi.maxTop = true
			a.diag(b.PCs[len(b.PCs)-2], DiagUnresolvedCall,
				"indirect call target not resolved by constant propagation; upper bound is ⊤")
		}
	}

	// Reverse postorder from the entry block.
	entry, ok := fc.Index[fc.Entry]
	if !ok || n == 0 {
		return fi
	}
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range succIdx[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)
	fi.rpo = make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		fi.rpo = append(fi.rpo, post[i])
	}
	fi.rpoNum = make([]int, n)
	for i := range fi.rpoNum {
		fi.rpoNum[i] = -1
	}
	for i, b := range fi.rpo {
		fi.rpoNum[b] = i
	}

	a.dominators(fi, succIdx, entry)
	a.findLoops(fi, succIdx, entry)
	a.inferBounds(fi, entry)
	return fi
}

// dominators computes immediate dominators with the classic iterative
// algorithm over reverse postorder (Cooper-Harvey-Kennedy).
func (a *analysis) dominators(fi *funcInfo, succIdx [][]int, entry int) {
	n := len(fi.fc.Blocks)
	fi.idom = make([]int, n)
	for i := range fi.idom {
		fi.idom[i] = -1
	}
	fi.idom[entry] = entry

	intersect := func(b1, b2 int) int {
		for b1 != b2 {
			for fi.rpoNum[b1] > fi.rpoNum[b2] {
				b1 = fi.idom[b1]
			}
			for fi.rpoNum[b2] > fi.rpoNum[b1] {
				b2 = fi.idom[b2]
			}
		}
		return b1
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fi.rpo {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range fi.preds[b] {
				if fi.rpoNum[p] < 0 || fi.idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && fi.idom[b] != newIdom {
				fi.idom[b] = newIdom
				changed = true
			}
		}
	}
}

// dominates reports whether block d dominates block b.
func (fi *funcInfo) dominates(d, b int) bool {
	for {
		if b == d {
			return true
		}
		next := fi.idom[b]
		if next < 0 || next == b {
			return false
		}
		b = next
	}
}

// findLoops classifies every retreating edge: to a dominator it is a
// back edge founding a natural loop; otherwise the flow is irreducible
// and the function's upper bound goes to ⊤.
func (a *analysis) findLoops(fi *funcInfo, succIdx [][]int, entry int) {
	byHead := map[int]*loopInfo{}
	var heads []int
	for _, u := range fi.rpo {
		for _, h := range succIdx[u] {
			if fi.rpoNum[h] < 0 || fi.rpoNum[h] > fi.rpoNum[u] {
				continue // forward or cross edge
			}
			if !fi.dominates(h, u) {
				fi.maxTop = true
				a.diag(fi.fc.Blocks[u].Start, DiagIrreducible,
					"retreating edge to a non-dominating block: irreducible control flow; upper bound is ⊤")
				continue
			}
			L := byHead[h]
			if L == nil {
				L = &loopInfo{head: h, body: map[int]bool{h: true}}
				byHead[h] = L
				heads = append(heads, h)
			}
			L.backs = append(L.backs, u)
			// Natural loop body: reverse flood from the back-edge source.
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if L.body[b] {
					continue
				}
				L.body[b] = true
				stack = append(stack, fi.preds[b]...)
			}
		}
	}
	sort.Ints(heads)
	for _, h := range heads {
		L := byHead[h]
		sort.Ints(L.backs)
		for b := range L.body { //detlint:ignore rangemap sorted immediately below
			L.bodyList = append(L.bodyList, b)
		}
		sort.Ints(L.bodyList)
		fi.loops = append(fi.loops, L)
	}
	// Innermost-first order (smallest body), deterministic tie-break by
	// header address order.
	sort.SliceStable(fi.loops, func(i, j int) bool {
		return len(fi.loops[i].body) < len(fi.loops[j].body)
	})

	n := len(fi.fc.Blocks)
	fi.loopOf = make([]int, n)
	fi.depth = make([]int, n)
	for i := range fi.loopOf {
		fi.loopOf[i] = -1
	}
	for b := 0; b < n; b++ {
		for li, L := range fi.loops {
			if L.body[b] {
				if fi.loopOf[b] < 0 {
					fi.loopOf[b] = li
				}
				fi.depth[b]++
			}
		}
	}
}

// inferBounds runs the counted-loop recognizer over every loop.
func (a *analysis) inferBounds(fi *funcInfo, entry int) {
	for _, L := range fi.loops {
		L.bound = a.loopBound(fi, L, entry)
		L.cap = top
		if L.bound == top {
			a.diag(fi.fc.Blocks[L.head].Start, DiagUnboundedLoop,
				"loop trip count not inferable (no mvi/ldc counted-loop idiom); upper bound is ⊤")
		}
	}
}

// loopBound recognizes the counted-loop idiom and returns the maximum
// header executions per loop entry, or ⊤.
//
// The idiom: the single back edge is a `bnz rX, header` whose counter
// rX is decremented exactly once per iteration by `subi rX, rX, 1` —
// either in the back-edge block before the branch (bound N: the branch
// tests the post-decrement value) or in its delay slot (bound N+1: the
// branch tests the pre-decrement value) — rX is defined nowhere else in
// the loop, and every entry edge's source block ends with rX holding a
// known constant N from an mvi, mvhi or ldc. Calls inside the loop are
// allowed only when rX is callee-saved (the verifier's stack discipline
// proves the callee preserves it).
func (a *analysis) loopBound(fi *funcInfo, L *loopInfo, entry int) int64 {
	if len(L.backs) != 1 || L.head == entry {
		// Multiple back edges, or a loop the invocation enters directly
		// (no preheader to read the trip count from).
		return top
	}
	u := fi.fc.Blocks[L.backs[0]]
	n := len(u.Instrs)
	if n < 2 {
		return top
	}
	ctrl, slot := u.Instrs[n-2], u.Instrs[n-1]
	ctrlPC := u.PCs[n-2]
	head := fi.fc.Blocks[L.head]
	if ctrl.Op != isa.BNZ || ctrlPC+uint32(ctrl.Imm) != head.Start {
		return top
	}
	rx := ctrl.Rs1
	if !rx.Valid() {
		return top
	}

	// Locate the single decrement.
	isDec := func(in isa.Instr) bool {
		return in.Op == isa.SUBI && in.Rd == rx && in.Rs1 == rx && in.Imm == 1
	}
	decIdx := -1
	for i := 0; i < n-2; i++ {
		if u.Instrs[i].Def() == rx {
			decIdx = i
		}
	}
	slotDec := false
	switch {
	case decIdx >= 0:
		if !isDec(u.Instrs[decIdx]) {
			return top
		}
	case isDec(slot):
		slotDec = true
		decIdx = n - 1
	default:
		return top
	}

	// rX must be defined nowhere else in the loop, and survive any call.
	for _, bi := range L.bodyList {
		blk := fi.fc.Blocks[bi]
		for i, in := range blk.Instrs {
			if bi == L.backs[0] && i == decIdx {
				continue
			}
			if in.Def() == rx {
				return top
			}
		}
		if blk.HasCall && (blk.CallUnresolved || !isa.CalleeSaved(rx)) {
			return top
		}
	}

	// Every entry edge must supply a constant trip count.
	var bound int64
	found := false
	for _, p := range fi.preds[L.head] {
		if L.body[p] {
			continue
		}
		c, ok := a.lastConstDef(fi.fc.Blocks[p], rx)
		if !ok {
			return top
		}
		v := int64(c)
		if slotDec {
			// Pre-decrement test: rX = N, N-1, ..., 0 — taken N times.
			if v < 0 {
				return top
			}
			v++
		} else if v < 1 {
			// Post-decrement test from N <= 0 wraps through zero.
			return top
		}
		if !found || v > bound {
			bound = v
		}
		found = true
	}
	if !found {
		return top
	}
	return bound
}

// lastConstDef returns the constant rX holds at the end of blk, when
// its last definition there is an immediate or literal-pool load.
func (a *analysis) lastConstDef(blk *verify.Block, rx isa.Reg) (int32, bool) {
	for i := len(blk.Instrs) - 1; i >= 0; i-- {
		in := blk.Instrs[i]
		if in.Def() != rx {
			continue
		}
		switch in.Op {
		case isa.MVI:
			return in.Imm, true
		case isa.MVHI:
			return in.Imm << 16, true
		case isa.LDC:
			return a.literal(blk.PCs[i], in.Imm)
		}
		return 0, false
	}
	return 0, false
}

// literal reads the 32-bit pool word an ldc at pc references — the same
// arithmetic the verifier's constant propagation uses.
func (a *analysis) literal(pc uint32, disp int32) (int32, bool) {
	t := int64(pc) + int64(disp)
	end := int64(isa.TextBase) + int64(len(a.img.Text))
	if t < int64(isa.TextBase) || t+4 > end || t%4 != 0 {
		return 0, false
	}
	return int32(binary.LittleEndian.Uint32(a.img.Text[t-int64(isa.TextBase):])), true
}

// blockCap bounds how many times block b executes per function
// invocation: 1 outside loops (a reducible CFG cannot revisit a block
// that is in no natural loop), otherwise the innermost loop's cap.
func (a *analysis) blockCap(fi *funcInfo, b int) int64 {
	li := fi.loopOf[b]
	if li < 0 {
		return 1
	}
	return a.loopCap(fi, li)
}

// loopCap bounds the loop header's executions per function invocation:
// the trip bound times the executions of every entry edge's source.
// Sibling-loop entries recurse; a cycle among siblings would imply an
// enclosing natural loop, so the guard only fires on flow findLoops
// already flagged.
func (a *analysis) loopCap(fi *funcInfo, li int) int64 {
	L := fi.loops[li]
	if L.done {
		return L.cap
	}
	if L.onCap || L.bound == top {
		return top
	}
	L.onCap = true
	defer func() { L.onCap = false }()

	entries := int64(0)
	entryIdx, ok := fi.fc.Index[fi.fc.Entry]
	if ok && L.head == entryIdx {
		entries = 1 // the invocation itself enters at the header
	}
	for _, p := range fi.preds[L.head] {
		if L.body[p] {
			continue
		}
		entries = tAdd(entries, a.blockCap(fi, p))
	}
	L.cap = tMul(L.bound, entries)
	L.done = true
	return L.cap
}

// detectRecursion walks the call graph and anchors a diagnostic at
// every call edge that closes a cycle. The bound computation handles
// recursion independently (its own on-stack guard); this pass exists so
// the ⊤ has a PC-accurate explanation.
func (a *analysis) detectRecursion() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[uint32]int{}
	var walk func(*funcInfo)
	walk = func(fi *funcInfo) {
		color[fi.fc.Entry] = gray
		for _, blk := range fi.fc.Blocks {
			if !blk.HasCall || blk.CallUnresolved {
				continue
			}
			callee := a.byEntry[blk.CallTarget]
			if callee == nil {
				continue
			}
			switch color[callee.fc.Entry] {
			case gray:
				a.diag(blk.PCs[len(blk.PCs)-2], DiagRecursion,
					"call closes a recursion cycle through "+callee.fc.Name+"; upper bound is ⊤")
			case white:
				walk(callee)
			}
		}
		color[fi.fc.Entry] = black
	}
	for _, fi := range a.funcs {
		if color[fi.fc.Entry] == white {
			walk(fi)
		}
	}
}
