; negative: a register jump whose target is computed rather than loaded
; as a propagated constant - the verifier ends the walk conservatively,
; the analyzer reports unresolved-jump and sends the upper bound to top.
	.text
	.global _start
_start:
	mvi r4, 0          ; 0x1000
	bz r4, .done       ; 0x1004  keeps .done provably reachable
	nop                ; 0x1008
	mvi r14, 4124      ; 0x100c
	shl r14, r14, r4   ; 0x1010  register shift: target no longer a constant
	j r14              ; 0x1014  <- unresolved-jump diagnostic
	nop                ; 0x1018
.done:
	trap 0             ; 0x101c
