; negative: the cycle {.a, .b} has two outside entries (the fall-through
; into .a and the branch into .b), so neither header dominates the other:
; the retreating edge founds no natural loop and the flow is irreducible.
	.text
	.global _start
_start:
	mvi r5, 0       ; 0x1000
	mvi r4, 1       ; 0x1004
	bz r4, .b       ; 0x1008  entry #1: into .b
	nop             ; 0x100c
.a:
	subi r4, r4, 1  ; 0x1010  entry #2: fallen into from the slot
	bnz r4, .b      ; 0x1014
	nop             ; 0x1018
	trap 0          ; 0x101c
.b:
	addi r5, r5, 1  ; 0x1020  <- irreducible-cfg diagnostic (retreating edge source)
	bnz r5, .a      ; 0x1024
	nop             ; 0x1028
	trap 0          ; 0x102c
