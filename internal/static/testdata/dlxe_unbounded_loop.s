; negative: the loop counter is computed at run time, so the counted-loop
; recognizer has no constant trip count and the upper bound is top.
	.text
	.global _start
_start:
	mvi r4, 7       ; 0x1000
	shl r4, r4, r4  ; 0x1004  counter no longer a propagated constant
.loop:
	subi r4, r4, 1  ; 0x1008  <- loop header: unbounded-loop diagnostic
	bnz r4, .loop   ; 0x100c
	nop             ; 0x1010
	trap 0          ; 0x1014
