// Package static is the interprocedural static cost and density
// analyzer: it reproduces the paper's static half — code density and
// instruction-fetch traffic per bus width — and computes sound
// whole-image cycle intervals [min, max], all without simulating a
// cycle. It consumes the control-flow graph the verifier reconstructs
// (verify.CFGOf), so every analyzed instruction provably decodes and
// every edge was validated; nothing is re-proved here.
//
// The cycle bounds model the separate-port, cacheless pipeline engine
// exactly (pipeline.Config{SharedPort: false, Caches: nil}): for every
// halting run, Engine.Cycles() lies within the reported interval — the
// standing containment property TestContainment and FuzzContainment
// enforce across the seed benches and the synth corpus. Loop trip
// counts are inferred from the mvi/ldc counted-loop idiom; anything the
// analysis cannot bound (unbounded loops, irreducible flow, unresolved
// indirect jumps, recursion) sends the upper bound to ⊤, reported as
// MaxCycles = -1. See docs/STATIC.md for the model and its soundness
// argument.
package static

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// Version numbers the analyzer's rule set (bound formulas, loop-idiom
// recognizer, diagnostics). Report consumers may mix it into cache keys.
const Version = 1

// Grid is the Appendix-A memory-interface grid the image bounds expand
// over: the 32- and 64-bit fetch buses crossed with 0..3 wait states —
// the same cells core.Measurement.Points persists.
var GridBuses = []uint32{4, 8}

// GridWaits is the exclusive upper bound of the wait-state axis.
const GridWaits = 4

// FetchBuses is the density table's bus-width axis; it adds the paper's
// 16-bit bus, where D16's fetch-traffic advantage is starkest.
var FetchBuses = []uint32{2, 4, 8}

// Diagnostic kinds: the reasons an upper bound goes to ⊤.
const (
	DiagUnboundedLoop  = "unbounded-loop"
	DiagIrreducible    = "irreducible-cfg"
	DiagUnresolvedJump = "unresolved-jump"
	DiagUnresolvedCall = "unresolved-call"
	DiagRecursion      = "recursion"
	DiagNoHalt         = "no-halt"
)

// Diag is one PC-anchored analysis diagnostic. Unlike a verify
// violation it does not reject the image — it explains a ⊤ bound.
type Diag struct {
	PC   uint32 `json:"pc"`
	Sym  string `json:"sym,omitempty"`
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

func (d Diag) String() string {
	loc := fmt.Sprintf("%#06x", d.PC)
	if d.Sym != "" {
		loc += " (" + d.Sym + ")"
	}
	return fmt.Sprintf("%s [%s] %s", loc, d.Kind, d.Msg)
}

// BoundRow is one cell of the static cycle-bound grid. MaxCycles is -1
// when the upper bound is ⊤ (see Diags for why); MinCycles is always
// finite and sound.
type BoundRow struct {
	BusBytes   uint32 `json:"bus_bytes"`
	WaitStates int64  `json:"wait_states"`
	MinCycles  int64  `json:"min_cycles"`
	MaxCycles  int64  `json:"max_cycles"` // -1 = ⊤
}

// FetchRow is one row of the static ifetch-traffic table: the bus words
// (and bytes) needed to stream every static instruction exactly once.
type FetchRow struct {
	BusBytes uint32 `json:"bus_bytes"`
	Words    int64  `json:"words"`
	Bytes    int64  `json:"bytes"`
}

// ImageStats is the whole-image static summary.
type ImageStats struct {
	SizeBytes  int64 `json:"size_bytes"` // text + data: the paper's density metric
	TextBytes  int64 `json:"text_bytes"`
	PoolBytes  int64 `json:"pool_bytes"`
	DataBytes  int64 `json:"data_bytes"`
	Instrs     int64 `json:"instrs"`      // static instruction count
	InstrBytes int64 `json:"instr_bytes"` // Instrs x instruction width

	Funcs        int `json:"funcs"`
	Blocks       int `json:"blocks"`
	Loops        int `json:"loops"`
	BoundedLoops int `json:"bounded_loops"`

	// Statically fusible adjacent pairs (ROADMAP item 2's macro-op
	// fusion candidates), counted once per static occurrence.
	FuseCmpBranch int64 `json:"fuse_cmp_branch"`
	FuseLdcJump   int64 `json:"fuse_ldc_jump"`

	// MinInstrs is the shortest halting path through the interprocedural
	// CFG in instructions — a bus-independent lower bound on any run's
	// dynamic path length.
	MinInstrs int64 `json:"min_instrs"`

	FetchWords []FetchRow `json:"fetch_words"`
}

// LoopStat is one natural loop's inference result.
type LoopStat struct {
	Head  uint32 `json:"head"`  // header block address
	Depth int    `json:"depth"` // nesting depth of the header (1 = outermost)
	Bound int64  `json:"bound"` // max header executions per loop entry; -1 = ⊤
}

// FuncStats is one function's static summary. Its bound rows are per
// invocation (entry to return — or to halt, whichever is provable) and
// exclude the pipeline drain.
type FuncStats struct {
	Name       string `json:"name"`
	Entry      uint32 `json:"entry"`
	Bytes      int64  `json:"bytes"` // span including embedded pools
	Instrs     int64  `json:"instrs"`
	InstrBytes int64  `json:"instr_bytes"`
	Blocks     int    `json:"blocks"`
	Loops      int    `json:"loops"`
	MaxDepth   int    `json:"max_loop_depth"`

	FuseCmpBranch int64 `json:"fuse_cmp_branch"`
	FuseLdcJump   int64 `json:"fuse_ldc_jump"`

	LoopStats []LoopStat `json:"loop_stats,omitempty"`
	Bounds    []BoundRow `json:"bounds"`
}

// Report is the full static analysis of one image.
type Report struct {
	Config string      `json:"config"`
	Enc    string      `json:"enc"`
	Image  ImageStats  `json:"image"`
	Funcs  []FuncStats `json:"funcs"`
	// Bounds is the whole-image grid: entry to halt, first fetch and
	// pipeline drain included.
	Bounds []BoundRow `json:"bounds"`
	Diags  []Diag     `json:"diags,omitempty"`
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *Report) WriteJSON(path string) error { return telemetry.WriteJSONFile(path, r) }

// BoundAt returns the image bound row for one grid cell.
func (r *Report) BoundAt(bus uint32, waits int64) (BoundRow, bool) {
	for _, b := range r.Bounds {
		if b.BusBytes == bus && b.WaitStates == waits {
			return b, true
		}
	}
	return BoundRow{}, false
}

// Analyze verifies img against spec and, when clean, runs the full
// static analysis. A dirty image returns the *verify.Error carrying the
// violation report — the same failure mcrun/repro surface as exit 3.
func Analyze(img *prog.Image, spec *isa.Spec) (*Report, error) {
	span := telemetry.StartSpan("static", telemetry.String("config", spec.Name))
	defer span.End()
	g, vrep := verify.CFGOf(img, spec)
	if g == nil {
		return nil, vrep.Err()
	}
	a := &analysis{
		img:  img,
		spec: spec,
		cfg:  g,
		ib:   img.Enc.InstrBytes(),
	}
	a.build()
	rep := a.report()
	reg := telemetry.Default()
	reg.Counter("static.images").Inc()
	reg.Counter("static.diags").Add(int64(len(rep.Diags)))
	return rep, nil
}

// top is the ⊤ sentinel for cycle quantities; inf the unreachable
// sentinel for shortest-path distances.
const (
	top    = int64(-1)
	inf    = int64(1) << 60
	satCap = int64(1) << 50 // saturation threshold: larger goes to ⊤
)

// tAdd adds two possibly-⊤ quantities, saturating to ⊤.
func tAdd(a, b int64) int64 {
	if a == top || b == top {
		return top
	}
	if s := a + b; s < satCap {
		return s
	}
	return top
}

// tMul multiplies two possibly-⊤ quantities, saturating to ⊤.
func tMul(a, b int64) int64 {
	if a == top || b == top {
		return top
	}
	if a == 0 || b == 0 {
		return 0
	}
	if a < satCap/b {
		return a * b
	}
	return top
}
