package static

import (
	"repro/internal/isa"
)

// Static density and fetch-traffic measures: everything here is a pure
// function of the image layout — no control flow, no timing.

// fetchWords counts the distinct bus-width blocks that hold at least
// one instruction slot in [start, end): the bus words an instruction
// fetch unit must stream to touch every static instruction once.
// Literal pools and padding inside the span are skipped — the fetch
// buffer never requests a block no instruction lives in.
func (a *analysis) fetchWords(start, end, bus uint32) int64 {
	var words int64
	last, have := uint32(0), false
	for pc := start; pc < end; pc += a.ib {
		if a.img.InNonCode(pc) {
			continue
		}
		// A wide instruction on a narrow bus (DLXe on the 16-bit bus)
		// covers several words; the scan is ascending, so tracking the
		// last counted word deduplicates shared blocks.
		for blk := pc &^ (bus - 1); blk <= (pc + a.ib - 1) &^ (bus - 1); blk += bus {
			if !have || blk > last {
				words++
				last, have = blk, true
			}
		}
	}
	return words
}

// instrsIn counts instruction slots in [start, end).
func (a *analysis) instrsIn(start, end uint32) int64 {
	var n int64
	for pc := start; pc < end; pc += a.ib {
		if !a.img.InNonCode(pc) {
			n++
		}
	}
	return n
}

// pairCensus counts statically fusible adjacent pairs inside one
// function: a compare feeding the conditional branch right after it
// (cmp+bz/bnz) and a literal-pool load feeding the register jump right
// after it (ldc+j/jl/jz/jnz) — the macro-op fusion candidates a wider
// decode could issue as one operation. Pairs are keyed by the first
// instruction's address so the overlapping blocks a branch-into-delay-
// slot produces cannot double count.
func (a *analysis) pairCensus(fc *funcCFGView) (cmpBr, ldcJmp int64) {
	seen := map[uint32]bool{}
	for _, b := range fc.Blocks {
		for i := 0; i+1 < len(b.Instrs); i++ {
			pc := b.PCs[i]
			if b.PCs[i+1] != pc+a.ib || seen[pc] {
				continue
			}
			cur, nx := b.Instrs[i], b.Instrs[i+1]
			switch {
			case cur.Op == isa.CMP && (nx.Op == isa.BZ || nx.Op == isa.BNZ) &&
				nx.Rs1 == cur.Def():
				cmpBr++
				seen[pc] = true
			case cur.Op == isa.LDC && nx.Op.IsJump() && !nx.HasImm &&
				nx.Rs1 == cur.Def():
				ldcJmp++
				seen[pc] = true
			}
		}
	}
	return cmpBr, ldcJmp
}
