package static

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/pipeline"
)

// drainCycles mirrors the engine's constant fill/drain tail.
const drainCycles = int64(pipeline.DrainCycles)

// report assembles the final Report from the structural analysis: the
// density tables are layout arithmetic, the bound grids solve the min
// fixpoint and the memoized max once per memory-interface cell.
func (a *analysis) report() *Report {
	rep := &Report{Config: a.cfg.Config, Enc: a.cfg.Enc}

	// One min solution and one max context per grid cell, shared by the
	// image rows and every function's rows.
	type cell struct {
		bus uint32
		w   int64
		sol *minSolution
		mc  *maxCtx
	}
	var cells []cell
	for _, bus := range GridBuses {
		for w := int64(0); w < GridWaits; w++ {
			cells = append(cells, cell{bus, w, a.solveMin(bus, w), a.newMaxCtx(bus, w)})
		}
	}

	// Image stats.
	img := &rep.Image
	img.SizeBytes = int64(a.img.Size())
	img.TextBytes = int64(len(a.img.Text))
	img.PoolBytes = int64(a.img.PoolBytes)
	img.DataBytes = int64(len(a.img.Data))
	img.Instrs = int64(a.img.TextInstrs)
	img.InstrBytes = img.Instrs * int64(a.ib)
	img.Funcs = len(a.funcs)
	for _, bus := range FetchBuses {
		words := a.fetchWords(isa.TextBase, a.img.TextEnd(), bus)
		img.FetchWords = append(img.FetchWords, FetchRow{
			BusBytes: bus, Words: words, Bytes: words * int64(bus),
		})
	}

	// Function stats, in address order (cfg.Funcs order).
	for _, fi := range a.funcs {
		fc := fi.fc
		fs := FuncStats{
			Name:   fc.Name,
			Entry:  fc.Entry,
			Bytes:  int64(fc.End - fc.Entry),
			Blocks: len(fc.Blocks),
			Loops:  len(fi.loops),
		}
		fs.Instrs = a.instrsIn(fc.Entry, fc.End)
		fs.InstrBytes = fs.Instrs * int64(a.ib)
		for _, d := range fi.depth {
			if d > fs.MaxDepth {
				fs.MaxDepth = d
			}
		}
		for _, L := range fi.loops {
			if L.bound != top {
				img.BoundedLoops++
			}
			fs.LoopStats = append(fs.LoopStats, LoopStat{
				Head:  fc.Blocks[L.head].Start,
				Depth: fi.depth[L.head],
				Bound: L.bound,
			})
		}
		//detlint:ignore sortslice loop headers are unique per function
		sort.Slice(fs.LoopStats, func(i, j int) bool {
			return fs.LoopStats[i].Head < fs.LoopStats[j].Head
		})
		img.Blocks += len(fc.Blocks)
		img.Loops += len(fi.loops)
		fs.FuseCmpBranch, fs.FuseLdcJump = a.pairCensus(fc)
		img.FuseCmpBranch += fs.FuseCmpBranch
		img.FuseLdcJump += fs.FuseLdcJump

		for _, c := range cells {
			mn := min64(c.sol.minRet[fc.Entry], c.sol.minHalt[fc.Entry])
			if mn >= inf {
				mn = 0 // no provable exit: the trivial lower bound
			}
			fs.Bounds = append(fs.Bounds, BoundRow{
				BusBytes:   c.bus,
				WaitStates: c.w,
				MinCycles:  mn,
				MaxCycles:  c.mc.maxTotal(fc.Entry),
			})
		}
		rep.Funcs = append(rep.Funcs, fs)
	}

	// Whole-image grid: entry to halt. The entry fetch always misses the
	// empty fetch buffer (+W) and the drain tail is constant.
	for _, c := range cells {
		mh := c.sol.minHalt[a.cfg.Entry]
		row := BoundRow{BusBytes: c.bus, WaitStates: c.w}
		if mh >= inf {
			row.MinCycles = 0
			a.diag(a.cfg.Entry, DiagNoHalt,
				"no halting path from the entry is provable; lower bound is trivial")
		} else {
			row.MinCycles = mh + c.w + drainCycles
		}
		row.MaxCycles = tAdd(c.mc.maxTotal(a.cfg.Entry), drainCycles)
		rep.Bounds = append(rep.Bounds, row)
	}

	// MinInstrs: with zero wait states every cycle of the minimum is an
	// issue, so the w=0 min-to-halt IS the shortest halting path length.
	if mh := cells[0].sol.minHalt[a.cfg.Entry]; mh < inf {
		img.MinInstrs = mh
	}

	a.sortDiags()
	rep.Diags = a.diags
	return rep
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteTable renders the report as deterministic fixed-format text —
// the mcrun/repro -static console surface.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "static v%d  config=%s  enc=%s\n", Version, r.Config, r.Enc)
	i := &r.Image
	fmt.Fprintf(w, "image: size=%dB text=%dB pool=%dB data=%dB instrs=%d instr-bytes=%dB\n",
		i.SizeBytes, i.TextBytes, i.PoolBytes, i.DataBytes, i.Instrs, i.InstrBytes)
	fmt.Fprintf(w, "cfg:   funcs=%d blocks=%d loops=%d bounded-loops=%d fuse-cmp-branch=%d fuse-ldc-jump=%d min-instrs=%d\n",
		i.Funcs, i.Blocks, i.Loops, i.BoundedLoops, i.FuseCmpBranch, i.FuseLdcJump, i.MinInstrs)
	fmt.Fprintf(w, "ifetch traffic (stream every static instruction once):\n")
	for _, f := range i.FetchWords {
		fmt.Fprintf(w, "  bus=%dB  words=%-6d bytes=%d\n", f.BusBytes, f.Words, f.Bytes)
	}
	fmt.Fprintf(w, "image cycle bounds (entry to halt, drain included):\n")
	for _, b := range r.Bounds {
		fmt.Fprintf(w, "  bus=%dB w=%d  min=%-8d max=%s\n", b.BusBytes, b.WaitStates, b.MinCycles, maxStr(b.MaxCycles))
	}
	fmt.Fprintf(w, "functions:\n")
	for _, f := range r.Funcs {
		fmt.Fprintf(w, "  %s @%#06x  bytes=%d instrs=%d blocks=%d loops=%d depth=%d fuse=%d+%d\n",
			f.Name, f.Entry, f.Bytes, f.Instrs, f.Blocks, f.Loops, f.MaxDepth,
			f.FuseCmpBranch, f.FuseLdcJump)
		for _, L := range f.LoopStats {
			fmt.Fprintf(w, "    loop @%#06x depth=%d bound=%s\n", L.Head, L.Depth, maxStr(L.Bound))
		}
		for _, b := range f.Bounds {
			fmt.Fprintf(w, "    bus=%dB w=%d  min=%-8d max=%s\n",
				b.BusBytes, b.WaitStates, b.MinCycles, maxStr(b.MaxCycles))
		}
	}
	if len(r.Diags) > 0 {
		fmt.Fprintf(w, "diagnostics:\n")
		for _, d := range r.Diags {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
}

func maxStr(v int64) string {
	if v == top {
		return "unbounded"
	}
	return fmt.Sprintf("%d", v)
}

// sortDiags orders the diagnostics by PC, kind, message.
func (a *analysis) sortDiags() {
	sort.Slice(a.diags, func(i, j int) bool {
		x, y := a.diags[i], a.diags[j]
		if x.PC != y.PC {
			return x.PC < y.PC
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Msg < y.Msg
	})
}
