package synth

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// Every class, over a spread of seeds, must satisfy the corpus
// properties on all five paper configurations: compile, verify, run,
// and identical output across ISAs. This is the unit-sized version of
// the standing miscompile fuzzer (FuzzDifferential in internal/mcc
// keeps digging beyond these seeds).
func TestGeneratedProgramsPassCheckOnAllConfigs(t *testing.T) {
	seeds := []uint32{0, 1, 0xdeadbeef, 12345}
	if testing.Short() {
		seeds = seeds[:2]
	}
	specs := isa.PaperConfigs()
	for _, class := range Classes() {
		for _, seed := range seeds {
			p, err := Generate(class, seed)
			if err != nil {
				t.Fatalf("Generate(%s, %d): %v", class, seed, err)
			}
			if err := Check(p, specs); err != nil {
				t.Errorf("%s: %v", p.Name, err)
			}
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	for _, class := range Classes() {
		a, err := Generate(class, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Generate(class, 42)
		if a.Source != b.Source {
			t.Errorf("%s: same (class, seed) produced different source", class)
		}
		c, _ := Generate(class, 43)
		if a.Source == c.Source {
			t.Errorf("%s: different seeds produced identical source", class)
		}
	}
}

func TestGenerateUnknownClass(t *testing.T) {
	if _, err := Generate("nosuch", 1); err == nil {
		t.Fatal("expected an error for an unknown class")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[uint32]bool{}
	for _, class := range Classes() {
		for i := 0; i < 64; i++ {
			s := DeriveSeed(7, class, i)
			if seen[s] {
				t.Fatalf("seed collision at (%s, %d)", class, i)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(7, "loopy", 0) == DeriveSeed(8, "loopy", 0) {
		t.Error("master seed does not influence derived seed")
	}
}

// Minimization against a synthetic oracle: a "failure" that only needs
// one specific unit must shrink to a program containing that unit's
// function and not (most of) the others.
func TestMinimizeSourceShrinks(t *testing.T) {
	g := build("callheavy", 99)
	if g == nil || len(g.units) < 3 {
		t.Fatal("expected a multi-unit callheavy program")
	}
	full := g.emit(g.allEnabled())
	// The oracle: failing means "still calls hub1".
	fails := func(src string) bool { return strings.Contains(src, "hub1(") }
	min := minimizeSource("callheavy", 99, fails)
	if min == "" {
		t.Fatal("minimizeSource returned nothing for a failing program")
	}
	if !strings.Contains(min, "hub1(") {
		t.Fatal("minimized program lost the failing unit")
	}
	if strings.Contains(min, "hub2(") || strings.Contains(min, "hub0(") {
		t.Error("minimized program kept units the failure does not need")
	}
	if len(min) >= len(full) {
		t.Errorf("minimized program (%d bytes) is not smaller than the original (%d bytes)", len(min), len(full))
	}
}

// A program that does not fail at all must come back unchanged.
func TestMinimizeNonFailingProgram(t *testing.T) {
	p, err := Generate("loopy", 5)
	if err != nil {
		t.Fatal(err)
	}
	q := Minimize(p, isa.PaperConfigs())
	if q.Source != p.Source {
		t.Error("Minimize altered a program that passes Check")
	}
}

func TestRNGMatchesReferenceLCG(t *testing.T) {
	// The extracted RNG must implement exactly the historical bench
	// generator: state = state*1664525 + 1013904223, top-24-bits mod n.
	r := NewRNG(77)
	s := uint32(77)
	for i := 0; i < 100; i++ {
		s = s*1664525 + 1013904223
		want := int(s>>8) % 64
		if got := r.Intn(64); got != want {
			t.Fatalf("draw %d: got %d, want %d", i, got, want)
		}
	}
}
