package synth

// RNG is the corpus generator's deterministic random source: the same
// 32-bit linear congruential generator (Numerical Recipes constants)
// the latex/ipl large-program benchmarks have always been emitted from,
// extracted here so paper stand-ins and random corpus members draw from
// one seeded, reproducible stream. math/rand is banned in packages with
// byte-identical output (see internal/detlint); this is the sanctioned
// replacement.
type RNG struct {
	state uint32
}

// NewRNG returns a generator seeded with s.
func NewRNG(s uint32) *RNG { return &RNG{state: s} }

// Intn returns a value in [0, n). n must be positive and well below
// 2^24 (the generator exposes the top 24 bits of its state).
func (r *RNG) Intn(n int) int {
	r.state = r.state*1664525 + 1013904223
	return int(r.state>>8) % n
}

// Range returns a value in [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int { return lo + r.Intn(hi-lo+1) }

// Pick returns one of the given strings.
func (r *RNG) Pick(opts ...string) string { return opts[r.Intn(len(opts))] }

// DeriveSeed folds a sweep-level master seed, a workload class and a
// program index into one per-program generator seed (FNV-1a over the
// three fields), so every program of a sweep is independently
// reproducible from its own 32-bit seed alone.
func DeriveSeed(master uint64, class string, index int) uint32 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for i := 0; i < 8; i++ {
		step(byte(master >> (8 * i)))
	}
	for i := 0; i < len(class); i++ {
		step(class[i])
	}
	for i := 0; i < 4; i++ {
		step(byte(uint32(index) >> (8 * i)))
	}
	return uint32(h) ^ uint32(h>>32)
}
