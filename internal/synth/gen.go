package synth

import (
	"fmt"
	"strings"
)

// The class builders below share a small random-expression generator.
// Safety rules keep every emitted program well-defined under MC
// semantics on all targets: constant shift counts stay in 1..8 (int is
// 32-bit everywhere, shifts are masked to 5 bits anyway), divisors and
// modulus operands are forced odd-or-positive nonzero with `(e & M) |
// 1`, state[] indexing is always masked `& 63`, and every local is
// initialized at declaration (the verifier's def-before-use check
// rejects anything less).

// exprGen builds random int-typed expressions over a fixed set of
// in-scope variable names.
type exprGen struct {
	r    *RNG
	vars []string
}

func (g *exprGen) v() string { return g.vars[g.r.Intn(len(g.vars))] }

func (g *exprGen) atom() string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(512))
	case 1:
		return fmt.Sprintf("(-%d)", g.r.Intn(256))
	case 2:
		return fmt.Sprintf("state[(%s + %d) & 63]", g.v(), g.r.Intn(64))
	default:
		return g.v()
	}
}

func (g *exprGen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.r.Intn(12) {
	case 0:
		return "(" + a + " + " + b + ")"
	case 1:
		return "(" + a + " - " + b + ")"
	case 2:
		return "(" + a + " * " + b + ")"
	case 3:
		return "(" + a + " & " + b + ")"
	case 4:
		return "(" + a + " | " + b + ")"
	case 5:
		return "(" + a + " ^ " + b + ")"
	case 6:
		return fmt.Sprintf("(%s << %d)", a, g.r.Range(1, 4))
	case 7:
		return fmt.Sprintf("(%s >> %d)", a, g.r.Range(1, 8))
	case 8:
		return "(" + a + " / ((" + b + " & 255) | 1))"
	case 9:
		return "(" + a + " % ((" + b + " & 127) | 1))"
	case 10:
		return "(" + a + " < " + b + ")"
	default:
		return "mix(" + a + ", " + b + ")"
	}
}

// stmt emits one random statement. Assignments target only the first
// two names in vars (the builder guarantees those are assignable
// locals); reads may use any in-scope name.
func (g *exprGen) stmt(indent string) string {
	v := g.vars[g.r.Intn(2)]
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("%s%s = %s;\n", indent, v, g.expr(2))
	case 1:
		return fmt.Sprintf("%sif (%s < %s) %s += %s; else %s ^= %s;\n",
			indent, g.expr(1), g.expr(1), v, g.expr(1), v, g.expr(1))
	case 2:
		return fmt.Sprintf("%sstate[(%s + %d) & 63] = %s;\n", indent, v, g.r.Intn(64), g.expr(1))
	case 3:
		return fmt.Sprintf("%s%s += state[(%s ^ %d) & 63];\n", indent, v, g.v(), g.r.Intn(64))
	default:
		return fmt.Sprintf("%s%s = clampi(%s, -%d, %d);\n",
			indent, v, g.expr(2), 1000+g.r.Intn(100000), 1000+g.r.Intn(100000))
	}
}

// buildLoopy emits loop-dominated functions: counted loops over mixed
// integer work, with optional down-counting while loops — the shape
// where interlocks and fetch bandwidth, not calls, dominate.
func buildLoopy(r *RNG) *genProg {
	g := &genProg{prelude: prelude(false), iters: r.Range(3, 6), initAcc: r.Intn(100000)}
	n := r.Range(5, 10)
	for u := 0; u < n; u++ {
		var d strings.Builder
		eg := &exprGen{r: r, vars: []string{"a", "b", "i"}}
		fmt.Fprintf(&d, "int loop%d(int x, int y) {\n", u)
		fmt.Fprintf(&d, "\tint a = x + %d;\n\tint b = y ^ %d;\n\tint i;\n", r.Intn(512), r.Intn(512))
		fmt.Fprintf(&d, "\tfor (i = 0; i < %d; i++) {\n", r.Range(4, 16))
		for s := r.Range(2, 4); s > 0; s-- {
			d.WriteString(eg.stmt("\t\t"))
		}
		d.WriteString("\t}\n")
		if r.Intn(2) == 0 {
			fmt.Fprintf(&d, "\ti = %d;\n\twhile (i > 0) {\n\t\ta += mix(b, i);\n\t\ti = i - %d;\n\t}\n",
				r.Range(6, 24), r.Range(1, 3))
		}
		fmt.Fprintf(&d, "\tstate[(a + %d) & 63] = b;\n\treturn a ^ b;\n}\n\n", r.Intn(64))
		g.units = append(g.units, unit{
			decls: d.String(),
			call:  fmt.Sprintf("\t\tacc += loop%d(acc, it + %d);\n", u, r.Intn(128)),
		})
	}
	return g
}

// buildCallHeavy emits clusters of tiny leaf functions behind a hub
// that calls them in sequence — maximal call/return and argument
// traffic per useful instruction (the paper's procedure-call overhead
// axis).
func buildCallHeavy(r *RNG) *genProg {
	g := &genProg{prelude: prelude(false), iters: r.Range(3, 6), initAcc: r.Intn(100000)}
	n := r.Range(6, 10)
	for u := 0; u < n; u++ {
		var d strings.Builder
		leaves := r.Range(3, 6)
		for l := 0; l < leaves; l++ {
			eg := &exprGen{r: r, vars: []string{"x", "y"}}
			fmt.Fprintf(&d, "int leaf%d_%d(int x, int y) {\n\treturn %s;\n}\n\n", u, l, eg.expr(2))
		}
		fmt.Fprintf(&d, "int hub%d(int x, int y) {\n\tint s = x;\n", u)
		for l := 0; l < leaves; l++ {
			op := []string{"+=", "^=", "-="}[r.Intn(3)]
			fmt.Fprintf(&d, "\ts %s leaf%d_%d(s, y + %d);\n", op, u, l, r.Intn(256))
		}
		fmt.Fprintf(&d, "\tstate[(s + %d) & 63] = s ^ y;\n\treturn s;\n}\n\n", r.Intn(64))
		g.units = append(g.units, unit{
			decls: d.String(),
			call:  fmt.Sprintf("\t\tacc += hub%d(acc, it);\n", u),
		})
	}
	return g
}

// buildRecursive emits self-recursive functions — single recursion with
// a data-dependent branch between the recursive calls, and fib-shaped
// double recursion — all with an n-1/n-2 countdown that bounds depth by
// construction. Deep stack traffic stresses the spill/reload and
// call-sequence differences between the ISAs.
func buildRecursive(r *RNG) *genProg {
	g := &genProg{prelude: prelude(false), iters: r.Range(2, 4), initAcc: r.Intn(100000)}
	n := r.Range(4, 7)
	for u := 0; u < n; u++ {
		var d strings.Builder
		var depth int
		if r.Intn(3) == 0 {
			fmt.Fprintf(&d, "int rec%d(int n, int x) {\n\tif (n <= 1) return x + %d;\n\treturn rec%d(n - 1, x + %d) + rec%d(n - 2, x ^ %d);\n}\n\n",
				u, r.Intn(64), u, r.Intn(32), u, r.Intn(512))
			depth = r.Range(6, 12)
		} else {
			eg := &exprGen{r: r, vars: []string{"x", "n"}}
			fmt.Fprintf(&d, "int rec%d(int n, int x) {\n\tif (n <= 0) return x;\n\tx = %s;\n\tif ((x & 1) == 0) return rec%d(n - 1, x + %d);\n\treturn rec%d(n - 1, x ^ %d) + n;\n}\n\n",
				u, eg.expr(2), u, r.Intn(64), u, r.Intn(64))
			depth = r.Range(8, 20)
		}
		g.units = append(g.units, unit{
			decls: d.String(),
			call:  fmt.Sprintf("\t\tacc += rec%d(%d, acc & 8191);\n", u, depth),
		})
	}
	return g
}

// buildFP emits floating-point phases: double accumulators with float
// mixed in, loop bodies of multiply-adds over exact binary fractions
// (so magnitudes stay tame), folded back into the integer checksum via
// a bounded conversion.
func buildFP(r *RNG) *genProg {
	g := &genProg{prelude: prelude(true), iters: r.Range(3, 5), initAcc: r.Intn(100000), fp: true}
	n := r.Range(4, 8)
	for u := 0; u < n; u++ {
		var d strings.Builder
		c1 := r.Pick("0.5", "0.25", "1.0625", "0.375", "1.125")
		c2 := r.Pick("0.125", "0.0625", "0.75", "2.5")
		fmt.Fprintf(&d, "double fp%d(double x, int k) {\n", u)
		fmt.Fprintf(&d, "\tdouble s = x * %s + 1.0;\n\tfloat t = (float)k * %s;\n\tint i;\n", c1, c2)
		fmt.Fprintf(&d, "\tfor (i = 0; i < %d; i++) {\n\t\ts = s * %s + (double)(i + %d) * %s;\n\t\tt = t + (float)i * %s;\n\t}\n",
			r.Range(4, 12), c1, r.Intn(64), c2, c2)
		d.WriteString("\tif (s > 1000000.0) s = s * 0.00048828125;\n")
		d.WriteString("\tif (s < -1000000.0) s = s * 0.00048828125;\n")
		d.WriteString("\treturn s + (double)t;\n}\n\n")
		g.units = append(g.units, unit{
			decls: d.String(),
			call: fmt.Sprintf("\t\tfacc = facc * 0.5 + fp%d(facc, (acc & 255) + %d);\n\t\tacc ^= ((int)facc & 65535);\n",
				u, r.Intn(64)),
		})
	}
	return g
}

// buildArray emits per-unit global arrays walked with varied strides,
// reverse walks and pointer bumps — data-side bus and displacement
// traffic.
func buildArray(r *RNG) *genProg {
	g := &genProg{prelude: prelude(false), iters: r.Range(3, 5), initAcc: r.Intn(100000)}
	n := r.Range(4, 8)
	for u := 0; u < n; u++ {
		var d strings.Builder
		size := r.Range(48, 160)
		fmt.Fprintf(&d, "int arr%d[%d];\n", u, size)
		fmt.Fprintf(&d, "int awalk%d(int x) {\n\tint i;\n\tint s = 0;\n", u)
		fmt.Fprintf(&d, "\tfor (i = 0; i < %d; i++) arr%d[i] = arr%d[i] + ((x + i) ^ %d);\n",
			size, u, u, r.Intn(1024))
		fmt.Fprintf(&d, "\tfor (i = 0; i < %d; i += %d) s += arr%d[i];\n", size, r.Range(2, 5), u)
		if r.Intn(2) == 0 {
			fmt.Fprintf(&d, "\tfor (i = %d; i >= 0; i--) s ^= arr%d[i] >> %d;\n", size-1, u, r.Range(1, 4))
		}
		if r.Intn(2) == 0 {
			fmt.Fprintf(&d, "\tint *p = arr%d;\n\tfor (i = 0; i < %d; i++) { s += *p; p = p + 3; }\n",
				u, size/3)
		}
		fmt.Fprintf(&d, "\tstate[(s + %d) & 63] = x;\n\treturn s;\n}\n\n", r.Intn(64))
		g.units = append(g.units, unit{
			decls: d.String(),
			call:  fmt.Sprintf("\t\tacc ^= awalk%d(acc + it * %d);\n", u, r.Range(1, 9)),
		})
	}
	return g
}

// buildPhased emits a small randomized version of the latex/ipl shape
// (see EmitPhased): groups of leaf procedures iterated a few times,
// each group an independently removable unit.
func buildPhased(r *RNG) *genProg {
	g := &genProg{prelude: prelude(false), iters: r.Range(2, 4), initAcc: r.Intn(100000)}
	groups := r.Range(3, 6)
	per := r.Range(4, 9)
	fn := 0
	for gi := 0; gi < groups; gi++ {
		var d strings.Builder
		start := fn
		for j := 0; j < per; j++ {
			eg := &exprGen{r: r, vars: []string{"a", "x"}}
			fmt.Fprintf(&d, "int pfn%d(int x) {\n\tint a = state[%d] + x;\n", fn, r.Intn(64))
			d.WriteString(eg.stmt("\t"))
			d.WriteString(eg.stmt("\t"))
			fmt.Fprintf(&d, "\tstate[%d] = a;\n\treturn a & 0xFFFF;\n}\n\n", r.Intn(64))
			fn++
		}
		fmt.Fprintf(&d, "int pgroup%d(int x) {\n\tint s = x;\n\tint r;\n\tfor (r = 0; r < %d; r++) {\n", gi, r.Range(1, 2))
		for j := start; j < fn; j++ {
			fmt.Fprintf(&d, "\t\ts += pfn%d(s);\n", j)
		}
		d.WriteString("\t}\n\treturn s;\n}\n\n")
		g.units = append(g.units, unit{
			decls: d.String(),
			call:  fmt.Sprintf("\t\tacc += pgroup%d(acc + %d);\n", gi, gi),
		})
	}
	return g
}
