package synth

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/sim"
	"repro/internal/verify"
)

// CheckError describes why a generated program failed its gate, with
// enough identity (class, seed, stage, config) to reproduce it from the
// one-line repro the sweep driver prints.
type CheckError struct {
	Name   string // program name ("<class>-<seed:08x>")
	Stage  string // "compile", "verify", "run" or "differential"
	Config string // the configuration that failed (for differential: the mismatching side)
	Base   string // differential only: the reference configuration
	Detail string
}

func (e *CheckError) Error() string {
	if e.Stage == "differential" {
		return fmt.Sprintf("synth: %s: differential: %s output differs from %s: %s",
			e.Name, e.Config, e.Base, e.Detail)
	}
	return fmt.Sprintf("synth: %s: %s on %s: %s", e.Name, e.Stage, e.Config, e.Detail)
}

// Check enforces the corpus properties on one program: it must compile
// for every given configuration, every linked image must pass the
// machine-code verifier, every execution must complete within the
// instruction budget, and all configurations must print identical
// output (the differential miscompile check, with the first
// configuration as the reference). A nil return means the program is a
// valid corpus member on all targets.
func Check(p *Program, specs []*isa.Spec) error {
	if len(specs) == 0 {
		return fmt.Errorf("synth: check needs at least one target configuration")
	}
	var base string
	for i, spec := range specs {
		c, err := mcc.Compile(p.Name+".mc", p.Source, spec)
		if err != nil {
			return &CheckError{Name: p.Name, Stage: "compile", Config: spec.Name, Detail: err.Error()}
		}
		// mcc.Compile already gates on the verifier; re-assert the
		// property explicitly so the corpus guarantee doesn't silently
		// depend on that wiring.
		if rep := verify.Image(c.Image, spec); !rep.OK() {
			return &CheckError{Name: p.Name, Stage: "verify", Config: spec.Name, Detail: rep.Err().Error()}
		}
		m, err := sim.Acquire(c.Image)
		if err != nil {
			return &CheckError{Name: p.Name, Stage: "run", Config: spec.Name, Detail: err.Error()}
		}
		err = m.Run(p.MaxInstrs)
		out := m.Output.String()
		sim.Release(m)
		if err != nil {
			return &CheckError{Name: p.Name, Stage: "run", Config: spec.Name, Detail: err.Error()}
		}
		if i == 0 {
			base = out
			continue
		}
		if out != base {
			return &CheckError{Name: p.Name, Stage: "differential", Config: spec.Name,
				Base: specs[0].Name, Detail: fmt.Sprintf("%q vs %q", clip(out), clip(base))}
		}
	}
	return nil
}

func clip(s string) string {
	if len(s) > 160 {
		return s[:160] + "..."
	}
	return s
}

// Minimize shrinks a failing program while preserving its failure: it
// rebuilds the generator's unit structure from (Class, Seed), greedily
// disables units whose removal keeps Check failing, then halves the
// driver iteration count while the failure persists. If the program
// does not fail (or its class has no unit structure), the original is
// returned unchanged. The result is always a valid generator emission,
// so a minimized artifact still reproduces through the normal pipeline.
func Minimize(p *Program, specs []*isa.Spec) *Program {
	fails := func(src string) bool {
		q := *p
		q.Source = src
		return Check(&q, specs) != nil
	}
	src := minimizeSource(p.Class, p.Seed, fails)
	if src == "" {
		return p
	}
	q := *p
	q.Source = src
	return &q
}

// minimizeSource is the testable core of Minimize: it takes the failure
// predicate as a function so tests can minimize against synthetic
// oracles without needing a real miscompile.
func minimizeSource(class string, seed uint32, fails func(src string) bool) string {
	g := build(class, seed)
	if g == nil {
		return ""
	}
	enabled := g.allEnabled()
	if !fails(g.emit(enabled)) {
		return ""
	}
	for i := range enabled {
		enabled[i] = false
		if !fails(g.emit(enabled)) {
			enabled[i] = true
		}
	}
	for g.iters > 1 {
		prev := g.iters
		g.iters /= 2
		if !fails(g.emit(enabled)) {
			g.iters = prev
			break
		}
	}
	return g.emit(enabled)
}
