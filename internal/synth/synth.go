// Package synth is the verified synthetic-workload corpus: a seeded,
// property-based MC program generator whose output is safe by
// construction (every local initialized before use, shift counts
// bounded, divisors forced nonzero, array indexing masked or bounded,
// recursion depth capped) and whose programs are gated by three
// properties — they compile for every ISA target, the linked image
// passes the machine-code verifier, and all targets compute identical
// observable output (the differential miscompile check).
//
// The generator is deterministic: (class, seed) fully determines the
// emitted source, so any corpus member can be regenerated from the
// one-line repro the sweep driver prints on failure. Programs are built
// from independently removable "units" (a slice of function definitions
// plus the driver statement that invokes them), which is what makes
// Minimize possible: greedily disable units while the failure persists.
//
// docs/SWEEP.md documents the corpus classes and the guarantees.
package synth

import (
	"fmt"
	"strings"
)

// DefaultMaxInstrs bounds one generated program's execution: a runaway
// guard far above the tens-of-thousands of dynamic instructions a
// corpus member actually executes.
const DefaultMaxInstrs = 50_000_000

// Program is one generated corpus member.
type Program struct {
	Class     string // workload class (one of Classes)
	Seed      uint32 // generator seed: (Class, Seed) determine Source
	Name      string // "<class>-<seed:08x>"
	Source    string // MC source text
	MaxInstrs int64  // execution budget for the checks
}

// Classes returns the workload classes the generator emits, in
// canonical order. Each stresses a different axis of the density /
// path-length trade-off: loop-dominated straight code, call-graph
// churn, recursion (deep stack traffic), floating-point phases, array
// and pointer churn, and the phase-structured shape of the latex/ipl
// paper stand-ins.
func Classes() []string {
	return []string{"loopy", "callheavy", "recursive", "fp", "array", "phased"}
}

// Generate emits one program of the given class from the given seed.
// It fails only for an unknown class.
func Generate(class string, seed uint32) (*Program, error) {
	g := build(class, seed)
	if g == nil {
		return nil, fmt.Errorf("synth: unknown class %q (valid: %s)",
			class, strings.Join(Classes(), ", "))
	}
	return &Program{
		Class:     class,
		Seed:      seed,
		Name:      fmt.Sprintf("%s-%08x", class, seed),
		Source:    g.emit(g.allEnabled()),
		MaxInstrs: DefaultMaxInstrs,
	}, nil
}

// unit is one independently removable slice of a generated program: the
// function (and array) definitions it contributes, and the driver
// statement(s) that invoke them. Units are self-contained — a unit's
// driver line only calls its own functions and the always-present
// prelude — so any subset of units still compiles and runs, which is
// the property minimization relies on.
type unit struct {
	decls string
	call  string
}

// genProg is a generated program before rendering: prelude + units +
// driver shape. Minimize re-builds it from (class, seed) and re-emits
// with units disabled.
type genProg struct {
	prelude string
	units   []unit
	iters   int // driver outer-loop count
	initAcc int
	fp      bool // program accumulates a double checksum too
}

func (g *genProg) allEnabled() []bool {
	e := make([]bool, len(g.units))
	for i := range e {
		e[i] = true
	}
	return e
}

// emit renders the program with the given unit subset enabled. The
// driver initializes all global state, iterates the enabled unit calls,
// and prints integer (and for FP classes, double) checksums — the
// observable output the differential check compares across ISAs.
func (g *genProg) emit(enabled []bool) string {
	var b strings.Builder
	b.WriteString(g.prelude)
	for i, u := range g.units {
		if enabled[i] {
			b.WriteString(u.decls)
		}
	}
	b.WriteString("int main() {\n\tint i;\n\tfor (i = 0; i < 64; i++) state[i] = i * 37 + 11;\n")
	fmt.Fprintf(&b, "\tacc = %d;\n", g.initAcc)
	if g.fp {
		b.WriteString("\tfacc = 1.5;\n")
	}
	b.WriteString("\tint it;\n")
	fmt.Fprintf(&b, "\tfor (it = 0; it < %d; it++) {\n", g.iters)
	for i, u := range g.units {
		if enabled[i] {
			b.WriteString(u.call)
		}
	}
	b.WriteString("\t}\n")
	b.WriteString("\tprint_str(\"acc=\");\n\tprint_int(acc);\n")
	b.WriteString("\tint chk = 0;\n\tfor (i = 0; i < 64; i++) chk ^= state[i];\n")
	b.WriteString("\tprint_str(\" chk=\");\n\tprint_int(chk);\n")
	if g.fp {
		b.WriteString("\tprint_str(\" f=\");\n\tprint_double(facc);\n")
	}
	b.WriteString("\tprint_char('\\n');\n\treturn 0;\n}\n")
	return b.String()
}

// prelude is the always-present global state and utility routines every
// unit may call (a stand-in for a real program's hot runtime core).
func prelude(fp bool) string {
	var b strings.Builder
	b.WriteString("int state[64];\nint acc;\n")
	if fp {
		b.WriteString("double facc;\n")
	}
	b.WriteString(`
int mix(int x, int y) {
	x = x ^ (y << 3);
	x = x + (x << 5) + y;
	return x ^ (x >> 7);
}

int clampi(int x, int lo, int hi) {
	if (x < lo) return lo;
	if (x > hi) return hi;
	return x;
}

`)
	return b.String()
}

// build constructs the generator program for (class, seed); nil for an
// unknown class. The seed is whitened so seed 0 still produces a varied
// program.
func build(class string, seed uint32) *genProg {
	r := NewRNG(seed ^ 0x5bd1e995)
	switch class {
	case "loopy":
		return buildLoopy(r)
	case "callheavy":
		return buildCallHeavy(r)
	case "recursive":
		return buildRecursive(r)
	case "fp":
		return buildFP(r)
	case "array":
		return buildArray(r)
	case "phased":
		return buildPhased(r)
	}
	return nil
}
