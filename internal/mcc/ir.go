package mcc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// The intermediate representation: non-SSA three-address code over typed
// virtual registers, organized into basic blocks. The code generator
// legalizes IR operations against an isa.Spec, which is where the paper's
// instruction-set feature differences (immediate widths, displacement
// ranges, two-address form, register count) take effect.

// Ty is an IR value type. Pointers and chars are I32 (chars live
// sign-extended in registers).
type Ty uint8

const (
	TI32 Ty = iota
	TF32
	TF64
)

func (t Ty) String() string { return [...]string{"i32", "f32", "f64"}[t] }

// IsFloat reports whether the type lives in the FP register file.
func (t Ty) IsFloat() bool { return t != TI32 }

// VReg is a virtual register index; NoV means absent.
type VReg int32

// NoV is the absent-operand sentinel.
const NoV VReg = -1

// IOp enumerates IR operations.
type IOp uint8

const (
	IBad IOp = iota

	IConst // Dst = Imm (TI32) or FImm (float types)
	IMov   // Dst = A
	IAdd   // integer and pointer arithmetic
	ISub
	IMul // lowered to a runtime call unless strength-reduced
	IDiv // lowered to a runtime call
	IRem // lowered to a runtime call
	IAnd
	IOr
	IXor
	IShl
	IShr // logical
	ISra // arithmetic
	INeg
	INot
	ICmp // Dst = (A Cond B) as 0/1

	IFAdd // FP arithmetic, Ty selects precision
	IFSub
	IFMul
	IFDiv
	IFNeg
	IFCmp // Dst(i32) = (A Cond B), operands of Ty

	ICvt // Dst(Ty) = convert A (SrcTy)

	ILoad  // Dst = mem[addr]; Size 1/2/4/8; Signed for sub-word loads
	IStore // mem[addr] = A; Size

	IAddr // Dst = address described by the addressing fields

	ICall // Dst(opt) = Sym(Args...); Builtin for print_* traps
	IRet  // return A (optional)

	IBr     // goto Imm (block ID)
	ICondBr // if A != 0 goto Imm else goto Imm2
)

var iopNames = [...]string{
	IBad: "bad", IConst: "const", IMov: "mov", IAdd: "add", ISub: "sub",
	IMul: "mul", IDiv: "div", IRem: "rem", IAnd: "and", IOr: "or",
	IXor: "xor", IShl: "shl", IShr: "shr", ISra: "sra", INeg: "neg",
	INot: "not", ICmp: "cmp", IFAdd: "fadd", IFSub: "fsub", IFMul: "fmul",
	IFDiv: "fdiv", IFNeg: "fneg", IFCmp: "fcmp", ICvt: "cvt",
	ILoad: "load", IStore: "store", IAddr: "addr", ICall: "call",
	IRet: "ret", IBr: "br", ICondBr: "condbr",
}

func (op IOp) String() string { return iopNames[op] }

// AddrKind selects how a load/store/addr computes its effective address.
type AddrKind uint8

const (
	AKNone   AddrKind = iota
	AKReg             // [A + Off]
	AKGlobal          // [&Sym + Off]
	AKSlot            // [sp-frame slot Slot + Off]
)

// Ins is one IR instruction.
type Ins struct {
	Op    IOp
	Ty    Ty
	SrcTy Ty       // ICvt source type
	Cond  isa.Cond // ICmp / IFCmp

	Dst, A, B VReg

	Imm  int64   // IConst value; IBr/ICondBr: target block IDs (Imm/Imm2)
	Imm2 int64   // ICondBr else-target
	FImm float64 // IConst for float types

	// HasBImm replaces the B operand with the immediate BImm (created by
	// constant propagation; the code generator decides per target whether
	// the immediate fits an instruction field or must be materialized).
	HasBImm bool
	BImm    int64

	// Addressing (ILoad/IStore/IAddr).
	AK     AddrKind
	Sym    string // AKGlobal symbol, ICall callee
	Slot   int    // AKSlot index
	Off    int32
	Size   uint8 // ILoad/IStore access size in bytes
	Signed bool  // sub-word load sign extension

	Args    []VReg // ICall
	Builtin bool   // ICall to a print_* builtin (lowers to a trap)
}

// IsTerm reports whether the instruction ends a basic block.
func (in *Ins) IsTerm() bool { return in.Op == IBr || in.Op == ICondBr || in.Op == IRet }

// uses appends the instruction's register sources to dst. It is strictly
// op-aware: unset operand fields of a literal Ins are zero (vreg 0), so
// only fields the operation actually reads may be consulted.
func (in *Ins) uses(dst []VReg) []VReg {
	add := func(v VReg) {
		if v != NoV {
			dst = append(dst, v)
		}
	}
	switch in.Op {
	case IConst, IBr:
		// no register sources
	case ILoad, IAddr:
		if in.AK == AKReg {
			add(in.A)
		}
	case IStore:
		add(in.A)
		if in.AK == AKReg {
			add(in.B)
		}
	case ICall:
		add(in.A) // indirect call target (D16 lowering), NoV when direct
		for _, a := range in.Args {
			add(a)
		}
	case IMov, INeg, INot, IFNeg, ICvt, IRet, ICondBr:
		add(in.A)
	default:
		add(in.A)
		if !in.HasBImm {
			add(in.B)
		}
	}
	return dst
}

// def returns the register the instruction writes, or NoV.
func (in *Ins) def() VReg {
	switch in.Op {
	case IStore, IRet, IBr, ICondBr:
		return NoV
	}
	return in.Dst
}

// hasSideEffects reports whether the instruction must be kept even if its
// result is unused.
func (in *Ins) hasSideEffects() bool {
	switch in.Op {
	case IStore, ICall, IRet, IBr, ICondBr:
		return true
	case IDiv, IRem:
		return true // division by zero traps in spirit; keep it simple
	}
	return false
}

// Block is one basic block; the last instruction is the terminator.
type Block struct {
	ID  int
	Ins []Ins
}

// Term returns the block's terminator.
func (b *Block) Term() *Ins {
	if len(b.Ins) == 0 {
		return nil
	}
	t := &b.Ins[len(b.Ins)-1]
	if !t.IsTerm() {
		return nil
	}
	return t
}

// Succs returns the IDs of successor blocks.
func (b *Block) Succs() []int {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Op {
	case IBr:
		return []int{int(t.Imm)}
	case ICondBr:
		return []int{int(t.Imm), int(t.Imm2)}
	}
	return nil
}

// SlotInfo describes one stack-frame object.
type SlotInfo struct {
	Name  string
	Size  int
	Align int
}

// Loop records one source-level loop for invariant hoisting: Pre is the
// preheader block (the unique block that branches into the header from
// outside), and Blocks are the member block IDs.
type Loop struct {
	Pre    int
	Head   int
	Blocks map[int]bool
}

// IRFunc is one function in IR form.
type IRFunc struct {
	Name   string
	Blocks []*Block
	NReg   int
	RegTy  []Ty
	Slots  []SlotInfo
	Params []VReg // parameter vregs, in declaration order
	Ret    *Type
	// Loops lists source loops innermost-first (the order the IR
	// generator finishes them).
	Loops []Loop
	// NStackArgs is the number of parameters passed on the stack
	// (beyond the four register arguments).
	NStackArgs int
	// MaxOutArgs is the largest number of stack-passed outgoing arguments
	// at any call site in the body.
	MaxOutArgs int
	// HasCall reports whether the body contains a (non-builtin) call.
	HasCall bool
}

// NewVReg allocates a fresh virtual register of type t.
func (f *IRFunc) NewVReg(t Ty) VReg {
	f.RegTy = append(f.RegTy, t)
	f.NReg++
	return VReg(f.NReg - 1)
}

// NewBlock appends a fresh empty block.
func (f *IRFunc) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// String renders the function's IR (for tests and debugging).
func (f *IRFunc) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for i := range b.Ins {
			in := &b.Ins[i]
			fmt.Fprintf(&sb, "\t%s\n", in.debugString())
		}
	}
	return sb.String()
}

func (in *Ins) debugString() string {
	var sb strings.Builder
	if d := in.def(); d != NoV {
		fmt.Fprintf(&sb, "v%d = ", d)
	}
	sb.WriteString(in.Op.String())
	if in.Cond != isa.CondNone {
		sb.WriteByte('.')
		sb.WriteString(in.Cond.String())
	}
	fmt.Fprintf(&sb, ".%s", in.Ty)
	switch in.Op {
	case IConst:
		if in.Ty == TI32 {
			fmt.Fprintf(&sb, " %d", in.Imm)
		} else {
			fmt.Fprintf(&sb, " %g", in.FImm)
		}
	case IBr:
		fmt.Fprintf(&sb, " b%d", in.Imm)
	case ICondBr:
		fmt.Fprintf(&sb, " v%d ? b%d : b%d", in.A, in.Imm, in.Imm2)
	case ICall:
		fmt.Fprintf(&sb, " %s(", in.Sym)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "v%d", a)
		}
		sb.WriteString(")")
	case ILoad, IStore, IAddr:
		switch in.AK {
		case AKReg:
			base := in.A
			if in.Op == IStore {
				base = in.B
			}
			fmt.Fprintf(&sb, " [v%d+%d]", base, in.Off)
		case AKGlobal:
			fmt.Fprintf(&sb, " [&%s+%d]", in.Sym, in.Off)
		case AKSlot:
			fmt.Fprintf(&sb, " [slot%d+%d]", in.Slot, in.Off)
		}
		if in.Op == IStore {
			fmt.Fprintf(&sb, " <- v%d", in.A)
		}
		fmt.Fprintf(&sb, " sz%d", in.Size)
	default:
		if in.A != NoV {
			fmt.Fprintf(&sb, " v%d", in.A)
		}
		if in.HasBImm {
			fmt.Fprintf(&sb, ", #%d", in.BImm)
		} else if in.B != NoV {
			fmt.Fprintf(&sb, ", v%d", in.B)
		}
	}
	return sb.String()
}
