package mcc

// The AST. Every expression node carries the type that semantic analysis
// assigned (after array decay and usual arithmetic conversions are made
// explicit with Conv nodes, the IR generator can be purely mechanical).

// Expr is an expression node.
type Expr interface {
	Pos() Pos
	// Type returns the node's value type (set by sema).
	Type() *Type
}

type exprBase struct {
	P  Pos
	Ty *Type
}

func (e *exprBase) Pos() Pos     { return e.P }
func (e *exprBase) Type() *Type  { return e.Ty }
func (e *exprBase) setT(t *Type) { e.Ty = t }

// IntLit is an integer (or character) literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Val float64
}

// StrLit is a string literal; sema assigns it an anonymous global label.
type StrLit struct {
	exprBase
	Val   string
	Label string
}

// Ident is a variable reference, resolved by sema to a Sym.
type Ident struct {
	exprBase
	Name string
	Sym  *Sym
}

// Unary is -x ~x !x *x &x and the four inc/dec forms.
type Unary struct {
	exprBase
	Op   TokKind // TokMinus TokTilde TokBang TokStar TokAmp TokInc TokDec
	Post bool    // for TokInc/TokDec: postfix form
	X    Expr
}

// Binary is any two-operand operator, including && and || (short-circuit).
type Binary struct {
	exprBase
	Op   TokKind
	X, Y Expr
}

// Assign is LHS op= RHS. Op is TokAssign for plain assignment, otherwise
// the compound operator (TokPlusEq etc.).
type Assign struct {
	exprBase
	Op       TokKind
	LHS, RHS Expr
}

// Call is a function or builtin call.
type Call struct {
	exprBase
	Name string
	Args []Expr
	Sym  *Sym // callee (nil for builtins)
}

// Index is X[I].
type Index struct {
	exprBase
	X, I Expr
}

// Conv is an implicit or explicit conversion inserted by sema.
type Conv struct {
	exprBase
	X Expr
}

// --- statements -------------------------------------------------------------

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

type stmtBase struct{ P Pos }

func (s *stmtBase) stmtPos() Pos { return s.P }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt declares one local variable (with optional initializer).
type DeclStmt struct {
	stmtBase
	Sym  *Sym
	Init Expr
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond       Expr
	Then, Else Stmt
}

// WhileStmt is while (and do-while when Post is set).
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
	Post bool // do { } while (cond);
}

// ForStmt is the C for statement.
type ForStmt struct {
	stmtBase
	Init Stmt // nil or ExprStmt/DeclStmt
	Cond Expr // nil = true
	Step Expr // nil
	Body Stmt
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ stmtBase }

// BlockStmt is a braced statement list with its own scope.
type BlockStmt struct {
	stmtBase
	List []Stmt
}

// --- declarations -----------------------------------------------------------

// SymKind distinguishes symbol classes.
type SymKind uint8

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
)

// Sym is a named program entity.
type Sym struct {
	Name string
	Kind SymKind
	Ty   *Type
	Pos  Pos

	// SymFunc:
	Params  []*Sym
	Ret     *Type
	Defined bool

	// Back-end bookkeeping (set by irgen):
	VReg int // promoted scalar local/param: its virtual register (-1 otherwise)
	Slot int // stack-slot index for arrays/spilled locals (-1 otherwise)
}

// FuncDecl is one function definition.
type FuncDecl struct {
	Sym  *Sym
	Body *BlockStmt
}

// GlobalDecl is one global variable definition.
type GlobalDecl struct {
	Sym     *Sym
	Init    []Expr // scalar: 1 element; array: element list; nil = zero
	InitStr string // char-array string initializer ("" = none)
}

// Program is a fully parsed and checked translation unit.
type Program struct {
	Funcs   []*FuncDecl
	Globals []*GlobalDecl
	Strings []*StrLit // interned string literals, in emission order
}
