package mcc

import (
	"testing"

	"repro/internal/isa"
)

// IR-construction helpers for pass-level unit tests.

func irFunc() *IRFunc {
	return &IRFunc{Name: "t", Ret: TypeInt}
}

func constI(f *IRFunc, b *Block, v int64) VReg {
	d := f.NewVReg(TI32)
	b.Ins = append(b.Ins, Ins{Op: IConst, Ty: TI32, Dst: d, Imm: v})
	return d
}

func binI(f *IRFunc, b *Block, op IOp, a, bb VReg) VReg {
	d := f.NewVReg(TI32)
	b.Ins = append(b.Ins, Ins{Op: op, Ty: TI32, Dst: d, A: a, B: bb})
	return d
}

func retI(b *Block, v VReg) {
	b.Ins = append(b.Ins, Ins{Op: IRet, Ty: TI32, A: v})
}

func countOps(f *IRFunc, op IOp) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Ins {
			if b.Ins[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestConstantFolding(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	a := constI(f, b, 6)
	c := constI(f, b, 7)
	d := binI(f, b, IMul, a, c)
	retI(b, d)
	Optimize(f, isa.D16())
	// 6*7 folds to a constant 42 and the operand constants die.
	if countOps(f, IMul) != 0 && countOps(f, IShl) != 0 {
		t.Fatalf("multiply not folded:\n%s", f)
	}
	found := false
	for i := range f.Blocks[0].Ins {
		in := &f.Blocks[0].Ins[i]
		if in.Op == IConst && in.Imm == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no folded 42:\n%s", f)
	}
}

// TestImmediateFormationIsTargetAware is the heart of the paper's
// immediate-field experiment: the same IR forms an immediate on DLXe but
// keeps a materialized (hoistable) constant on D16.
func TestImmediateFormationIsTargetAware(t *testing.T) {
	build := func() *IRFunc {
		f := irFunc()
		b := f.NewBlock()
		p := f.NewVReg(TI32)
		f.Params = append(f.Params, p)
		c := constI(f, b, 400) // fits DLXe's 16-bit field, not D16's 5-bit
		d := binI(f, b, IAdd, p, c)
		retI(b, d)
		return f
	}

	dlxe := build()
	Optimize(dlxe, isa.DLXe())
	if n := countOps(dlxe, IConst); n != 0 {
		t.Errorf("DLXe: constant not absorbed into an immediate:\n%s", dlxe)
	}

	d16 := build()
	Optimize(d16, isa.D16())
	if n := countOps(d16, IConst); n != 1 {
		t.Errorf("D16: constant should stay materialized (got %d IConst):\n%s", n, d16)
	}

	// A 5-bit-friendly constant forms an immediate on both.
	small := build()
	small.Blocks[0].Ins[0].Imm = 7
	Optimize(small, isa.D16())
	if n := countOps(small, IConst); n != 0 {
		t.Errorf("D16: small constant should fold into addi:\n%s", small)
	}
}

func TestStrengthReduction(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	p := f.NewVReg(TI32)
	f.Params = append(f.Params, p)
	c := constI(f, b, 8)
	d := binI(f, b, IMul, p, c)
	retI(b, d)
	Optimize(f, isa.D16())
	if countOps(f, IMul) != 0 {
		t.Fatalf("multiply by 8 not reduced:\n%s", f)
	}
	if countOps(f, IShl) != 1 {
		t.Fatalf("expected a shift:\n%s", f)
	}
}

func TestLocalCSE(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	p := f.NewVReg(TI32)
	q := f.NewVReg(TI32)
	f.Params = append(f.Params, p, q)
	x1 := binI(f, b, IAdd, p, q)
	x2 := binI(f, b, IAdd, p, q) // duplicate
	s := binI(f, b, IAdd, x1, x2)
	retI(b, s)
	Optimize(f, isa.D16())
	// One add of p+q remains; the second becomes a copy (then the sum
	// uses the same value twice).
	adds := 0
	for i := range f.Blocks[0].Ins {
		in := &f.Blocks[0].Ins[i]
		if in.Op == IAdd && in.A == p {
			adds++
		}
	}
	if adds != 1 {
		t.Fatalf("CSE left %d copies of p+q:\n%s", adds, f)
	}
}

func TestCSEInvalidatedByRedefinition(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	p := f.NewVReg(TI32)
	q := f.NewVReg(TI32)
	f.Params = append(f.Params, p, q)
	x1 := binI(f, b, IAdd, p, q)
	// Redefine p, then recompute p+q: NOT a common subexpression.
	b.Ins = append(b.Ins, Ins{Op: IMov, Ty: TI32, Dst: p, A: x1})
	x2 := binI(f, b, IAdd, p, q)
	s := binI(f, b, IAdd, x1, x2)
	retI(b, s)
	before := countOps(f, IAdd)
	for _, blk := range f.Blocks {
		localCSE(f, blk)
	}
	if countOps(f, IAdd) != before {
		t.Fatalf("CSE merged across a redefinition:\n%s", f)
	}
}

func TestCSELoadsInvalidatedByStore(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	p := f.NewVReg(TI32)
	f.Params = append(f.Params, p)
	l1 := f.NewVReg(TI32)
	b.Ins = append(b.Ins, Ins{Op: ILoad, Ty: TI32, Dst: l1, AK: AKReg, A: p, Size: 4})
	b.Ins = append(b.Ins, Ins{Op: IStore, Ty: TI32, A: l1, B: p, AK: AKReg, Size: 4})
	l2 := f.NewVReg(TI32)
	b.Ins = append(b.Ins, Ins{Op: ILoad, Ty: TI32, Dst: l2, AK: AKReg, A: p, Size: 4})
	s := binI(f, b, IAdd, l1, l2)
	retI(b, s)
	for _, blk := range f.Blocks {
		localCSE(f, blk)
	}
	if countOps(f, ILoad) != 2 {
		t.Fatalf("load CSE ignored an intervening store:\n%s", f)
	}

	// Without the store, the second load folds away.
	f2 := irFunc()
	b2 := f2.NewBlock()
	p2 := f2.NewVReg(TI32)
	f2.Params = append(f2.Params, p2)
	m1 := f2.NewVReg(TI32)
	m2 := f2.NewVReg(TI32)
	b2.Ins = append(b2.Ins, Ins{Op: ILoad, Ty: TI32, Dst: m1, AK: AKReg, A: p2, Size: 4})
	b2.Ins = append(b2.Ins, Ins{Op: ILoad, Ty: TI32, Dst: m2, AK: AKReg, A: p2, Size: 4})
	s2 := binI(f2, b2, IAdd, m1, m2)
	retI(b2, s2)
	for _, blk := range f2.Blocks {
		localCSE(f2, blk)
	}
	if countOps(f2, ILoad) != 1 {
		t.Fatalf("duplicate load not merged:\n%s", f2)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	p := f.NewVReg(TI32)
	f.Params = append(f.Params, p)
	binI(f, b, IAdd, p, p) // dead
	live := binI(f, b, ISub, p, p)
	retI(b, live)
	deadCode(f)
	if countOps(f, IAdd) != 0 {
		t.Fatalf("dead add survived:\n%s", f)
	}
	if countOps(f, ISub) != 1 {
		t.Fatalf("live sub removed:\n%s", f)
	}
}

func TestBranchFoldingAndPruning(t *testing.T) {
	f := irFunc()
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	c := constI(f, b0, 1)
	b0.Ins = append(b0.Ins, Ins{Op: ICondBr, A: c, Imm: int64(b1.ID), Imm2: int64(b2.ID)})
	one := constI(f, b1, 10)
	retI(b1, one)
	two := constI(f, b2, 20)
	retI(b2, two)
	Optimize(f, isa.D16())
	// The condition is constant-true: b2 is unreachable and pruned.
	for _, blk := range f.Blocks {
		if blk.ID == b2.ID {
			t.Fatalf("unreachable block survived:\n%s", f)
		}
	}
	if countOps(f, ICondBr) != 0 {
		t.Fatalf("constant branch not folded:\n%s", f)
	}
}

func TestHoistMovesExpensiveConstantsOnly(t *testing.T) {
	build := func() (*IRFunc, *Block, *Block) {
		f := irFunc()
		pre := f.NewBlock()
		head := f.NewBlock()
		body := f.NewBlock()
		exit := f.NewBlock()
		p := f.NewVReg(TI32)
		f.Params = append(f.Params, p)
		pre.Ins = append(pre.Ins, Ins{Op: IBr, Imm: int64(head.ID)})
		cond := f.NewVReg(TI32)
		head.Ins = append(head.Ins, Ins{Op: ICmp, Ty: TI32, Cond: isa.LT, Dst: cond, A: p, B: p})
		head.Ins = append(head.Ins, Ins{Op: ICondBr, A: cond, Imm: int64(body.ID), Imm2: int64(exit.ID)})
		big := f.NewVReg(TI32)
		body.Ins = append(body.Ins, Ins{Op: IConst, Ty: TI32, Dst: big, Imm: 100000})
		small := f.NewVReg(TI32)
		body.Ins = append(body.Ins, Ins{Op: IConst, Ty: TI32, Dst: small, Imm: 3})
		sum := f.NewVReg(TI32)
		body.Ins = append(body.Ins, Ins{Op: IAdd, Ty: TI32, Dst: sum, A: big, B: small})
		body.Ins = append(body.Ins, Ins{Op: IStore, Ty: TI32, A: sum, AK: AKSlot, Slot: 0, Size: 4})
		body.Ins = append(body.Ins, Ins{Op: IBr, Imm: int64(head.ID)})
		retI(exit, p)
		f.Slots = []SlotInfo{{Name: "x", Size: 4, Align: 4}}
		f.Loops = []Loop{{Pre: pre.ID, Head: head.ID,
			Blocks: map[int]bool{head.ID: true, body.ID: true}}}
		return f, pre, body
	}

	f, pre, body := build()
	Hoist(f, isa.D16(), map[string]int32{})
	// The 100000 constant (pool load on D16) moves to the preheader; the
	// small one stays put.
	preConsts, bodyConsts := 0, 0
	for i := range pre.Ins {
		if pre.Ins[i].Op == IConst {
			preConsts++
		}
	}
	for i := range body.Ins {
		if body.Ins[i].Op == IConst {
			bodyConsts++
		}
	}
	if preConsts != 1 || bodyConsts != 1 {
		t.Fatalf("hoist moved %d/%d constants (want 1 hoisted, 1 left):\n%s",
			preConsts, bodyConsts, f)
	}

	// On DLXe, 100000 needs mvhi+ori (2 instructions): also hoisted.
	f2, pre2, _ := build()
	Hoist(f2, isa.DLXe(), map[string]int32{})
	pc := 0
	for i := range pre2.Ins {
		if pre2.Ins[i].Op == IConst {
			pc++
		}
	}
	if pc != 1 {
		t.Fatalf("DLXe hoist moved %d constants, want 1", pc)
	}
}

func TestLowerCallsCreatesRuntimeCalls(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	p := f.NewVReg(TI32)
	q := f.NewVReg(TI32)
	f.Params = append(f.Params, p, q)
	d := binI(f, b, IDiv, p, q)
	r := binI(f, b, IRem, d, q)
	m := binI(f, b, IMul, r, q)
	retI(b, m)
	LowerCalls(f)
	if countOps(f, IDiv)+countOps(f, IRem)+countOps(f, IMul) != 0 {
		t.Fatalf("arith not lowered:\n%s", f)
	}
	if countOps(f, ICall) != 3 {
		t.Fatalf("expected 3 runtime calls:\n%s", f)
	}
	if !f.HasCall {
		t.Error("HasCall not set")
	}
}

func TestLowerCallTargetsOnlyOnD16(t *testing.T) {
	build := func() *IRFunc {
		f := irFunc()
		b := f.NewBlock()
		d := f.NewVReg(TI32)
		b.Ins = append(b.Ins, Ins{Op: ICall, Ty: TI32, Dst: d, A: NoV, Sym: "g"})
		retI(b, d)
		return f
	}
	d16 := build()
	LowerCallTargets(d16, isa.D16())
	if countOps(d16, IAddr) != 1 {
		t.Fatalf("D16 call target not materialized:\n%s", d16)
	}
	dlxe := build()
	LowerCallTargets(dlxe, isa.DLXe())
	if countOps(dlxe, IAddr) != 0 {
		t.Fatalf("DLXe should keep direct calls:\n%s", dlxe)
	}
}
