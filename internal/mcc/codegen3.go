package mcc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// genBlock lowers one basic block; bi is the block's position in layout
// order (for fall-through decisions).
func (cg *codegen) genBlock(b *Block, bi int) {
	nextID := -1
	if bi+1 < len(cg.f.Blocks) {
		nextID = cg.f.Blocks[bi+1].ID
	}
	for i := 0; i < len(b.Ins); i++ {
		in := &b.Ins[i]

		// Compare/branch fusion: a compare whose sole consumer is the
		// immediately-following conditional branch never materializes its
		// boolean.
		if (in.Op == ICmp || in.Op == IFCmp) && i+1 < len(b.Ins) {
			nxt := &b.Ins[i+1]
			if nxt.Op == ICondBr && nxt.A == in.Dst && cg.useCount[in.Dst] == 1 {
				cg.genCondBr(in, nxt, nextID)
				i++
				continue
			}
		}
		cg.genIns(in, nextID)
	}
}

func (cg *codegen) genIns(in *Ins, nextID int) {
	switch in.Op {
	case IConst:
		if in.Ty == TI32 {
			rd, commit := cg.dstReg(in.Dst, 0)
			cg.loadConstInto(rd, int32(in.Imm))
			commit()
			return
		}
		cg.genFPConst(in)

	case IMov:
		if cg.f.RegTy[in.Dst].IsFloat() {
			src := cg.srcReg(in.A, 1)
			rd, commit := cg.dstReg(in.Dst, 0)
			cg.moveFP(rd, src)
			commit()
		} else {
			src := cg.srcReg(in.A, 1)
			rd, commit := cg.dstReg(in.Dst, 0)
			cg.moveInt(rd, src)
			commit()
		}

	case IAdd, ISub, IAnd, IOr, IXor, IShl, IShr, ISra:
		cg.genIntOp(in)

	case INeg:
		a := cg.srcReg(in.A, 0)
		rd, commit := cg.dstReg(in.Dst, 0)
		if cg.spec.Enc == isa.EncD16 {
			cg.moveInt(rd, a)
			cg.emit(fmt.Sprintf("neg %s", rd), rr(rd), rr(rd))
		} else {
			cg.emit(fmt.Sprintf("sub %s, r0, %s", rd, a), rr(rd), rr(isa.R(0), a))
		}
		commit()

	case INot:
		a := cg.srcReg(in.A, 0)
		rd, commit := cg.dstReg(in.Dst, 0)
		if cg.spec.Enc == isa.EncD16 {
			cg.moveInt(rd, a)
			cg.emit(fmt.Sprintf("inv %s", rd), rr(rd), rr(rd))
		} else {
			// ~a == -a - 1 (avoids needing a -1 materialization).
			cg.emit(fmt.Sprintf("sub %s, r0, %s", rd, a), rr(rd), rr(isa.R(0), a))
			cg.emit(fmt.Sprintf("subi %s, %s, 1", rd, rd), rr(rd), rr(rd))
		}
		commit()

	case ICmp:
		rd, commit := cg.dstReg(in.Dst, 0)
		cg.emitIntCmp(in, rd)
		commit()

	case IFCmp:
		rd, commit := cg.dstReg(in.Dst, 0)
		cg.emitFloatCmp(in, rd)
		commit()

	case IFAdd, IFSub, IFMul, IFDiv:
		cg.genFPOp(in)

	case IFNeg:
		a := cg.srcReg(in.A, 0)
		rd, commit := cg.dstReg(in.Dst, 0)
		suf := fpSuffix(in.Ty)
		if cg.spec.ThreeAddress {
			cg.emit(fmt.Sprintf("neg.%s %s, %s", suf, rd, a), rr(rd), rr(a))
		} else {
			cg.moveFP(rd, a)
			cg.emit(fmt.Sprintf("neg.%s %s, %s", suf, rd, rd), rr(rd), rr(rd))
		}
		commit()

	case ICvt:
		cg.genCvt(in)

	case ILoad:
		cg.genLoad(in)

	case IStore:
		cg.genStore(in)

	case IAddr:
		if _, ok := cg.fusedCall[in.Dst]; ok {
			return // materialization fused into the call site
		}
		rd, commit := cg.dstReg(in.Dst, 0)
		cg.genAddrInto(rd, in)
		commit()

	case ICall:
		cg.genCallIns(in)

	case IRet:
		if in.A != NoV {
			if cg.f.RegTy[in.A].IsFloat() {
				src := cg.srcReg(in.A, 0)
				cg.moveFP(isa.FRetReg, src)
			} else {
				src := cg.srcReg(in.A, 0)
				cg.moveInt(isa.RetReg, src)
			}
		}
		cg.emitCtl("br "+cg.retLabel, nil, nil)

	case IBr:
		if int(in.Imm) != nextID {
			cg.emitCtl("br "+cg.blockLabel(int(in.Imm)), nil, nil)
		}

	case ICondBr:
		cg.genCondBr(nil, in, nextID)

	default:
		cg.fail("unlowered IR op %s", in.Op)
	}
}

func fpSuffix(t Ty) string {
	if t == TF64 {
		return "df"
	}
	return "sf"
}

// --- integer ALU ----------------------------------------------------------------

type opInfo struct {
	reg  string
	imm  string
	comm bool
	kind immKind
}

type immKind uint8

const (
	immALU immKind = iota // addi/subi range (spec.ALUImmBits)
	immShift
	immLogical // andi/ori/xori (16-bit, DLXe only)
)

var intOps = map[IOp]opInfo{
	IAdd: {"add", "addi", true, immALU},
	ISub: {"sub", "subi", false, immALU},
	IAnd: {"and", "andi", true, immLogical},
	IOr:  {"or", "ori", true, immLogical},
	IXor: {"xor", "xori", true, immLogical},
	IShl: {"shl", "shli", false, immShift},
	IShr: {"shr", "shri", false, immShift},
	ISra: {"shra", "shrai", false, immShift},
}

func (cg *codegen) immFits(kind immKind, v int64) bool {
	switch kind {
	case immALU:
		return v >= 0 && cg.spec.FitsALUImm(int32(v))
	case immShift:
		return v >= 0 && v <= 31
	case immLogical:
		return cg.spec.HasLogicalImm && v >= 0 && v <= 0xFFFF
	}
	return false
}

func (cg *codegen) genIntOp(in *Ins) {
	info := intOps[in.Op]
	a := cg.srcReg(in.A, 0)
	rd, commit := cg.dstReg(in.Dst, 0)
	defer commit()

	if in.HasBImm {
		v := in.BImm
		op, imm := info.imm, v
		// add with a negative immediate becomes subtract (and vice versa).
		if in.Op == IAdd && v < 0 && cg.immFits(immALU, -v) {
			op, imm = "subi", -v
		} else if in.Op == ISub && v < 0 && cg.immFits(immALU, -v) {
			op, imm = "addi", -v
		} else if !cg.immFits(info.kind, v) {
			// Immediate does not fit this target: materialize.
			s := cg.scratchI[1]
			cg.loadConstInto(s, int32(v))
			cg.emitIntRR(info, rd, a, s)
			return
		} else if in.Op == ISub && cg.immFits(immALU, v) {
			op, imm = "subi", v
		}
		if cg.spec.ThreeAddress || rd == a {
			cg.emit(fmt.Sprintf("%s %s, %s, %d", op, rd, a, imm), rr(rd), rr(a))
		} else {
			cg.moveInt(rd, a)
			cg.emit(fmt.Sprintf("%s %s, %s, %d", op, rd, rd, imm), rr(rd), rr(rd))
		}
		return
	}
	b := cg.srcReg(in.B, 1)
	cg.emitIntRR(info, rd, a, b)
}

// emitIntRR emits a register-register ALU op with two-address
// legalization.
func (cg *codegen) emitIntRR(info opInfo, rd, a, b isa.Reg) {
	if cg.spec.ThreeAddress {
		cg.emit(fmt.Sprintf("%s %s, %s, %s", info.reg, rd, a, b), rr(rd), rr(a, b))
		return
	}
	switch {
	case rd == a:
		cg.emit(fmt.Sprintf("%s %s, %s, %s", info.reg, rd, rd, b), rr(rd), rr(rd, b))
	case rd == b && info.comm:
		cg.emit(fmt.Sprintf("%s %s, %s, %s", info.reg, rd, rd, a), rr(rd), rr(rd, a))
	case rd == b:
		// Non-commutative with rd == b: preserve b in a scratch register
		// distinct from a and rd (a occupies at most one scratch; rd == b
		// is never a scratch, since spilled destinations use scratch 0
		// and spilled B operands load into scratch 1).
		s := cg.scratchI[0]
		if s == a || s == rd {
			s = cg.scratchI[1]
		}
		if s == a || s == rd {
			cg.fail("no scratch for two-address operand shuffle")
		}
		cg.moveInt(s, b)
		cg.moveInt(rd, a)
		cg.emit(fmt.Sprintf("%s %s, %s, %s", info.reg, rd, rd, s), rr(rd), rr(rd, s))
	default:
		cg.moveInt(rd, a)
		cg.emit(fmt.Sprintf("%s %s, %s, %s", info.reg, rd, rd, b), rr(rd), rr(rd, b))
	}
}

// --- compares ---------------------------------------------------------------------

// emitIntCmp emits an integer compare whose boolean lands in rd.
func (cg *codegen) emitIntCmp(in *Ins, rd isa.Reg) {
	cond := in.Cond
	a := cg.srcReg(in.A, 0)

	if cg.spec.R0IsCC {
		// D16: destination is architecturally r0; gt-forms swap operands.
		// Immediate operands exist only on the D16+ variant (8-bit
		// compare-equal).
		if in.HasBImm && cg.spec.CmpImm8 && cond == isa.EQ &&
			in.BImm >= 0 && in.BImm <= 255 {
			cg.emit(fmt.Sprintf("cmp.eq r0, %s, %d", a, in.BImm),
				rr(isa.RegCC), rr(a))
			if rd != isa.RegCC {
				cg.moveInt(rd, isa.RegCC)
			}
			return
		}
		var b isa.Reg
		if in.HasBImm {
			b = cg.scratchI[1]
			cg.loadConstInto(b, int32(in.BImm))
		} else {
			b = cg.srcReg(in.B, 1)
		}
		if !cond.D16Legal() {
			cond = cond.Swapped()
			a, b = b, a
		}
		cg.emit(fmt.Sprintf("cmp.%s r0, %s, %s", cond, a, b),
			rr(isa.RegCC), rr(a, b))
		if rd != isa.RegCC {
			cg.moveInt(rd, isa.RegCC)
		}
		return
	}

	if in.HasBImm {
		if cg.spec.HasCmpImm && in.BImm >= -32768 && in.BImm <= 32767 {
			cg.emit(fmt.Sprintf("cmp.%s %s, %s, %d", cond, rd, a, in.BImm),
				rr(rd), rr(a))
			return
		}
		b := cg.scratchI[1]
		cg.loadConstInto(b, int32(in.BImm))
		cg.emit(fmt.Sprintf("cmp.%s %s, %s, %s", cond, rd, a, b), rr(rd), rr(a, b))
		return
	}
	b := cg.srcReg(in.B, 1)
	if !cg.spec.HasGTConds && !cond.D16Legal() {
		cond = cond.Swapped()
		a, b = b, a
	}
	cg.emit(fmt.Sprintf("cmp.%s %s, %s, %s", cond, rd, a, b), rr(rd), rr(a, b))
}

// emitFloatCmp emits an FP compare whose boolean lands in rd. It returns
// true when the produced value is INVERTED (only happens for D16's
// missing ne condition when materializing a value; fused callers flip the
// branch instead).
func (cg *codegen) emitFloatCmp(in *Ins, rd isa.Reg) {
	inverted := cg.emitFCmpStatus(in)
	cg.emit(fmt.Sprintf("rdsr %s", rd), rr(rd), nil)
	if inverted {
		// rd = 1 - rd (values are 0/1).
		cg.emit(fmt.Sprintf("subi %s, %s, 1", rd, rd), rr(rd), rr(rd))
		if cg.spec.Enc == isa.EncD16 {
			cg.emit(fmt.Sprintf("neg %s", rd), rr(rd), rr(rd))
		} else {
			cg.emit(fmt.Sprintf("sub %s, r0, %s", rd, rd), rr(rd), rr(isa.R(0), rd))
		}
	}
}

// emitFCmpStatus emits the fcmp instruction (writing the FP status
// register) and reports whether the status is the INVERSE of the wanted
// condition.
func (cg *codegen) emitFCmpStatus(in *Ins) bool {
	cond := in.Cond
	a := cg.srcReg(in.A, 0)
	b := cg.srcReg(in.B, 1)
	inverted := false
	switch cond {
	case isa.GT, isa.GE:
		cond = cond.Swapped()
		a, b = b, a
	}
	if cg.spec.Enc == isa.EncD16 && cond == isa.NE {
		cond = isa.EQ
		inverted = true
	}
	suf := fpSuffix(in.Ty)
	cg.emit(fmt.Sprintf("cmp.%s.%s %s, %s", suf, cond, a, b), nil, rr(a, b))
	return inverted
}

// --- conditional branches ------------------------------------------------------------

// genCondBr emits a conditional branch, optionally fused with the compare
// that produces its condition.
func (cg *codegen) genCondBr(cmp *Ins, br *Ins, nextID int) {
	thenID, elseID := int(br.Imm), int(br.Imm2)

	// Compute the condition register and whether its sense is inverted.
	var cond isa.Reg
	inverted := false
	switch {
	case cmp == nil:
		v := cg.srcReg(br.A, 0)
		if cg.spec.R0IsCC {
			cg.moveInt(isa.RegCC, v)
			cond = isa.RegCC
		} else {
			cond = v
		}
	case cmp.Op == ICmp:
		cond = cg.cmpTargetReg(cmp)
		cg.emitIntCmp(cmp, cond)
	default: // IFCmp
		inverted = cg.emitFCmpStatus(cmp)
		cond = cg.cmpTargetReg(cmp)
		cg.emit(fmt.Sprintf("rdsr %s", cond), rr(cond), nil)
	}

	brOn := func(takenIfNonzero bool, target string) {
		op := "bz"
		if takenIfNonzero != inverted {
			op = "bnz"
		}
		cg.emitCtl(fmt.Sprintf("%s %s, %s", op, cond, target), nil, rr(cond))
	}

	switch {
	case elseID == nextID:
		brOn(true, cg.blockLabel(thenID))
	case thenID == nextID:
		brOn(false, cg.blockLabel(elseID))
	default:
		brOn(true, cg.blockLabel(thenID))
		cg.emitCtl("br "+cg.blockLabel(elseID), nil, nil)
	}
}

// cmpTargetReg picks the register a fused compare's boolean lives in:
// architecturally r0 on D16, the (dead) allocated register or a scratch
// on DLXe.
func (cg *codegen) cmpTargetReg(cmp *Ins) isa.Reg {
	if cg.spec.R0IsCC {
		return isa.RegCC
	}
	if r := cg.alloc.Reg[cmp.Dst]; r != isa.NoReg {
		return r
	}
	return cg.scratchI[1]
}

// --- FP arithmetic -----------------------------------------------------------------

func (cg *codegen) genFPOp(in *Ins) {
	names := map[IOp]string{IFAdd: "add", IFSub: "sub", IFMul: "mul", IFDiv: "div"}
	comm := in.Op == IFAdd || in.Op == IFMul
	suf := fpSuffix(in.Ty)
	a := cg.srcReg(in.A, 0)
	b := cg.srcReg(in.B, 1)
	rd, commit := cg.dstReg(in.Dst, 0)
	defer commit()
	op := names[in.Op]

	if cg.spec.ThreeAddress {
		cg.emit(fmt.Sprintf("%s.%s %s, %s, %s", op, suf, rd, a, b), rr(rd), rr(a, b))
		return
	}
	switch {
	case rd == a:
		cg.emit(fmt.Sprintf("%s.%s %s, %s, %s", op, suf, rd, rd, b), rr(rd), rr(rd, b))
	case rd == b && comm:
		cg.emit(fmt.Sprintf("%s.%s %s, %s, %s", op, suf, rd, rd, a), rr(rd), rr(rd, a))
	case rd == b:
		s := cg.scratchF[0]
		if s == a || s == rd {
			s = cg.scratchF[1]
		}
		if s == a || s == rd {
			cg.fail("no FP scratch for two-address operand shuffle")
		}
		cg.moveFP(s, b)
		cg.moveFP(rd, a)
		cg.emit(fmt.Sprintf("%s.%s %s, %s, %s", op, suf, rd, rd, s), rr(rd), rr(rd, s))
	default:
		cg.moveFP(rd, a)
		cg.emit(fmt.Sprintf("%s.%s %s, %s, %s", op, suf, rd, rd, b), rr(rd), rr(rd, b))
	}
}

func (cg *codegen) genCvt(in *Ins) {
	var name string
	switch {
	case in.SrcTy == TI32 && in.Ty == TF32:
		name = "si2sf"
	case in.SrcTy == TI32 && in.Ty == TF64:
		name = "si2df"
	case in.SrcTy == TF32 && in.Ty == TF64:
		name = "sf2df"
	case in.SrcTy == TF64 && in.Ty == TF32:
		name = "df2sf"
	case in.SrcTy == TF64 && in.Ty == TI32:
		name = "df2si"
	case in.SrcTy == TF32 && in.Ty == TI32:
		name = "sf2si"
	default:
		// Same-type conversion degenerates to a move.
		cg.genIns(&Ins{Op: IMov, Ty: in.Ty, Dst: in.Dst, A: in.A}, -1)
		return
	}
	a := cg.srcReg(in.A, 0)
	rd, commit := cg.dstReg(in.Dst, 0)
	cg.emit(fmt.Sprintf("%s %s, %s", name, rd, a), rr(rd), rr(a))
	commit()
}

// --- memory ------------------------------------------------------------------------

// resolveAddr returns the base register and displacement for a load or
// store (loading a spilled base into scratch 1).
func (cg *codegen) resolveAddr(in *Ins, baseIsB bool) (isa.Reg, int32) {
	switch in.AK {
	case AKSlot:
		return isa.RegSP, cg.slotOff[in.Slot] + in.Off
	case AKGlobal:
		off, ok := cg.data.offsets[in.Sym]
		if !ok {
			cg.fail("unknown global %q", in.Sym)
			return isa.RegGP, 0
		}
		return isa.RegGP, off + in.Off
	default:
		v := in.A
		if baseIsB {
			v = in.B
		}
		return cg.srcReg(v, 1), in.Off
	}
}

func (cg *codegen) genLoad(in *Ins) {
	base, off := cg.resolveAddr(in, false)
	rd, commit := cg.dstReg(in.Dst, 0)
	defer commit()
	switch {
	case in.Ty == TF64:
		cg.loadFPFrom(rd, base, off, true, cg.scratchI[0])
	case in.Ty == TF32:
		cg.loadFPFrom(rd, base, off, false, cg.scratchI[0])
	case in.Size == 4:
		cg.loadWordInto(rd, base, off)
	default:
		cg.loadSubword(rd, base, off, in.Size, in.Signed)
	}
}

func (cg *codegen) loadSubword(rd, base isa.Reg, off int32, size uint8, signed bool) {
	var name string
	switch {
	case size == 1 && signed:
		name = "ldb"
	case size == 1:
		name = "ldbu"
	case size == 2 && signed:
		name = "ldh"
	default:
		name = "ldhu"
	}
	if cg.spec.SubwordDisp && off >= -32768 && off <= 32767 {
		cg.emitMem(fmt.Sprintf("%s %s, %d(%s)", name, rd, off, base), rr(rd), rr(base))
		return
	}
	if off == 0 {
		cg.emitMem(fmt.Sprintf("%s %s, 0(%s)", name, rd, base), rr(rd), rr(base))
		return
	}
	t := rd
	if t == base {
		t = cg.scratchI[1]
	}
	cg.addImmInto(t, base, off)
	cg.emitMem(fmt.Sprintf("%s %s, 0(%s)", name, rd, t), rr(rd), rr(t))
}

func (cg *codegen) genStore(in *Ins) {
	base, off := cg.resolveAddr(in, true)
	switch {
	case in.Ty == TF64, in.Ty == TF32:
		fs := cg.srcReg(in.A, 0)
		cg.storeFPTo(fs, base, off, in.Ty == TF64)
	case in.Size == 4:
		rs := cg.srcReg(in.A, 0)
		cg.storeWordFrom(rs, base, off, cg.storeScratch(rs, base))
	default:
		rs := cg.srcReg(in.A, 0)
		name := "stb"
		if in.Size == 2 {
			name = "sth"
		}
		if cg.spec.SubwordDisp && off >= -32768 && off <= 32767 {
			cg.emitMem(fmt.Sprintf("%s %s, %d(%s)", name, rs, off, base), nil, rr(rs, base))
			return
		}
		if off == 0 {
			cg.emitMem(fmt.Sprintf("%s %s, 0(%s)", name, rs, base), nil, rr(rs, base))
			return
		}
		t := cg.storeScratch(rs, base)
		cg.addImmInto(t, base, off)
		cg.emitMem(fmt.Sprintf("%s %s, 0(%s)", name, rs, t), nil, rr(rs, t))
	}
}

// storeScratch picks an integer scratch register distinct from the value
// and base registers, or NoReg when both scratches are occupied (callers
// only dereference it for over-range displacements, which the legalizer
// guarantees cannot coincide with two spilled operands).
func (cg *codegen) storeScratch(rs, base isa.Reg) isa.Reg {
	for _, s := range cg.scratchI {
		if s != rs && s != base {
			return s
		}
	}
	return isa.NoReg
}

func (cg *codegen) genAddrInto(rd isa.Reg, in *Ins) {
	switch in.AK {
	case AKSlot:
		cg.addImmInto(rd, isa.RegSP, cg.slotOff[in.Slot]+in.Off)
	case AKGlobal:
		off, ok := cg.data.offsets[in.Sym]
		if !ok {
			// Not a data symbol: a text address (function), resolved by
			// the assembler.
			cg.loadSymInto(rd, in.Sym, in.Off)
			return
		}
		goff := off + in.Off
		if goff >= 0 && cg.spec.FitsALUImm(goff) {
			cg.addImmInto(rd, isa.RegGP, goff)
		} else {
			cg.loadSymInto(rd, in.Sym, in.Off)
		}
	default:
		base := cg.srcReg(in.A, 1)
		cg.addImmInto(rd, base, in.Off)
	}
}

func (cg *codegen) genFPConst(in *Ins) {
	double := in.Ty == TF64
	label := cg.data.fpConst(fbits(in.FImm, double), double)
	rd, commit := cg.dstReg(in.Dst, 0)
	off, ok := cg.data.offsets[label]
	if !ok {
		cg.fail("missing fp constant %s", label)
		return
	}
	if cg.fitsWordDisp(off) && (!double || cg.fitsWordDisp(off+4)) {
		cg.loadFPFrom(rd, isa.RegGP, off, double, cg.scratchI[0])
	} else {
		a := cg.scratchI[1]
		cg.loadSymInto(a, label, 0)
		cg.loadFPFrom(rd, a, 0, double, cg.scratchI[0])
	}
	commit()
}

// --- scheduling and peepholes ---------------------------------------------------------

// peephole removes branches to the immediately-following label (with
// their delay-slot nops). Run before scheduling so filled slots are never
// discarded.
func (cg *codegen) peephole() {
	var out []line
	for i := 0; i < len(cg.lines); i++ {
		l := cg.lines[i]
		if l.ctl && strings.HasPrefix(l.text, "\tbr ") && i+2 < len(cg.lines) {
			target := strings.TrimPrefix(l.text, "\tbr ")
			nxt := cg.lines[i+1]
			lab := cg.lines[i+2]
			if nxt.text == "\tnop" && lab.label && strings.TrimSuffix(lab.text, ":") == target {
				out = append(out, lab)
				i += 2
				continue
			}
		}
		out = append(out, l)
	}
	cg.lines = out
}

// scheduleLoads spaces load-use pairs: when the instruction right after
// a load consumes its result (a one-cycle interlock), an independent
// following instruction moves into the load shadow. Run before delay-slot
// filling so slot contents stay pinned.
func (cg *codegen) scheduleLoads() {
	for i := 0; i+2 < len(cg.lines); i++ {
		l := cg.lines[i]
		if !l.mem || len(l.defs) == 0 || l.ctl || l.label || l.dir {
			continue // not a load
		}
		b := cg.lines[i+1]
		c := cg.lines[i+2]
		if b.label || b.dir || b.ctl || b.slotted || c.label || c.dir || c.ctl || c.slotted {
			continue
		}
		if !regsOverlap(b.uses, l.defs) {
			continue // no stall to fix
		}
		if regsOverlap(c.uses, l.defs) {
			continue // no profit: c would stall instead
		}
		// C moves above B: no dependences in either direction, and no
		// memory-vs-memory reordering.
		if regsOverlap(c.defs, b.defs) || regsOverlap(c.defs, b.uses) ||
			regsOverlap(c.uses, b.defs) {
			continue
		}
		if b.mem && c.mem {
			continue
		}
		cg.lines[i+1], cg.lines[i+2] = c, b
	}
}

// schedule fills branch delay slots with a safe preceding instruction.
func (cg *codegen) schedule() {
	for i := 1; i+1 < len(cg.lines); i++ {
		ctl := cg.lines[i]
		if !ctl.ctl || cg.lines[i+1].text != "\tnop" || len(cg.lines[i+1].defs) != 0 {
			continue
		}
		cand := cg.lines[i-1]
		if cand.label || cand.dir || cand.ctl || cand.slotted || cand.text == "\tnop" {
			continue
		}
		if regsOverlap(cand.defs, ctl.uses) || regsOverlap(cand.defs, ctl.defs) ||
			regsOverlap(cand.uses, ctl.defs) {
			continue
		}
		// Move cand into the slot. It executes there exactly once, before
		// control arrives at the target — but it must never move again
		// (a second move would carry it past another transfer).
		cand.slotted = true
		cg.lines[i-1] = ctl
		cg.lines[i] = cand
		copy(cg.lines[i+1:], cg.lines[i+2:])
		cg.lines = cg.lines[:len(cg.lines)-1]
	}
}

func regsOverlap(a, b []isa.Reg) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
