package mcc

import "fmt"

// parser builds the AST and performs symbol resolution and type checking
// as it goes (MC's grammar needs no lookahead beyond one token, and types
// are always declared before use).
type parser struct {
	file string
	lx   *lexer
	tok  Token

	errs []error

	scopes  []map[string]*Sym
	globals map[string]*Sym
	prog    *Program
	curFn   *Sym
	loop    int // nesting depth for break/continue checking
	strSeq  int
	strPool map[string]*StrLit
}

// Parse parses and checks one MC translation unit.
func Parse(file, src string) (*Program, error) {
	p := &parser{
		file:    file,
		lx:      newLexer(file, src),
		globals: map[string]*Sym{},
		prog:    &Program{},
		strPool: map[string]*StrLit{},
	}
	p.next()
	for p.tok.Kind != TokEOF {
		p.topLevel()
		if len(p.errs) > 50 {
			break
		}
	}
	p.errs = append(p.lx.errs, p.errs...)
	if len(p.errs) > 0 {
		return nil, joinErrors(p.errs)
	}
	return p.prog, nil
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := ""
	for i, e := range errs {
		if i >= 12 {
			msg += fmt.Sprintf("\n... and %d more errors", len(errs)-i)
			break
		}
		if i > 0 {
			msg += "\n"
		}
		msg += e.Error()
	}
	return fmt.Errorf("%s", msg)
}

func (p *parser) pos() Pos { return Pos{p.tok.Line, p.tok.Col} }

func (p *parser) errf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{File: p.file, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) next() { p.tok = p.lx.next() }

func (p *parser) accept(k TokKind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) Token {
	t := p.tok
	if t.Kind != k {
		p.errf(p.pos(), "expected %s, found %s", k, t.Kind)
		// Do not consume: let the caller's recovery run.
		return t
	}
	p.next()
	return t
}

// sync skips tokens until a likely statement boundary (error recovery).
func (p *parser) sync() {
	for p.tok.Kind != TokEOF {
		k := p.tok.Kind
		p.next()
		if k == TokSemi || k == TokRBrace {
			return
		}
	}
}

// --- scopes -----------------------------------------------------------------

func (p *parser) pushScope() { p.scopes = append(p.scopes, map[string]*Sym{}) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) declare(s *Sym) {
	if len(p.scopes) == 0 {
		if old, ok := p.globals[s.Name]; ok && !(old.Kind == SymFunc && !old.Defined) {
			p.errf(s.Pos, "redefinition of %q", s.Name)
		}
		p.globals[s.Name] = s
		return
	}
	top := p.scopes[len(p.scopes)-1]
	if _, ok := top[s.Name]; ok {
		p.errf(s.Pos, "redefinition of %q", s.Name)
	}
	top[s.Name] = s
}

func (p *parser) lookup(name string) *Sym {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if s, ok := p.scopes[i][name]; ok {
			return s
		}
	}
	return p.globals[name]
}

// --- declarations -----------------------------------------------------------

func (p *parser) baseType() (*Type, bool) {
	switch p.tok.Kind {
	case TokInt:
		p.next()
		return TypeInt, true
	case TokChar:
		p.next()
		return TypeChar, true
	case TokFloat:
		p.next()
		return TypeFloat, true
	case TokDouble:
		p.next()
		return TypeDouble, true
	case TokVoid:
		p.next()
		return TypeVoid, true
	}
	return nil, false
}

// declType parses a base type plus pointer stars.
func (p *parser) declType() (*Type, bool) {
	t, ok := p.baseType()
	if !ok {
		return nil, false
	}
	for p.accept(TokStar) {
		t = PtrTo(t)
	}
	return t, true
}

func (p *parser) topLevel() {
	pos := p.pos()
	t, ok := p.declType()
	if !ok {
		p.errf(pos, "expected declaration, found %s", p.tok.Kind)
		p.sync()
		return
	}
	name := p.expect(TokIdent)
	if p.tok.Kind == TokLParen {
		p.funcDecl(pos, t, name.Text)
		return
	}
	p.globalVar(pos, t, name.Text)
}

func (p *parser) globalVar(pos Pos, t *Type, name string) {
	for {
		ty := t
		if p.accept(TokLBracket) {
			n := p.expect(TokIntLit)
			p.expect(TokRBracket)
			if n.Int <= 0 {
				p.errf(pos, "array %q must have positive length", name)
				n.Int = 1
			}
			ty = ArrayOf(t, int(n.Int))
		}
		if ty.K == KVoid {
			p.errf(pos, "variable %q has void type", name)
			ty = TypeInt
		}
		sym := &Sym{Name: name, Kind: SymGlobal, Ty: ty, Pos: pos, VReg: -1, Slot: -1}
		p.declare(sym)
		g := &GlobalDecl{Sym: sym}
		if p.accept(TokAssign) {
			p.globalInit(g)
		}
		p.prog.Globals = append(p.prog.Globals, g)
		if p.accept(TokComma) {
			pos = p.pos()
			name = p.expect(TokIdent).Text
			continue
		}
		p.expect(TokSemi)
		return
	}
}

// globalInit parses a global initializer: a constant expression, a braced
// list of constant expressions, or a string literal for char arrays.
func (p *parser) globalInit(g *GlobalDecl) {
	if p.tok.Kind == TokStrLit {
		s := p.tok.Str
		p.next()
		if g.Sym.Ty.K != KArray || g.Sym.Ty.Elem.K != KChar {
			p.errf(g.Sym.Pos, "string initializer requires a char array")
			return
		}
		if len(s)+1 > g.Sym.Ty.N {
			p.errf(g.Sym.Pos, "string initializer too long for %q", g.Sym.Name)
			return
		}
		g.InitStr = s
		return
	}
	if p.accept(TokLBrace) {
		for {
			g.Init = append(g.Init, p.constExpr())
			if !p.accept(TokComma) {
				break
			}
			if p.tok.Kind == TokRBrace {
				break // trailing comma
			}
		}
		p.expect(TokRBrace)
		if g.Sym.Ty.K != KArray {
			p.errf(g.Sym.Pos, "braced initializer requires an array")
		} else if len(g.Init) > g.Sym.Ty.N {
			p.errf(g.Sym.Pos, "too many initializers for %q", g.Sym.Name)
		}
		return
	}
	g.Init = []Expr{p.constExpr()}
	if g.Sym.Ty.K == KArray {
		p.errf(g.Sym.Pos, "array %q needs a braced initializer", g.Sym.Name)
	}
}

// constExpr parses an initializer expression; it must fold to a literal.
func (p *parser) constExpr() Expr {
	e := p.conditional()
	switch e.(type) {
	case *IntLit, *FloatLit:
		return e
	}
	// Allow negated literals to have been folded by checkUnary; anything
	// else is not constant.
	p.errf(e.Pos(), "initializer is not a constant expression")
	return &IntLit{exprBase: exprBase{P: e.Pos(), Ty: TypeInt}}
}

func (p *parser) funcDecl(pos Pos, ret *Type, name string) {
	p.expect(TokLParen)
	var params []*Sym
	if !p.accept(TokRParen) {
		if p.tok.Kind == TokVoid && ret != nil {
			// "f(void)" — but also "f(void* p)"; peek for star.
			save := p.tok
			p.next()
			if p.tok.Kind == TokRParen {
				p.next()
				goto done
			}
			p.errf(Pos{save.Line, save.Col}, "void parameter")
			p.sync()
			return
		}
		for {
			ppos := p.pos()
			t, ok := p.declType()
			if !ok {
				p.errf(ppos, "expected parameter type")
				p.sync()
				return
			}
			pname := p.expect(TokIdent)
			if p.accept(TokLBracket) { // T name[] == T *name
				p.expect(TokRBracket)
				t = PtrTo(t)
			}
			if !t.IsScalar() {
				p.errf(ppos, "parameter %q must be scalar", pname.Text)
				t = TypeInt
			}
			params = append(params, &Sym{Name: pname.Text, Kind: SymParam,
				Ty: t, Pos: ppos, VReg: -1, Slot: -1})
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokRParen)
	}
done:
	sym := p.globals[name]
	if sym == nil || sym.Kind != SymFunc {
		sym = &Sym{Name: name, Kind: SymFunc, Ty: TypeVoid, Ret: ret,
			Params: params, Pos: pos, VReg: -1, Slot: -1}
		p.declare(sym)
	} else {
		// Re-declaration: check signature compatibility.
		if !sym.Ret.Same(ret) || len(sym.Params) != len(params) {
			p.errf(pos, "conflicting declaration of %q", name)
		}
		sym.Params = params
	}
	if p.accept(TokSemi) {
		return // prototype
	}
	if sym.Defined {
		p.errf(pos, "redefinition of function %q", name)
	}
	sym.Defined = true
	p.curFn = sym
	p.pushScope()
	for _, prm := range params {
		p.declare(prm)
	}
	body := p.block()
	p.popScope()
	p.curFn = nil
	p.prog.Funcs = append(p.prog.Funcs, &FuncDecl{Sym: sym, Body: body})
}

// --- statements -------------------------------------------------------------

func (p *parser) block() *BlockStmt {
	b := &BlockStmt{stmtBase: stmtBase{p.pos()}}
	p.expect(TokLBrace)
	p.pushScope()
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		b.List = append(b.List, p.stmt())
	}
	p.popScope()
	p.expect(TokRBrace)
	return b
}

func (p *parser) stmt() Stmt {
	pos := p.pos()
	switch p.tok.Kind {
	case TokLBrace:
		return p.block()
	case TokSemi:
		p.next()
		return &BlockStmt{stmtBase: stmtBase{pos}}
	case TokInt, TokChar, TokFloat, TokDouble:
		return p.localDecl()
	case TokIf:
		p.next()
		p.expect(TokLParen)
		cond := p.condExprChecked()
		p.expect(TokRParen)
		then := p.stmt()
		var els Stmt
		if p.accept(TokElse) {
			els = p.stmt()
		}
		return &IfStmt{stmtBase{pos}, cond, then, els}
	case TokWhile:
		p.next()
		p.expect(TokLParen)
		cond := p.condExprChecked()
		p.expect(TokRParen)
		p.loop++
		body := p.stmt()
		p.loop--
		return &WhileStmt{stmtBase{pos}, cond, body, false}
	case TokDo:
		p.next()
		p.loop++
		body := p.stmt()
		p.loop--
		p.expect(TokWhile)
		p.expect(TokLParen)
		cond := p.condExprChecked()
		p.expect(TokRParen)
		p.expect(TokSemi)
		return &WhileStmt{stmtBase{pos}, cond, body, true}
	case TokFor:
		return p.forStmt()
	case TokReturn:
		p.next()
		var x Expr
		if p.tok.Kind != TokSemi {
			x = p.expr()
		}
		p.expect(TokSemi)
		return p.checkReturn(pos, x)
	case TokBreak:
		p.next()
		p.expect(TokSemi)
		if p.loop == 0 {
			p.errf(pos, "break outside loop")
		}
		return &BreakStmt{stmtBase{pos}}
	case TokContinue:
		p.next()
		p.expect(TokSemi)
		if p.loop == 0 {
			p.errf(pos, "continue outside loop")
		}
		return &ContinueStmt{stmtBase{pos}}
	default:
		x := p.expr()
		p.expect(TokSemi)
		return &ExprStmt{stmtBase{pos}, x}
	}
}

func (p *parser) forStmt() Stmt {
	pos := p.pos()
	p.expect(TokFor)
	p.expect(TokLParen)
	p.pushScope() // a for-init declaration scopes over the loop
	var init Stmt
	switch p.tok.Kind {
	case TokSemi:
		p.next()
	case TokInt, TokChar, TokFloat, TokDouble:
		init = p.localDecl()
	default:
		x := p.expr()
		p.expect(TokSemi)
		init = &ExprStmt{stmtBase{pos}, x}
	}
	var cond Expr
	if p.tok.Kind != TokSemi {
		cond = p.checkCond(p.expr())
	}
	p.expect(TokSemi)
	var step Expr
	if p.tok.Kind != TokRParen {
		step = p.expr()
	}
	p.expect(TokRParen)
	p.loop++
	body := p.stmt()
	p.loop--
	p.popScope()
	return &ForStmt{stmtBase{pos}, init, cond, step, body}
}

// localDecl parses "type name [= init], name2 ...;" and returns a block
// of DeclStmts (so one statement node suffices).
func (p *parser) localDecl() Stmt {
	pos := p.pos()
	t, _ := p.declType()
	b := &BlockStmt{stmtBase: stmtBase{pos}}
	for {
		dpos := p.pos()
		name := p.expect(TokIdent)
		ty := t
		if p.accept(TokLBracket) {
			n := p.expect(TokIntLit)
			p.expect(TokRBracket)
			if n.Int <= 0 {
				p.errf(dpos, "array %q must have positive length", name.Text)
				n.Int = 1
			}
			ty = ArrayOf(t, int(n.Int))
		}
		sym := &Sym{Name: name.Text, Kind: SymLocal, Ty: ty, Pos: dpos, VReg: -1, Slot: -1}
		p.declare(sym)
		var init Expr
		if p.accept(TokAssign) {
			if ty.K == KArray {
				p.errf(dpos, "local arrays cannot have initializers")
			}
			init = p.checkAssignConv(dpos, ty, p.assignExpr())
		}
		b.List = append(b.List, &DeclStmt{stmtBase{dpos}, sym, init})
		if !p.accept(TokComma) {
			break
		}
	}
	p.expect(TokSemi)
	if len(b.List) == 1 {
		return b.List[0]
	}
	return b
}

func (p *parser) condExprChecked() Expr { return p.checkCond(p.expr()) }

// --- expressions -------------------------------------------------------------

// expr parses a full (comma-free) expression.
func (p *parser) expr() Expr { return p.assignExpr() }

func (p *parser) assignExpr() Expr {
	lhs := p.conditional()
	switch p.tok.Kind {
	case TokAssign, TokPlusEq, TokMinusEq, TokStarEq, TokSlashEq, TokPercentEq,
		TokAmpEq, TokPipeEq, TokCaretEq, TokShlEq, TokShrEq:
		op := p.tok.Kind
		pos := p.pos()
		p.next()
		rhs := p.assignExpr()
		return p.checkAssign(pos, op, lhs, rhs)
	}
	return lhs
}

// conditional is the precedence-climbing ladder (no ?: in MC).
func (p *parser) conditional() Expr { return p.binary(0) }

var precTable = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokLe: 7, TokGt: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

func (p *parser) binary(minPrec int) Expr {
	lhs := p.unary()
	for {
		prec, ok := precTable[p.tok.Kind]
		if !ok || prec < minPrec {
			return lhs
		}
		op := p.tok.Kind
		pos := p.pos()
		p.next()
		rhs := p.binary(prec + 1)
		lhs = p.checkBinary(pos, op, lhs, rhs)
	}
}

func (p *parser) unary() Expr {
	pos := p.pos()
	switch p.tok.Kind {
	case TokMinus, TokTilde, TokBang, TokStar, TokAmp:
		op := p.tok.Kind
		p.next()
		x := p.unary()
		return p.checkUnary(pos, op, x)
	case TokInc, TokDec:
		op := p.tok.Kind
		p.next()
		x := p.unary()
		return p.checkIncDec(pos, op, x, false)
	case TokLParen:
		// Cast or parenthesized expression.
		save := *p.lx
		saveTok := p.tok
		p.next()
		if t, ok := p.declType(); ok && p.tok.Kind == TokRParen {
			p.next()
			x := p.unary()
			return p.checkCast(pos, t, x)
		}
		*p.lx = save
		p.tok = saveTok
		return p.postfix()
	default:
		return p.postfix()
	}
}

func (p *parser) postfix() Expr {
	x := p.primary()
	for {
		switch p.tok.Kind {
		case TokLBracket:
			pos := p.pos()
			p.next()
			idx := p.expr()
			p.expect(TokRBracket)
			x = p.checkIndex(pos, x, idx)
		case TokInc, TokDec:
			op := p.tok.Kind
			pos := p.pos()
			p.next()
			x = p.checkIncDec(pos, op, x, true)
		default:
			return x
		}
	}
}

func (p *parser) primary() Expr {
	pos := p.pos()
	switch p.tok.Kind {
	case TokIntLit, TokCharLit:
		v := p.tok.Int
		p.next()
		return &IntLit{exprBase{pos, TypeInt}, v}
	case TokFloatLit:
		v := p.tok.Flt
		p.next()
		return &FloatLit{exprBase{pos, TypeDouble}, v}
	case TokStrLit:
		s := p.tok.Str
		p.next()
		return p.internString(pos, s)
	case TokLParen:
		p.next()
		x := p.expr()
		p.expect(TokRParen)
		return x
	case TokIdent:
		name := p.tok.Text
		p.next()
		if p.tok.Kind == TokLParen {
			return p.call(pos, name)
		}
		return p.checkIdent(pos, name)
	default:
		p.errf(pos, "expected expression, found %s", p.tok.Kind)
		p.next()
		return &IntLit{exprBase{pos, TypeInt}, 0}
	}
}

func (p *parser) call(pos Pos, name string) Expr {
	p.expect(TokLParen)
	var args []Expr
	if p.tok.Kind != TokRParen {
		for {
			args = append(args, p.assignExpr())
			if !p.accept(TokComma) {
				break
			}
		}
	}
	p.expect(TokRParen)
	return p.checkCall(pos, name, args)
}

func (p *parser) internString(pos Pos, s string) Expr {
	if lit, ok := p.strPool[s]; ok {
		return &StrLit{exprBase{pos, lit.Ty}, s, lit.Label}
	}
	p.strSeq++
	lit := &StrLit{exprBase{pos, PtrTo(TypeChar)}, s, fmt.Sprintf(".str%d", p.strSeq)}
	p.strPool[s] = lit
	p.prog.Strings = append(p.prog.Strings, lit)
	return lit
}
