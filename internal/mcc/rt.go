package mcc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Runtime library, emitted as target-specialized assembly. The paper's
// machines have no integer multiply or divide (Table 1), so the compiler
// calls these shift-based routines; they use only caller-saved registers
// (plus r7, saved on the stack, in the divide routines) and follow the
// standard calling convention: arguments in r3/r4, result in r3.
//
// Target differences are exactly the ISA differences the paper studies:
// on D16 the condition register is r0 and a branch-on-register needs a
// move through r0; DLXe branches on any register and uses r0 as zero.

// rtBuilder assembles runtime source with target-conditional idioms.
type rtBuilder struct {
	spec *isa.Spec
	b    strings.Builder
}

func (r *rtBuilder) ln(format string, args ...any) {
	fmt.Fprintf(&r.b, format+"\n", args...)
}

// bz branches to label when reg is zero (with its delay slot filled by a
// nop).
func (r *rtBuilder) bz(reg, label string) {
	if r.spec.R0IsCC {
		if reg != "r0" {
			r.ln("\tmv r0, %s", reg)
		}
		r.ln("\tbz r0, %s", label)
	} else {
		r.ln("\tbz %s, %s", reg, label)
	}
	r.ln("\tnop")
}

func (r *rtBuilder) bnz(reg, label string) {
	if r.spec.R0IsCC {
		if reg != "r0" {
			r.ln("\tmv r0, %s", reg)
		}
		r.ln("\tbnz r0, %s", label)
	} else {
		r.ln("\tbnz %s, %s", reg, label)
	}
	r.ln("\tnop")
}

// neg negates a register in place.
func (r *rtBuilder) neg(reg string) {
	if r.spec.Enc == isa.EncD16 {
		r.ln("\tneg %s", reg)
	} else {
		r.ln("\tsub %s, r0, %s", reg, reg)
	}
}

// cc returns the register compares write (r0 on D16, r15 on DLXe).
func (r *rtBuilder) cc() string {
	if r.spec.R0IsCC {
		return "r0"
	}
	return "r15"
}

// zr returns a register holding zero; materialize must have been called
// on D16 (r15), DLXe has r0.
func (r *rtBuilder) zr() string {
	if r.spec.Enc == isa.EncD16 {
		return "r15"
	}
	return "r0"
}

// zero ensures the zr register holds 0 (a no-op on DLXe).
func (r *rtBuilder) zero() {
	if r.spec.Enc == isa.EncD16 {
		r.ln("\tmvi r15, 0")
	}
}

// RuntimeSource returns the startup code and arithmetic runtime for spec.
func RuntimeSource(spec *isa.Spec) string {
	r := &rtBuilder{spec: spec}
	r.ln("\t.text")
	r.ln("\t.global _start")
	r.ln("_start:")
	r.ln("\tcall main")
	r.ln("\tnop")
	r.ln("\ttrap 0")
	r.ln("\tnop")
	r.ln("\t.pool")

	r.mul()
	r.divmod("__div", false)
	r.divmod("__mod", true)
	return r.b.String()
}

// mul: r3 = r3 * r4 (low 32 bits; correct for signed and unsigned).
func (r *rtBuilder) mul() {
	r.ln("__mul:")
	r.ln("\tmvi r5, 0")
	r.ln("\tmvi r14, 1")
	r.ln(".Lmul_loop:")
	r.bz("r4", ".Lmul_done")
	r.ln("\tmv r6, r4")
	r.ln("\tand r6, r6, r14")
	r.bz("r6", ".Lmul_skip")
	r.ln("\tadd r5, r5, r3")
	r.ln(".Lmul_skip:")
	r.ln("\tshli r3, r3, 1")
	r.ln("\tshri r4, r4, 1")
	r.ln("\tbr .Lmul_loop")
	r.ln("\tnop")
	r.ln(".Lmul_done:")
	r.ln("\tmv r3, r5")
	r.ln("\tret")
	r.ln("\tnop")
	r.ln("\t.pool")
}

// divmod: r3 = r3 / r4 (or r3 % r4 when mod is set), C truncation
// semantics; division by zero returns 0.
func (r *rtBuilder) divmod(name string, mod bool) {
	p := strings.TrimPrefix(name, "__")
	l := func(s string) string { return fmt.Sprintf(".L%s_%s", p, s) }
	cc := r.cc()

	r.ln("%s:", name)
	r.ln("\tsubi sp, sp, 8")
	r.ln("\tst r7, 0(sp)")
	r.ln("\tmvi r7, 0") // negation count
	r.zero()

	// if (a < 0) { a = -a; r7++ }
	r.ln("\tcmp.lt %s, r3, %s", cc, r.zr())
	r.bz(cc, l("apos"))
	r.neg("r3")
	r.ln("\taddi r7, r7, 1")
	r.ln("%s:", l("apos"))
	if mod {
		// Remainder takes the dividend's sign only; remember it in bit 1.
		r.ln("\tshli r7, r7, 1")
	}
	// if (b < 0) { b = -b; r7++ }
	r.ln("\tcmp.lt %s, r4, %s", cc, r.zr())
	r.bz(cc, l("bpos"))
	r.neg("r4")
	r.ln("\taddi r7, r7, 1")
	r.ln("%s:", l("bpos"))

	r.ln("\tmvi r5, 0") // quotient
	r.ln("\tmvi r6, 0") // remainder
	r.bz("r4", l("done"))
	r.ln("\tmvi r14, 32")
	r.ln("%s:", l("loop"))
	r.ln("\tshli r6, r6, 1")
	r.ln("\tcmp.lt %s, r3, %s", cc, r.zr()) // top bit of a
	r.bz(cc, l("nobit"))
	r.ln("\taddi r6, r6, 1")
	r.ln("%s:", l("nobit"))
	r.ln("\tshli r3, r3, 1")
	r.ln("\tshli r5, r5, 1")
	r.ln("\tcmp.leu %s, r4, r6", cc) // b <= rem (unsigned)
	r.bz(cc, l("nosub"))
	r.ln("\tsub r6, r6, r4")
	r.ln("\taddi r5, r5, 1")
	r.ln("%s:", l("nosub"))
	r.ln("\tsubi r14, r14, 1")
	r.bnz("r14", l("loop"))

	r.ln("%s:", l("done"))
	result := "r5"
	if mod {
		result = "r6"
		// Sign bit for the remainder is bit 1 of r7 (the dividend's).
		r.ln("\tshri r7, r7, 1")
	}
	r.ln("\tmvi r14, 1")
	r.ln("\tand r7, r7, r14")
	r.bz("r7", l("pos"))
	r.neg(result)
	r.ln("%s:", l("pos"))
	r.ln("\tmv r3, %s", result)
	r.ln("\tld r7, 0(sp)")
	r.ln("\taddi sp, sp, 8")
	r.ln("\tret")
	r.ln("\tnop")
	r.ln("\t.pool")
}
