package mcc

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// Compiled is the result of compiling an MC program for one target
// configuration.
type Compiled struct {
	Spec *isa.Spec
	// Asm is the generated assembly source (runtime + program + data).
	Asm string
	// Image is the linked binary.
	Image *prog.Image
	// Spills counts spilled live ranges across all functions (a register
	// pressure diagnostic for the paper's Section 3.3.1 experiments).
	Spills int
}

// Compile parses, optimizes and compiles src for the given target
// configuration and assembles the result into a linked image.
func Compile(file, src string, spec *isa.Spec) (*Compiled, error) {
	span := telemetry.StartSpan("compile",
		telemetry.String("file", file), telemetry.String("config", spec.Name))
	source, spills, err := GenAsm(file, src, spec)
	span.End()
	if err != nil {
		return nil, err
	}
	reg := telemetry.Default()
	reg.Counter("mcc.compiles").Inc()
	reg.Counter("mcc.spills").Add(int64(spills))
	img, err := asm.Assemble(file+".s", source, spec)
	if err != nil {
		return nil, fmt.Errorf("mcc: internal assembly error: %w\n--- generated source ---\n%s", err, numberLines(source))
	}
	// Mandatory post-codegen gate: no image that fails static
	// verification (encoding ranges, CFG integrity, def-before-use,
	// stack discipline) ever reaches the simulator.
	if rep := verify.Image(img, spec); !rep.OK() {
		return nil, fmt.Errorf("mcc: %s (%s): %w", file, spec.Name, rep.Err())
	}
	return &Compiled{Spec: spec, Asm: source, Image: img, Spills: spills}, nil
}

// timedPass runs one compiler pass, feeding its wall-clock time into the
// per-pass duration histogram "mcc.pass.<name>.ns".
func timedPass(name string, f func()) {
	start := time.Now() //detlint:ignore timenow telemetry-only timing, never feeds output bytes
	f()
	telemetry.Default().Histogram("mcc.pass." + name + ".ns").Observe(time.Since(start).Nanoseconds()) //detlint:ignore timenow telemetry-only timing, never feeds output bytes
}

// instrCount is the optimizer's shrinkage measure: IR instructions
// across all blocks.
func instrCount(f *IRFunc) int64 {
	var n int64
	for _, b := range f.Blocks {
		n += int64(len(b.Ins))
	}
	return n
}

func numberLines(s string) string {
	lines := strings.Split(s, "\n")
	var b strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&b, "%4d\t%s\n", i+1, l)
	}
	return b.String()
}

// GenAsm runs the full compiler pipeline and returns assembly text.
func GenAsm(file, src string, spec *isa.Spec) (string, int, error) {
	var p *Program
	var err error
	timedPass("parse", func() { p, err = Parse(file, src) })
	if err != nil {
		return "", 0, err
	}
	if !hasMain(p) {
		return "", 0, fmt.Errorf("%s: no function main", file)
	}

	var irFuncs []*IRFunc
	timedPass("irgen", func() { irFuncs, err = GenIR(p) })
	if err != nil {
		return "", 0, err
	}

	data := newDataLayout()
	if err := layoutGlobals(data, p); err != nil {
		return "", 0, err
	}
	// Floating-point constants must be registered before bss placement so
	// gp offsets are final for legalization.
	for _, f := range irFuncs {
		for _, b := range f.Blocks {
			for i := range b.Ins {
				in := &b.Ins[i]
				if in.Op == IConst && in.Ty != TI32 {
					data.fpConst(fbits(in.FImm, in.Ty == TF64), in.Ty == TF64)
				}
			}
		}
	}
	data.finalizeBSS()

	var out strings.Builder
	out.WriteString(RuntimeSource(spec))
	spills := 0
	for _, f := range irFuncs {
		var removed int64
		optimize := func() {
			before := instrCount(f)
			timedPass("optimize", func() { Optimize(f, spec) })
			removed += before - instrCount(f)
		}
		optimize()
		timedPass("legalize", func() {
			Legalize(f, spec, data.offsets)
			LowerCalls(f)
			LowerCallTargets(f, spec)
		})
		optimize()
		timedPass("hoist", func() { Hoist(f, spec, data.offsets) })
		optimize()
		telemetry.Default().Counter("mcc.opt.removed_instrs").Add(removed)
		var alloc *Alloc
		timedPass("regalloc", func() { alloc = Allocate(f, spec) })
		spills += alloc.Spills
		var lines []line
		timedPass("emit", func() { lines, err = genFuncAsm(f, spec, alloc, data) })
		if err != nil {
			return "", 0, err
		}
		for _, l := range lines {
			out.WriteString(l.text)
			out.WriteByte('\n')
		}
	}

	if len(data.entries) > 0 {
		out.WriteString("\t.data\n")
		for _, e := range data.entries {
			out.WriteString(e)
			out.WriteByte('\n')
		}
	}
	if len(data.bss) > 0 {
		out.WriteString("\t.bss\n")
		for _, e := range data.bss {
			out.WriteString(e)
			out.WriteByte('\n')
		}
	}
	return out.String(), spills, nil
}

func hasMain(p *Program) bool {
	for _, f := range p.Funcs {
		if f.Sym.Name == "main" {
			return true
		}
	}
	return false
}

// layoutGlobals registers every global variable and string literal in the
// data layout (zero-initialized variables go to bss).
func layoutGlobals(data *dataLayout, p *Program) error {
	for _, g := range p.Globals {
		sym := g.Sym
		t := sym.Ty
		zero := len(g.Init) == 0 && g.InitStr == ""
		if zero {
			data.bssVar(sym.Name, int32(t.Size()), int32(t.Align()))
			continue
		}
		data.alignTo(int32(t.Align()))
		data.label(sym.Name)
		if err := emitInit(data, g); err != nil {
			return err
		}
	}
	for _, s := range p.Strings {
		data.label(s.Label)
		data.asciiz(s.Val)
	}
	return nil
}

func emitInit(data *dataLayout, g *GlobalDecl) error {
	t := g.Sym.Ty
	if g.InitStr != "" {
		data.asciiz(g.InitStr)
		if pad := int32(t.N - len(g.InitStr) - 1); pad > 0 {
			data.space(pad)
		}
		return nil
	}
	elem := t
	count := 1
	if t.K == KArray {
		elem, count = t.Elem, t.N
	}
	vals := g.Init
	emitOne := func(e Expr) error {
		switch v := e.(type) {
		case *IntLit:
			switch elem.K {
			case KChar:
				data.bytes([]string{fmt.Sprintf("%d", uint8(v.Val))})
			case KFloat:
				data.words(fmt.Sprintf("%d", uint32(fbits(float64(v.Val), false))))
			case KDouble:
				bits := fbits(float64(v.Val), true)
				data.words(fmt.Sprintf("%d", uint32(bits)), fmt.Sprintf("%d", uint32(bits>>32)))
			default:
				data.words(fmt.Sprintf("%d", int32(v.Val)))
			}
		case *FloatLit:
			switch elem.K {
			case KFloat:
				data.words(fmt.Sprintf("%d", uint32(fbits(v.Val, false))))
			case KDouble:
				bits := fbits(v.Val, true)
				data.words(fmt.Sprintf("%d", uint32(bits)), fmt.Sprintf("%d", uint32(bits>>32)))
			default:
				data.words(fmt.Sprintf("%d", int32(v.Val)))
			}
		default:
			return fmt.Errorf("mcc: non-constant initializer for %q", g.Sym.Name)
		}
		return nil
	}
	for _, e := range vals {
		if err := emitOne(e); err != nil {
			return err
		}
	}
	if rest := count - len(vals); rest > 0 {
		data.space(int32(rest * elem.Size()))
	}
	return nil
}
