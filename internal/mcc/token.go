// Package mcc is the MC compiler: an optimizing compiler for a small
// C-like language with one parameterized backend targeting both the D16
// and DLXe instruction sets.
//
// It plays the role GCC 2.1 plays in the paper: the same compilation,
// optimization and register-allocation technology drives every target,
// and the paper's instruction-set features (register-file size, two- vs.
// three-address operations, immediate and displacement field widths) are
// code-generation parameters (isa.Spec), so measured density and
// path-length differences between configurations isolate encoding
// effects, exactly as in Section 3.3 of the paper.
//
// MC is C without structs, typedefs or the preprocessor: int/char/float/
// double scalars, pointers, one-dimensional arrays, functions, control
// flow (if/else, while, do-while, for, break/continue, return), the full
// C expression grammar (including assignment operators, ++/--, &&/||
// with short-circuit evaluation), string literals, and global
// initializers. Built-in functions print_int, print_char, print_str and
// print_double map to simulator traps.
package mcc

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokStrLit
	TokCharLit

	// Keywords.
	TokInt
	TokChar
	TokFloat
	TokDouble
	TokVoid
	TokIf
	TokElse
	TokWhile
	TokDo
	TokFor
	TokReturn
	TokBreak
	TokContinue

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma

	TokAssign    // =
	TokPlusEq    // +=
	TokMinusEq   // -=
	TokStarEq    // *=
	TokSlashEq   // /=
	TokPercentEq // %=
	TokAmpEq     // &=
	TokPipeEq    // |=
	TokCaretEq   // ^=
	TokShlEq     // <<=
	TokShrEq     // >>=

	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokShl
	TokShr
	TokTilde
	TokBang
	TokAndAnd
	TokOrOr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokInc // ++
	TokDec // --
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokIntLit: "integer literal",
	TokFloatLit: "float literal", TokStrLit: "string literal", TokCharLit: "char literal",
	TokInt: "int", TokChar: "char", TokFloat: "float", TokDouble: "double",
	TokVoid: "void", TokIf: "if", TokElse: "else", TokWhile: "while",
	TokDo: "do", TokFor: "for", TokReturn: "return", TokBreak: "break",
	TokContinue: "continue",
	TokLParen:   "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokAssign: "=", TokPlusEq: "+=", TokMinusEq: "-=", TokStarEq: "*=",
	TokSlashEq: "/=", TokPercentEq: "%=", TokAmpEq: "&=", TokPipeEq: "|=",
	TokCaretEq: "^=", TokShlEq: "<<=", TokShrEq: ">>=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokShl: "<<", TokShr: ">>",
	TokTilde: "~", TokBang: "!", TokAndAnd: "&&", TokOrOr: "||",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokInc: "++", TokDec: "--",
}

// String returns the token kind's display name.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"int": TokInt, "char": TokChar, "float": TokFloat, "double": TokDouble,
	"void": TokVoid, "if": TokIf, "else": TokElse, "while": TokWhile,
	"do": TokDo, "for": TokFor, "return": TokReturn, "break": TokBreak,
	"continue": TokContinue,
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string  // identifier / literal spelling
	Int  int64   // TokIntLit, TokCharLit value
	Flt  float64 // TokFloatLit value
	Str  string  // TokStrLit decoded content
	Line int
	Col  int
}

// Pos identifies a source position for diagnostics.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a compiler diagnostic.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg) }
