package mcc

import (
	"fmt"
	"testing"

	"repro/internal/isa"
)

// Runtime-library edge cases: the software multiply/divide routines
// against Go's semantics at the boundaries.

func TestRuntimeMultiplyEdges(t *testing.T) {
	cases := [][2]int32{
		{0, 0}, {0, 5}, {5, 0}, {1, -1}, {-1, -1},
		{46341, 46341},    // overflows int32
		{-2147483648, 1},  // INT_MIN
		{-2147483648, -1}, // wraps to INT_MIN
		{2147483647, 2},   // wraps
		{65535, 65537},    // 2^32 - 1 -> wraps to -1... (65535*65537 = 2^32-1)
		{715827883, 3},    // wraps near +2^31
		{-715827883, -3},
	}
	var src, want string
	for _, c := range cases {
		src += fmt.Sprintf("\tprint_int((%d) * (%d)); print_char(' ');\n", c[0], c[1])
		want += fmt.Sprintf("%d ", c[0]*c[1])
	}
	program := "int main() {\n" + src + "\treturn 0;\n}"
	// Constant folding would compute these at compile time; the exact
	// fold must STILL match Go semantics, and the runtime path is forced
	// via variables below.
	checkAllConfigs(t, "mul-folded", program, want)

	// Locals initialized with constants would fold too; reading the
	// operands back from a global array forces the runtime __mul path.
	var src3 string
	src3 = "int vals[24];\nint main() {\n"
	for i, c := range cases {
		src3 += fmt.Sprintf("\tvals[%d] = %d; vals[%d] = %d;\n", 2*i, c[0], 2*i+1, c[1])
	}
	src3 += fmt.Sprintf("\tint i;\n\tfor (i = 0; i < %d; i++) {\n", len(cases))
	src3 += "\t\tprint_int(vals[2*i] * vals[2*i+1]); print_char(' ');\n\t}\n\treturn 0;\n}"
	checkAllConfigs(t, "mul-runtime", src3, want)
}

func TestRuntimeDivideEdges(t *testing.T) {
	cases := [][2]int32{
		{7, 2}, {-7, 2}, {7, -2}, {-7, -2},
		{0, 5}, {5, 1}, {5, -1},
		{2147483647, 1}, {2147483647, 2147483647},
		{-2147483647, 3}, {1, 2147483647},
		{1000000, 999}, {999, 1000000},
	}
	var want string
	src := "int vals[26];\nint main() {\n"
	for i, c := range cases {
		src += fmt.Sprintf("\tvals[%d] = %d; vals[%d] = %d;\n", 2*i, c[0], 2*i+1, c[1])
		want += fmt.Sprintf("%d %d ", c[0]/c[1], c[0]%c[1])
	}
	src += fmt.Sprintf("\tint i;\n\tfor (i = 0; i < %d; i++) {\n", len(cases))
	src += "\t\tprint_int(vals[2*i] / vals[2*i+1]); print_char(' ');\n"
	src += "\t\tprint_int(vals[2*i] % vals[2*i+1]); print_char(' ');\n\t}\n\treturn 0;\n}"
	checkAllConfigs(t, "div-runtime", src, want)
}

func TestRuntimeSourceAssemblesForAllConfigs(t *testing.T) {
	for _, spec := range append(isa.PaperConfigs(), isa.D16Plus()) {
		src := RuntimeSource(spec)
		if src == "" {
			t.Fatalf("%s: empty runtime", spec)
		}
		// The runtime is included in every compile; a trivial program
		// exercises its assembly.
		if _, err := Compile("t.mc", "int main() { return 0; }", spec); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
}
