package mcc

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func genAsmFor(t *testing.T, src string, spec *isa.Spec) string {
	t.Helper()
	asmText, _, err := GenAsm("t.mc", src, spec)
	if err != nil {
		t.Fatalf("GenAsm(%s): %v", spec, err)
	}
	return asmText
}

// countLines counts assembly lines containing the substring (runtime
// library included, so prefer distinctive patterns).
func countLines(asmText, sub string) int {
	n := 0
	for _, l := range strings.Split(asmText, "\n") {
		if strings.Contains(l, sub) {
			n++
		}
	}
	return n
}

func TestTwoAddressInsertsCopies(t *testing.T) {
	src := `
int f(int a, int b, int c) { return a + b * 0 + (a - c) + (b - a); }
int main() { return f(1, 2, 3); }
`
	three := genAsmFor(t, src, isa.DLXe())
	two := genAsmFor(t, src, isa.TwoAddress(isa.DLXe()))
	if !(countLines(two, "\tmv ") > countLines(three, "\tmv ")) {
		t.Errorf("two-address form should need more moves (%d vs %d)",
			countLines(two, "\tmv "), countLines(three, "\tmv "))
	}
	// Three-address output contains genuinely three-operand adds.
	found := false
	for _, l := range strings.Split(three, "\n") {
		f := strings.Fields(l)
		if len(f) == 4 && f[0] == "sub" && f[1] != f[2] && f[2] != f[3] {
			found = true
		}
	}
	if !found {
		t.Error("no true three-address sub emitted on DLXe")
	}
}

func TestCmpBranchFusion(t *testing.T) {
	src := `
int main() {
	int i, s = 0;
	for (i = 0; i < 10; i++) s += i;
	print_int(s);
	return 0;
}
`
	// D16: the loop compare goes to r0 and feeds bz/bnz directly — no
	// boolean materialization move.
	d16 := genAsmFor(t, src, isa.D16())
	if countLines(d16, "cmp.lt r0") == 0 {
		t.Errorf("D16 compare should target r0:\n%s", d16)
	}
	// DLXe: condition computed into a register and branched on.
	dlxe := genAsmFor(t, src, isa.DLXe())
	if countLines(dlxe, "cmp.lt") == 0 || countLines(dlxe, "bnz") == 0 {
		t.Errorf("DLXe fused compare/branch missing:\n%s", dlxe)
	}
}

func TestGlobalAddressingPerTarget(t *testing.T) {
	src := `
int g;
int main() { g = 7; return g; }
`
	// DLXe reaches the global with a gp-relative displacement.
	dlxe := genAsmFor(t, src, isa.DLXe())
	if countLines(dlxe, "(r13)") == 0 {
		t.Errorf("DLXe should use gp-relative addressing:\n%s", dlxe)
	}
	// g is the first (bss) symbol: D16's 124-byte window covers it too.
	d16 := genAsmFor(t, src, isa.D16())
	if countLines(d16, "(r13)") == 0 {
		t.Errorf("D16 should reach the first global through gp:\n%s", d16)
	}

	// A global pushed beyond the D16 window forces address arithmetic.
	far := `
int pad[100];
int pad2[100] = {1};
int g = 5;
int main() { return g; }
`
	d16far := genAsmFor(t, far, isa.D16())
	if countLines(d16far, "ldc r0, =g") == 0 && countLines(d16far, "add") == 0 {
		t.Errorf("D16 should materialize far global addresses:\n%s", d16far)
	}
	dlxefar := genAsmFor(t, far, isa.DLXe())
	if countLines(dlxefar, "gprel(") > 0 {
		t.Errorf("codegen should emit numeric offsets, got gprel:\n%s", dlxefar)
	}
}

func TestDelaySlotFilling(t *testing.T) {
	src := `
int f(int n) {
	int s = 0;
	while (n > 0) { s += n; n--; }
	return s;
}
int main() { return f(10); }
`
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		asmText := genAsmFor(t, src, spec)
		// The scheduler fills some slots: count nops right after branches.
		lines := strings.Split(asmText, "\n")
		branches, nopsAfter := 0, 0
		for i, l := range lines {
			f := strings.Fields(l)
			if len(f) > 0 && (f[0] == "br" || f[0] == "bz" || f[0] == "bnz" ||
				f[0] == "call" || f[0] == "ret" || f[0] == "jl" || f[0] == "j") {
				branches++
				if i+1 < len(lines) && strings.TrimSpace(lines[i+1]) == "nop" {
					nopsAfter++
				}
			}
		}
		if branches == 0 {
			t.Fatalf("%s: no control transfers found", spec)
		}
		if nopsAfter == branches {
			t.Errorf("%s: scheduler filled no delay slots (%d branches)", spec, branches)
		}
	}
}

func TestBuiltinsBecomeTraps(t *testing.T) {
	src := `
int main() {
	print_int(1);
	print_char('x');
	print_str("s");
	print_double(1.5);
	return 0;
}`
	asmText := genAsmFor(t, src, isa.D16())
	for _, trap := range []string{"trap 1", "trap 2", "trap 3", "trap 4"} {
		if countLines(asmText, trap) == 0 {
			t.Errorf("missing %q:\n%s", trap, asmText)
		}
	}
	if countLines(asmText, "call print_int") != 0 {
		t.Error("builtin compiled as a real call")
	}
}

func TestCalleeSavedPrologue(t *testing.T) {
	src := `
int g(int x) { return x + 1; }
int f(int a) {
	int keep = a * 3;
	int r = g(a);
	return keep + r;
}
int main() { return f(5); }
`
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		asmText := genAsmFor(t, src, spec)
		// f keeps `keep` across the call: r7 (first callee-saved) must be
		// saved and restored.
		if countLines(asmText, "st r7,") == 0 || countLines(asmText, "ld r7,") == 0 {
			t.Errorf("%s: callee-saved register not saved/restored:\n%s", spec, asmText)
		}
		// The link register is saved in every calling function.
		if countLines(asmText, "st r1,") < 2 { // f and main
			t.Errorf("%s: link register saves missing", spec)
		}
	}
}

func TestDoubleMemoryAccessGoesThroughGPRs(t *testing.T) {
	src := `
double d;
int main() { d = d + 1.0; return 0; }
`
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		asmText := genAsmFor(t, src, spec)
		// No direct FP loads exist: the value must cross via mvfl/mvfh
		// and mffl/mffh.
		for _, op := range []string{"mvfl", "mvfh", "mffl", "mffh"} {
			if countLines(asmText, op) == 0 {
				t.Errorf("%s: %s missing for double access:\n%s", spec, op, asmText)
			}
		}
	}
}

func TestRuntimeIncludedOnceAndTargeted(t *testing.T) {
	src := `int main() { int a = 7, b = 3; return a / b; }`
	d16 := genAsmFor(t, src, isa.D16())
	if countLines(d16, "__div:") != 1 {
		t.Error("runtime divide missing or duplicated")
	}
	// D16 runtime branches through r0.
	if !strings.Contains(d16, "bz r0,") {
		t.Error("D16 runtime should branch via r0")
	}
	dlxe := genAsmFor(t, src, isa.DLXe())
	// DLXe runtime tests registers directly and never moves to r0 first.
	if strings.Contains(dlxe, "mv r0,") {
		t.Errorf("DLXe runtime moves into the zero register:\n%s", dlxe)
	}
}

func TestFrameSlotsNearSPAreCheap(t *testing.T) {
	// A function with a large local array plus a spilled scalar: the
	// scalar's frame slot must use small displacements (layout puts small
	// slots near sp).
	src := `
int big(int n) {
	int buf[200];
	int i, s = 0;
	for (i = 0; i < n; i++) buf[i] = i;
	for (i = 0; i < n; i++) s += buf[i];
	return s;
}
int main() { return big(200); }
`
	asmText := genAsmFor(t, src, isa.D16())
	// The array itself lives past the 124-byte window, so address
	// arithmetic appears:
	if !strings.Contains(asmText, "add") {
		t.Errorf("expected frame address arithmetic:\n%s", asmText)
	}
}
