package mcc

import (
	"sort"

	"repro/internal/isa"
)

// Linear-scan register allocation (Poletto/Sarkar) over the linearized
// IR, with live intervals extended by block-level liveness so values live
// around loop back edges stay allocated. Intervals that cross a call site
// are restricted to callee-saved registers; spilled values get frame
// slots and are accessed through the reserved scratch registers by the
// code generator.
//
// The visible register file size comes from the target spec — this is
// the mechanism behind the paper's 16- vs. 32-register experiments
// (Figures 6 and 7): the same allocator, different pool.

// Alloc is the allocation result.
type Alloc struct {
	// Reg maps each vreg to its physical register (isa.NoReg if spilled
	// or never live).
	Reg []isa.Reg
	// SpillSlot maps each vreg to its frame slot index, or -1.
	SpillSlot []int
	// UsedCalleeSaved lists callee-saved registers the function must
	// preserve (in register order).
	UsedCalleeSaved []isa.Reg
	// Spills is the number of spilled intervals (a density/traffic
	// diagnostic surfaced in experiment output).
	Spills int
}

type interval struct {
	v            VReg
	start, end   int
	fp           bool
	crossCall    bool
	crossBuiltin bool // builtin traps clobber only r3/f1 (argument moves)
	weight       int64
}

// Allocate runs register allocation for f under spec.
func Allocate(f *IRFunc, spec *isa.Spec) *Alloc {
	a := &Alloc{
		Reg:       make([]isa.Reg, f.NReg),
		SpillSlot: make([]int, f.NReg),
	}
	for i := range a.Reg {
		a.Reg[i] = isa.NoReg
		a.SpillSlot[i] = -1
	}

	intervals, callIdx, builtinIdx := buildIntervals(f)
	weights := spillWeights(f)
	hints := moveHints(f)
	for i := range intervals {
		iv := &intervals[i]
		iv.fp = f.RegTy[iv.v].IsFloat()
		iv.weight = weights[iv.v]
		for _, c := range callIdx {
			if iv.start < c && c < iv.end {
				iv.crossCall = true
				break
			}
		}
		for _, c := range builtinIdx {
			if iv.start < c && c < iv.end {
				iv.crossBuiltin = true
				break
			}
		}
	}
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].start != intervals[j].start {
			return intervals[i].start < intervals[j].start
		}
		return intervals[i].v < intervals[j].v
	})

	intPool := newPool(isa.AllocatableGPRs(spec))
	fpPool := newPool(isa.AllocatableFPRs(spec))
	usedCallee := map[isa.Reg]bool{}

	var active []*interval
	expire := func(now int) {
		out := active[:0]
		for _, iv := range active {
			if iv.end <= now {
				pool := intPool
				if iv.fp {
					pool = fpPool
				}
				pool.free(a.Reg[iv.v])
				continue
			}
			out = append(out, iv)
		}
		active = out
	}

	spillSlotFor := func(v VReg) int {
		size := 4
		if f.RegTy[v] != TI32 {
			size = 8
		}
		f.Slots = append(f.Slots, SlotInfo{Name: "spill", Size: size, Align: size})
		a.Spills++
		return len(f.Slots) - 1
	}

	for i := range intervals {
		iv := &intervals[i]
		expire(iv.start)
		pool := intPool
		if iv.fp {
			pool = fpPool
		}
		// Move coalescing: prefer the register of a copy-related vreg
		// (cuts the operand-shuffling moves two-address targets need).
		var r isa.Reg = isa.NoReg
		for _, h := range hints[iv.v] {
			hr := a.Reg[h]
			if hr == isa.NoReg || !pool.free_[hr] {
				continue
			}
			if iv.crossCall && !isa.CalleeSaved(hr) {
				continue
			}
			if iv.crossBuiltin && (hr == isa.RetReg || hr == isa.FRetReg) {
				continue
			}
			pool.free_[hr] = false
			r = hr
			break
		}
		if r == isa.NoReg {
			r = pool.take(iv.crossCall, iv.crossBuiltin)
		}
		if r != isa.NoReg {
			a.Reg[iv.v] = r
			if isa.CalleeSaved(r) {
				usedCallee[r] = true
			}
			active = append(active, iv)
			continue
		}
		// No register available: spill the cheapest conflicting interval
		// (lowest loop-depth-weighted use count, GCC-style), or this one.
		var victim *interval
		for _, act := range active {
			if act.fp != iv.fp {
				continue
			}
			// Only a victim whose register this interval could legally use.
			if iv.crossCall && !isa.CalleeSaved(a.Reg[act.v]) {
				continue
			}
			if iv.crossBuiltin && (a.Reg[act.v] == isa.RetReg || a.Reg[act.v] == isa.FRetReg) {
				continue
			}
			if victim == nil || act.weight < victim.weight ||
				(act.weight == victim.weight && act.end > victim.end) {
				victim = act
			}
		}
		if victim != nil && victim.weight < iv.weight {
			r := a.Reg[victim.v]
			a.Reg[victim.v] = isa.NoReg
			a.SpillSlot[victim.v] = spillSlotFor(victim.v)
			a.Reg[iv.v] = r
			if isa.CalleeSaved(r) {
				usedCallee[r] = true
			}
			for j, act := range active {
				if act == victim {
					active[j] = iv
					break
				}
			}
		} else {
			a.SpillSlot[iv.v] = spillSlotFor(iv.v)
		}
	}

	for _, r := range append(isa.AllocatableGPRs(spec), isa.AllocatableFPRs(spec)...) {
		if usedCallee[r] {
			a.UsedCalleeSaved = append(a.UsedCalleeSaved, r)
		}
	}
	return a
}

// pool hands out registers, preferring caller-saved unless the interval
// crosses a call.
type pool struct {
	order []isa.Reg
	free_ map[isa.Reg]bool
}

func newPool(regs []isa.Reg) *pool {
	p := &pool{order: regs, free_: map[isa.Reg]bool{}}
	for _, r := range regs {
		p.free_[r] = true
	}
	return p
}

func (p *pool) take(needCalleeSaved, avoidRetReg bool) isa.Reg {
	for _, r := range p.order {
		if !p.free_[r] {
			continue
		}
		if needCalleeSaved && !isa.CalleeSaved(r) {
			continue
		}
		if avoidRetReg && (r == isa.RetReg || r == isa.FRetReg) {
			continue
		}
		p.free_[r] = false
		return r
	}
	return isa.NoReg
}

func (p *pool) free(r isa.Reg) {
	if r != isa.NoReg {
		p.free_[r] = true
	}
}

// moveHints collects copy-relations for coalescing: for `mov d, s` and
// for two-address-relevant `op d, a, b` patterns, d prefers a's (or s's)
// register. Hints are bidirectional so whichever interval is allocated
// first seeds the other.
func moveHints(f *IRFunc) map[VReg][]VReg {
	h := map[VReg][]VReg{}
	add := func(a, b VReg) {
		if a == NoV || b == NoV || a == b {
			return
		}
		h[a] = append(h[a], b)
		h[b] = append(h[b], a)
	}
	for _, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			switch in.Op {
			case IMov:
				add(in.Dst, in.A)
			case IAdd, ISub, IAnd, IOr, IXor, IShl, IShr, ISra,
				IFAdd, IFSub, IFMul, IFDiv:
				add(in.Dst, in.A)
			}
		}
	}
	return h
}

// spillWeights estimates each vreg's dynamic access frequency: every use
// or definition counts, multiplied by 8 per enclosing source loop — the
// classic loop-depth spill metric. Spilling a loop induction variable is
// catastrophically worse than spilling a once-used address.
func spillWeights(f *IRFunc) map[VReg]int64 {
	depth := map[int]int{}
	for _, l := range f.Loops {
		for id := range l.Blocks { //detlint:ignore rangemap commutative counting, order-free
			depth[id]++
		}
	}
	w := map[VReg]int64{}
	for _, b := range f.Blocks {
		mult := int64(1)
		for d := 0; d < depth[b.ID] && d < 5; d++ {
			mult *= 8
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			var buf [4]VReg
			for _, u := range in.uses(buf[:0]) {
				w[u] += mult
			}
			if d := in.def(); d != NoV {
				w[d] += mult
			}
		}
	}
	return w
}

// buildIntervals computes per-vreg live intervals over the linearized
// function and the indices of clobbering calls (full calls and builtin
// traps, separately).
func buildIntervals(f *IRFunc) ([]interval, []int, []int) {
	// Block instruction index ranges. Numbering starts at 1: index 0 is
	// the function entry, where parameters become live — so a call that
	// is the very first instruction still counts as crossed by them.
	type brange struct{ start, end int }
	ranges := make(map[int]brange, len(f.Blocks))
	idx := 1
	for _, b := range f.Blocks {
		s := idx
		idx += len(b.Ins)
		ranges[b.ID] = brange{s, idx}
	}

	// Block-level liveness (backward dataflow).
	useS := map[int]map[VReg]bool{}
	defS := map[int]map[VReg]bool{}
	for _, b := range f.Blocks {
		u, d := map[VReg]bool{}, map[VReg]bool{}
		for i := range b.Ins {
			var buf [4]VReg
			for _, src := range b.Ins[i].uses(buf[:0]) {
				if !d[src] {
					u[src] = true
				}
			}
			if dst := b.Ins[i].def(); dst != NoV {
				d[dst] = true
			}
		}
		useS[b.ID], defS[b.ID] = u, d
	}
	liveIn := map[int]map[VReg]bool{}
	liveOut := map[int]map[VReg]bool{}
	for _, b := range f.Blocks {
		liveIn[b.ID] = map[VReg]bool{}
		liveOut[b.ID] = map[VReg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := liveOut[b.ID]
			for _, s := range b.Succs() {
				for v := range liveIn[s] { //detlint:ignore rangemap set-union fixpoint, order-free
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b.ID]
			for v := range useS[b.ID] { //detlint:ignore rangemap set-union fixpoint, order-free
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out { //detlint:ignore rangemap set-union fixpoint, order-free
				if !defS[b.ID][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}

	// Intervals.
	starts := make([]int, f.NReg)
	ends := make([]int, f.NReg)
	for v := range starts {
		starts[v] = -1
	}
	touch := func(v VReg, at int) {
		if starts[v] < 0 {
			starts[v], ends[v] = at, at
			return
		}
		if at < starts[v] {
			starts[v] = at
		}
		if at > ends[v] {
			ends[v] = at
		}
	}

	// Parameters are live from function entry (the entry move sequence).
	for _, p := range f.Params {
		touch(p, 0)
	}

	var calls, builtins []int
	idx = 1
	for _, b := range f.Blocks {
		r := ranges[b.ID]
		for v := range liveIn[b.ID] { //detlint:ignore rangemap min/max accumulation, order-free
			touch(v, r.start)
		}
		for v := range liveOut[b.ID] { //detlint:ignore rangemap min/max accumulation, order-free
			touch(v, r.end)
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			var buf [4]VReg
			for _, u := range in.uses(buf[:0]) {
				touch(u, idx)
			}
			if d := in.def(); d != NoV {
				touch(d, idx)
			}
			if in.Op == ICall {
				if in.Builtin {
					builtins = append(builtins, idx)
				} else {
					calls = append(calls, idx)
				}
			}
			idx++
		}
	}

	var out []interval
	for v := 0; v < f.NReg; v++ {
		if starts[v] >= 0 {
			out = append(out, interval{v: VReg(v), start: starts[v], end: ends[v]})
		}
	}
	return out, calls, builtins
}
