package mcc

import (
	"sort"

	"repro/internal/isa"
)

// The optimizer. Passes are deliberately the kind a production compiler of
// the paper's era runs (GCC 2.1 at -O): local constant and copy
// propagation, constant folding, strength reduction of multiplications by
// powers of two, local common-subexpression elimination (including loads,
// invalidated at stores and calls), dead-code elimination, and branch
// simplification with unreachable-block removal.
//
// Legalize is target-aware: it exposes out-of-range global/frame addresses
// as explicit address computations so CSE can share them — this is where
// the D16 displacement limits turn into extra (but shareable)
// instructions, matching the paper's Section 3.3.3 observations.

// Optimize runs the pass pipeline on f. It is target-parameterized the
// way the paper's compiler is: immediate formation consults the spec's
// field widths, so a constant the target cannot encode stays a separate
// (hoistable, CSE-able) materialization.
func Optimize(f *IRFunc, spec *isa.Spec) {
	for i := 0; i < 3; i++ {
		changed := false
		for _, b := range f.Blocks {
			changed = localOpt(f, b, spec) || changed
			changed = localCSE(f, b) || changed
		}
		changed = deadCode(f) || changed
		changed = foldBranches(f) || changed
		changed = pruneBlocks(f) || changed
		if !changed {
			break
		}
	}
}

// immEncodable reports whether the target has an immediate form of op
// that encodes v (the decision behind the paper's immediate-field
// ablation). cond matters only for compares (D16+'s compare-equal
// immediate accepts eq only).
func immEncodable(spec *isa.Spec, op IOp, cond isa.Cond, v int64) bool {
	switch op {
	case IAdd, ISub:
		return (v >= 0 && spec.FitsALUImm(int32(v))) ||
			(v < 0 && -v <= int64(spec.MaxALUImm()))
	case IShl, IShr, ISra:
		return v >= 0 && v <= 31
	case IAnd, IOr, IXor:
		return spec.HasLogicalImm && v >= 0 && v <= 0xFFFF
	case ICmp:
		if spec.HasCmpImm {
			return v >= -32768 && v <= 32767
		}
		return spec.CmpImm8 && cond == isa.EQ && v >= 0 && v <= 255
	case IMul, IDiv, IRem:
		// Lowered later: strength reduction wants the constant visible.
		return true
	}
	return false
}

// localOpt does constant/copy propagation and folding within one block.
func localOpt(f *IRFunc, b *Block, spec *isa.Spec) bool {
	changed := false
	constVal := map[VReg]int64{}
	copyOf := map[VReg]VReg{}

	kill := func(v VReg) {
		delete(constVal, v)
		for k, src := range copyOf { //detlint:ignore rangemap conditional deletes, order-free

			if src == v || k == v {
				delete(copyOf, k)
			}
		}
	}
	resolve := func(v VReg) VReg {
		if src, ok := copyOf[v]; ok {
			return src
		}
		return v
	}

	for i := range b.Ins {
		in := &b.Ins[i]

		// Rewrite operands through known copies.
		rw := func(p *VReg) {
			if *p != NoV {
				if r := resolve(*p); r != *p {
					*p = r
					changed = true
				}
			}
		}
		switch in.Op {
		case ILoad, IAddr:
			if in.AK == AKReg {
				rw(&in.A)
			}
		case IStore:
			rw(&in.A)
			if in.AK == AKReg {
				rw(&in.B)
			}
		case ICall:
			for j := range in.Args {
				rw(&in.Args[j])
			}
		default:
			rw(&in.A)
			if !in.HasBImm {
				rw(&in.B)
			}
		}

		// Constant folding happens regardless of encodability.
		if in.Ty == TI32 && in.A != NoV && in.B != NoV {
			if av, aok := constVal[in.A]; aok {
				if bv, bok := constVal[in.B]; bok {
					if in.Op == ICmp {
						v := int64(0)
						if in.Cond.EvalInt(int32(av), int32(bv)) {
							v = 1
						}
						*in = Ins{Op: IConst, Ty: TI32, Dst: in.Dst, Imm: v}
						changed = true
					} else if v, ok := foldInt(in.Op, av, bv); ok {
						*in = Ins{Op: IConst, Ty: TI32, Dst: in.Dst, Imm: v}
						changed = true
					}
				}
			}
		}

		// Immediate formation: a constant B operand becomes BImm when the
		// target can encode it.
		if !in.HasBImm && in.B != NoV && in.Ty == TI32 {
			if cv, ok := constVal[in.B]; ok && immEncodable(spec, in.Op, in.Cond, cv) {
				switch in.Op {
				case IAdd, ISub, IMul, IDiv, IRem, IAnd, IOr, IXor,
					IShl, IShr, ISra, ICmp:
					in.HasBImm, in.BImm, in.B = true, cv, NoV
					changed = true
				}
			}
		}
		// Commute a constant left operand into BImm where legal.
		if !in.HasBImm && in.A != NoV && in.B != NoV && in.Ty == TI32 {
			if cv, ok := constVal[in.A]; ok {
				switch in.Op {
				case IAdd, IAnd, IOr, IXor, IMul:
					if immEncodable(spec, in.Op, in.Cond, cv) {
						in.A = in.B
						in.HasBImm, in.BImm, in.B = true, cv, NoV
						changed = true
					}
				case ICmp:
					if immEncodable(spec, ICmp, in.Cond.Swapped(), cv) {
						in.A = in.B
						in.HasBImm, in.BImm, in.B = true, cv, NoV
						in.Cond = in.Cond.Swapped()
						changed = true
					}
				}
			}
		}

		// Folding and algebraic simplification.
		if in.Ty == TI32 && in.HasBImm {
			if av, ok := constVal[in.A]; ok && in.Op != ICmp {
				if v, ok := foldInt(in.Op, av, in.BImm); ok {
					*in = Ins{Op: IConst, Ty: TI32, Dst: in.Dst, Imm: v}
					changed = true
				}
			} else if av, ok := constVal[in.A]; ok && in.Op == ICmp {
				v := int64(0)
				if in.Cond.EvalInt(int32(av), int32(in.BImm)) {
					v = 1
				}
				*in = Ins{Op: IConst, Ty: TI32, Dst: in.Dst, Imm: v}
				changed = true
			} else {
				changed = simplifyAlgebraic(in) || changed
			}
		}

		// Strength reduction: multiply by a power of two.
		if in.Op == IMul && in.HasBImm && in.BImm > 0 && in.BImm&(in.BImm-1) == 0 {
			sh := int64(0)
			for v := in.BImm; v > 1; v >>= 1 {
				sh++
			}
			in.Op, in.BImm = IShl, sh
			changed = true
		}

		// Update the local environment.
		if d := in.def(); d != NoV {
			kill(d)
			switch {
			case in.Op == IConst && in.Ty == TI32:
				constVal[d] = in.Imm
			case in.Op == IMov && in.A != d:
				copyOf[d] = resolve(in.A)
				if cv, ok := constVal[copyOf[d]]; ok {
					constVal[d] = cv
				}
			}
		}
	}
	return changed
}

// foldInt evaluates a constant integer operation with 32-bit semantics.
func foldInt(op IOp, a, b int64) (int64, bool) {
	x, y := int32(a), int32(b)
	switch op {
	case IAdd:
		return int64(x + y), true
	case ISub:
		return int64(x - y), true
	case IMul:
		return int64(x * y), true
	case IDiv:
		if y == 0 {
			return 0, false
		}
		return int64(x / y), true
	case IRem:
		if y == 0 {
			return 0, false
		}
		return int64(x % y), true
	case IAnd:
		return int64(x & y), true
	case IOr:
		return int64(x | y), true
	case IXor:
		return int64(x ^ y), true
	case IShl:
		return int64(x << (uint32(y) & 31)), true
	case IShr:
		return int64(int32(uint32(x) >> (uint32(y) & 31))), true
	case ISra:
		return int64(x >> (uint32(y) & 31)), true
	}
	return 0, false
}

// simplifyAlgebraic rewrites identities: x+0, x*1, x*0, x&0, x|0, x<<0...
func simplifyAlgebraic(in *Ins) bool {
	b := in.BImm
	switch in.Op {
	case IAdd, ISub, IOr, IXor, IShl, IShr, ISra:
		if b == 0 {
			*in = Ins{Op: IMov, Ty: in.Ty, Dst: in.Dst, A: in.A}
			return true
		}
	case IMul:
		switch b {
		case 0:
			*in = Ins{Op: IConst, Ty: in.Ty, Dst: in.Dst, Imm: 0}
			return true
		case 1:
			*in = Ins{Op: IMov, Ty: in.Ty, Dst: in.Dst, A: in.A}
			return true
		}
	case IDiv:
		if b == 1 {
			*in = Ins{Op: IMov, Ty: in.Ty, Dst: in.Dst, A: in.A}
			return true
		}
	case IAnd:
		if b == 0 {
			*in = Ins{Op: IConst, Ty: in.Ty, Dst: in.Dst, Imm: 0}
			return true
		}
		if b == -1 {
			*in = Ins{Op: IMov, Ty: in.Ty, Dst: in.Dst, A: in.A}
			return true
		}
	}
	return false
}

// cseKey identifies a pure computation for local CSE.
type cseKey struct {
	op     IOp
	ty     Ty
	srcTy  Ty
	cond   isa.Cond
	a, b   VReg
	hasImm bool
	imm    int64
	fimm   float64
	ak     AddrKind
	sym    string
	slot   int
	off    int32
	size   uint8
	signed bool
	memGen int // loads: invalidated when memory may change
}

// localCSE eliminates repeated pure computations (and repeated loads
// between memory-clobbering points) within a block.
func localCSE(f *IRFunc, b *Block) bool {
	changed := false
	avail := map[cseKey]VReg{}
	memGen := 0
	redef := map[VReg]int{} // vreg -> generation of last redefinition
	gen := 0

	valid := func(v VReg, bornGen int) bool { return redef[v] <= bornGen }
	born := map[cseKey]int{}

	for i := range b.Ins {
		in := &b.Ins[i]
		// Account the definition FIRST: an expression's own def must not
		// look like a later redefinition when a duplicate checks it.
		if d := in.def(); d != NoV {
			gen++
			redef[d] = gen
		}
		var key cseKey
		pure := false
		switch in.Op {
		case IConst:
			key = cseKey{op: IConst, ty: in.Ty, imm: in.Imm, fimm: in.FImm}
			pure = true
		case IAdd, ISub, IMul, IDiv, IRem, IAnd, IOr, IXor, IShl, IShr, ISra,
			INeg, INot, ICmp, IFAdd, IFSub, IFMul, IFDiv, IFNeg, IFCmp, ICvt:
			key = cseKey{op: in.Op, ty: in.Ty, srcTy: in.SrcTy, cond: in.Cond,
				a: in.A, b: in.B, hasImm: in.HasBImm, imm: in.BImm}
			pure = in.Op != IDiv && in.Op != IRem // division kept for traps
		case IAddr:
			key = cseKey{op: IAddr, a: in.A, ak: in.AK, sym: in.Sym,
				slot: in.Slot, off: in.Off}
			pure = true
		case ILoad:
			key = cseKey{op: ILoad, ty: in.Ty, a: in.A, ak: in.AK, sym: in.Sym,
				slot: in.Slot, off: in.Off, size: in.Size, signed: in.Signed,
				memGen: memGen}
			pure = true
		case IStore, ICall:
			memGen++
		}
		if pure {
			if prev, ok := avail[key]; ok && prev != in.Dst &&
				valid(prev, born[key]) && operandsValid(in, born[key], redef) {
				*in = Ins{Op: IMov, Ty: in.Ty, Dst: in.Dst, A: prev}
				changed = true
			} else {
				avail[key] = in.Dst
				born[key] = gen
			}
		}
	}
	return changed
}

// operandsValid checks that an instruction's operands have not been
// redefined since the candidate expression was computed.
func operandsValid(in *Ins, bornGen int, redef map[VReg]int) bool {
	var buf [4]VReg
	for _, u := range in.uses(buf[:0]) {
		if redef[u] > bornGen {
			return false
		}
	}
	return true
}

// deadCode removes instructions whose results are never used.
func deadCode(f *IRFunc) bool {
	changed := false
	for {
		uses := map[VReg]int{}
		for _, b := range f.Blocks {
			for i := range b.Ins {
				var buf [4]VReg
				for _, u := range b.Ins[i].uses(buf[:0]) {
					uses[u]++
				}
			}
		}
		removed := false
		for _, b := range f.Blocks {
			out := b.Ins[:0]
			for i := range b.Ins {
				in := b.Ins[i]
				d := in.def()
				if d != NoV && uses[d] == 0 && !in.hasSideEffects() {
					removed = true
					continue
				}
				// Dead call results become void calls.
				if in.Op == ICall && in.Dst != NoV && uses[in.Dst] == 0 {
					in.Dst = NoV
				}
				out = append(out, in)
			}
			b.Ins = out
		}
		if !removed {
			return changed
		}
		changed = true
	}
}

// foldBranches turns constant conditional branches into unconditional
// ones. (The constant operand is detected through an IConst def appearing
// earlier in the same block.)
func foldBranches(f *IRFunc) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ICondBr {
			continue
		}
		cv, ok := blockConst(b, t.A)
		if !ok {
			continue
		}
		target := t.Imm
		if cv == 0 {
			target = t.Imm2
		}
		*t = Ins{Op: IBr, Imm: target}
		changed = true
	}
	return changed
}

func blockConst(b *Block, v VReg) (int64, bool) {
	var val int64
	found := false
	for i := range b.Ins {
		in := &b.Ins[i]
		if in.def() == v {
			if in.Op == IConst && in.Ty == TI32 {
				val, found = in.Imm, true
			} else {
				found = false
			}
		}
	}
	return val, found
}

// pruneBlocks removes unreachable blocks and threads trivial jumps
// (a block containing only "br X" is bypassed).
func pruneBlocks(f *IRFunc) bool {
	changed := false

	// Jump threading.
	thread := map[int]int{}
	for _, b := range f.Blocks {
		if len(b.Ins) == 1 && b.Ins[0].Op == IBr {
			thread[b.ID] = int(b.Ins[0].Imm)
		}
	}
	resolve := func(id int) int {
		seen := map[int]bool{}
		for {
			nxt, ok := thread[id]
			if !ok || seen[id] {
				return id
			}
			seen[id] = true
			id = nxt
		}
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case IBr:
			if n := resolve(int(t.Imm)); n != int(t.Imm) {
				t.Imm = int64(n)
				changed = true
			}
		case ICondBr:
			if n := resolve(int(t.Imm)); n != int(t.Imm) {
				t.Imm = int64(n)
				changed = true
			}
			if n := resolve(int(t.Imm2)); n != int(t.Imm2) {
				t.Imm2 = int64(n)
				changed = true
			}
		}
	}

	// Reachability.
	reach := map[int]bool{0: true}
	work := []int{0}
	byID := map[int]*Block{}
	for _, b := range f.Blocks {
		byID[b.ID] = b
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range byID[id].Succs() {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	var out []*Block
	for _, b := range f.Blocks {
		if reach[b.ID] {
			out = append(out, b)
		} else {
			changed = true
		}
	}
	f.Blocks = out
	return changed
}

// --- target-aware legalization ----------------------------------------------

// Legalize rewrites addressing that the target cannot encode into
// explicit address arithmetic, so that CSE can share the expensive
// address computations (GCC exposes addresses the same way). layout maps
// global symbol names to their offsets from the data base (gp).
func Legalize(f *IRFunc, spec *isa.Spec, layout map[string]int32) {
	for _, b := range f.Blocks {
		var out []Ins
		for i := range b.Ins {
			in := b.Ins[i]
			if (in.Op == ILoad || in.Op == IStore) && !addrEncodable(&in, spec, layout) {
				// addr = &X; access [addr + 0]
				av := f.NewVReg(TI32)
				addr := Ins{Op: IAddr, Ty: TI32, Dst: av, AK: in.AK, A: in.A,
					Sym: in.Sym, Slot: in.Slot, Off: in.Off}
				if in.Op == IStore {
					addr.A = NoV
					if in.AK == AKReg {
						addr.A = in.B
					}
				}
				out = append(out, addr)
				in.AK, in.Off, in.Sym, in.Slot = AKReg, 0, "", -1
				if in.Op == IStore {
					in.B = av
				} else {
					in.A = av
				}
			}
			out = append(out, in)
		}
		b.Ins = out
	}
}

// addrEncodable predicts whether the access can use a direct displacement
// on the target. Slot offsets are not final before register allocation,
// so slot accesses are left alone here (the code generator re-checks and
// falls back to scratch-register arithmetic for over-range frames).
func addrEncodable(in *Ins, spec *isa.Spec, layout map[string]int32) bool {
	subword := in.Size == 1 || in.Size == 2
	if subword && !spec.SubwordDisp {
		// Sub-word modes take no displacement at all on D16: only a bare
		// register base with zero offset can encode.
		return in.AK == AKReg && in.Off == 0
	}
	wide := in.Size == 8 // doubles access off and off+4
	switch in.AK {
	case AKReg:
		if in.Off == 0 && !wide {
			return true
		}
		return fitsDisp(spec, in.Off, subword) && (!wide || fitsDisp(spec, in.Off+4, subword))
	case AKGlobal:
		off, ok := layout[in.Sym]
		if !ok {
			return false
		}
		return fitsDisp(spec, off+in.Off, subword) && (!wide || fitsDisp(spec, off+in.Off+4, subword))
	case AKSlot:
		return true // re-checked at code generation
	}
	return true
}

func fitsDisp(spec *isa.Spec, off int32, subword bool) bool {
	if subword {
		return spec.SubwordDisp && off >= -32768 && off <= 32767
	}
	// Word accesses: double-word accesses need off+4 encodable too.
	return spec.FitsMemDisp(off)
}

// Hoist performs the loop-invariant code motion a period optimizing
// compiler does naturally by keeping addresses and constants in
// pseudo-registers: zero-operand pure instructions (constants, global and
// frame addresses) inside a loop move to the loop's preheader. This is
// what keeps D16's expensive address materializations (literal-pool
// loads) out of inner loops, exactly as the paper's Section 3.4 assumes
// ("the better a compiler is able to move expensive operations out of
// inner loops, the less effect these instructions have").
//
// Hoisting is cost-driven, like GCC's: only materializations that cost
// the target at least two instructions or a memory access move out;
// cheap single-instruction constants rematerialize in place rather than
// occupy a register (spilling a hoisted value would just trade pool
// loads for stack traffic).
func Hoist(f *IRFunc, spec *isa.Spec, layout map[string]int32) {
	byID := map[int]*Block{}
	for _, b := range f.Blocks {
		byID[b.ID] = b
	}
	// A vreg is hoistable only if it has exactly one definition.
	defCount := map[VReg]int{}
	for _, b := range f.Blocks {
		for i := range b.Ins {
			if d := b.Ins[i].def(); d != NoV {
				defCount[d]++
			}
		}
	}

	expensive := func(in *Ins) bool {
		switch in.Op {
		case IConst:
			if in.Ty != TI32 {
				return true // FP constants load from memory
			}
			return !spec.FitsMVI(int32(in.Imm))
		case IAddr:
			switch in.AK {
			case AKGlobal:
				off, ok := layout[in.Sym]
				if !ok {
					return true
				}
				goff := off + in.Off
				return !(goff >= 0 && spec.FitsALUImm(goff))
			case AKSlot:
				// Frame addresses are computed with one addi in almost
				// all frames; never worth a loop-long register.
				return false
			}
		}
		return false
	}

	// Innermost loops first (the order the IR generator records them);
	// instructions cascade outward through nested preheaders.
	for _, loop := range f.Loops {
		pre, ok := byID[loop.Pre]
		if !ok || pre.Term() == nil {
			continue
		}
		// Member IDs in sorted order: hoisted instructions must land in
		// the preheader in a run-independent order or downstream vreg
		// numbering (and with it allocation) becomes nondeterministic.
		ids := make([]int, 0, len(loop.Blocks))
		for id := range loop.Blocks { //detlint:ignore rangemap sorted immediately below
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var hoisted []Ins
		for _, id := range ids {
			b, ok := byID[id]
			if !ok {
				continue
			}
			kept := b.Ins[:0]
			for i := range b.Ins {
				in := b.Ins[i]
				movable := (in.Op == IConst || (in.Op == IAddr && in.AK != AKReg)) &&
					defCount[in.Dst] == 1 && expensive(&in)
				if movable {
					hoisted = append(hoisted, in)
					continue
				}
				kept = append(kept, in)
			}
			b.Ins = kept
		}
		if len(hoisted) == 0 {
			continue
		}
		// Insert before the preheader's terminator.
		term := pre.Ins[len(pre.Ins)-1]
		pre.Ins = append(pre.Ins[:len(pre.Ins)-1], hoisted...)
		pre.Ins = append(pre.Ins, term)
	}
}

// LowerCallTargets makes function addresses explicit IR values on
// targets without a direct-call instruction (D16: every call goes
// through a register loaded from the literal pool). Exposing the address
// materialization to CSE and loop hoisting is what keeps D16's per-call
// pool loads out of inner loops — a repeated call site then costs one
// pool load per loop entry instead of one per iteration.
func LowerCallTargets(f *IRFunc, spec *isa.Spec) {
	if spec.HasJType {
		return // DLXe jl is a one-instruction direct call
	}
	for _, b := range f.Blocks {
		var out []Ins
		for i := range b.Ins {
			in := b.Ins[i]
			if in.Op == ICall && !in.Builtin && in.A == NoV {
				t := f.NewVReg(TI32)
				out = append(out, Ins{Op: IAddr, Ty: TI32, Dst: t,
					AK: AKGlobal, Sym: in.Sym})
				in.A = t
			}
			out = append(out, in)
		}
		b.Ins = out
	}
}

// LowerCalls rewrites multiply/divide/remainder that survived strength
// reduction into runtime-library calls (__mul, __div, __mod); the paper's
// machines have no integer multiply or divide instructions.
func LowerCalls(f *IRFunc) {
	for _, b := range f.Blocks {
		var out []Ins
		for i := range b.Ins {
			in := b.Ins[i]
			var name string
			switch in.Op {
			case IMul:
				name = "__mul"
			case IDiv:
				name = "__div"
			case IRem:
				name = "__mod"
			default:
				out = append(out, in)
				continue
			}
			bArg := in.B
			if in.HasBImm {
				cv := f.NewVReg(TI32)
				out = append(out, Ins{Op: IConst, Ty: TI32, Dst: cv, Imm: in.BImm})
				bArg = cv
			}
			f.HasCall = true
			out = append(out, Ins{Op: ICall, Ty: TI32, Dst: in.Dst, A: NoV,
				Sym: name, Args: []VReg{in.A, bArg}})
		}
		b.Ins = out
	}
}
