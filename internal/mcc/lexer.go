package mcc

import (
	"fmt"
	"strconv"
)

// lexer turns MC source into tokens.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
	errs []error
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) {
	l.errs = append(l.errs, &Error{File: l.file, Pos: Pos{l.line, l.col},
		Msg: fmt.Sprintf(format, args...)})
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) && !(l.peek() == '*' && l.peek2() == '/') {
				l.advance()
			}
			if l.pos < len(l.src) {
				l.advance()
				l.advance()
			} else {
				l.errf("unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() Token {
	l.skipSpaceAndComments()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && (isIdentStart(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		tok.Text = l.src[start:l.pos]
		if k, ok := keywords[tok.Text]; ok {
			tok.Kind = k
		} else {
			tok.Kind = TokIdent
		}
		return tok

	case isDigit(c):
		return l.number(tok)

	case c == '"':
		return l.stringLit(tok)

	case c == '\'':
		return l.charLit(tok)
	}

	l.advance()
	two := func(nc byte, k2, k1 TokKind) TokKind {
		if l.peek() == nc {
			l.advance()
			return k2
		}
		return k1
	}
	switch c {
	case '(':
		tok.Kind = TokLParen
	case ')':
		tok.Kind = TokRParen
	case '{':
		tok.Kind = TokLBrace
	case '}':
		tok.Kind = TokRBrace
	case '[':
		tok.Kind = TokLBracket
	case ']':
		tok.Kind = TokRBracket
	case ';':
		tok.Kind = TokSemi
	case ',':
		tok.Kind = TokComma
	case '~':
		tok.Kind = TokTilde
	case '+':
		switch l.peek() {
		case '+':
			l.advance()
			tok.Kind = TokInc
		case '=':
			l.advance()
			tok.Kind = TokPlusEq
		default:
			tok.Kind = TokPlus
		}
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			tok.Kind = TokDec
		case '=':
			l.advance()
			tok.Kind = TokMinusEq
		default:
			tok.Kind = TokMinus
		}
	case '*':
		tok.Kind = two('=', TokStarEq, TokStar)
	case '/':
		tok.Kind = two('=', TokSlashEq, TokSlash)
	case '%':
		tok.Kind = two('=', TokPercentEq, TokPercent)
	case '^':
		tok.Kind = two('=', TokCaretEq, TokCaret)
	case '!':
		tok.Kind = two('=', TokNe, TokBang)
	case '=':
		tok.Kind = two('=', TokEq, TokAssign)
	case '&':
		switch l.peek() {
		case '&':
			l.advance()
			tok.Kind = TokAndAnd
		case '=':
			l.advance()
			tok.Kind = TokAmpEq
		default:
			tok.Kind = TokAmp
		}
	case '|':
		switch l.peek() {
		case '|':
			l.advance()
			tok.Kind = TokOrOr
		case '=':
			l.advance()
			tok.Kind = TokPipeEq
		default:
			tok.Kind = TokPipe
		}
	case '<':
		switch l.peek() {
		case '<':
			l.advance()
			tok.Kind = two('=', TokShlEq, TokShl)
		case '=':
			l.advance()
			tok.Kind = TokLe
		default:
			tok.Kind = TokLt
		}
	case '>':
		switch l.peek() {
		case '>':
			l.advance()
			tok.Kind = two('=', TokShrEq, TokShr)
		case '=':
			l.advance()
			tok.Kind = TokGe
		default:
			tok.Kind = TokGt
		}
	default:
		l.errf("unexpected character %q", c)
		return l.next()
	}
	return tok
}

func (l *lexer) number(tok Token) Token {
	start := l.pos
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for isHexDigit(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			l.errf("bad hex literal %q", l.src[start:l.pos])
		}
		tok.Kind, tok.Int = TokIntLit, int64(int32(v))
		return tok
	}
	for isDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			l.errf("bad float literal %q", text)
		}
		tok.Kind, tok.Flt = TokFloatLit, v
		return tok
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		l.errf("bad integer literal %q", text)
	}
	tok.Kind, tok.Int = TokIntLit, v
	return tok
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) escape() byte {
	c := l.advance()
	if c != '\\' {
		return c
	}
	if l.pos >= len(l.src) {
		l.errf("trailing backslash")
		return 0
	}
	switch e := l.advance(); e {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	default:
		l.errf("unknown escape \\%c", e)
		return e
	}
}

func (l *lexer) stringLit(tok Token) Token {
	l.advance() // opening quote
	var b []byte
	for {
		if l.pos >= len(l.src) {
			l.errf("unterminated string literal")
			break
		}
		if l.peek() == '"' {
			l.advance()
			break
		}
		b = append(b, l.escape())
	}
	tok.Kind, tok.Str = TokStrLit, string(b)
	return tok
}

func (l *lexer) charLit(tok Token) Token {
	l.advance() // opening quote
	if l.pos >= len(l.src) {
		l.errf("unterminated character literal")
		tok.Kind = TokCharLit
		return tok
	}
	v := l.escape()
	if l.peek() == '\'' {
		l.advance()
	} else {
		l.errf("unterminated character literal")
	}
	tok.Kind, tok.Int = TokCharLit, int64(v)
	return tok
}
