package mcc

import "fmt"

// Kind enumerates MC type kinds.
type Kind uint8

const (
	KVoid Kind = iota
	KInt
	KChar
	KFloat
	KDouble
	KPtr
	KArray
)

// Type is an MC type. Types are structural; compare with Same.
type Type struct {
	K    Kind
	Elem *Type // KPtr, KArray
	N    int   // KArray length
}

// Singleton scalar types.
var (
	TypeVoid   = &Type{K: KVoid}
	TypeInt    = &Type{K: KInt}
	TypeChar   = &Type{K: KChar}
	TypeFloat  = &Type{K: KFloat}
	TypeDouble = &Type{K: KDouble}
)

// PtrTo returns a pointer type.
func PtrTo(e *Type) *Type { return &Type{K: KPtr, Elem: e} }

// ArrayOf returns an array type.
func ArrayOf(e *Type, n int) *Type { return &Type{K: KArray, Elem: e, N: n} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.K {
	case KChar:
		return 1
	case KInt, KFloat, KPtr:
		return 4
	case KDouble:
		return 8
	case KArray:
		return t.N * t.Elem.Size()
	default:
		return 0
	}
}

// Align returns the required alignment in bytes.
func (t *Type) Align() int {
	if t.K == KArray {
		return t.Elem.Align()
	}
	if s := t.Size(); s > 0 {
		return s
	}
	return 1
}

// IsInteger reports whether t is int or char.
func (t *Type) IsInteger() bool { return t.K == KInt || t.K == KChar }

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.K == KFloat || t.K == KDouble }

// IsArith reports whether t participates in arithmetic.
func (t *Type) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsPtr reports whether t is a pointer.
func (t *Type) IsPtr() bool { return t.K == KPtr }

// IsScalar reports whether a value of t fits in a register.
func (t *Type) IsScalar() bool { return t.IsArith() || t.IsPtr() }

// Decay converts arrays to element pointers (the C rule).
func (t *Type) Decay() *Type {
	if t.K == KArray {
		return PtrTo(t.Elem)
	}
	return t
}

// Same reports structural type equality.
func (t *Type) Same(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.K != o.K {
		return false
	}
	switch t.K {
	case KPtr:
		return t.Elem.Same(o.Elem)
	case KArray:
		return t.N == o.N && t.Elem.Same(o.Elem)
	default:
		return true
	}
}

// String renders the type in C syntax.
func (t *Type) String() string {
	switch t.K {
	case KVoid:
		return "void"
	case KInt:
		return "int"
	case KChar:
		return "char"
	case KFloat:
		return "float"
	case KDouble:
		return "double"
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.N)
	default:
		return "?"
	}
}

// Common returns the usual-arithmetic-conversion result type of two
// arithmetic operand types: double > float > int (char promotes to int).
func Common(a, b *Type) *Type {
	if a.K == KDouble || b.K == KDouble {
		return TypeDouble
	}
	if a.K == KFloat || b.K == KFloat {
		return TypeFloat
	}
	return TypeInt
}
