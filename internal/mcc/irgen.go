package mcc

import (
	"fmt"

	"repro/internal/isa"
)

// irgen lowers one checked function to IR.
type irgen struct {
	f       *IRFunc
	prog    *Program
	cur     *Block
	breakTo []int
	contTo  []int
}

// GenIR lowers all functions of a program to IR.
func GenIR(prog *Program) ([]*IRFunc, error) {
	var out []*IRFunc
	for _, fd := range prog.Funcs {
		f, err := genFunc(prog, fd)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func genFunc(prog *Program, fd *FuncDecl) (*IRFunc, error) {
	g := &irgen{
		f:    &IRFunc{Name: fd.Sym.Name, Ret: fd.Sym.Ret},
		prog: prog,
	}
	entry := g.f.NewBlock()
	g.cur = entry

	// Parameters arrive in fresh vregs; address-taken ones are demoted to
	// stack slots with a store at entry.
	intArgs, fpArgs := 0, 0
	for _, p := range fd.Sym.Params {
		t := tyOf(p.Ty)
		v := g.f.NewVReg(t)
		g.f.Params = append(g.f.Params, v)
		if t.IsFloat() {
			fpArgs++
			if fpArgs > isa.NumArgRegs {
				g.f.NStackArgs++
			}
		} else {
			intArgs++
			if intArgs > isa.NumArgRegs {
				g.f.NStackArgs++
			}
		}
		if p.Slot == -2 {
			p.Slot = g.newSlot(p.Name, p.Ty)
			g.emit(Ins{Op: IStore, Ty: t, A: v, AK: AKSlot, Slot: p.Slot,
				Size: uint8(p.Ty.Size())})
			p.VReg = -1
		} else {
			p.VReg = int(v)
		}
	}

	g.genStmt(fd.Body)

	// Implicit return at the end of the function.
	if g.cur.Term() == nil {
		if fd.Sym.Ret.K == KVoid {
			g.emit(Ins{Op: IRet, A: NoV})
		} else {
			z := g.constInt(0)
			g.emit(Ins{Op: IRet, Ty: tyOf(fd.Sym.Ret), A: z})
		}
	}
	// Terminate any dangling blocks (unreachable code after break etc.).
	for _, b := range g.f.Blocks {
		if b.Term() == nil {
			b.Ins = append(b.Ins, Ins{Op: IRet, A: NoV})
		}
	}
	return g.f, nil
}

func tyOf(t *Type) Ty {
	switch t.K {
	case KFloat:
		return TF32
	case KDouble:
		return TF64
	default:
		return TI32
	}
}

func (g *irgen) emit(in Ins) *Ins {
	if in.A == 0 && in.Op == IBad {
		panic("mcc: emitting bad instruction")
	}
	if g.cur.Term() != nil {
		// Unreachable code: emit into a fresh dead block so the IR stays
		// well formed; DCE never reaches it.
		g.cur = g.f.NewBlock()
	}
	g.cur.Ins = append(g.cur.Ins, in)
	return &g.cur.Ins[len(g.cur.Ins)-1]
}

func (g *irgen) newSlot(name string, t *Type) int {
	g.f.Slots = append(g.f.Slots, SlotInfo{Name: name, Size: t.Size(), Align: t.Align()})
	return len(g.f.Slots) - 1
}

func (g *irgen) constInt(v int64) VReg {
	d := g.f.NewVReg(TI32)
	g.emit(Ins{Op: IConst, Ty: TI32, Dst: d, Imm: v})
	return d
}

func (g *irgen) constFloat(v float64, t Ty) VReg {
	d := g.f.NewVReg(t)
	g.emit(Ins{Op: IConst, Ty: t, Dst: d, FImm: v})
	return d
}

func (g *irgen) brTo(id int) { g.emit(Ins{Op: IBr, Imm: int64(id)}) }

// --- statements -------------------------------------------------------------

func (g *irgen) genStmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		for _, inner := range st.List {
			g.genStmt(inner)
		}
	case *ExprStmt:
		g.genExpr(st.X)
	case *DeclStmt:
		g.genDecl(st)
	case *IfStmt:
		g.genIf(st)
	case *WhileStmt:
		g.genWhile(st)
	case *ForStmt:
		g.genFor(st)
	case *ReturnStmt:
		if st.X == nil {
			g.emit(Ins{Op: IRet, A: NoV})
		} else {
			v := g.genExpr(st.X)
			g.emit(Ins{Op: IRet, Ty: tyOf(st.X.Type()), A: v})
		}
	case *BreakStmt:
		g.brTo(g.breakTo[len(g.breakTo)-1])
	case *ContinueStmt:
		g.brTo(g.contTo[len(g.contTo)-1])
	default:
		panic(fmt.Sprintf("mcc: unknown statement %T", s))
	}
}

func (g *irgen) genDecl(st *DeclStmt) {
	sym := st.Sym
	switch {
	case sym.Ty.K == KArray || sym.Slot == -2:
		sym.Slot = g.newSlot(sym.Name, sym.Ty)
		if st.Init != nil {
			v := g.genExpr(st.Init)
			g.emit(Ins{Op: IStore, Ty: tyOf(sym.Ty), A: v, AK: AKSlot,
				Slot: sym.Slot, Size: uint8(sym.Ty.Size())})
		}
	default:
		v := g.f.NewVReg(tyOf(sym.Ty))
		sym.VReg = int(v)
		if st.Init != nil {
			iv := g.genExpr(st.Init)
			g.emit(Ins{Op: IMov, Ty: tyOf(sym.Ty), Dst: v, A: iv})
		}
	}
}

func (g *irgen) genIf(st *IfStmt) {
	thenB := g.f.NewBlock()
	exitB := g.f.NewBlock()
	elseB := exitB
	if st.Else != nil {
		elseB = g.f.NewBlock()
	}
	g.genCond(st.Cond, thenB.ID, elseB.ID)
	g.cur = thenB
	g.genStmt(st.Then)
	if g.cur.Term() == nil {
		g.brTo(exitB.ID)
	}
	if st.Else != nil {
		g.cur = elseB
		g.genStmt(st.Else)
		if g.cur.Term() == nil {
			g.brTo(exitB.ID)
		}
	}
	g.cur = exitB
}

func (g *irgen) genWhile(st *WhileStmt) {
	pre := g.cur.ID
	firstNew := len(g.f.Blocks)
	headB := g.f.NewBlock()
	bodyB := g.f.NewBlock()
	exitB := g.f.NewBlock()
	if st.Post {
		g.brTo(bodyB.ID) // do-while enters the body first
	} else {
		g.brTo(headB.ID)
	}
	g.cur = headB
	g.genCond(st.Cond, bodyB.ID, exitB.ID)
	g.cur = bodyB
	g.breakTo = append(g.breakTo, exitB.ID)
	g.contTo = append(g.contTo, headB.ID)
	g.genStmt(st.Body)
	g.breakTo = g.breakTo[:len(g.breakTo)-1]
	g.contTo = g.contTo[:len(g.contTo)-1]
	if g.cur.Term() == nil {
		g.brTo(headB.ID)
	}
	g.recordLoop(pre, headB.ID, firstNew, exitB.ID)
	g.cur = exitB
}

// recordLoop marks every block created since firstNew (except the exit
// block) as a member of the loop headed at head.
func (g *irgen) recordLoop(pre, head, firstNew, exit int) {
	members := map[int]bool{}
	for i := firstNew; i < len(g.f.Blocks); i++ {
		id := g.f.Blocks[i].ID
		if id != exit {
			members[id] = true
		}
	}
	g.f.Loops = append(g.f.Loops, Loop{Pre: pre, Head: head, Blocks: members})
}

func (g *irgen) genFor(st *ForStmt) {
	if st.Init != nil {
		g.genStmt(st.Init)
	}
	pre := g.cur.ID
	firstNew := len(g.f.Blocks)
	headB := g.f.NewBlock()
	bodyB := g.f.NewBlock()
	stepB := g.f.NewBlock()
	exitB := g.f.NewBlock()
	g.brTo(headB.ID)
	g.cur = headB
	if st.Cond != nil {
		g.genCond(st.Cond, bodyB.ID, exitB.ID)
	} else {
		g.brTo(bodyB.ID)
	}
	g.cur = bodyB
	g.breakTo = append(g.breakTo, exitB.ID)
	g.contTo = append(g.contTo, stepB.ID)
	g.genStmt(st.Body)
	g.breakTo = g.breakTo[:len(g.breakTo)-1]
	g.contTo = g.contTo[:len(g.contTo)-1]
	if g.cur.Term() == nil {
		g.brTo(stepB.ID)
	}
	g.cur = stepB
	if st.Step != nil {
		g.genExpr(st.Step)
	}
	g.brTo(headB.ID)
	g.recordLoop(pre, headB.ID, firstNew, exitB.ID)
	g.cur = exitB
}

// genCond emits control flow for a boolean context.
func (g *irgen) genCond(e Expr, tBlk, fBlk int) {
	switch x := e.(type) {
	case *IntLit:
		if x.Val != 0 {
			g.brTo(tBlk)
		} else {
			g.brTo(fBlk)
		}
		return
	case *Unary:
		if x.Op == TokBang {
			g.genCond(x.X, fBlk, tBlk)
			return
		}
	case *Binary:
		switch x.Op {
		case TokAndAnd:
			mid := g.f.NewBlock()
			g.genCond(x.X, mid.ID, fBlk)
			g.cur = mid
			g.genCond(x.Y, tBlk, fBlk)
			return
		case TokOrOr:
			mid := g.f.NewBlock()
			g.genCond(x.X, tBlk, mid.ID)
			g.cur = mid
			g.genCond(x.Y, tBlk, fBlk)
			return
		case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
			v := g.genCompare(x)
			g.emit(Ins{Op: ICondBr, A: v, Imm: int64(tBlk), Imm2: int64(fBlk)})
			return
		}
	}
	v := g.genExpr(e)
	g.emit(Ins{Op: ICondBr, A: v, Imm: int64(tBlk), Imm2: int64(fBlk)})
}

// --- expressions -------------------------------------------------------------

var condOfTok = map[TokKind]isa.Cond{
	TokEq: isa.EQ, TokNe: isa.NE, TokLt: isa.LT, TokLe: isa.LE,
	TokGt: isa.GT, TokGe: isa.GE,
}

func (g *irgen) genCompare(x *Binary) VReg {
	a := g.genExpr(x.X)
	b := g.genExpr(x.Y)
	d := g.f.NewVReg(TI32)
	t := tyOf(x.X.Type())
	cond := condOfTok[x.Op]
	if t.IsFloat() {
		g.emit(Ins{Op: IFCmp, Ty: t, Cond: cond, Dst: d, A: a, B: b})
	} else {
		// Pointer comparisons are unsigned; MC addresses stay below 2^31,
		// so the signed forms coincide — use them uniformly like the
		// paper's compilers do.
		g.emit(Ins{Op: ICmp, Ty: TI32, Cond: cond, Dst: d, A: a, B: b})
	}
	return d
}

// genExpr evaluates e for value, returning the holding vreg (NoV for void).
func (g *irgen) genExpr(e Expr) VReg {
	switch x := e.(type) {
	case *IntLit:
		return g.constInt(x.Val)
	case *FloatLit:
		return g.constFloat(x.Val, tyOf(x.Ty))
	case *StrLit:
		d := g.f.NewVReg(TI32)
		g.emit(Ins{Op: IAddr, Ty: TI32, Dst: d, AK: AKGlobal, Sym: x.Label})
		return d
	case *Ident:
		return g.genLoadSym(x.Sym)
	case *Conv:
		return g.genConv(x)
	case *Unary:
		return g.genUnary(x)
	case *Binary:
		return g.genBinary(x)
	case *Assign:
		return g.genAssign(x)
	case *Index:
		ad := g.genAddr(x)
		return g.loadFrom(ad, x.Type())
	case *Call:
		return g.genCall(x)
	}
	panic(fmt.Sprintf("mcc: unknown expression %T", e))
}

func (g *irgen) genLoadSym(sym *Sym) VReg {
	if sym.VReg >= 0 {
		return VReg(sym.VReg)
	}
	switch sym.Kind {
	case SymGlobal:
		return g.loadFrom(addrDesc{ak: AKGlobal, sym: sym.Name}, sym.Ty)
	default:
		return g.loadFrom(addrDesc{ak: AKSlot, slot: sym.Slot}, sym.Ty)
	}
}

type addrDesc struct {
	ak   AddrKind
	base VReg
	sym  string
	slot int
	off  int32
}

func (g *irgen) loadFrom(ad addrDesc, t *Type) VReg {
	if t.K == KArray {
		// Array value = its address (decay happens here for globals/slots).
		return g.addrToReg(ad)
	}
	d := g.f.NewVReg(tyOf(t))
	g.emit(Ins{Op: ILoad, Ty: tyOf(t), Dst: d, AK: ad.ak, A: ad.base,
		Sym: ad.sym, Slot: ad.slot, Off: ad.off,
		Size: uint8(t.Size()), Signed: t.K == KChar})
	return d
}

func (g *irgen) storeTo(ad addrDesc, v VReg, t *Type) {
	g.emit(Ins{Op: IStore, Ty: tyOf(t), A: v, B: ad.base, AK: ad.ak,
		Sym: ad.sym, Slot: ad.slot, Off: ad.off, Size: uint8(t.Size())})
}

func (g *irgen) addrToReg(ad addrDesc) VReg {
	if ad.ak == AKReg && ad.off == 0 {
		return ad.base
	}
	d := g.f.NewVReg(TI32)
	g.emit(Ins{Op: IAddr, Ty: TI32, Dst: d, AK: ad.ak, A: ad.base,
		Sym: ad.sym, Slot: ad.slot, Off: ad.off})
	return d
}

// genAddr computes the address of an lvalue (or decayed array).
func (g *irgen) genAddr(e Expr) addrDesc {
	switch x := e.(type) {
	case *Ident:
		sym := x.Sym
		switch {
		case sym.Kind == SymGlobal:
			return addrDesc{ak: AKGlobal, sym: sym.Name}
		case sym.Slot >= 0:
			return addrDesc{ak: AKSlot, slot: sym.Slot}
		default:
			panic("mcc: address of register variable " + sym.Name)
		}
	case *StrLit:
		return addrDesc{ak: AKGlobal, sym: x.Label}
	case *Index:
		elem := x.Type()
		base := g.genAddrOfPointer(x.X)
		if lit, ok := x.I.(*IntLit); ok {
			base.off += int32(lit.Val) * int32(elem.Size())
			return base
		}
		idx := g.genExpr(x.I)
		scaled := g.scale(idx, elem.Size())
		b := g.addrToReg(base)
		sum := g.f.NewVReg(TI32)
		g.emit(Ins{Op: IAdd, Ty: TI32, Dst: sum, A: b, B: scaled})
		return addrDesc{ak: AKReg, base: sum}
	case *Unary:
		if x.Op == TokStar {
			p := g.genExpr(x.X)
			return addrDesc{ak: AKReg, base: p}
		}
	case *Conv:
		// Decayed array or pointer cast used as lvalue base.
		return g.genAddr(x.X)
	}
	panic(fmt.Sprintf("mcc: not an lvalue: %T", e))
}

// genAddrOfPointer evaluates a pointer-valued expression as an address
// descriptor, folding decayed arrays into direct global/slot bases.
func (g *irgen) genAddrOfPointer(e Expr) addrDesc {
	if c, ok := e.(*Conv); ok {
		inner := c.X
		if id, ok := inner.(*Ident); ok && id.Sym.Ty.K == KArray {
			return g.genAddr(id)
		}
	}
	return addrDesc{ak: AKReg, base: g.genExpr(e)}
}

// scale multiplies an index vreg by a (power-of-two) element size.
func (g *irgen) scale(v VReg, size int) VReg {
	if size == 1 {
		return v
	}
	sh := 0
	for s := size; s > 1; s >>= 1 {
		sh++
	}
	c := g.constInt(int64(sh))
	d := g.f.NewVReg(TI32)
	g.emit(Ins{Op: IShl, Ty: TI32, Dst: d, A: v, B: c})
	return d
}

func (g *irgen) genConv(x *Conv) VReg {
	src := x.X
	st, dt := src.Type(), x.Ty
	// Array decay / pointer reinterpretation: the value is unchanged.
	if st.K == KArray {
		return g.addrToReg(g.genAddr(src))
	}
	v := g.genExpr(src)
	if dt.K == KVoid {
		return NoV
	}
	sTy, dTy := tyOf(st), tyOf(dt)
	if sTy == dTy {
		return v
	}
	d := g.f.NewVReg(dTy)
	g.emit(Ins{Op: ICvt, Ty: dTy, SrcTy: sTy, Dst: d, A: v})
	return d
}

func (g *irgen) genUnary(x *Unary) VReg {
	switch x.Op {
	case TokMinus:
		v := g.genExpr(x.X)
		d := g.f.NewVReg(tyOf(x.Ty))
		op := INeg
		if tyOf(x.Ty).IsFloat() {
			op = IFNeg
		}
		g.emit(Ins{Op: op, Ty: tyOf(x.Ty), Dst: d, A: v})
		return d
	case TokTilde:
		v := g.genExpr(x.X)
		d := g.f.NewVReg(TI32)
		g.emit(Ins{Op: INot, Ty: TI32, Dst: d, A: v})
		return d
	case TokBang:
		v := g.genExpr(x.X)
		z := g.constInt(0)
		d := g.f.NewVReg(TI32)
		ty := tyOf(x.X.Type())
		if ty.IsFloat() {
			fz := g.constFloat(0, ty)
			g.emit(Ins{Op: IFCmp, Ty: ty, Cond: isa.EQ, Dst: d, A: v, B: fz})
		} else {
			g.emit(Ins{Op: ICmp, Ty: TI32, Cond: isa.EQ, Dst: d, A: v, B: z})
		}
		return d
	case TokStar:
		p := g.genExpr(x.X)
		return g.loadFrom(addrDesc{ak: AKReg, base: p}, x.Ty)
	case TokAmp:
		return g.addrToReg(g.genAddr(x.X))
	case TokInc, TokDec:
		return g.genIncDec(x)
	}
	panic("mcc: bad unary op")
}

func (g *irgen) genIncDec(x *Unary) VReg {
	t := x.Ty
	step := int64(1)
	if t.IsPtr() {
		step = int64(t.Elem.Size())
	}
	op := IAdd
	fop := IFAdd
	if x.Op == TokDec {
		op, fop = ISub, IFSub
	}

	// Register variable: operate in place.
	if id, ok := x.X.(*Ident); ok && id.Sym.VReg >= 0 {
		v := VReg(id.Sym.VReg)
		var old VReg
		if x.Post {
			old = g.f.NewVReg(tyOf(t))
			g.emit(Ins{Op: IMov, Ty: tyOf(t), Dst: old, A: v})
		}
		if tyOf(t).IsFloat() {
			one := g.constFloat(1, tyOf(t))
			g.emit(Ins{Op: fop, Ty: tyOf(t), Dst: v, A: v, B: one})
		} else {
			c := g.constInt(step)
			g.emit(Ins{Op: op, Ty: TI32, Dst: v, A: v, B: c})
		}
		if x.Post {
			return old
		}
		return v
	}

	// Memory lvalue: load, modify, store (address computed once).
	ad := g.genAddr(x.X)
	old := g.loadFrom(ad, t)
	var nw VReg
	if tyOf(t).IsFloat() {
		one := g.constFloat(1, tyOf(t))
		nw = g.f.NewVReg(tyOf(t))
		g.emit(Ins{Op: fop, Ty: tyOf(t), Dst: nw, A: old, B: one})
	} else {
		c := g.constInt(step)
		nw = g.f.NewVReg(TI32)
		g.emit(Ins{Op: op, Ty: TI32, Dst: nw, A: old, B: c})
	}
	g.storeTo(ad, nw, t)
	if x.Post {
		return old
	}
	return nw
}

var intOpOfTok = map[TokKind]IOp{
	TokPlus: IAdd, TokMinus: ISub, TokStar: IMul, TokSlash: IDiv,
	TokPercent: IRem, TokAmp: IAnd, TokPipe: IOr, TokCaret: IXor,
	TokShl: IShl, TokShr: ISra, // C >> on signed int is arithmetic here
}

var fltOpOfTok = map[TokKind]IOp{
	TokPlus: IFAdd, TokMinus: IFSub, TokStar: IFMul, TokSlash: IFDiv,
}

func (g *irgen) genBinary(x *Binary) VReg {
	switch x.Op {
	case TokAndAnd, TokOrOr:
		// Value context: evaluate via control flow into a temporary.
		d := g.f.NewVReg(TI32)
		tB := g.f.NewBlock()
		fB := g.f.NewBlock()
		exitB := g.f.NewBlock()
		g.genCond(x, tB.ID, fB.ID)
		g.cur = tB
		one := g.constInt(1)
		g.emit(Ins{Op: IMov, Ty: TI32, Dst: d, A: one})
		g.brTo(exitB.ID)
		g.cur = fB
		zero := g.constInt(0)
		g.emit(Ins{Op: IMov, Ty: TI32, Dst: d, A: zero})
		g.brTo(exitB.ID)
		g.cur = exitB
		return d

	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		return g.genCompare(x)
	}

	xt, yt := x.X.Type(), x.Y.Type()
	// Pointer arithmetic.
	if xt.IsPtr() || yt.IsPtr() {
		return g.genPtrArith(x)
	}

	a := g.genExpr(x.X)
	b := g.genExpr(x.Y)
	t := tyOf(x.Ty)
	d := g.f.NewVReg(t)
	if t.IsFloat() {
		g.emit(Ins{Op: fltOpOfTok[x.Op], Ty: t, Dst: d, A: a, B: b})
	} else {
		g.emit(Ins{Op: intOpOfTok[x.Op], Ty: TI32, Dst: d, A: a, B: b})
	}
	return d
}

func (g *irgen) genPtrArith(x *Binary) VReg {
	xt, yt := x.X.Type(), x.Y.Type()
	switch {
	case xt.IsPtr() && yt.IsPtr(): // ptr - ptr
		a := g.genExpr(x.X)
		b := g.genExpr(x.Y)
		diff := g.f.NewVReg(TI32)
		g.emit(Ins{Op: ISub, Ty: TI32, Dst: diff, A: a, B: b})
		size := xt.Elem.Size()
		if size == 1 {
			return diff
		}
		sh := 0
		for s := size; s > 1; s >>= 1 {
			sh++
		}
		c := g.constInt(int64(sh))
		d := g.f.NewVReg(TI32)
		g.emit(Ins{Op: ISra, Ty: TI32, Dst: d, A: diff, B: c})
		return d
	case xt.IsPtr():
		p := g.genExpr(x.X)
		i := g.genExpr(x.Y)
		scaled := g.scale(i, xt.Elem.Size())
		d := g.f.NewVReg(TI32)
		op := IAdd
		if x.Op == TokMinus {
			op = ISub
		}
		g.emit(Ins{Op: op, Ty: TI32, Dst: d, A: p, B: scaled})
		return d
	default: // int + ptr
		i := g.genExpr(x.X)
		p := g.genExpr(x.Y)
		scaled := g.scale(i, yt.Elem.Size())
		d := g.f.NewVReg(TI32)
		g.emit(Ins{Op: IAdd, Ty: TI32, Dst: d, A: p, B: scaled})
		return d
	}
}

func (g *irgen) genAssign(x *Assign) VReg {
	lt := x.LHS.Type()

	// Plain assignment.
	if x.Op == TokAssign {
		v := g.genExpr(x.RHS)
		g.storeValue(x.LHS, v, lt)
		return v
	}

	// Compound assignment: evaluate the lvalue address once.
	binOp := map[TokKind]TokKind{
		TokPlusEq: TokPlus, TokMinusEq: TokMinus, TokStarEq: TokStar,
		TokSlashEq: TokSlash, TokPercentEq: TokPercent, TokAmpEq: TokAmp,
		TokPipeEq: TokPipe, TokCaretEq: TokCaret, TokShlEq: TokShl,
		TokShrEq: TokShr,
	}[x.Op]

	// Pointer += / -=.
	if lt.IsPtr() {
		old, ad, reg := g.loadLValue(x.LHS, lt)
		i := g.genExpr(x.RHS)
		scaled := g.scale(i, lt.Elem.Size())
		op := IAdd
		if binOp == TokMinus {
			op = ISub
		}
		nw := g.f.NewVReg(TI32)
		g.emit(Ins{Op: op, Ty: TI32, Dst: nw, A: old, B: scaled})
		g.storeBack(ad, reg, nw, lt)
		return nw
	}

	ct := Common(lt, x.RHS.Type()) // computation type (sema converted RHS)
	old, ad, reg := g.loadLValue(x.LHS, lt)
	// Convert the loaded value to the computation type if needed.
	if tyOf(lt) != tyOf(ct) {
		cv := g.f.NewVReg(tyOf(ct))
		g.emit(Ins{Op: ICvt, Ty: tyOf(ct), SrcTy: tyOf(lt), Dst: cv, A: old})
		old = cv
	}
	r := g.genExpr(x.RHS)
	nw := g.f.NewVReg(tyOf(ct))
	if tyOf(ct).IsFloat() {
		g.emit(Ins{Op: fltOpOfTok[binOp], Ty: tyOf(ct), Dst: nw, A: old, B: r})
	} else {
		g.emit(Ins{Op: intOpOfTok[binOp], Ty: TI32, Dst: nw, A: old, B: r})
	}
	// Convert back for the store.
	res := nw
	if tyOf(ct) != tyOf(lt) {
		cv := g.f.NewVReg(tyOf(lt))
		g.emit(Ins{Op: ICvt, Ty: tyOf(lt), SrcTy: tyOf(ct), Dst: cv, A: nw})
		res = cv
	}
	g.storeBack(ad, reg, res, lt)
	return res
}

// loadLValue loads an lvalue's current value and returns how to store back:
// either a register variable (reg >= 0) or an address descriptor.
func (g *irgen) loadLValue(lhs Expr, t *Type) (VReg, addrDesc, int) {
	if id, ok := lhs.(*Ident); ok && id.Sym.VReg >= 0 {
		return VReg(id.Sym.VReg), addrDesc{}, id.Sym.VReg
	}
	ad := g.genAddr(lhs)
	return g.loadFrom(ad, t), ad, -1
}

func (g *irgen) storeBack(ad addrDesc, reg int, v VReg, t *Type) {
	if reg >= 0 {
		g.emit(Ins{Op: IMov, Ty: tyOf(t), Dst: VReg(reg), A: v})
		return
	}
	g.storeTo(ad, v, t)
}

func (g *irgen) storeValue(lhs Expr, v VReg, t *Type) {
	if id, ok := lhs.(*Ident); ok && id.Sym.VReg >= 0 {
		g.emit(Ins{Op: IMov, Ty: tyOf(t), Dst: VReg(id.Sym.VReg), A: v})
		return
	}
	ad := g.genAddr(lhs)
	g.storeTo(ad, v, t)
}

func (g *irgen) genCall(x *Call) VReg {
	var args []VReg
	for _, a := range x.Args {
		args = append(args, g.genExpr(a))
	}
	var d = NoV
	retTy := TI32
	if x.Ty.K != KVoid {
		retTy = tyOf(x.Ty)
		d = g.f.NewVReg(retTy)
	}
	if !IsBuiltin(x.Name) {
		g.f.HasCall = true
		if n := len(args) - isa.NumArgRegs; n > g.f.MaxOutArgs {
			// Conservative: assumes overflow counted across both classes.
			g.f.MaxOutArgs = n
		}
	}
	g.emit(Ins{Op: ICall, Ty: retTy, Dst: d, A: NoV, Sym: x.Name, Args: args,
		Builtin: IsBuiltin(x.Name)})
	return d
}
