package mcc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Differential testing: random integer expressions are rendered as MC
// source and simultaneously evaluated by a Go model of MC's semantics
// (int32 arithmetic, C-truncated division, shift counts masked to 5
// bits). The compiled program must print the model's values on every
// target configuration — this cross-checks the whole stack (parser,
// optimizer, allocator, codegen, assembler, encoders, simulator) and
// both software divide paths.

type exprNode struct {
	src string
	val int32
}

type exprGen struct {
	rng  *rand.Rand
	vars map[string]int32
}

func (g *exprGen) leaf() exprNode {
	if g.rng.Intn(3) == 0 && len(g.vars) > 0 {
		names := make([]string, 0, len(g.vars))
		for n := range g.vars {
			names = append(names, n)
		}
		n := names[g.rng.Intn(len(names))]
		return exprNode{src: n, val: g.vars[n]}
	}
	v := int32(g.rng.Intn(2000) - 1000)
	if v < 0 {
		return exprNode{src: fmt.Sprintf("(%d)", v), val: v}
	}
	return exprNode{src: fmt.Sprintf("%d", v), val: v}
}

func (g *exprGen) gen(depth int) exprNode {
	if depth <= 0 {
		return g.leaf()
	}
	a := g.gen(depth - 1)
	b := g.gen(depth - 1)
	switch g.rng.Intn(14) {
	case 0:
		return exprNode{src: "(" + a.src + " + " + b.src + ")", val: a.val + b.val}
	case 1:
		return exprNode{src: "(" + a.src + " - " + b.src + ")", val: a.val - b.val}
	case 2:
		return exprNode{src: "(" + a.src + " * " + b.src + ")", val: a.val * b.val}
	case 3:
		// Division: force a positive nonzero divisor.
		d := (b.val & 1023) | 1
		src := "(" + a.src + " / ((" + b.src + " & 1023) | 1))"
		return exprNode{src: src, val: a.val / d}
	case 4:
		d := (b.val & 1023) | 1
		src := "(" + a.src + " % ((" + b.src + " & 1023) | 1))"
		return exprNode{src: src, val: a.val % d}
	case 5:
		return exprNode{src: "(" + a.src + " & " + b.src + ")", val: a.val & b.val}
	case 6:
		return exprNode{src: "(" + a.src + " | " + b.src + ")", val: a.val | b.val}
	case 7:
		return exprNode{src: "(" + a.src + " ^ " + b.src + ")", val: a.val ^ b.val}
	case 8:
		sh := int32(g.rng.Intn(12))
		return exprNode{src: fmt.Sprintf("(%s << %d)", a.src, sh), val: a.val << uint(sh)}
	case 9:
		sh := int32(g.rng.Intn(12))
		return exprNode{src: fmt.Sprintf("(%s >> %d)", a.src, sh), val: a.val >> uint(sh)}
	case 10:
		v := int32(0)
		if a.val < b.val {
			v = 1
		}
		return exprNode{src: "(" + a.src + " < " + b.src + ")", val: v}
	case 11:
		v := int32(0)
		if a.val == b.val {
			v = 1
		}
		return exprNode{src: "(" + a.src + " == " + b.src + ")", val: v}
	case 12:
		return exprNode{src: "(-" + a.src + ")", val: -a.val}
	default:
		return exprNode{src: "(~" + a.src + ")", val: ^a.val}
	}
}

func TestDifferentialExpressions(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing is slow")
	}
	rng := rand.New(rand.NewSource(20260705))
	for prog := 0; prog < 12; prog++ {
		g := &exprGen{rng: rng, vars: map[string]int32{}}
		var b strings.Builder
		b.WriteString("int main() {\n")
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("v%d", i)
			val := int32(rng.Intn(100000) - 50000)
			g.vars[name] = val
			fmt.Fprintf(&b, "\tint %s = %d;\n", name, val)
		}
		var want []string
		for i := 0; i < 8; i++ {
			e := g.gen(2 + rng.Intn(2))
			fmt.Fprintf(&b, "\tprint_int(%s); print_char(' ');\n", e.src)
			want = append(want, fmt.Sprintf("%d", e.val))
		}
		b.WriteString("\treturn 0;\n}\n")
		src := b.String()
		expect := strings.Join(want, " ") + " "

		for _, spec := range isa.PaperConfigs() {
			c, err := Compile("fuzz.mc", src, spec)
			if err != nil {
				t.Fatalf("program %d on %s: %v\n%s", prog, spec, err, src)
			}
			m, err := sim.New(c.Image)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(50_000_000); err != nil {
				t.Fatalf("program %d on %s: %v\n%s", prog, spec, err, src)
			}
			if got := m.Output.String(); got != expect {
				t.Fatalf("program %d on %s:\n got  %q\n want %q\nsource:\n%s",
					prog, spec, got, expect, src)
			}
		}
	}
}

// TestDifferentialLoops runs randomized accumulation loops: the same
// differential idea, but exercising control flow, compare/branch fusion
// and loop-invariant hoisting.
func TestDifferentialLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing is slow")
	}
	rng := rand.New(rand.NewSource(42))
	for prog := 0; prog < 8; prog++ {
		n := 20 + rng.Intn(50)
		mul := int32(rng.Intn(7) + 1)
		mask := int32(rng.Intn(4096))
		mod := int32(rng.Intn(97) + 3)
		start := int32(rng.Intn(1000))

		// Go model.
		acc := start
		for i := int32(0); i < int32(n); i++ {
			if i%2 == 0 {
				acc += i * mul
			} else {
				acc ^= i & mask
			}
			if acc > 100000 {
				acc %= mod
			}
		}

		src := fmt.Sprintf(`
int main() {
	int acc = %d;
	int i;
	for (i = 0; i < %d; i++) {
		if (i %% 2 == 0) acc += i * %d;
		else acc ^= i & %d;
		if (acc > 100000) acc %%= %d;
	}
	print_int(acc);
	return 0;
}`, start, n, mul, mask, mod)
		expect := fmt.Sprintf("%d", acc)

		for _, spec := range isa.PaperConfigs() {
			c, err := Compile("loop.mc", src, spec)
			if err != nil {
				t.Fatalf("program %d on %s: %v", prog, spec, err)
			}
			m, err := sim.New(c.Image)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(50_000_000); err != nil {
				t.Fatalf("program %d on %s: %v", prog, spec, err)
			}
			if got := m.Output.String(); got != expect {
				t.Fatalf("program %d on %s: got %q want %q\n%s", prog, spec, got, expect, src)
			}
		}
	}
}
