package mcc

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

// runMC compiles and runs an MC program under one config, returning its
// output.
func runMC(t *testing.T, src string, spec *isa.Spec) (string, *sim.Machine, *Compiled) {
	t.Helper()
	c, err := Compile("test.mc", src, spec)
	if err != nil {
		t.Fatalf("compile(%s): %v", spec, err)
	}
	m, err := sim.New(c.Image)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(200_000_000); err != nil {
		t.Fatalf("run(%s): %v\n--- asm ---\n%s", spec, err, c.Asm)
	}
	return m.Output.String(), m, c
}

// checkAllConfigs runs the program under all five paper configurations
// and requires identical, expected output.
func checkAllConfigs(t *testing.T, name, src, want string) {
	t.Helper()
	for _, spec := range isa.PaperConfigs() {
		got, _, _ := runMC(t, src, spec)
		if got != want {
			t.Errorf("%s on %s: output %q, want %q", name, spec, got, want)
		}
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	src := `
int main() {
	int a = 7, b = 3;
	print_int(a + b * 2);      print_char(' ');
	print_int((a + b) * 2);    print_char(' ');
	print_int(a - b - 1);      print_char(' ');
	print_int(a % b);          print_char(' ');
	print_int(a / b);          print_char(' ');
	print_int(-a);             print_char(' ');
	print_int(a << 2);         print_char(' ');
	print_int(a >> 1);         print_char(' ');
	print_int(~a);             print_char(' ');
	print_int(a & b);          print_char(' ');
	print_int(a | b);          print_char(' ');
	print_int(a ^ b);
	return 0;
}`
	checkAllConfigs(t, "arith", src, "13 20 3 1 2 -7 28 3 -8 3 7 4")
}

func TestMulDivRuntime(t *testing.T) {
	src := `
int main() {
	print_int(123 * 456);      print_char(' ');
	int a = 12345, b = -67;
	print_int(a * b);          print_char(' ');
	print_int(a / b);          print_char(' ');
	print_int(a % b);          print_char(' ');
	print_int((0-a) / b);      print_char(' ');
	print_int((0-a) % b);      print_char(' ');
	print_int(b / a);          print_char(' ');
	print_int(7 / 0 + 9 % 0);  /* division by zero yields 0 */
	return 0;
}`
	checkAllConfigs(t, "muldiv", src, "56088 -827115 -184 17 184 -17 0 0")
}

func TestControlFlow(t *testing.T) {
	src := `
int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		steps++;
	}
	return steps;
}
int main() {
	print_int(collatz(27));
	print_char(' ');
	int s = 0, i;
	for (i = 0; i < 100; i++) {
		if (i % 3 == 0) continue;
		if (i > 50) break;
		s += i;
	}
	print_int(s);
	print_char(' ');
	int d = 0;
	do { d++; } while (d < 5);
	print_int(d);
	return 0;
}`
	// s = sum of 1..50 excluding multiples of 3 (i=51 is a multiple of 3,
	// so the break fires at i=52): 1275 - 408 = 867.
	checkAllConfigs(t, "control", src, "111 867 5")
}

func TestLogicalOperators(t *testing.T) {
	src := `
int calls;
int truthy() { calls++; return 1; }
int main() {
	calls = 0;
	if (0 && truthy()) print_int(99);
	print_int(calls); print_char(' ');
	if (1 || truthy()) print_int(calls); print_char(' ');
	int x = (3 < 5) + (5 < 3);
	print_int(x); print_char(' ');
	print_int(!x); print_char(' ');
	print_int(2 > 1 && 3 >= 3 && 1 != 2);
	return 0;
}`
	checkAllConfigs(t, "logic", src, "0 0 1 0 1")
}

func TestArraysAndPointers(t *testing.T) {
	src := `
int arr[10];
char msg[16] = "hi there";
int main() {
	int i;
	for (i = 0; i < 10; i++) arr[i] = i * i;
	int sum = 0;
	int *p = arr;
	for (i = 0; i < 10; i++) sum += *(p + i);
	print_int(sum); print_char(' ');
	print_int(arr[7]); print_char(' ');
	char *s = msg;
	int len = 0;
	while (s[len]) len++;
	print_int(len); print_char(' ');
	print_str(msg); print_char(' ');
	msg[0] = 'H';
	print_str(&msg[0]);
	return 0;
}`
	checkAllConfigs(t, "arrays", src, "285 49 8 hi there Hi there")
}

func TestLocalArraysAndDeepFrames(t *testing.T) {
	// Local arrays force frame addressing; the 260-element array exceeds
	// the D16 124-byte direct window.
	src := `
int sum(int n) {
	int buf[260];
	int i;
	for (i = 0; i < n; i++) buf[i] = i + 1;
	int s = 0;
	for (i = 0; i < n; i++) s += buf[i];
	return s;
}
int main() {
	print_int(sum(260));
	return 0;
}`
	checkAllConfigs(t, "frames", src, "33930")
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	print_int(fib(15)); print_char(' ');
	print_int(ack(2, 3));
	return 0;
}`
	checkAllConfigs(t, "recursion", src, "610 9")
}

func TestDoubles(t *testing.T) {
	src := `
double square(double x) { return x * x; }
int main() {
	double a = 1.5, b = 2.25;
	print_double(a + b);     print_char(' ');
	print_double(a * b);     print_char(' ');
	print_double(square(a)); print_char(' ');
	print_double(b / a);     print_char(' ');
	print_double(-a);        print_char(' ');
	print_int(a < b);        print_char(' ');
	print_int(a == 1.5);     print_char(' ');
	int n = 7;
	double d = n;            /* int -> double */
	print_double(d / 2.0);   print_char(' ');
	print_int((int)(d * 10.0)); /* double -> int */
	return 0;
}`
	checkAllConfigs(t, "doubles", src, "3.75 3.375 2.25 1.5 -1.5 1 1 3.5 70")
}

func TestFloats(t *testing.T) {
	src := `
float half(float x) { return x / 2.0; }
int main() {
	float f = 5.5;
	print_double(half(f));
	print_char(' ');
	float g = f + 0.25;
	print_int(g > f);
	return 0;
}`
	checkAllConfigs(t, "floats", src, "2.75 1")
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int table[6] = {10, 20, 30};
int seed = 42;
double pi = 3.25;
char c = 'A';
int main() {
	print_int(table[0] + table[1] + table[2] + table[3]);
	print_char(' ');
	print_int(seed); print_char(' ');
	print_double(pi); print_char(' ');
	print_char(c);
	return 0;
}`
	checkAllConfigs(t, "ginit", src, "60 42 3.25 A")
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	src := `
int main() {
	int x = 10;
	x += 5; x -= 2; x *= 3; x /= 2; x %= 10;
	print_int(x); print_char(' ');
	x = 3;
	x <<= 2; x |= 1; x ^= 2; x &= 14;
	print_int(x); print_char(' ');
	int a[3]; a[0] = 1; a[1] = 2;
	int i = 0;
	a[i++] += 10;
	print_int(a[0]); print_char(' ');
	print_int(i); print_char(' ');
	print_int(i++ + ++i);
	print_char(' ');
	print_int(i);
	return 0;
}`
	// x: 10+5-2=13, *3=39, /2=19, %10=9. Then 3<<2=12, |1=13, ^2=15, &14=14.
	checkAllConfigs(t, "compound", src, "9 14 11 1 4 3")
}

func TestManyLocals(t *testing.T) {
	// More simultaneously-live values than D16 has registers: forces
	// spilling on the 16-register configs.
	var b []byte
	b = append(b, "int seed = 3;\nint main() {\n"...)
	for i := 0; i < 24; i++ {
		b = append(b, fmt.Sprintf("\tint v%d = seed + %d;\n", i, i*3+1)...)
	}
	b = append(b, "\tint s = 0;\n"...)
	for i := 0; i < 24; i++ {
		b = append(b, fmt.Sprintf("\ts += v%d * v%d;\n", i, (i+7)%24)...)
	}
	b = append(b, "\tprint_int(s);\n\treturn 0;\n}\n"...)
	src := string(b)

	var first string
	for _, spec := range isa.PaperConfigs() {
		got, _, _ := runMC(t, src, spec)
		if first == "" {
			first = got
			continue
		}
		if got != first {
			t.Errorf("many-locals on %s: %q differs from %q", spec, got, first)
		}
	}
	// The 16-register configs must spill where DLXe/32 need not.
	_, _, c16 := runMC(t, src, isa.D16())
	_, _, c32 := runMC(t, src, isa.DLXe())
	if c16.Spills <= c32.Spills {
		t.Errorf("expected more spills on D16 (%d) than DLXe/32 (%d)", c16.Spills, c32.Spills)
	}
}

func TestDensityAndPathLengthOrdering(t *testing.T) {
	src := `
int a[64];
int main() {
	int i, j, n = 64;
	for (i = 0; i < n; i++) a[i] = (n - i) * 3 % 101;
	for (i = 0; i < n - 1; i++)
		for (j = 0; j < n - 1 - i; j++)
			if (a[j] > a[j + 1]) {
				int t = a[j]; a[j] = a[j + 1]; a[j + 1] = t;
			}
	int s = 0;
	for (i = 0; i < n; i++) s += a[i] * i;
	print_int(s);
	return 0;
}`
	outs := map[string]string{}
	sizes := map[string]int{}
	paths := map[string]int64{}
	for _, spec := range isa.PaperConfigs() {
		got, m, c := runMC(t, src, spec)
		outs[spec.Name] = got
		sizes[spec.Name] = c.Image.Size()
		paths[spec.Name] = m.Stats.Instrs
	}
	for name, o := range outs {
		if o != outs["D16/16/2"] {
			t.Fatalf("output mismatch on %s: %q vs %q", name, o, outs["D16/16/2"])
		}
	}
	// The paper's central static result: D16 binaries are substantially
	// smaller; DLXe path lengths are shorter.
	ratio := float64(sizes["DLXe/32/3"]) / float64(sizes["D16/16/2"])
	if ratio < 1.2 || ratio > 2.0 {
		t.Errorf("density ratio DLXe/D16 = %.2f, expected within (1.2, 2.0); sizes=%v", ratio, sizes)
	}
	if paths["DLXe/32/3"] > paths["D16/16/2"] {
		t.Errorf("DLXe/32/3 path (%d) should not exceed D16 (%d)",
			paths["DLXe/32/3"], paths["D16/16/2"])
	}
}

// TestD16PlusVariant compiles representative programs for the paper's
// proposed D16+ encoding (8-bit mvi, 8-bit compare-equal immediate) and
// checks behavioural equivalence with base D16.
func TestD16PlusVariant(t *testing.T) {
	srcs := []string{
		`int main() {
			int i, hits = 0;
			for (i = 0; i < 300; i++) {
				if (i == 17) hits++;
				if (i == 200) hits += 2;   /* fits 8 bits */
				if (i == 299) hits += 4;   /* beyond 8 bits: materialized */
			}
			print_int(hits);
			int big = 255, neg = -128, edge = 127;
			print_int(big + neg + edge); /* mvi range edges */
			return 0;
		}`,
		`int f(int x) { return x == 100; }
		int main() {
			int s = 0, i;
			for (i = 90; i < 110; i++) s += f(i);
			print_int(s);
			print_int(1234567 / 321);
			return 0;
		}`,
	}
	for _, src := range srcs {
		base, _, _ := runMC(t, src, isa.D16())
		plus, _, _ := runMC(t, src, isa.D16Plus())
		if base != plus {
			t.Errorf("D16+ output %q differs from D16 %q", plus, base)
		}
	}
	// The variant must actually emit compare-equal immediates.
	asmText, _, err := GenAsm("t.mc", srcs[0], isa.D16Plus())
	if err != nil {
		t.Fatal(err)
	}
	if countLines(asmText, "cmp.eq r0, ") == 0 {
		t.Error("D16+ emitted no compare-equal immediates")
	}
	found := false
	for _, l := range strings.Split(asmText, "\n") {
		if strings.Contains(l, "cmp.eq r0, ") && strings.Contains(l, ", 17") {
			found = true
		}
	}
	if !found {
		t.Errorf("cmp.eq with immediate 17 not found:\n%s", asmText)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no main", "int f() { return 1; }"},
		{"undefined var", "int main() { return x; }"},
		{"undefined func", "int main() { return g(); }"},
		{"bad args", "int f(int a) { return a; } int main() { return f(); }"},
		{"type mismatch", "int main() { int *p; double d; p = d; return 0; }"},
		{"void value", "int main() { int x; x = print_int(1); return 0; }"},
		{"break outside", "int main() { break; return 0; }"},
		{"redefined", "int main() { int a = 1; int a = 2; return a; }"},
		{"not lvalue", "int main() { 3 = 4; return 0; }"},
		{"array assign", "int a[3]; int main() { a = 0; return 0; }"},
	}
	for _, tc := range cases {
		if _, err := Compile("t.mc", tc.src, isa.D16()); err == nil {
			t.Errorf("%s: expected a compile error", tc.name)
		}
	}
}
