package mcc

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// --- operand access -----------------------------------------------------------

// srcReg returns the physical register holding vreg v, loading spilled
// values into scratch register `which` (0 or 1) of the appropriate class.
func (cg *codegen) srcReg(v VReg, which int) isa.Reg {
	if r := cg.alloc.Reg[v]; r != isa.NoReg {
		return r
	}
	slot := cg.alloc.SpillSlot[v]
	if slot < 0 {
		cg.fail("use of unallocated v%d", v)
		return cg.scratchI[which]
	}
	off := cg.slotOff[slot]
	if cg.f.RegTy[v].IsFloat() {
		fd := cg.scratchF[which]
		cg.loadFPFrom(fd, isa.RegSP, off, cg.f.RegTy[v] == TF64, cg.scratchI[which])
		return fd
	}
	rd := cg.scratchI[which]
	cg.loadWordInto(rd, isa.RegSP, off)
	return rd
}

// dstReg returns the register to compute vreg v into plus a commit
// function that stores spilled results back to the frame.
func (cg *codegen) dstReg(v VReg, which int) (isa.Reg, func()) {
	if r := cg.alloc.Reg[v]; r != isa.NoReg {
		return r, func() {}
	}
	slot := cg.alloc.SpillSlot[v]
	if slot < 0 {
		cg.fail("def of unallocated v%d", v)
		return cg.scratchI[which], func() {}
	}
	off := cg.slotOff[slot]
	if cg.f.RegTy[v].IsFloat() {
		fd := cg.scratchF[which]
		dbl := cg.f.RegTy[v] == TF64
		return fd, func() { cg.storeFPTo(fd, isa.RegSP, off, dbl) }
	}
	rd := cg.scratchI[which]
	return rd, func() { cg.storeWordFrom(rd, isa.RegSP, off, cg.scratchI[1-which]) }
}

// --- constants ------------------------------------------------------------------

// loadConstInto materializes a 32-bit constant, using the cheapest legal
// sequence for the target.
func (cg *codegen) loadConstInto(rd isa.Reg, v int32) {
	if cg.spec.FitsMVI(v) {
		cg.emit(fmt.Sprintf("mvi %s, %d", rd, v), rr(rd), nil)
		return
	}
	if cg.spec.Enc == isa.EncDLXe {
		if v >= 0 && v <= 0xFFFF {
			cg.emit(fmt.Sprintf("ori %s, r0, %d", rd, v), rr(rd), rr(isa.R(0)))
			return
		}
		cg.emit(fmt.Sprintf("mvhi %s, %d", rd, int32(uint32(v)>>16)), rr(rd), nil)
		if lo := uint32(v) & 0xFFFF; lo != 0 {
			cg.emit(fmt.Sprintf("ori %s, %s, %d", rd, rd, lo), rr(rd), rr(rd))
		}
		return
	}
	// D16: shifted 9-bit form, else a literal-pool load.
	if v != 0 {
		sh := 0
		for x := v; x&1 == 0 && sh < 23; x >>= 1 {
			sh++
		}
		if base := v >> uint(sh); sh > 0 && cg.spec.FitsMVI(base) {
			cg.emit(fmt.Sprintf("mvi %s, %d", rd, base), rr(rd), nil)
			cg.emit(fmt.Sprintf("shli %s, %s, %d", rd, rd, sh), rr(rd), rr(rd))
			return
		}
	}
	cg.emitMem(fmt.Sprintf("ldc r0, =%d", v), rr(isa.RegCC), nil)
	if rd != isa.RegCC {
		cg.emit(fmt.Sprintf("mv %s, r0", rd), rr(rd), rr(isa.RegCC))
	}
}

// loadSymInto materializes a symbol address (+offset).
func (cg *codegen) loadSymInto(rd isa.Reg, sym string, off int32) {
	ref := sym
	if off != 0 {
		ref = fmt.Sprintf("%s+%d", sym, off)
	}
	if cg.spec.Enc == isa.EncD16 {
		cg.emitMem(fmt.Sprintf("ldc r0, =%s", ref), rr(isa.RegCC), nil)
		if rd != isa.RegCC {
			cg.emit(fmt.Sprintf("mv %s, r0", rd), rr(rd), rr(isa.RegCC))
		}
		return
	}
	cg.emit(fmt.Sprintf("mvhi %s, hi16(%s)", rd, ref), rr(rd), nil)
	cg.emit(fmt.Sprintf("ori %s, %s, lo16(%s)", rd, rd, ref), rr(rd), rr(rd))
}

// --- word memory helpers ---------------------------------------------------------

// fitsWordDisp reports whether a word load/store displacement encodes.
func (cg *codegen) fitsWordDisp(off int32) bool { return cg.spec.FitsMemDisp(off) }

// loadWordInto loads mem[base+off] into rd, handling over-range
// displacements by computing the address in rd itself (or scratch 1 when
// rd is the base).
func (cg *codegen) loadWordInto(rd isa.Reg, base isa.Reg, off int32) {
	if cg.fitsWordDisp(off) {
		cg.emitMem(fmt.Sprintf("ld %s, %d(%s)", rd, off, base), rr(rd), rr(base))
		return
	}
	t := rd
	if t == base || t.IsFPR() {
		t = cg.scratchI[1]
	}
	cg.addImmInto(t, base, off)
	cg.emitMem(fmt.Sprintf("ld %s, 0(%s)", rd, t), rr(rd), rr(t))
}

// storeWordFrom stores rs to mem[base+off]; addrScratch is used when the
// displacement is out of range (must differ from rs and base).
func (cg *codegen) storeWordFrom(rs isa.Reg, base isa.Reg, off int32, addrScratch isa.Reg) {
	if cg.fitsWordDisp(off) {
		cg.emitMem(fmt.Sprintf("st %s, %d(%s)", rs, off, base), nil, rr(rs, base))
		return
	}
	if !addrScratch.Valid() {
		cg.fail("no free scratch for store displacement %d", off)
		return
	}
	cg.addImmInto(addrScratch, base, off)
	cg.emitMem(fmt.Sprintf("st %s, 0(%s)", rs, addrScratch), nil, rr(rs, addrScratch))
}

// addImmInto computes rd = base + imm with target-legal sequences.
func (cg *codegen) addImmInto(rd, base isa.Reg, imm int32) {
	if imm == 0 {
		cg.moveInt(rd, base)
		return
	}
	three := cg.spec.ThreeAddress
	switch {
	case imm >= 0 && cg.spec.FitsALUImm(imm):
		if three || rd == base {
			cg.emit(fmt.Sprintf("addi %s, %s, %d", rd, base, imm), rr(rd), rr(base))
		} else {
			cg.moveInt(rd, base)
			cg.emit(fmt.Sprintf("addi %s, %s, %d", rd, rd, imm), rr(rd), rr(rd))
		}
	case imm < 0 && cg.spec.FitsALUImm(-imm):
		if three || rd == base {
			cg.emit(fmt.Sprintf("subi %s, %s, %d", rd, base, -imm), rr(rd), rr(base))
		} else {
			cg.moveInt(rd, base)
			cg.emit(fmt.Sprintf("subi %s, %s, %d", rd, rd, -imm), rr(rd), rr(rd))
		}
	default:
		if rd == base {
			// rd = rd + big: materialize into scratch and add.
			s := cg.scratchI[1]
			if s == rd {
				s = cg.scratchI[0]
			}
			cg.loadConstInto(s, imm)
			cg.emitAddReg(rd, rd, s)
			return
		}
		cg.loadConstInto(rd, imm)
		cg.emitAddReg(rd, rd, base)
	}
}

func (cg *codegen) emitAddReg(rd, ra, rb isa.Reg) {
	if cg.spec.ThreeAddress {
		cg.emit(fmt.Sprintf("add %s, %s, %s", rd, ra, rb), rr(rd), rr(ra, rb))
		return
	}
	if rd == ra {
		cg.emit(fmt.Sprintf("add %s, %s, %s", rd, rd, rb), rr(rd), rr(rd, rb))
		return
	}
	if rd == rb { // commutative
		cg.emit(fmt.Sprintf("add %s, %s, %s", rd, rd, ra), rr(rd), rr(rd, ra))
		return
	}
	cg.moveInt(rd, ra)
	cg.emit(fmt.Sprintf("add %s, %s, %s", rd, rd, rb), rr(rd), rr(rd, rb))
}

func (cg *codegen) moveInt(rd, rs isa.Reg) {
	if rd != rs {
		cg.emit(fmt.Sprintf("mv %s, %s", rd, rs), rr(rd), rr(rs))
	}
}

func (cg *codegen) moveFP(rd, rs isa.Reg) {
	if rd != rs {
		cg.emit(fmt.Sprintf("fmv %s, %s", rd, rs), rr(rd), rr(rs))
	}
}

// loadFPFrom loads a float/double at base+off into FPR fd via integer
// scratch is.
func (cg *codegen) loadFPFrom(fd isa.Reg, base isa.Reg, off int32, double bool, is isa.Reg) {
	if double {
		if cg.fitsWordDisp(off) && cg.fitsWordDisp(off+4) {
			cg.emitMem(fmt.Sprintf("ld %s, %d(%s)", is, off, base), rr(is), rr(base))
			cg.emit(fmt.Sprintf("mvfl %s, %s", fd, is), rr(fd), rr(is))
			cg.emitMem(fmt.Sprintf("ld %s, %d(%s)", is, off+4, base), rr(is), rr(base))
			cg.emit(fmt.Sprintf("mvfh %s, %s", fd, is), rr(fd), rr(is))
			return
		}
		// Compute the address into the other integer scratch.
		a := cg.otherScratchI(is)
		cg.addImmInto(a, base, off)
		cg.emitMem(fmt.Sprintf("ld %s, 0(%s)", is, a), rr(is), rr(a))
		cg.emit(fmt.Sprintf("mvfl %s, %s", fd, is), rr(fd), rr(is))
		cg.emitMem(fmt.Sprintf("ld %s, 4(%s)", is, a), rr(is), rr(a))
		cg.emit(fmt.Sprintf("mvfh %s, %s", fd, is), rr(fd), rr(is))
		return
	}
	cg.loadWordInto(is, base, off)
	cg.emit(fmt.Sprintf("mvfl %s, %s", fd, is), rr(fd), rr(is))
}

// storeFPTo stores FPR fs to base+off via the integer scratches.
func (cg *codegen) storeFPTo(fs isa.Reg, base isa.Reg, off int32, double bool) {
	is := cg.scratchI[0]
	if double {
		if cg.fitsWordDisp(off) && cg.fitsWordDisp(off+4) {
			cg.emit(fmt.Sprintf("mffl %s, %s", is, fs), rr(is), rr(fs))
			cg.emitMem(fmt.Sprintf("st %s, %d(%s)", is, off, base), nil, rr(is, base))
			cg.emit(fmt.Sprintf("mffh %s, %s", is, fs), rr(is), rr(fs))
			cg.emitMem(fmt.Sprintf("st %s, %d(%s)", is, off+4, base), nil, rr(is, base))
			return
		}
		a := cg.otherScratchI(is)
		cg.addImmInto(a, base, off)
		cg.emit(fmt.Sprintf("mffl %s, %s", is, fs), rr(is), rr(fs))
		cg.emitMem(fmt.Sprintf("st %s, 0(%s)", is, a), nil, rr(is, a))
		cg.emit(fmt.Sprintf("mffh %s, %s", is, fs), rr(is), rr(fs))
		cg.emitMem(fmt.Sprintf("st %s, 4(%s)", is, a), nil, rr(is, a))
		return
	}
	cg.emit(fmt.Sprintf("mffl %s, %s", is, fs), rr(is), rr(fs))
	cg.storeWordFrom(is, base, off, cg.otherScratchI(is))
}

func (cg *codegen) otherScratchI(r isa.Reg) isa.Reg {
	if r == cg.scratchI[0] {
		return cg.scratchI[1]
	}
	return cg.scratchI[0]
}

// --- prologue / epilogue ---------------------------------------------------------

func (cg *codegen) prologue() {
	if cg.frameSize > 0 {
		cg.addImmInto(isa.RegSP, isa.RegSP, -cg.frameSize)
	}
	if cg.lrOff >= 0 {
		cg.storeWordFrom(isa.RegLink, isa.RegSP, cg.lrOff, cg.scratchI[1])
	}
	for i, r := range cg.alloc.UsedCalleeSaved {
		if r.IsFPR() {
			cg.storeFPTo(r, isa.RegSP, cg.calleeOff[i], true)
		} else {
			cg.storeWordFrom(r, isa.RegSP, cg.calleeOff[i], cg.scratchI[1])
		}
	}
	cg.paramMoves()
}

func (cg *codegen) epilogue() {
	cg.emitLabelRaw(cg.retLabel + ":")
	for i, r := range cg.alloc.UsedCalleeSaved {
		if r.IsFPR() {
			cg.loadFPFrom(r, isa.RegSP, cg.calleeOff[i], true, cg.scratchI[0])
		} else {
			cg.loadWordInto(r, isa.RegSP, cg.calleeOff[i])
		}
	}
	if cg.lrOff >= 0 {
		cg.loadWordInto(isa.RegLink, isa.RegSP, cg.lrOff)
	}
	if cg.frameSize > 0 {
		cg.addImmInto(isa.RegSP, isa.RegSP, cg.frameSize)
	}
	cg.emitCtl("ret", nil, rr(isa.RegLink))
}

// paramMoves moves incoming arguments (registers and stack) to their
// allocated homes, as one parallel move.
func (cg *codegen) paramMoves() {
	var moves []pmove
	ints, fps, stackOff := 0, 0, cg.frameSize
	for i, pv := range cg.f.Params {
		fp := cg.f.RegTy[pv].IsFloat()
		double := cg.f.RegTy[pv] == TF64
		var src isa.Reg = isa.NoReg
		var fromStack int32 = -1
		if fp {
			fps++
			if fps <= isa.NumArgRegs {
				src = isa.FArgReg(fps - 1)
			} else {
				stackOff = alignI32(stackOff, 8)
				fromStack = stackOff
				stackOff += 8
			}
		} else {
			ints++
			if ints <= isa.NumArgRegs {
				src = isa.ArgReg(ints - 1)
			} else {
				fromStack = stackOff
				stackOff += 4
			}
		}
		dstR := cg.alloc.Reg[pv]
		spill := cg.alloc.SpillSlot[pv]
		if dstR == isa.NoReg && spill < 0 {
			continue // parameter never used
		}
		moves = append(moves, pmove{
			src: src, stackOff: fromStack, dst: dstR,
			spillOff: cg.spillOffOr(spill), fp: fp, double: double, idx: i,
		})
	}
	cg.resolveParallel(moves)
}

func (cg *codegen) spillOffOr(slot int) int32 {
	if slot < 0 {
		return -1
	}
	return cg.slotOff[slot]
}

// pmove is one element of a parallel move: from a register or stack
// location into a register or spill slot.
type pmove struct {
	src      isa.Reg // NoReg when the source is a stack location
	stackOff int32   // incoming-stack source offset (-1 = none)
	dst      isa.Reg // NoReg when the destination is a spill slot
	spillOff int32   // spill destination offset (-1 = none)
	fp       bool
	double   bool
	idx      int
}

// resolveParallel emits a set of moves that must appear to happen
// simultaneously: it orders them so no source is clobbered before it is
// read, breaking register cycles with a scratch register.
func (cg *codegen) resolveParallel(moves []pmove) {
	pending := make([]pmove, len(moves))
	copy(pending, moves)

	emitOne := func(m pmove) {
		switch {
		case m.spillOff >= 0 && m.src != isa.NoReg: // reg -> slot
			if m.fp {
				cg.storeFPTo(m.src, isa.RegSP, m.spillOff, m.double)
			} else {
				cg.storeWordFrom(m.src, isa.RegSP, m.spillOff, cg.scratchI[1])
			}
		case m.spillOff >= 0: // stack -> slot (via scratch)
			if m.fp {
				fs := cg.scratchF[0]
				cg.loadFPFrom(fs, isa.RegSP, m.stackOff, m.double, cg.scratchI[0])
				cg.storeFPTo(fs, isa.RegSP, m.spillOff, m.double)
			} else {
				s := cg.scratchI[0]
				cg.loadWordInto(s, isa.RegSP, m.stackOff)
				cg.storeWordFrom(s, isa.RegSP, m.spillOff, cg.scratchI[1])
			}
		case m.src == isa.NoReg: // stack -> reg
			if m.fp {
				cg.loadFPFrom(m.dst, isa.RegSP, m.stackOff, m.double, cg.scratchI[0])
			} else {
				cg.loadWordInto(m.dst, isa.RegSP, m.stackOff)
			}
		default: // reg -> reg
			if m.fp {
				cg.moveFP(m.dst, m.src)
			} else {
				cg.moveInt(m.dst, m.src)
			}
		}
	}

	// Phase 1: moves that write no register (spill stores) only read;
	// emitting them before anything writes keeps every source intact.
	out := pending[:0]
	for _, m := range pending {
		if m.dst == isa.NoReg {
			emitOne(m)
			continue
		}
		out = append(out, m)
	}
	pending = out

	for len(pending) > 0 {
		progressed := false
		for i := 0; i < len(pending); i++ {
			m := pending[i]
			// m writes m.dst; legal when no other pending move still
			// reads m.dst.
			blocked := false
			for j, o := range pending {
				if j != i && o.src == m.dst && o.src != isa.NoReg {
					blocked = true
					break
				}
			}
			if !blocked {
				emitOne(m)
				pending = append(pending[:i], pending[i+1:]...)
				progressed = true
				i--
			}
		}
		if progressed {
			continue
		}
		// Pure register cycle: rotate through scratch.
		m := pending[0]
		scratch := cg.scratchI[0]
		if m.fp {
			scratch = cg.scratchF[0]
		}
		if m.fp {
			cg.moveFP(scratch, m.src)
		} else {
			cg.moveInt(scratch, m.src)
		}
		pending[0].src = scratch
	}
}

// --- calls ------------------------------------------------------------------------

func (cg *codegen) genCallIns(in *Ins) {
	if in.Builtin {
		cg.genBuiltin(in)
		return
	}

	// Indirect call target (D16 lowering) moves to r0 first: argument
	// moves may overwrite any allocatable register, but never r0.
	fusedSym, fused := "", false
	if in.A != NoV {
		fusedSym, fused = cg.fusedCall[in.A]
		if !fused {
			target := cg.srcReg(in.A, 0)
			cg.moveInt(isa.RegCC, target)
		}
	}

	// Stack arguments first (their stores read sources before any
	// argument registers are redefined).
	ints, fps, stackOff := 0, 0, int32(0)
	var moves []pmove
	for _, a := range in.Args {
		fp := cg.f.RegTy[a].IsFloat()
		double := cg.f.RegTy[a] == TF64
		if fp {
			fps++
			if fps > isa.NumArgRegs {
				stackOff = alignI32(stackOff, 8)
				src := cg.srcReg(a, 0)
				cg.storeFPTo(src, isa.RegSP, stackOff, double)
				stackOff += 8
				continue
			}
			moves = append(moves, cg.argMove(a, isa.FArgReg(fps-1), true, double))
		} else {
			ints++
			if ints > isa.NumArgRegs {
				src := cg.srcReg(a, 0)
				cg.storeWordFrom(src, isa.RegSP, stackOff, cg.scratchI[1])
				stackOff += 4
				continue
			}
			moves = append(moves, cg.argMove(a, isa.ArgReg(ints-1), false, double))
		}
	}
	cg.resolveParallel(moves)

	// The call clobbers caller-saved registers and the link register;
	// record argument registers as uses so the delay-slot scheduler never
	// hoists an argument-clobbering instruction into the slot.
	uses := []isa.Reg{}
	for _, m := range moves {
		uses = append(uses, m.dst)
	}
	if in.A != NoV && !fused {
		// Indirect call (D16 lowering): the target address was staged in
		// r0 before the argument moves.
		uses = append(uses, isa.RegCC)
		cg.lines = append(cg.lines, line{
			text: "\tjl r0", ctl: true, mem: true,
			defs: []isa.Reg{isa.RegLink}, uses: uses,
		})
	} else {
		sym := in.Sym
		if fused {
			sym = fusedSym
		}
		defs := []isa.Reg{isa.RegLink, isa.RegCC} // D16 call goes through r0
		cg.lines = append(cg.lines, line{
			text: "\tcall " + sym, ctl: true, mem: true,
			defs: defs, uses: uses,
		})
	}
	cg.lines = append(cg.lines, line{text: "\tnop"})

	if in.Dst != NoV {
		rd, commit := cg.dstReg(in.Dst, 0)
		if cg.f.RegTy[in.Dst].IsFloat() {
			cg.moveFP(rd, isa.FRetReg)
		} else {
			cg.moveInt(rd, isa.RetReg)
		}
		commit()
	}
}

// argMove builds the parallel-move element for one register argument.
func (cg *codegen) argMove(a VReg, dst isa.Reg, fp, double bool) pmove {
	if r := cg.alloc.Reg[a]; r != isa.NoReg {
		return pmove{src: r, stackOff: -1, dst: dst, spillOff: -1, fp: fp, double: double}
	}
	// Spilled argument: loaded straight into the target register (reads
	// no register, so it participates as a stack source).
	return pmove{src: isa.NoReg, stackOff: cg.slotOff[cg.alloc.SpillSlot[a]],
		dst: dst, spillOff: -1, fp: fp, double: double}
}

var builtinTraps = map[string]int{
	"print_int":    1,
	"print_char":   2,
	"print_str":    3,
	"print_double": 4,
}

func (cg *codegen) genBuiltin(in *Ins) {
	code, ok := builtinTraps[in.Sym]
	if !ok {
		cg.fail("unknown builtin %q", in.Sym)
		return
	}
	a := in.Args[0]
	if cg.f.RegTy[a].IsFloat() {
		src := cg.srcReg(a, 0)
		cg.moveFP(isa.FRetReg, src)
	} else {
		src := cg.srcReg(a, 0)
		cg.moveInt(isa.RetReg, src)
	}
	cg.emit(fmt.Sprintf("trap %d", code), nil, rr(isa.RetReg, isa.FRetReg))
}

// fbits returns the bit pattern of an FP constant at the given precision.
func fbits(v float64, double bool) uint64 {
	if double {
		return math.Float64bits(v)
	}
	return uint64(math.Float32bits(float32(v)))
}
