package mcc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// The code generator lowers allocated IR to the common assembly language,
// legalizing every operation against the target spec:
//
//   - two-address targets get operand-shuffling moves;
//   - immediates that exceed the target's fields are materialized
//     (D16: mvi / mvi+shli / literal pool; DLXe: mvi / ori / mvhi+ori);
//   - displacements that exceed the target's memory fields become address
//     arithmetic;
//   - compare conditions missing on D16 (gt-forms) swap operands, and the
//     condition register convention (r0 on D16) is honored;
//   - every control transfer gets a delay slot, filled by a scheduling
//     pass when a safe predecessor instruction exists.

// line is one emitted assembly line with scheduling metadata.
type line struct {
	text    string
	label   bool
	dir     bool // directive (.pool etc.)
	ctl     bool // control transfer with a delay slot
	mem     bool // touches memory
	slotted bool // already placed in a delay slot: semantically pinned
	defs    []isa.Reg
	uses    []isa.Reg
}

// dataLayout accumulates the .data section so codegen can predict gp
// displacements; the assembler independently recomputes the same layout
// (a built-in consistency check).
type fpKey struct {
	bits   uint64
	double bool
}

type dataLayout struct {
	entries []string // emitted .data lines
	offsets map[string]int32
	cursor  int32
	fpPool  map[fpKey]string
	fpSeq   int

	bss        []string // emitted .bss lines
	bssCursor  int32
	bssPending map[string]int32
}

func newDataLayout() *dataLayout {
	return &dataLayout{offsets: map[string]int32{}, fpPool: map[fpKey]string{}}
}

func (d *dataLayout) alignTo(n int32) {
	if rem := d.cursor % n; rem != 0 {
		d.entries = append(d.entries, fmt.Sprintf("\t.align %d", n))
		d.cursor += n - rem
	}
}

func (d *dataLayout) label(name string) {
	d.entries = append(d.entries, name+":")
	d.offsets[name] = d.cursor
}

func (d *dataLayout) words(vals ...string) {
	d.entries = append(d.entries, "\t.word "+strings.Join(vals, ", "))
	d.cursor += int32(4 * len(vals))
}

func (d *dataLayout) bytes(vals []string) {
	d.entries = append(d.entries, "\t.byte "+strings.Join(vals, ", "))
	d.cursor += int32(len(vals))
}

func (d *dataLayout) asciiz(s string) {
	d.entries = append(d.entries, "\t.asciiz "+quoteAsm(s))
	d.cursor += int32(len(s) + 1)
}

func (d *dataLayout) space(n int32) {
	d.entries = append(d.entries, fmt.Sprintf("\t.space %d", n))
	d.cursor += n
}

// bssVar reserves zero-initialized storage (not counted in binary size).
func (d *dataLayout) bssVar(name string, size, align int32) {
	if rem := d.bssCursor % align; rem != 0 {
		d.bss = append(d.bss, fmt.Sprintf("\t.align %d", align))
		d.bssCursor += align - rem
	}
	d.bss = append(d.bss, name+":", fmt.Sprintf("\t.space %d", size))
	d.offsets[name] = -1 // out of the gp window by policy; see gpOff
	d.bssOffsets(name, d.bssCursor)
	d.bssCursor += size
}

// bssOffsets records the bss symbol's offset; resolved after data size is
// final via finalizeBSS.
func (d *dataLayout) bssOffsets(name string, off int32) {
	if d.bssPending == nil {
		d.bssPending = map[string]int32{}
	}
	d.bssPending[name] = off
}

// finalizeBSS computes gp offsets for bss symbols (bss follows data,
// 8-aligned, matching the assembler's layout).
func (d *dataLayout) finalizeBSS() {
	base := (d.cursor + 7) &^ 7
	for name, off := range d.bssPending { //detlint:ignore rangemap map-to-map copy, order-free
		d.offsets[name] = base + off
	}
}

// fpConst interns a floating-point constant and returns its label.
func (d *dataLayout) fpConst(bits uint64, double bool) string {
	key := fpKey{bits, double}
	if l, ok := d.fpPool[key]; ok {
		return l
	}
	d.fpSeq++
	l := fmt.Sprintf(".fc%d", d.fpSeq)
	if double {
		d.alignTo(8)
		d.label(l)
		d.words(fmt.Sprintf("%d", uint32(bits)), fmt.Sprintf("%d", uint32(bits>>32)))
	} else {
		d.alignTo(4)
		d.label(l)
		d.words(fmt.Sprintf("%d", uint32(bits)))
	}
	d.fpPool[key] = l
	return l
}

func quoteAsm(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case 0:
			b.WriteString(`\0`)
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// codegen emits one function.
type codegen struct {
	f     *IRFunc
	spec  *isa.Spec
	alloc *Alloc
	data  *dataLayout

	lines     []line
	slotOff   []int32
	frameSize int32
	outArgs   int32 // outgoing stack-arg bytes
	lrOff     int32 // frame offset of the saved link register (-1 = none)
	calleeOff []int32
	useCount  map[VReg]int
	retLabel  string

	scratchI [2]isa.Reg
	scratchF [2]isa.Reg

	// fusedCall maps a vreg to a function symbol when the vreg is a
	// single-use call-target address: the materialization is skipped and
	// the call emitted direct (sharing only pays off for repeated or
	// loop-resident targets).
	fusedCall map[VReg]string

	err error
}

func (cg *codegen) fail(format string, args ...any) {
	if cg.err == nil {
		cg.err = fmt.Errorf("codegen %s: %s", cg.f.Name, fmt.Sprintf(format, args...))
	}
}

// genFuncAsm compiles one IR function to assembly lines.
func genFuncAsm(f *IRFunc, spec *isa.Spec, alloc *Alloc, data *dataLayout) ([]line, error) {
	cg := &codegen{
		f: f, spec: spec, alloc: alloc, data: data,
		useCount: map[VReg]int{},
		retLabel: ".Lret_" + f.Name,
		scratchI: isa.ScratchGPRs(),
		scratchF: isa.ScratchFPRs(),
	}
	defCount := map[VReg]int{}
	for _, b := range f.Blocks {
		for i := range b.Ins {
			var buf [4]VReg
			for _, u := range b.Ins[i].uses(buf[:0]) {
				cg.useCount[u]++
			}
			if d := b.Ins[i].def(); d != NoV {
				defCount[d]++
			}
		}
	}
	// Single-use indirect call targets revert to direct calls.
	cg.fusedCall = map[VReg]string{}
	for _, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.Op == IAddr && in.AK == AKGlobal && in.Off == 0 {
				if _, isData := data.offsets[in.Sym]; !isData &&
					defCount[in.Dst] == 1 && cg.useCount[in.Dst] == 1 {
					cg.fusedCall[in.Dst] = in.Sym
				}
			}
		}
	}
	cg.layoutFrame()
	cg.emitLabelRaw(f.Name + ":")
	cg.prologue()
	for bi, b := range f.Blocks {
		if bi > 0 || blockIsBranchTarget(f, b.ID) {
			cg.emitLabelRaw(cg.blockLabel(b.ID) + ":")
		}
		cg.genBlock(b, bi)
	}
	cg.epilogue()
	cg.emitDir("\t.pool")
	if cg.err != nil {
		return nil, cg.err
	}
	cg.peephole()
	cg.scheduleLoads()
	cg.schedule()
	return cg.lines, nil
}

func blockIsBranchTarget(f *IRFunc, id int) bool {
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s == id {
				return true
			}
		}
	}
	return false
}

func (cg *codegen) blockLabel(id int) string {
	return fmt.Sprintf(".L%s_%d", cg.f.Name, id)
}

// --- emission helpers --------------------------------------------------------

func (cg *codegen) emitLabelRaw(text string) {
	cg.lines = append(cg.lines, line{text: text, label: true})
}

func (cg *codegen) emitDir(text string) {
	cg.lines = append(cg.lines, line{text: text, dir: true})
}

func (cg *codegen) emit(text string, defs, uses []isa.Reg) {
	cg.lines = append(cg.lines, line{text: "\t" + text, defs: defs, uses: uses})
}

func (cg *codegen) emitMem(text string, defs, uses []isa.Reg) {
	cg.lines = append(cg.lines, line{text: "\t" + text, defs: defs, uses: uses, mem: true})
}

// emitCtl emits a control transfer plus its delay-slot nop (the scheduler
// may replace the nop).
func (cg *codegen) emitCtl(text string, defs, uses []isa.Reg) {
	cg.lines = append(cg.lines, line{text: "\t" + text, defs: defs, uses: uses, ctl: true})
	cg.lines = append(cg.lines, line{text: "\tnop"})
}

func rr(regs ...isa.Reg) []isa.Reg { return regs }

// --- frame layout -------------------------------------------------------------

// Frame (from sp upward):
//
//	[0, outArgs)            outgoing stack arguments
//	[outArgs, +4)           saved link register (if the function calls)
//	saved callee-saved registers (4 bytes int, 8 bytes fp)
//	spill slots and scalar locals (small, near sp: cheap displacements)
//	local arrays
//	--- frameSize (8-aligned); incoming stack args live above
func (cg *codegen) layoutFrame() {
	cg.outArgs = int32(cg.maxOutArgBytes())
	off := cg.outArgs
	if cg.f.HasCall {
		cg.lrOff = off
		off += 4
	} else {
		cg.lrOff = -1
	}
	for _, r := range cg.alloc.UsedCalleeSaved {
		off = alignI32(off, 4)
		if r.IsFPR() {
			off = alignI32(off, 8)
			cg.calleeOff = append(cg.calleeOff, off)
			off += 8
		} else {
			cg.calleeOff = append(cg.calleeOff, off)
			off += 4
		}
	}
	// Small slots first (spills, demoted scalars), then arrays.
	cg.slotOff = make([]int32, len(cg.f.Slots))
	for pass := 0; pass < 2; pass++ {
		for i, s := range cg.f.Slots {
			small := s.Size <= 8
			if (pass == 0) != small {
				continue
			}
			off = alignI32(off, int32(s.Align))
			cg.slotOff[i] = off
			off += int32(s.Size)
		}
	}
	cg.frameSize = alignI32(off, 8)
}

func alignI32(v, n int32) int32 { return (v + n - 1) &^ (n - 1) }

// maxOutArgBytes scans calls for stack-passed argument bytes.
func (cg *codegen) maxOutArgBytes() int {
	max := 0
	for _, b := range cg.f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.Op != ICall || in.Builtin {
				continue
			}
			ints, fps, bytes := 0, 0, 0
			for _, a := range in.Args {
				if cg.f.RegTy[a].IsFloat() {
					fps++
					if fps > isa.NumArgRegs {
						bytes = alignInt(bytes, 8) + 8
					}
				} else {
					ints++
					if ints > isa.NumArgRegs {
						bytes += 4
					}
				}
			}
			if bytes > max {
				max = bytes
			}
		}
	}
	return alignInt(max, 8)
}

func alignInt(v, n int) int { return (v + n - 1) &^ (n - 1) }
