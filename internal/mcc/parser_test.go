package mcc

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse("t.mc", src)
	if err == nil {
		t.Fatalf("expected error containing %q", wantSub)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestParseGlobals(t *testing.T) {
	p := parseOK(t, `
int a;
int b = 5;
int arr[10];
int init[4] = {1, 2, 3};
char msg[8] = "hi";
double d = 2.5;
char c = 'x';
int *ptr;
int main() { return 0; }
`)
	if len(p.Globals) != 8 {
		t.Fatalf("%d globals", len(p.Globals))
	}
	byName := map[string]*GlobalDecl{}
	for _, g := range p.Globals {
		byName[g.Sym.Name] = g
	}
	if byName["arr"].Sym.Ty.K != KArray || byName["arr"].Sym.Ty.N != 10 {
		t.Error("array type wrong")
	}
	if len(byName["init"].Init) != 3 {
		t.Error("array initializer count wrong")
	}
	if byName["msg"].InitStr != "hi" {
		t.Error("string initializer wrong")
	}
	if byName["ptr"].Sym.Ty.K != KPtr || byName["ptr"].Sym.Ty.Elem.K != KInt {
		t.Error("pointer type wrong")
	}
	if v, ok := byName["c"].Init[0].(*IntLit); !ok || v.Val != 'x' {
		t.Error("char initializer wrong")
	}
}

func TestParsePrecedence(t *testing.T) {
	// 2 + 3 * 4 == 14 folds at parse time.
	p := parseOK(t, `int x = 2 + 3 * 4; int main() { return 0; }`)
	if v := p.Globals[0].Init[0].(*IntLit).Val; v != 14 {
		t.Errorf("2+3*4 folded to %d", v)
	}
	cases := map[string]int64{
		"1 << 2 + 1":        8,  // + binds tighter than <<
		"7 & 3 | 4":         7,  // & over |
		"1 + 2 == 3":        1,  // arithmetic over comparison
		"10 - 4 - 3":        3,  // left associative
		"100 / 10 / 5":      2,  // left associative
		"-3 * -4":           12, // unary minus
		"~0 & 15":           15,
		"(1 < 2) + (2 < 1)": 1,
		"!5 + !0":           1,
		"17 % 5":            2,
	}
	for src, want := range cases {
		p := parseOK(t, "int x = "+src+"; int main() { return 0; }")
		if v := p.Globals[0].Init[0].(*IntLit).Val; v != want {
			t.Errorf("%s folded to %d, want %d", src, v, want)
		}
	}
}

func TestParseFunctionShapes(t *testing.T) {
	p := parseOK(t, `
int leaf() { return 1; }
void nothing(int x) { }
double fp(double a, float b) { return a; }
int arrparam(int a[], char *s) { return a[0] + s[0]; }
int main() { return leaf(); }
`)
	if len(p.Funcs) != 5 {
		t.Fatalf("%d functions", len(p.Funcs))
	}
	ap := p.Funcs[3].Sym
	if ap.Params[0].Ty.K != KPtr {
		t.Error("array parameter should decay to pointer")
	}
	if p.Funcs[1].Sym.Ret.K != KVoid {
		t.Error("void return type lost")
	}
}

func TestPrototypesAndForwardCalls(t *testing.T) {
	parseOK(t, `
int helper(int x);
int main() { return helper(1); }
int helper(int x) { return x + 1; }
`)
	parseErr(t, `
int helper(int x);
int main() { return helper(1, 2); }
int helper(int x) { return x; }
`, "arguments")
	parseErr(t, `
int helper(int x);
double helper(int x) { return 1.0; }
int main() { return 0; }
`, "conflicting")
}

func TestSemaErrors(t *testing.T) {
	cases := []struct{ name, src, sub string }{
		{"void var", "void v; int main() { return 0; }", "void"},
		{"neg array", "int a[0]; int main() { return 0; }", "positive"},
		{"bad index", "int main() { int x; return x[0]; }", "pointer or array"},
		{"deref int", "int main() { int x; return *x; }", "dereference"},
		{"float mod", "int main() { double d; d = d % 2.0; return 0; }", "integer"},
		{"float shift", "int main() { double d; d = d << 1; return 0; }", "integer"},
		{"negate ptr", "int main() { int *p; p = -p; return 0; }", "negate"},
		{"string to int array", "int a[4] = \"hi\"; int main() { return 0; }", "char array"},
		{"long string", "char s[2] = \"toolong\"; int main() { return 0; }", "too long"},
		{"array scalar init", "int a[3] = 5; int main() { return 0; }", "braced"},
		{"too many inits", "int a[2] = {1,2,3}; int main() { return 0; }", "too many"},
		{"nonconst init", "int g = 1; int h = g; int main() { return 0; }", "constant"},
		{"return in void", "void f() { return 3; } int main() { return 0; }", "returns a value"},
		{"missing return value", "int f() { return; } int main() { return 0; }", "must return"},
		{"continue outside", "int main() { continue; return 0; }", "outside"},
		{"address of literal", "int main() { int *p = &5; return 0; }", "address"},
		{"inc literal", "int main() { 5++; return 0; }", "lvalue"},
		{"compound on array", "int a[3]; int main() { a += 1; return 0; }", "lvalue"},
		{"builtin arity", "int main() { print_int(1, 2); return 0; }", "one argument"},
		{"builtin type", "int main() { int x; print_str(x); return 0; }", "type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parseErr(t, tc.src, tc.sub)
		})
	}
}

func TestScoping(t *testing.T) {
	// Inner declarations shadow outer ones; for-init scopes to the loop.
	src := `
int x = 1;
int main() {
	int x = 2;
	{
		int x = 3;
		print_int(x);
	}
	print_int(x);
	int i;
	for (i = 0; i < 1; i++) {
		int x = 4;
		print_int(x);
	}
	print_int(x);
	return 0;
}`
	parseOK(t, src)

	parseErr(t, `
int main() {
	for (int j = 0; j < 3; j++) { }
	return j;
}`, "undefined")
}

func TestCasts(t *testing.T) {
	parseOK(t, `
int main() {
	double d = 3.7;
	int i = (int)d;
	char *p = (char*)0;
	int addr = (int)p;
	double back = (double)i;
	print_int(i + addr);
	print_double(back);
	return 0;
}`)
	parseErr(t, `int main() { int *p; double d; p = (int*)d; return 0; }`, "cast")
}

func TestStringInterning(t *testing.T) {
	p := parseOK(t, `
int main() {
	print_str("same");
	print_str("same");
	print_str("different");
	return 0;
}`)
	if len(p.Strings) != 2 {
		t.Errorf("%d interned strings, want 2", len(p.Strings))
	}
}

func TestLexerDetails(t *testing.T) {
	parseOK(t, `
/* block comment
   spanning lines */
int main() {
	// line comment
	int hex = 0xFF;
	int big = 0x7FFFFFFF;
	double sci = 1.5e3;
	double frac = 0.25;
	print_int(hex + (sci > 0.0) + (frac > 0.0) + big);
	return 0;
}`)
	parseErr(t, `int main() { return 0; } /* unterminated`, "comment")
	parseErr(t, "int main() { char c = 'ab'; return 0; }", "")
	parseErr(t, `int main() { print_str("unterminated); return 0; }`, "")
}
