package mcc_test

// The standing miscompile fuzzer: generate a synthetic corpus program
// (internal/synth) and assert the full corpus property — it compiles
// for every paper configuration, the linked image passes the
// machine-code verifier, and every configuration computes identical
// observable output. Any divergence between D16 and DLXe codegen for
// well-defined MC programs surfaces here as a differential failure with
// the (class, seed) identity needed to reproduce it.
//
// This lives in package mcc_test (not mcc): synth sits on top of the
// compiler, so an internal test would be an import cycle. The seeded
// corpus under testdata/fuzz/FuzzDifferential keeps a spread of classes
// and seeds in every `make fuzz-short` run; `go test -fuzz
// FuzzDifferential ./internal/mcc/` digs beyond it.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/synth"
)

func FuzzDifferential(f *testing.F) {
	classes := synth.Classes()
	for i, class := range classes {
		_ = class
		f.Add(uint64(1000+i), byte('0'+i))
		f.Add(uint64(0xfeed+i*7919), byte('0'+i))
	}
	specs := isa.PaperConfigs()
	f.Fuzz(func(t *testing.T, seed uint64, classSel byte) {
		class := classes[int(classSel)%len(classes)]
		p, err := synth.Generate(class, uint32(seed)^uint32(seed>>32))
		if err != nil {
			t.Fatal(err)
		}
		if err := synth.Check(p, specs); err != nil {
			t.Errorf("corpus property violated: %v", err)
		}
	})
}
