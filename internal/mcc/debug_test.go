package mcc

import (
	"testing"

	"repro/internal/isa"
)

// Regression tests distilled from benchmark failures.

func TestPointerParamDoubleArray(t *testing.T) {
	src := `
double a[100];

int idamax(int m, double *dx) {
	int i, best = 0;
	double dmax = dx[0];
	if (dmax < 0.0) dmax = -dmax;
	for (i = 1; i < m; i++) {
		double v = dx[i];
		if (v < 0.0) v = -v;
		if (v > dmax) { dmax = v; best = i; }
	}
	return best;
}

int main() {
	int i;
	for (i = 0; i < 100; i++) {
		a[i] = i * 7 % 13;
		a[i] = a[i] - 6.0;
	}
	int k;
	for (k = 0; k < 3; k++) {
		print_int(idamax(10, &a[k * 40 + k]));
		print_char(' ');
	}
	print_int(idamax(100, a));
	return 0;
}`
	// Max |a[i]| = 6 first occurs at relative index 0, 9, 7 for the three
	// shifted windows, and at 0 over the whole array.
	for _, spec := range isa.PaperConfigs() {
		got, _, _ := runMC(t, src, spec)
		want := "0 9 7 0"
		if got != want {
			t.Errorf("%s: %q, want %q", spec, got, want)
		}
	}
}

func TestCharGlobalsAndTokenizer(t *testing.T) {
	src := `
char input[64] = "add r1 r2 r3\nmvi r4 77\n";
char tok[16];
int pos;

int isspace_(int c) { return c == ' ' || c == '\t'; }

int readtok() {
	while (isspace_(input[pos])) pos++;
	int n = 0;
	while (input[pos] && input[pos] != '\n' && !isspace_(input[pos]) && n < 15) {
		tok[n++] = input[pos++];
	}
	tok[n] = 0;
	return n;
}

int nextline() {
	while (input[pos] && input[pos] != '\n') pos++;
	if (input[pos] == '\n') { pos++; return 1; }
	return 0;
}

int main() {
	pos = 0;
	int total = 0;
	int more = 1;
	while (more) {
		int n = readtok();
		if (n == 0) { more = nextline(); continue; }
		total += n;
		print_int(n);
		print_char(' ');
	}
	print_int(total);
	return 0;
}`
	for _, spec := range isa.PaperConfigs() {
		got, _, _ := runMC(t, src, spec)
		want := "3 2 2 2 3 2 2 16"
		if got != want {
			t.Errorf("%s: %q, want %q", spec, got, want)
		}
	}
}
