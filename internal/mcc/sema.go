package mcc

// Semantic checks and implicit-conversion insertion, called from the
// parser as nodes are built. After checking, every expression node has a
// type; arrays appear only behind Conv-free decay (an Ident or Index whose
// type is KArray is always immediately consumed by & / [] / decay), and
// all arithmetic is performed on operands of identical type.

// Builtin print functions (mapped to simulator traps by the backend).
var builtins = map[string]struct {
	param *Type
	ret   *Type
}{
	"print_int":    {TypeInt, TypeVoid},
	"print_char":   {TypeInt, TypeVoid},
	"print_str":    {PtrTo(TypeChar), TypeVoid},
	"print_double": {TypeDouble, TypeVoid},
}

// IsBuiltin reports whether name is a compiler builtin.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

// decay inserts array-to-pointer decay.
func (p *parser) decay(x Expr) Expr {
	if x.Type() != nil && x.Type().K == KArray {
		c := &Conv{exprBase{x.Pos(), x.Type().Decay()}, x}
		return c
	}
	return x
}

// convTo converts x to type t, folding literals and inserting Conv nodes
// for int<->float changes. char and int are register-identical.
func (p *parser) convTo(x Expr, t *Type) Expr {
	xt := x.Type()
	if xt.Same(t) {
		return x
	}
	// Literal folding.
	switch lit := x.(type) {
	case *IntLit:
		if t.IsFloat() {
			return &FloatLit{exprBase{x.Pos(), t}, float64(lit.Val)}
		}
		if t.IsInteger() || t.IsPtr() {
			lit.Ty = t
			return lit
		}
	case *FloatLit:
		if t.IsFloat() {
			lit.Ty = t
			return lit
		}
		if t.IsInteger() {
			return &IntLit{exprBase{x.Pos(), t}, int64(int32(lit.Val))}
		}
	}
	if xt.IsInteger() && t.IsInteger() {
		// char <-> int: no representation change in registers.
		c := &Conv{exprBase{x.Pos(), t}, x}
		return c
	}
	return &Conv{exprBase{x.Pos(), t}, x}
}

func (p *parser) checkIdent(pos Pos, name string) Expr {
	sym := p.lookup(name)
	if sym == nil {
		p.errf(pos, "undefined identifier %q", name)
		return &IntLit{exprBase{pos, TypeInt}, 0}
	}
	if sym.Kind == SymFunc {
		p.errf(pos, "function %q used as value", name)
		return &IntLit{exprBase{pos, TypeInt}, 0}
	}
	return &Ident{exprBase{pos, sym.Ty}, name, sym}
}

func (p *parser) checkCall(pos Pos, name string, args []Expr) Expr {
	if b, ok := builtins[name]; ok {
		if len(args) != 1 {
			p.errf(pos, "%s takes one argument", name)
			return &Call{exprBase{pos, b.ret}, name, args, nil}
		}
		a := p.decay(args[0])
		if b.param.IsArith() && a.Type().IsArith() {
			a = p.convTo(a, b.param)
		} else if !a.Type().Same(b.param) && !(b.param.IsPtr() && a.Type().IsPtr()) {
			p.errf(pos, "%s argument has type %s, want %s", name, a.Type(), b.param)
		}
		return &Call{exprBase{pos, b.ret}, name, []Expr{a}, nil}
	}
	sym := p.globals[name]
	if sym == nil || sym.Kind != SymFunc {
		p.errf(pos, "call to undefined function %q", name)
		return &Call{exprBase{pos, TypeInt}, name, args, nil}
	}
	if len(args) != len(sym.Params) {
		p.errf(pos, "%q takes %d arguments, got %d", name, len(sym.Params), len(args))
	}
	for i := range args {
		args[i] = p.decay(args[i])
		if i < len(sym.Params) {
			want := sym.Params[i].Ty
			at := args[i].Type()
			switch {
			case want.IsArith() && at.IsArith():
				args[i] = p.convTo(args[i], want)
			case want.IsPtr() && at.IsPtr():
				// Pointers interconvert freely in MC.
			case want.IsPtr() && isZeroLit(args[i]):
			default:
				if !at.Same(want) {
					p.errf(args[i].Pos(), "argument %d has type %s, want %s", i+1, at, want)
				}
			}
		}
	}
	return &Call{exprBase{pos, sym.Ret}, name, args, sym}
}

func isZeroLit(x Expr) bool {
	lit, ok := x.(*IntLit)
	return ok && lit.Val == 0
}

func (p *parser) checkIndex(pos Pos, x, idx Expr) Expr {
	x = p.decay(x)
	if !x.Type().IsPtr() {
		p.errf(pos, "indexed expression has type %s, want pointer or array", x.Type())
		return &IntLit{exprBase{pos, TypeInt}, 0}
	}
	if !idx.Type().IsInteger() {
		p.errf(pos, "array index has type %s, want integer", idx.Type())
	}
	return &Index{exprBase{pos, x.Type().Elem}, x, p.convTo(idx, TypeInt)}
}

// lvalue reports whether x can be assigned to / address-taken.
func lvalue(x Expr) bool {
	switch v := x.(type) {
	case *Ident:
		return v.Sym.Ty.K != KArray
	case *Index:
		return true
	case *Unary:
		return v.Op == TokStar
	}
	return false
}

func (p *parser) checkUnary(pos Pos, op TokKind, x Expr) Expr {
	switch op {
	case TokMinus:
		x = p.decay(x)
		if !x.Type().IsArith() {
			p.errf(pos, "cannot negate %s", x.Type())
			return x
		}
		switch lit := x.(type) {
		case *IntLit:
			lit.Val = int64(int32(-lit.Val))
			return lit
		case *FloatLit:
			lit.Val = -lit.Val
			return lit
		}
		t := x.Type()
		if t.K == KChar {
			t = TypeInt
		}
		return &Unary{exprBase{pos, t}, op, false, x}
	case TokTilde:
		x = p.decay(x)
		if !x.Type().IsInteger() {
			p.errf(pos, "cannot complement %s", x.Type())
			return x
		}
		if lit, ok := x.(*IntLit); ok {
			lit.Val = int64(^int32(lit.Val))
			return lit
		}
		return &Unary{exprBase{pos, TypeInt}, op, false, x}
	case TokBang:
		x = p.decay(x)
		if !x.Type().IsScalar() {
			p.errf(pos, "cannot logically negate %s", x.Type())
		}
		if lit, ok := x.(*IntLit); ok {
			if lit.Val == 0 {
				lit.Val = 1
			} else {
				lit.Val = 0
			}
			lit.Ty = TypeInt
			return lit
		}
		return &Unary{exprBase{pos, TypeInt}, op, false, x}
	case TokStar:
		x = p.decay(x)
		if !x.Type().IsPtr() {
			p.errf(pos, "cannot dereference %s", x.Type())
			return &IntLit{exprBase{pos, TypeInt}, 0}
		}
		return &Unary{exprBase{pos, x.Type().Elem}, op, false, x}
	case TokAmp:
		if !lvalue(x) {
			// &array is the array's address: allow it explicitly.
			if id, ok := x.(*Ident); ok && id.Sym.Ty.K == KArray {
				return &Conv{exprBase{pos, PtrTo(id.Sym.Ty.Elem)}, x}
			}
			p.errf(pos, "cannot take the address of this expression")
			return &IntLit{exprBase{pos, TypeInt}, 0}
		}
		if id, ok := x.(*Ident); ok && id.Sym.Kind != SymGlobal {
			// Taking a scalar local's address forces it into memory.
			id.Sym.Slot = -2 // flag for irgen: demote to stack
		}
		return &Unary{exprBase{pos, PtrTo(x.Type())}, op, false, x}
	}
	p.errf(pos, "bad unary operator")
	return x
}

func (p *parser) checkIncDec(pos Pos, op TokKind, x Expr, post bool) Expr {
	if !lvalue(x) {
		p.errf(pos, "++/-- requires an lvalue")
		return x
	}
	t := x.Type()
	if !t.IsScalar() {
		p.errf(pos, "++/-- requires a scalar, got %s", t)
	}
	return &Unary{exprBase{pos, t}, op, post, x}
}

func (p *parser) checkCast(pos Pos, t *Type, x Expr) Expr {
	x = p.decay(x)
	xt := x.Type()
	switch {
	case t.Same(xt):
		return x
	case t.IsArith() && xt.IsArith():
		return p.convTo(x, t)
	case t.IsPtr() && (xt.IsPtr() || xt.IsInteger()):
		return &Conv{exprBase{pos, t}, x}
	case t.IsInteger() && xt.IsPtr():
		return &Conv{exprBase{pos, t}, x}
	case t.K == KVoid:
		return &Conv{exprBase{pos, t}, x}
	}
	p.errf(pos, "cannot cast %s to %s", xt, t)
	return x
}

func (p *parser) checkBinary(pos Pos, op TokKind, x, y Expr) Expr {
	x, y = p.decay(x), p.decay(y)
	xt, yt := x.Type(), y.Type()

	switch op {
	case TokAndAnd, TokOrOr:
		if !xt.IsScalar() || !yt.IsScalar() {
			p.errf(pos, "logical operator needs scalar operands")
		}
		return &Binary{exprBase{pos, TypeInt}, op, x, y}

	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		switch {
		case xt.IsArith() && yt.IsArith():
			c := Common(xt, yt)
			x, y = p.convTo(x, c), p.convTo(y, c)
		case xt.IsPtr() && yt.IsPtr():
		case xt.IsPtr() && isZeroLit(y), yt.IsPtr() && isZeroLit(x):
		default:
			p.errf(pos, "cannot compare %s and %s", xt, yt)
		}
		if f := foldCompare(op, x, y); f != nil {
			return f
		}
		return &Binary{exprBase{pos, TypeInt}, op, x, y}

	case TokPlus, TokMinus:
		switch {
		case xt.IsPtr() && yt.IsInteger():
			return &Binary{exprBase{pos, xt}, op, x, p.convTo(y, TypeInt)}
		case op == TokPlus && xt.IsInteger() && yt.IsPtr():
			return &Binary{exprBase{pos, yt}, op, p.convTo(x, TypeInt), y}
		case op == TokMinus && xt.IsPtr() && yt.IsPtr():
			return &Binary{exprBase{pos, TypeInt}, op, x, y}
		}
		fallthrough

	case TokStar, TokSlash:
		if !xt.IsArith() || !yt.IsArith() {
			p.errf(pos, "operator %s needs arithmetic operands, got %s and %s", op, xt, yt)
			return &IntLit{exprBase{pos, TypeInt}, 0}
		}
		c := Common(xt, yt)
		x, y = p.convTo(x, c), p.convTo(y, c)
		if f := foldArith(op, x, y); f != nil {
			return f
		}
		return &Binary{exprBase{pos, c}, op, x, y}

	case TokPercent, TokAmp, TokPipe, TokCaret, TokShl, TokShr:
		if !xt.IsInteger() || !yt.IsInteger() {
			p.errf(pos, "operator %s needs integer operands, got %s and %s", op, xt, yt)
			return &IntLit{exprBase{pos, TypeInt}, 0}
		}
		x, y = p.convTo(x, TypeInt), p.convTo(y, TypeInt)
		if f := foldArith(op, x, y); f != nil {
			return f
		}
		return &Binary{exprBase{pos, TypeInt}, op, x, y}
	}
	p.errf(pos, "bad binary operator %s", op)
	return x
}

// foldArith folds literal-literal arithmetic at compile time.
func foldArith(op TokKind, x, y Expr) Expr {
	xi, xok := x.(*IntLit)
	yi, yok := y.(*IntLit)
	if xok && yok {
		a, b := int32(xi.Val), int32(yi.Val)
		var v int32
		switch op {
		case TokPlus:
			v = a + b
		case TokMinus:
			v = a - b
		case TokStar:
			v = a * b
		case TokSlash:
			if b == 0 {
				return nil
			}
			v = a / b
		case TokPercent:
			if b == 0 {
				return nil
			}
			v = a % b
		case TokAmp:
			v = a & b
		case TokPipe:
			v = a | b
		case TokCaret:
			v = a ^ b
		case TokShl:
			v = a << (uint32(b) & 31)
		case TokShr:
			v = a >> (uint32(b) & 31)
		default:
			return nil
		}
		return &IntLit{exprBase{x.Pos(), TypeInt}, int64(v)}
	}
	xf, xok := x.(*FloatLit)
	yf, yok := y.(*FloatLit)
	if xok && yok {
		var v float64
		switch op {
		case TokPlus:
			v = xf.Val + yf.Val
		case TokMinus:
			v = xf.Val - yf.Val
		case TokStar:
			v = xf.Val * yf.Val
		case TokSlash:
			if yf.Val == 0 {
				return nil
			}
			v = xf.Val / yf.Val
		default:
			return nil
		}
		return &FloatLit{exprBase{x.Pos(), xf.Ty}, v}
	}
	return nil
}

func foldCompare(op TokKind, x, y Expr) Expr {
	xi, xok := x.(*IntLit)
	yi, yok := y.(*IntLit)
	if !xok || !yok {
		return nil
	}
	a, b := int32(xi.Val), int32(yi.Val)
	var v bool
	switch op {
	case TokEq:
		v = a == b
	case TokNe:
		v = a != b
	case TokLt:
		v = a < b
	case TokLe:
		v = a <= b
	case TokGt:
		v = a > b
	case TokGe:
		v = a >= b
	}
	r := int64(0)
	if v {
		r = 1
	}
	return &IntLit{exprBase{x.Pos(), TypeInt}, r}
}

func (p *parser) checkAssign(pos Pos, op TokKind, lhs, rhs Expr) Expr {
	if !lvalue(lhs) {
		p.errf(pos, "assignment target is not an lvalue")
		return rhs
	}
	lt := lhs.Type()
	if op == TokAssign {
		rhs = p.checkAssignConv(pos, lt, rhs)
		return &Assign{exprBase{pos, lt}, op, lhs, rhs}
	}
	// Compound assignment: type-check as the corresponding binary op.
	binOp := map[TokKind]TokKind{
		TokPlusEq: TokPlus, TokMinusEq: TokMinus, TokStarEq: TokStar,
		TokSlashEq: TokSlash, TokPercentEq: TokPercent, TokAmpEq: TokAmp,
		TokPipeEq: TokPipe, TokCaretEq: TokCaret, TokShlEq: TokShl,
		TokShrEq: TokShr,
	}[op]
	if lt.IsPtr() && (binOp == TokPlus || binOp == TokMinus) {
		if !rhs.Type().IsInteger() {
			p.errf(pos, "pointer %s needs an integer operand", op)
		}
		return &Assign{exprBase{pos, lt}, op, lhs, p.convTo(p.decay(rhs), TypeInt)}
	}
	if !lt.IsArith() {
		p.errf(pos, "compound assignment to %s", lt)
		return rhs
	}
	rhs = p.decay(rhs)
	if !rhs.Type().IsArith() {
		p.errf(pos, "operator %s needs an arithmetic operand", op)
		return rhs
	}
	// RHS computes in the common type; result converts back on store.
	c := Common(lt, rhs.Type())
	rhs = p.convTo(rhs, c)
	return &Assign{exprBase{pos, lt}, op, lhs, rhs}
}

// checkAssignConv converts an initializer/assignment RHS to the target
// type.
func (p *parser) checkAssignConv(pos Pos, lt *Type, rhs Expr) Expr {
	rhs = p.decay(rhs)
	rt := rhs.Type()
	switch {
	case lt.IsArith() && rt.IsArith():
		return p.convTo(rhs, lt)
	case lt.IsPtr() && (rt.IsPtr() || isZeroLit(rhs)):
		return rhs
	case lt.Same(rt):
		return rhs
	}
	p.errf(pos, "cannot assign %s to %s", rt, lt)
	return rhs
}

// checkCond validates a branch condition.
func (p *parser) checkCond(x Expr) Expr {
	x = p.decay(x)
	if !x.Type().IsScalar() {
		p.errf(x.Pos(), "condition has type %s, want scalar", x.Type())
	}
	return x
}

func (p *parser) checkReturn(pos Pos, x Expr) Stmt {
	fn := p.curFn
	if fn == nil {
		p.errf(pos, "return outside function")
		return &ReturnStmt{stmtBase{pos}, nil}
	}
	if fn.Ret.K == KVoid {
		if x != nil {
			p.errf(pos, "void function %q returns a value", fn.Name)
		}
		return &ReturnStmt{stmtBase{pos}, nil}
	}
	if x == nil {
		p.errf(pos, "function %q must return %s", fn.Name, fn.Ret)
		return &ReturnStmt{stmtBase{pos}, nil}
	}
	return &ReturnStmt{stmtBase{pos}, p.checkAssignConv(pos, fn.Ret, x)}
}
