package mcc

import (
	"testing"

	"repro/internal/isa"
)

// callAcross builds: p = param; call g(); return p — p must survive the
// call.
func callAcross() *IRFunc {
	f := irFunc()
	b := f.NewBlock()
	p := f.NewVReg(TI32)
	f.Params = append(f.Params, p)
	d := f.NewVReg(TI32)
	b.Ins = append(b.Ins, Ins{Op: ICall, Ty: TI32, Dst: d, A: NoV, Sym: "g"})
	s := binI(f, b, IAdd, p, d)
	retI(b, s)
	f.HasCall = true
	return f
}

func TestCallCrossingGetsCalleeSaved(t *testing.T) {
	for _, spec := range isa.PaperConfigs() {
		f := callAcross()
		a := Allocate(f, spec)
		p := f.Params[0]
		r := a.Reg[p]
		if r == isa.NoReg {
			if a.SpillSlot[p] < 0 {
				t.Fatalf("%s: param neither allocated nor spilled", spec)
			}
			continue // spilled is safe
		}
		if !isa.CalleeSaved(r) {
			t.Errorf("%s: call-crossing value in caller-saved %s", spec, r)
		}
	}
}

func TestCallAsFirstInstructionStillCrosses(t *testing.T) {
	// Regression: a call at instruction index 0 must still count as
	// crossed by parameter live ranges (assem's labdef bug).
	f := callAcross()
	a := Allocate(f, isa.DLXe())
	p := f.Params[0]
	if r := a.Reg[p]; r != isa.NoReg && !isa.CalleeSaved(r) {
		t.Fatalf("param allocated to caller-saved %s across a leading call", r)
	}
}

func TestBuiltinCrossingAvoidsReturnRegs(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	p := f.NewVReg(TI32)
	f.Params = append(f.Params, p)
	b.Ins = append(b.Ins, Ins{Op: ICall, Ty: TI32, Dst: NoV, A: NoV,
		Sym: "print_int", Args: []VReg{p}, Builtin: true})
	s := binI(f, b, IAdd, p, p) // p used after the trap
	retI(b, s)
	a := Allocate(f, isa.D16())
	if r := a.Reg[p]; r == isa.RetReg {
		t.Fatalf("value crossing a builtin trap allocated to r3 (clobbered by the argument move)")
	}
}

func TestSpillPrefersColdValues(t *testing.T) {
	// More simultaneously-live values than D16 registers, where one value
	// is used once outside the loop (cold) and the rest are used in the
	// loop (hot): the cold one must spill first.
	f := irFunc()
	pre := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()

	var hot []VReg
	for i := 0; i < 12; i++ {
		v := constI(f, pre, int64(i))
		hot = append(hot, v)
	}
	cold := constI(f, pre, 999)
	pre.Ins = append(pre.Ins, Ins{Op: IBr, Imm: int64(head.ID)})

	cond := f.NewVReg(TI32)
	head.Ins = append(head.Ins, Ins{Op: ICmp, Ty: TI32, Cond: isa.LT, Dst: cond,
		A: hot[0], B: hot[1]})
	head.Ins = append(head.Ins, Ins{Op: ICondBr, A: cond,
		Imm: int64(body.ID), Imm2: int64(exit.ID)})

	acc := f.NewVReg(TI32)
	body.Ins = append(body.Ins, Ins{Op: IConst, Ty: TI32, Dst: acc, Imm: 0})
	for _, h := range hot {
		nv := f.NewVReg(TI32)
		body.Ins = append(body.Ins, Ins{Op: IAdd, Ty: TI32, Dst: nv, A: acc, B: h})
		acc = nv
	}
	body.Ins = append(body.Ins, Ins{Op: IBr, Imm: int64(head.ID)})

	s := binI(f, exit, IAdd, cold, hot[0])
	retI(exit, s)

	f.Loops = []Loop{{Pre: pre.ID, Head: head.ID,
		Blocks: map[int]bool{head.ID: true, body.ID: true}}}

	a := Allocate(f, isa.D16())
	if a.Spills == 0 {
		t.Skip("no pressure on this configuration")
	}
	for _, h := range hot {
		if a.Reg[h] == isa.NoReg && a.SpillSlot[cold] < 0 {
			t.Fatalf("hot loop value v%d spilled while cold value kept a register", h)
		}
	}
}

func TestFPandIntFilesAreIndependent(t *testing.T) {
	f := irFunc()
	b := f.NewBlock()
	var ints, fps []VReg
	for i := 0; i < 4; i++ {
		ints = append(ints, constI(f, b, int64(i)))
		d := f.NewVReg(TF64)
		b.Ins = append(b.Ins, Ins{Op: IConst, Ty: TF64, Dst: d, FImm: float64(i)})
		fps = append(fps, d)
	}
	s := ints[0]
	for _, v := range ints[1:] {
		s = binI(f, b, IAdd, s, v)
	}
	fs := fps[0]
	for _, v := range fps[1:] {
		d := f.NewVReg(TF64)
		b.Ins = append(b.Ins, Ins{Op: IFAdd, Ty: TF64, Dst: d, A: fs, B: v})
		fs = d
	}
	retI(b, s)
	a := Allocate(f, isa.D16())
	for _, v := range ints {
		if r := a.Reg[v]; r != isa.NoReg && !r.IsGPR() {
			t.Errorf("integer vreg in %s", r)
		}
	}
	for _, v := range fps {
		if r := a.Reg[v]; r != isa.NoReg && !r.IsFPR() {
			t.Errorf("FP vreg in %s", r)
		}
	}
}

func TestNoAliasedActiveRegisters(t *testing.T) {
	// Sanity over a real program: at no point may two simultaneously-live
	// vregs share a register. Approximate check: compile the whole suite
	// of unit-test programs and rely on execution correctness; here just
	// check the allocator never hands out reserved registers.
	f := callAcross()
	for _, spec := range isa.PaperConfigs() {
		a := Allocate(f, spec)
		for v, r := range a.Reg {
			if r == isa.NoReg {
				continue
			}
			switch r {
			case isa.RegLink, isa.RegSP, isa.RegGP,
				isa.ScratchGPRs()[0], isa.ScratchGPRs()[1],
				isa.ScratchFPRs()[0], isa.ScratchFPRs()[1]:
				t.Errorf("%s: v%d allocated to reserved %s", spec, v, r)
			}
			if spec.R0Zero && r == isa.RegCC {
				t.Errorf("%s: v%d allocated to r0", spec, v)
			}
		}
	}
}
