package dlxe

import (
	"fmt"

	"repro/internal/isa"
)

// DecodeError describes an instruction word with no defined decoding.
type DecodeError struct {
	Word uint32
	PC   uint32
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("dlxe: undefined instruction %#08x at %#x", e.Word, e.PC)
}

func sext16(v uint32) int32 { return int32(int16(v)) }

// Decode reconstructs the canonical instruction from a 32-bit DLXe word.
// pc is the instruction's own address.
func Decode(word uint32, pc uint32) (isa.Instr, error) {
	op := word >> 26
	switch op {
	case opRType:
		return decodeR(word, pc)

	case opJ, opJl:
		ioff := int32(word<<6) >> 6 // sign-extend 26 bits
		o := isa.J
		if op == opJl {
			o = isa.JL
		}
		return isa.Instr{Op: o, Imm: ioff * Bytes, HasImm: true}, nil
	}

	rs1 := isa.R(int(word >> 21 & 0x1F))
	rd := isa.R(int(word >> 16 & 0x1F))
	imm := word & 0xFFFF

	mem := func(o isa.Op) (isa.Instr, error) {
		return isa.Instr{Op: o, Rd: rd, Rs1: rs1, Imm: sext16(imm)}, nil
	}
	alu := func(o isa.Op, signed bool) (isa.Instr, error) {
		v := int32(imm)
		if signed {
			v = sext16(imm)
		}
		return isa.Instr{Op: o, Rd: rd, Rs1: rs1, Imm: v, HasImm: true}, nil
	}

	switch op {
	case opLd:
		return mem(isa.LD)
	case opLdh:
		return mem(isa.LDH)
	case opLdhu:
		return mem(isa.LDHU)
	case opLdb:
		return mem(isa.LDB)
	case opLdbu:
		return mem(isa.LDBU)
	case opSt:
		return mem(isa.ST)
	case opSth:
		return mem(isa.STH)
	case opStb:
		return mem(isa.STB)
	case opAddi:
		return alu(isa.ADDI, true)
	case opSubi:
		return alu(isa.SUBI, true)
	case opAndi:
		return alu(isa.ANDI, false)
	case opOri:
		return alu(isa.ORI, false)
	case opXori:
		return alu(isa.XORI, false)
	case opShli:
		return alu(isa.SHLI, true)
	case opShri:
		return alu(isa.SHRI, true)
	case opShrai:
		return alu(isa.SHRAI, true)
	case opMvi:
		return isa.Instr{Op: isa.MVI, Rd: rd, Imm: sext16(imm), HasImm: true}, nil
	case opMvhi:
		return isa.Instr{Op: isa.MVHI, Rd: rd, Imm: int32(imm), HasImm: true}, nil
	case opBr, opBz, opBnz:
		off := sext16(imm)
		if off%Bytes != 0 {
			return isa.Instr{}, &DecodeError{word, pc}
		}
		switch op {
		case opBr:
			return isa.Instr{Op: isa.BR, Imm: off}, nil
		case opBz:
			return isa.Instr{Op: isa.BZ, Rs1: rs1, Imm: off}, nil
		default:
			return isa.Instr{Op: isa.BNZ, Rs1: rs1, Imm: off}, nil
		}
	case opTrap:
		return isa.Instr{Op: isa.TRAP, Imm: int32(imm), HasImm: true}, nil
	}

	if op >= opCmpi && op < opCmpi+10 {
		return isa.Instr{Op: isa.CMP, Cond: isa.LT + isa.Cond(op-opCmpi),
			Rd: rd, Rs1: rs1, Imm: sext16(imm), HasImm: true}, nil
	}
	return isa.Instr{}, &DecodeError{word, pc}
}

func decodeR(word uint32, pc uint32) (isa.Instr, error) {
	rs1n := int(word >> 21 & 0x1F)
	rs2n := int(word >> 16 & 0x1F)
	rdn := int(word >> 11 & 0x1F)
	fn := word & 0x7FF
	op := isa.Op(fn >> 4)
	cond := isa.Cond(fn & 0xF)
	if int(op) >= isa.NumOps || int(cond) >= isa.NumConds {
		return isa.Instr{}, &DecodeError{word, pc}
	}
	if cond != isa.CondNone && op != isa.CMP && !op.IsFCmp() {
		return isa.Instr{}, &DecodeError{word, pc}
	}

	g, f := isa.R, isa.F
	switch op {
	case isa.NOP:
		return isa.MakeNop(), nil
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SHRA:
		return isa.Instr{Op: op, Rd: g(rdn), Rs1: g(rs1n), Rs2: g(rs2n)}, nil
	case isa.MV:
		return isa.Instr{Op: op, Rd: g(rdn), Rs1: g(rs1n)}, nil
	case isa.CMP:
		return isa.Instr{Op: op, Cond: cond, Rd: g(rdn), Rs1: g(rs1n), Rs2: g(rs2n)}, nil
	case isa.J, isa.JZ, isa.JNZ, isa.JL:
		return isa.Instr{Op: op, Rs1: g(rs1n)}, nil
	case isa.RDSR:
		return isa.Instr{Op: op, Rd: g(rdn)}, nil
	case isa.FADDS, isa.FSUBS, isa.FMULS, isa.FDIVS,
		isa.FADDD, isa.FSUBD, isa.FMULD, isa.FDIVD:
		return isa.Instr{Op: op, Rd: f(rdn), Rs1: f(rs1n), Rs2: f(rs2n)}, nil
	case isa.FNEGS, isa.FNEGD:
		return isa.Instr{Op: op, Rd: f(rdn), Rs1: f(rs1n)}, nil
	case isa.FCMPS, isa.FCMPD:
		return isa.Instr{Op: op, Cond: cond, Rs1: f(rs1n), Rs2: f(rs2n)}, nil
	case isa.CVTSISF, isa.CVTSIDF:
		return isa.Instr{Op: op, Rd: f(rdn), Rs1: g(rs1n)}, nil
	case isa.CVTDFSI, isa.CVTSFSI:
		return isa.Instr{Op: op, Rd: g(rdn), Rs1: f(rs1n)}, nil
	case isa.CVTSFDF, isa.CVTDFSF:
		return isa.Instr{Op: op, Rd: f(rdn), Rs1: f(rs1n)}, nil
	case isa.MVFL, isa.MVFH:
		return isa.Instr{Op: op, Rd: f(rdn), Rs1: g(rs1n)}, nil
	case isa.FMV:
		return isa.Instr{Op: op, Rd: f(rdn), Rs1: f(rs1n)}, nil
	case isa.MFFL, isa.MFFH:
		return isa.Instr{Op: op, Rd: g(rdn), Rs1: f(rs1n)}, nil
	}
	return isa.Instr{}, &DecodeError{word, pc}
}
