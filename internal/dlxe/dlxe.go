// Package dlxe implements the binary encoding of the 32-bit DLXe
// instruction set (Figure 2 of the paper), a DLX variant with three
// formats:
//
//	I-type  [31:26]=op  [25:21]=rs1  [20:16]=rd  [15:0]=imm
//	R-type  [31:26]=0   [25:21]=rs1  [20:16]=rs2 [15:11]=rd  [10:0]=func
//	J-type  [31:26]=op  [25:0]=offset (signed instruction-unit offset)
//
// All register-register operations are R-type; func encodes the semantic
// operation (high 7 bits) and the compare condition (low 4 bits).
// Arithmetic immediates, loads/stores and mvi sign-extend their 16-bit
// field; logical immediates (andi/ori/xori) zero-extend; mvhi places its
// 16-bit field in the upper half of the destination with zero low bits.
//
// Branch and J-type displacements are relative to the instruction's own
// address, in bytes, and must be word aligned.
package dlxe

import (
	"fmt"

	"repro/internal/isa"
)

// Bytes is the fixed DLXe instruction size.
const Bytes = 4

// I-type opcode assignments.
const (
	opRType = 0
	opLd    = 1
	opLdh   = 2
	opLdhu  = 3
	opLdb   = 4
	opLdbu  = 5
	opSt    = 6
	opSth   = 7
	opStb   = 8
	opAddi  = 9
	opSubi  = 10
	opAndi  = 11
	opOri   = 12
	opXori  = 13
	opShli  = 14
	opShri  = 15
	opShrai = 16
	opMvi   = 17
	opMvhi  = 18
	opBr    = 19
	opBz    = 20
	opBnz   = 21
	opTrap  = 22
	opCmpi  = 32 // 32..41: cmpi.lt .ltu .le .leu .eq .ne .gt .gtu .ge .geu
	opJ     = 60 // J-type
	opJl    = 61 // J-type
)

// EncodeError describes an instruction the DLXe format cannot express.
type EncodeError struct {
	In  isa.Instr
	Why string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("dlxe: cannot encode %q: %s", e.In.String(), e.Why)
}

func bad(in isa.Instr, why string, args ...any) error {
	return &EncodeError{In: in, Why: fmt.Sprintf(why, args...)}
}

func reg5(in isa.Instr, r isa.Reg) (uint32, error) {
	if !r.Valid() {
		return 0, bad(in, "missing register operand")
	}
	return uint32(r.Num()), nil
}

func regOpt(r isa.Reg) uint32 {
	if !r.Valid() {
		return 0
	}
	return uint32(r.Num())
}

func encR(rs1, rs2, rd uint32, op isa.Op, cond isa.Cond) uint32 {
	fn := uint32(op)<<4 | uint32(cond)
	return rs1<<21 | rs2<<16 | rd<<11 | fn
}

func encI(op, rs1, rd uint32, imm uint32) uint32 {
	return op<<26 | rs1<<21 | rd<<16 | imm&0xFFFF
}

func immS16(in isa.Instr, v int32) (uint32, error) {
	if v < -32768 || v > 32767 {
		return 0, bad(in, "immediate %d out of signed 16-bit range", v)
	}
	return uint32(v) & 0xFFFF, nil
}

func immU16(in isa.Instr, v int32) (uint32, error) {
	if v < 0 || v > 0xFFFF {
		return 0, bad(in, "immediate %d out of unsigned 16-bit range", v)
	}
	return uint32(v), nil
}

// Encode converts one canonical instruction into its 32-bit DLXe encoding.
// pc is the instruction's own address (branch/J-type displacements in the
// canonical form are relative to it).
func Encode(in isa.Instr, pc uint32) (uint32, error) {
	switch in.Op {
	case isa.NOP:
		return encR(0, 0, 0, isa.NOP, 0), nil

	case isa.LD, isa.LDH, isa.LDHU, isa.LDB, isa.LDBU, isa.ST, isa.STH, isa.STB:
		opc := map[isa.Op]uint32{
			isa.LD: opLd, isa.LDH: opLdh, isa.LDHU: opLdhu,
			isa.LDB: opLdb, isa.LDBU: opLdbu,
			isa.ST: opSt, isa.STH: opSth, isa.STB: opStb,
		}[in.Op]
		rd, err := reg5(in, in.Rd)
		if err != nil {
			return 0, err
		}
		rs1, err := reg5(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		imm, err := immS16(in, in.Imm)
		if err != nil {
			return 0, err
		}
		return encI(opc, rs1, rd, imm), nil

	case isa.LDC:
		return 0, bad(in, "ldc is D16-only")

	case isa.BR, isa.BZ, isa.BNZ:
		if in.Imm%Bytes != 0 {
			return 0, bad(in, "branch displacement %d not word aligned", in.Imm)
		}
		imm, err := immS16(in, in.Imm)
		if err != nil {
			return 0, err
		}
		switch in.Op {
		case isa.BR:
			return encI(opBr, 0, 0, imm), nil
		case isa.BZ:
			rs1, err := reg5(in, in.Rs1)
			if err != nil {
				return 0, err
			}
			return encI(opBz, rs1, 0, imm), nil
		default:
			rs1, err := reg5(in, in.Rs1)
			if err != nil {
				return 0, err
			}
			return encI(opBnz, rs1, 0, imm), nil
		}

	case isa.J, isa.JL:
		if in.HasImm {
			if in.Imm%Bytes != 0 {
				return 0, bad(in, "jump displacement %d not word aligned", in.Imm)
			}
			ioff := in.Imm / Bytes
			if ioff < -(1<<25) || ioff >= 1<<25 {
				return 0, bad(in, "jump displacement out of 26-bit range")
			}
			opc := uint32(opJ)
			if in.Op == isa.JL {
				opc = opJl
			}
			return opc<<26 | uint32(ioff)&0x3FFFFFF, nil
		}
		rs1, err := reg5(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		return encR(rs1, 0, 0, in.Op, 0), nil

	case isa.JZ, isa.JNZ:
		if in.HasImm {
			return 0, bad(in, "conditional jumps are register-absolute only")
		}
		rs1, err := reg5(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		return encR(rs1, 0, 0, in.Op, 0), nil

	case isa.CMP:
		if in.Cond == isa.CondNone {
			return 0, bad(in, "compare without condition")
		}
		rd, err := reg5(in, in.Rd)
		if err != nil {
			return 0, err
		}
		rs1, err := reg5(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		if in.HasImm {
			imm, err := immS16(in, in.Imm)
			if err != nil {
				return 0, err
			}
			return encI(opCmpi+uint32(in.Cond-isa.LT), rs1, rd, imm), nil
		}
		rs2, err := reg5(in, in.Rs2)
		if err != nil {
			return 0, err
		}
		return encR(rs1, rs2, rd, isa.CMP, in.Cond), nil

	case isa.ADDI, isa.SUBI, isa.SHLI, isa.SHRI, isa.SHRAI:
		opc := map[isa.Op]uint32{
			isa.ADDI: opAddi, isa.SUBI: opSubi,
			isa.SHLI: opShli, isa.SHRI: opShri, isa.SHRAI: opShrai,
		}[in.Op]
		rd, err := reg5(in, in.Rd)
		if err != nil {
			return 0, err
		}
		rs1, err := reg5(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		imm, err := immS16(in, in.Imm)
		if err != nil {
			return 0, err
		}
		return encI(opc, rs1, rd, imm), nil

	case isa.ANDI, isa.ORI, isa.XORI:
		opc := map[isa.Op]uint32{isa.ANDI: opAndi, isa.ORI: opOri, isa.XORI: opXori}[in.Op]
		rd, err := reg5(in, in.Rd)
		if err != nil {
			return 0, err
		}
		rs1, err := reg5(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		imm, err := immU16(in, in.Imm)
		if err != nil {
			return 0, err
		}
		return encI(opc, rs1, rd, imm), nil

	case isa.MVI:
		rd, err := reg5(in, in.Rd)
		if err != nil {
			return 0, err
		}
		imm, err := immS16(in, in.Imm)
		if err != nil {
			return 0, err
		}
		return encI(opMvi, 0, rd, imm), nil

	case isa.MVHI:
		rd, err := reg5(in, in.Rd)
		if err != nil {
			return 0, err
		}
		imm, err := immU16(in, in.Imm)
		if err != nil {
			return 0, err
		}
		return encI(opMvhi, 0, rd, imm), nil

	case isa.TRAP:
		imm, err := immU16(in, in.Imm)
		if err != nil {
			return 0, err
		}
		return encI(opTrap, 0, 0, imm), nil

	case isa.NEG, isa.INV:
		return 0, bad(in, "neg/inv are D16-only (r0 is always zero)")

	default:
		// Everything else is an R-type register-register operation.
		rd := regOpt(in.Rd)
		rs1 := regOpt(in.Rs1)
		rs2 := regOpt(in.Rs2)
		if in.HasImm {
			return 0, bad(in, "no immediate form")
		}
		switch in.Op {
		case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
			isa.SHL, isa.SHR, isa.SHRA, isa.MV,
			isa.FADDS, isa.FSUBS, isa.FMULS, isa.FDIVS, isa.FNEGS, isa.FCMPS,
			isa.FADDD, isa.FSUBD, isa.FMULD, isa.FDIVD, isa.FNEGD, isa.FCMPD,
			isa.CVTSISF, isa.CVTSIDF, isa.CVTSFDF, isa.CVTDFSF, isa.CVTDFSI, isa.CVTSFSI,
			isa.MVFL, isa.MVFH, isa.MFFL, isa.MFFH, isa.FMV, isa.RDSR:
			return encR(rs1, rs2, rd, in.Op, in.Cond), nil
		}
		return 0, bad(in, "unsupported operation")
	}
}
