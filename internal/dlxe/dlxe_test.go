package dlxe

import (
	"testing"

	"repro/internal/isa"
)

func sampleInstrs() []isa.Instr {
	r, f := isa.R, isa.F
	return []isa.Instr{
		isa.MakeNop(),
		{Op: isa.LD, Rd: r(20), Rs1: r(2), Imm: 32760},
		{Op: isa.LD, Rd: r(4), Rs1: r(13), Imm: -32768},
		{Op: isa.LDH, Rd: r(4), Rs1: r(5), Imm: 14},
		{Op: isa.LDHU, Rd: r(4), Rs1: r(5), Imm: -2},
		{Op: isa.LDB, Rd: r(4), Rs1: r(5), Imm: 3},
		{Op: isa.LDBU, Rd: r(4), Rs1: r(5), Imm: 1},
		{Op: isa.ST, Rd: r(31), Rs1: r(2), Imm: 4},
		{Op: isa.STH, Rd: r(4), Rs1: r(5), Imm: 2},
		{Op: isa.STB, Rd: r(4), Rs1: r(5), Imm: 0},
		{Op: isa.ADD, Rd: r(10), Rs1: r(20), Rs2: r(30)},
		{Op: isa.SUB, Rd: r(1), Rs1: r(2), Rs2: r(3)},
		{Op: isa.AND, Rd: r(1), Rs1: r(2), Rs2: r(3)},
		{Op: isa.OR, Rd: r(1), Rs1: r(2), Rs2: r(3)},
		{Op: isa.XOR, Rd: r(1), Rs1: r(2), Rs2: r(3)},
		{Op: isa.SHL, Rd: r(1), Rs1: r(2), Rs2: r(3)},
		{Op: isa.SHR, Rd: r(1), Rs1: r(2), Rs2: r(3)},
		{Op: isa.SHRA, Rd: r(1), Rs1: r(2), Rs2: r(3)},
		{Op: isa.ADDI, Rd: r(1), Rs1: r(2), Imm: 32767, HasImm: true},
		{Op: isa.SUBI, Rd: r(1), Rs1: r(2), Imm: -32768, HasImm: true},
		{Op: isa.ANDI, Rd: r(1), Rs1: r(2), Imm: 0xFFFF, HasImm: true},
		{Op: isa.ORI, Rd: r(1), Rs1: r(2), Imm: 0x1234, HasImm: true},
		{Op: isa.XORI, Rd: r(1), Rs1: r(2), Imm: 0, HasImm: true},
		{Op: isa.SHLI, Rd: r(1), Rs1: r(2), Imm: 31, HasImm: true},
		{Op: isa.SHRI, Rd: r(1), Rs1: r(2), Imm: 1, HasImm: true},
		{Op: isa.SHRAI, Rd: r(1), Rs1: r(2), Imm: 16, HasImm: true},
		{Op: isa.MV, Rd: r(6), Rs1: r(7)},
		{Op: isa.MVI, Rd: r(6), Imm: -1, HasImm: true},
		{Op: isa.MVHI, Rd: r(6), Imm: 0xDEAD, HasImm: true},
		{Op: isa.CMP, Cond: isa.GEU, Rd: r(9), Rs1: r(10), Rs2: r(11)},
		{Op: isa.CMP, Cond: isa.GT, Rd: r(9), Rs1: r(10), Imm: -7, HasImm: true},
		{Op: isa.CMP, Cond: isa.LT, Rd: r(9), Rs1: r(10), Imm: 100, HasImm: true},
		{Op: isa.BR, Imm: -32768},
		{Op: isa.BZ, Rs1: r(9), Imm: 1024},
		{Op: isa.BNZ, Rs1: r(9), Imm: -4},
		{Op: isa.J, Rs1: r(12)},
		{Op: isa.JZ, Rs1: r(12)},
		{Op: isa.JNZ, Rs1: r(12)},
		{Op: isa.JL, Rs1: r(12)},
		{Op: isa.J, Imm: 4 * (1<<25 - 1), HasImm: true},
		{Op: isa.JL, Imm: -4 * (1 << 25), HasImm: true},
		{Op: isa.RDSR, Rd: r(17)},
		{Op: isa.TRAP, Imm: 2, HasImm: true},
		{Op: isa.FADDS, Rd: f(1), Rs1: f(2), Rs2: f(3)},
		{Op: isa.FSUBD, Rd: f(31), Rs1: f(30), Rs2: f(29)},
		{Op: isa.FMULD, Rd: f(8), Rs1: f(8), Rs2: f(8)},
		{Op: isa.FDIVS, Rd: f(0), Rs1: f(1), Rs2: f(2)},
		{Op: isa.FNEGS, Rd: f(5), Rs1: f(6)},
		{Op: isa.FNEGD, Rd: f(5), Rs1: f(6)},
		{Op: isa.FCMPS, Cond: isa.LE, Rs1: f(1), Rs2: f(2)},
		{Op: isa.FCMPD, Cond: isa.NE, Rs1: f(1), Rs2: f(2)},
		{Op: isa.CVTSISF, Rd: f(3), Rs1: r(4)},
		{Op: isa.CVTSIDF, Rd: f(3), Rs1: r(4)},
		{Op: isa.CVTSFDF, Rd: f(3), Rs1: f(4)},
		{Op: isa.CVTDFSF, Rd: f(3), Rs1: f(4)},
		{Op: isa.CVTDFSI, Rd: r(3), Rs1: f(4)},
		{Op: isa.CVTSFSI, Rd: r(3), Rs1: f(4)},
		{Op: isa.MVFL, Rd: f(3), Rs1: r(4)},
		{Op: isa.MVFH, Rd: f(3), Rs1: r(4)},
		{Op: isa.MFFL, Rd: r(3), Rs1: f(4)},
		{Op: isa.MFFH, Rd: r(3), Rs1: f(4)},
	}
}

func TestRoundTrip(t *testing.T) {
	const pc = 0x1000
	for _, in := range sampleInstrs() {
		word, err := Encode(in, pc)
		if err != nil {
			t.Errorf("Encode(%v): %v", in, err)
			continue
		}
		got, err := Decode(word, pc)
		if err != nil {
			t.Errorf("Decode(Encode(%v)) = %#08x: %v", in, word, err)
			continue
		}
		if got != in {
			t.Errorf("round trip %v -> %#08x -> %v", in, word, got)
		}
	}
}

func TestEncodeRejections(t *testing.T) {
	r := isa.R
	cases := []struct {
		name string
		in   isa.Instr
	}{
		{"ldc", isa.Instr{Op: isa.LDC, Rd: isa.RegCC, Imm: 4}},
		{"neg", isa.Instr{Op: isa.NEG, Rd: r(4), Rs1: r(4)}},
		{"inv", isa.Instr{Op: isa.INV, Rd: r(4), Rs1: r(4)}},
		{"wide imm", isa.Instr{Op: isa.ADDI, Rd: r(4), Rs1: r(4), Imm: 32768, HasImm: true}},
		{"negative logical imm", isa.Instr{Op: isa.ORI, Rd: r(4), Rs1: r(4), Imm: -1, HasImm: true}},
		{"wide displacement", isa.Instr{Op: isa.LD, Rd: r(4), Rs1: r(2), Imm: 32768}},
		{"unaligned branch", isa.Instr{Op: isa.BR, Imm: 2}},
		{"far branch", isa.Instr{Op: isa.BR, Imm: 65536}},
		{"far jump", isa.Instr{Op: isa.J, Imm: 4 << 25, HasImm: true}},
	}
	for _, tc := range cases {
		if _, err := Encode(tc.in, 0x1000); err == nil {
			t.Errorf("%s: expected encode error for %v", tc.name, tc.in)
		}
	}
}

// TestDecodeCanonical checks that every word that decodes successfully
// re-encodes to itself, across a structured sweep of the opcode space.
func TestDecodeCanonical(t *testing.T) {
	const pc = 0x1000
	count := 0
	for op := uint32(0); op < 64; op++ {
		for fields := uint32(0); fields < 1<<11; fields += 37 {
			word := op<<26 | fields<<15 | fields
			in, err := Decode(word, pc)
			if err != nil {
				continue
			}
			back, err := Encode(in, pc)
			if err != nil {
				t.Fatalf("word %#08x decoded to %v which does not re-encode: %v", word, in, err)
			}
			again, err := Decode(back, pc)
			if err != nil {
				t.Fatalf("re-encoded word %#08x does not decode: %v", back, err)
			}
			if again != in {
				t.Fatalf("word %#08x -> %v -> %#08x -> %v (not canonical)", word, in, back, again)
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("sweep decoded nothing")
	}
}
