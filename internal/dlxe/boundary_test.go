package dlxe

import (
	"testing"

	"repro/internal/isa"
)

const bpc = uint32(isa.TextBase)

// roundTrip encodes in, decodes it back, and requires identical bits
// from a re-encode with matching op and immediate.
func roundTrip(t *testing.T, in isa.Instr) {
	t.Helper()
	w, err := Encode(in, bpc)
	if err != nil {
		t.Fatalf("encode %q: %v", in.String(), err)
	}
	dec, err := Decode(w, bpc)
	if err != nil {
		t.Fatalf("decode %#08x (%q): %v", w, in.String(), err)
	}
	if dec.Op != in.Op || dec.Imm != in.Imm {
		t.Fatalf("round trip %q -> %q (op %v imm %d)", in.String(), dec.String(), dec.Op, dec.Imm)
	}
	w2, err := Encode(dec, bpc)
	if err != nil {
		t.Fatalf("re-encode %q: %v", dec.String(), err)
	}
	if w2 != w {
		t.Fatalf("re-encode %q: %#08x != %#08x", in.String(), w2, w)
	}
}

func mustFail(t *testing.T, in isa.Instr) {
	t.Helper()
	if w, err := Encode(in, bpc); err == nil {
		t.Fatalf("encode %q: got %#08x, want range error", in.String(), w)
	}
}

// TestBranchBoundary16: branches carry a signed 16-bit byte displacement
// in instruction-sized (4-byte) steps.
func TestBranchBoundary16(t *testing.T) {
	r5 := isa.R(5)
	for _, imm := range []int32{-32768, -4, 0, 4, 32764} {
		roundTrip(t, isa.Instr{Op: isa.BR, Imm: imm, HasImm: true})
		roundTrip(t, isa.Instr{Op: isa.BZ, Rs1: r5, Imm: imm, HasImm: true})
	}
	mustFail(t, isa.Instr{Op: isa.BR, Imm: -32772, HasImm: true})
	mustFail(t, isa.Instr{Op: isa.BR, Imm: 32768, HasImm: true})
	mustFail(t, isa.Instr{Op: isa.BR, Imm: 6, HasImm: true}) // unaligned
}

// TestJTypeBoundary: the 26-bit J-format word offset reaches
// [-2^25, 2^25) instructions.
func TestJTypeBoundary(t *testing.T) {
	j := func(op isa.Op, imm int32) isa.Instr {
		return isa.Instr{Op: op, Imm: imm, HasImm: true}
	}
	lo := int32(-(1 << 25)) * 4
	hi := int32((1<<25)-1) * 4
	for _, imm := range []int32{lo, -4, 0, 4, hi} {
		roundTrip(t, j(isa.J, imm))
		roundTrip(t, j(isa.JL, imm))
	}
	mustFail(t, j(isa.J, lo-4))
	mustFail(t, j(isa.J, hi+4))
	mustFail(t, j(isa.J, 2)) // unaligned
}

// TestImm16Boundary: I-format immediates are signed 16-bit (memory
// displacements, ALU immediates) or unsigned 16-bit (logical ops).
func TestImm16Boundary(t *testing.T) {
	r4, r5 := isa.R(4), isa.R(5)
	mem := func(imm int32) isa.Instr { return isa.Instr{Op: isa.LD, Rd: r4, Rs1: r5, Imm: imm} }
	for _, imm := range []int32{-32768, 0, 32767} {
		roundTrip(t, mem(imm))
	}
	mustFail(t, mem(-32769))
	mustFail(t, mem(32768))

	andi := func(imm int32) isa.Instr {
		return isa.Instr{Op: isa.ANDI, Rd: r4, Rs1: r5, Imm: imm, HasImm: true}
	}
	for _, imm := range []int32{0, 0xFFFF} {
		roundTrip(t, andi(imm))
	}
	mustFail(t, andi(-1))
	mustFail(t, andi(0x10000))
}
