package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// operand is one parsed instruction operand.
type operand struct {
	kind operandKind
	reg  isa.Reg // kindReg, and the base register of kindMem
	e    expr    // kindExpr, kindMem (displacement), kindLit
}

type operandKind uint8

const (
	kindReg operandKind = iota
	kindExpr
	kindMem // expr(reg)
	kindLit // =expr (literal-pool reference)
)

var regAliases = map[string]isa.Reg{
	"lr": isa.RegLink,
	"sp": isa.RegSP,
	"gp": isa.RegGP,
}

func parseReg(s string) (isa.Reg, bool) {
	if r, ok := regAliases[s]; ok {
		return r, true
	}
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'f') {
		return isa.NoReg, false
	}
	n := 0
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return isa.NoReg, false
		}
		n = n*10 + int(c-'0')
		if n > 31 {
			return isa.NoReg, false
		}
	}
	if s[0] == 'f' {
		return isa.F(n), true
	}
	return isa.R(n), true
}

func parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	if r, ok := parseReg(s); ok {
		return operand{kind: kindReg, reg: r}, nil
	}
	if s[0] == '=' {
		e, err := parseExpr(s[1:])
		if err != nil {
			return operand{}, err
		}
		return operand{kind: kindLit, e: e}, nil
	}
	// expr(reg) memory form: find a trailing "(reg)" that is not part of a
	// lo16(...)-style modifier call.
	if strings.HasSuffix(s, ")") {
		if i := strings.LastIndex(s, "("); i >= 0 {
			if r, ok := parseReg(strings.TrimSpace(s[i+1 : len(s)-1])); ok {
				dispStr := strings.TrimSpace(s[:i])
				var disp expr
				if dispStr != "" {
					var err error
					disp, err = parseExpr(dispStr)
					if err != nil {
						return operand{}, err
					}
				}
				return operand{kind: kindMem, reg: r, e: disp}, nil
			}
		}
	}
	e, err := parseExpr(s)
	if err != nil {
		return operand{}, err
	}
	return operand{kind: kindExpr, e: e}, nil
}

// splitOperands splits on top-level commas (commas never appear inside the
// supported operand forms except within character literals).
func splitOperands(s string) []string {
	var out []string
	depth := 0
	inChar := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inChar:
			if c == '\'' && s[i-1] != '\\' {
				inChar = false
			}
		case c == '\'':
			inChar = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if strings.TrimSpace(s[start:]) != "" || len(out) > 0 {
		out = append(out, s[start:])
	}
	return out
}

// stripComment removes ; or # comments, respecting string and character
// literals.
func stripComment(line string) string {
	inStr, inChar := false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr:
			if c == '"' && line[i-1] != '\\' {
				inStr = false
			}
		case inChar:
			if c == '\'' && line[i-1] != '\\' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == ';' || c == '#':
			return line[:i]
		}
	}
	return line
}

// mnemonic resolves an instruction mnemonic, which may carry a condition
// suffix (cmp.lt, cmp.sf.le) or be an operation whose name itself contains
// a dot (add.sf, si2sf).
func mnemonic(tok string) (isa.Op, isa.Cond, bool) {
	if op := isa.OpByName(tok); op != isa.BAD {
		return op, isa.CondNone, true
	}
	if i := strings.LastIndex(tok, "."); i > 0 {
		base, suffix := tok[:i], tok[i+1:]
		if op := isa.OpByName(base); op != isa.BAD {
			if c := isa.CondByName(suffix); c != isa.CondNone {
				return op, c, true
			}
		}
	}
	return isa.BAD, isa.CondNone, false
}
