package asm

import (
	"testing"
	"testing/quick"
)

func TestParseExprForms(t *testing.T) {
	cases := []struct {
		in   string
		sym  string
		off  int64
		mod  modifier
		fail bool
	}{
		{in: "42", off: 42},
		{in: "-42", off: -42},
		{in: "0x10", off: 16},
		{in: "'A'", off: 65},
		{in: `'\n'`, off: 10},
		{in: "foo", sym: "foo"},
		{in: "foo+4", sym: "foo", off: 4},
		{in: "foo-8", sym: "foo", off: -8},
		{in: "foo+4-2", sym: "foo", off: 2},
		{in: "lo16(foo+4)", sym: "foo", off: 4, mod: modLo16},
		{in: "hi16(bar)", sym: "bar", mod: modHi16},
		{in: "gprel(baz-4)", sym: "baz", off: -4, mod: modGPRel},
		{in: "", fail: true},
		{in: "foo+bar", fail: true},
		{in: "12abc", fail: true},
		{in: "+", fail: true},
	}
	for _, tc := range cases {
		e, err := parseExpr(tc.in)
		if tc.fail {
			if err == nil {
				t.Errorf("parseExpr(%q) should fail", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseExpr(%q): %v", tc.in, err)
			continue
		}
		if e.sym != tc.sym || e.off != tc.off || e.mod != tc.mod {
			t.Errorf("parseExpr(%q) = %+v", tc.in, e)
		}
	}
}

// Property: String/parseExpr round trip for symbol+offset expressions.
func TestExprStringRoundTrip(t *testing.T) {
	f := func(off int32, useSym bool, mod uint8) bool {
		e := expr{off: int64(off)}
		if useSym {
			e.sym = "sym"
		}
		e.mod = modifier(mod % 4)
		got, err := parseExpr(e.String())
		if err != nil {
			return false
		}
		return got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExprEval(t *testing.T) {
	lookup := func(s string) (uint32, bool) {
		if s == "x" {
			return 0x41000, true
		}
		return 0, false
	}
	cases := []struct {
		e    expr
		want int64
	}{
		{expr{sym: "x", off: 8}, 0x41008},
		{expr{sym: "x", mod: modGPRel}, 0x1000},
		{expr{sym: "x", mod: modLo16}, 0x1000},
		{expr{sym: "x", mod: modHi16}, 0x4},
		{expr{off: -3}, -3},
	}
	for _, tc := range cases {
		v, err := tc.e.eval(lookup)
		if err != nil {
			t.Errorf("eval(%v): %v", tc.e, err)
			continue
		}
		if v != tc.want {
			t.Errorf("eval(%v) = %#x, want %#x", tc.e, v, tc.want)
		}
	}
	if _, err := (expr{sym: "ghost"}).eval(lookup); err == nil {
		t.Error("undefined symbol must fail")
	}
}

func TestUnquoteString(t *testing.T) {
	cases := map[string]string{
		`"plain"`:       "plain",
		`"a\nb"`:        "a\nb",
		`"tab\there"`:   "tab\there",
		`"q\"q"`:        `q"q`,
		`"null\0end"`:   "null\x00end",
		`"back\\slash"`: `back\slash`,
		`"cr\r"`:        "cr\r",
	}
	for in, want := range cases {
		got, err := unquoteString(in)
		if err != nil {
			t.Errorf("unquoteString(%s): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("unquoteString(%s) = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{`"unterminated`, `noquotes`, `"bad\q"`, `"trail\"`} {
		if _, err := unquoteString(bad); err == nil {
			t.Errorf("unquoteString(%s) should fail", bad)
		}
	}
}
