// Package asm implements a two-pass assembler for the common assembly
// language shared by the D16 and DLXe targets.
//
// The same source assembles for either target: the assembler accepts the
// canonical three-operand syntax everywhere and validates two-address
// constraints at encode time, expands target-dependent pseudo-instructions
// (la/li, call, ret, j/jl to a label), manages D16 literal pools (the LDC
// mechanism), and relaxes out-of-range branches into far sequences.
//
// Directives: .text .data .global .align .word .half .byte .asciiz .space
// .pool — plus labels ("name:") and ;/# comments.
//
// Delay slots are architectural and explicit: the assembler never inserts
// them. Writers (including the compiler) place the delay-slot instruction
// textually after every branch, jump and call.
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/telemetry"
)

type section uint8

const (
	secText section = iota
	secData
	secBSS // zero-initialized data: addressed after .data, occupies no file bytes
)

type tgtKind uint8

const (
	tgtNone   tgtKind = iota
	tgtAbs            // Imm = eval(expr) directly
	tgtBranch         // Imm = eval(expr) - item address (relaxable)
	tgtJump           // J-type: Imm = eval(expr) - item address
	tgtLit            // literal pool reference: Imm = literal addr - item address
)

type itemKind uint8

const (
	itInstr itemKind = iota
	itLabel
	itPool
	itAlign
	itWord
	itHalf
	itByte
	itAscii
	itSpace
)

type literal struct {
	e    expr
	addr uint32
}

type item struct {
	kind itemKind
	sec  section
	line int
	addr uint32
	size uint32

	// itInstr
	in      isa.Instr
	tgt     expr
	tgtKind tgtKind
	noRelax bool // part of an already-expanded far sequence
	lit     *literal

	// itLabel / itWord / itHalf / itByte / itAscii / itSpace / itAlign
	name  string
	exprs []expr
	data  []byte
	n     uint32

	// itPool
	lits []*literal
}

// Assembler holds one assembly unit in progress.
type Assembler struct {
	spec     *isa.Spec
	items    []*item
	sec      section
	globals  map[string]bool
	errs     []error
	farSeq   int
	file     string
	bssBytes uint32
}

// Assemble assembles one complete program (a single unit; the compiler
// concatenates the runtime library and all compiled code into one source).
func Assemble(file, src string, spec *isa.Spec) (*prog.Image, error) {
	a := &Assembler{spec: spec, globals: map[string]bool{}, file: file}
	span := telemetry.StartSpan("assemble", telemetry.String("file", file))
	for i, line := range strings.Split(src, "\n") {
		a.parseLine(i+1, line)
	}
	span.End()
	if len(a.errs) > 0 {
		return nil, a.joined()
	}
	lspan := telemetry.StartSpan("link", telemetry.String("file", file))
	defer lspan.End()
	return a.link()
}

func (a *Assembler) errf(line int, format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("%s:%d: %s", a.file, line, fmt.Sprintf(format, args...)))
}

func (a *Assembler) joined() error {
	const max = 20
	errs := a.errs
	if len(errs) > max {
		errs = append(errs[:max:max], fmt.Errorf("... and %d more errors", len(a.errs)-max))
	}
	return errors.Join(errs...)
}

func (a *Assembler) add(it *item) *item {
	it.sec = a.sec
	a.items = append(a.items, it)
	return it
}

func (a *Assembler) instr(line int, in isa.Instr) *item {
	return a.add(&item{kind: itInstr, line: line, in: in})
}

// --- line parsing ---------------------------------------------------------

func (a *Assembler) parseLine(lineNo int, raw string) {
	line := strings.TrimSpace(stripComment(raw))
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(line[:i])
		if !validSymbol(name) {
			break
		}
		a.add(&item{kind: itLabel, line: lineNo, name: name})
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		return
	}
	if line[0] == '.' {
		a.parseDirective(lineNo, line)
		return
	}

	fields := strings.SplitN(line, " ", 2)
	mn := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = fields[1]
	}
	var ops []operand
	if strings.TrimSpace(rest) != "" {
		for _, s := range splitOperands(rest) {
			op, err := parseOperand(s)
			if err != nil {
				a.errf(lineNo, "%v", err)
				return
			}
			ops = append(ops, op)
		}
	}
	a.buildInstr(lineNo, mn, ops)
}

func (a *Assembler) parseDirective(lineNo int, line string) {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".bss":
		a.sec = secBSS
	case ".global", ".globl":
		a.globals[rest] = true
	case ".pool":
		a.add(&item{kind: itPool, line: lineNo})
	case ".align":
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			a.errf(lineNo, "bad alignment %q", rest)
			return
		}
		a.add(&item{kind: itAlign, line: lineNo, n: uint32(n)})
	case ".word", ".half", ".byte":
		kind := map[string]itemKind{".word": itWord, ".half": itHalf, ".byte": itByte}[dir]
		it := &item{kind: kind, line: lineNo}
		for _, s := range splitOperands(rest) {
			e, err := parseExpr(s)
			if err != nil {
				a.errf(lineNo, "%v", err)
				return
			}
			it.exprs = append(it.exprs, e)
		}
		if len(it.exprs) == 0 {
			a.errf(lineNo, "%s needs at least one value", dir)
			return
		}
		a.add(it)
	case ".asciiz", ".ascii":
		s, err := unquoteString(rest)
		if err != nil {
			a.errf(lineNo, "%v", err)
			return
		}
		if dir == ".asciiz" {
			s += "\x00"
		}
		a.add(&item{kind: itAscii, line: lineNo, data: []byte(s)})
	case ".space":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			a.errf(lineNo, "bad .space size %q", rest)
			return
		}
		a.add(&item{kind: itSpace, line: lineNo, n: uint32(n)})
	default:
		a.errf(lineNo, "unknown directive %s", dir)
	}
}

// --- instruction building -------------------------------------------------

func (a *Assembler) buildInstr(line int, mn string, ops []operand) {
	switch mn {
	case "la", "li":
		a.expandLA(line, ops)
		return
	case "call":
		a.expandCall(line, ops)
		return
	case "ret":
		if len(ops) != 0 {
			a.errf(line, "ret takes no operands")
			return
		}
		a.instr(line, isa.Instr{Op: isa.J, Rs1: isa.RegLink})
		return
	case "b":
		mn = "br"
	}

	op, cond, ok := mnemonic(mn)
	if !ok {
		a.errf(line, "unknown mnemonic %q", mn)
		return
	}

	wantReg := func(i int) (isa.Reg, bool) {
		if i >= len(ops) || ops[i].kind != kindReg {
			a.errf(line, "%s: operand %d must be a register", mn, i+1)
			return isa.NoReg, false
		}
		return ops[i].reg, true
	}

	switch {
	case op == isa.NOP:
		a.instr(line, isa.MakeNop())

	case op == isa.LDC:
		if len(ops) != 2 {
			a.errf(line, "ldc needs destination and literal")
			return
		}
		rd, ok := wantReg(0)
		if !ok {
			return
		}
		switch ops[1].kind {
		case kindLit:
			it := a.instr(line, isa.Instr{Op: isa.LDC, Rd: rd, Rs1: isa.NoReg})
			it.tgt, it.tgtKind = ops[1].e, tgtLit
		case kindExpr:
			it := a.instr(line, isa.Instr{Op: isa.LDC, Rd: rd, Rs1: isa.NoReg})
			it.tgt, it.tgtKind = ops[1].e, tgtAbs
		default:
			a.errf(line, "ldc operand must be =literal or displacement")
		}

	case op.IsLoad() || op.IsStore():
		if len(ops) != 2 {
			a.errf(line, "%s needs value register and address", mn)
			return
		}
		rd, ok := wantReg(0)
		if !ok {
			return
		}
		if ops[1].kind != kindMem {
			a.errf(line, "%s: second operand must be disp(reg)", mn)
			return
		}
		it := a.instr(line, isa.Instr{Op: op, Rd: rd, Rs1: ops[1].reg})
		it.tgt, it.tgtKind = ops[1].e, tgtAbs

	case op == isa.BR:
		if len(ops) != 1 || ops[0].kind != kindExpr {
			a.errf(line, "br needs a target")
			return
		}
		a.branchItem(line, isa.Instr{Op: isa.BR}, ops[0].e)

	case op == isa.BZ || op == isa.BNZ:
		in := isa.Instr{Op: op, Rs1: isa.RegCC}
		var target expr
		switch len(ops) {
		case 1:
			if ops[0].kind != kindExpr {
				a.errf(line, "%s needs a target", mn)
				return
			}
			target = ops[0].e
		case 2:
			rs, ok := wantReg(0)
			if !ok {
				return
			}
			if ops[1].kind != kindExpr {
				a.errf(line, "%s needs a target", mn)
				return
			}
			in.Rs1, target = rs, ops[1].e
		default:
			a.errf(line, "%s needs [reg,] target", mn)
			return
		}
		a.branchItem(line, in, target)

	case op.IsJump():
		if len(ops) != 1 {
			a.errf(line, "%s needs one operand", mn)
			return
		}
		switch ops[0].kind {
		case kindReg:
			a.instr(line, isa.Instr{Op: op, Rs1: ops[0].reg})
		case kindExpr:
			a.jumpToLabel(line, op, ops[0].e)
		default:
			a.errf(line, "%s operand must be a register or target", mn)
		}

	case op == isa.CMP:
		var rd, rs1 isa.Reg
		var right operand
		switch len(ops) {
		case 2: // D16 sugar: destination implicitly r0
			r1, ok := wantReg(0)
			if !ok {
				return
			}
			rd, rs1, right = isa.RegCC, r1, ops[1]
		case 3:
			d, ok := wantReg(0)
			if !ok {
				return
			}
			r1, ok := wantReg(1)
			if !ok {
				return
			}
			rd, rs1, right = d, r1, ops[2]
		default:
			a.errf(line, "cmp needs 2 or 3 operands")
			return
		}
		in := isa.Instr{Op: isa.CMP, Cond: cond, Rd: rd, Rs1: rs1}
		if right.kind == kindReg {
			in.Rs2 = right.reg
			a.instr(line, in)
		} else if right.kind == kindExpr {
			in.HasImm = true
			it := a.instr(line, in)
			it.tgt, it.tgtKind = right.e, tgtAbs
		} else {
			a.errf(line, "cmp right operand must be register or immediate")
		}

	case op == isa.MVI || op == isa.MVHI || op == isa.TRAP:
		var rd isa.Reg
		idx := 0
		if op != isa.TRAP {
			r, ok := wantReg(0)
			if !ok {
				return
			}
			rd = r
			idx = 1
		}
		if len(ops) != idx+1 || ops[idx].kind != kindExpr {
			a.errf(line, "%s needs an immediate", mn)
			return
		}
		it := a.instr(line, isa.Instr{Op: op, Rd: rd, HasImm: true})
		it.tgt, it.tgtKind = ops[idx].e, tgtAbs

	case op == isa.RDSR:
		rd, ok := wantReg(0)
		if !ok || len(ops) != 1 {
			a.errf(line, "rdsr needs one destination register")
			return
		}
		a.instr(line, isa.Instr{Op: isa.RDSR, Rd: rd})

	case op == isa.MV || op == isa.MVFL || op == isa.MVFH || op == isa.MFFL ||
		op == isa.MFFH || op == isa.FMV || (op >= isa.CVTSISF && op <= isa.CVTSFSI):
		if len(ops) != 2 {
			a.errf(line, "%s needs two registers", mn)
			return
		}
		rd, ok := wantReg(0)
		if !ok {
			return
		}
		rs, ok := wantReg(1)
		if !ok {
			return
		}
		a.instr(line, isa.Instr{Op: op, Rd: rd, Rs1: rs})

	case op == isa.NEG || op == isa.INV || op == isa.FNEGS || op == isa.FNEGD:
		switch len(ops) {
		case 1:
			rd, ok := wantReg(0)
			if !ok {
				return
			}
			a.instr(line, isa.Instr{Op: op, Rd: rd, Rs1: rd})
		case 2:
			rd, ok := wantReg(0)
			if !ok {
				return
			}
			rs, ok := wantReg(1)
			if !ok {
				return
			}
			a.instr(line, isa.Instr{Op: op, Rd: rd, Rs1: rs})
		default:
			a.errf(line, "%s needs 1 or 2 registers", mn)
		}

	case op.IsFCmp():
		if len(ops) != 2 {
			a.errf(line, "%s needs two registers", mn)
			return
		}
		r1, ok := wantReg(0)
		if !ok {
			return
		}
		r2, ok := wantReg(1)
		if !ok {
			return
		}
		a.instr(line, isa.Instr{Op: op, Cond: cond, Rs1: r1, Rs2: r2})

	default:
		// Register-register / register-immediate ALU and FP arithmetic, in
		// three-operand or two-operand (rd == rs1) form.
		var rd, rs1 isa.Reg
		var last operand
		switch len(ops) {
		case 2:
			r, ok := wantReg(0)
			if !ok {
				return
			}
			rd, rs1, last = r, r, ops[1]
		case 3:
			d, ok := wantReg(0)
			if !ok {
				return
			}
			r1, ok := wantReg(1)
			if !ok {
				return
			}
			rd, rs1, last = d, r1, ops[2]
		default:
			a.errf(line, "%s needs 2 or 3 operands", mn)
			return
		}
		in := isa.Instr{Op: op, Rd: rd, Rs1: rs1}
		switch {
		case op.HasImmediate():
			if last.kind != kindExpr {
				a.errf(line, "%s needs an immediate operand", mn)
				return
			}
			in.HasImm = true
			it := a.instr(line, in)
			it.tgt, it.tgtKind = last.e, tgtAbs
		case last.kind == kindReg:
			in.Rs2 = last.reg
			a.instr(line, in)
		default:
			a.errf(line, "%s needs a register operand (use the -i form for immediates)", mn)
		}
	}
}

// branchItem records a PC-relative branch. A constant target expression is
// a raw displacement (disassembler round-trip form); a symbolic one is
// resolved and relaxed as needed.
func (a *Assembler) branchItem(line int, in isa.Instr, target expr) {
	it := a.instr(line, in)
	if target.isConst() && target.mod == modNone {
		it.tgt, it.tgtKind = target, tgtAbs
		return
	}
	it.tgt, it.tgtKind = target, tgtBranch
}

// jumpToLabel handles "j label" / "jl label": a J-type jump on DLXe, and a
// literal-pool address load plus register jump on D16.
func (a *Assembler) jumpToLabel(line int, op isa.Op, target expr) {
	if op == isa.JZ || op == isa.JNZ {
		a.errf(line, "%s requires a register target", op)
		return
	}
	if a.spec.HasJType {
		it := a.instr(line, isa.Instr{Op: op, HasImm: true})
		if target.isConst() && target.mod == modNone {
			it.tgt, it.tgtKind = target, tgtAbs
		} else {
			it.tgt, it.tgtKind = target, tgtJump
		}
		return
	}
	lit := a.instr(line, isa.Instr{Op: isa.LDC, Rd: isa.RegCC, Rs1: isa.NoReg})
	lit.tgt, lit.tgtKind = target, tgtLit
	a.instr(line, isa.Instr{Op: op, Rs1: isa.RegCC})
}

// expandCall emits the target's function-call sequence.
func (a *Assembler) expandCall(line int, ops []operand) {
	if len(ops) != 1 || ops[0].kind != kindExpr {
		a.errf(line, "call needs a function symbol")
		return
	}
	a.jumpToLabel(line, isa.JL, ops[0].e)
}

// expandLA emits the target's address/constant materialization sequence.
func (a *Assembler) expandLA(line int, ops []operand) {
	if len(ops) != 2 || ops[0].kind != kindReg || ops[1].kind != kindExpr {
		a.errf(line, "la needs a register and an expression")
		return
	}
	rd, e := ops[0].reg, ops[1].e
	if !rd.IsGPR() {
		a.errf(line, "la destination must be a GPR")
		return
	}

	if a.spec.Enc == isa.EncD16 {
		if e.isConst() && e.mod == modNone && a.spec.FitsMVI(int32(e.off)) {
			a.instr(line, isa.Instr{Op: isa.MVI, Rd: rd, Imm: int32(e.off), HasImm: true})
			return
		}
		lit := a.instr(line, isa.Instr{Op: isa.LDC, Rd: isa.RegCC, Rs1: isa.NoReg})
		lit.tgt, lit.tgtKind = e, tgtLit
		if rd != isa.RegCC {
			a.instr(line, isa.Instr{Op: isa.MV, Rd: rd, Rs1: isa.RegCC})
		}
		return
	}

	// DLXe: constant folding when the value is known now.
	if e.isConst() && e.mod == modNone {
		v := e.off
		switch {
		case v >= -32768 && v <= 32767:
			a.instr(line, isa.Instr{Op: isa.MVI, Rd: rd, Imm: int32(v), HasImm: true})
		case v >= 0 && v <= 0xFFFF:
			a.instr(line, isa.Instr{Op: isa.ORI, Rd: rd, Rs1: isa.R(0), Imm: int32(v), HasImm: true})
		default:
			a.instr(line, isa.Instr{Op: isa.MVHI, Rd: rd,
				Imm: int32(uint32(v) >> 16), HasImm: true})
			if lo := uint32(v) & 0xFFFF; lo != 0 {
				a.instr(line, isa.Instr{Op: isa.ORI, Rd: rd, Rs1: rd,
					Imm: int32(lo), HasImm: true})
			}
		}
		return
	}
	if e.mod != modNone {
		a.errf(line, "la operand cannot carry a lo16/hi16/gprel modifier")
		return
	}
	hi := a.instr(line, isa.Instr{Op: isa.MVHI, Rd: rd, HasImm: true})
	hi.tgt, hi.tgtKind = expr{mod: modHi16, sym: e.sym, off: e.off}, tgtAbs
	lo := a.instr(line, isa.Instr{Op: isa.ORI, Rd: rd, Rs1: rd, HasImm: true})
	lo.tgt, lo.tgtKind = expr{mod: modLo16, sym: e.sym, off: e.off}, tgtAbs
}
