package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/d16"
	"repro/internal/dlxe"
	"repro/internal/isa"
	"repro/internal/prog"
)

func mustAssemble(t *testing.T, src string, spec *isa.Spec) *prog.Image {
	t.Helper()
	img, err := Assemble("test.s", src, spec)
	if err != nil {
		t.Fatalf("Assemble(%s): %v", spec, err)
	}
	return img
}

// decodeText decodes the whole text segment for inspection.
func decodeText(t *testing.T, img *prog.Image) []isa.Instr {
	t.Helper()
	var out []isa.Instr
	if img.Enc == isa.EncD16 {
		for off := 0; off+2 <= len(img.Text); off += 2 {
			w := binary.LittleEndian.Uint16(img.Text[off:])
			in, err := d16.Decode(w, isa.TextBase+uint32(off))
			if err != nil {
				in = isa.Instr{Op: isa.BAD}
			}
			out = append(out, in)
		}
		return out
	}
	for off := 0; off+4 <= len(img.Text); off += 4 {
		w := binary.LittleEndian.Uint32(img.Text[off:])
		in, err := dlxe.Decode(w, isa.TextBase+uint32(off))
		if err != nil {
			in = isa.Instr{Op: isa.BAD}
		}
		out = append(out, in)
	}
	return out
}

const tinyProgram = `
	.text
	.global _start
_start:
	mvi   r3, 5
	addi  r3, r3, 2
	mv    r4, r3
	add   r4, r4, r3
	cmp.lt r0, r4, r3
	bz    r0, done
	nop
	sub   r4, r4, r3
done:
	trap  0
	nop
`

func TestAssembleTinyBothTargets(t *testing.T) {
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		img := mustAssemble(t, tinyProgram, spec)
		if img.Entry != isa.TextBase {
			t.Errorf("%s: entry %#x, want %#x", spec, img.Entry, isa.TextBase)
		}
		if img.TextInstrs != 10 {
			t.Errorf("%s: %d instructions, want 10", spec, img.TextInstrs)
		}
		wantSize := 10 * int(spec.InstrBytes())
		if img.Size() != wantSize {
			t.Errorf("%s: size %d, want %d", spec, img.Size(), wantSize)
		}
		ins := decodeText(t, img)
		if ins[0].Op != isa.MVI || ins[0].Imm != 5 {
			t.Errorf("%s: first instruction %v", spec, ins[0])
		}
		if ins[5].Op != isa.BZ {
			t.Errorf("%s: instruction 5 is %v, want bz", spec, ins[5])
		}
		// bz at index 5 targets "done" at index 8: displacement 3 instrs.
		if want := int32(3 * spec.InstrBytes()); ins[5].Imm != want {
			t.Errorf("%s: bz displacement %d, want %d", spec, ins[5].Imm, want)
		}
	}
}

func TestD16TwoAddressViolation(t *testing.T) {
	src := ".text\n_start: add r4, r5, r6\n"
	if _, err := Assemble("t.s", src, isa.D16()); err == nil {
		t.Fatal("expected two-address violation error on D16")
	}
	if _, err := Assemble("t.s", src, isa.DLXe()); err != nil {
		t.Fatalf("DLXe should accept three-address add: %v", err)
	}
}

func TestRegisterFileRestriction(t *testing.T) {
	src := ".text\n_start: add r20, r20, r4\n"
	if _, err := Assemble("t.s", src, isa.RestrictRegs(isa.DLXe(), 16)); err == nil {
		t.Fatal("expected register-file violation on DLXe/16")
	}
	if _, err := Assemble("t.s", src, isa.DLXe()); err != nil {
		t.Fatalf("DLXe/32 should accept r20: %v", err)
	}
}

func TestDataDirectivesAndSymbols(t *testing.T) {
	src := `
	.data
counter: .word 42
table:   .word 1, 2, 3, table
msg:     .asciiz "hi\n"
half:    .half 7, 8
bytes:   .byte 1, 2, 3
buf:     .space 16
	.text
_start:
	ld r4, gprel(counter)(gp)
	trap 0
	nop
`
	img := mustAssemble(t, src, isa.DLXe())
	if got := img.Symbols["counter"]; got != isa.DataBase {
		t.Errorf("counter at %#x, want %#x", got, isa.DataBase)
	}
	if binary.LittleEndian.Uint32(img.Data[0:]) != 42 {
		t.Error("counter value wrong")
	}
	tbl := img.Symbols["table"] - isa.DataBase
	if binary.LittleEndian.Uint32(img.Data[tbl+12:]) != img.Symbols["table"] {
		t.Error("symbolic .word value wrong")
	}
	msg := img.Symbols["msg"] - isa.DataBase
	if string(img.Data[msg:msg+3]) != "hi\n" {
		t.Errorf("asciiz content %q", img.Data[msg:msg+3])
	}
	if img.Data[msg+3] != 0 {
		t.Error("asciiz not NUL terminated")
	}
	ins := decodeText(t, img)
	if ins[0].Op != isa.LD || ins[0].Imm != 0 || ins[0].Rs1 != isa.RegGP {
		t.Errorf("gprel load decoded as %v", ins[0])
	}
}

func TestD16LiteralPoolAndCall(t *testing.T) {
	src := `
	.text
	.global _start
_start:
	call f
	nop
	call f
	nop
	trap 0
	nop
	.pool
f:
	ret
	nop
`
	img := mustAssemble(t, src, isa.D16())
	ins := decodeText(t, img)
	if ins[0].Op != isa.LDC {
		t.Fatalf("call did not expand to ldc: %v", ins[0])
	}
	if ins[1].Op != isa.JL || ins[1].Rs1 != isa.RegCC {
		t.Fatalf("call did not expand to jl r0: %v", ins[1])
	}
	// Two calls to the same function share one pool literal.
	if img.PoolBytes != 4 {
		t.Errorf("pool bytes %d, want 4 (deduplicated literal)", img.PoolBytes)
	}
	// The literal must hold f's address.
	lit0 := ins[0]
	litAddr := uint32(int32(isa.TextBase) + lit0.Imm)
	got := binary.LittleEndian.Uint32(img.Text[litAddr-isa.TextBase:])
	if got != img.Symbols["f"] {
		t.Errorf("pool literal %#x, want f=%#x", got, img.Symbols["f"])
	}
}

func TestDLXeCallIsJType(t *testing.T) {
	src := ".text\n_start: call f\n nop\n trap 0\n nop\nf: ret\n nop\n"
	img := mustAssemble(t, src, isa.DLXe())
	ins := decodeText(t, img)
	if ins[0].Op != isa.JL || !ins[0].HasImm {
		t.Fatalf("DLXe call should be J-type jl, got %v", ins[0])
	}
	if tgt := uint32(int32(isa.TextBase) + ins[0].Imm); tgt != img.Symbols["f"] {
		t.Errorf("jl target %#x, want %#x", tgt, img.Symbols["f"])
	}
	if img.PoolBytes != 0 {
		t.Errorf("DLXe should not use literal pools, got %d bytes", img.PoolBytes)
	}
}

func TestLAMaterialization(t *testing.T) {
	src := `
	.data
big: .space 4
	.text
_start:
	la r4, big
	la r5, 7
	la r6, 100000
	trap 0
	nop
	.pool
`
	d := mustAssemble(t, src, isa.D16())
	dIns := decodeText(t, d)
	if dIns[0].Op != isa.LDC || dIns[1].Op != isa.MV {
		t.Errorf("D16 la big -> %v; %v, want ldc; mv", dIns[0], dIns[1])
	}
	if dIns[2].Op != isa.MVI || dIns[2].Imm != 7 {
		t.Errorf("D16 la 7 -> %v, want mvi", dIns[2])
	}

	x := mustAssemble(t, src, isa.DLXe())
	xIns := decodeText(t, x)
	if xIns[0].Op != isa.MVHI || xIns[1].Op != isa.ORI {
		t.Errorf("DLXe la big -> %v; %v, want mvhi; ori", xIns[0], xIns[1])
	}
	if hi := uint32(xIns[0].Imm)<<16 | uint32(xIns[1].Imm); hi != isa.DataBase {
		t.Errorf("DLXe la big materializes %#x, want %#x", hi, isa.DataBase)
	}
	if xIns[2].Op != isa.MVI || xIns[2].Imm != 7 {
		t.Errorf("DLXe la 7 -> %v", xIns[2])
	}
	// 100000 = 0x186A0 needs mvhi+ori on DLXe.
	if xIns[3].Op != isa.MVHI || xIns[4].Op != isa.ORI {
		t.Errorf("DLXe la 100000 -> %v; %v", xIns[3], xIns[4])
	}
}

func TestBranchRelaxationD16(t *testing.T) {
	// Force the conditional branch out of the ±1024-instruction range with
	// a text-segment gap.
	// The pool sits just past the function (as compiled code lays it out);
	// the branch target is a long way off.
	var b strings.Builder
	b.WriteString(".text\n_start:\n cmp.eq r0, r4, r5\n bz r0, far\n nop\n")
	b.WriteString(" trap 0\n nop\n .pool\n .space 6000\n")
	b.WriteString("far: trap 0\n nop\n")
	img := mustAssemble(t, b.String(), isa.D16())
	ins := decodeText(t, img)
	// Expansion: cmp; bnz .F; ldc; j r0; nop(slot); [.F] nops...
	if ins[1].Op != isa.BNZ {
		t.Fatalf("far bz not inverted: %v", ins[1])
	}
	if ins[2].Op != isa.LDC || ins[3].Op != isa.J || ins[3].Rs1 != isa.RegCC {
		t.Fatalf("far sequence wrong: %v; %v", ins[2], ins[3])
	}
	// The inverted branch skips to the original delay-slot instruction.
	if want := int32(3 * d16.Bytes); ins[1].Imm != want {
		t.Errorf("inverted branch displacement %d, want %d", ins[1].Imm, want)
	}
	// The literal holds the far target (the ldc is the third instruction,
	// at TextBase+4).
	litAddr := uint32(int32(isa.TextBase+4) + ins[2].Imm)
	got := binary.LittleEndian.Uint32(img.Text[litAddr-isa.TextBase:])
	if got != img.Symbols["far"] {
		t.Errorf("far literal %#x, want %#x", got, img.Symbols["far"])
	}
}

func TestBranchRelaxationDLXe(t *testing.T) {
	var b strings.Builder
	b.WriteString(".text\n_start:\n bz r4, far\n nop\n")
	for i := 0; i < 9000; i++ {
		b.WriteString(" nop\n")
	}
	b.WriteString("far: trap 0\n nop\n")
	img := mustAssemble(t, b.String(), isa.DLXe())
	ins := decodeText(t, img)
	if ins[0].Op != isa.BNZ || ins[1].Op != isa.NOP || ins[2].Op != isa.J || !ins[2].HasImm {
		t.Fatalf("far sequence wrong: %v; %v; %v", ins[0], ins[1], ins[2])
	}
	if tgt := uint32(int32(isa.TextBase+8) + ins[2].Imm); tgt != img.Symbols["far"] {
		t.Errorf("j target %#x, want %#x", tgt, img.Symbols["far"])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		spec *isa.Spec
	}{
		{"unknown mnemonic", ".text\n frob r1\n", isa.D16()},
		{"undefined symbol", ".text\n br nowhere\n nop\n", isa.D16()},
		{"duplicate label", ".text\na: nop\na: nop\n", isa.D16()},
		{"bad register", ".text\n add r40, r1, r1\n", isa.DLXe()},
		{"data instr", ".data\n nop\n", isa.D16()},
		{"wide d16 imm", ".text\n addi r4, r4, 99\n", isa.D16()},
		{"mvhi on d16", ".text\n mvhi r4, 1\n", isa.D16()},
		{"ldc on dlxe", ".text\n ldc r0, =5\n", isa.DLXe()},
		{"unknown directive", ".frobnicate 3\n", isa.D16()},
		{"bad string", ".data\n .asciiz \"oops\n", isa.D16()},
	}
	for _, tc := range cases {
		if _, err := Assemble("t.s", tc.src, tc.spec); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestLoadImage(t *testing.T) {
	img := mustAssemble(t, tinyProgram, isa.D16())
	mem := make([]byte, isa.MemSize)
	if err := img.Load(mem); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint16(mem[isa.TextBase:]) !=
		binary.LittleEndian.Uint16(img.Text[:2]) {
		t.Error("text not loaded at TextBase")
	}
}
