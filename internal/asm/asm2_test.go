package asm

import (
	"encoding/binary"
	"testing"

	"repro/internal/isa"
)

func TestBSSSection(t *testing.T) {
	src := `
	.data
init: .word 7
	.bss
buf:  .space 100
	.align 8
big:  .space 8
	.text
_start:
	trap 0
	nop
`
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		img := mustAssemble(t, src, spec)
		// BSS is addressed after initialized data, 8-aligned.
		if img.Symbols["buf"] != align(isa.DataBase+4, 8) {
			t.Errorf("%s: buf at %#x", spec, img.Symbols["buf"])
		}
		if img.Symbols["big"]%8 != 0 {
			t.Errorf("%s: big misaligned at %#x", spec, img.Symbols["big"])
		}
		// BSS contributes to BSS size, not to the binary.
		if img.BSS < 108 {
			t.Errorf("%s: BSS = %d", spec, img.BSS)
		}
		if img.Size() != len(img.Text)+4 {
			t.Errorf("%s: size %d should exclude bss", spec, img.Size())
		}
	}
}

func TestBSSRejectsData(t *testing.T) {
	src := ".bss\nx: .word 3\n"
	if _, err := Assemble("t.s", src, isa.D16()); err == nil {
		t.Fatal("expected .word-in-.bss error")
	}
}

func TestHiLoGprelModifiers(t *testing.T) {
	src := `
	.data
	.space 260
v:  .word 99
	.text
_start:
	mvhi r4, hi16(v)
	ori  r4, r4, lo16(v)
	mvi  r5, 0
	addi r5, r5, gprel(v)
	trap 0
	nop
`
	img := mustAssemble(t, src, isa.DLXe())
	ins := decodeText(t, img)
	addr := img.Symbols["v"]
	if got := uint32(ins[0].Imm)<<16 | uint32(ins[1].Imm); got != addr {
		t.Errorf("hi16/lo16 compose to %#x, want %#x", got, addr)
	}
	if uint32(ins[3].Imm) != addr-isa.DataBase {
		t.Errorf("gprel = %d, want %d", ins[3].Imm, addr-isa.DataBase)
	}
}

func TestPseudoLiAndBAlias(t *testing.T) {
	src := `
	.text
_start:
	li r4, 42
	b  done
	nop
done:
	trap 0
	nop
	.pool
`
	for _, spec := range []*isa.Spec{isa.D16(), isa.DLXe()} {
		img := mustAssemble(t, src, spec)
		ins := decodeText(t, img)
		if ins[0].Op != isa.MVI || ins[0].Imm != 42 {
			t.Errorf("%s: li -> %v", spec, ins[0])
		}
		if ins[1].Op != isa.BR {
			t.Errorf("%s: b -> %v", spec, ins[1])
		}
	}
}

func TestHalfAndByteData(t *testing.T) {
	src := `
	.data
a: .byte 1, 2
h: .half 513
	.text
_start:
	trap 0
	nop
`
	img := mustAssemble(t, src, isa.D16())
	if img.Data[0] != 1 || img.Data[1] != 2 {
		t.Error(".byte content wrong")
	}
	// .half auto-aligns to 2 (already aligned here).
	if binary.LittleEndian.Uint16(img.Data[2:]) != 513 {
		t.Error(".half content wrong")
	}
}

func TestWordAutoAlignment(t *testing.T) {
	// .word pads itself to 4 bytes, but a label BEFORE the directive
	// binds to the unaligned cursor (standard assembler semantics — use
	// .align before the label, as the compiler does).
	src := `
	.data
c: .byte 1
w: .word 7
	.align 4
x: .word 9
	.text
_start:
	trap 0
	nop
`
	img := mustAssemble(t, src, isa.D16())
	if img.Symbols["w"] != isa.DataBase+1 {
		t.Errorf("w at %#x, want the unaligned cursor %#x", img.Symbols["w"], isa.DataBase+1)
	}
	if binary.LittleEndian.Uint32(img.Data[4:]) != 7 {
		t.Error("word content not placed at the aligned address")
	}
	if img.Symbols["x"] != isa.DataBase+8 {
		t.Errorf("x at %#x, want %#x", img.Symbols["x"], isa.DataBase+8)
	}
}

func TestCharAndStringEscapes(t *testing.T) {
	src := `
	.data
s: .asciiz "a\tb\\\"c"
	.text
_start:
	mvi r4, '\n'
	mvi r5, '\''
	trap 0
	nop
`
	img := mustAssemble(t, src, isa.D16())
	want := "a\tb\\\"c\x00"
	if string(img.Data[:len(want)]) != want {
		t.Errorf("escapes: %q, want %q", img.Data[:len(want)], want)
	}
	ins := decodeText(t, img)
	if ins[0].Imm != '\n' || ins[1].Imm != '\'' {
		t.Errorf("char literals: %v %v", ins[0], ins[1])
	}
}

func TestExpressionOffsets(t *testing.T) {
	src := `
	.data
tbl: .word 1, 2, 3
	.text
_start:
	ld r4, gprel(tbl+8)(gp)
	trap 0
	nop
`
	img := mustAssemble(t, src, isa.DLXe())
	ins := decodeText(t, img)
	if ins[0].Imm != 8 {
		t.Errorf("tbl+8 displacement = %d", ins[0].Imm)
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	src := `
	.text
a: b_: _start:
	trap 0
	nop
`
	img := mustAssemble(t, src, isa.D16())
	if img.Symbols["a"] != img.Symbols["b_"] || img.Symbols["a"] != img.Symbols["_start"] {
		t.Error("stacked labels differ")
	}
}

func TestDLXeSubwordDisplacements(t *testing.T) {
	// DLXe sub-word modes take displacements; D16's do not.
	src := ".text\n_start:\n ldb r4, 3(r5)\n trap 0\n nop\n"
	if _, err := Assemble("t.s", src, isa.DLXe()); err != nil {
		t.Errorf("DLXe should allow ldb with displacement: %v", err)
	}
	if _, err := Assemble("t.s", src, isa.D16()); err == nil {
		t.Error("D16 must reject offsettable subword access")
	}
}

func TestPoolDeduplicatesMixedLiterals(t *testing.T) {
	src := `
	.text
_start:
	ldc r0, =99999
	mv  r4, r0
	ldc r0, =f
	mv  r5, r0
	ldc r0, =99999
	trap 0
	nop
	.pool
f:	ret
	nop
`
	img := mustAssemble(t, src, isa.D16())
	if img.PoolBytes != 8 { // 99999 and f, deduplicated
		t.Errorf("pool bytes = %d, want 8", img.PoolBytes)
	}
}

func TestTextInstrsExcludesPools(t *testing.T) {
	src := `
	.text
_start:
	ldc r0, =123456
	trap 0
	nop
	.pool
`
	img := mustAssemble(t, src, isa.D16())
	if img.TextInstrs != 3 {
		t.Errorf("TextInstrs = %d, want 3", img.TextInstrs)
	}
	if len(img.Text) != 3*2+2+4 { // 3 instrs + 2 pad + 1 literal
		t.Errorf("text bytes = %d", len(img.Text))
	}
}
