package asm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/d16"
	"repro/internal/dlxe"
	"repro/internal/isa"
	"repro/internal/prog"
)

// link runs the layout/relaxation fixpoint and produces the final image.
func (a *Assembler) link() (*prog.Image, error) {
	// A final implicit pool catches literals with no explicit .pool after
	// them (small hand-written programs).
	a.items = append(a.items, &item{kind: itPool, sec: secText})

	var symbols map[string]uint32
	for iter := 0; ; iter++ {
		if iter > 64 {
			return nil, fmt.Errorf("%s: branch relaxation did not converge", a.file)
		}
		a.assignLiterals()
		var err error
		symbols, err = a.layout()
		if err != nil {
			return nil, err
		}
		changed, err := a.relax(symbols)
		if err != nil {
			return nil, err
		}
		if !changed {
			break
		}
	}
	return a.encode(symbols)
}

// assignLiterals attaches every literal-pool reference to the next .pool
// item, deduplicating identical expressions within one pool.
func (a *Assembler) assignLiterals() {
	var pending []*literal
	for _, it := range a.items {
		if it.sec != secText {
			continue
		}
		switch it.kind {
		case itInstr:
			if it.tgtKind != tgtLit {
				continue
			}
			var found *literal
			for _, l := range pending {
				if l.e == it.tgt {
					found = l
					break
				}
			}
			if found == nil {
				found = &literal{e: it.tgt}
				pending = append(pending, found)
			}
			it.lit = found
		case itPool:
			it.lits = pending
			pending = nil
		}
	}
}

func align(v, n uint32) uint32 { return (v + n - 1) &^ (n - 1) }

// layout assigns addresses and sizes to every item and builds the symbol
// table.
func (a *Assembler) layout() (map[string]uint32, error) {
	symbols := make(map[string]uint32)
	text := isa.TextBase
	data := isa.DataBase
	ib := a.spec.InstrBytes()

	// Pass 1: text and data. Pass 2: bss, which starts 8-aligned after
	// the initialized data.
	var bss uint32
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			bss = align(data, 8)
		}
		for _, it := range a.items {
			if (it.sec == secBSS) != (pass == 1) {
				continue
			}
			cursor := &text
			switch it.sec {
			case secData:
				cursor = &data
			case secBSS:
				cursor = &bss
				switch it.kind {
				case itLabel, itSpace, itAlign:
				default:
					return nil, fmt.Errorf("%s:%d: only labels, .space and .align are allowed in .bss", a.file, it.line)
				}
			}
			if err := a.layoutItem(it, cursor, symbols, ib); err != nil {
				return nil, err
			}
		}
	}
	a.bssBytes = 0
	if bss > 0 {
		a.bssBytes = bss - align(data, 8)
	}
	return symbols, nil
}

func (a *Assembler) layoutItem(it *item, cursor *uint32, symbols map[string]uint32, ib uint32) error {
	{
		switch it.kind {
		case itInstr:
			if it.sec != secText {
				return fmt.Errorf("%s:%d: instruction outside .text", a.file, it.line)
			}
			it.addr, it.size = *cursor, ib
		case itLabel:
			if _, dup := symbols[it.name]; dup {
				return fmt.Errorf("%s:%d: duplicate label %q", a.file, it.line, it.name)
			}
			it.addr, it.size = *cursor, 0
			symbols[it.name] = *cursor
		case itPool:
			start := *cursor
			aligned := align(start, 4)
			for i, l := range it.lits {
				l.addr = aligned + uint32(4*i)
			}
			it.addr = start
			it.size = aligned - start + uint32(4*len(it.lits))
			if len(it.lits) == 0 {
				it.size = 0
			}
		case itAlign:
			it.addr = *cursor
			it.size = align(*cursor, it.n) - *cursor
		case itWord:
			aligned := align(*cursor, 4)
			it.addr = *cursor
			it.size = aligned - *cursor + uint32(4*len(it.exprs))
		case itHalf:
			aligned := align(*cursor, 2)
			it.addr = *cursor
			it.size = aligned - *cursor + uint32(2*len(it.exprs))
		case itByte:
			it.addr, it.size = *cursor, uint32(len(it.exprs))
		case itAscii:
			it.addr, it.size = *cursor, uint32(len(it.data))
		case itSpace:
			it.addr, it.size = *cursor, it.n
		}
		*cursor += it.size
	}
	return nil
}

// branchInRange reports whether a short-form branch at addr can reach
// target under the current spec.
func (a *Assembler) branchInRange(addr, target uint32) bool {
	disp := int64(target) - int64(addr)
	if a.spec.Enc == isa.EncD16 {
		ioff := disp / int64(d16.Bytes)
		return ioff >= -1024 && ioff <= 1023
	}
	return disp >= -32768 && disp <= 32767
}

// relax rewrites out-of-range short branches into far sequences. It
// returns whether anything changed. Expansion is monotonic, so the layout
// fixpoint terminates.
func (a *Assembler) relax(symbols map[string]uint32) (bool, error) {
	changed := false
	var out []*item
	for idx := 0; idx < len(a.items); idx++ {
		it := a.items[idx]
		if it.kind != itInstr || it.tgtKind != tgtBranch || it.noRelax {
			out = append(out, it)
			continue
		}
		tv, err := it.tgt.eval(func(s string) (uint32, bool) { v, ok := symbols[s]; return v, ok })
		if err != nil {
			// Undefined symbol: reported with a line number at encode.
			out = append(out, it)
			continue
		}
		if a.branchInRange(it.addr, uint32(tv)) {
			out = append(out, it)
			continue
		}
		changed = true
		exp, skipLabel, err := a.expandFar(it)
		if err != nil {
			return false, err
		}
		out = append(out, exp...)
		if skipLabel != nil {
			// The skip label points AT the original delay-slot instruction,
			// which must execute on both the taken and fall-through paths
			// (on the far path it executes as the jump's delay slot).
			if idx+1 >= len(a.items) {
				return false, fmt.Errorf("%s:%d: far branch with no delay-slot instruction", a.file, it.line)
			}
			slot := a.items[idx+1]
			if slot.kind != itInstr || slot.in.Op.IsControl() {
				return false, fmt.Errorf("%s:%d: far branch delay slot is not a plain instruction", a.file, it.line)
			}
			out = append(out, skipLabel, slot)
			idx++
		}
	}
	a.items = out
	return changed, nil
}

// expandFar produces the far form of a short branch. The returned label
// item, if any, must be placed after the branch's delay-slot instruction.
//
// D16 (no long-displacement format; the address goes through the pool):
//
//	br L    ->  ldc r0, =L ; j r0               (slot follows, executes once)
//	bz  L   ->  bnz .F ; ldc r0, =L ; j r0 ; .F:<slot>
//	            (the slot executes once on either path: as the jump's delay
//	            slot when falling through to the far jump, or as the first
//	            instruction at .F when the inverted branch is taken)
//
// DLXe (26-bit J-type reaches everywhere):
//
//	br L    ->  j L
//	bz  L   ->  bnz .F ; nop ; j L ; .F:<slot>
func (a *Assembler) expandFar(it *item) ([]*item, *item, error) {
	mk := func(in isa.Instr) *item {
		return &item{kind: itInstr, sec: secText, line: it.line, in: in, noRelax: true}
	}
	farJump := func() []*item {
		if a.spec.HasJType {
			j := mk(isa.Instr{Op: isa.J, HasImm: true})
			j.tgt, j.tgtKind = it.tgt, tgtJump
			return []*item{j}
		}
		lit := mk(isa.Instr{Op: isa.LDC, Rd: isa.RegCC, Rs1: isa.NoReg})
		lit.tgt, lit.tgtKind = it.tgt, tgtLit
		return []*item{lit, mk(isa.Instr{Op: isa.J, Rs1: isa.RegCC})}
	}

	switch it.in.Op {
	case isa.BR:
		return farJump(), nil, nil
	case isa.BZ, isa.BNZ:
		a.farSeq++
		labName := fmt.Sprintf(".Lfar%d", a.farSeq)
		invOp := isa.BZ
		if it.in.Op == isa.BZ {
			invOp = isa.BNZ
		}
		inv := mk(isa.Instr{Op: invOp, Rs1: it.in.Rs1})
		inv.tgt, inv.tgtKind = expr{sym: labName}, tgtBranch
		items := []*item{inv}
		if a.spec.HasJType {
			// Keep the jump out of the inverted branch's delay slot.
			items = append(items, mk(isa.MakeNop()))
		}
		items = append(items, farJump()...)
		label := &item{kind: itLabel, sec: secText, line: it.line, name: labName}
		return items, label, nil
	}
	return nil, nil, fmt.Errorf("%s:%d: cannot relax %s", a.file, it.line, it.in.Op)
}

// encode produces the final image bytes.
func (a *Assembler) encode(symbols map[string]uint32) (*prog.Image, error) {
	lookup := func(s string) (uint32, bool) { v, ok := symbols[s]; return v, ok }
	img := &prog.Image{
		Enc:     a.spec.Enc,
		Cmp8:    a.spec.CmpImm8,
		Symbols: make(map[string]uint32, len(symbols)),
	}
	for k, v := range symbols { //detlint:ignore rangemap map-to-map copy, order-free
		img.Symbols[k] = v
	}

	var textEnd, dataEnd uint32 = isa.TextBase, isa.DataBase
	for _, it := range a.items {
		end := it.addr + it.size
		if it.sec == secText && end > textEnd {
			textEnd = end
		}
		if it.sec == secData && end > dataEnd {
			dataEnd = end
		}
	}
	text := make([]byte, textEnd-isa.TextBase)
	data := make([]byte, dataEnd-isa.DataBase)

	seg := func(it *item) ([]byte, uint32) {
		if it.sec == secData {
			return data, it.addr - isa.DataBase
		}
		return text, it.addr - isa.TextBase
	}

	for _, it := range a.items {
		buf, off := seg(it)
		// Record every text-segment span that holds no instructions, so
		// the verifier can tell code from pools, padding and in-text data.
		if it.sec == secText && it.size > 0 && it.kind != itInstr {
			img.AddNonCode(it.addr, it.addr+it.size)
		}
		switch it.kind {
		case itInstr:
			in := it.in
			switch it.tgtKind {
			case tgtAbs, tgtBranch, tgtJump, tgtLit:
				var v int64
				var err error
				if it.tgtKind == tgtLit {
					v = int64(it.lit.addr)
				} else {
					v, err = it.tgt.eval(lookup)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", a.file, it.line, err)
					}
				}
				if it.tgtKind == tgtAbs {
					in.Imm = int32(v)
				} else {
					in.Imm = int32(v) - int32(it.addr)
				}
			}
			if err := a.checkRegs(in); err != nil {
				return nil, fmt.Errorf("%s:%d: %v", a.file, it.line, err)
			}
			if a.spec.Enc == isa.EncD16 {
				w, err := d16.EncodeV(in, it.addr, d16.Variant{Cmp8: a.spec.CmpImm8})
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", a.file, it.line, err)
				}
				binary.LittleEndian.PutUint16(buf[off:], w)
			} else {
				w, err := dlxe.Encode(in, it.addr)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", a.file, it.line, err)
				}
				binary.LittleEndian.PutUint32(buf[off:], w)
			}
			img.TextInstrs++
		case itPool:
			for _, l := range it.lits {
				v, err := l.e.eval(lookup)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: pool literal: %v", a.file, it.line, err)
				}
				binary.LittleEndian.PutUint32(buf[l.addr-isa.TextBase:], uint32(v))
			}
			img.PoolBytes += 4 * len(it.lits)
		case itWord:
			p := align(it.addr, 4) - it.addr
			for i, e := range it.exprs {
				v, err := e.eval(lookup)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", a.file, it.line, err)
				}
				binary.LittleEndian.PutUint32(buf[off+p+uint32(4*i):], uint32(v))
			}
		case itHalf:
			p := align(it.addr, 2) - it.addr
			for i, e := range it.exprs {
				v, err := e.eval(lookup)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", a.file, it.line, err)
				}
				binary.LittleEndian.PutUint16(buf[off+p+uint32(2*i):], uint16(v))
			}
		case itByte:
			for i, e := range it.exprs {
				v, err := e.eval(lookup)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", a.file, it.line, err)
				}
				buf[off+uint32(i)] = byte(v)
			}
		case itAscii:
			copy(buf[off:], it.data)
		}
	}

	img.Text, img.Data = text, data
	img.BSS = a.bssBytes
	if e, ok := symbols["_start"]; ok {
		img.Entry = e
	} else {
		img.Entry = isa.TextBase
	}
	return img, nil
}

// checkRegs validates register numbers against the target's visible
// register files (this catches compiler bugs when a restricted DLXe config
// accidentally uses a high register).
func (a *Assembler) checkRegs(in isa.Instr) error {
	for _, r := range []isa.Reg{in.Rd, in.Rs1, in.Rs2} {
		if !r.Valid() {
			continue
		}
		if r.IsGPR() && r.Num() >= a.spec.NumGPR {
			return fmt.Errorf("register %s exceeds %s register file (%d GPRs)", r, a.spec, a.spec.NumGPR)
		}
		if r.IsFPR() && r.Num() >= a.spec.NumFPR {
			return fmt.Errorf("register %s exceeds %s register file (%d FPRs)", r, a.spec, a.spec.NumFPR)
		}
	}
	return nil
}
