package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// modifier adjusts how a symbolic expression value is materialized.
type modifier uint8

const (
	modNone  modifier = iota
	modLo16           // lo16(x): low 16 bits of the value
	modHi16           // hi16(x): high 16 bits of the value
	modGPRel          // gprel(x): value - DataBase (displacement off gp)
)

// expr is a linked value: an optional symbol plus a constant offset, under
// an optional modifier. This covers everything the code generator and
// runtime library need: plain constants, symbol addresses, symbol+offset,
// and the lo16/hi16/gprel relocation forms.
type expr struct {
	mod modifier
	sym string
	off int64
}

func (e expr) String() string {
	inner := ""
	switch {
	case e.sym == "":
		inner = strconv.FormatInt(e.off, 10)
	case e.off == 0:
		inner = e.sym
	case e.off > 0:
		inner = fmt.Sprintf("%s+%d", e.sym, e.off)
	default:
		inner = fmt.Sprintf("%s%d", e.sym, e.off)
	}
	switch e.mod {
	case modLo16:
		return "lo16(" + inner + ")"
	case modHi16:
		return "hi16(" + inner + ")"
	case modGPRel:
		return "gprel(" + inner + ")"
	}
	return inner
}

// isConst reports whether the expression needs no symbol resolution.
func (e expr) isConst() bool { return e.sym == "" }

// eval computes the expression's value given a symbol resolver.
func (e expr) eval(lookup func(string) (uint32, bool)) (int64, error) {
	v := e.off
	if e.sym != "" {
		a, ok := lookup(e.sym)
		if !ok {
			return 0, fmt.Errorf("undefined symbol %q", e.sym)
		}
		v += int64(a)
	}
	switch e.mod {
	case modLo16:
		v = int64(uint32(v) & 0xFFFF)
	case modHi16:
		v = int64(uint32(v) >> 16)
	case modGPRel:
		v -= int64(isa.DataBase)
	}
	return v, nil
}

// parseExpr parses one expression operand:
//
//	expr    := [mod "("] term { ("+"|"-") number } [")"]
//	term    := number | charlit | symbol
//	number  := ["-"] (decimal | 0x hex)
//	charlit := 'c' with the usual escapes
func parseExpr(s string) (expr, error) {
	s = strings.TrimSpace(s)
	var e expr
	for _, m := range []struct {
		prefix string
		mod    modifier
	}{
		{"lo16(", modLo16},
		{"hi16(", modHi16},
		{"gprel(", modGPRel},
	} {
		if strings.HasPrefix(s, m.prefix) && strings.HasSuffix(s, ")") {
			e.mod = m.mod
			s = strings.TrimSuffix(strings.TrimPrefix(s, m.prefix), ")")
			break
		}
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return e, fmt.Errorf("empty expression")
	}

	// Split off trailing +n / -n adjustments (right to left is fine since
	// only integer adjustments are allowed after the leading term).
	term := s
	var adjust int64
	for {
		i := strings.LastIndexAny(term, "+-")
		if i <= 0 {
			break
		}
		// A '-' that is part of a leading negative number has index 0 and
		// is excluded by i <= 0. Anything else splits term and offset.
		numPart := term[i:]
		n, err := strconv.ParseInt(strings.Replace(numPart, "+", "", 1), 0, 64)
		if err != nil {
			return e, fmt.Errorf("bad offset %q in expression %q", numPart, s)
		}
		adjust += n
		term = term[:i]
	}
	term = strings.TrimSpace(term)

	switch {
	case term == "":
		return e, fmt.Errorf("bad expression %q", s)
	case term[0] == '\'':
		c, err := parseCharLit(term)
		if err != nil {
			return e, err
		}
		e.off = int64(c) + adjust
	case term[0] == '-' || (term[0] >= '0' && term[0] <= '9'):
		n, err := strconv.ParseInt(term, 0, 64)
		if err != nil {
			return e, fmt.Errorf("bad number %q", term)
		}
		e.off = n + adjust
	default:
		if !validSymbol(term) {
			return e, fmt.Errorf("bad symbol name %q", term)
		}
		e.sym = term
		e.off = adjust
	}
	return e, nil
}

func validSymbol(s string) bool {
	for i, c := range s {
		switch {
		case c == '_' || c == '.' || c == '$':
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

func parseCharLit(s string) (byte, error) {
	if len(s) < 3 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return 0, fmt.Errorf("bad character literal %q", s)
	}
	body := s[1 : len(s)-1]
	if body[0] != '\\' {
		if len(body) != 1 {
			return 0, fmt.Errorf("bad character literal %q", s)
		}
		return body[0], nil
	}
	if len(body) != 2 {
		return 0, fmt.Errorf("bad escape %q", s)
	}
	switch body[1] {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	}
	return 0, fmt.Errorf("unknown escape %q", s)
}

// unquoteString decodes a double-quoted .asciiz argument.
func unquoteString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string literal %s", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in %s", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c in %s", body[i], s)
		}
	}
	return b.String(), nil
}
