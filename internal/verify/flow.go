package verify

import (
	"strings"

	"repro/internal/isa"
)

// state is the per-program-point abstract machine state for one function:
// which registers are must-defined, which callee-saved registers hold
// values that differ from their entry values, a small constant environment
// (feeding indirect-jump resolution and stack-pointer arithmetic), the
// stack pointer's offset from its entry value, and the set of frame slots
// holding pristine callee-saved copies.
type state struct {
	defined   uint64 // must-defined registers (bit = isa.Reg value)
	clobbered uint64 // callee-saved + link registers written, not yet restored
	constMask uint64 // registers with a known constant value
	consts    [64]int32
	fpsr      bool // FP status register defined by a reaching fcmp
	spKnown   bool // sp offset from entry is a known constant
	spDelta   int32
	slots     map[int32]isa.Reg // entry-relative sp offset -> pristine reg saved there
}

func bit(r isa.Reg) uint64 { return 1 << uint(r) }

func (s *state) has(r isa.Reg) bool { return s.defined&bit(r) != 0 }
func (s *state) def(r isa.Reg)      { s.defined |= bit(r) }

func (s *state) isClobbered(r isa.Reg) bool { return s.clobbered&bit(r) != 0 }
func (s *state) clobber(r isa.Reg)          { s.clobbered |= bit(r) }
func (s *state) unclobber(r isa.Reg)        { s.clobbered &^= bit(r) }

func (s *state) constOf(r isa.Reg) (int32, bool) {
	if !r.Valid() || s.constMask&bit(r) == 0 {
		return 0, false
	}
	return s.consts[r], true
}

func (s *state) setConst(r isa.Reg, v int32) {
	s.constMask |= bit(r)
	s.consts[r] = v
}

func (s *state) killConst(r isa.Reg) { s.constMask &^= bit(r) }

func (s *state) slotReg(off int32) isa.Reg {
	if r, ok := s.slots[off]; ok {
		return r
	}
	return isa.NoReg
}

func (s *state) setSlot(off int32, r isa.Reg) {
	if s.slots == nil {
		s.slots = map[int32]isa.Reg{}
	}
	s.slots[off] = r
}

func (s *state) delSlot(off int32) { delete(s.slots, off) }

func (s *state) clone() *state {
	c := *s
	if s.slots != nil {
		c.slots = make(map[int32]isa.Reg, len(s.slots))
		for k, r := range s.slots { //detlint:ignore rangemap copied into an unordered map, never iterated for output
			c.slots[k] = r
		}
	}
	return &c
}

// merge joins o into s (s is the state already recorded at a program
// point, o a newly arriving one). It reports whether s changed, and
// whether the two paths disagree on a known stack depth.
func (s *state) merge(o *state) (changed, spConflict bool) {
	if d := s.defined & o.defined; d != s.defined {
		s.defined, changed = d, true
	}
	if c := s.clobbered | o.clobbered; c != s.clobbered {
		s.clobbered, changed = c, true
	}
	if s.fpsr && !o.fpsr {
		s.fpsr, changed = false, true
	}
	if s.spKnown {
		if !o.spKnown {
			s.spKnown, changed = false, true
		} else if o.spDelta != s.spDelta {
			s.spKnown, changed, spConflict = false, true, true
		}
	}
	m := s.constMask & o.constMask
	for r := isa.Reg(0); r < 64; r++ {
		if m&bit(r) != 0 && s.consts[r] != o.consts[r] {
			m &^= bit(r)
		}
	}
	if m != s.constMask {
		s.constMask, changed = m, true
	}
	for off, r := range s.slots { //detlint:ignore rangemap intersection of unordered maps, never iterated for output
		if o.slotReg(off) != r {
			delete(s.slots, off)
			changed = true
		}
	}
	return changed, spConflict
}

// entryState is the abstract state at a function entry under the ABI:
// link, sp, gp, argument and callee-saved registers hold values; scratch
// and caller-saved temporaries hold garbage. On D16 the condition
// register r0 is garbage too; on DLXe it is the constant zero.
func (v *verifier) entryState() *state {
	st := &state{spKnown: true, slots: map[int32]isa.Reg{}}
	for i := 0; i < v.spec.NumGPR && i < 32; i++ {
		r := isa.R(i)
		switch {
		case i == 0:
			// Always defined: hardwired zero on DLXe; on D16 the decoder
			// reports r0 as an operand of every REG-format instruction
			// (absent fields decode as register 0), so its definedness
			// cannot be tracked without drowning in false positives.
			st.def(r)
			if v.spec.R0Zero {
				st.setConst(r, 0)
			}
		case r == isa.RegLink || r == isa.RegSP || r == isa.RegGP:
			st.def(r)
		case i >= 3 && i <= 6: // argument registers
			st.def(r)
		case isa.CalleeSaved(r):
			st.def(r)
		}
	}
	for i := 0; i < v.spec.NumFPR && i < 32; i++ {
		f := isa.F(i)
		if (i >= 1 && i <= 4) || isa.CalleeSaved(f) {
			st.def(f)
		}
	}
	return st
}

// callClobberMask is the set of registers whose contents (and constants)
// die across a call: caller-saved argument registers, scratch
// temporaries, the caller-saved upper banks, the FP temporaries — and on
// D16 the condition register, which any callee's compares overwrite.
func (v *verifier) callClobberMask() uint64 {
	var m uint64
	for i := 0; i < v.spec.NumGPR && i < 32; i++ {
		r := isa.R(i)
		if i >= 3 && i <= 6 || i == 14 || i == 15 || i >= 24 {
			m |= bit(r)
		}
	}
	for i := 0; i < v.spec.NumFPR && i < 32; i++ {
		if i <= 7 || i >= 24 {
			m |= bit(isa.F(i))
		}
	}
	return m
}

// analyze runs the combined reachability + dataflow fixpoint over one
// function and then reports any instructions the walk never reached.
func (v *verifier) analyze(f funcSpan) {
	if !v.isCode(f.start) {
		v.violate(f.start, CheckCFG, "function %s starts in non-code (pool, padding or data)", f.name)
		return
	}

	states := map[uint32]*state{}
	var work []uint32
	push := func(pc uint32, st *state) {
		if have, ok := states[pc]; ok {
			changed, conflict := have.merge(st)
			if conflict {
				v.violate(pc, CheckStack, "stack depths differ across joining paths")
			}
			if !changed {
				return
			}
		} else {
			states[pc] = st.clone()
		}
		work = append(work, pc)
	}

	push(f.start, v.entryState())
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		v.step(f, pc, states[pc].clone(), push)
	}

	if v.opts.AllowUnreachable {
		return
	}
	for pc := f.start; pc < f.end; pc += v.ib {
		if !v.isCode(pc) || v.rep.reachable[pc] {
			continue
		}
		run := 1
		end := pc + v.ib
		for end < f.end && v.isCode(end) && !v.rep.reachable[end] {
			run++
			end += v.ib
		}
		v.violate(pc, CheckCFG, "unreachable: %d instruction(s) no path from %s reaches", run, f.name)
		pc = end - v.ib
	}
}

// step interprets the unit at pc (one instruction, or a control transfer
// folded with its delay slot) over st and pushes successor states.
func (v *verifier) step(f funcSpan, pc uint32, st *state, push func(uint32, *state)) {
	v.rep.reachable[pc] = true
	in := v.ins[v.idx(pc)]
	if err := v.derr[v.idx(pc)]; err != nil {
		v.violate(pc, CheckEncoding, "undecodable instruction word: %v", err)
		return
	}
	v.checkInstr(pc, in)

	if !in.Op.IsControl() {
		v.effect(st, pc, in)
		if in.Op == isa.TRAP && in.Imm == 0 {
			v.noteHalt(pc)
			// Halt. The delay-slot-sized shadow after it (a nop the
			// runtime leaves for the pipeline to drain into) is
			// considered covered but never interpreted.
			if v.isCode(pc + v.ib) {
				v.rep.reachable[pc+v.ib] = true
			}
			return
		}
		v.flow(f, pc, pc+v.ib, st, push)
		return
	}

	// Control transfer: validate and fold the architectural delay slot.
	slotPC := pc + v.ib
	if !v.isCode(slotPC) {
		v.violate(pc, CheckCFG, "control transfer has no delay slot (end of code)")
		return
	}
	if err := v.derr[v.idx(slotPC)]; err != nil {
		v.violate(slotPC, CheckEncoding, "undecodable instruction word in delay slot: %v", err)
		return
	}
	slot := v.ins[v.idx(slotPC)]
	v.rep.reachable[slotPC] = true
	v.checkInstr(slotPC, slot)
	if slot.Op.IsControl() {
		v.violate(slotPC, CheckCFG, "control transfer in a delay slot")
		return
	}

	// The transfer instruction reads its operands (and jl writes the
	// link register) before the delay slot executes.
	v.useCheck(st, pc, in)
	if in.Op == isa.JL {
		st.def(isa.RegLink)
		st.clobber(isa.RegLink)
		st.killConst(isa.RegLink)
	}

	// Resolve the target before the slot runs: an indirect jump's
	// register may legally be overwritten by its own delay slot.
	target, haveTarget := uint32(0), false
	switch {
	case in.Op.IsBranch():
		target, haveTarget = pc+uint32(in.Imm), true
	case in.HasImm: // DLXe J-type: PC-relative displacement
		target, haveTarget = pc+uint32(in.Imm), true
	default:
		if c, ok := st.constOf(in.Rs1); ok {
			target, haveTarget = uint32(c), true
		}
	}

	v.effect(st, slotPC, slot)
	fall := pc + 2*v.ib

	switch in.Op {
	case isa.BR:
		if v.checkTarget(f, pc, target, false) {
			v.noteTarget(pc, target)
			push(target, st)
		}
	case isa.BZ, isa.BNZ:
		if v.checkTarget(f, pc, target, false) {
			v.noteTarget(pc, target)
			push(target, st)
		}
		v.noteFall(pc)
		v.flow(f, pc, fall, st, push)
	case isa.JL:
		if haveTarget {
			if !v.inText(target) || v.starts[target] == "" {
				v.violate(pc, CheckCFG, "call target %#x is not a function entry", target)
			}
		}
		v.noteCall(pc, target, haveTarget)
		v.noteFall(pc)
		// Call effect: caller-saved state dies, return values appear.
		m := v.callClobberMask()
		st.defined &^= m
		st.constMask &^= m
		st.killConst(isa.RegLink)
		st.fpsr = false
		st.def(isa.RegLink)
		st.def(isa.RetReg)
		if v.spec.NumFPR > 0 {
			st.def(isa.FRetReg)
		}
		v.flow(f, pc, fall, st, push)
	case isa.J:
		if !in.HasImm && in.Rs1 == isa.RegLink {
			v.noteReturn(pc)
			v.checkReturn(st, pc)
			return
		}
		if haveTarget {
			if v.checkTarget(f, pc, target, false) {
				v.noteTarget(pc, target)
				push(target, st)
			}
		} else {
			// An unresolvable indirect jump ends the walk conservatively.
			v.noteUnresolved(pc)
		}
	case isa.JZ, isa.JNZ:
		if haveTarget {
			if v.checkTarget(f, pc, target, false) {
				v.noteTarget(pc, target)
				push(target, st)
			}
		} else {
			v.noteUnresolved(pc)
		}
		v.noteFall(pc)
		v.flow(f, pc, fall, st, push)
	}
}

// flow pushes the linear successor, diagnosing falls off the end of the
// function or into non-code.
func (v *verifier) flow(f funcSpan, pc, succ uint32, st *state, push func(uint32, *state)) {
	if succ >= f.end {
		v.violate(pc, CheckCFG, "execution falls past the end of %s", f.name)
		return
	}
	if !v.isCode(succ) {
		v.violate(pc, CheckCFG, "execution falls into a literal pool or padding")
		return
	}
	push(succ, st)
}

// checkTarget validates one branch/jump target; call targets (isCall)
// may leave the function, branch targets must not.
func (v *verifier) checkTarget(f funcSpan, pc, t uint32, isCall bool) bool {
	if !v.inText(t) {
		v.violate(pc, CheckCFG, "target %#x is outside the text segment", t)
		return false
	}
	if (t-isa.TextBase)%v.ib != 0 {
		v.violate(pc, CheckCFG, "target %#x is not instruction-aligned", t)
		return false
	}
	if v.img.InNonCode(t) {
		v.violate(pc, CheckCFG, "target %#x lands in a literal pool or padding", t)
		return false
	}
	if v.derr[v.idx(t)] != nil {
		v.violate(pc, CheckCFG, "target %#x does not decode", t)
		return false
	}
	if !isCall && (t < f.start || t >= f.end) {
		v.violate(pc, CheckCFG, "target %#x leaves function %s", t, f.name)
		return false
	}
	return true
}

// checkReturn runs the stack-discipline checks at a `j r1` after its
// delay slot (epilogue sp restores ride in the slot).
func (v *verifier) checkReturn(st *state, pc uint32) {
	if st.isClobbered(isa.RegLink) {
		v.violate(pc, CheckStack, "return through clobbered link register r1")
	}
	if !st.spKnown {
		v.violate(pc, CheckStack, "stack pointer not provably balanced at return")
	} else if st.spDelta != 0 {
		v.violate(pc, CheckStack, "stack pointer off by %d bytes at return", st.spDelta)
	}
	if rest := st.clobbered &^ bit(isa.RegLink); rest != 0 {
		v.violate(pc, CheckStack, "callee-saved registers not restored at return: %s", regList(rest))
	}
}

// useCheck flags reads of registers with no reaching definition.
func (v *verifier) useCheck(st *state, pc uint32, in isa.Instr) {
	for _, r := range in.Uses(nil) {
		if !st.has(r) {
			v.violate(pc, CheckDefUse, "%s read but not written on some path reaching here", r)
		}
	}
	if in.Op == isa.RDSR && !st.fpsr {
		v.violate(pc, CheckDefUse, "rdsr reads FP status with no reaching FP compare")
	}
}

// effect interprets one non-control instruction over st: use checks,
// save-slot tracking, definitions, constants and sp arithmetic.
func (v *verifier) effect(st *state, pc uint32, in isa.Instr) {
	v.useCheck(st, pc, in)
	if in.Op.IsFCmp() {
		st.fpsr = true
	}

	// Frame stores: a pristine callee-saved (or link) register stored at
	// a known sp offset creates a save slot; anything else stored over a
	// slot destroys it.
	if in.Op.IsStore() && in.Rs1 == isa.RegSP && st.spKnown {
		off := st.spDelta + in.Imm
		if in.Op == isa.ST && trackSaved(in.Rd) && !st.isClobbered(in.Rd) {
			st.setSlot(off, in.Rd)
		} else {
			st.delSlot(off &^ 3)
		}
	}

	d := in.Def()
	if !d.Valid() {
		return
	}

	// Compute the defined value's constant (if any) before killing the
	// destination: d may alias a source.
	var nc int32
	var ncOK bool
	switch in.Op {
	case isa.MVI:
		nc, ncOK = in.Imm, true
	case isa.MVHI:
		nc, ncOK = in.Imm<<16, true
	case isa.LDC:
		nc, ncOK = v.literal(pc, in.Imm)
	case isa.MV:
		nc, ncOK = st.constOf(in.Rs1)
	case isa.ADD, isa.SUB:
		a, ok1 := st.constOf(in.Rs1)
		b, ok2 := st.constOf(in.Rs2)
		if ok1 && ok2 {
			if in.Op == isa.ADD {
				nc, ncOK = a+b, true
			} else {
				nc, ncOK = a-b, true
			}
		}
	case isa.ADDI:
		if a, ok := st.constOf(in.Rs1); ok {
			nc, ncOK = a+in.Imm, true
		}
	case isa.SUBI:
		if a, ok := st.constOf(in.Rs1); ok {
			nc, ncOK = a-in.Imm, true
		}
	case isa.SHLI:
		if a, ok := st.constOf(in.Rs1); ok {
			nc, ncOK = a<<uint(in.Imm&31), true
		}
	}

	switch d {
	case isa.RegSP:
		var delta int32
		ok := false
		switch in.Op {
		case isa.ADDI:
			if in.Rs1 == isa.RegSP {
				delta, ok = in.Imm, true
			}
		case isa.SUBI:
			if in.Rs1 == isa.RegSP {
				delta, ok = -in.Imm, true
			}
		case isa.ADD, isa.SUB:
			if in.Rs1 == isa.RegSP {
				if c, k := st.constOf(in.Rs2); k {
					if in.Op == isa.SUB {
						c = -c
					}
					delta, ok = c, true
				}
			} else if in.Op == isa.ADD && in.Rs2 == isa.RegSP {
				if c, k := st.constOf(in.Rs1); k {
					delta, ok = c, true
				}
			}
		}
		if ok {
			if st.spKnown {
				st.spDelta += delta
			}
		} else {
			if st.spKnown {
				v.violate(pc, CheckStack, "stack pointer updated by an unanalyzable instruction")
			}
			st.spKnown = false
			st.slots = nil
		}
	case isa.RegGP:
		v.violate(pc, CheckStack, "global pointer r13 overwritten")
	}

	// Restores: loading a save slot back into the register it holds
	// re-establishes the entry value.
	restored := false
	if in.Op == isa.LD && in.Rs1 == isa.RegSP && st.spKnown && st.slotReg(st.spDelta+in.Imm) == d {
		restored = true
	}
	if trackSaved(d) {
		if restored {
			st.unclobber(d)
		} else {
			st.clobber(d)
		}
	}

	if d == isa.RegCC && v.spec.R0Zero {
		// Writes to a hardwired-zero r0 are discarded.
		st.def(d)
		st.setConst(d, 0)
		return
	}
	st.def(d)
	if ncOK {
		st.setConst(d, nc)
	} else {
		st.killConst(d)
	}
}

// trackSaved reports whether r's save/restore discipline is tracked:
// callee-saved GPRs plus the link register. FP callee-saved registers
// are excluded — they cross to the stack 32 bits at a time through GPR
// transfers (mffl/mffh, then st), a dance this word-level analysis
// cannot follow without false positives.
func trackSaved(r isa.Reg) bool {
	return r == isa.RegLink || (r.IsGPR() && isa.CalleeSaved(r))
}

// regList renders a register bitmask as "r7, r9, f8".
func regList(mask uint64) string {
	var parts []string
	for r := isa.Reg(0); r < 64; r++ {
		if mask&bit(r) != 0 {
			parts = append(parts, r.String())
		}
	}
	return strings.Join(parts, ", ")
}
