package verify_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/dlxe"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/verify"
)

// expect is one required violation: the exact PC it must anchor to, the
// check family, and a substring of the message.
type expect struct {
	pc    uint32
	check string
	msg   string
}

// corpusCases maps each testdata source to the violations it must
// produce. PCs are isa.TextBase plus the instruction offset, accounting
// for the D16 jl-to-label expansion (ldc + jl = 2 slots).
var corpusCases = []struct {
	file string
	spec func() *isa.Spec
	want []expect
}{
	{"d16_ctl_in_slot.s", isa.D16, []expect{
		{0x1002, verify.CheckCFG, "control transfer in a delay slot"},
	}},
	{"d16_no_slot_at_end.s", isa.D16, []expect{
		{0x1000, verify.CheckCFG, "no delay slot"},
	}},
	{"d16_unreachable.s", isa.D16, []expect{
		{0x1004, verify.CheckCFG, "unreachable: 2 instruction(s)"},
	}},
	{"d16_sp_unbalanced.s", isa.D16, []expect{
		{0x100c, verify.CheckStack, "off by -8 bytes at return"},
	}},
	{"d16_callee_clobber.s", isa.D16, []expect{
		{0x100c, verify.CheckStack, "not restored at return: r7"},
	}},
	{"d16_gp_overwrite.s", isa.D16, []expect{
		{0x1000, verify.CheckStack, "global pointer r13 overwritten"},
	}},
	{"d16_undef_read.s", isa.D16, []expect{
		{0x1000, verify.CheckDefUse, "r14 read but not written"},
	}},
	{"d16_clobber_after_call.s", isa.D16, []expect{
		{0x1006, verify.CheckDefUse, "r4 read but not written"},
	}},
	{"dlxe_trap_bad.s", isa.DLXe, []expect{
		{0x1000, verify.CheckCFG, "trap code 9 is not serviced"},
	}},
	{"dlxe_rdsr_nofcmp.s", isa.DLXe, []expect{
		{0x1000, verify.CheckDefUse, "rdsr reads FP status"},
	}},
	{"dlxe_unaligned_target.s", isa.DLXe, []expect{
		{0x1004, verify.CheckCFG, "not instruction-aligned"},
	}},
	{"dlxe_jump_outside.s", isa.DLXe, []expect{
		{0x1004, verify.CheckCFG, "outside the text segment"},
	}},
	{"dlxe_call_mid_function.s", isa.DLXe, []expect{
		{0x1000, verify.CheckCFG, "is not a function entry"},
	}},
}

func assembleFile(t *testing.T, file string, spec *isa.Spec) *prog.Image {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(file, string(src), spec)
	if err != nil {
		t.Fatalf("assemble %s: %v", file, err)
	}
	return img
}

func requireViolation(t *testing.T, rep *verify.Report, w expect) {
	t.Helper()
	for _, v := range rep.Violations {
		if v.PC == w.pc && v.Check == w.check && containsStr(v.Msg, w.msg) {
			return
		}
	}
	t.Errorf("missing violation pc=%#x check=%s msg~%q; got:\n%s",
		w.pc, w.check, w.msg, violationDump(rep))
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func violationDump(rep *verify.Report) string {
	out := ""
	for _, v := range rep.Violations {
		out += "  " + v.String() + "\n"
	}
	if out == "" {
		out = "  (clean)"
	}
	return out
}

// TestNegativeCorpus: every hand-written bad program is rejected with a
// violation anchored at the exact offending PC.
func TestNegativeCorpus(t *testing.T) {
	for _, tc := range corpusCases {
		t.Run(tc.file, func(t *testing.T) {
			spec := tc.spec()
			img := assembleFile(t, tc.file, spec)
			rep := verify.Image(img, spec)
			if rep.OK() {
				t.Fatalf("%s verified clean, want rejection", tc.file)
			}
			for _, w := range tc.want {
				requireViolation(t, rep, w)
			}
		})
	}
}

// badDLXeWord returns an instruction word the DLXe decoder rejects.
func badDLXeWord(t *testing.T) uint32 {
	t.Helper()
	for op := uint32(63); op > 0; op-- {
		w := op << 26
		if _, err := dlxe.Decode(w, isa.TextBase); err != nil {
			return w
		}
	}
	t.Fatal("no undecodable DLXe word found")
	return 0
}

// TestUndecodableEntry: a garbage word at a reachable PC is an encoding
// violation at that PC.
func TestUndecodableEntry(t *testing.T) {
	spec := isa.DLXe()
	img, err := asm.Assemble("t.s", "\t.text\n_start:\n\ttrap 0\n\tnop\n", spec)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(img.Text[0:], badDLXeWord(t))
	rep := verify.Image(img, spec)
	requireViolation(t, rep, expect{0x1000, verify.CheckEncoding, "undecodable instruction word"})
}

// TestUndecodableDelaySlot: garbage in a delay slot is flagged at the
// slot's PC with the slot-specific message.
func TestUndecodableDelaySlot(t *testing.T) {
	spec := isa.DLXe()
	src := "\t.text\n_start:\n\tb .out\n\tnop\n.out:\n\ttrap 0\n\tnop\n"
	img, err := asm.Assemble("t.s", src, spec)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(img.Text[4:], badDLXeWord(t))
	rep := verify.Image(img, spec)
	requireViolation(t, rep, expect{0x1004, verify.CheckEncoding, "undecodable instruction word in delay slot"})
}

// TestSpecMismatch: code legal for full DLXe violates the restricted
// variants' field and arity limits — the checks the compiler must
// respect even though the raw encoding is wider.
func TestSpecMismatch(t *testing.T) {
	src := "\t.text\n_start:\n\tadd r4, r5, r6\n\tadd r7, r20, r21\n\ttrap 0\n\tnop\n"
	img, err := asm.Assemble("t.s", src, isa.DLXe())
	if err != nil {
		t.Fatal(err)
	}

	restricted := isa.RestrictRegs(isa.DLXe(), 16)
	rep := verify.Image(img, restricted)
	requireViolation(t, rep, expect{0x1004, verify.CheckEncoding, "register r20 exceeds the 16-GPR register file"})
	requireViolation(t, rep, expect{0x1004, verify.CheckEncoding, "register r21 exceeds the 16-GPR register file"})

	twoAddr := isa.TwoAddress(restricted)
	rep = verify.Image(img, twoAddr)
	requireViolation(t, rep, expect{0x1000, verify.CheckEncoding, "two-address target requires rd == rs1"})
}

// TestMVIRangeMismatch: a 9-bit D16 mvi immediate is out of range for
// the 8-bit D16+ variant.
func TestMVIRangeMismatch(t *testing.T) {
	src := "\t.text\n_start:\n\tmvi r4, 200\n\ttrap 0\n\tnop\n"
	img, err := asm.Assemble("t.s", src, isa.D16())
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Image(img, isa.D16Plus())
	requireViolation(t, rep, expect{0x1000, verify.CheckEncoding, "mvi immediate 200 outside"})
}
