; negative: only trap codes 0-4 are serviced by the simulator.
	.text
	.global _start
_start:
	trap 9          ; <- unserviced trap code
	trap 0
	nop
