; negative: two instructions no path reaches.
	.text
	.global _start
_start:
	b .out
	nop
	mvi r4, 1       ; <- unreachable
	mvi r4, 2
.out:
	trap 0
	nop
