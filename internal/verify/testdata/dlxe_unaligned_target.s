; negative: register jump to a constant that is not instruction-aligned.
	.text
	.global _start
_start:
	li r14, 4099    ; 0x1003, inside text but unaligned
	j r14           ; <- target not instruction-aligned
	nop
