; negative: the global pointer is the ABI's one pinned register.
	.text
	.global _start
_start:
	mvi r13, 0      ; <- r13 overwritten
	trap 0
	nop
