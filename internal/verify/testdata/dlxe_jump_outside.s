; negative: register jump to a constant below the text base.
	.text
	.global _start
_start:
	li r14, 256     ; 0x100, below TextBase
	j r14           ; <- target outside the text segment
	nop
