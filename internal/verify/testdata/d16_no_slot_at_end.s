; negative: a control transfer as the last word of text has no delay slot.
	.text
	.global _start
_start:
	b _start        ; <- no delay slot (end of code)
