; negative: rdsr with no reaching FP compare reads junk status.
	.text
	.global _start
_start:
	rdsr r4         ; <- no fcmp on any path here
	trap 0
	nop
