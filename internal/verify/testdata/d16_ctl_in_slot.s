; negative: the delay slot of the first branch holds another branch.
	.text
	.global _start
_start:
	b .out
	b .out          ; <- control transfer in a delay slot
.out:
	trap 0
	nop
