; negative: r14 is caller-scratch, undefined at entry.
	.text
	.global _start
_start:
	mv r4, r14      ; <- r14 read but never written
	trap 0
	nop
