; negative: f moves sp down and returns without restoring it.
	.text
	.global _start
_start:
	jl f
	nop
	trap 0
	nop
f:
	subi r2, r2, 8
	j r1            ; <- sp off by -8 at return
	nop
	.pool
