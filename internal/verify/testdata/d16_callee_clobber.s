; negative: f overwrites callee-saved r7 and returns without restoring it.
	.text
	.global _start
_start:
	jl f
	nop
	trap 0
	nop
f:
	mvi r7, 1
	j r1            ; <- r7 not restored at return
	nop
	.pool
