; negative: a call must land on a function entry, not mid-body.
	.text
	.global _start
_start:
	jl .mid         ; <- call into the middle of f
	nop
	trap 0
	nop
f:
	nop
.mid:
	j r1
	nop
