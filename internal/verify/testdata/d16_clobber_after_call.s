; negative: argument registers do not survive a call.
	.text
	.global _start
_start:
	jl f
	nop
	mv r5, r4       ; <- r4 clobbered by the call
	trap 0
	nop
f:
	j r1
	nop
	.pool
