package verify

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// This file exports the control-flow graph the verifier reconstructs as
// a by-product of its reachability walk. The static analyzer
// (internal/static) consumes it: every block's instructions provably
// decode and every recorded edge was validated by checkTarget, so
// downstream passes never re-prove decoding or target sanity.
//
// Delay slots are folded the way the machine executes them: a control
// transfer and its slot form one two-instruction unit at the end of a
// block, in issue order (transfer first, slot second). A branch into a
// delay slot — legal, if unusual — yields an overlapping one-instruction
// block starting at the slot, which is exactly the execution a machine
// entering there performs.

// Block is one basic block of reconstructed control flow. PCs and Instrs
// are parallel and list the executed instructions in issue order.
type Block struct {
	Start  uint32      // address of the first instruction
	PCs    []uint32    // instruction addresses, ascending and contiguous
	Instrs []isa.Instr // decoded instructions, parallel to PCs
	Succs  []uint32    // in-function successor block starts, ascending

	// CallTarget is the callee's entry address when the block ends in a
	// resolved jl; HasCall marks any jl terminator (CallUnresolved when
	// the callee register could not be resolved by const propagation).
	CallTarget     uint32
	HasCall        bool
	CallUnresolved bool

	Returns    bool // ends in `j r1` (return through the link register)
	Halts      bool // ends in trap 0
	Unresolved bool // ends in an indirect jump const-prop could not resolve
}

// FuncCFG is the control-flow graph of one function.
type FuncCFG struct {
	Name   string
	Entry  uint32
	End    uint32 // first address past the function
	Blocks []*Block // address order
	Index  map[uint32]int // block start -> Blocks index
}

// BlockAt returns the block starting at addr, or nil.
func (f *FuncCFG) BlockAt(addr uint32) *Block {
	if i, ok := f.Index[addr]; ok {
		return f.Blocks[i]
	}
	return nil
}

// CFG is the whole-image control-flow graph.
type CFG struct {
	Config  string
	Enc     string
	Entry   uint32 // image entry address
	Funcs   []*FuncCFG // address order
	ByEntry map[uint32]*FuncCFG
}

// CFGOf verifies img strictly and, when it is clean, returns its
// reconstructed CFG. On any violation the CFG is nil and the report
// carries the findings — callers surface it exactly as a failed verify.
func CFGOf(img *prog.Image, spec *isa.Spec) (*CFG, *Report) {
	v := &verifier{
		img:  img,
		spec: spec,
		ib:   img.Enc.InstrBytes(),
		rep: &Report{
			Config:    spec.Name,
			Enc:       img.Enc.String(),
			reachable: map[uint32]bool{},
		},
		seen: map[string]bool{},
		cfg:  &cfgRecorder{control: map[uint32]*xferRec{}, halts: map[uint32]bool{}},
	}
	v.run()
	if !v.rep.OK() {
		return nil, v.rep
	}
	return v.buildCFG(), v.rep
}

// cfgRecorder accumulates the control transfers the reachability walk
// resolves. The walk revisits program points until the dataflow fixpoint
// stabilizes, so every note is idempotent.
type cfgRecorder struct {
	control map[uint32]*xferRec
	halts   map[uint32]bool
}

// xferRec is the recorded outcome of one control-transfer unit.
type xferRec struct {
	targets        []uint32
	fall           bool
	callTarget     uint32
	hasCall        bool
	callUnresolved bool
	returns        bool
	unresolved     bool
}

func (v *verifier) xrec(pc uint32) *xferRec {
	x := v.cfg.control[pc]
	if x == nil {
		x = &xferRec{}
		v.cfg.control[pc] = x
	}
	return x
}

func (v *verifier) noteHalt(pc uint32) {
	if v.cfg != nil {
		v.cfg.halts[pc] = true
	}
}

func (v *verifier) noteTarget(pc, t uint32) {
	if v.cfg == nil {
		return
	}
	x := v.xrec(pc)
	for _, have := range x.targets {
		if have == t {
			return
		}
	}
	x.targets = append(x.targets, t)
}

func (v *verifier) noteFall(pc uint32) {
	if v.cfg != nil {
		v.xrec(pc).fall = true
	}
}

func (v *verifier) noteCall(pc, t uint32, resolved bool) {
	if v.cfg == nil {
		return
	}
	x := v.xrec(pc)
	x.hasCall = true
	if resolved {
		x.callTarget = t
	} else {
		x.callUnresolved = true
	}
}

func (v *verifier) noteReturn(pc uint32) {
	if v.cfg != nil {
		v.xrec(pc).returns = true
	}
}

func (v *verifier) noteUnresolved(pc uint32) {
	if v.cfg != nil {
		v.xrec(pc).unresolved = true
	}
}

// buildCFG assembles basic blocks from the recorded transfers. Only
// called on clean reports, so every reachable slot decodes and every
// recorded edge passed checkTarget.
func (v *verifier) buildCFG() *CFG {
	g := &CFG{
		Config:  v.rep.Config,
		Enc:     v.rep.Enc,
		Entry:   v.img.Entry,
		ByEntry: map[uint32]*FuncCFG{},
	}
	for _, f := range v.funcs {
		fc := v.buildFuncCFG(f)
		g.Funcs = append(g.Funcs, fc)
		g.ByEntry[fc.Entry] = fc
	}
	return g
}

func (v *verifier) buildFuncCFG(f funcSpan) *FuncCFG {
	// Leaders: the entry, every branch/jump target, and every
	// fall-through resumption point after a control unit.
	leaders := map[uint32]bool{f.start: true}
	for pc := f.start; pc < f.end; pc += v.ib {
		x := v.cfg.control[pc]
		if x == nil || !v.rep.reachable[pc] {
			continue
		}
		for _, t := range x.targets {
			leaders[t] = true
		}
		if x.fall {
			leaders[pc+2*v.ib] = true
		}
	}

	var starts []uint32
	for l := range leaders { //detlint:ignore rangemap sorted immediately below
		starts = append(starts, l)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	fc := &FuncCFG{Name: f.name, Entry: f.start, End: f.end, Index: map[uint32]int{}}
	for _, l := range starts {
		if l < f.start || l >= f.end || !v.isCode(l) || !v.rep.reachable[l] {
			continue
		}
		b := v.scanBlock(f, l, leaders)
		fc.Index[b.Start] = len(fc.Blocks)
		fc.Blocks = append(fc.Blocks, b)
	}
	return fc
}

// scanBlock walks straight-line code from leader l until a terminator or
// the next leader. Trap-0 shadows (the never-executed slot after a halt)
// are excluded from the instruction list.
func (v *verifier) scanBlock(f funcSpan, l uint32, leaders map[uint32]bool) *Block {
	b := &Block{Start: l}
	addSucc := func(t uint32) {
		for _, have := range b.Succs {
			if have == t {
				return
			}
		}
		b.Succs = append(b.Succs, t)
	}
	pc := l
	for pc < f.end && v.isCode(pc) {
		in := v.ins[v.idx(pc)]
		if x := v.cfg.control[pc]; x != nil {
			// Control unit: transfer then its delay slot, in issue order.
			slot := pc + v.ib
			b.PCs = append(b.PCs, pc, slot)
			b.Instrs = append(b.Instrs, in, v.ins[v.idx(slot)])
			for _, t := range x.targets {
				addSucc(t)
			}
			if x.fall {
				addSucc(pc + 2*v.ib)
			}
			b.HasCall = x.hasCall
			b.CallTarget = x.callTarget
			b.CallUnresolved = x.callUnresolved
			b.Returns = x.returns
			b.Unresolved = x.unresolved
			break
		}
		b.PCs = append(b.PCs, pc)
		b.Instrs = append(b.Instrs, in)
		if v.cfg.halts[pc] {
			b.Halts = true
			break
		}
		next := pc + v.ib
		if next < f.end && leaders[next] {
			addSucc(next)
			break
		}
		pc = next
	}
	sort.Slice(b.Succs, func(i, j int) bool { return b.Succs[i] < b.Succs[j] })
	return b
}
