package verify_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/verify"
)

// FuzzVerify feeds arbitrary byte streams to the verifier as text
// segments. Two properties must hold:
//
//  1. the verifier never panics, whatever the bytes decode to;
//  2. any stream it passes clean executes without an encoding trap —
//     a clean report means every reachable word decodes, so the
//     simulator must never fault on "executing undecodable word".
func FuzzVerify(f *testing.F) {
	// Seed with real assembled programs (one per encoding) and a few
	// degenerate shapes.
	for _, s := range []struct {
		src  string
		spec *isa.Spec
	}{
		{"\t.text\n_start:\n\tmvi r4, 7\n\taddi r4, r4, 1\n\ttrap 0\n\tnop\n", isa.D16()},
		{"\t.text\n_start:\n\tadd r4, r5, r6\n\tbz r4, .out\n\tnop\n.out:\n\ttrap 0\n\tnop\n", isa.DLXe()},
	} {
		img, err := asm.Assemble("seed.s", s.src, s.spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s.spec.Enc == isa.EncD16, img.Text)
	}
	f.Add(true, []byte{})
	f.Add(false, []byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, d16 bool, text []byte) {
		spec := isa.DLXe()
		if d16 {
			spec = isa.D16()
		}
		ib := int(spec.InstrBytes())
		if len(text) > 4096 {
			text = text[:4096]
		}
		text = text[:len(text)/ib*ib]
		img := &prog.Image{
			Enc:     spec.Enc,
			Text:    text,
			Entry:   isa.TextBase,
			Symbols: map[string]uint32{"_start": isa.TextBase},
		}

		rep := verify.Image(img, spec) // must not panic
		if !rep.OK() {
			return
		}

		m, err := sim.New(img)
		if err != nil {
			return // image malformed for the machine (e.g. empty text)
		}
		if err := m.Run(10000); err != nil &&
			strings.Contains(err.Error(), "undecodable") {
			t.Fatalf("verified clean but executed an undecodable word: %v", err)
		}
	})
}
