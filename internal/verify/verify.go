package verify

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/d16"
	"repro/internal/dlxe"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/telemetry"
)

// Options tunes the verifier.
type Options struct {
	// AllowUnreachable whitelists unreachable instructions (code the CFG
	// walk cannot reach from any function entry). The compile gate runs
	// strict; hand-assembled images may opt out.
	AllowUnreachable bool
}

// maxViolations caps the report so a garbage image (fuzzing) cannot
// allocate without bound.
const maxViolations = 200

// Image verifies a linked image against the target spec with default
// options and returns the full report.
func Image(img *prog.Image, spec *isa.Spec) *Report {
	return ImageOpts(img, spec, Options{})
}

// ImageOpts verifies with explicit options.
func ImageOpts(img *prog.Image, spec *isa.Spec, opts Options) *Report {
	span := telemetry.StartSpan("verify", telemetry.String("config", spec.Name))
	defer span.End()
	v := &verifier{
		img:  img,
		spec: spec,
		opts: opts,
		ib:   img.Enc.InstrBytes(),
		rep: &Report{
			Config:    spec.Name,
			Enc:       img.Enc.String(),
			reachable: map[uint32]bool{},
		},
		seen: map[string]bool{},
	}
	v.run()
	reg := telemetry.Default()
	reg.Counter("verify.images").Inc()
	reg.Counter("verify.instrs").Add(int64(v.rep.Instrs))
	reg.Counter("verify.violations").Add(int64(len(v.rep.Violations)))
	if !v.rep.OK() {
		reg.Counter("verify.rejected").Inc()
	}
	return v.rep
}

// funcSpan is one function's text range [start, end).
type funcSpan struct {
	name       string
	start, end uint32
}

type verifier struct {
	img  *prog.Image
	spec *isa.Spec
	opts Options
	ib   uint32
	rep  *Report

	ins    []isa.Instr // pre-decoded text, indexed by instruction slot
	derr   []error     // decode errors, same indexing
	funcs  []funcSpan
	starts map[uint32]string // function entry addresses -> name
	seen   map[string]bool   // violation dedup (pc|check|msg)
	cfg    *cfgRecorder      // non-nil when CFGOf wants the flow graph back
}

func (v *verifier) textEnd() uint32 { return isa.TextBase + uint32(len(v.img.Text)) }

// inText reports whether pc addresses a whole instruction slot in text.
func (v *verifier) inText(pc uint32) bool {
	return pc >= isa.TextBase && pc+v.ib <= v.textEnd()
}

func (v *verifier) idx(pc uint32) int { return int(pc-isa.TextBase) / int(v.ib) }

// isCode reports whether pc holds an instruction (in text, outside
// pools, padding and in-text data).
func (v *verifier) isCode(pc uint32) bool {
	return v.inText(pc) && !v.img.InNonCode(pc)
}

func (v *verifier) violate(pc uint32, check, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d|%s|%s", pc, check, msg)
	if v.seen[key] || len(v.rep.Violations) >= maxViolations {
		return
	}
	v.seen[key] = true
	viol := Violation{PC: pc, Check: check, Msg: msg, Sym: v.symFor(pc)}
	if v.inText(pc) && v.derr[v.idx(pc)] == nil {
		viol.Instr = v.ins[v.idx(pc)].String()
	}
	v.rep.Violations = append(v.rep.Violations, viol)
}

// symFor returns the enclosing function name for pc. Addresses outside
// every function span (an entry point in a pool, a target off the
// partition) fall back to the image's closest-symbol lookup so verify
// and the static analyzer name code the same way.
func (v *verifier) symFor(pc uint32) string {
	for _, f := range v.funcs {
		if pc >= f.start && pc < f.end {
			return f.name
		}
	}
	return v.img.SymbolAt(pc)
}

func (v *verifier) run() {
	// Pre-decode every instruction slot.
	n := len(v.img.Text) / int(v.ib)
	v.ins = make([]isa.Instr, n)
	v.derr = make([]error, n)
	for i := 0; i < n; i++ {
		pc := isa.TextBase + uint32(i)*v.ib
		if v.img.InNonCode(pc) {
			continue
		}
		v.rep.Instrs++
		if v.img.Enc == isa.EncD16 {
			w := binary.LittleEndian.Uint16(v.img.Text[i*2:])
			v.ins[i], v.derr[i] = d16.DecodeV(w, pc, d16.Variant{Cmp8: v.img.Cmp8})
		} else {
			w := binary.LittleEndian.Uint32(v.img.Text[i*4:])
			v.ins[i], v.derr[i] = dlxe.Decode(w, pc)
		}
	}

	v.partition()
	v.rep.Funcs = len(v.funcs)

	if !v.inText(v.img.Entry) {
		v.violate(v.img.Entry, CheckCFG, "entry point outside text segment")
		return
	}

	for _, f := range v.funcs {
		v.analyze(f)
	}
	v.rep.Reached = len(v.rep.reachable)
}

// partition splits the text segment into functions at the addresses of
// non-local symbols (local labels carry a "." prefix by the assembler's
// convention). The entry point always starts a function.
func (v *verifier) partition() {
	v.starts = map[uint32]string{}
	var addrs []uint32
	if v.inText(v.img.Entry) {
		v.starts[v.img.Entry] = "_entry"
		addrs = append(addrs, v.img.Entry)
	}
	for _, name := range v.img.SymbolNames() { // address order, ties by name
		addr := v.img.Symbols[name]
		if len(name) == 0 || name[0] == '.' || !v.inText(addr) {
			continue
		}
		if old, ok := v.starts[addr]; !ok {
			addrs = append(addrs, addr)
			v.starts[addr] = name
		} else if old == "_entry" {
			v.starts[addr] = name
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for i, a := range addrs {
		end := v.textEnd()
		if i+1 < len(addrs) {
			end = addrs[i+1]
		}
		if end > a {
			v.funcs = append(v.funcs, funcSpan{name: v.starts[a], start: a, end: end})
		}
	}
}

// checkInstr validates one decoded instruction's operands against the
// target spec's field widths and feature restrictions — the invariants
// the compiler must respect even where the raw encoding is wider (a
// restricted DLXe variant shares DLXe's 32-bit fields).
func (v *verifier) checkInstr(pc uint32, in isa.Instr) {
	s := v.spec
	bad := func(format string, args ...any) { v.violate(pc, CheckEncoding, format, args...) }

	for _, r := range []isa.Reg{in.Rd, in.Rs1, in.Rs2} {
		if !r.Valid() {
			continue
		}
		if r.IsGPR() && r.Num() >= s.NumGPR {
			bad("register %s exceeds the %d-GPR register file", r, s.NumGPR)
		}
		if r.IsFPR() && r.Num() >= s.NumFPR {
			bad("register %s exceeds the %d-FPR register file", r, s.NumFPR)
		}
	}

	// Two-address targets require rd == rs1 for ALU operations. The one
	// sanctioned exception: rs1 == r0 on a hardwired-zero machine, the
	// standard DLXe idiom for neg (sub rd, r0, rs) and mv (add rd, r0, rs).
	if !s.ThreeAddress && twoAddressOp(in.Op) && in.Rd != in.Rs1 &&
		!(s.R0Zero && in.Rs1 == isa.RegCC) {
		bad("two-address target requires rd == rs1 (rd=%s rs1=%s)", in.Rd, in.Rs1)
	}

	switch in.Op {
	case isa.ADDI, isa.SUBI:
		if !s.FitsALUImm(in.Imm) {
			bad("ALU immediate %d outside [0,%d]", in.Imm, s.MaxALUImm())
		}
	case isa.SHLI, isa.SHRI, isa.SHRAI:
		if in.Imm < 0 || in.Imm > 31 {
			bad("shift amount %d outside [0,31]", in.Imm)
		}
	case isa.ANDI, isa.ORI, isa.XORI:
		if !s.HasLogicalImm {
			bad("logical immediates are not available on %s", s)
		}
		if in.Imm < 0 || in.Imm > 0xFFFF {
			bad("logical immediate %d outside unsigned 16-bit range", in.Imm)
		}
	case isa.MVI:
		if !s.FitsMVI(in.Imm) {
			lo, hi := s.MVIRange()
			bad("mvi immediate %d outside [%d,%d]", in.Imm, lo, hi)
		}
	case isa.MVHI:
		if !s.HasMVHI {
			bad("mvhi is not available on %s", s)
		}
	case isa.CMP:
		if in.HasImm {
			cmp8 := s.CmpImm8 && in.Cond == isa.EQ && in.Imm >= 0 && in.Imm <= 255
			if !s.HasCmpImm && !cmp8 {
				bad("compare-immediate is not available on %s", s)
			}
		}
		switch in.Cond {
		case isa.GT, isa.GTU, isa.GE, isa.GEU:
			if !s.HasGTConds {
				bad("compare condition %s is not available on %s", in.Cond, s)
			}
		}
	case isa.LD, isa.ST:
		if !s.FitsMemDisp(in.Imm) {
			bad("word displacement %d outside [0,%d] or misaligned", in.Imm, s.MaxMemDisp())
		}
	case isa.LDH, isa.LDHU, isa.LDB, isa.LDBU, isa.STH, isa.STB:
		if !s.SubwordDisp && in.Imm != 0 {
			bad("subword displacement %d on a target without offsettable subword modes", in.Imm)
		}
	case isa.BR, isa.BZ, isa.BNZ:
		ioff := in.Imm / int32(v.ib)
		if ioff < -int32(s.BranchRangeIns) || ioff >= int32(s.BranchRangeIns) {
			bad("branch displacement %d instructions outside ±%d reach", ioff, s.BranchRangeIns)
		}
	case isa.LDC:
		if !s.HasLDC {
			bad("ldc is not available on %s", s)
		}
	case isa.J, isa.JL:
		if in.HasImm && !s.HasJType {
			bad("J-format jumps are not available on %s", s)
		}
	case isa.JZ, isa.JNZ:
		if in.HasImm {
			bad("conditional jumps are register-absolute only")
		}
	case isa.TRAP:
		// Trap codes the simulator does not service fault at runtime;
		// surface them statically under the CFG family (they terminate).
		if in.Imm < 0 || in.Imm > 4 {
			v.violate(pc, CheckCFG, "trap code %d is not serviced by the simulator", in.Imm)
		}
	}
}

// twoAddressOp reports whether op is subject to the two-address
// restriction (destination must equal the left source) on restricted
// targets.
func twoAddressOp(op isa.Op) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SHRA,
		isa.ADDI, isa.SUBI, isa.SHLI, isa.SHRI, isa.SHRAI,
		isa.FADDS, isa.FSUBS, isa.FMULS, isa.FDIVS,
		isa.FADDD, isa.FSUBD, isa.FMULD, isa.FDIVD:
		return true
	}
	return false
}

// literal reads the 32-bit pool word an LDC at pc references. ok is
// false when the reference leaves the text segment.
func (v *verifier) literal(pc uint32, disp int32) (int32, bool) {
	t := int64(pc) + int64(disp)
	if t < int64(isa.TextBase) || t+4 > int64(v.textEnd()) || t%4 != 0 {
		return 0, false
	}
	return int32(binary.LittleEndian.Uint32(v.img.Text[t-int64(isa.TextBase):])), true
}
