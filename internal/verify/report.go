// Package verify is the machine-code verifier: a static-analysis gate
// that runs over every linked image before simulation and proves the
// encoding, control-flow and calling-convention invariants the paper's
// density and path-length arguments depend on.
//
// Four layers of checks run per image (see docs/VERIFY.md):
//
//   - encoding: every reachable instruction decodes, and its operands
//     respect the target Spec's field widths (5-bit ALU immediates,
//     9-bit MVI and 7-bit word displacements on D16; 16-bit fields and
//     J-format reach on DLXe), register-file limits and address arity;
//   - control flow: branch and LDC targets stay inside the text
//     segment, never land in literal pools or padding, delay slots hold
//     plain instructions, trap codes are ones the simulator services,
//     and (optionally) no code is unreachable;
//   - dataflow: no register is read on a path where nothing defined it;
//   - stack discipline: the stack pointer is balanced on every return
//     path and callee-saved registers (including the link register) are
//     restored before use as a return address.
package verify

import (
	"fmt"
	"io"
	"strings"
)

// Version numbers the verifier's rule set. It is mixed into the jobs
// cache keys (see core.hashImage), so bumping it invalidates results
// that were admitted under older rules.
const Version = 1

// Violation is one verifier finding, anchored to the program counter of
// the offending instruction.
type Violation struct {
	// PC is the address of the instruction the finding is about.
	PC uint32 `json:"pc"`
	// Sym is the enclosing function symbol (empty if none).
	Sym string `json:"sym,omitempty"`
	// Check names the rule that fired (e.g. "encoding", "cfg",
	// "def-use", "stack").
	Check string `json:"check"`
	// Instr is the disassembled instruction, when it decodes.
	Instr string `json:"instr,omitempty"`
	// Msg says what is wrong.
	Msg string `json:"msg"`
}

func (v Violation) String() string {
	loc := fmt.Sprintf("%#06x", v.PC)
	if v.Sym != "" {
		loc += " (" + v.Sym + ")"
	}
	if v.Instr != "" {
		return fmt.Sprintf("%s [%s] %q: %s", loc, v.Check, v.Instr, v.Msg)
	}
	return fmt.Sprintf("%s [%s] %s", loc, v.Check, v.Msg)
}

// Check identifiers, one per rule family.
const (
	CheckEncoding = "encoding" // field widths, register files, spec invariants
	CheckCFG      = "cfg"      // targets, delay slots, traps, reachability
	CheckDefUse   = "def-use"  // register read with no reaching definition
	CheckStack    = "stack"    // sp balance and callee-saved restoration
)

// Report is the outcome of verifying one image.
type Report struct {
	// Config is the Spec the image was verified against.
	Config string `json:"config"`
	// Enc is "D16" or "DLXe".
	Enc string `json:"enc"`
	// Instrs is the number of instruction slots checked (text words
	// outside pools and padding).
	Instrs int `json:"instrs"`
	// Reached is the number of instructions proven reachable.
	Reached int `json:"reached"`
	// Funcs is the number of function symbols analyzed.
	Funcs int `json:"funcs"`
	// Violations lists every finding in address order.
	Violations []Violation `json:"violations,omitempty"`

	reachable map[uint32]bool
}

// OK reports whether the image passed every check.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Reachable reports whether the verifier proved pc reachable. Dynamic
// execution can exceed this set only through indirect jumps.
func (r *Report) Reachable(pc uint32) bool { return r.reachable[pc] }

// Err returns nil for a clean report and an *Error otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return &Error{Report: r}
}

// WriteTable renders the report as an aligned text table (one line per
// violation, or a single "ok" line).
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "verify %s: %d instrs, %d reachable, %d funcs: ", r.Config, r.Instrs, r.Reached, r.Funcs)
	if r.OK() {
		fmt.Fprintf(w, "ok\n")
		return
	}
	fmt.Fprintf(w, "%d violations\n", len(r.Violations))
	fmt.Fprintf(w, "  %-10s %-16s %-8s %-28s %s\n", "pc", "function", "check", "instruction", "violation")
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  %-10s %-16s %-8s %-28s %s\n",
			fmt.Sprintf("%#06x", v.PC), v.Sym, v.Check, v.Instr, v.Msg)
	}
}

// Error is the typed failure a rejected image produces; callers unwrap
// it to reach the per-PC violation list (mcrun/repro exit 3 on it, simd
// maps it to HTTP 422).
type Error struct {
	Report *Report
}

func (e *Error) Error() string {
	const show = 4
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %s image rejected: %d violation(s)", e.Report.Config, len(e.Report.Violations))
	for i, v := range e.Report.Violations {
		if i == show {
			fmt.Fprintf(&b, "\n  ... and %d more", len(e.Report.Violations)-show)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v.String())
	}
	return b.String()
}
