package verify_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/verify"
)

// The exported CFG must be internally consistent for every seed bench:
// block PC/instruction vectors agree, every successor is a block start
// in the same function, call targets are function entries, and every
// terminator reason is mutually exclusive with falling through.
func TestCFGConsistency(t *testing.T) {
	for _, spec := range append(isa.PaperConfigs(), isa.D16Plus()) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, b := range bench.All() {
				c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
				if err != nil {
					t.Fatalf("%s: compile: %v", b.Name, err)
				}
				g, rep := verify.CFGOf(c.Image, spec)
				if g == nil {
					t.Fatalf("%s: image rejected: %v", b.Name, rep.Err())
				}
				if g.ByEntry[g.Entry] == nil {
					t.Fatalf("%s: no function at image entry %#x", b.Name, g.Entry)
				}
				for _, f := range g.Funcs {
					if len(f.Blocks) == 0 {
						t.Errorf("%s: %s has no blocks", b.Name, f.Name)
						continue
					}
					if f.BlockAt(f.Entry) == nil {
						t.Errorf("%s: %s entry %#x is not a block start", b.Name, f.Name, f.Entry)
					}
					for _, blk := range f.Blocks {
						if len(blk.PCs) == 0 || len(blk.PCs) != len(blk.Instrs) {
							t.Fatalf("%s: %s block %#x: %d PCs vs %d instrs",
								b.Name, f.Name, blk.Start, len(blk.PCs), len(blk.Instrs))
						}
						if blk.PCs[0] != blk.Start {
							t.Errorf("%s: %s block %#x starts with PC %#x",
								b.Name, f.Name, blk.Start, blk.PCs[0])
						}
						for _, s := range blk.Succs {
							if f.BlockAt(s) == nil {
								t.Errorf("%s: %s block %#x: successor %#x is not a block",
									b.Name, f.Name, blk.Start, s)
							}
						}
						if blk.HasCall && !blk.CallUnresolved && g.ByEntry[blk.CallTarget] == nil {
							t.Errorf("%s: %s block %#x: call target %#x is not a function",
								b.Name, f.Name, blk.Start, blk.CallTarget)
						}
						if (blk.Halts || blk.Unresolved) && len(blk.Succs) != 0 {
							t.Errorf("%s: %s block %#x: terminal block has successors",
								b.Name, f.Name, blk.Start)
						}
					}
				}
			}
		})
	}
}
