package verify_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/verify"
)

// TestSeedBenchmarksClean proves the acceptance criterion that every
// seed benchmark verifies with zero violations on every paper
// configuration (both encodings, all register/arity restrictions, and
// the D16+ ablation target).
func TestSeedBenchmarksClean(t *testing.T) {
	specs := append(isa.PaperConfigs(), isa.D16Plus())
	for _, b := range bench.All() {
		for _, spec := range specs {
			b, spec := b, spec
			t.Run(fmt.Sprintf("%s/%s", b.Name, spec.Name), func(t *testing.T) {
				t.Parallel()
				c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				rep := verify.Image(c.Image, spec)
				if !rep.OK() {
					var sb strings.Builder
					rep.WriteTable(&sb)
					t.Fatalf("image not clean:\n%s", sb.String())
				}
				if rep.Reached == 0 || rep.Funcs == 0 {
					t.Fatalf("degenerate report: %+v", rep)
				}
			})
		}
	}
}
