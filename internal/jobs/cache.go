package jobs

import "sync"

// Cache is the content-addressed result store: completed job values by
// Key. It only ever holds successful results — failed jobs are not
// cached, so a transient failure can be retried by resubmitting.
//
// The cache is unbounded by design: its values are measurement results
// whose working set is the experiment grid (benchmarks × configurations),
// which is small and enumerable. Len is exported as a gauge so growth is
// visible before it is a problem.
type Cache struct {
	mu sync.RWMutex
	m  map[Key]any
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[Key]any{}} }

// Get returns the cached value for k.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	return v, ok
}

// Put stores v under k, overwriting any previous value.
func (c *Cache) Put(k Key, v any) {
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return n
}
