package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Key is a 32-byte content address. Jobs submitted with equal non-zero
// keys are interchangeable: the scheduler coalesces them while one is in
// flight and serves later submissions from the result cache. The zero
// Key marks a job as uncacheable.
type Key [32]byte

// IsZero reports whether k is the zero (uncacheable) key.
func (k Key) IsZero() bool { return k == Key{} }

// String returns the full hex form of the key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns an 8-byte hex prefix for labels and logs.
func (k Key) Short() string { return hex.EncodeToString(k[:8]) }

// Hasher builds a Key from typed fields. Every field is written with a
// length or tag prefix so that distinct field sequences can never
// produce the same digest by concatenation, and the domain string
// separates key spaces (e.g. "measure" vs "cache-sweep" runs over the
// same image).
type Hasher struct{ h hash.Hash }

// NewHasher starts a key over the given domain.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	return h.String(domain)
}

// Bytes appends a length-prefixed byte field.
func (h *Hasher) Bytes(b []byte) *Hasher {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	h.h.Write(n[:])
	h.h.Write(b)
	return h
}

// String appends a length-prefixed string field.
func (h *Hasher) String(s string) *Hasher { return h.Bytes([]byte(s)) }

// Int appends a fixed-width integer field.
func (h *Hasher) Int(v int64) *Hasher {
	var n [9]byte
	n[0] = 'i'
	binary.LittleEndian.PutUint64(n[1:], uint64(v))
	h.h.Write(n[:])
	return h
}

// Bool appends a boolean field.
func (h *Hasher) Bool(v bool) *Hasher {
	if v {
		return h.Int(1)
	}
	return h.Int(0)
}

// Key finalizes the digest.
func (h *Hasher) Key() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}
