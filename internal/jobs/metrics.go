package jobs

import "repro/internal/telemetry"

// Metrics is the scheduler's instrumentation, registered in a
// telemetry.Registry under one prefix (default "jobs."), so a service
// exposing telemetry.WriteProm publishes scheduler health for free:
//
//	jobs.queue_depth   gauge      tasks accepted but not yet started
//	jobs.inflight      gauge      tasks currently executing on a worker
//	jobs.submitted     counter    Submit/TrySubmit calls accepted
//	jobs.done          counter    jobs finished successfully
//	jobs.failed        counter    jobs finished with an error (incl. timeout)
//	jobs.overloaded    counter    TrySubmit rejections (queue full)
//	jobs.coalesced     counter    submissions joined to an in-flight job
//	jobs.cache.hits    counter    submissions served from the result cache
//	jobs.cache.misses  counter    submissions that had to execute
//	jobs.cache.entries gauge      results currently cached
//	jobs.latency_us    histogram  per-job wall-clock execution time (µs)
//	jobs.queue_wait_us fixed hist submit-to-dequeue wait (µs, pooled
//	                              mode only) with deterministic
//	                              p50/p90/p99 exported by WriteProm
type Metrics struct {
	QueueDepth  *telemetry.Gauge
	InFlight    *telemetry.Gauge
	Submitted   *telemetry.Counter
	Done        *telemetry.Counter
	Failed      *telemetry.Counter
	Overloaded  *telemetry.Counter
	Coalesced   *telemetry.Counter
	CacheHits   *telemetry.Counter
	CacheMisses *telemetry.Counter
	LatencyUS   *telemetry.Histogram
	QueueWaitUS *telemetry.FixedHistogram
}

// newMetrics binds the metric set into reg under prefix and registers
// the cache-size and worker-count func gauges.
func newMetrics(reg *telemetry.Registry, prefix string, cache *Cache, workers int) *Metrics {
	m := &Metrics{
		QueueDepth:  reg.Gauge(prefix + "queue_depth"),
		InFlight:    reg.Gauge(prefix + "inflight"),
		Submitted:   reg.Counter(prefix + "submitted"),
		Done:        reg.Counter(prefix + "done"),
		Failed:      reg.Counter(prefix + "failed"),
		Overloaded:  reg.Counter(prefix + "overloaded"),
		Coalesced:   reg.Counter(prefix + "coalesced"),
		CacheHits:   reg.Counter(prefix + "cache.hits"),
		CacheMisses: reg.Counter(prefix + "cache.misses"),
		LatencyUS:   reg.Histogram(prefix + "latency_us"),
		QueueWaitUS: reg.FixedHistogram(prefix+"queue_wait_us", telemetry.LatencyBounds),
	}
	reg.RegisterFunc(prefix+"cache.entries", func() int64 { return int64(cache.Len()) })
	reg.RegisterFunc(prefix+"workers", func() int64 { return int64(workers) })
	return m
}
