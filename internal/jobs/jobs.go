// Package jobs is the simulation service's execution substrate: a
// bounded worker pool with a content-addressed result cache.
//
// A Job is a closure plus an optional content Key (hash of everything
// that determines the result — for simulations, the program image and
// the memory-system configuration). Submitting a keyed job gives the
// scheduler three chances to avoid work:
//
//   - result cache hit: the job already ran; the returned Ticket is
//     complete immediately,
//   - coalescing: an identical job is queued or running; the caller
//     shares its Ticket,
//   - execution: the job is queued for a worker and its successful
//     result is cached for everyone after.
//
// Backpressure is explicit: the queue is bounded, TrySubmit fails fast
// with ErrOverloaded when it is full (HTTP handlers turn that into 503),
// while Submit blocks until space frees or the caller's context ends
// (library callers prefer waiting over failing). Shutdown drains
// gracefully: it stops admissions, waits for queued and running jobs,
// then releases the workers.
//
// Cancellation is cooperative: each job runs under a context derived
// from the scheduler's lifetime plus the job's timeout, and the context
// is checked once more after dequeue, so queued work cancelled during a
// shutdown never starts. A job function that ignores its context runs
// to completion; the simulator's own MaxInstrs runaway guard bounds
// that completion for simulation jobs.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrOverloaded is returned by TrySubmit when the queue is full. Servers
// map it to 503 Service Unavailable.
var ErrOverloaded = errors.New("jobs: queue full")

// ErrClosed is returned by Submit and TrySubmit after Shutdown began.
var ErrClosed = errors.New("jobs: scheduler shut down")

// Job is one unit of work.
type Job struct {
	// Name labels the job in errors and traces.
	Name string
	// Key is the content address of the result; the zero Key disables
	// caching and coalescing for this job.
	Key Key
	// Timeout bounds execution; 0 uses the scheduler's default.
	Timeout time.Duration
	// Fn computes the result. It must respect ctx for cancellation to
	// be effective and must not submit to the same scheduler (workers
	// waiting on workers can deadlock the pool).
	Fn func(ctx context.Context) (any, error)
}

// Config shapes a Scheduler.
type Config struct {
	// Workers is the pool size. 0 or negative selects inline mode:
	// jobs execute synchronously on the submitting goroutine, which
	// preserves strictly sequential behavior while keeping the cache
	// and metrics (this is what `repro -jobs 1` runs).
	Workers int
	// QueueDepth bounds accepted-but-not-started jobs (default 64).
	QueueDepth int
	// DefaultTimeout bounds each job lacking its own (0 = none).
	DefaultTimeout time.Duration
	// Registry receives the scheduler metrics (default: a private
	// registry; pass telemetry.Default() to expose them on /metrics).
	Registry *telemetry.Registry
	// Prefix namespaces the metric names (default "jobs.").
	Prefix string
}

// Scheduler runs jobs on a bounded worker pool with memoization.
type Scheduler struct {
	cfg    Config
	cache  *Cache
	m      *Metrics
	queue  chan *Ticket
	stop   chan struct{} // closed after drain: workers exit
	base   context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	inflight map[Key]*Ticket
	draining bool
	pending  sync.WaitGroup // accepted jobs not yet completed
	workers  sync.WaitGroup
}

// Ticket is a handle to a submitted job's eventual result.
type Ticket struct {
	job    Job
	done   chan struct{}
	val    any
	err    error
	cached bool

	// rid is the submitting request's ID (telemetry.RequestIDFrom on
	// the submit context); it lands in the job's execution span so
	// service traces connect requests to the work they caused. A
	// coalesced ticket keeps the first submitter's ID.
	rid string
	// enqueued stamps queue admission in pooled mode; the dequeueing
	// worker observes the wait into Metrics.QueueWaitUS.
	enqueued time.Time
}

func (t *Ticket) complete(v any, err error) {
	t.val, t.err = v, err
	close(t.done)
}

// Wait blocks until the job completes or ctx ends, returning the job's
// value and error. Waiting does not cancel the job; other holders of a
// coalesced ticket may still be waiting on it.
func (t *Ticket) Wait(ctx context.Context) (any, error) {
	select {
	case <-t.done:
		return t.val, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done returns a channel closed when the job completes.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Cached reports whether the result came straight from the result cache
// (only meaningful once the ticket is complete).
func (t *Ticket) Cached() bool { return t.cached }

// New returns a running scheduler.
func New(cfg Config) *Scheduler {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "jobs."
	}
	s := &Scheduler{
		cfg:      cfg,
		cache:    NewCache(),
		queue:    make(chan *Ticket, cfg.QueueDepth),
		stop:     make(chan struct{}),
		inflight: map[Key]*Ticket{},
	}
	s.base, s.cancel = context.WithCancel(context.Background())
	s.m = newMetrics(cfg.Registry, cfg.Prefix, s.cache, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the scheduler's instrumentation.
func (s *Scheduler) Metrics() *Metrics { return s.m }

// Cache returns the content-addressed result cache.
func (s *Scheduler) Cache() *Cache { return s.cache }

// Workers returns the configured pool size (0 = inline).
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// QueueDepth returns the current number of accepted-but-not-started jobs.
func (s *Scheduler) QueueDepth() int { return int(s.m.QueueDepth.Value()) }

// Submit enqueues j, blocking while the queue is full until space frees
// or ctx ends. The fast paths — cache hit and coalescing onto an
// in-flight twin — return a completed or shared Ticket without queueing.
func (s *Scheduler) Submit(ctx context.Context, j Job) (*Ticket, error) {
	return s.submit(ctx, j, true)
}

// TrySubmit is Submit without blocking: a full queue fails immediately
// with ErrOverloaded.
func (s *Scheduler) TrySubmit(ctx context.Context, j Job) (*Ticket, error) {
	return s.submit(ctx, j, false)
}

// Do submits j and waits for its result.
func (s *Scheduler) Do(ctx context.Context, j Job) (any, error) {
	t, err := s.Submit(ctx, j)
	if err != nil {
		return nil, err
	}
	return t.Wait(ctx)
}

func (s *Scheduler) submit(ctx context.Context, j Job, wait bool) (*Ticket, error) {
	t := &Ticket{job: j, done: make(chan struct{}), rid: telemetry.RequestIDFrom(ctx)}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if !j.Key.IsZero() {
		if v, ok := s.cache.Get(j.Key); ok {
			s.mu.Unlock()
			s.m.Submitted.Inc()
			s.m.CacheHits.Inc()
			t.cached = true
			t.complete(v, nil)
			return t, nil
		}
		if in, ok := s.inflight[j.Key]; ok {
			s.mu.Unlock()
			s.m.Submitted.Inc()
			s.m.Coalesced.Inc()
			return in, nil
		}
		s.inflight[j.Key] = t
		s.m.CacheMisses.Inc()
	}
	// pending is incremented under the same lock that checks draining,
	// so Shutdown's pending.Wait covers every accepted job.
	s.pending.Add(1)
	s.mu.Unlock()
	s.m.Submitted.Inc()

	if s.cfg.Workers <= 0 {
		// Inline mode: run on the submitting goroutine.
		s.run(t)
		return t, nil
	}

	s.m.QueueDepth.Add(1)
	t.enqueued = time.Now()
	if wait {
		select {
		case s.queue <- t:
			return t, nil
		case <-ctx.Done():
			s.reject(t, ctx.Err())
			return nil, ctx.Err()
		}
	}
	select {
	case s.queue <- t:
		return t, nil
	default:
		s.m.Overloaded.Inc()
		s.reject(t, fmt.Errorf("%s: %w", j.Name, ErrOverloaded))
		return nil, ErrOverloaded
	}
}

// reject withdraws an accepted-but-unqueued job. The ticket is completed
// with err so that any submission that coalesced onto it between the
// admission lock and the failed enqueue observes the failure instead of
// waiting forever.
func (s *Scheduler) reject(t *Ticket, err error) {
	s.m.QueueDepth.Add(-1)
	if !t.job.Key.IsZero() {
		s.mu.Lock()
		delete(s.inflight, t.job.Key)
		s.mu.Unlock()
	}
	t.complete(nil, err)
	s.pending.Done()
}

func (s *Scheduler) worker() {
	defer s.workers.Done()
	for {
		select {
		case t := <-s.queue:
			s.m.QueueDepth.Add(-1)
			s.run(t)
		case <-s.stop:
			return
		}
	}
}

// run executes one job: context assembly, panic containment, metrics,
// request-scoped span, cache fill, and ticket completion.
func (s *Scheduler) run(t *Ticket) {
	defer s.pending.Done()
	s.m.InFlight.Add(1)
	start := time.Now()
	if !t.enqueued.IsZero() {
		s.m.QueueWaitUS.Observe(start.Sub(t.enqueued).Microseconds())
	}
	attrs := []telemetry.Attr{telemetry.String("job", t.job.Name)}
	if t.rid != "" {
		attrs = append(attrs, telemetry.String("request_id", t.rid))
	}
	span := telemetry.StartSpan("jobs.run", attrs...)
	defer span.End()

	ctx := s.base
	cancel := context.CancelFunc(func() {})
	if to := t.job.Timeout; to > 0 || s.cfg.DefaultTimeout > 0 {
		if to <= 0 {
			to = s.cfg.DefaultTimeout
		}
		ctx, cancel = context.WithTimeout(ctx, to)
	}

	var val any
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("jobs: %s panicked: %v", t.job.Name, r)
			}
		}()
		// A job cancelled while queued (shutdown, expired deadline)
		// never starts.
		if err = ctx.Err(); err == nil {
			val, err = t.job.Fn(ctx)
		}
	}()
	cancel()

	s.m.LatencyUS.Observe(time.Since(start).Microseconds())
	s.m.InFlight.Add(-1)
	if err != nil {
		s.m.Failed.Inc()
	} else {
		s.m.Done.Inc()
		if !t.job.Key.IsZero() {
			s.cache.Put(t.job.Key, val)
		}
	}
	if !t.job.Key.IsZero() {
		s.mu.Lock()
		delete(s.inflight, t.job.Key)
		s.mu.Unlock()
	}
	t.complete(val, err)
}

// Shutdown drains the scheduler gracefully: it stops admitting jobs,
// waits for every accepted job to finish, then releases the workers. If
// ctx ends first, the scheduler context is cancelled — cooperative jobs
// stop early — and Shutdown still waits for the workers to come home
// before returning ctx's error.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}

	drained := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // hurry cooperative jobs along
		<-drained
	}
	close(s.stop)
	s.workers.Wait()
	s.cancel()
	return err
}
