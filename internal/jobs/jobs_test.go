package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func value(n int) func(context.Context) (any, error) {
	return func(context.Context) (any, error) { return n, nil }
}

func TestInlineSubmitExecutesAndCaches(t *testing.T) {
	s := New(Config{}) // Workers: 0 → inline
	k := NewHasher("test").String("point").Key()
	var calls atomic.Int64
	job := Job{Name: "p", Key: k, Fn: func(context.Context) (any, error) {
		calls.Add(1)
		return 42, nil
	}}
	for i := 0; i < 3; i++ {
		v, err := s.Do(context.Background(), job)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do #%d = %v, %v", i, v, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("Fn ran %d times, want 1 (cached)", calls.Load())
	}
	m := s.Metrics()
	if m.CacheHits.Value() != 2 || m.CacheMisses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", m.CacheHits.Value(), m.CacheMisses.Value())
	}
	if m.Done.Value() != 1 || m.Submitted.Value() != 3 {
		t.Fatalf("done=%d submitted=%d, want 1/3", m.Done.Value(), m.Submitted.Value())
	}
}

func TestUncachedJobsAlwaysRun(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	job := Job{Name: "u", Fn: func(context.Context) (any, error) {
		calls.Add(1)
		return nil, nil
	}}
	for i := 0; i < 3; i++ {
		if _, err := s.Do(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("Fn ran %d times, want 3 (zero key is uncacheable)", calls.Load())
	}
}

func TestPoolRunsConcurrently(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Shutdown(context.Background())
	// Four jobs that each block until all four are running proves the
	// pool executes in parallel (a serial pool would deadlock; the
	// timeout turns that into a test failure).
	var wg sync.WaitGroup
	wg.Add(4)
	var tks []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(context.Background(), Job{Name: "barrier", Fn: func(ctx context.Context) (any, error) {
			wg.Done()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
				return nil, nil
			case <-time.After(5 * time.Second):
				return nil, errors.New("barrier never filled")
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	for _, tk := range tks {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCoalescing(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	k := NewHasher("test").String("slow").Key()
	release := make(chan struct{})
	var calls atomic.Int64
	job := Job{Name: "slow", Key: k, Fn: func(context.Context) (any, error) {
		calls.Add(1)
		<-release
		return "done", nil
	}}
	t1, err := s.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to start so the second submit coalesces rather
	// than winning a queue race.
	for s.Metrics().InFlight.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	t2, err := s.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("coalesced submit returned a distinct ticket")
	}
	close(release)
	if v, err := t2.Wait(context.Background()); err != nil || v.(string) != "done" {
		t.Fatalf("Wait = %v, %v", v, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("Fn ran %d times, want 1", calls.Load())
	}
	if s.Metrics().Coalesced.Value() != 1 {
		t.Fatalf("coalesced=%d, want 1", s.Metrics().Coalesced.Value())
	}
}

func TestTrySubmitOverload(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Shutdown(context.Background())
	release := make(chan struct{})
	block := Job{Name: "block", Fn: func(context.Context) (any, error) {
		<-release
		return nil, nil
	}}
	// First job occupies the worker, second fills the queue.
	t1, err := s.TrySubmit(context.Background(), block)
	if err != nil {
		t.Fatal(err)
	}
	for s.Metrics().InFlight.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	t2, err := s.TrySubmit(context.Background(), block)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TrySubmit(context.Background(), Job{Name: "x", Fn: value(0)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("TrySubmit on full queue = %v, want ErrOverloaded", err)
	}
	if s.Metrics().Overloaded.Value() != 1 {
		t.Fatalf("overloaded=%d, want 1", s.Metrics().Overloaded.Value())
	}
	close(release)
	for _, tk := range []*Ticket{t1, t2} {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRejectedKeyedJobFailsCoalescedWaiters(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Shutdown(context.Background())
	release := make(chan struct{})
	defer close(release)
	block := Job{Name: "block", Fn: func(context.Context) (any, error) {
		<-release
		return nil, nil
	}}
	if _, err := s.TrySubmit(context.Background(), block); err != nil {
		t.Fatal(err)
	}
	for s.Metrics().InFlight.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.TrySubmit(context.Background(), block); err != nil {
		t.Fatal(err)
	}
	// A keyed job rejected for overload must not leave a zombie
	// in-flight entry behind: a later submit of the same key runs.
	k := NewHasher("test").String("kjob").Key()
	if _, err := s.TrySubmit(context.Background(), Job{Name: "k", Key: k, Fn: value(1)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	s.mu.Lock()
	_, zombie := s.inflight[k]
	s.mu.Unlock()
	if zombie {
		t.Fatal("rejected job left an in-flight entry")
	}
}

func TestTimeout(t *testing.T) {
	s := New(Config{Workers: 1, DefaultTimeout: 10 * time.Millisecond})
	defer s.Shutdown(context.Background())
	v, err := s.Do(context.Background(), Job{Name: "sleepy", Fn: func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return "overslept", nil
		}
	}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, %v; want deadline exceeded", v, err)
	}
	if s.Metrics().Failed.Value() != 1 {
		t.Fatalf("failed=%d, want 1", s.Metrics().Failed.Value())
	}
}

func TestFailedJobsAreNotCached(t *testing.T) {
	s := New(Config{})
	k := NewHasher("test").String("flaky").Key()
	var calls atomic.Int64
	job := Job{Name: "flaky", Key: k, Fn: func(context.Context) (any, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}}
	if _, err := s.Do(context.Background(), job); err == nil {
		t.Fatal("first Do should fail")
	}
	v, err := s.Do(context.Background(), job)
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry = %v, %v; want ok", v, err)
	}
}

func TestPanicContained(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	_, err := s.Do(context.Background(), Job{Name: "boom", Fn: func(context.Context) (any, error) {
		panic("kaboom")
	}})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Do after panic = %v, want contained panic error", err)
	}
	// The worker survives.
	if v, err := s.Do(context.Background(), Job{Name: "after", Fn: value(7)}); err != nil || v.(int) != 7 {
		t.Fatalf("Do after recovery = %v, %v", v, err)
	}
}

func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2})
	var done atomic.Int64
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(context.Background(), Job{Name: "work", Fn: func(context.Context) (any, error) {
			time.Sleep(2 * time.Millisecond)
			done.Add(1)
			return nil, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 8 {
		t.Fatalf("drained %d jobs, want 8", done.Load())
	}
	if _, err := s.Submit(context.Background(), Job{Name: "late", Fn: value(0)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrClosed", err)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	release := make(chan struct{})
	defer close(release)
	tk, err := s.Submit(context.Background(), Job{Name: "slow", Fn: func(context.Context) (any, error) {
		<-release
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := tk.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want deadline exceeded", err)
	}
}

func TestKeyDomainsAndFields(t *testing.T) {
	a := NewHasher("measure").String("x").Key()
	b := NewHasher("sweep").String("x").Key()
	if a == b {
		t.Fatal("different domains produced the same key")
	}
	// Length prefixing: ("ab","c") must differ from ("a","bc").
	if NewHasher("d").String("ab").String("c").Key() == NewHasher("d").String("a").String("bc").Key() {
		t.Fatal("field boundaries are ambiguous")
	}
	if (Key{}).IsZero() != true || a.IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	if len(a.String()) != 64 || len(a.Short()) != 16 {
		t.Fatalf("hex forms: %q %q", a.String(), a.Short())
	}
}

func TestMetricsAppearInProm(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{Workers: 0, Registry: reg, Prefix: "jobs."})
	k := NewHasher("test").String("m").Key()
	job := Job{Name: "m", Key: k, Fn: value(1)}
	for i := 0; i < 2; i++ {
		if _, err := s.Do(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"jobs_queue_depth 0",
		"jobs_inflight 0",
		"jobs_submitted 2",
		"jobs_done 1",
		"jobs_cache_hits 1",
		"jobs_cache_misses 1",
		"jobs_cache_entries 1",
		"# TYPE jobs_latency_us histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q\n%s", want, out)
		}
	}
}
