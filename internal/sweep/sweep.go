package sweep

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/static"
	"repro/internal/store"
	"repro/internal/synth"
)

// flushEvery is how many finished programs accumulate before their
// points are appended to the store file as one block. Flushing on a
// fixed program cadence — in enumeration order, after the deterministic
// in-order drain — makes the .mcst byte-identical between sequential
// and parallel runs.
const flushEvery = 32

// Failure is one corpus member that failed the verify/differential
// gate, with everything needed to reproduce and debug it offline.
type Failure struct {
	Class string
	Seed  uint32
	Name  string
	Stage string // compile | verify | static | run | differential
	Err   string
	Repro string // one-line repro command
	Path  string // minimized source artifact, if FailDir was set
}

// Summary is the outcome of one sweep.
type Summary struct {
	Programs int // corpus members enumerated
	Passed   int // programs that cleared compile+verify+static+run+differential on every config
	Points   int // store points emitted
	Failures []Failure
}

// Runner executes sweep specifications against a lab. Log receives the
// deterministic progress/summary lines (byte-identical across -jobs N);
// anything run-variable (artifact paths) goes to Errw.
type Runner struct {
	Lab     *core.Lab
	FailDir string    // artifact directory for failing programs ("" = don't persist)
	Log     io.Writer // deterministic output; nil = discard
	Errw    io.Writer // variable-path notes; nil = discard
}

// job tracks one corpus program through the fan-out: its submitted
// tickets (one bus-profile per config, plus one accounted run per
// config when the grid has cached cells), or the error that stopped
// submission.
type job struct {
	prog    *synth.Program
	bench   *bench.Benchmark
	specs   []*isa.Spec
	profile []*jobs.Ticket
	account []*jobs.Ticket
	stage   string
	cfg     string
	err     error
}

// Run generates the spec's corpus, fans the full-factorial grid through
// the lab's scheduler, differentially checks every program across the
// spec's configs, and streams the surface into storePath (skipped when
// empty). Program failures are reported in the summary, not returned as
// errors; the error return is for infrastructure (store I/O, scheduler
// shutdown).
func (r *Runner) Run(spec *Spec, storePath string) (*Summary, error) {
	logw := r.Log
	if logw == nil {
		logw = io.Discard
	}
	if storePath != "" {
		// The surface is rebuilt from scratch: a stale file would merge
		// with this run's blocks through AppendFile.
		if err := os.Remove(storePath); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("sweep: reset store: %w", err)
		}
		if err := os.MkdirAll(filepath.Dir(storePath), 0o755); err != nil {
			return nil, fmt.Errorf("sweep: store dir: %w", err)
		}
	}

	cells := spec.CachedCells()
	fmt.Fprintf(logw, "sweep: %s\n", spec)
	fmt.Fprintf(logw, "sweep: %d programs x %d configs, %d cacheless + %d cached cells each\n",
		spec.Programs(), len(spec.Configs), len(spec.Bus)*len(spec.Waits), len(cells))

	// Phase 1: generate and submit. Compiles run inline (they are the
	// content keys); simulations fan out across the scheduler's workers.
	ctx := context.Background()
	jobsList := make([]*job, 0, spec.Programs())
	for _, class := range spec.Classes {
		for i := 0; i < spec.Count; i++ {
			seed := spec.ProgramSeed(class, i)
			p, err := synth.Generate(class, seed)
			if err != nil {
				return nil, err
			}
			p.MaxInstrs = spec.MaxInstrs
			j := &job{prog: p, specs: spec.Configs, bench: &bench.Benchmark{
				Name:      p.Name,
				Desc:      fmt.Sprintf("synth corpus (%s, seed %#x)", p.Class, p.Seed),
				Source:    p.Source,
				MaxInstrs: p.MaxInstrs,
			}}
			jobsList = append(jobsList, j)
			for _, cfg := range spec.Configs {
				t, err := r.Lab.BusProfileTicket(ctx, j.bench, cfg, spec.Bus)
				if err != nil {
					j.stage, j.cfg, j.err = "compile", cfg.Name, err
					break
				}
				j.profile = append(j.profile, t)
			}
			if j.err != nil || len(cells) == 0 {
				continue
			}
			for _, cfg := range spec.Configs {
				t, err := r.Lab.AccountTicket(ctx, j.bench, cfg, cells)
				if err != nil {
					j.stage, j.cfg, j.err = "compile", cfg.Name, err
					break
				}
				j.account = append(j.account, t)
			}
		}
	}

	// Phase 2: drain in enumeration order, differentially compare, emit
	// points, flush fixed-size store blocks.
	sum := &Summary{Programs: len(jobsList)}
	var pending []store.Point
	flush := func() error {
		if storePath == "" || len(pending) == 0 {
			pending = pending[:0]
			return nil
		}
		if err := store.AppendFile(storePath, store.Canon(pending)); err != nil {
			return fmt.Errorf("sweep: append store: %w", err)
		}
		pending = pending[:0]
		return nil
	}
	for n, j := range jobsList {
		pts, err := r.drain(logw, spec, cells, j)
		if err != nil {
			sum.Failures = append(sum.Failures, r.report(logw, j))
			continue
		}
		sum.Passed++
		sum.Points += len(pts)
		pending = append(pending, pts...)
		if (n+1)%flushEvery == 0 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}

	fmt.Fprintf(logw, "sweep: %d/%d programs passed verify + static + differential, %d points\n",
		sum.Passed, sum.Programs, sum.Points)
	return sum, nil
}

// drain collects one program's tickets, runs the static-prefilter and
// differential checks and expands its grid points. A non-nil error
// means the program failed a gate; j.stage/j.cfg/j.err carry the
// details.
func (r *Runner) drain(logw io.Writer, spec *Spec, cells []core.AccountConfig, j *job) ([]store.Point, error) {
	if j.err != nil {
		return nil, j.err
	}
	ctx := context.Background()
	profiles := make([]*core.BusProfile, len(j.profile))
	for i, t := range j.profile {
		v, err := t.Wait(ctx)
		if err != nil {
			j.stage, j.cfg, j.err = "run", spec.Configs[i].Name, err
			return nil, err
		}
		profiles[i] = v.(*core.BusProfile)
	}
	if err := r.staticGate(logw, spec, j, profiles); err != nil {
		return nil, err
	}
	for i := 1; i < len(profiles); i++ {
		if profiles[i].Output != profiles[0].Output {
			j.stage, j.cfg = "differential", spec.Configs[i].Name
			j.err = fmt.Errorf("%s output differs from %s", spec.Configs[i].Name, spec.Configs[0].Name)
			return nil, j.err
		}
	}
	var pts []store.Point
	for i, p := range profiles {
		pts = append(pts, p.Points(spec.Waits)...)
		if len(cells) == 0 {
			continue
		}
		v, err := j.account[i].Wait(ctx)
		if err != nil {
			j.stage, j.cfg, j.err = "run", spec.Configs[i].Name, err
			return nil, err
		}
		run := v.(*core.AccountRun)
		c, err := r.Lab.Compile(j.bench, spec.Configs[i])
		if err != nil {
			j.stage, j.cfg, j.err = "compile", spec.Configs[i].Name, err
			return nil, err
		}
		for ei, ac := range cells {
			pts = append(pts, core.AccountPoint(j.bench.Name, spec.Configs[i].Name, c, run.Engines[ei], ac))
		}
	}
	return pts, nil
}

// staticGate runs the static cost/density analyzer over one program's
// images and cross-checks every observed execution against the analysis
// — the shortest halting path through the interprocedural CFG is a
// sound lower bound on any run's dynamic instruction count (and so on
// every closed-form grid cell's cycles). A violation means either the
// analyzer or the pipeline model is wrong, which is exactly what a
// sweep exists to surface; it fails the program at stage "static". The
// per-program line keeps the log deterministic: everything in it is a
// function of the program and config alone.
func (r *Runner) staticGate(logw io.Writer, spec *Spec, j *job, profiles []*core.BusProfile) error {
	for i, cfg := range spec.Configs {
		c, err := r.Lab.Compile(j.bench, cfg)
		if err != nil {
			j.stage, j.cfg, j.err = "compile", cfg.Name, err
			return err
		}
		rep, err := static.Analyze(c.Image, cfg)
		if err != nil {
			j.stage, j.cfg, j.err = "static", cfg.Name, err
			return err
		}
		img := rep.Image
		fmt.Fprintf(logw, "sweep: static %s %s text=%d instrs=%d min-instrs=%d fusible=%d\n",
			j.prog.Name, cfg.Name, img.TextBytes, img.Instrs, img.MinInstrs,
			img.FuseCmpBranch+img.FuseLdcJump)
		if got := profiles[i].Stats.Instrs; got < img.MinInstrs {
			j.stage, j.cfg = "static", cfg.Name
			j.err = fmt.Errorf("dynamic instruction count %d below static minimum path length %d", got, img.MinInstrs)
			return j.err
		}
	}
	return nil
}

// report logs one failing program (deterministically: class, seed,
// stage, error, one-line repro) and, when FailDir is set, minimizes the
// program and persists the artifact. The artifact path varies with the
// invocation, so it goes to Errw, keeping Log byte-identical.
func (r *Runner) report(logw io.Writer, j *job) Failure {
	f := Failure{
		Class: j.prog.Class,
		Seed:  j.prog.Seed,
		Name:  j.prog.Name,
		Stage: j.stage,
		Err:   j.err.Error(),
		Repro: fmt.Sprintf("repro -sweep 'classes=%s count=1 progseed=%d'", j.prog.Class, j.prog.Seed),
	}
	fmt.Fprintf(logw, "sweep: FAIL %s [%s on %s]: %s\n", f.Name, f.Stage, j.cfg, firstLine(f.Err))
	fmt.Fprintf(logw, "sweep:   repro: %s\n", f.Repro)
	if r.FailDir == "" {
		return f
	}
	min := synth.Minimize(j.prog, j.specs)
	if err := os.MkdirAll(r.FailDir, 0o755); err == nil {
		f.Path = filepath.Join(r.FailDir, f.Name+".mc")
		hdr := fmt.Sprintf("/* %s: %s on %s\n   %s\n   repro: %s */\n",
			f.Name, f.Stage, j.cfg, firstLine(f.Err), f.Repro)
		if err := os.WriteFile(f.Path, []byte(hdr+min.Source), 0o644); err != nil {
			f.Path = ""
		}
	}
	if f.Path != "" && r.Errw != nil {
		fmt.Fprintf(r.Errw, "[sweep: minimized source for %s written to %s]\n", f.Name, f.Path)
	}
	return f
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
