// Package sweep is the full-factorial design-space driver: it crosses
// workload class × ISA × bus width × wait states × cache size × miss
// penalty, generates a verified synthetic corpus for the workload axes
// (internal/synth), fans the grid through the jobs scheduler, and
// streams the resulting points into a deterministic .mcst surface that
// repro -query and perfgate -surface consume. docs/SWEEP.md documents
// the grammar and the guarantees.
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/synth"
)

// Spec is one parsed sweep specification: the workload corpus to
// generate and the hardware grid to cross it with.
type Spec struct {
	Classes []string // workload classes (subset of synth.Classes)
	Count   int      // programs per class
	Seed    uint64   // master seed; per-program seeds derive from (Seed, class, index)

	// ProgSeed, when set, bypasses derivation: program i of every class
	// uses generator seed ProgSeed+i. This is the repro path — the
	// failure artifact prints `count=1 progseed=<seed>` so one exact
	// program regenerates.
	ProgSeed    uint64
	HasProgSeed bool

	Configs     []*isa.Spec // compiler/ISA targets
	Bus         []uint32    // fetch/data bus widths in bytes (2, 4 or 8)
	Waits       []int64     // memory wait states (cacheless cells)
	CacheKB     []int64     // cache sizes in KiB; 0 = cacheless
	MissPenalty []int64     // miss penalties in cycles (cached cells)

	MaxInstrs int64 // per-program execution budget
}

// Defaults returns the specification an empty string parses to: every
// workload class, eight programs per class, both paper ISAs, the paper
// bus widths and wait-state range, cacheless.
func Defaults() *Spec {
	return &Spec{
		Classes:     synth.Classes(),
		Count:       8,
		Seed:        1,
		Configs:     []*isa.Spec{isa.D16(), isa.DLXe()},
		Bus:         []uint32{4, 8},
		Waits:       []int64{0, 1, 2, 3},
		CacheKB:     []int64{0},
		MissPenalty: []int64{8},
		MaxInstrs:   synth.DefaultMaxInstrs,
	}
}

// Parse reads the sweep grammar: whitespace-separated key=value terms,
// comma-separated value lists, lo-hi ranges for integer lists.
//
//	classes=loopy,callheavy count=50 seed=7 isa=d16,dlxe
//	bus=2,4 waits=0-3 cachekb=0,1,4,16 misspenalty=8
//
// Omitted keys keep the Defaults value.
func Parse(s string) (*Spec, error) {
	spec := Defaults()
	for _, term := range strings.Fields(s) {
		k, v, ok := strings.Cut(term, "=")
		if !ok || v == "" {
			return nil, fmt.Errorf("sweep: term %q is not key=value", term)
		}
		var err error
		switch k {
		case "classes", "class":
			spec.Classes = strings.Split(v, ",")
		case "count":
			spec.Count, err = strconv.Atoi(v)
		case "seed":
			spec.Seed, err = strconv.ParseUint(v, 0, 64)
		case "progseed":
			spec.ProgSeed, err = strconv.ParseUint(v, 0, 64)
			spec.HasProgSeed = true
		case "isa", "config", "configs":
			spec.Configs = spec.Configs[:0]
			for _, name := range strings.Split(v, ",") {
				cfg := core.ConfigByName(name)
				if cfg == nil {
					return nil, fmt.Errorf("sweep: unknown config %q", name)
				}
				spec.Configs = append(spec.Configs, cfg)
			}
		case "bus":
			var ws []int64
			if ws, err = intList(v); err == nil {
				spec.Bus = spec.Bus[:0]
				for _, w := range ws {
					spec.Bus = append(spec.Bus, uint32(w))
				}
			}
		case "waits":
			spec.Waits, err = intList(v)
		case "cachekb":
			spec.CacheKB, err = intList(v)
		case "misspenalty":
			spec.MissPenalty, err = intList(v)
		case "maxinstrs":
			spec.MaxInstrs, err = strconv.ParseInt(v, 0, 64)
		default:
			return nil, fmt.Errorf("sweep: unknown key %q (valid: classes count seed progseed isa bus waits cachekb misspenalty maxinstrs)", k)
		}
		if err != nil {
			return nil, fmt.Errorf("sweep: bad value in %q: %v", term, err)
		}
	}
	return spec, spec.validate()
}

// intList parses "0,2,5-7" into [0 2 5 6 7].
func intList(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		lo, hi, isRange := strings.Cut(part, "-")
		a, err := strconv.ParseInt(lo, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", lo)
		}
		b := a
		if isRange {
			if b, err = strconv.ParseInt(hi, 10, 64); err != nil {
				return nil, fmt.Errorf("%q is not an integer", hi)
			}
		}
		if b < a {
			return nil, fmt.Errorf("range %q is reversed", part)
		}
		if b-a > 64 {
			return nil, fmt.Errorf("range %q is too wide", part)
		}
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
	}
	return out, nil
}

func (s *Spec) validate() error {
	if len(s.Classes) == 0 || s.Count <= 0 {
		return fmt.Errorf("sweep: need at least one class and count >= 1")
	}
	valid := map[string]bool{}
	for _, c := range synth.Classes() {
		valid[c] = true
	}
	for _, c := range s.Classes {
		if !valid[c] {
			return fmt.Errorf("sweep: unknown class %q (valid: %s)", c, strings.Join(synth.Classes(), ","))
		}
	}
	if len(s.Configs) == 0 {
		return fmt.Errorf("sweep: need at least one config")
	}
	if len(s.Bus) == 0 {
		return fmt.Errorf("sweep: need at least one bus width")
	}
	for _, w := range s.Bus {
		if w != 2 && w != 4 && w != 8 {
			return fmt.Errorf("sweep: bus width %d (bytes) not in {2, 4, 8}", w)
		}
	}
	if len(s.Waits) == 0 {
		return fmt.Errorf("sweep: need at least one wait-state count")
	}
	for _, w := range s.Waits {
		if w < 0 || w > 64 {
			return fmt.Errorf("sweep: wait states %d out of range 0..64", w)
		}
	}
	for _, kb := range s.CacheKB {
		if kb != 0 && (kb < 1 || kb > 64 || kb&(kb-1) != 0) {
			return fmt.Errorf("sweep: cache size %d KB must be 0 or a power of two in 1..64", kb)
		}
	}
	for _, mp := range s.MissPenalty {
		if mp < 1 || mp > 256 {
			return fmt.Errorf("sweep: miss penalty %d out of range 1..256", mp)
		}
	}
	if s.MaxInstrs <= 0 {
		return fmt.Errorf("sweep: maxinstrs must be positive")
	}
	return nil
}

// Programs is the corpus size the spec enumerates.
func (s *Spec) Programs() int { return len(s.Classes) * s.Count }

// ProgramSeed is the generator seed of program index i in class.
func (s *Spec) ProgramSeed(class string, i int) uint32 {
	if s.HasProgSeed {
		return uint32(s.ProgSeed) + uint32(i)
	}
	return synth.DeriveSeed(s.Seed, class, i)
}

// CachedCells lists the cached-memory grid cells (bus × cache size ×
// miss penalty for every CacheKB > 0) as account configurations. For a
// cached cell the flat wait-state axis does not apply (hits are free,
// misses cost the penalty), so the point's wait-state column records
// the miss penalty — keeping the (bench, config, bus, waits, cachekb)
// point identity unique across the full factorial grid.
func (s *Spec) CachedCells() []core.AccountConfig {
	var out []core.AccountConfig
	for _, kb := range s.CacheKB {
		if kb == 0 {
			continue
		}
		for _, bus := range s.Bus {
			for _, mp := range s.MissPenalty {
				out = append(out, core.AccountConfig{
					BusBytes:    bus,
					WaitStates:  mp,
					CacheBytes:  uint32(kb) * 1024,
					MissPenalty: mp,
				})
			}
		}
	}
	return out
}

// String renders the spec back in canonical grammar form (used in the
// deterministic sweep header).
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "classes=%s count=%d", strings.Join(s.Classes, ","), s.Count)
	if s.HasProgSeed {
		fmt.Fprintf(&b, " progseed=%d", s.ProgSeed)
	} else {
		fmt.Fprintf(&b, " seed=%d", s.Seed)
	}
	names := make([]string, len(s.Configs))
	for i, c := range s.Configs {
		names[i] = c.Name
	}
	fmt.Fprintf(&b, " isa=%s bus=%s waits=%s cachekb=%s misspenalty=%s",
		strings.Join(names, ","), joinU32(s.Bus), joinI64(s.Waits),
		joinI64(s.CacheKB), joinI64(s.MissPenalty))
	return b.String()
}

func joinU32(vs []uint32) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatUint(uint64(v), 10)
	}
	return strings.Join(parts, ",")
}

func joinI64(vs []int64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ",")
}
