package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

func TestParseGrammar(t *testing.T) {
	s, err := Parse("classes=loopy,fp count=3 seed=9 isa=d16,dlxe bus=2,4 waits=0-2 cachekb=0,4 misspenalty=6,8")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(s.Classes, ","); got != "loopy,fp" {
		t.Errorf("classes = %q", got)
	}
	if s.Count != 3 || s.Seed != 9 {
		t.Errorf("count/seed = %d/%d", s.Count, s.Seed)
	}
	if len(s.Configs) != 2 || len(s.Bus) != 2 {
		t.Errorf("configs/bus = %d/%d", len(s.Configs), len(s.Bus))
	}
	if got := joinI64(s.Waits); got != "0,1,2" {
		t.Errorf("waits = %s", got)
	}
	if got := joinI64(s.CacheKB); got != "0,4" {
		t.Errorf("cachekb = %s", got)
	}
	// 1 cached size x 2 buses x 2 penalties.
	if got := len(s.CachedCells()); got != 4 {
		t.Errorf("cached cells = %d", got)
	}
	if s.Programs() != 6 {
		t.Errorf("programs = %d", s.Programs())
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"classes=nosuch",
		"count=0",
		"bus=3",
		"waits=5-2",
		"cachekb=3",
		"misspenalty=0",
		"frobnicate=1",
		"count",
		"isa=z80",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseEmptyIsDefaults(t *testing.T) {
	s, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	d := Defaults()
	if s.String() != d.String() {
		t.Errorf("Parse(\"\") = %s, want %s", s, d)
	}
}

func TestSpecStringRoundTrips(t *testing.T) {
	s, err := Parse("classes=array count=2 seed=3 cachekb=0,1")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s, err)
	}
	if back.String() != s.String() {
		t.Errorf("round trip %q -> %q", s, back)
	}
}

// A small sweep end to end: all programs pass, the store holds the full
// grid, the invariants hold, and a parallel lab reproduces the bytes.
func TestRunSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run in -short")
	}
	dir := t.TempDir()
	spec, err := Parse("classes=loopy,callheavy count=2 seed=7 waits=0-2 cachekb=0,1")
	if err != nil {
		t.Fatal(err)
	}

	run := func(lab *core.Lab, name string) ([]byte, *Summary) {
		var log bytes.Buffer
		path := filepath.Join(dir, name)
		r := &Runner{Lab: lab, Log: &log}
		sum, err := r.Run(spec, path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return append(log.Bytes(), data...), sum
	}

	seq, sum := run(core.NewLab(), "seq.mcst")
	if len(sum.Failures) != 0 {
		t.Fatalf("failures: %+v", sum.Failures)
	}
	if sum.Passed != 4 {
		t.Fatalf("passed = %d, want 4", sum.Passed)
	}
	// 4 programs x 2 configs x (2 bus x 3 waits cacheless + 2 bus x 1
	// penalty x 1 cached size).
	if want := 4 * 2 * (2*3 + 2); sum.Points != want {
		t.Fatalf("points = %d, want %d", sum.Points, want)
	}

	par, _ := run(core.NewParallelLab(8), "par.mcst")
	if !bytes.Equal(seq, par) {
		t.Fatal("sequential and parallel sweeps are not byte-identical")
	}

	pts, err := store.ReadFile(filepath.Join(dir, "seq.mcst"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != sum.Points {
		t.Fatalf("store holds %d points, summary says %d", len(pts), sum.Points)
	}
	for i := range pts {
		if err := pts[i].Validate(); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
}

// A sweep whose corpus cannot compile must report the failure with a
// repro line and persist a minimized artifact, and still exit cleanly.
func TestRunSweepFailureArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run in -short")
	}
	dir := t.TempDir()
	spec, err := Parse("classes=fp count=1 seed=3 waits=0 bus=4")
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: restrict the budget so every run dies mid-flight. This
	// exercises the same failure path a real miscompile would take.
	spec.MaxInstrs = 100

	var log bytes.Buffer
	r := &Runner{Lab: core.NewLab(), FailDir: filepath.Join(dir, "fails"), Log: &log}
	sum, err := r.Run(spec, filepath.Join(dir, "points.mcst"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Passed != 0 || len(sum.Failures) != 1 {
		t.Fatalf("passed=%d failures=%d, want 0/1", sum.Passed, len(sum.Failures))
	}
	f := sum.Failures[0]
	if !strings.Contains(f.Repro, "progseed=") || !strings.Contains(f.Repro, "classes=fp") {
		t.Errorf("repro line %q lacks seed/class", f.Repro)
	}
	if !strings.Contains(log.String(), "repro -sweep") {
		t.Errorf("log lacks the one-line repro:\n%s", log.String())
	}
	if f.Path == "" {
		t.Fatal("no artifact persisted")
	}
	src, err := os.ReadFile(f.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "int main()") {
		t.Error("artifact does not contain MC source")
	}
}
