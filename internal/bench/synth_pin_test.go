package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// The latex/ipl sources are generated, and the generator now lives in
// internal/synth (shared with the random corpus). These pins freeze the
// exact bytes the paper benchmarks are built from: any change to the
// shared emitter or its RNG that would alter them — and thereby every
// Section 4.1 cache figure — fails here instead of silently shifting
// results.
func TestSynthSourcesArePinned(t *testing.T) {
	cases := []struct {
		bench   *Benchmark
		wantLen int
		wantSum string
	}{
		{Latex(), 81580, "dd2c71e996fb614fa2cd416a7422cb7ecd6f82fca88537cbbc5b0fb08c7005aa"},
		{IPL(), 51449, "6cfd8ae8f6936cf9feb9811f560bea927d319fe98d65e0db7e186c3637609423"},
	}
	for _, c := range cases {
		if len(c.bench.Source) != c.wantLen {
			t.Errorf("%s: generated source is %d bytes, pinned at %d",
				c.bench.Name, len(c.bench.Source), c.wantLen)
		}
		sum := sha256.Sum256([]byte(c.bench.Source))
		if got := hex.EncodeToString(sum[:]); got != c.wantSum {
			t.Errorf("%s: generated source hash %s, pinned at %s",
				c.bench.Name, got, c.wantSum)
		}
	}
}
