package bench

import (
	"fmt"
	"strings"
)

// grepText generates a deterministic corpus for the grep benchmark.
func grepText() string {
	words := []string{
		"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
		"pack", "my", "box", "with", "five", "dozen", "liquor", "jugs",
		"sphinx", "of", "black", "quartz", "judge", "vow", "instruction",
		"register", "pipeline", "cache", "memory", "fetch", "decode",
		"density", "format", "sixteen", "thirty", "two", "bit",
	}
	var b strings.Builder
	seed := 12345
	for b.Len() < 6000 {
		seed = (seed*1103515 + 12345) & 0x7FFFFFFF
		b.WriteString(words[seed%len(words)])
		if seed%7 == 0 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// Grep searches a corpus for several patterns, like the BSD utility's
// inner loop (byte loads, compare-heavy inner loops).
func Grep() *Benchmark {
	text := grepText()
	src := fmt.Sprintf(`
char text[%d] = %s;
char pat0[12] = "instruction";
char pat1[9] = "pipeline";
char pat2[6] = "cache";
char pat3[8] = "quartz";

int matches(char *t, int n, char *p) {
	int count = 0;
	int plen = 0;
	while (p[plen]) plen++;
	int i;
	for (i = 0; i + plen <= n; i++) {
		int j = 0;
		while (j < plen && t[i + j] == p[j]) j++;
		if (j == plen) count++;
	}
	return count;
}

int main() {
	int n = 0;
	while (text[n]) n++;
	print_str("len=");
	print_int(n);
	print_str(" m0=");
	print_int(matches(text, n, pat0));
	print_str(" m1=");
	print_int(matches(text, n, pat1));
	print_str(" m2=");
	print_int(matches(text, n, pat2));
	print_str(" m3=");
	print_int(matches(text, n, pat3));
	print_char('\n');
	return 0;
}
`, len(text)+1, quoteMC(text))
	return &Benchmark{
		Name:      "grep",
		Desc:      "The Unix utility from the BSD sources (pattern search).",
		MaxInstrs: 50_000_000,
		Source:    src,
	}
}

// quoteMC renders a Go string as an MC string literal.
func quoteMC(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// assemInput is the toy assembly program the assem benchmark assembles.
func assemInput() string {
	var b strings.Builder
	seed := 99
	ops := []string{"add", "sub", "and", "or", "xor", "shl", "shr", "ld", "st", "mvi"}
	for i := 0; i < 260; i++ {
		seed = (seed*2531011 + 13849) & 0x7FFFFFFF
		if i%13 == 0 {
			fmt.Fprintf(&b, "L%d:\n", i/13)
		}
		if i%29 == 0 {
			fmt.Fprintf(&b, ".word %d\n", seed%10000)
		}
		if i%41 == 0 {
			fmt.Fprintf(&b, ".space %d\n", seed%4+1)
		}
		op := ops[seed%len(ops)]
		switch op {
		case "ld", "st":
			fmt.Fprintf(&b, "%s r%d r%d %d+%d\n", op, seed%8, (seed/8)%8, seed%32, seed%16)
		case "mvi":
			fmt.Fprintf(&b, "mvi r%d %d\n", seed%8, seed%256)
		default:
			fmt.Fprintf(&b, "%s r%d r%d r%d\n", op, seed%8, (seed/8)%8, (seed/64)%8)
		}
		if seed%17 == 0 {
			fmt.Fprintf(&b, "br L%d\n", seed%(i/13+1))
		}
	}
	return b.String()
}

// Assem is a real two-pass assembler for a toy ISA, written in MC: it
// tokenizes, builds a symbol table, resolves branches and encodes 32-bit
// words. String/table processing with realistic branchy code — one of the
// paper's cache benchmarks.
func Assem() *Benchmark {
	input := assemInput()
	src := fmt.Sprintf(`
char input[%d] = %s;

char labname[128];  /* 32 labels x 4 chars */
int labaddr[32];
int nlabels;

int outwords[600];
int nout;

int pos;

int opnames[10];    /* packed 2-char opcode keys */

int isspace_(int c) { return c == ' ' || c == '\t' || c == '\r'; }
int isdigit_(int c) { return c >= '0' && c <= '9'; }
int isalpha_(int c) { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'); }

/* read one token into tok[], return its length (0 = end of line/file) */
char tok[16];
int readtok() {
	while (isspace_(input[pos])) pos++;
	int n = 0;
	while (input[pos] && input[pos] != '\n' && !isspace_(input[pos]) && n < 15) {
		tok[n++] = input[pos++];
	}
	tok[n] = 0;
	return n;
}

int atline;
int nextline() {
	while (input[pos] && input[pos] != '\n') pos++;
	if (input[pos] == '\n') { pos++; atline++; return 1; }
	return 0;
}

int tokeq(char *s) {
	int i = 0;
	while (tok[i] && s[i] && tok[i] == s[i]) i++;
	return tok[i] == 0 && s[i] == 0;
}

/* numeric expression operand: N, N+N or N-N packed into one token */
int toknum() {
	int v = 0, i = 0;
	while (isdigit_(tok[i])) { v = v * 10 + (tok[i] - '0'); i++; }
	while (tok[i] == '+' || tok[i] == '-') {
		int negp = tok[i] == '-';
		i++;
		int w = 0;
		while (isdigit_(tok[i])) { w = w * 10 + (tok[i] - '0'); i++; }
		if (negp) v -= w; else v += w;
	}
	return v;
}

int tokreg() { return tok[1] - '0'; }

int labfind() {
	int i, j;
	for (i = 0; i < nlabels; i++) {
		j = 0;
		while (j < 3 && labname[i * 4 + j] == tok[j] && tok[j]) j++;
		if (tok[j] == 0 && (j == 3 || labname[i * 4 + j] == 0)) return i;
	}
	return -1;
}

int labdef(int addr) {
	int i = labfind();
	if (i < 0) {
		i = nlabels++;
		int j = 0;
		while (j < 3 && tok[j]) { labname[i * 4 + j] = tok[j]; j++; }
		labname[i * 4 + j] = 0;
		labaddr[i] = -1;
	}
	if (addr >= 0) labaddr[i] = addr;
	return i;
}

int opcode() {
	if (tokeq("add")) return 0;
	if (tokeq("sub")) return 1;
	if (tokeq("and")) return 2;
	if (tokeq("or"))  return 3;
	if (tokeq("xor")) return 4;
	if (tokeq("shl")) return 5;
	if (tokeq("shr")) return 6;
	if (tokeq("ld"))  return 7;
	if (tokeq("st"))  return 8;
	if (tokeq("mvi")) return 9;
	if (tokeq("br"))  return 10;
	if (tokeq(".word"))  return 11;
	if (tokeq(".space")) return 12;
	return -1;
}

/* one pass; emit = 0 only collects labels */
int runpass(int emit) {
	pos = 0;
	atline = 0;
	int addr = 0;
	int more = 1;
	while (more) {
		int n = readtok();
		if (n == 0) { more = nextline(); continue; }
		if (tok[n - 1] == ':') {
			tok[n - 1] = 0;
			labdef(addr);
			n = readtok();
			if (n == 0) { more = nextline(); continue; }
		}
		int op = opcode();
		int word = op << 24;
		if (op < 0) { more = nextline(); continue; }
		if (op == 11) {          /* .word n */
			readtok();
			if (emit) outwords[nout++] = toknum();
			addr++;
			more = nextline();
			continue;
		}
		if (op == 12) {          /* .space n -> n zero words */
			readtok();
			int sp_ = toknum();
			while (sp_ > 0) {
				if (emit) outwords[nout++] = 0;
				addr++;
				sp_--;
			}
			more = nextline();
			continue;
		}
		if (op == 10) {          /* br label */
			readtok();
			int li = labdef(-1);
			int target = 0;
			if (emit) target = labaddr[li];
			word += target - addr;
		} else if (op == 9) {    /* mvi r, imm */
			readtok();
			word += tokreg() << 16;
			readtok();
			word += toknum();
		} else if (op >= 7) {    /* ld/st r, r, disp */
			readtok(); word += tokreg() << 16;
			readtok(); word += tokreg() << 12;
			readtok(); word += toknum();
		} else {                 /* alu r, r, r */
			readtok(); word += tokreg() << 16;
			readtok(); word += tokreg() << 12;
			readtok(); word += tokreg() << 8;
		}
		if (emit) outwords[nout++] = word;
		addr++;
		more = nextline();
	}
	return addr;
}

/* --- listing generator: disassemble the output words back to text --- */

char lst[32];
int lstn;

int emitch(int c) { lst[lstn++] = c; return 0; }

int emitdec(int v) {
	if (v < 0) { emitch('-'); v = -v; }
	char digs[12];
	int n = 0;
	if (v == 0) { emitch('0'); return 0; }
	while (v > 0) { digs[n++] = '0' + v %% 10; v = v / 10; }
	while (n > 0) { n--; emitch(digs[n]); }
	return 0;
}

int emitstr(char *s) {
	int i = 0;
	while (s[i]) emitch(s[i++]);
	return 0;
}

int emitreg(int r) { emitch('r'); emitdec(r); return 0; }

char opn0[4] = "add";
char opn1[4] = "sub";
char opn2[4] = "and";
char opn3[3] = "or";
char opn4[4] = "xor";
char opn5[4] = "shl";
char opn6[4] = "shr";
char opn7[3] = "ld";
char opn8[3] = "st";
char opn9[4] = "mvi";
char opn10[3] = "br";

int opname(int op) {
	if (op == 0) emitstr(opn0);
	else if (op == 1) emitstr(opn1);
	else if (op == 2) emitstr(opn2);
	else if (op == 3) emitstr(opn3);
	else if (op == 4) emitstr(opn4);
	else if (op == 5) emitstr(opn5);
	else if (op == 6) emitstr(opn6);
	else if (op == 7) emitstr(opn7);
	else if (op == 8) emitstr(opn8);
	else if (op == 9) emitstr(opn9);
	else emitstr(opn10);
	return 0;
}

/* disassemble every word; fold the listing text into a checksum */
int listing() {
	int sum = 0, i, j;
	for (i = 0; i < nout; i++) {
		int w = outwords[i];
		lstn = 0;
		int op = (w >> 24) & 255;
		if (op > 10) { emitstr(".w "); emitdec(w); }
		else {
			opname(op);
			emitch(' ');
			emitreg((w >> 16) & 15);
			emitch(' ');
			if (op == 10) emitdec(w & 0xFFFF);
			else if (op == 9) emitdec(w & 0xFFFF);
			else {
				emitreg((w >> 12) & 15);
				emitch(' ');
				if (op >= 7) emitdec(w & 0xFFF);
				else emitreg((w >> 8) & 15);
			}
		}
		for (j = 0; j < lstn; j++) sum = sum * 31 + lst[j];
		sum = sum & 0xFFFFFF;
	}
	return sum;
}

/* --- symbol cross reference: count textual references per label --- */

int xref() {
	int total = 0, i;
	for (i = 0; i < nlabels; i++) {
		int p = 0;
		while (input[p]) {
			/* match labname[i*4..] at p */
			int j = 0;
			while (j < 3 && labname[i * 4 + j] && input[p + j] == labname[i * 4 + j]) j++;
			if ((j == 3 || labname[i * 4 + j] == 0) && j > 0) total++;
			p++;
		}
	}
	return total;
}

int main() {
	nlabels = 0;
	nout = 0;
	int n1 = runpass(0);
	int n2 = runpass(1);
	int sum = 0, i;
	for (i = 0; i < nout; i++) {
		sum = sum ^ outwords[i];
		sum = sum + (outwords[i] >> 16);
	}
	print_str("instrs=");
	print_int(n2);
	print_str(" labels=");
	print_int(nlabels);
	print_str(" check=");
	print_int(sum);
	print_str(" lst=");
	print_int(listing());
	print_str(" xref=");
	print_int(xref());
	print_char('\n');
	return (n1 != n2);
}
`, len(input)+1, quoteMC(input))
	return &Benchmark{
		Name:       "assem",
		Desc:       "The D16 assembler (a real two-pass assembler for a toy ISA).",
		MaxInstrs:  50_000_000,
		CacheBench: true,
		Source:     src,
	}
}
