package bench

// The Stanford-suite style programs: ackermann, bubblesort, queens,
// quicksort, towers.

// Ackermann computes the Ackermann function (heavily recursive integer
// control flow; the paper's smallest program).
func Ackermann() *Benchmark {
	return &Benchmark{
		Name:      "ackermann",
		Desc:      "Computes the Ackermann function.",
		Expect:    "ack(2,3)=9 ack(3,3)=61 ack(2,8)=19\n",
		MaxInstrs: 10_000_000,
		Source: `
int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}

int main() {
	print_str("ack(2,3)=");
	print_int(ack(2, 3));
	print_str(" ack(3,3)=");
	print_int(ack(3, 3));
	print_str(" ack(2,8)=");
	print_int(ack(2, 8));
	print_char('\n');
	return 0;
}
`,
	}
}

// Bubblesort sorts pseudo-random integers (the Stanford suite's sort).
func Bubblesort() *Benchmark {
	return &Benchmark{
		Name:      "bubblesort",
		Desc:      "Sorting program from the Stanford suite.",
		Expect:    "sorted=1 sum=3155944 first=26 last=16352\n",
		MaxInstrs: 100_000_000,
		Source: `
int a[400];
int seed;

int rnd() {
	seed = seed * 1309 + 13849;
	if (seed < 0) seed = -seed;
	return seed % 16384;
}

int main() {
	int n = 400, i, j;
	seed = 74755;
	for (i = 0; i < n; i++) a[i] = rnd();
	for (i = 0; i < n - 1; i++)
		for (j = 0; j < n - 1 - i; j++)
			if (a[j] > a[j + 1]) {
				int t = a[j];
				a[j] = a[j + 1];
				a[j + 1] = t;
			}
	int ok = 1, sum = 0;
	for (i = 0; i < n; i++) {
		if (i > 0 && a[i - 1] > a[i]) ok = 0;
		sum += a[i];
	}
	print_str("sorted=");
	print_int(ok);
	print_str(" sum=");
	print_int(sum);
	print_str(" first=");
	print_int(a[0]);
	print_str(" last=");
	print_int(a[n - 1]);
	print_char('\n');
	return 0;
}
`,
	}
}

// Queens solves the Stanford eight-queens problem (backtracking).
func Queens() *Benchmark {
	return &Benchmark{
		Name:      "queens",
		Desc:      "The Stanford eight-queens program.",
		Expect:    "solutions=92\n",
		MaxInstrs: 20_000_000,
		Source: `
int col[8];
int diag1[15];
int diag2[15];
int count;

int place(int row) {
	int c;
	for (c = 0; c < 8; c++) {
		if (col[c] == 0 && diag1[row + c] == 0 && diag2[row - c + 7] == 0) {
			col[c] = 1;
			diag1[row + c] = 1;
			diag2[row - c + 7] = 1;
			if (row == 7) count++;
			else place(row + 1);
			col[c] = 0;
			diag1[row + c] = 0;
			diag2[row - c + 7] = 0;
		}
	}
	return 0;
}

int main() {
	count = 0;
	place(0);
	print_str("solutions=");
	print_int(count);
	print_char('\n');
	return 0;
}
`,
	}
}

// Quicksort is the Stanford recursive quicksort.
func Quicksort() *Benchmark {
	return &Benchmark{
		Name:      "quicksort",
		Desc:      "The Stanford quicksort program.",
		Expect:    "sorted=1 sum=8078166 median=7750\n",
		MaxInstrs: 50_000_000,
		Source: `
int a[1000];
int seed;

int rnd() {
	seed = seed * 1309 + 13849;
	if (seed < 0) seed = -seed;
	return seed % 16384;
}

int qsort_(int lo, int hi) {
	int i = lo, j = hi;
	int pivot = a[(lo + hi) / 2];
	while (i <= j) {
		while (a[i] < pivot) i++;
		while (a[j] > pivot) j--;
		if (i <= j) {
			int t = a[i]; a[i] = a[j]; a[j] = t;
			i++; j--;
		}
	}
	if (lo < j) qsort_(lo, j);
	if (i < hi) qsort_(i, hi);
	return 0;
}

int main() {
	int n = 1000, i;
	seed = 74755;
	for (i = 0; i < n; i++) a[i] = rnd();
	qsort_(0, n - 1);
	int ok = 1, sum = 0;
	for (i = 0; i < n; i++) {
		if (i > 0 && a[i - 1] > a[i]) ok = 0;
		sum += a[i];
	}
	print_str("sorted=");
	print_int(ok);
	print_str(" sum=");
	print_int(sum);
	print_str(" median=");
	print_int(a[n / 2]);
	print_char('\n');
	return 0;
}
`,
	}
}

// Towers is the towers-of-Hanoi program.
func Towers() *Benchmark {
	return &Benchmark{
		Name:      "towers",
		Desc:      "The Stanford towers of Hanoi program.",
		Expect:    "moves=65535 check=3\n",
		MaxInstrs: 100_000_000,
		Source: `
int moves;
int peg[3];

int hanoi(int n, int from, int to, int via) {
	if (n == 0) return 0;
	hanoi(n - 1, from, via, to);
	peg[from]--;
	peg[to]++;
	moves++;
	hanoi(n - 1, via, to, from);
	return 0;
}

int main() {
	int n = 16;
	moves = 0;
	peg[0] = n; peg[1] = 0; peg[2] = 0;
	hanoi(n, 0, 2, 1);
	print_str("moves=");
	print_int(moves);
	print_str(" check=");
	print_int((peg[2] == n) + (peg[0] == 0) + (peg[1] == 0));
	print_char('\n');
	return 0;
}
`,
	}
}
