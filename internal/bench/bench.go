// Package bench provides the paper's benchmark suite (Table 2),
// re-written in MC and scaled to simulator-friendly problem sizes.
//
// Every program prints a deterministic checksum, so one expected output
// validates all five compiler configurations; the three "cache
// benchmarks" (assem, ipl, latex) are the programs the paper's Section
// 4.1 uses for its cache studies, with instruction working sets large
// enough to exercise 1–16 KiB instruction caches.
package bench

// Benchmark is one suite program.
type Benchmark struct {
	Name string
	// Desc matches the paper's Table 2 description.
	Desc string
	// Source is the MC program text.
	Source string
	// Expect is the exact simulator output (empty = only cross-config
	// agreement is checked).
	Expect string
	// MaxInstrs bounds the run (runaway guard).
	MaxInstrs int64
	// CacheBench marks the programs used for the cache experiments.
	CacheBench bool
	// FP marks floating-point-dominated programs.
	FP bool
}

// All returns the full suite in the paper's Table 2 order.
func All() []*Benchmark {
	return []*Benchmark{
		Ackermann(),
		Assem(),
		Bubblesort(),
		Queens(),
		Quicksort(),
		Towers(),
		Grep(),
		Linpack(),
		Matrix(),
		Dhrystone(),
		Pi(),
		Solver(),
		Latex(),
		IPL(),
		Whetstone(),
	}
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// CacheBenchmarks returns the three programs the paper's cache studies
// use (assem, ipl, latex).
func CacheBenchmarks() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.CacheBench {
			out = append(out, b)
		}
	}
	return out
}
