package bench

// Dhrystone recreates the synthetic integer benchmark's mix: record-ish
// assignment (via parallel arrays, since MC has no structs — see
// DESIGN.md), string copy/compare on 30-char buffers, enumerations,
// nested function calls and global/local integer arithmetic, iterated a
// fixed number of times.
func Dhrystone() *Benchmark {
	return &Benchmark{
		Name:      "dhrystone",
		Desc:      "The synthetic benchmark.",
		MaxInstrs: 100_000_000,
		Source: `
/* "records" as parallel arrays: [0] and [1] are the two live records */
int rec_discr[4];
int rec_enum[4];
int rec_int[4];
char rec_str[124];   /* 4 x 31 */

int int_glob;
int bool_glob;
char ch1_glob, ch2_glob;
int arr1[50];
int arr2[2500];      /* 50 x 50 */

char str1[31] = "DHRYSTONE PROGRAM, 1'ST STRING";
char str2[31] = "DHRYSTONE PROGRAM, 2'ND STRING";
char str3[31] = "DHRYSTONE PROGRAM, 3'RD STRING";

int strcpy_(char *dst, char *src) {
	int i = 0;
	while (src[i]) { dst[i] = src[i]; i++; }
	dst[i] = 0;
	return i;
}

int strcmp_(char *a, char *b) {
	int i = 0;
	while (a[i] && a[i] == b[i]) i++;
	return a[i] - b[i];
}

int func1(int ch1, int ch2) {
	int ch1_loc = ch1;
	int ch2_loc = ch1_loc;
	if (ch2_loc != ch2) return 0;
	ch2_glob = ch1_loc;
	return 1;
}

int func2(char *s1, char *s2) {
	int int_loc = 2;
	int ch_loc = 'A';
	while (int_loc <= 2) {
		if (func1(s1[int_loc], s2[int_loc + 1]) == 0) {
			ch_loc = 'A';
			int_loc += 1;
		} else break;
	}
	if (ch_loc >= 'W' && ch_loc < 'Z') int_loc = 7;
	if (ch_loc == 'R') return 1;
	if (strcmp_(s1, s2) > 0) {
		int_loc += 7;
		int_glob = int_loc;
		return 1;
	}
	return 0;
}

int func3(int e) { return e == 2; }

int proc6(int e_in) {
	int e_out = e_in;
	if (!func3(e_in)) e_out = 3;
	if (e_in == 0) e_out = 0;
	else if (e_in == 1) { if (int_glob > 100) e_out = 0; else e_out = 3; }
	else if (e_in == 2) e_out = 1;
	else if (e_in == 4) e_out = 2;
	return e_out;
}

int proc7(int a, int b) { return b + a + 2; }

int proc8(int *a1, int *a2, int idx, int val) {
	int loc = idx + 5;
	a1[loc] = val;
	a1[loc + 1] = a1[loc];
	a1[loc + 30] = loc;
	int i;
	for (i = loc; i <= loc + 1; i++) a2[loc * 50 + i] = loc;
	a2[loc * 50 + loc - 1] += 1;
	a2[(loc + 20) * 50 + loc] = a1[loc];
	int_glob = 5;
	return 0;
}

int proc3(int recid) {
	if (rec_discr[0] == 0) rec_int[recid] = proc7(10, int_glob);
	return 0;
}

int proc1(int recid) {
	/* copy record recid -> 2 (the "next record") */
	rec_discr[2] = rec_discr[recid];
	rec_enum[2] = rec_enum[recid];
	rec_int[2] = rec_int[recid];
	strcpy_(&rec_str[62], &rec_str[recid * 31]);
	rec_int[2] = 5;
	proc3(2);
	if (rec_discr[2] == 0) {
		rec_int[2] = 6;
		rec_enum[2] = proc6(rec_enum[recid]);
		rec_int[2] = proc7(rec_int[2], 10);
	} else {
		rec_discr[recid] = rec_discr[2];
	}
	return 0;
}

int proc2(int int_io) {
	int int_loc = int_io + 10;
	int enum_loc = 0;
	while (1) {
		if (ch1_glob == 'A') {
			int_loc -= 1;
			int_io = int_loc - int_glob;
			enum_loc = 1;
		}
		if (enum_loc == 1) break;
	}
	return int_io;
}

int proc4() {
	int bool_loc = ch1_glob == 'A';
	bool_loc = bool_loc | bool_glob;
	ch2_glob = 'B';
	return 0;
}

int proc5() {
	ch1_glob = 'A';
	bool_glob = 0;
	return 0;
}

int main() {
	int runs = 1500;
	int i, run;
	int int1, int2, int3;
	char strloc[31];

	/* init */
	rec_discr[0] = 0; rec_enum[0] = 2; rec_int[0] = 40;
	strcpy_(&rec_str[0], str1);
	rec_discr[1] = 0; rec_enum[1] = 1; rec_int[1] = 30;
	strcpy_(&rec_str[31], str2);
	arr2[8 * 50 + 7] = 10;

	for (run = 1; run <= runs; run++) {
		proc5();
		proc4();
		int1 = 2;
		int2 = 3;
		strcpy_(strloc, str3);
		int3 = 0;
		if (func2(str1, strloc) == 0) int3 = proc7(int1, int2);
		proc8(arr1, arr2, int1, int3);
		proc1(0);
		for (i = 'A'; i <= 'C'; i++) {
			if (rec_enum[1] == func1(i, 'C')) {
				int2 = proc6(0);
			}
		}
		int3 = int2 * int1;
		int2 = int3 / 3;
		int2 = 7 * (int3 - int2) - int1;
		int1 = proc2(int1);
	}

	print_str("ig=");
	print_int(int_glob);
	print_str(" i1=");
	print_int(int1);
	print_str(" i2=");
	print_int(int2);
	print_str(" i3=");
	print_int(int3);
	print_str(" ri2=");
	print_int(rec_int[2]);
	print_str(" c1=");
	print_char(ch1_glob);
	print_char('\n');
	return 0;
}
`,
	}
}
