package bench

import "repro/internal/synth"

// The two large cache benchmarks. The paper uses TeX and a PostScript
// plotting package (ipl): hundreds of kilobytes of text with phase-like
// locality. Their sources are not reproducible in MC, so these are
// generated programs with the property that matters for the Section 4.1
// experiments: an instruction working set much larger than the 1–16 KiB
// caches, touched in phases (groups of procedures iterated a few times,
// with shared utility routines churning the cache between phases).
// DESIGN.md documents this substitution.
//
// The emitter lives in internal/synth (EmitPhased), shared with the
// random-program corpus; the generated source for latex and ipl is
// byte-pinned by a regression test so the paper benchmarks can never
// drift under generator changes.

// Latex is the TeX-like large-program benchmark.
func Latex() *Benchmark {
	return &Benchmark{
		Name:       "latex",
		Desc:       "The typesetter (generated large-program stand-in).",
		MaxInstrs:  400_000_000,
		CacheBench: true,
		Source: synth.EmitPhased(synth.PhasedParams{
			Name:   "latex",
			Funcs:  480,
			Groups: 12,
			Reps:   2,
			Iters:  8,
		}),
	}
}

// IPL is the PostScript-plotting-like large-program benchmark.
func IPL() *Benchmark {
	return &Benchmark{
		Name:       "ipl",
		Desc:       "PostScript plotting package (generated large-program stand-in).",
		MaxInstrs:  400_000_000,
		CacheBench: true,
		Source: synth.EmitPhased(synth.PhasedParams{
			Name:   "ipl",
			Funcs:  300,
			Groups: 6,
			Reps:   3,
			Iters:  8,
		}),
	}
}
