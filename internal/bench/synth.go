package bench

import (
	"fmt"
	"strings"
)

// The two large cache benchmarks. The paper uses TeX and a PostScript
// plotting package (ipl): hundreds of kilobytes of text with phase-like
// locality. Their sources are not reproducible in MC, so these are
// generated programs with the property that matters for the Section 4.1
// experiments: an instruction working set much larger than the 1–16 KiB
// caches, touched in phases (groups of procedures iterated a few times,
// with shared utility routines churning the cache between phases).
// DESIGN.md documents this substitution.

type synthParams struct {
	name   string
	desc   string
	funcs  int // total generated leaf functions
	groups int // phases
	reps   int // repetitions of each phase per outer iteration
	iters  int // outer iterations
}

// Latex is the TeX-like large-program benchmark.
func Latex() *Benchmark {
	return genSynth(synthParams{
		name:   "latex",
		desc:   "The typesetter (generated large-program stand-in).",
		funcs:  480,
		groups: 12,
		reps:   2,
		iters:  8,
	})
}

// IPL is the PostScript-plotting-like large-program benchmark.
func IPL() *Benchmark {
	return genSynth(synthParams{
		name:   "ipl",
		desc:   "PostScript plotting package (generated large-program stand-in).",
		funcs:  300,
		groups: 6,
		reps:   3,
		iters:  8,
	})
}

// genSynth builds one synthetic large program.
func genSynth(p synthParams) *Benchmark {
	var b strings.Builder
	seed := uint32(0x9E3779B9) ^ uint32(len(p.name)*2654435761)
	rnd := func(n int) int {
		seed = seed*1664525 + 1013904223
		return int(seed>>8) % n
	}

	fmt.Fprintf(&b, "int state[64];\nint acc;\nint fixsin[16] = {0, 98, 195, 290, 382, 471, 556, 634, 707, 773, 831, 881, 924, 957, 981, 995};\n\n")

	// Shared utility routines (called from every phase; they keep a hot
	// core resident like a real program's allocator/IO layer).
	b.WriteString(`
int util_hash(int x) {
	x = x ^ (x >> 7);
	x = x + (x << 3);
	x = x ^ (x >> 11);
	return x;
}

int util_clamp(int x, int lo, int hi) {
	if (x < lo) return lo;
	if (x > hi) return hi;
	return x;
}

int util_fixmul(int a, int b) {
	/* 16.16-ish fixed point via shifts (PostScript-style geometry) */
	return (a >> 8) * (b >> 8);
}

int util_sin(int deg) {
	int d = deg % 60;
	if (d < 0) d = d + 60;
	if (d < 16) return fixsin[d];
	if (d < 30) return fixsin[30 - d];
	if (d < 46) return -fixsin[d - 30];
	return -fixsin[60 - d];
}
`)

	// Leaf functions: each reads/writes a couple of state slots with a
	// distinct operation mix.
	for i := 0; i < p.funcs; i++ {
		s1, s2, s3 := rnd(64), rnd(64), rnd(64)
		c1, c2 := rnd(29)+1, rnd(13)+1
		fmt.Fprintf(&b, "int fn%d(int x) {\n", i)
		fmt.Fprintf(&b, "\tint a = state[%d] + x;\n", s1)
		switch rnd(5) {
		case 0:
			fmt.Fprintf(&b, "\tint i;\n\tfor (i = 0; i < %d; i++) a += state[(a + i) & 63];\n", rnd(4)+2)
			fmt.Fprintf(&b, "\ta = util_hash(a + %d);\n", c1)
		case 1:
			fmt.Fprintf(&b, "\tif (a > state[%d]) a -= %d; else a += %d;\n", s2, c1, c2)
			fmt.Fprintf(&b, "\ta = util_clamp(a, -%d, %d);\n", c1*1000, c2*1000)
		case 2:
			fmt.Fprintf(&b, "\ta = util_fixmul(a + %d, state[%d] + %d);\n", c1, s2, c2)
			fmt.Fprintf(&b, "\ta += util_sin(a & 63);\n")
		case 3:
			fmt.Fprintf(&b, "\ta = (a << %d) ^ (a >> %d);\n", rnd(5)+1, rnd(5)+1)
			fmt.Fprintf(&b, "\ta += state[%d] & %d;\n", s2, c1*c2)
		default:
			fmt.Fprintf(&b, "\tint t = state[%d] - state[%d];\n", s2, s3)
			fmt.Fprintf(&b, "\tif (t < 0) t = -t;\n\ta += t %% %d;\n", c1+3)
		}
		fmt.Fprintf(&b, "\tstate[%d] = a;\n\treturn a & 0xFFFF;\n}\n\n", s3)
	}

	// Group drivers: each phase touches its slice of the leaf functions.
	per := p.funcs / p.groups
	for g := 0; g < p.groups; g++ {
		fmt.Fprintf(&b, "int group%d(int x) {\n\tint s = x;\n", g)
		fmt.Fprintf(&b, "\tint r;\n\tfor (r = 0; r < %d; r++) {\n", p.reps)
		for i := g * per; i < (g+1)*per; i++ {
			fmt.Fprintf(&b, "\t\ts += fn%d(s);\n", i)
		}
		fmt.Fprintf(&b, "\t}\n\treturn s;\n}\n\n")
	}

	fmt.Fprintf(&b, "int main() {\n\tint i;\n\tfor (i = 0; i < 64; i++) state[i] = i * 37 + 11;\n\tacc = 1;\n")
	fmt.Fprintf(&b, "\tint it;\n\tfor (it = 0; it < %d; it++) {\n", p.iters)
	for g := 0; g < p.groups; g++ {
		fmt.Fprintf(&b, "\t\tacc += group%d(acc + %d);\n", g, g)
	}
	fmt.Fprintf(&b, "\t\tacc = util_hash(acc) & 0xFFFFF;\n\t}\n")
	b.WriteString("\tprint_str(\"acc=\");\n\tprint_int(acc);\n\tint chk = 0;\n\tfor (i = 0; i < 64; i++) chk ^= state[i];\n\tprint_str(\" chk=\");\n\tprint_int(chk);\n\tprint_char('\\n');\n\treturn 0;\n}\n")

	return &Benchmark{
		Name:       p.name,
		Desc:       p.desc,
		MaxInstrs:  400_000_000,
		CacheBench: true,
		Source:     b.String(),
	}
}
