package bench

// The numeric benchmarks: linpack, matrix, pi, solver, whetstone.

// Linpack is a scaled LU factorization with partial pivoting plus a
// residual check — the structure of the linear programming / linpack
// benchmark (daxpy-dominated double-precision inner loops).
func Linpack() *Benchmark {
	return &Benchmark{
		Name:      "linpack",
		Desc:      "The linear programming benchmark (LU factorization, daxpy kernels).",
		MaxInstrs: 400_000_000,
		FP:        true,
		Source: `
double a[1600];    /* 40 x 40, column major: a(i,j) = a[j*40 + i] */
double b[40];
double x[40];
int piv[40];
int n;

int seed;
int rnd() {
	seed = seed * 1309 + 13849;
	if (seed < 0) seed = -seed;
	return seed % 1000;
}

/* dy[0..m) += da * dx[0..m) — the daxpy kernel, linpack's hot loop */
int daxpy(int m, double da, double *dx, double *dy) {
	int i;
	if (da == 0.0) return 0;
	for (i = 0; i < m; i++) dy[i] += da * dx[i];
	return 0;
}

int idamax(int m, double *dx) {
	int i, best = 0;
	double dmax = dx[0];
	if (dmax < 0.0) dmax = -dmax;
	for (i = 1; i < m; i++) {
		double v = dx[i];
		if (v < 0.0) v = -v;
		if (v > dmax) { dmax = v; best = i; }
	}
	return best;
}

int matgen() {
	int i, j;
	for (j = 0; j < n; j++)
		for (i = 0; i < n; i++) {
			a[j * 40 + i] = rnd();
			a[j * 40 + i] = a[j * 40 + i] / 1000.0 - 0.5;
		}
	/* b = A * ones, so the solution is all ones */
	for (i = 0; i < n; i++) b[i] = 0.0;
	for (j = 0; j < n; j++)
		for (i = 0; i < n; i++) b[i] += a[j * 40 + i];
	return 0;
}

/* LU factorization with partial pivoting (dgefa, column oriented) */
int dgefa() {
	int k, i, j;
	for (k = 0; k < n - 1; k++) {
		int l = idamax(n - k, &a[k * 40 + k]) + k;
		piv[k] = l;
		if (a[k * 40 + l] != 0.0) {
			if (l != k) {
				double t = a[k * 40 + l];
				a[k * 40 + l] = a[k * 40 + k];
				a[k * 40 + k] = t;
			}
			double t = -1.0 / a[k * 40 + k];
			for (i = k + 1; i < n; i++) a[k * 40 + i] *= t;
			for (j = k + 1; j < n; j++) {
				double tj = a[j * 40 + l];
				if (l != k) {
					a[j * 40 + l] = a[j * 40 + k];
					a[j * 40 + k] = tj;
				}
				daxpy(n - k - 1, tj, &a[k * 40 + k + 1], &a[j * 40 + k + 1]);
			}
		}
	}
	piv[n - 1] = n - 1;
	return 0;
}

/* solve using the factors (dgesl) */
int dgesl() {
	int k, i;
	for (i = 0; i < n; i++) x[i] = b[i];
	for (k = 0; k < n - 1; k++) {
		int l = piv[k];
		double t = x[l];
		if (l != k) { x[l] = x[k]; x[k] = t; }
		daxpy(n - k - 1, t, &a[k * 40 + k + 1], &x[k + 1]);
	}
	for (k = n - 1; k >= 0; k--) {
		x[k] = x[k] / a[k * 40 + k];
		double t = -x[k];
		daxpy(k, t, &a[k * 40], &x[0]);
	}
	return 0;
}

int main() {
	n = 40;
	seed = 74755;
	matgen();
	dgefa();
	dgesl();
	/* residual check: x should be all ones */
	double err = 0.0;
	int i;
	for (i = 0; i < n; i++) {
		double d = x[i] - 1.0;
		if (d < 0.0) d = -d;
		if (d > err) err = d;
	}
	print_str("n=40 maxerr_lt_1em6=");
	print_int(err < 0.000001);
	print_str(" x0x39ok=");
	print_int(x[0] > 0.99 && x[39] > 0.99);
	print_char('\n');
	return 0;
}
`,
	}
}

// Matrix is dense Gaussian elimination on a double matrix (the paper's
// "matrix" entry) via determinant computation.
func Matrix() *Benchmark {
	return &Benchmark{
		Name:      "matrix",
		Desc:      "Gaussian elimination.",
		MaxInstrs: 200_000_000,
		FP:        true,
		Source: `
double m[1024];   /* 32 x 32 */
int n;

int seed;
int rnd() {
	seed = seed * 1309 + 13849;
	if (seed < 0) seed = -seed;
	return seed % 100;
}

int main() {
	n = 32;
	seed = 1234;
	int i, j, k;
	int idx = 0;
	for (i = 0; i < n; i++)
		for (j = 0; j < n; j++) {
			m[idx] = rnd();
			m[idx] = m[idx] / 10.0;
			if (i == j) m[idx] += 40.0;   /* diagonally dominant */
			idx++;
		}
	/* forward elimination, accumulating the determinant's magnitude class */
	int swaps = 0;
	for (k = 0; k < n - 1; k++) {
		/* pick pivot */
		int p = k;
		double best = m[k * 32 + k];
		if (best < 0.0) best = -best;
		for (i = k + 1; i < n; i++) {
			double v = m[i * 32 + k];
			if (v < 0.0) v = -v;
			if (v > best) { best = v; p = i; }
		}
		if (p != k) {
			swaps++;
			for (j = k; j < n; j++) {
				double t = m[p * 32 + j];
				m[p * 32 + j] = m[k * 32 + j];
				m[k * 32 + j] = t;
			}
		}
		for (i = k + 1; i < n; i++) {
			double f = m[i * 32 + k] / m[k * 32 + k];
			for (j = k; j < n; j++) m[i * 32 + j] -= f * m[k * 32 + j];
		}
	}
	/* all pivots positive and large -> well-conditioned */
	int okpiv = 0;
	for (k = 0; k < n; k++)
		if (m[k * 32 + k] > 1.0 || m[k * 32 + k] < -1.0) okpiv++;
	print_str("n=32 swaps=");
	print_int(swaps);
	print_str(" okpiv=");
	print_int(okpiv);
	print_char('\n');
	return 0;
}
`,
	}
}

// Pi computes digits of pi with the integer spigot algorithm —
// divide/remainder dominated integer code (exercises the software
// divide runtime heavily).
func Pi() *Benchmark {
	return &Benchmark{
		Name:      "pi",
		Desc:      "Computes digits of pi (integer spigot algorithm).",
		Expect:    "3.14159265358979323846264338327950288419716939937510582097494\n",
		MaxInstrs: 400_000_000,
		Source: `
/* Rabinowitz-Wagon spigot, base 10^4 (the classic obfuscated-C spigot,
   written out straight) */
int f[300];

int main() {
	int a = 10000;
	int c = 210;          /* 14 * 15 -> 15 groups of 4 digits = 60 digits */
	int b, d, e, g;
	for (b = 0; b < c; b++) f[b] = a / 5;
	e = 0;
	int first = 1;
	for (; c > 0; c -= 14) {
		d = 0;
		g = c * 2;
		b = c;
		while (1) {
			d += f[b] * a;
			g--;
			f[b] = d % g;
			d = d / g;
			g--;
			b--;
			if (b == 0) break;
			d *= b;
		}
		int group = e + d / a;
		e = d % a;
		int d3 = group / 1000 % 10;
		int d2 = group / 100 % 10;
		int d1 = group / 10 % 10;
		int d0 = group % 10;
		print_int(d3);
		if (first) { print_char('.'); first = 0; }
		print_int(d2);
		print_int(d1);
		print_int(d0);
	}
	print_char('\n');
	return 0;
}
`,
	}
}

// Solver is a Newton–Raphson iterative solver for a family of cubics.
func Solver() *Benchmark {
	return &Benchmark{
		Name:      "solver",
		Desc:      "Newton-Raphson iterative solver.",
		MaxInstrs: 200_000_000,
		FP:        true,
		Source: `
/* solve x^3 + b x - c = 0 by Newton iteration */
double solve(double b, double c) {
	double x = 1.0;
	int it = 0;
	while (it < 200) {
		double f = x * x * x + b * x - c;
		double fp = 3.0 * x * x + b;
		double step = f / fp;
		x = x - step;
		if (step < 0.0) step = -step;
		if (step < 0.0000000001) return x;
		it++;
	}
	return x;
}

int main() {
	double sum = 0.0;
	int i;
	for (i = 1; i <= 400; i++) {
		double b = i;
		b = b / 10.0;
		double c = i;
		sum += solve(b, c);
	}
	print_str("sum=");
	print_double(sum);
	print_char('\n');
	return 0;
}
`,
	}
}

// Whetstone is the classic synthetic floating-point benchmark: its
// module structure (array ops, trig-like polynomial kernels, conditional
// jumps, procedure calls) re-created in MC with Taylor-series sin/cos/
// exp/log stand-ins for the missing math library.
func Whetstone() *Benchmark {
	return &Benchmark{
		Name:      "whetstone",
		Desc:      "The synthetic floating point benchmark.",
		MaxInstrs: 400_000_000,
		FP:        true,
		Source: `
double e1[4];
double t, t1, t2;
int j, k, l;

/* range-reduced Taylor approximations stand in for libm */
double sin_(double x) {
	int k = (int)(x / 6.28318530717959);
	x -= k * 6.28318530717959;
	while (x > 3.14159265358979) x -= 6.28318530717959;
	while (x < -3.14159265358979) x += 6.28318530717959;
	double x2 = x * x;
	return x * (1.0 - x2 / 6.0 + x2 * x2 / 120.0 - x2 * x2 * x2 / 5040.0);
}

double cos_(double x) {
	return sin_(x + 1.5707963267949);
}

double atan_(double x) {
	/* |x| <= 1 Taylor; fold larger magnitudes on both sides */
	int inv = 0;
	if (x > 1.0) { x = 1.0 / x; inv = 1; }
	else if (x < -1.0) { x = 1.0 / x; inv = -1; }
	double x2 = x * x;
	double r = x * (1.0 - x2 / 3.0 + x2 * x2 / 5.0 - x2 * x2 * x2 / 7.0);
	if (inv > 0) r = 1.5707963267949 - r;
	if (inv < 0) r = -1.5707963267949 - r;
	return r;
}

double exp_(double x) {
	double r = 1.0, term = 1.0;
	int i;
	for (i = 1; i < 12; i++) {
		term = term * x / i;
		r += term;
	}
	return r;
}

double log_(double x) {
	/* ln via atanh series around 1 */
	double y = (x - 1.0) / (x + 1.0);
	double y2 = y * y;
	return 2.0 * y * (1.0 + y2 / 3.0 + y2 * y2 / 5.0 + y2 * y2 * y2 / 7.0);
}

double sqrt_(double x) {
	double g = x;
	if (g < 1.0) g = 1.0;
	int i;
	for (i = 0; i < 20; i++) g = 0.5 * (g + x / g);
	return g;
}

int p3(double x, double y) {
	x = t * (x + y);
	y = t * (x + y);
	t2 = 2.0;
	e1[2] = (x + y) / t2;
	return 0;
}

int p0() {
	e1[j] = e1[k];
	e1[k] = e1[l];
	e1[l] = e1[j];
	return 0;
}

int main() {
	int loops = 12;
	t = 0.499975;
	t1 = 0.50025;
	t2 = 2.0;
	int i, ix;
	double x, y, z;

	/* module 1: simple identifiers */
	double x1 = 1.0, x2 = -1.0, x3 = -1.0, x4 = -1.0;
	for (i = 0; i < loops * 10; i++) {
		x1 = (x1 + x2 + x3 - x4) * t;
		x2 = (x1 + x2 - x3 + x4) * t;
		x3 = (x1 - x2 + x3 + x4) * t;
		x4 = (-x1 + x2 + x3 + x4) * t;
	}

	/* module 2: array elements */
	e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
	for (i = 0; i < loops * 12; i++) {
		e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
		e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
		e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
		e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
	}

	/* module 4: conditional jumps */
	j = 1;
	for (i = 0; i < loops * 60; i++) {
		if (j == 1) j = 2; else j = 3;
		if (j > 2) j = 0; else j = 1;
		if (j < 1) j = 1; else j = 0;
	}

	/* module 6: integer arithmetic with array access */
	j = 1; k = 2; l = 3;
	for (i = 0; i < loops * 80; i++) {
		j = j * (k - j) * (l - k);
		k = l * k - (l - j) * k;
		l = (l - k) * (k + j);
		e1[l - 2] = j + k + l;
		e1[k - 2] = j * k * l;
	}

	/* module 7: trig functions */
	x = 0.5; y = 0.5;
	for (i = 0; i < loops * 6; i++) {
		x = t * atan_(t2 * sin_(x) * cos_(x) / (cos_(x + y) + cos_(x - y) - 1.0));
		y = t * atan_(t2 * sin_(y) * cos_(y) / (cos_(x + y) + cos_(x - y) - 1.0));
	}

	/* module 8: procedure calls */
	x = 1.0; y = 1.0; z = 1.0;
	for (i = 0; i < loops * 30; i++) {
		p3(x, y);
		z = e1[2];
	}

	/* module 9: array references via globals */
	j = 1; k = 2; l = 3;
	e1[0] = 1.0; e1[1] = 2.0; e1[2] = 3.0;
	for (i = 0; i < loops * 40; i++) p0();

	/* module 11: standard functions */
	x = 0.75;
	for (i = 0; i < loops * 8; i++)
		x = sqrt_(exp_(log_(x + 1.0) / t1));

	print_str("x1..4=");
	print_int((x1 < 1.0 && x1 > 0.99) + (x2 > -1.0) + (x3 > -1.0) + (x4 > -1.0));
	print_str(" e1ok=");
	print_int(e1[0] != 0.0);
	print_str(" x=");
	print_double(x);
	print_str(" z=");
	print_double(z);
	print_char('\n');
	return 0;
}
`,
	}
}
