package bench

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mcc"
	"repro/internal/sim"
)

func runBench(t *testing.T, b *Benchmark, spec *isa.Spec) (*sim.Machine, *mcc.Compiled) {
	t.Helper()
	c, err := mcc.Compile(b.Name+".mc", b.Source, spec)
	if err != nil {
		t.Fatalf("%s/%s: compile: %v", b.Name, spec, err)
	}
	m, err := sim.New(c.Image)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(b.MaxInstrs); err != nil {
		t.Fatalf("%s/%s: run: %v", b.Name, spec, err)
	}
	return m, c
}

// TestSuiteCorrectness compiles and runs every benchmark on both base
// encodings and requires identical non-empty output (and the recorded
// expected output where present).
func TestSuiteCorrectness(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			m16, c16 := runBench(t, b, isa.D16())
			m32, c32 := runBench(t, b, isa.DLXe())
			out16, out32 := m16.Output.String(), m32.Output.String()
			if out16 == "" {
				t.Fatalf("%s produced no output", b.Name)
			}
			if out16 != out32 {
				t.Fatalf("%s: D16 output %q != DLXe output %q", b.Name, out16, out32)
			}
			if b.Expect != "" && out16 != b.Expect {
				t.Errorf("%s: output %q, want %q", b.Name, out16, b.Expect)
			}
			t.Logf("%s: out=%q pathD16=%d pathDLXe=%d sizeD16=%d sizeDLXe=%d",
				b.Name, out16, m16.Stats.Instrs, m32.Stats.Instrs,
				c16.Image.Size(), c32.Image.Size())
		})
	}
}

// TestSuiteShape checks the paper's headline static result per program:
// D16 binaries are smaller, and the size ratio is between 1 and 2.
func TestSuiteShape(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			_, c16 := runBench(t, b, isa.D16())
			_, c32 := runBench(t, b, isa.DLXe())
			r := float64(c32.Image.Size()) / float64(c16.Image.Size())
			if r <= 1.0 || r >= 2.0 {
				t.Errorf("%s: density ratio %.2f outside (1, 2): D16=%d DLXe=%d",
					b.Name, r, c16.Image.Size(), c32.Image.Size())
			}
		})
	}
}

// TestSuiteAllConfigurations runs every benchmark under every compiler
// configuration (the paper's five plus D16+) and requires identical
// output everywhere — the strongest whole-stack integration check.
func TestSuiteAllConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("full configuration sweep is slow")
	}
	configs := append(isa.PaperConfigs(), isa.D16Plus())
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, spec := range configs {
				m, _ := runBench(t, b, spec)
				got := m.Output.String()
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s on %s: %q differs from %q", b.Name, spec, got, want)
				}
			}
		})
	}
}

// TestCacheBenchmarksAreLarge ensures the cache-study programs have
// instruction working sets that can exercise 1-16K caches: assem sits in
// the paper's 4-8K regime ("4K is sufficient to capture the D16 working
// set, but 8K is required for DLXe"); latex and ipl overflow 16K.
func TestCacheBenchmarksAreLarge(t *testing.T) {
	min := map[string]int{"assem": 4 * 1024, "ipl": 16 * 1024, "latex": 16 * 1024}
	for _, b := range CacheBenchmarks() {
		c, err := mcc.Compile(b.Name+".mc", b.Source, isa.DLXe())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(c.Image.Text) < min[b.Name] {
			t.Errorf("%s: DLXe text is only %d bytes; cache experiments need >%d",
				b.Name, len(c.Image.Text), min[b.Name])
		}
	}
}
