package explain

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

func TestParseQueryDefaults(t *testing.T) {
	q, err := ParseQuery("a=d16 b=dlxe")
	if err != nil {
		t.Fatal(err)
	}
	want := NewQuery()
	want.A, want.B = "d16", "dlxe"
	if q != want {
		t.Fatalf("defaults: got %+v want %+v", q, want)
	}

	q, err = ParseQuery("a=D16/16/2, b=pts.mcst\tbench=queens bus=8 waits=0 cachekb=4 top=2 rows=6 misspenalty=12 threshold=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if q.A != "D16/16/2" || q.B != "pts.mcst" || q.Bench != "queens" ||
		q.Bus != 8 || q.Waits != 0 || q.CacheKB != 4 ||
		q.Top != 2 || q.Rows != 6 || q.MissPenalty != 12 || q.Threshold != 0.05 {
		t.Fatalf("full grammar mis-parsed: %+v", q)
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "need both sides"},
		{"a=d16", "need both sides"},
		{"b=dlxe", "need both sides"},
		{"a=d16 b=dlxe frob", "want key=value"},
		{"a=d16 b=dlxe top=", "want key=value"},
		{"a=d16 b=dlxe top=0", "want a positive integer"},
		{"a=d16 b=dlxe rows=0", "want a positive integer"},
		{"a=d16 b=dlxe top=-2", "want a non-negative integer"},
		{"a=d16 b=dlxe bus=many", "want a non-negative integer"},
		{"a=d16 b=dlxe waits=-1", "want a non-negative integer"},
		{"a=d16 b=dlxe threshold=0", "want a positive number"},
		{"a=d16 b=dlxe threshold=x", "want a positive number"},
		{"a=d16 b=dlxe nope=1", `unknown key "nope"`},
	}
	for _, c := range cases {
		_, err := ParseQuery(c.in)
		if err == nil {
			t.Errorf("ParseQuery(%q): want error containing %q, got nil", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseQuery(%q): error %q does not contain %q", c.in, err, c.want)
		}
	}
}

func pt(bench, config string, waits, cycles int64) store.Point {
	p := store.Point{Bench: bench, Config: config, BusBytes: 4, WaitStates: waits, Cycles: cycles, Instrs: 1}
	p.Buckets[0] = cycles
	return p
}

func TestSideFromPoints(t *testing.T) {
	q := NewQuery()
	q.A, q.B = "x", "y"

	pts := []store.Point{
		pt("towers", "D16/16/2", 1, 100),
		pt("queens", "D16/16/2", 1, 200),
	}
	s, err := SideFromPoints("mem", pts, q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Config != "D16/16/2" || len(s.Points) != 2 || s.Spec == nil {
		t.Fatalf("side: config=%q points=%d spec=%v", s.Config, len(s.Points), s.Spec)
	}

	// Two configs under the selection is ambiguous.
	mixed := append(pts, pt("towers", "DLXe/32/3", 1, 90))
	if _, err := SideFromPoints("mem", mixed, q); err == nil ||
		!strings.Contains(err.Error(), "holds 2 configs") {
		t.Fatalf("mixed configs: want 'holds 2 configs' error, got %v", err)
	}

	// A selection that isolates one config resolves the ambiguity.
	q.Bench = "queens"
	if s, err = SideFromPoints("mem", mixed, q); err != nil || s.Config != "D16/16/2" {
		t.Fatalf("selected side: %v config=%q", err, s.Config)
	}

	// No points under the selection.
	q.Bench = "linpack"
	if _, err := SideFromPoints("mem", mixed, q); err == nil ||
		!strings.Contains(err.Error(), "matches no points") {
		t.Fatalf("empty selection: want 'matches no points' error, got %v", err)
	}

	// Unknown config names still make a side — just one that cannot be
	// re-simulated (Spec nil ⇒ drill-down is skipped with a note).
	q = NewQuery()
	if s, err = SideFromPoints("mem", []store.Point{pt("towers", "other", 1, 50)}, q); err != nil || s.Spec != nil {
		t.Fatalf("foreign config side: err=%v spec=%v", err, s.Spec)
	}
}

// TestRunEndToEnd walks the whole pipeline on a real benchmark: config
// sides, pairing, drills, and deterministic rendering.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates towers on both ISAs")
	}
	lab := core.NewLab()
	q, err := ParseQuery("a=D16/16/2 b=DLXe/32/3 bench=towers waits=1 top=1 rows=4")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(lab, q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched == 0 || len(rep.Deltas) == 0 {
		t.Fatalf("no pairs matched: %+v", rep)
	}
	if len(rep.Drills) != 1 {
		t.Fatalf("want 1 drill, got %d", len(rep.Drills))
	}
	dr := &rep.Drills[0]
	if dr.EngineA.Cycles <= 0 || dr.EngineB.Cycles <= 0 {
		t.Fatalf("drill engines empty: A=%d B=%d", dr.EngineA.Cycles, dr.EngineB.Cycles)
	}
	if dr.Func == "" || len(dr.DisA) == 0 || len(dr.DisB) == 0 {
		t.Fatalf("drill missing disassembly: func=%q disA=%d disB=%d", dr.Func, len(dr.DisA), len(dr.DisB))
	}
	if len(dr.HeatA) == 0 || len(dr.HeatA) > q.Rows {
		t.Fatalf("heatmap rows out of range: %d (cap %d)", len(dr.HeatA), q.Rows)
	}

	var r1, r2 bytes.Buffer
	if err := rep.WriteText(&r1); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteText(&r2); err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatal("WriteText is not deterministic across renders")
	}

	// A fresh lab must reproduce the report byte for byte.
	rep2, err := Run(core.NewLab(), q)
	if err != nil {
		t.Fatal(err)
	}
	var r3 bytes.Buffer
	if err := rep2.WriteText(&r3); err != nil {
		t.Fatal(err)
	}
	if r1.String() != r3.String() {
		t.Fatal("explain report differs across labs")
	}
}

// TestResolveSideFromFile reads one side from a store file written on
// the spot, then pairs it against itself relabeled — zero deltas, and
// no drills because the foreign config cannot be re-simulated.
func TestResolveSideFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "side.mcst")
	pts := []store.Point{
		pt("towers", "frozen", 1, 100),
		pt("queens", "frozen", 1, 200),
	}
	if err := store.WriteFile(path, pts); err != nil {
		t.Fatal(err)
	}
	q := NewQuery()
	q.A, q.B = path, path
	sa, err := ResolveSide(nil, path, q)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Config != "frozen" || len(sa.Points) != 2 || sa.Spec != nil {
		t.Fatalf("file side: %+v", sa)
	}
	rep, err := RunSides(nil, q, sa, sa)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 2 || rep.Regressed != 0 || rep.Improved != 0 {
		t.Fatalf("self diff: %+v", rep)
	}
	if len(rep.Drills) != 0 || len(rep.Notes) == 0 ||
		!strings.Contains(rep.Notes[0], "drill-down skipped") {
		t.Fatalf("want skipped-drill note, got drills=%d notes=%v", len(rep.Drills), rep.Notes)
	}

	if _, err := ResolveSide(nil, filepath.Join(t.TempDir(), "missing.mcst"), q); err == nil ||
		!strings.Contains(err.Error(), "neither a known config") {
		t.Fatalf("missing file: want resolution error, got %v", err)
	}
}
